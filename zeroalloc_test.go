//go:build !race

// TestZeroAllocContracts is the single home of the repo's
// zero-allocation guarantees: every hot path that claims "no heap after
// warm-up" is one row of the table below, measured with
// testing.AllocsPerRun. The rows used to live as one-off tests next to
// each package (sensor, sim, multicore, workload, thermal); keeping them
// in one table makes the full contract surface visible at a glance and
// lets the -race build (where allocation counts are unreliable) skip
// them as a unit via the build tag above. scripts/ci.sh runs this test
// explicitly without -race so the bars stay asserted in CI.
package main

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/multicore"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// lockstepAllocJobs builds the four-lane mixed-workload batch the warm
// re-step contract is measured on (power metrics recorded, traces off —
// the fleet fixed point's per-pass configuration).
func lockstepAllocJobs(t testing.TB) []sim.Job {
	t.Helper()
	cfg := sim.Default()
	cfg.Ambient = 30
	jobs := make([]sim.Job, 4)
	for i := range jobs {
		var gen workload.Generator
		var err error
		switch i {
		case 0:
			gen, err = workload.NewNoisy(workload.PaperSquare(400), 0.04, cfg.Tick, int64(i+1))
		case 1:
			gen = workload.Markov{IdleU: 0.15, BusyU: 0.85, Dwell: 45,
				PIdleToBusy: 0.25, PBusyToIdle: 0.2, Seed: int64(i + 1)}
		case 2:
			var noisy *workload.Noisy
			noisy, err = workload.NewNoisy(workload.Constant{U: 0.65}, 0.05, cfg.Tick, int64(i+1))
			if err == nil {
				gen, err = workload.NewSpiky(noisy, workload.PeriodicSpikes(100, 300, 30, 1.0, 3))
			}
		default:
			gen = workload.PRBS{Low: 0.2, High: 0.8, Dwell: 90, Seed: int64(i + 1)}
		}
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewFullStack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rc := sim.RunConfig{
			Duration:    600,
			Workload:    gen,
			Policy:      pol,
			RecordPower: true,
		}
		if i%2 == 1 {
			rc.WarmStart = &sim.WarmPoint{Util: 0.2, Fan: 1500}
		}
		jobs[i] = sim.Job{Name: fmt.Sprintf("lane-%d", i), Server: sim.Factory(cfg), Config: rc}
	}
	return jobs
}

func TestZeroAllocContracts(t *testing.T) {
	cases := []struct {
		name string
		runs int
		// setup builds and warms the path, returning the measured op.
		setup func(t *testing.T) func()
	}{
		{
			// One closed-loop engine tick: full DTM stack, measurement
			// chain, thermal step, spiky noisy workload.
			name: "server-tick",
			runs: 500,
			setup: func(t *testing.T) func() {
				h := newTickHarness(t)
				return func() { h.step() }
			},
		},
		{
			// The same tick with the full non-ideal sensing chain
			// (placement offset, calibration bias, slew, dropout,
			// armed stuck-at) in the sensor path.
			name: "fault-chain-tick",
			runs: 500,
			setup: func(t *testing.T) func() {
				h := newTickHarnessSensor(t, fullSensorChain)
				return func() { h.step() }
			},
		},
		{
			// The same tick with the three-replica redundant voting
			// array (per-replica fault chains fused by median voting)
			// in the sensor path.
			name: "voting-chain-tick",
			runs: 500,
			setup: func(t *testing.T) func() {
				h := newTickHarnessSensor(t, votingSensorChain)
				return func() { h.step() }
			},
		},
		{
			// A warm lockstep re-step at one worker must not touch the
			// heap — the property the fleet fixed point's per-pass cost
			// rests on.
			name: "warm-lockstep-restep",
			runs: 3,
			setup: func(t *testing.T) func() {
				ls, err := sim.NewLockstep(lockstepAllocJobs(t), sim.BatchOptions{Workers: 1})
				if err != nil {
					t.Fatal(err)
				}
				if _, err := ls.Run(); err != nil { // warm caches, ring buffers, series
					t.Fatal(err)
				}
				return func() {
					if _, err := ls.Run(); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			// The RK4 integrator at the 16-node multicore shape after
			// the first Step compiles the neighbor list.
			name: "network-step",
			runs: 200,
			setup: func(t *testing.T) func() {
				net := buildNetwork(t, 16)
				if err := net.Step(1); err != nil {
					t.Fatal(err)
				}
				return func() {
					if err := net.Step(1); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			// Step under the multicore access pattern, where the sink's
			// ambient resistance is retuned every tick as the fan law
			// moves: the O(n) time-constant refresh must stay heap-free.
			name: "network-step-retune",
			runs: 200,
			setup: func(t *testing.T) func() {
				net := buildNetwork(t, 16)
				law := thermal.TableIHeatSinkLaw()
				if err := net.Step(1); err != nil {
					t.Fatal(err)
				}
				i := 0
				return func() {
					v := units.RPM(2000 + (i%2)*3000)
					i++
					if err := net.ConnectAmbient(15, law.Resistance(v)); err != nil {
						t.Fatal(err)
					}
					if err := net.Step(1); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			// The lockstep SoA integrator (6 nodes × 8 lanes) after the
			// first Step.
			name: "batch-network-step",
			runs: 100,
			setup: func(t *testing.T) func() {
				const nodes, lanes = 6, 8
				bn, err := thermal.NewBatchNetwork(nodes, lanes, 25)
				if err != nil {
					t.Fatal(err)
				}
				sink := nodes - 1
				if err := bn.SetCapacitance(sink, 500); err != nil {
					t.Fatal(err)
				}
				if err := bn.ConnectAmbient(sink, 0.05); err != nil {
					t.Fatal(err)
				}
				for i := 0; i < sink; i++ {
					if err := bn.SetCapacitance(i, 50); err != nil {
						t.Fatal(err)
					}
					if err := bn.Connect(i, sink, 0.5); err != nil {
						t.Fatal(err)
					}
				}
				for s := 0; s < lanes; s++ {
					bn.SetAmbient(s, units.Celsius(20+float64(s)))
					for i := 0; i < sink; i++ {
						bn.SetLoad(i, s, units.Watt(5+float64(i)+0.25*float64(s)))
						bn.SetTemperature(i, s, units.Celsius(25+0.5*float64(i)+0.1*float64(s)))
					}
				}
				if err := bn.Step(1); err != nil {
					t.Fatal(err)
				}
				return func() {
					if err := bn.Step(1); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			// multicore.Server.Tick once the sensor rings have grown to
			// steady size — TickResult reuses the per-server scratch
			// buffers (the aliasing contract scratchalias enforces).
			name: "multicore-tick",
			runs: 500,
			setup: func(t *testing.T) func() {
				cfg := multicore.DefaultConfig()
				server, err := multicore.NewServer(cfg)
				if err != nil {
					t.Fatal(err)
				}
				server.CommandFan(4000)
				util := multicore.SplitEven(0.6, cfg.NCore)
				for i := 0; i < 200; i++ { // grow sensor rings to steady state
					if _, err := server.Tick(util); err != nil {
						t.Fatal(err)
					}
				}
				return func() {
					if _, err := server.Tick(util); err != nil {
						t.Fatal(err)
					}
				}
			},
		},
		{
			// Spiky.At binary-searches a precompiled spike schedule —
			// per-sample evaluation must not allocate.
			name: "workload-spiky-at",
			runs: 1000,
			setup: func(t *testing.T) func() {
				sp, err := workload.NewSpiky(workload.Constant{U: 0.1}, workload.PeriodicSpikes(5, 30, 10, 0.9, 100))
				if err != nil {
					t.Fatal(err)
				}
				tm := units.Seconds(0)
				return func() {
					sp.At(tm)
					tm++
				}
			},
		},
		{
			// The sensor delay line's ring buffer stops growing once it
			// reaches steady state; per-sample pushes then recycle slots.
			name: "sensor-delayline-sample",
			runs: 1000,
			setup: func(t *testing.T) func() {
				d, err := sensor.NewDelayLine(10, 25)
				if err != nil {
					t.Fatal(err)
				}
				for i := 0; i < 100; i++ { // warm the ring capacity
					d.Sample(units.Seconds(i), float64(i))
				}
				next := units.Seconds(100)
				return func() {
					d.Sample(next, float64(next))
					next++
				}
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			op := tc.setup(t)
			if allocs := testing.AllocsPerRun(tc.runs, op); allocs != 0 {
				t.Errorf("%s allocates %.2f objects/op after warm-up, want 0", tc.name, allocs)
			}
		})
	}
}
