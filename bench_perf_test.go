// Micro-benchmarks for the simulation hot paths. Unlike bench_test.go
// (which reports experiment *results*), these measure engine *speed* and
// allocation behavior: thermal.Network.Step and the per-tick server loop
// must be zero-allocation after warm-up, and the Table III batch must
// scale with worker count. Run with
//
//	go test -bench 'NetworkStep|ServerTick|EngineThroughput|Table3Serial|Table3Parallel' -benchmem
package main

import (
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fleet"
	"repro/internal/multicore"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
	"repro/internal/workload"
)

// buildNetwork constructs an n-node star network (n-1 loaded nodes around
// one ambient-coupled sink) shaped like the multicore scenarios.
func buildNetwork(b testing.TB, n int) *thermal.Network {
	b.Helper()
	net, err := thermal.NewNetwork(n, 25)
	if err != nil {
		b.Fatal(err)
	}
	sink := n - 1
	if err := net.SetCapacitance(sink, 500); err != nil {
		b.Fatal(err)
	}
	if err := net.ConnectAmbient(sink, 0.05); err != nil {
		b.Fatal(err)
	}
	for i := 0; i < sink; i++ {
		if err := net.SetCapacitance(i, 50); err != nil {
			b.Fatal(err)
		}
		if err := net.Connect(i, sink, 0.5); err != nil {
			b.Fatal(err)
		}
		net.SetLoad(i, 10)
	}
	return net
}

// BenchmarkNetworkStep measures the RK4 integrator at the two sizes the
// repo exercises: the two-node server shape and a 16-node multicore
// package. Zero allocs/op is the acceptance bar — the CSR neighbor list,
// cached substep count, and preallocated scratch remove the per-call
// make([]float64) and O(n²) conductance rescan.
func BenchmarkNetworkStep(b *testing.B) {
	for _, n := range []int{2, 16} {
		b.Run(unitName("nodes", float64(n), ""), func(b *testing.B) {
			net := buildNetwork(b, n)
			if err := net.Step(1); err != nil { // compile + warm caches
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := net.Step(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkNetworkStepRetune measures Step with a per-call ConnectAmbient
// retune, the multicore access pattern (fan speed changes every tick): the
// O(n) time-constant refresh must not reintroduce allocations.
func BenchmarkNetworkStepRetune(b *testing.B) {
	net := buildNetwork(b, 16)
	law := thermal.TableIHeatSinkLaw()
	if err := net.Step(1); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := units.RPM(2000 + (i%2)*3000)
		if err := net.ConnectAmbient(15, law.Resistance(v)); err != nil {
			b.Fatal(err)
		}
		if err := net.Step(1); err != nil {
			b.Fatal(err)
		}
	}
}

// tickHarness is one warm Table III-shaped closed loop: full DTM stack,
// noisy spiky workload, warm-started platform.
type tickHarness struct {
	server *sim.PhysicalServer
	policy sim.Policy
	gen    workload.Generator
	tick   units.Seconds
	prev   sim.TickResult
	k      int
}

func newTickHarness(b testing.TB) *tickHarness { return newTickHarnessSensor(b, nil) }

// newTickHarnessSensor builds the harness with an optional sensor-chain
// replacement applied before the warm start (the fault-chain benchmark).
func newTickHarnessSensor(b testing.TB, replace func(cfg sim.Config, server *sim.PhysicalServer) error) *tickHarness {
	b.Helper()
	cfg := sim.Default()
	cfg.Ambient = 33
	pol, err := core.NewFullStack(cfg)
	if err != nil {
		b.Fatal(err)
	}
	noisy, err := workload.NewNoisy(workload.PaperSquare(600), 0.04, cfg.Tick, 42)
	if err != nil {
		b.Fatal(err)
	}
	spiky, err := workload.NewSpiky(noisy, workload.PeriodicSpikes(90, 150, 30, 1.0, 1000))
	if err != nil {
		b.Fatal(err)
	}
	server, err := sim.NewPhysicalServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if replace != nil {
		if err := replace(cfg, server); err != nil {
			b.Fatal(err)
		}
	}
	if err := server.WarmStart(0.1, 1200); err != nil {
		b.Fatal(err)
	}
	h := &tickHarness{server: server, policy: pol, gen: spiky, tick: cfg.Tick}
	h.prev = sim.TickResult{Cap: 1, FanCmd: server.FanCommand(), FanActual: server.FanActual(), Measured: server.Junction()}
	for i := 0; i < 300; i++ { // warm the sensor ring and controller state
		h.step()
	}
	return h
}

// step is one engine tick: policy decision, actuation, platform tick.
func (h *tickHarness) step() {
	t := units.Seconds(float64(h.k) * float64(h.tick))
	demand := h.gen.At(t)
	cmd := h.policy.Step(sim.Observation{
		T:         t,
		Measured:  h.prev.Measured,
		Demand:    demand,
		Delivered: h.prev.Delivered,
		Violated:  h.prev.Violated,
		FanCmd:    h.server.FanCommand(),
		FanActual: h.server.FanActual(),
		Cap:       h.server.Cap(),
	})
	h.server.CommandFan(cmd.Fan)
	h.server.SetCap(cmd.Cap)
	h.prev = h.server.Tick(demand)
	h.k++
}

// BenchmarkServerTick measures one closed-loop engine tick (full DTM
// stack, measurement chain, thermal step, spiky noisy workload) after
// warm-up. The acceptance bar is zero allocs/op.
func BenchmarkServerTick(b *testing.B) {
	h := newTickHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.step()
	}
}

// fullSensorChain swaps the server's clean sensor chain for the full
// non-ideal one — placement offset (power observation + subtraction),
// calibration bias, slew limiter, the clean base chain, dropout, and an
// armed stuck-at window. Shared by BenchmarkFaultChain and the
// fault-chain row of TestZeroAllocContracts.
func fullSensorChain(cfg sim.Config, server *sim.PhysicalServer) error {
	base, err := sensor.New(cfg.Sensor)
	if err != nil {
		return err
	}
	place, err := sensor.NewPlacementOffset(0.05)
	if err != nil {
		return err
	}
	calib, err := sensor.NewCalibrationBias(4, 42)
	if err != nil {
		return err
	}
	slew, err := sensor.NewSlewLimit(0.5)
	if err != nil {
		return err
	}
	drop, err := sensor.NewDropout(0.2, 7)
	if err != nil {
		return err
	}
	stuck, err := sensor.NewStuckAt(120, 240)
	if err != nil {
		return err
	}
	return server.ReplaceSensor(sensor.NewPipeline(place, calib, slew, base, drop, stuck))
}

// BenchmarkFaultChain measures the same closed-loop tick with the full
// non-ideal-sensing chain in the sensor path. The acceptance bar is the
// same as ServerTick: zero allocs/op.
func BenchmarkFaultChain(b *testing.B) {
	h := newTickHarnessSensor(b, fullSensorChain)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.step()
	}
}

// votingSensorChain swaps the clean sensor chain for the fault-tolerant
// array: three replicas of the full non-ideal chain (per-replica seeds,
// the stuck window wedging replica 0 only, as the scenario layer wires
// it) fused by a sensor.Redundant median voter. Shared by
// BenchmarkVotingChain and the voting-chain row of
// TestZeroAllocContracts.
func votingSensorChain(cfg sim.Config, server *sim.PhysicalServer) error {
	chains := make([]sensor.Stage, 3)
	for j := range chains {
		base, err := sensor.New(cfg.Sensor)
		if err != nil {
			return err
		}
		place, err := sensor.NewPlacementOffset(0.05)
		if err != nil {
			return err
		}
		calib, err := sensor.NewCalibrationBias(4, 42+int64(j))
		if err != nil {
			return err
		}
		slew, err := sensor.NewSlewLimit(0.5)
		if err != nil {
			return err
		}
		drop, err := sensor.NewDropout(0.2, 7+int64(j))
		if err != nil {
			return err
		}
		stages := []sensor.Stage{place, calib, slew, base, drop}
		if j == 0 {
			stuck, err := sensor.NewStuckAt(120, 240)
			if err != nil {
				return err
			}
			stages = append(stages, stuck)
		}
		chains[j] = sensor.NewPipeline(stages...)
	}
	red, err := sensor.NewRedundant(sensor.RedundantConfig{
		RangeMin: cfg.Sensor.RangeMin, RangeMax: cfg.Sensor.RangeMax,
	}, chains...)
	if err != nil {
		return err
	}
	return server.ReplaceSensor(sensor.NewPipeline(red))
}

// BenchmarkVotingChain measures the closed-loop tick with the redundant
// three-replica voting array in the sensor path — the worst-case sensing
// cost the scenario layer can configure. The acceptance bar is the same
// as ServerTick: zero allocs/op.
func BenchmarkVotingChain(b *testing.B) {
	h := newTickHarnessSensor(b, votingSensorChain)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.step()
	}
}

// BenchmarkEngineThroughput measures sim.Run end to end on a Table
// III-shaped hour and reports ticks per wall second; allocations here
// include the unavoidable per-run setup (traces off).
func BenchmarkEngineThroughput(b *testing.B) {
	cfg := sim.Default()
	cfg.Ambient = 33
	noisy, err := workload.NewNoisy(workload.PaperSquare(600), 0.04, cfg.Tick, 42)
	if err != nil {
		b.Fatal(err)
	}
	pol, err := core.NewFullStack(cfg)
	if err != nil {
		b.Fatal(err)
	}
	const horizon = 3600
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		server, err := sim.NewPhysicalServer(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := sim.Run(server, sim.RunConfig{
			Duration:  horizon,
			Workload:  noisy,
			Policy:    pol,
			WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1200},
		}); err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		b.ReportMetric(horizon*float64(b.N)/sec, "ticks/s")
	}
}

// benchTable3 runs the Table III comparison at the given worker count.
func benchTable3(b *testing.B, workers int) {
	tc := experiments.DefaultTable3()
	tc.Workers = workers
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(tc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Serial pins the batch engine to one worker: the
// sequential reference for the parallel speedup.
func BenchmarkTable3Serial(b *testing.B) { benchTable3(b, 1) }

// BenchmarkTable3Parallel lets the batch engine use every core. On an
// m-core machine the five solutions land on five workers; compare against
// BenchmarkTable3Serial for the speedup (results are bit-identical).
func BenchmarkTable3Parallel(b *testing.B) { benchTable3(b, 0) }

// newMulticoreHarness returns a warm four-core platform and a balanced
// utilization vector for per-tick measurement.
func newMulticoreHarness(b *testing.B) (*multicore.Server, []units.Utilization) {
	b.Helper()
	cfg := multicore.DefaultConfig()
	server, err := multicore.NewServer(cfg)
	if err != nil {
		b.Fatal(err)
	}
	server.CommandFan(4000)
	util := multicore.SplitEven(0.6, cfg.NCore)
	for i := 0; i < 200; i++ { // grow the per-core sensor rings
		if _, err := server.Tick(util); err != nil {
			b.Fatal(err)
		}
	}
	return server, util
}

// BenchmarkMulticoreTick measures one N-core platform tick (thermal
// network step, per-core measurement chains, fan slew) after warm-up. The
// acceptance bar is zero allocs/op: TickResult reuses per-server scratch.
func BenchmarkMulticoreTick(b *testing.B) {
	server, util := newMulticoreHarness(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := server.Tick(util); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMulticoreRunHour measures the three-controller scenario end to
// end on an hour horizon; allocations are per-run setup (server,
// controllers, result) plus nothing per tick — the loop's bookkeeping
// (scheduler proposals, fan history, core splits) is preallocated.
func BenchmarkMulticoreRunHour(b *testing.B) {
	cfg := multicore.DefaultConfig()
	cfg.Base.Ambient = 30
	noisy, err := workload.NewNoisy(workload.PaperSquare(600), 0.04, cfg.Base.Tick, 7)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := multicore.Run(multicore.RunConfig{
			Config:     cfg,
			Duration:   3600,
			Workload:   noisy,
			Coordinate: true,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// lockstepBenchJobs builds n same-clock jobs mirroring the fleet archetype
// mix (noisy web square, Markov bursts, spiky batch, PRBS stress), each
// under the paper's full DTM stack with a decorrelated seed — the job
// population BenchmarkLockstepVsBatch compares the two engines on.
func lockstepBenchJobs(b *testing.B, n int) []sim.Job {
	b.Helper()
	cfg := sim.Default()
	cfg.Ambient = 30
	jobs := make([]sim.Job, n)
	for i := 0; i < n; i++ {
		seed := stats.SubSeed(11, int64(i))
		var gen workload.Generator
		var err error
		switch i % 4 {
		case 0:
			gen, err = workload.NewNoisy(workload.PaperSquare(400), 0.04, cfg.Tick, seed)
		case 1:
			gen = workload.Markov{IdleU: 0.15, BusyU: 0.85, Dwell: 45,
				PIdleToBusy: 0.25, PBusyToIdle: 0.2, Seed: seed}
		case 2:
			var noisy *workload.Noisy
			noisy, err = workload.NewNoisy(workload.Constant{U: 0.65}, 0.05, cfg.Tick, seed)
			if err == nil {
				gen, err = workload.NewSpiky(noisy, workload.PeriodicSpikes(200, 500, 30, 1.0, 6))
			}
		default:
			gen = workload.PRBS{Low: 0.2, High: 0.8, Dwell: 90, Seed: seed}
		}
		if err != nil {
			b.Fatal(err)
		}
		pol, err := core.NewFullStack(cfg)
		if err != nil {
			b.Fatal(err)
		}
		jobs[i] = sim.Job{
			Name:   fmt.Sprintf("node-%02d", i),
			Server: sim.Factory(cfg),
			Config: sim.RunConfig{
				Duration:    900,
				Workload:    gen,
				Policy:      pol,
				RecordPower: true,
				WarmStart:   &sim.WarmPoint{Util: 0.2, Fan: 1500},
			},
		}
	}
	return jobs
}

// BenchmarkLockstepVsBatch compares one whole-batch pass under the two
// engines at fleet-relevant batch sizes. The batch side rebuilds servers
// and re-evaluates workload generators every op (RunBatch's contract);
// the lockstep side re-steps one warm instance, the fleet fixed point's
// steady state — precompiled demand schedules, reused servers, reused
// recording buffers, zero allocations per pass at one worker. Results are
// bit-identical between the two (asserted by the sim tests); this
// benchmark measures what the reuse is worth.
func BenchmarkLockstepVsBatch(b *testing.B) {
	for _, n := range []int{8, 64} {
		b.Run("batch/"+unitName("servers", float64(n), ""), func(b *testing.B) {
			jobs := lockstepBenchJobs(b, n)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sim.RunBatch(jobs, sim.BatchOptions{Workers: 1}); err != nil {
					b.Fatal(err)
				}
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(900*float64(n)*float64(b.N)/sec, "ticks/s")
			}
		})
		b.Run("lockstep/"+unitName("servers", float64(n), ""), func(b *testing.B) {
			ls, err := sim.NewLockstep(lockstepBenchJobs(b, n), sim.BatchOptions{Workers: 1})
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ls.Run(); err != nil { // warm rings and buffers
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ls.Run(); err != nil {
					b.Fatal(err)
				}
			}
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(900*float64(n)*float64(b.N)/sec, "ticks/s")
			}
		})
	}
}

// BenchmarkBatchNetworkStep compares the SoA lockstep RK4 integrator
// against stepping the same population of standalone Networks, at the
// 16-node multicore shape. The SoA layout streams the batch dimension
// contiguously; both sides are zero-alloc after warm-up.
func BenchmarkBatchNetworkStep(b *testing.B) {
	const nodes = 16
	for _, batch := range []int{8, 64} {
		b.Run("loop/"+unitName("servers", float64(batch), ""), func(b *testing.B) {
			nets := make([]*thermal.Network, batch)
			for s := range nets {
				nets[s] = buildNetwork(b, nodes)
				if err := nets[s].Step(1); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, net := range nets {
					if err := net.Step(1); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
		b.Run("soa/"+unitName("servers", float64(batch), ""), func(b *testing.B) {
			bn, err := thermal.NewBatchNetwork(nodes, batch, 25)
			if err != nil {
				b.Fatal(err)
			}
			sink := nodes - 1
			if err := bn.SetCapacitance(sink, 500); err != nil {
				b.Fatal(err)
			}
			if err := bn.ConnectAmbient(sink, 0.05); err != nil {
				b.Fatal(err)
			}
			for i := 0; i < sink; i++ {
				if err := bn.SetCapacitance(i, 50); err != nil {
					b.Fatal(err)
				}
				if err := bn.Connect(i, sink, 0.5); err != nil {
					b.Fatal(err)
				}
				for s := 0; s < batch; s++ {
					bn.SetLoad(i, s, 10)
				}
			}
			if err := bn.Step(1); err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := bn.Step(1); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFleetFixedPoint measures the recirculation fixed point on the
// canonical 8-node rack: every op resolves the full relaxation (two
// whole-rack passes at the default depth) and aggregates the rack view.
// This is the number the lockstep rewrite is gated on — the warm rack
// instance re-steps with updated inlets instead of rebuilding and
// re-simulating every node from scratch each pass.
func BenchmarkFleetFixedPoint(b *testing.B) {
	cfg, err := fleet.NewRack(8, nil, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Duration = 900
	cfg.Recirc = 0.01
	cfg.Workers = 1
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.Run(cfg); err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		const ticksPerOp = 900 * 8 * 2 // duration × nodes × passes
		b.ReportMetric(ticksPerOp*float64(b.N)/sec, "ticks/s")
	}
}

// BenchmarkFleetCoordinator measures the rack-level global coordinator
// end to end on the canonical 8-node rack: the local baseline relaxation
// plus the coordination rounds (migration planning, budget arbitration,
// warm re-relaxations) — the price of the coordinated column next to
// BenchmarkFleetFixedPoint's per-node-control price.
func BenchmarkFleetCoordinator(b *testing.B) {
	cfg, err := fleet.NewRack(8, nil, 3)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Duration = 900
	cfg.Recirc = 0.03
	cfg.Workers = 1
	cc := fleet.CoordinatorConfig{PowerBudget: 1100}
	res, err := fleet.RunCoordinated(cfg, cc) // warm-up + pass count probe
	if err != nil {
		b.Fatal(err)
	}
	passes := res.TotalPasses
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := fleet.RunCoordinated(cfg, cc); err != nil {
			b.Fatal(err)
		}
	}
	if sec := b.Elapsed().Seconds(); sec > 0 {
		ticksPerOp := 900 * 8 * float64(passes)
		b.ReportMetric(ticksPerOp*float64(b.N)/sec, "ticks/s")
	}
}

// BenchmarkFleetRun measures a recirculation-coupled 8-node rack (two
// whole-rack passes) end to end; compare Workers=1 vs Workers=0 for the
// fleet-level batch speedup on multicore hosts (results bit-identical).
func BenchmarkFleetRun(b *testing.B) {
	for _, workers := range []int{1, 0} {
		b.Run(unitName("workers", float64(workers), ""), func(b *testing.B) {
			cfg, err := fleet.NewRack(8, nil, 3)
			if err != nil {
				b.Fatal(err)
			}
			cfg.Duration = 900
			cfg.Recirc = 0.01
			cfg.Workers = workers
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := fleet.Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// scenarioStoreSpec is the fixture for the store benchmarks: one hour of
// the full DTM stack under a noisy square wave — a realistic sweep cell,
// expensive enough that serving it from the store must win by orders of
// magnitude.
func scenarioStoreSpec() scenario.Spec {
	return scenario.Spec{
		Kind:     scenario.KindSingle,
		Name:     "bench-store",
		Duration: 3600,
		Jobs: []scenario.JobSpec{{
			Workload: scenario.FactoryRef{Name: "noisy-square", Seed: 42,
				Params: scenario.Params{"period": 600, "sigma": 0.04}},
			Policy:    scenario.FactoryRef{Name: "full"},
			WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1200},
		}},
	}
}

// BenchmarkScenarioStoreHit measures a warm store lookup through the
// sweep path: hash the spec, read the cell, decode the outcome. This is
// what every finished cell of a resumed sweep costs — compare against
// BenchmarkScenarioRerun, the price of not having the store.
func BenchmarkScenarioStoreHit(b *testing.B) {
	st, err := scenario.OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	spec := scenarioStoreSpec()
	warm, err := scenario.Sweep([]scenario.Spec{spec}, st)
	if err != nil {
		b.Fatal(err)
	}
	if warm.Misses != 1 {
		b.Fatalf("warm-up misses = %d", warm.Misses)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := scenario.Sweep([]scenario.Spec{spec}, st)
		if err != nil {
			b.Fatal(err)
		}
		if res.Hits != 1 {
			b.Fatal("cold cell in a warm store")
		}
	}
}

// BenchmarkScenarioRerun is the storeless baseline for the same cell:
// the full simulation executes every op.
func BenchmarkScenarioRerun(b *testing.B) {
	spec := scenarioStoreSpec()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Run(spec); err != nil {
			b.Fatal(err)
		}
	}
}
