// Coordination: reproduce the paper's Table III comparison — the five
// coordination schemes side by side on the spiky, noisy evaluation
// workload — and print the table with the paper's reference values.
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"
)

// paperRows are the published Table III values for reference.
var paperRows = []struct {
	violation float64
	energy    float64
}{
	{26.12, 1.000},
	{44.44, 0.703},
	{14.14, 1.075},
	{11.42, 0.801},
	{6.92, 0.804},
}

func main() {
	log.SetFlags(0)

	res, err := experiments.Table3(experiments.DefaultTable3())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Table III reproduction — measured vs paper")
	fmt.Printf("%-24s %18s %18s\n", "", "violation (%)", "norm. fan energy")
	fmt.Printf("%-24s %8s %9s %8s %9s\n", "solution", "measured", "paper", "measured", "paper")
	for i, r := range res.Rows {
		fmt.Printf("%-24s %8.2f %9.2f %8.3f %9.3f\n",
			r.Name, r.ViolationPct, paperRows[i].violation, r.NormFanEnergy, paperRows[i].energy)
	}
	fmt.Println("\nShape checks (the reproduction target):")
	fmt.Printf("  E-coord degrades performance the most:      %v\n",
		res.Rows[1].ViolationPct > res.Rows[0].ViolationPct)
	fmt.Printf("  rule-based coordination beats the baseline: %v\n",
		res.Rows[2].ViolationPct < res.Rows[0].ViolationPct)
	fmt.Printf("  adaptive T_ref improves on fixed T_ref:     %v\n",
		res.Rows[3].ViolationPct < res.Rows[2].ViolationPct)
	fmt.Printf("  single-step scaling is the best performer:  %v\n",
		res.Rows[4].ViolationPct <= res.Rows[3].ViolationPct)
	fmt.Printf("  E-coord spends the least fan energy:        %v\n",
		res.Rows[1].NormFanEnergy < res.Rows[0].NormFanEnergy)
	fmt.Printf("  adaptive T_ref cuts R-coord's fan energy:   %v\n",
		res.Rows[3].NormFanEnergy < res.Rows[2].NormFanEnergy)
}
