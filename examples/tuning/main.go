// Tuning: run the closed-loop Ziegler–Nichols procedure of Sec. IV-A
// against the full simulated platform (lag, quantization and all) at the
// paper's two operating regions, build the adaptive gain schedule, and
// verify the tuned closed loop is stable at both operating points.
package main

import (
	"fmt"
	"log"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/tuning"
	"repro/internal/units"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	cfg := sim.Default()
	speeds := []units.RPM{2000, 6000}
	fmt.Println("Ziegler-Nichols closed-loop tuning at the Sec. IV-B regions")

	results, err := core.TuneRegions(cfg, speeds, 0.7, core.DefaultFanInterval, tuning.NoOvershoot)
	if err != nil {
		log.Fatal(err)
	}
	regions := make([]control.Region, 0, len(results))
	for _, r := range results {
		fmt.Printf("  %v: Ku = %.0f rpm/°C, Pu = %.0f s  ->  KP %.0f, KI %.0f, KD %.0f\n",
			r.Region.RefSpeed, float64(r.Ultimate.Ku), float64(r.Ultimate.Pu),
			r.Region.Gains.KP, r.Region.Gains.KI, r.Region.Gains.KD)
		regions = append(regions, r.Region)
	}
	ratio := results[1].Region.Gains.KP / results[0].Region.Gains.KP
	fmt.Printf("  gain ratio 6000/2000 = %.1fx — the Sec. IV-B nonlinearity\n\n", ratio)

	// Verify: the gain-scheduled controller holds both operating points
	// without sustained oscillation.
	adaptive, err := control.NewAdaptivePID(regions, 72, control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed})
	if err != nil {
		log.Fatal(err)
	}
	adaptive.SetSlewFrac(0.6, 400)
	guard, err := control.NewQuantGuard(adaptive, 1)
	if err != nil {
		log.Fatal(err)
	}
	pol, err := core.NewFanOnlyPolicy("tuned-adaptive", guard, core.DefaultFanInterval, cfg)
	if err != nil {
		log.Fatal(err)
	}
	server, err := sim.NewPhysicalServer(cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sim.Run(server, sim.RunConfig{
		Duration:  2400,
		Workload:  workload.PaperSquare(1200),
		Policy:    pol,
		Record:    true,
		WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1200},
	})
	if err != nil {
		log.Fatal(err)
	}
	fan := res.Traces.Get("fan_cmd").Window(800, 2400)
	osc := tuning.Classify(fan.Values(), 300, 0.5)
	fmt.Printf("closed-loop verification over a 0.1/0.7 square wave:\n")
	fmt.Printf("  fan trace verdict: %v (amplitude ±%.0f rpm)\n", osc.Verdict, osc.Amplitude)
	fmt.Printf("  junction max %.1f °C, mean %.1f °C\n",
		float64(res.Metrics.MaxJunction), float64(res.Metrics.MeanJunction))
}
