// Multicore: the scenario the paper's introduction warns about — three
// local controllers (variable fan speed, CPU P-state capping, and the
// OS's temperature-aware workload scheduler) active on the same N-core
// server at once. Free-running, their interactions throttle the machine;
// serialized through performance-biased coordination, the fan and the
// scheduler absorb the thermal work and the cap almost never bites.
package main

import (
	"fmt"
	"log"

	"repro/internal/multicore"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	cfg := multicore.DefaultConfig()
	cfg.Base.Ambient = 30
	noisy, err := workload.NewNoisy(workload.PaperSquare(600), 0.04, cfg.Base.Tick, 7)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("four-core server, consolidated initial placement, 1 h horizon\n\n")
	fmt.Printf("%-14s %12s %12s %10s %10s %10s\n",
		"mode", "violations", "migrations", "fanE(kJ)", "Tmax(°C)", "spread(°C)")
	for _, coordinate := range []bool{false, true} {
		res, err := multicore.Run(multicore.RunConfig{
			Config:     cfg,
			Duration:   3600,
			Workload:   noisy,
			Skewed:     true,
			Coordinate: coordinate,
		})
		if err != nil {
			log.Fatal(err)
		}
		mode := "free-running"
		if coordinate {
			mode = "coordinated"
		}
		fmt.Printf("%-14s %11.2f%% %12d %10.2f %10.1f %10.2f\n",
			mode, res.ViolationFrac*100, res.Migrations,
			float64(res.FanEnergy)/1000, float64(res.MaxJunction), res.CoreSpread)
	}
	fmt.Println("\nfree-running: the capper reacts to every hotspot the scheduler is")
	fmt.Println("still moving, throttling the socket; coordination lets the fan and")
	fmt.Println("the migrations do the cooling and keeps the cap open.")
}
