// Multicore: the scenario the paper's introduction warns about — three
// local controllers (variable fan speed, CPU P-state capping, and the
// OS's temperature-aware workload scheduler) active on the same N-core
// server at once. Free-running, their interactions throttle the machine;
// serialized through performance-biased coordination, the fan and the
// scheduler absorb the thermal work and the cap almost never bites. Both
// modes are one declarative multicore scenario each, differing in a
// single boolean.
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	base := sim.Default()
	base.Ambient = 30

	fmt.Printf("four-core server, consolidated initial placement, 1 h horizon\n\n")
	fmt.Printf("%-14s %12s %12s %10s %10s %10s\n",
		"mode", "violations", "migrations", "fanE(kJ)", "Tmax(°C)", "spread(°C)")
	for _, coordinate := range []bool{false, true} {
		out, err := scenario.Run(scenario.Spec{
			Kind:     scenario.KindMulticore,
			Name:     "multicore",
			Base:     &base,
			Duration: 3600,
			Multicore: &scenario.MulticoreSpec{
				Workload: scenario.FactoryRef{Name: "noisy-square", Seed: 7,
					Params: scenario.Params{"period": 600, "sigma": 0.04}},
				Skewed:     true,
				Coordinate: coordinate,
			},
		})
		if err != nil {
			log.Fatal(err)
		}
		u := &out.Units[0]
		mode := "free-running"
		if coordinate {
			mode = "coordinated"
		}
		fmt.Printf("%-14s %11.2f%% %12d %10.2f %10.1f %10.2f\n",
			mode, u.Metric(scenario.MetricViolationFrac, 0)*100,
			int(u.Metric(scenario.MetricMigrations, 0)),
			u.Metric(scenario.MetricFanEnergyJ, 0)/1000,
			u.Metric(scenario.MetricMaxJunctionC, 0),
			u.Metric(scenario.MetricCoreSpreadC, 0))
	}
	fmt.Println("\nfree-running: the capper reacts to every hotspot the scheduler is")
	fmt.Println("still moving, throttling the socket; coordination lets the fan and")
	fmt.Println("the migrations do the cooling and keeps the cap open.")
}
