// Datacenter: manage a small rack of heterogeneous servers — different
// inlet temperatures (hot and cold aisle positions) and different
// workload mixes — each under its own DTM instance, and aggregate the
// fleet's violations and energy. Demonstrates that the library's policies
// are per-server objects with no shared state.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

type node struct {
	name    string
	ambient units.Celsius
	gen     func(cfg sim.Config) (workload.Generator, error)
}

func main() {
	log.SetFlags(0)

	rack := []node{
		{"web-01 (cold aisle)", 24, func(cfg sim.Config) (workload.Generator, error) {
			return workload.NewNoisy(workload.PaperSquare(400), 0.04, cfg.Tick, 11)
		}},
		{"web-02 (mid aisle)", 28, func(cfg sim.Config) (workload.Generator, error) {
			return workload.Markov{IdleU: 0.15, BusyU: 0.85, Dwell: 45, PIdleToBusy: 0.25, PBusyToIdle: 0.2, Seed: 12}, nil
		}},
		{"batch-01 (hot aisle)", 32, func(cfg sim.Config) (workload.Generator, error) {
			noisy, err := workload.NewNoisy(workload.Constant{U: 0.65}, 0.05, cfg.Tick, 13)
			if err != nil {
				return nil, err
			}
			return workload.NewSpiky(noisy, workload.PeriodicSpikes(200, 500, 30, 1.0, 6))
		}},
		{"batch-02 (hot aisle)", 33, func(cfg sim.Config) (workload.Generator, error) {
			return workload.PRBS{Low: 0.2, High: 0.8, Dwell: 90, Seed: 14}, nil
		}},
	}

	const horizon = 3600
	fmt.Printf("rack simulation: %d nodes, %d s horizon, per-node DTM (%s)\n\n",
		len(rack), horizon, "R-coord+A-Tref+SSfan")
	fmt.Printf("%-22s %8s %12s %12s %10s %8s\n",
		"node", "amb(°C)", "violations", "fanE(kJ)", "meanFan", "Tmax")

	var totalViol, totalTicks float64
	var totalFanE, totalCPUE units.Joule
	for _, n := range rack {
		cfg := sim.Default()
		cfg.Ambient = n.ambient
		gen, err := n.gen(cfg)
		if err != nil {
			log.Fatalf("%s: %v", n.name, err)
		}
		dtm, err := core.NewFullStack(cfg)
		if err != nil {
			log.Fatalf("%s: %v", n.name, err)
		}
		server, err := sim.NewPhysicalServer(cfg)
		if err != nil {
			log.Fatalf("%s: %v", n.name, err)
		}
		res, err := sim.Run(server, sim.RunConfig{
			Duration:  horizon,
			Workload:  gen,
			Policy:    dtm,
			WarmStart: &sim.WarmPoint{Util: 0.2, Fan: 1500},
		})
		if err != nil {
			log.Fatalf("%s: %v", n.name, err)
		}
		m := res.Metrics
		fmt.Printf("%-22s %8.0f %11.2f%% %12.2f %10.0f %8.1f\n",
			n.name, float64(n.ambient), m.ViolationFrac*100,
			float64(m.FanEnergy)/1000, float64(m.MeanFanSpeed), float64(m.MaxJunction))
		totalViol += m.ViolationFrac * float64(m.Ticks)
		totalTicks += float64(m.Ticks)
		totalFanE += m.FanEnergy
		totalCPUE += m.CPUEnergy
	}

	fmt.Printf("\nfleet: %.2f%% violations, %.1f kJ fan energy, %.1f kJ CPU energy\n",
		totalViol/totalTicks*100, float64(totalFanE)/1000, float64(totalCPUE)/1000)
	fmt.Printf("fan share of total energy: %.2f%%\n",
		float64(totalFanE)/float64(totalFanE+totalCPUE)*100)
}
