// Datacenter: manage a small rack of heterogeneous servers through the
// scenario layer — cold/hot-aisle positions map to inlet temperatures,
// the hot aisle recirculates upstream exhaust into downstream intakes,
// and every node runs its own workload mix under its own DTM instance.
// The whole rack is one declarative fleet spec: nodes name their
// workloads and policies in the scenario registry, scenario.Run resolves
// the shared inlet field through the fleet engine, and the printed view
// reads straight off the normalized outcome.
//
// The rack runs as a fleetcoord scenario, so one outcome carries both
// control modes: every node under its own DTM only (the "fleet:" local
// summary) and the same rack under the rack-level global coordinator,
// which migrates workload share away from hot-inlet nodes between
// relaxation passes (the "coordinated:" summary and the share column).
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// rackSeed roots all workload randomness; per-node streams derive from it
// through the stats.SubSeed mixing hash (consecutive literal seeds would
// put neighbours on correlated generator streams).
const rackSeed = 11

func main() {
	log.SetFlags(0)

	full := scenario.FactoryRef{Name: "full"}
	warm := &sim.WarmPoint{Util: 0.2, Fan: 1500}
	seed := func(i int) int64 { return stats.SubSeed(rackSeed, int64(i)) }

	spec := scenario.Spec{
		Kind:     scenario.KindFleetCoord,
		Name:     "datacenter",
		Duration: 3600,
		Fleet: &scenario.FleetSpec{
			Nodes: []scenario.FleetNode{
				{
					Name: "web-01", Aisle: "cold", Slot: 0, Policy: full, WarmStart: warm,
					Workload: scenario.FactoryRef{Name: "noisy-square", Seed: seed(0),
						Params: scenario.Params{"period": 400, "sigma": 0.04}},
				},
				{
					Name: "web-02", Aisle: "mid", Slot: 0, Policy: full, WarmStart: warm,
					Workload: scenario.FactoryRef{Name: "markov", Seed: seed(1),
						Params: scenario.Params{"idle_u": 0.15, "busy_u": 0.85, "dwell": 45, "p_idle_busy": 0.25, "p_busy_idle": 0.2}},
				},
				{
					Name: "batch-01", Aisle: "hot", Slot: 0, Policy: full, WarmStart: warm,
					Workload: scenario.FactoryRef{Name: "spiky-batch", Seed: seed(2),
						Params: scenario.Params{"u": 0.65, "sigma": 0.05, "first": 200, "every": 500, "len": 30, "level": 1.0, "count": 6}},
				},
				{
					Name: "batch-02", Aisle: "hot", Slot: 1, Policy: full, WarmStart: warm,
					Workload: scenario.FactoryRef{Name: "prbs", Seed: seed(3),
						Params: scenario.Params{"low": 0.2, "high": 0.8, "dwell": 90}},
				},
			},
			Supply:       24,
			AisleOffsets: &[3]units.Celsius{0, 4, 8},
			// A densely packed hot aisle: batch-02 breathes a strong dose
			// of batch-01's exhaust, which is exactly the slack the
			// coordinator's load placement exists to exploit.
			Recirc: 0.03,
		},
	}

	out, err := scenario.Run(spec)
	if err != nil {
		log.Fatal(err)
	}
	agg := out.Aggregate

	fmt.Printf("rack simulation: %d nodes, %.0f s horizon, per-node DTM (%s) + rack coordinator, %d recirculation pass(es)\n\n",
		len(out.Units), float64(spec.Duration), "R-coord+A-Tref+SSfan", int(agg[scenario.MetricPasses]))
	fmt.Printf("%-10s %6s %9s %7s %12s %12s %10s %8s\n",
		"node", "aisle", "inlet(°C)", "share", "violations", "fanE(kJ)", "meanFan", "Tmax")
	for i := range out.Units {
		u := &out.Units[i]
		fmt.Printf("%-10s %6s %9.1f %7.3f %11.2f%% %12.2f %10.0f %8.1f\n",
			u.Name, u.Labels["aisle"], u.Metric(scenario.MetricInletC, 0),
			u.Metric(scenario.MetricShare, 1),
			u.Metric(scenario.MetricViolationFrac, 0)*100,
			u.Metric(scenario.MetricFanEnergyJ, 0)/1000,
			u.Metric(scenario.MetricMeanFanRPM, 0),
			u.Metric(scenario.MetricMaxJunctionC, 0))
	}

	fmt.Printf("\nper aisle:\n")
	for _, aisle := range []string{"cold", "mid", "hot"} {
		prefix := "aisle_" + aisle + "_"
		n, ok := agg[prefix+"nodes"]
		if !ok || n == 0 {
			continue
		}
		fmt.Printf("  %-5s %d node(s): inlet %.1f°C, %.2f%% violations, %.1f kJ fan\n",
			aisle, int(n), agg[prefix+"mean_inlet_c"], agg[prefix+scenario.MetricViolationFrac]*100,
			agg[prefix+scenario.MetricFanEnergyJ]/1000)
	}

	local := func(key string) float64 { return agg[scenario.LocalMetricPrefix+key] }
	fmt.Printf("\nfleet: %.2f%% violations, %.1f kJ fan energy, %.1f kJ CPU energy (per-node control)\n",
		local(scenario.MetricViolationFrac)*100, local(scenario.MetricFanEnergyJ)/1000,
		local(scenario.MetricCPUEnergyJ)/1000)
	fmt.Printf("coordinated: %.2f%% violations, %.1f kJ fan energy, %.1f kJ CPU energy (best round %d, migrated share %.1f%%)\n",
		agg[scenario.MetricViolationFrac]*100, agg[scenario.MetricFanEnergyJ]/1000,
		agg[scenario.MetricCPUEnergyJ]/1000,
		int(agg[scenario.MetricCoordBestRound]), agg[scenario.MetricCoordMigrated]*100)
	fmt.Printf("fan share of total energy: %.2f%%\n", agg[scenario.MetricFanEnergyShare]*100)
	fmt.Printf("rack power: peak %.0f W, mean %.0f W\n",
		agg[scenario.MetricPeakRackPowerW], agg[scenario.MetricMeanRackPowerW])
}
