// Datacenter: manage a small rack of heterogeneous servers through the
// fleet layer — cold/hot-aisle positions map to inlet temperatures, the
// hot aisle recirculates upstream exhaust into downstream intakes, and
// every node runs its own workload mix under its own DTM instance. The
// example is a thin consumer of internal/fleet: it declares the topology
// and prints the aggregated rack view; simulation, the shared inlet
// field, and the parallel batch execution live in the library.
package main

import (
	"fmt"
	"log"

	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workload"
)

// rackSeed roots all workload randomness; per-node streams derive from it
// through the stats.SubSeed mixing hash (consecutive literal seeds would
// put neighbours on correlated generator streams).
const rackSeed = 11

func main() {
	log.SetFlags(0)

	fullStack := fleet.FullStack
	warm := &sim.WarmPoint{Util: 0.2, Fan: 1500}
	seed := func(i int) int64 { return stats.SubSeed(rackSeed, int64(i)) }

	cfg := fleet.Config{
		Nodes: []fleet.NodeSpec{
			{
				Name: "web-01", Aisle: fleet.Cold, Slot: 0,
				Config: sim.Default(), Policy: fullStack, WarmStart: warm,
				Workload: func(cfg sim.Config) (workload.Generator, error) {
					return workload.NewNoisy(workload.PaperSquare(400), 0.04, cfg.Tick, seed(0))
				},
			},
			{
				Name: "web-02", Aisle: fleet.Mid, Slot: 0,
				Config: sim.Default(), Policy: fullStack, WarmStart: warm,
				Workload: func(cfg sim.Config) (workload.Generator, error) {
					return workload.Markov{
						IdleU: 0.15, BusyU: 0.85, Dwell: 45,
						PIdleToBusy: 0.25, PBusyToIdle: 0.2, Seed: seed(1),
					}, nil
				},
			},
			{
				Name: "batch-01", Aisle: fleet.Hot, Slot: 0,
				Config: sim.Default(), Policy: fullStack, WarmStart: warm,
				Workload: func(cfg sim.Config) (workload.Generator, error) {
					noisy, err := workload.NewNoisy(workload.Constant{U: 0.65}, 0.05, cfg.Tick, seed(2))
					if err != nil {
						return nil, err
					}
					return workload.NewSpiky(noisy, workload.PeriodicSpikes(200, 500, 30, 1.0, 6))
				},
			},
			{
				Name: "batch-02", Aisle: fleet.Hot, Slot: 1,
				Config: sim.Default(), Policy: fullStack, WarmStart: warm,
				Workload: func(cfg sim.Config) (workload.Generator, error) {
					return workload.PRBS{Low: 0.2, High: 0.8, Dwell: 90, Seed: seed(3)}, nil
				},
			},
		},
		Supply:       24,
		AisleOffsets: fleet.DefaultOffsets(),
		Recirc:       0.01, // batch-02 breathes batch-01's exhaust
		Duration:     3600,
	}

	res, err := fleet.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("rack simulation: %d nodes, %.0f s horizon, per-node DTM (%s), %d recirculation pass(es)\n\n",
		len(res.Nodes), float64(cfg.Duration), "R-coord+A-Tref+SSfan", res.Passes)
	fmt.Printf("%-10s %6s %9s %12s %12s %10s %8s\n",
		"node", "aisle", "inlet(°C)", "violations", "fanE(kJ)", "meanFan", "Tmax")
	for _, n := range res.Nodes {
		m := n.Metrics
		fmt.Printf("%-10s %6s %9.1f %11.2f%% %12.2f %10.0f %8.1f\n",
			n.Name, n.Aisle, float64(n.Inlet), m.ViolationFrac*100,
			float64(m.FanEnergy)/1000, float64(m.MeanFanSpeed), float64(m.MaxJunction))
	}

	fmt.Printf("\nper aisle:\n")
	for a, am := range res.Aisles {
		if am.Nodes == 0 {
			continue
		}
		fmt.Printf("  %-5s %d node(s): inlet %.1f°C, %.2f%% violations, %.1f kJ fan\n",
			fleet.Aisle(a), am.Nodes, float64(am.MeanInlet), am.ViolationFrac*100,
			float64(am.FanEnergy)/1000)
	}

	fmt.Printf("\nfleet: %.2f%% violations, %.1f kJ fan energy, %.1f kJ CPU energy\n",
		res.ViolationFrac*100, float64(res.FanEnergy)/1000, float64(res.CPUEnergy)/1000)
	fmt.Printf("fan share of total energy: %.2f%%\n", res.FanEnergyShare*100)
	fmt.Printf("rack power: peak %.0f W, mean %.0f W\n",
		float64(res.PeakRackPower), float64(res.MeanRackPower))
}
