// Quickstart: build the Table I server, attach the paper's full DTM stack
// (adaptive PID fan control + rule-based coordination + predictive
// set-point + single-step scaling), run ten simulated minutes of a noisy
// workload and print the evaluation metrics.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
)

func main() {
	log.SetFlags(0)

	// The platform: Table I parameters (96-160 W CPU, 29.4 W fan at
	// 8500 rpm, 10 s telemetry lag, 1 °C ADC quantization).
	cfg := sim.Default()
	server, err := sim.NewPhysicalServer(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The controller: the paper's complete proposal.
	dtm, err := core.NewFullStack(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// The workload: the evaluation's 0.1/0.7 square wave with Gaussian
	// noise (σ = 0.04).
	noisy, err := workload.NewNoisy(workload.PaperSquare(300), 0.04, cfg.Tick, 1)
	if err != nil {
		log.Fatal(err)
	}

	res, err := sim.Run(server, sim.RunConfig{
		Duration:  600,
		Workload:  noisy,
		Policy:    dtm,
		WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1500},
	})
	if err != nil {
		log.Fatal(err)
	}

	m := res.Metrics
	fmt.Println("quickstart: 10 simulated minutes under", dtm.Name())
	fmt.Printf("  deadline violations: %.2f%%\n", m.ViolationFrac*100)
	fmt.Printf("  fan energy:          %.1f J (mean %.0f rpm)\n", float64(m.FanEnergy), float64(m.MeanFanSpeed))
	fmt.Printf("  junction:            mean %.1f °C, max %.1f °C\n", float64(m.MeanJunction), float64(m.MaxJunction))
	fmt.Printf("  comfort zone (< %v) exceeded for %.0f s\n", cfg.TLimit, float64(m.TimeAboveLimit))
}
