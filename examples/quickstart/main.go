// Quickstart: declare the paper's evaluation as a scenario — the Table I
// server under the full DTM stack (adaptive PID fan control + rule-based
// coordination + predictive set-point + single-step scaling) driven by a
// noisy square wave — run it through the unified scenario layer and
// print the evaluation metrics. Everything is data: the workload and
// policy are registry names, the platform is the embedded config, and
// the same spec could be hashed into a result store or swept over a grid.
package main

import (
	"fmt"
	"log"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	log.SetFlags(0)

	// The platform: Table I parameters (96-160 W CPU, 29.4 W fan at
	// 8500 rpm, 10 s telemetry lag, 1 °C ADC quantization).
	cfg := sim.Default()

	spec := scenario.Spec{
		Kind:     scenario.KindSingle,
		Name:     "quickstart",
		Base:     &cfg,
		Duration: 600,
		Jobs: []scenario.JobSpec{{
			// The workload: the evaluation's 0.1/0.7 square wave with
			// Gaussian noise (σ = 0.04).
			Workload: scenario.FactoryRef{
				Name:   "noisy-square",
				Seed:   1,
				Params: scenario.Params{"period": 300, "sigma": 0.04},
			},
			// The controller: the paper's complete proposal.
			Policy:    scenario.FactoryRef{Name: "full"},
			WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1500},
		}},
	}

	out, err := scenario.Run(spec)
	if err != nil {
		log.Fatal(err)
	}

	u := &out.Units[0]
	m := scenario.SimMetrics(u)
	fmt.Println("quickstart: 10 simulated minutes under", u.Labels["policy"])
	fmt.Printf("  deadline violations: %.2f%%\n", m.ViolationFrac*100)
	fmt.Printf("  fan energy:          %.1f J (mean %.0f rpm)\n", float64(m.FanEnergy), float64(m.MeanFanSpeed))
	fmt.Printf("  junction:            mean %.1f °C, max %.1f °C\n", float64(m.MeanJunction), float64(m.MaxJunction))
	fmt.Printf("  comfort zone (< %v) exceeded for %.0f s\n", cfg.TLimit, float64(m.TimeAboveLimit))
}
