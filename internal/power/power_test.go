package power

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func mustCPU(t *testing.T) CPUModel {
	t.Helper()
	m, err := NewCPUModel(96, 160)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func mustFan(t *testing.T) FanModel {
	t.Helper()
	m, err := NewFanModel(29.4, 8500)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCPUModelTableI(t *testing.T) {
	m := mustCPU(t)
	if m.Static != 96 || m.Dynamic != 64 {
		t.Fatalf("model = %+v, want static 96 dynamic 64", m)
	}
	if got := m.Power(0); got != 96 {
		t.Errorf("P(0) = %v, want 96", got)
	}
	if got := m.Power(1); got != 160 {
		t.Errorf("P(1) = %v, want 160", got)
	}
	if got := m.Power(0.5); got != 128 {
		t.Errorf("P(0.5) = %v, want 128", got)
	}
	if got := m.Max(); got != 160 {
		t.Errorf("Max = %v", got)
	}
}

func TestCPUModelClampsUtilization(t *testing.T) {
	m := mustCPU(t)
	if got := m.Power(-1); got != 96 {
		t.Errorf("P(-1) = %v, want clamp to 96", got)
	}
	if got := m.Power(2); got != 160 {
		t.Errorf("P(2) = %v, want clamp to 160", got)
	}
}

func TestCPUModelValidation(t *testing.T) {
	if _, err := NewCPUModel(-1, 100); err == nil {
		t.Error("negative idle accepted")
	}
	if _, err := NewCPUModel(100, 50); err == nil {
		t.Error("max < idle accepted")
	}
	if _, err := NewCPUModel(50, -1); err == nil {
		t.Error("negative max accepted")
	}
}

func TestCPUModelInverse(t *testing.T) {
	m := mustCPU(t)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		u := units.Utilization(math.Mod(math.Abs(raw), 1))
		p := m.Power(u)
		back := m.UtilizationFor(p)
		return math.Abs(float64(back-u)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	// Degenerate dynamic range.
	flat, _ := NewCPUModel(50, 50)
	if flat.UtilizationFor(50) != 0 {
		t.Error("flat model inverse should be 0")
	}
}

func TestFanModelCubicLaw(t *testing.T) {
	m := mustFan(t)
	if got := m.Power(8500); math.Abs(float64(got)-29.4) > 1e-9 {
		t.Errorf("P(max) = %v, want 29.4", got)
	}
	if got := m.Power(0); got != 0 {
		t.Errorf("P(0) = %v", got)
	}
	// Half speed draws 1/8 the power.
	if got := m.Power(4250); math.Abs(float64(got)-29.4/8) > 1e-9 {
		t.Errorf("P(half) = %v, want %v", got, 29.4/8)
	}
	// Clamping beyond max.
	if got := m.Power(20000); math.Abs(float64(got)-29.4) > 1e-9 {
		t.Errorf("P(20000) = %v, want clamp to 29.4", got)
	}
	if got := m.Power(-100); got != 0 {
		t.Errorf("P(-100) = %v, want 0", got)
	}
}

func TestFanModelValidation(t *testing.T) {
	if _, err := NewFanModel(-1, 8500); err == nil {
		t.Error("negative power accepted")
	}
	if _, err := NewFanModel(29.4, 0); err == nil {
		t.Error("zero max speed accepted")
	}
}

func TestFanModelInverseProperty(t *testing.T) {
	m := mustFan(t)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		s := units.RPM(math.Mod(math.Abs(raw), 8500))
		p := m.Power(s)
		back := m.SpeedFor(p)
		return math.Abs(float64(back-s)) < 1e-6*8500
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	zero := FanModel{MaxPower: 0, MaxSpeed: 8500}
	if zero.SpeedFor(10) != 0 {
		t.Error("zero-power fan inverse should be 0")
	}
}

func TestFanPowerMonotoneProperty(t *testing.T) {
	m := mustFan(t)
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		sa := units.RPM(math.Mod(math.Abs(a), 8500))
		sb := units.RPM(math.Mod(math.Abs(b), 8500))
		if sa > sb {
			sa, sb = sb, sa
		}
		return m.Power(sa) <= m.Power(sb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBudgetTotal(t *testing.T) {
	b := Budget{CPU: mustCPU(t), Fan: mustFan(t), NSockets: 2}
	got := b.Total(0.5, 8500)
	want := 2 * (128 + 29.4)
	if math.Abs(float64(got)-want) > 1e-9 {
		t.Errorf("Total = %v, want %v", got, want)
	}
	// NSockets < 1 treated as 1.
	b1 := Budget{CPU: mustCPU(t), Fan: mustFan(t)}
	if got := b1.Total(0, 0); got != 96 {
		t.Errorf("defaulted sockets Total = %v, want 96", got)
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	a.Add(100, 2)
	a.Add(50, 2)
	if got := a.Total(); got != 300 {
		t.Errorf("Total = %v, want 300", got)
	}
	if got := a.Duration(); got != 4 {
		t.Errorf("Duration = %v, want 4", got)
	}
	if got := a.MeanPower(); got != 75 {
		t.Errorf("MeanPower = %v, want 75", got)
	}
	a.Reset()
	if a.Total() != 0 || a.Duration() != 0 || a.MeanPower() != 0 {
		t.Error("Reset did not clear")
	}
}

func TestAccumulatorPanicsOnNegativeDt(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative dt did not panic")
		}
	}()
	var a Accumulator
	a.Add(10, -1)
}

func TestAccumulatorAdditivityProperty(t *testing.T) {
	// Splitting an interval in two accumulates the same energy.
	f := func(p, dtRaw float64) bool {
		if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(dtRaw) || math.IsInf(dtRaw, 0) {
			return true
		}
		p = math.Mod(p, 1e4)
		dt := math.Mod(math.Abs(dtRaw), 1e4)
		var whole, split Accumulator
		whole.Add(units.Watt(p), units.Seconds(dt))
		split.Add(units.Watt(p), units.Seconds(dt/2))
		split.Add(units.Watt(p), units.Seconds(dt/2))
		return math.Abs(float64(whole.Total()-split.Total())) < 1e-6*(1+math.Abs(float64(whole.Total())))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
