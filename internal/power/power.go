// Package power implements the server power models of the paper
// (Sec. III-B, Table I): a utilization-linear CPU model (Eq. 1), the cubic
// fan-power law, and energy accounting over a simulation run.
package power

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// CPUModel is the linear CPU power model of Eq. 1:
// P_cpu = P_static + P_dyn * u, with u the CPU utilization in [0, 1].
type CPUModel struct {
	Static  units.Watt // idle (static) power, Table I: 96 W
	Dynamic units.Watt // maximum dynamic power: P_max - P_idle = 64 W
}

// NewCPUModel builds a CPUModel from the Table I quantities: idle power
// (u = 0) and maximum power (u = 1). It returns an error when max < idle or
// either is negative.
func NewCPUModel(idle, max units.Watt) (CPUModel, error) {
	if idle < 0 || max < 0 {
		return CPUModel{}, fmt.Errorf("power: negative CPU power (idle %v, max %v)", idle, max)
	}
	if max < idle {
		return CPUModel{}, fmt.Errorf("power: max power %v below idle %v", max, idle)
	}
	return CPUModel{Static: idle, Dynamic: max - idle}, nil
}

// Power returns the CPU power at utilization u, clamped to [0, 1].
func (m CPUModel) Power(u units.Utilization) units.Watt {
	u = units.ClampUtil(u)
	return m.Static + units.Watt(float64(m.Dynamic)*float64(u))
}

// Max returns the power at full utilization.
func (m CPUModel) Max() units.Watt { return m.Static + m.Dynamic }

// UtilizationFor inverts the model: the utilization that draws power p,
// clamped to [0, 1]. A zero-dynamic model returns 0.
func (m CPUModel) UtilizationFor(p units.Watt) units.Utilization {
	if m.Dynamic == 0 {
		return 0
	}
	return units.ClampUtil(units.Utilization((p - m.Static) / m.Dynamic))
}

// FanModel is the cubic fan power law P_fan = P_max * (s / s_max)^3
// (Sec. I: P_fan ∝ s_fan^3), parameterized by the Table I values
// 29.4 W at 8500 rpm.
type FanModel struct {
	MaxPower units.Watt // power at maximum speed, Table I: 29.4 W
	MaxSpeed units.RPM  // maximum speed, Table I: 8500 rpm
}

// NewFanModel validates and builds a FanModel.
func NewFanModel(maxPower units.Watt, maxSpeed units.RPM) (FanModel, error) {
	if maxPower < 0 {
		return FanModel{}, fmt.Errorf("power: negative fan power %v", maxPower)
	}
	if maxSpeed <= 0 {
		return FanModel{}, fmt.Errorf("power: non-positive max fan speed %v", maxSpeed)
	}
	return FanModel{MaxPower: maxPower, MaxSpeed: maxSpeed}, nil
}

// Power returns the fan power at speed s. Speeds are clamped to
// [0, MaxSpeed].
func (m FanModel) Power(s units.RPM) units.Watt {
	frac := units.Clamp(float64(s)/float64(m.MaxSpeed), 0, 1)
	return units.Watt(float64(m.MaxPower) * frac * frac * frac)
}

// SpeedFor inverts the cubic law: the speed that draws power p, clamped to
// [0, MaxSpeed].
func (m FanModel) SpeedFor(p units.Watt) units.RPM {
	if m.MaxPower == 0 {
		return 0
	}
	frac := units.Clamp(float64(p)/float64(m.MaxPower), 0, 1)
	return units.RPM(float64(m.MaxSpeed) * math.Cbrt(frac))
}

// Budget aggregates CPU and fan power into the server total of Sec. III-B:
// P_tot = P_cpu + P_fan, for a server with NSockets identical sockets each
// carrying one fan.
type Budget struct {
	CPU      CPUModel
	Fan      FanModel
	NSockets int
}

// Total returns the server power at the given utilization and fan speed.
// All sockets run the same workload and fan speed (the paper's balanced
// assumption).
func (b Budget) Total(u units.Utilization, s units.RPM) units.Watt {
	n := b.NSockets
	if n < 1 {
		n = 1
	}
	return units.Watt(float64(n)) * (b.CPU.Power(u) + b.Fan.Power(s))
}

// Accumulator integrates power into energy with left-rectangle steps, the
// natural scheme for a fixed-step simulator where power is piecewise
// constant over a step.
type Accumulator struct {
	total units.Joule
	time  units.Seconds
}

// Add accrues power p held for duration dt. Negative dt panics: simulated
// time never flows backward.
func (a *Accumulator) Add(p units.Watt, dt units.Seconds) {
	if dt < 0 {
		panic(fmt.Sprintf("power: negative duration %v", dt))
	}
	a.total += units.Joule(float64(p) * float64(dt))
	a.time += dt
}

// Total returns the accumulated energy.
func (a *Accumulator) Total() units.Joule { return a.total }

// Duration returns the accumulated time.
func (a *Accumulator) Duration() units.Seconds { return a.time }

// MeanPower returns the average power over the accumulated duration, or 0
// if nothing has been accumulated.
func (a *Accumulator) MeanPower() units.Watt {
	if a.time == 0 {
		return 0
	}
	return units.Watt(float64(a.total) / float64(a.time))
}

// Reset clears the accumulator.
func (a *Accumulator) Reset() { a.total, a.time = 0, 0 }
