// Package core assembles the paper's full dynamic thermal management
// stack (Fig. 2): the adaptive PID fan-speed controller with quantization
// guard (Sec. IV), the deadzone CPU capper (Sec. III-A), and the global
// coordination layer (Sec. V) — rule-based action selection, predictive
// set-point scheduling, and single-step fan scaling — as sim.Policy
// implementations. The five Table III solutions are each one constructor
// call away.
package core

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/coord"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/units"
)

// CoordMode selects the global coordination scheme.
type CoordMode int

// CoordMode values.
const (
	// NoCoordination applies both local proposals independently — the
	// Table III baseline.
	NoCoordination CoordMode = iota
	// RuleBased serializes actions through the Table II rule matrix.
	RuleBased
	// EnergyAware is the E-coord baseline [6]: a lazy (energy-optimal)
	// fan set-point plus greedy ΔT/ΔW action selection at emergencies,
	// which always prefers throttling because throttling saves power.
	EnergyAware
)

// String implements fmt.Stringer.
func (m CoordMode) String() string {
	switch m {
	case NoCoordination:
		return "w/o-coordination"
	case RuleBased:
		return "r-coord"
	case EnergyAware:
		return "e-coord"
	default:
		return fmt.Sprintf("CoordMode(%d)", int(m))
	}
}

// Options configures a DTM policy. NewDTM applies the documented defaults
// to zero fields.
type Options struct {
	// Platform the DTM manages; used for actuator limits and the models
	// E-coord scores actions with. Required.
	Config sim.Config

	// FanInterval is Δt_fan^control (default 30 s, Sec. VI-A).
	FanInterval units.Seconds
	// RefTemp is the fan controller set-point T_ref^fan (default 75 °C).
	RefTemp units.Celsius

	// Mode selects the coordination scheme (default NoCoordination).
	Mode CoordMode

	// AdaptiveRef enables the predictive T_ref scheduler of Sec. V-B
	// over [RefLo, RefHi] (defaults 70 / 80 °C) with a moving-average
	// predictor of PredictorWindow CPU ticks (default 30).
	AdaptiveRef     bool
	RefLo, RefHi    units.Celsius
	PredictorWindow int

	// SingleStep enables the Sec. V-C fan boost: when the violated-tick
	// fraction over BoostWindow ticks (default 10) exceeds
	// BoostThreshold (default 0.3), the fan pins to maximum.
	SingleStep     bool
	BoostThreshold float64
	BoostWindow    int

	// Regions is the adaptive PID gain schedule (default DefaultRegions).
	Regions []control.Region
	// QuantGuard applies Eq. 10 with the sensor's quantization step
	// (default true).
	QuantGuard *bool
	// FanSlewPerDecision bounds how far one fan decision may move the
	// command (default 1500 rpm; negative disables). Sec. V-C's
	// N_trans^fan — multiple decision periods to traverse the range —
	// presumes exactly such a bound, and it caps the overshoot a
	// quantized error can command.
	FanSlewPerDecision units.RPM

	// CPU capper band and step (defaults 76 / 79 °C, 0.05, floor 0.5).
	// Under NoCoordination and RuleBased the band is re-derived every
	// tick to ride CapBandOffset above the current fan set-point — the
	// capper's hold band must sit strictly above the quantization
	// guard's hold band or the system deadlocks with a starved cap and
	// a held fan (both controllers inside their deadzones; see
	// DESIGN.md). CapLow/CapHigh seed the initial band and the E-coord
	// thresholds.
	CapLow, CapHigh units.Celsius
	CapStep         units.Utilization
	MinCap          units.Utilization
	// CapBandOffset is how far above the fan set-point (plus one
	// quantization step) the capper release threshold sits; the band is
	// CapBandWidth wide and clamped below TLimit. Defaults 0.5 / 2.5 °C.
	CapBandOffset units.Celsius
	CapBandWidth  units.Celsius
	// CoordEpoch is the global coordinator's action period (default
	// 5 s): performance-harming actions (cap cuts, E-coord escalations)
	// are serialized to at most one per epoch — "only one control
	// action at a time" (Sec. V-A) — while performance-restoring ones
	// (cap releases) pass freely, implementing the table's performance
	// bias.
	CoordEpoch units.Seconds

	// Emergency is the E-coord emergency threshold (default CapHigh).
	Emergency units.Celsius
}

func (o *Options) setDefaults() {
	if o.FanInterval == 0 {
		o.FanInterval = 30
	}
	if o.RefTemp == 0 {
		o.RefTemp = 75
	}
	if o.RefLo == 0 {
		o.RefLo = 70
	}
	if o.RefHi == 0 {
		// The paper scales T_ref up to 80 °C; with the 80 °C hardware
		// limit, 1 °C quantization and the 10 s lag, a set-point above
		// 78 leaves the capper no band to operate in, so the shipped
		// default stops there.
		o.RefHi = 78
	}
	if o.PredictorWindow == 0 {
		o.PredictorWindow = 30
	}
	if o.BoostThreshold == 0 {
		o.BoostThreshold = 0.3
	}
	if o.BoostWindow == 0 {
		o.BoostWindow = 10
	}
	if o.Regions == nil {
		o.Regions = DefaultRegions()
	}
	if o.FanSlewPerDecision == 0 {
		o.FanSlewPerDecision = 1500
	}
	if o.QuantGuard == nil {
		t := true
		o.QuantGuard = &t
	}
	if o.CapLow == 0 {
		o.CapLow = 76
	}
	if o.CapHigh == 0 {
		o.CapHigh = 79
	}
	if o.CapStep == 0 {
		o.CapStep = 0.05
	}
	if o.MinCap == 0 {
		// Real platforms floor the P-state cap near half throttle;
		// deeper caps would let a scheme "save" fan energy by starving
		// the machine outright.
		o.MinCap = 0.5
	}
	if o.CapBandOffset == 0 {
		o.CapBandOffset = 0.5
	}
	if o.CapBandWidth == 0 {
		o.CapBandWidth = 2.5
	}
	if o.CoordEpoch == 0 {
		o.CoordEpoch = 5
	}
	if o.Emergency == 0 {
		o.Emergency = o.CapHigh
	}
}

// DTM is the global controller of Fig. 2 as a sim.Policy.
type DTM struct {
	opt      Options
	name     string
	fan      control.FanController
	adaptive *control.AdaptivePID
	capper   *control.Capper
	ecoord   *coord.ECoord
	setpoint *coord.SetpointScheduler
	scaler   *coord.SingleStepScaler
	// relCPU and relTherm are the cached models releaseSpeed queries; they
	// are pure functions of the configuration, built once so boost
	// releases stay allocation-free on the tick path.
	relCPU   power.CPUModel
	relTherm *thermal.Server
	// tq is the platform ADC's quantization step, a pure function of the
	// configuration cached here because retuneCapperBand needs it every
	// tick.
	tq units.Celsius

	lastFan  units.Seconds
	fanEver  bool
	boosting bool
	// standingFanDir is the fan's most recent decision direction,
	// persisting until its next decision.
	standingFanDir coord.Direction
	// lastCut is the last performance-harming action instant; such
	// actions are serialized to one per CoordEpoch.
	lastCut units.Seconds
	everCut bool
	// lastRelease is the E-coord lazy cap-release instant.
	lastRelease units.Seconds
}

// NewDTM builds a DTM policy from the options.
func NewDTM(name string, opt Options) (*DTM, error) {
	opt.setDefaults()
	if err := opt.Config.Validate(); err != nil {
		return nil, err
	}
	if opt.FanInterval < opt.Config.Tick {
		return nil, fmt.Errorf("core: fan interval %v below tick %v", opt.FanInterval, opt.Config.Tick)
	}
	limits := control.Limits{Min: opt.Config.FanMinSpeed, Max: opt.Config.FanMaxSpeed}

	refTemp := opt.RefTemp
	if opt.Mode == EnergyAware {
		// The energy-greedy scheme runs the fan as lazily as the
		// hardware limit allows; cooling beyond that wastes energy by
		// its own objective.
		refTemp = opt.Emergency
	}
	adaptive, err := control.NewAdaptivePID(opt.Regions, refTemp, limits)
	if err != nil {
		return nil, err
	}
	if opt.FanSlewPerDecision > 0 {
		adaptive.SetSlewPerStep(opt.FanSlewPerDecision)
	}
	var fan control.FanController = adaptive
	if *opt.QuantGuard {
		guard, err := control.NewQuantGuard(adaptive, quantStep(opt.Config))
		if err != nil {
			return nil, err
		}
		fan = guard
	}
	capper, err := control.NewCapper(opt.CapLow, opt.CapHigh, opt.CapStep, opt.MinCap)
	if err != nil {
		return nil, err
	}
	d := &DTM{opt: opt, name: name, fan: fan, adaptive: adaptive, capper: capper,
		tq: units.Celsius(quantStep(opt.Config))}
	if relCPU, _, err := opt.Config.Models(); err == nil {
		d.relCPU = relCPU
		if relTherm, err := opt.Config.ThermalModel(); err == nil {
			d.relTherm = relTherm
		}
	}

	if opt.Mode == EnergyAware {
		cpu, fanModel, err := opt.Config.Models()
		if err != nil {
			return nil, err
		}
		ec, err := coord.NewECoord(opt.Emergency, opt.CapLow, 500, opt.CapStep, opt.MinCap,
			opt.Config.HeatSinkLaw, cpu, fanModel)
		if err != nil {
			return nil, err
		}
		d.ecoord = ec
	}
	if opt.AdaptiveRef {
		sp, err := coord.NewSetpointScheduler(opt.RefLo, opt.RefHi, opt.PredictorWindow)
		if err != nil {
			return nil, err
		}
		d.setpoint = sp
	}
	if opt.SingleStep {
		sc, err := coord.NewSingleStepScaler(opt.BoostThreshold, opt.BoostWindow, 1)
		if err != nil {
			return nil, err
		}
		d.scaler = sc
	}
	d.Reset()
	return d, nil
}

// quantStep returns the temperature quantization step of the platform's
// ADC, or 1 °C when quantization is disabled in the config.
func quantStep(cfg sim.Config) float64 {
	if cfg.Sensor.ADCBits <= 0 {
		return 1
	}
	levels := (1 << uint(cfg.Sensor.ADCBits)) - 1
	return (cfg.Sensor.RangeMax - cfg.Sensor.RangeMin) / float64(levels)
}

// Name implements sim.Policy.
func (d *DTM) Name() string { return d.name }

// Reset implements sim.Policy.
func (d *DTM) Reset() {
	d.fan.Reset()
	d.capper.Reset()
	if d.setpoint != nil {
		d.setpoint.Reset()
	}
	if d.scaler != nil {
		d.scaler.Reset()
	}
	d.lastFan = 0
	d.fanEver = false
	d.boosting = false
	d.standingFanDir = coord.Hold
	d.lastCut = 0
	d.everCut = false
	d.lastRelease = 0
	d.capper.Low, d.capper.High = d.opt.CapLow, d.opt.CapHigh
}

// fanTick reports whether a fan decision is due at time t.
func (d *DTM) fanTick(t units.Seconds) bool {
	if !d.fanEver {
		return true
	}
	return t-d.lastFan >= d.opt.FanInterval-1e-9
}

// retuneCapperBand slides the capper thresholds to ride above the current
// fan set-point: release below ref + T_Q + offset, throttle above that
// plus the band width, clamped below the hardware limit. This keeps the
// capper's hold band disjoint from the quantization guard's hold band —
// overlapping bands deadlock the platform at a starved cap (see Options).
func (d *DTM) retuneCapperBand() {
	lo := d.fan.Reference() + d.tq + d.opt.CapBandOffset
	hi := lo + d.opt.CapBandWidth
	if max := d.opt.Config.TLimit - 0.5; hi > max {
		hi = max
	}
	if lo > hi-1 {
		lo = hi - 1
	}
	d.capper.Low, d.capper.High = lo, hi
}

// Step implements sim.Policy.
func (d *DTM) Step(obs sim.Observation) sim.Command {
	// Predictive set-point: observe demand every CPU tick, reschedule
	// T_ref before any decision that reads it (Sec. V-B).
	if d.setpoint != nil {
		d.fan.SetReference(d.setpoint.Observe(obs.Demand))
	}
	if d.opt.Mode != EnergyAware {
		d.retuneCapperBand()
	}

	// Single-step boost pre-empts everything for the fan (Sec. V-C).
	// While boosted the PID is held (integral frozen, derivative
	// tracking) so the boost does not wind it toward the minimum.
	boosted := false
	releasing := false
	if d.scaler != nil {
		boosted = d.scaler.Observe(obs.Violated, obs.Measured, d.fan.Reference())
		releasing = d.boosting && !boosted
		d.boosting = boosted
	}

	// Local proposals.
	capProposal := d.capper.Decide(control.CapInputs{T: obs.T, Meas: obs.Measured, Actual: obs.Cap})
	fanProposal := obs.FanCmd
	fanDecided := false
	if boosted {
		if ho, ok := d.fan.(interface {
			ObserveHold(units.Celsius)
		}); ok {
			ho.ObserveHold(obs.Measured)
		}
	} else if d.fanTick(obs.T) {
		fanProposal = d.fan.Decide(control.FanInputs{T: obs.T, Meas: obs.Measured, Actual: obs.FanCmd})
		d.lastFan = obs.T
		d.fanEver = true
		fanDecided = true
	}

	// The fan's standing direction: the direction of its most recent
	// decision, persisting until the next one. The fan needs N_trans^fan
	// periods to act on a thermal event (Sec. V-C); while it is working
	// in a direction, the Table II rules weigh the cap proposal against
	// that standing intent, not just against an instantaneous snapshot.
	if boosted {
		d.standingFanDir = coord.Up
		if obs.FanCmd >= d.opt.Config.FanMaxSpeed {
			// The boost has saturated the actuator: no further fan-up
			// exists to apply, so a standing Up claim would make Table II
			// discard cap-release proposals indefinitely. From a cold
			// chassis that deadlocks — the transient cut cap keeps every
			// tick violated, the violations keep the boost alive, and the
			// boost keeps the cap starved (the cold-start throttling
			// latch; see TestColdStartNoThrottleLatch). A pinned fan
			// reads as Hold so the performance bias can restore the cap.
			d.standingFanDir = coord.Hold
		}
	} else if fanDecided {
		d.standingFanDir = coord.Classify(float64(fanProposal), float64(obs.FanCmd), 25)
	}
	fanDir := d.standingFanDir

	cutAllowed := !d.everCut || obs.T-d.lastCut >= d.opt.CoordEpoch-1e-9

	cmd := sim.Command{Fan: obs.FanCmd, Cap: obs.Cap}
	switch d.opt.Mode {
	case NoCoordination:
		cmd.Fan = fanProposal
		cmd.Cap = capProposal
	case RuleBased:
		capDir := coord.Classify(float64(capProposal), float64(obs.Cap), 1e-9)
		switch coord.Rule(capDir, fanDir) {
		case coord.ApplyFan:
			// The fan owns the response: apply its proposal when fresh;
			// on intermediate ticks the previous command keeps acting
			// (N_trans^fan periods of ramp) and the cap holds.
			if fanDecided {
				cmd.Fan = fanProposal
			}
		case coord.ApplyCap:
			if capDir == coord.Up {
				cmd.Cap = capProposal // performance recovery passes freely
			} else if cutAllowed {
				cmd.Cap = capProposal
				d.lastCut = obs.T
				d.everCut = true
			}
		}
	case EnergyAware:
		switch {
		case obs.Measured > d.opt.Emergency:
			dec := d.ecoord.Decide(coord.EState{
				Measured: obs.Measured,
				Fan:      obs.FanCmd,
				FanMin:   d.opt.Config.FanMinSpeed,
				FanMax:   d.opt.Config.FanMaxSpeed,
				Cap:      obs.Cap,
				Util:     obs.Delivered,
			})
			switch dec.Action {
			case coord.ApplyCap:
				cmd.Cap = dec.Cap
			case coord.ApplyFan:
				cmd.Fan = dec.Fan
			}
		case obs.Measured < d.opt.CapLow:
			// Cold: restore performance, but lazily — every release
			// step costs energy, so the greedy scheme takes at most one
			// per fan interval (the paper's critique: performance is
			// E-coord's last priority).
			if capProposal > obs.Cap && obs.T-d.lastRelease >= d.opt.FanInterval-1e-9 {
				cmd.Cap = capProposal
				d.lastRelease = obs.T
			}
			cmd.Fan = fanProposal
		default:
			cmd.Fan = fanProposal
		}
	}

	if boosted {
		cmd.Fan = d.opt.Config.FanMaxSpeed
	} else if releasing {
		// Boost release (Sec. V-C): drop directly to the lowest speed
		// that runs the current demand without a temperature violation,
		// rather than descending over several fan periods at cubic cost.
		cmd.Fan = d.releaseSpeed(obs)
		d.adaptive.ResetIntegral()
		d.lastFan = obs.T
		d.fanEver = true
	}
	return cmd
}

// releaseSpeed computes the post-boost fan speed: the steady-state speed
// holding the fan set-point at the sustained demand, clamped to the
// platform range. The sustained demand is the set-point predictor's
// moving average when available — releasing against one noisy
// instantaneous sample re-triggers the boost the moment demand recovers.
// Falls back to the current command on infeasible targets (the PID
// recovers from there).
func (d *DTM) releaseSpeed(obs sim.Observation) units.RPM {
	demand := obs.Demand
	if d.setpoint != nil {
		// Invert the scheduler: its reference encodes the predicted
		// utilization, T_ref = lo + (hi-lo)*û.
		uhat := float64(d.setpoint.Current()-d.setpoint.Lo) / float64(d.setpoint.Hi-d.setpoint.Lo)
		demand = units.ClampUtil(units.Utilization(uhat))
		if obs.Demand > demand {
			demand = obs.Demand
		}
	}
	if d.relTherm == nil {
		return obs.FanCmd
	}
	v, err := d.relTherm.SpeedForJunction(d.fan.Reference(), d.relCPU.Power(demand))
	if err != nil {
		return d.opt.Config.FanMaxSpeed
	}
	return units.ClampRPM(v, d.opt.Config.FanMinSpeed, d.opt.Config.FanMaxSpeed)
}

// Reference returns the fan controller's current set-point (tests and
// traces read it).
func (d *DTM) Reference() units.Celsius { return d.fan.Reference() }

// Boosted reports whether the single-step scaler is currently active.
func (d *DTM) Boosted() bool { return d.scaler != nil && d.scaler.Boosted() }
