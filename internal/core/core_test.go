package core

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/tuning"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestCoordModeString(t *testing.T) {
	if NoCoordination.String() != "w/o-coordination" ||
		RuleBased.String() != "r-coord" ||
		EnergyAware.String() != "e-coord" {
		t.Error("mode strings wrong")
	}
	if CoordMode(9).String() == "" {
		t.Error("unknown mode string empty")
	}
}

func TestNewDTMValidation(t *testing.T) {
	bad := sim.Default()
	bad.Tick = 0
	if _, err := NewDTM("x", Options{Config: bad}); err == nil {
		t.Error("invalid platform config accepted")
	}
	cfg := sim.Default()
	if _, err := NewDTM("x", Options{Config: cfg, FanInterval: 0.5}); err == nil {
		t.Error("sub-tick fan interval accepted")
	}
}

func TestTableIIISolutionsConstruct(t *testing.T) {
	policies, err := TableIIISolutions(sim.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(policies) != 5 {
		t.Fatalf("solutions = %d, want 5", len(policies))
	}
	wantNames := []string{
		"w/o coordination", "E-coord", "R-coord(@Tref=75C)",
		"R-coord+A-Tref", "R-coord+A-Tref+SSfan",
	}
	for i, p := range policies {
		if p.Name() != wantNames[i] {
			t.Errorf("solution %d name = %q, want %q", i, p.Name(), wantNames[i])
		}
	}
}

func TestDTMFanDecisionCadence(t *testing.T) {
	cfg := sim.Default()
	d, err := NewDTM("t", Options{Config: cfg, Mode: NoCoordination})
	if err != nil {
		t.Fatal(err)
	}
	// First tick always decides. With a hot measurement the proposal
	// moves; intermediate ticks must hold the command.
	obs := sim.Observation{T: 0, Measured: 85, Demand: 0.7, FanCmd: 2000, FanActual: 2000, Cap: 1}
	first := d.Step(obs)
	if first.Fan == 2000 {
		t.Fatal("hot first decision did not move the fan")
	}
	for tsec := 1; tsec < 30; tsec++ {
		obs2 := obs
		obs2.T = units.Seconds(tsec)
		obs2.FanCmd = first.Fan
		cmd := d.Step(obs2)
		if cmd.Fan != first.Fan {
			t.Fatalf("fan moved at t=%d between decisions", tsec)
		}
	}
	obs3 := obs
	obs3.T = 30
	obs3.FanCmd = first.Fan
	if cmd := d.Step(obs3); cmd.Fan == first.Fan {
		t.Error("no fan decision at the 30 s boundary")
	}
}

func TestDTMCapperBandRidesReference(t *testing.T) {
	cfg := sim.Default()
	d, err := NewDTM("t", Options{Config: cfg, Mode: RuleBased, RefTemp: 75})
	if err != nil {
		t.Fatal(err)
	}
	d.Step(sim.Observation{T: 0, Measured: 75, Demand: 0.5, FanCmd: 2000, FanActual: 2000, Cap: 1})
	// quantStep = 1, offset 0.5: release below 76.5, throttle above 79.
	if math.Abs(float64(d.capper.Low-76.5)) > 1e-9 {
		t.Errorf("cap low = %v, want 76.5", d.capper.Low)
	}
	if math.Abs(float64(d.capper.High-79)) > 1e-9 {
		t.Errorf("cap high = %v, want 79", d.capper.High)
	}
	// The capper hold band must not overlap the quantization guard's
	// hold band [ref - TQ, ref + TQ] — the deadlock invariant.
	if d.capper.Low <= d.fan.Reference()+1 {
		t.Errorf("capper release %v overlaps guard band top %v", d.capper.Low, d.fan.Reference()+1)
	}
}

func TestDTMRuleCoordProtectsCapDuringFanRamp(t *testing.T) {
	cfg := sim.Default()
	d, err := NewDTM("t", Options{Config: cfg, Mode: RuleBased})
	if err != nil {
		t.Fatal(err)
	}
	// Hot first tick: the fan decides upward; its standing direction is
	// Up for the next 30 s, so the capper's cut proposals are rejected.
	obs := sim.Observation{T: 0, Measured: 85, Demand: 0.9, FanCmd: 2000, FanActual: 2000, Cap: 1}
	cmd := d.Step(obs)
	if cmd.Fan <= 2000 {
		t.Fatal("fan did not ramp")
	}
	if cmd.Cap != 1 {
		t.Fatalf("cap cut while the fan owns the response: %v", cmd.Cap)
	}
	for tsec := 1; tsec < 30; tsec++ {
		o := obs
		o.T = units.Seconds(tsec)
		o.FanCmd = cmd.Fan
		c := d.Step(o)
		if c.Cap != 1 {
			t.Fatalf("cap cut at t=%d during fan ramp: %v", tsec, c.Cap)
		}
	}
}

func TestDTMUncoordinatedCutsImmediately(t *testing.T) {
	cfg := sim.Default()
	d, err := NewDTM("t", Options{Config: cfg, Mode: NoCoordination})
	if err != nil {
		t.Fatal(err)
	}
	obs := sim.Observation{T: 0, Measured: 85, Demand: 0.9, FanCmd: 2000, FanActual: 2000, Cap: 1}
	cmd := d.Step(obs)
	if cmd.Cap >= 1 {
		t.Errorf("uncoordinated cap = %v, want immediate cut (the conflict the paper fixes)", cmd.Cap)
	}
	if cmd.Fan <= 2000 {
		t.Errorf("uncoordinated fan = %v, want simultaneous ramp", cmd.Fan)
	}
}

func TestDTMRuleCoordEpochLimitsCuts(t *testing.T) {
	cfg := sim.Default()
	d, err := NewDTM("t", Options{Config: cfg, Mode: RuleBased, CoordEpoch: 5})
	if err != nil {
		t.Fatal(err)
	}
	// Prime a fan decision that holds (measurement inside the guard
	// band) so the standing direction is Hold and cap cuts are eligible.
	cap := units.Utilization(1.0)
	cuts := 0
	for tsec := 0; tsec < 20; tsec++ {
		obs := sim.Observation{
			T: units.Seconds(tsec), Measured: 85, Demand: 0.9,
			FanCmd: 8500, FanActual: 8500, Cap: cap,
		}
		cmd := d.Step(obs)
		if cmd.Cap < cap {
			cuts++
			cap = cmd.Cap
		}
	}
	// 20 hot seconds with a 5 s epoch: at most 4-5 cuts, not 20.
	if cuts > 5 {
		t.Errorf("cuts = %d in 20 s, want epoch-limited <= 5", cuts)
	}
	if cuts == 0 {
		t.Error("no cuts at all — capper disabled?")
	}
}

func TestDTMAdaptiveRefTracksLoad(t *testing.T) {
	cfg := sim.Default()
	d, err := NewDTM("t", Options{Config: cfg, Mode: RuleBased, AdaptiveRef: true, PredictorWindow: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		d.Step(sim.Observation{T: units.Seconds(i), Measured: 70, Demand: 0.1, FanCmd: 2000, FanActual: 2000, Cap: 1})
	}
	low := d.Reference()
	for i := 10; i < 30; i++ {
		d.Step(sim.Observation{T: units.Seconds(i), Measured: 70, Demand: 0.9, FanCmd: 2000, FanActual: 2000, Cap: 1})
	}
	high := d.Reference()
	if low >= high {
		t.Errorf("T_ref did not rise with load: %v -> %v", low, high)
	}
	if low < 70 || high > 78 {
		t.Errorf("T_ref outside [70, 78]: %v, %v", low, high)
	}
}

func TestDTMSingleStepBoostAndRelease(t *testing.T) {
	cfg := sim.Default()
	d, err := NewDTM("t", Options{
		Config: cfg, Mode: RuleBased, SingleStep: true,
		BoostThreshold: 0.3, BoostWindow: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Sustained violations trigger the boost.
	var cmd sim.Command
	for i := 0; i < 6; i++ {
		cmd = d.Step(sim.Observation{
			T: units.Seconds(i), Measured: 78, Demand: 0.9, Violated: true,
			FanCmd: 2000, FanActual: 2000, Cap: 1,
		})
	}
	if !d.Boosted() || cmd.Fan != cfg.FanMaxSpeed {
		t.Fatalf("boost not engaged: boosted=%v fan=%v", d.Boosted(), cmd.Fan)
	}
	// Cool and violation-free: release drops to a finite speed well
	// below max (the computed lowest feasible speed).
	for i := 6; i < 20 && d.Boosted(); i++ {
		cmd = d.Step(sim.Observation{
			T: units.Seconds(i), Measured: 70, Demand: 0.7, Violated: false,
			FanCmd: cfg.FanMaxSpeed, FanActual: cfg.FanMaxSpeed, Cap: 1,
		})
	}
	if d.Boosted() {
		t.Fatal("boost never released")
	}
	if cmd.Fan >= cfg.FanMaxSpeed || cmd.Fan <= cfg.FanMinSpeed {
		t.Errorf("release speed = %v, want interior set-point", cmd.Fan)
	}
}

func TestDTMResetClearsState(t *testing.T) {
	cfg := sim.Default()
	d, err := NewFullStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		d.Step(sim.Observation{T: units.Seconds(i), Measured: 85, Demand: 0.9, Violated: true, FanCmd: 3000, FanActual: 3000, Cap: 0.7})
	}
	d.Reset()
	if d.Boosted() {
		t.Error("boost survives reset")
	}
	if d.lastFan != 0 || d.fanEver {
		t.Error("fan cadence survives reset")
	}
}

func TestFanOnlyPolicy(t *testing.T) {
	cfg := sim.Default()
	pid, err := control.NewPID(control.PIDConfig{
		Gains:    control.PIDGains{KP: 100},
		RefSpeed: 2000,
		RefTemp:  75,
		Limits:   control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewFanOnlyPolicy("x", nil, 30, cfg); err == nil {
		t.Error("nil controller accepted")
	}
	if _, err := NewFanOnlyPolicy("x", pid, 0.5, cfg); err == nil {
		t.Error("sub-tick interval accepted")
	}
	p, err := NewFanOnlyPolicy("fan-only", pid, 30, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "fan-only" {
		t.Error("name wrong")
	}
	cmd := p.Step(sim.Observation{T: 0, Measured: 80, FanCmd: 2000, FanActual: 2000})
	if cmd.Cap != 1 {
		t.Error("fan-only policy must keep the cap open")
	}
	if cmd.Fan != 2500 {
		t.Errorf("fan = %v, want 2000 + 100*5", cmd.Fan)
	}
	// Holds between decisions.
	hold := p.Step(sim.Observation{T: 10, Measured: 80, FanCmd: cmd.Fan, FanActual: cmd.Fan})
	if hold.Fan != cmd.Fan {
		t.Error("fan moved between decisions")
	}
	p.Reset()
	again := p.Step(sim.Observation{T: 40, Measured: 80, FanCmd: 2000, FanActual: 2000})
	if again.Fan != 2500 {
		t.Errorf("after reset fan = %v, want fresh decision", again.Fan)
	}
}

func TestTuneRegionsOnPlatform(t *testing.T) {
	// Full closed-loop tuning against the simulated platform at both
	// paper operating points. The 6000 rpm region must come out with
	// substantially larger gains (the Sec. IV-B nonlinearity).
	if testing.Short() {
		t.Skip("tuning sweep in -short mode")
	}
	cfg := sim.Default()
	results, err := TuneRegions(cfg, []units.RPM{2000, 6000}, 0.7, 30, tuning.NoOvershoot)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("results = %d", len(results))
	}
	r2000, r6000 := results[0], results[1]
	if r2000.Ultimate.Ku <= 0 || r6000.Ultimate.Ku <= 0 {
		t.Fatal("non-positive ultimate gains")
	}
	ratio := float64(r6000.Ultimate.Ku) / float64(r2000.Ultimate.Ku)
	if ratio < 1.5 {
		t.Errorf("Ku(6000)/Ku(2000) = %.2f, want the low-sensitivity region clearly hotter", ratio)
	}
	// The shipped defaults must match a fresh tuning run within 20%.
	def := DefaultRegions()
	if math.Abs(def[0].Gains.KP-r2000.Region.Gains.KP) > 0.2*r2000.Region.Gains.KP {
		t.Errorf("shipped KP(2000) = %v, tuner says %v", def[0].Gains.KP, r2000.Region.Gains.KP)
	}
	if math.Abs(def[1].Gains.KP-r6000.Region.Gains.KP) > 0.2*r6000.Region.Gains.KP {
		t.Errorf("shipped KP(6000) = %v, tuner says %v", def[1].Gains.KP, r6000.Region.Gains.KP)
	}
}

// TestColdStartNoThrottleLatch is the regression test for the cold-start
// throttling latch (ROADMAP): from a cold chassis the junction overshoots
// before the lagged, quantized measurement catches up, the capper cuts
// below demand, the all-violated window keeps the single-step boost alive,
// and the boost's standing fan-up claim made Table II discard every
// cap-release proposal — a deadlock that held ~94% violations for a full
// hour at a 25 °C inlet and 0.7 demand, which a warm start never enters.
// The fix reads a boost pinned at the actuator maximum as Hold, so the
// rule matrix's performance bias can restore the cap; the cold transient
// must now clear within minutes and stay clear.
func TestColdStartNoThrottleLatch(t *testing.T) {
	cfg := sim.Default() // 25 °C ambient
	pol, err := NewFullStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server, err := sim.NewPhysicalServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(server, sim.RunConfig{
		Duration: 3600,
		Workload: workload.Constant{U: 0.7},
		Policy:   pol,
		Record:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.ViolationFrac > 0.05 {
		t.Fatalf("cold start violated %.1f%% of the hour; throttling latch is back",
			res.Metrics.ViolationFrac*100)
	}
	// The transient must actually end: after a grace window generous
	// against the sink time constant, delivery is never capped again.
	caps := res.Traces.Get("cap")
	const grace = 600
	for k := 0; k < caps.Len(); k++ {
		if p := caps.At(k); p.T > grace && p.V < 0.7 {
			t.Fatalf("cap still %0.2f at t=%.0fs — release path latched", p.V, p.T)
		}
	}
}

// TestSpeculativeBisectionOnSimPlant: the speculative ultimate-gain
// search must be bit-identical to serial on the real simulated plant —
// non-ideal sensing, warm start and all — which also validates the
// premise that independently spawned sim plants respond identically
// after Reset. (core.TuneRegions only enables speculation above a core
// budget; this forces it on regardless.)
func TestSpeculativeBisectionOnSimPlant(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning runs in -short mode")
	}
	cfg := sim.Default()
	const v, util = 2000, 0.7
	cpu, _, err := cfg.Models()
	if err != nil {
		t.Fatal(err)
	}
	// The same equilibrium set-point and bracket TuneRegions derives.
	load := cpu.Power(util)
	sink := thermal.SteadyState(cfg.Ambient, cfg.HeatSinkLaw.Resistance(v), load)
	ref := thermal.SteadyState(sink, cfg.DieRes, load)
	ku := 1 / -cfg.HeatSinkLaw.Sensitivity(v, load)
	mkPlant := func() (tuning.Plant, error) { return sim.NewPlant(cfg, util, v, 30) }
	base := tuning.ZNConfig{
		RefTemp:    ref,
		RefSpeed:   v,
		Limits:     control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed},
		KPLo:       ku / 30,
		KPHi:       ku * 10,
		Prominence: 1.2,
		Iterations: 8,
	}
	ps, err := mkPlant()
	if err != nil {
		t.Fatal(err)
	}
	serial, err := tuning.FindUltimate(ps, base)
	if err != nil {
		t.Fatal(err)
	}
	spec := base
	spec.Spawn = mkPlant
	spec.Parallel = func(n int, fn func(i int)) error { return sim.ParallelFor(n, 0, fn) }
	pp, err := mkPlant()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tuning.FindUltimate(pp, spec)
	if err != nil {
		t.Fatal(err)
	}
	if got != serial {
		t.Errorf("speculative ultimate %+v != serial %+v", got, serial)
	}
}

func TestTuneRegionsValidation(t *testing.T) {
	if _, err := TuneRegions(sim.Default(), nil, 0.7, 30, tuning.SomeOvershoot); err == nil {
		t.Error("empty speeds accepted")
	}
}

func TestDefaultRegionsSorted(t *testing.T) {
	rs := DefaultRegions()
	if len(rs) < 2 {
		t.Fatal("need at least two regions")
	}
	for i := 1; i < len(rs); i++ {
		if rs[i].RefSpeed <= rs[i-1].RefSpeed {
			t.Error("regions not ascending")
		}
		if rs[i].Gains.KP <= rs[i-1].Gains.KP {
			t.Error("gains must grow with region speed (lower plant gain)")
		}
	}
}

// TestDTMEndToEndStability is a smoke integration: the full stack keeps a
// noisy server stable and within the comfort zone for 20 simulated
// minutes.
func TestDTMEndToEndStability(t *testing.T) {
	cfg := sim.Default()
	cfg.Ambient = 30
	pol, err := NewFullStack(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server, err := sim.NewPhysicalServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	noisy, err := workload.NewNoisy(workload.PaperSquare(300), 0.04, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(server, sim.RunConfig{
		Duration:  1200,
		Workload:  noisy,
		Policy:    pol,
		WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1500},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxJunction > 86 {
		t.Errorf("max junction %.1f", float64(res.Metrics.MaxJunction))
	}
	if res.Metrics.ViolationFrac > 0.15 {
		t.Errorf("violations %.1f%%", res.Metrics.ViolationFrac*100)
	}
	if res.Metrics.HWThrottleFrac > 0.01 {
		t.Errorf("silicon protection engaged %.2f%%", res.Metrics.HWThrottleFrac*100)
	}
}
