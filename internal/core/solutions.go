package core

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/sim"
	"repro/internal/units"
)

// The five Table III solutions. Each takes the platform configuration and
// returns a ready sim.Policy; all share the same stable adaptive fan
// controller per the paper's "for fair comparison" note.

// NewUncoordinated returns the "w/o coordination" baseline.
func NewUncoordinated(cfg sim.Config) (*DTM, error) {
	return NewDTM("w/o coordination", Options{Config: cfg, Mode: NoCoordination})
}

// NewECoordPolicy returns the energy-aware coordination baseline of [6].
// Its cap floor is deep (0.1): the energy-greedy scheme happily starves
// the machine — capping both cools and saves power, so by its own
// objective there is no reason to stop early. That asymmetry against the
// rule-based schemes' half-throttle floor is exactly the performance
// blindness the paper criticizes.
func NewECoordPolicy(cfg sim.Config) (*DTM, error) {
	return NewDTM("E-coord", Options{Config: cfg, Mode: EnergyAware, MinCap: 0.1})
}

// NewRuleCoord returns R-coord with a fixed T_ref (Table III uses 75 °C).
func NewRuleCoord(cfg sim.Config, refTemp units.Celsius) (*DTM, error) {
	name := fmt.Sprintf("R-coord(@Tref=%.0fC)", float64(refTemp))
	return NewDTM(name, Options{Config: cfg, Mode: RuleBased, RefTemp: refTemp})
}

// NewRuleCoordAdaptiveRef returns R-coord + A-T_ref (Sec. V-B).
func NewRuleCoordAdaptiveRef(cfg sim.Config) (*DTM, error) {
	return NewDTM("R-coord+A-Tref", Options{Config: cfg, Mode: RuleBased, AdaptiveRef: true})
}

// NewFullStack returns R-coord + A-T_ref + SS_fan (Sec. V-C): the paper's
// complete proposal.
func NewFullStack(cfg sim.Config) (*DTM, error) {
	return NewDTM("R-coord+A-Tref+SSfan", Options{
		Config:      cfg,
		Mode:        RuleBased,
		AdaptiveRef: true,
		SingleStep:  true,
	})
}

// TableIIISolutions returns the five evaluated policies in the paper's
// row order.
func TableIIISolutions(cfg sim.Config) ([]*DTM, error) {
	builders := []func(sim.Config) (*DTM, error){
		NewUncoordinated,
		NewECoordPolicy,
		func(c sim.Config) (*DTM, error) { return NewRuleCoord(c, 75) },
		NewRuleCoordAdaptiveRef,
		NewFullStack,
	}
	out := make([]*DTM, 0, len(builders))
	for _, b := range builders {
		d, err := b(cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}

// FanOnlyPolicy drives a bare fan controller with the cap held open: the
// configuration used in the stability experiments (Fig. 3 and Fig. 4),
// where only the fan loop is under study.
type FanOnlyPolicy struct {
	name     string
	fan      control.FanController
	interval units.Seconds
	maxSpeed units.RPM
	lastFan  units.Seconds
	fanEver  bool
}

// NewFanOnlyPolicy wraps a fan controller deciding every interval seconds.
func NewFanOnlyPolicy(name string, fan control.FanController, interval units.Seconds, cfg sim.Config) (*FanOnlyPolicy, error) {
	if fan == nil {
		return nil, fmt.Errorf("core: nil fan controller")
	}
	if interval < cfg.Tick {
		return nil, fmt.Errorf("core: fan interval %v below tick %v", interval, cfg.Tick)
	}
	return &FanOnlyPolicy{name: name, fan: fan, interval: interval, maxSpeed: cfg.FanMaxSpeed}, nil
}

// Name implements sim.Policy.
func (p *FanOnlyPolicy) Name() string { return p.name }

// Step implements sim.Policy.
func (p *FanOnlyPolicy) Step(obs sim.Observation) sim.Command {
	cmd := sim.Command{Fan: obs.FanCmd, Cap: 1}
	due := !p.fanEver || obs.T-p.lastFan >= p.interval-1e-9
	if due {
		cmd.Fan = p.fan.Decide(control.FanInputs{T: obs.T, Meas: obs.Measured, Actual: obs.FanCmd})
		p.lastFan = obs.T
		p.fanEver = true
	}
	return cmd
}

// Reset implements sim.Policy.
func (p *FanOnlyPolicy) Reset() {
	p.fan.Reset()
	p.lastFan = 0
	p.fanEver = false
}
