package core

import (
	"fmt"
	"runtime"

	"repro/internal/control"
	"repro/internal/sim"
	"repro/internal/thermal"
	"repro/internal/tuning"
	"repro/internal/units"
)

// DefaultFanInterval is Δt_fan^control from Sec. VI-A.
const DefaultFanInterval units.Seconds = 30

// DefaultRegions returns the gain schedule shipped with the library: the
// two operating regions of Sec. IV-B (2000 and 6000 rpm — "two regions
// are enough to linearize the relationship within 5% error"), tuned by
// the Ziegler–Nichols procedure of TuneRegions against the Table I
// platform at u = 0.7 with the no-overshoot ZN-type rule (see DESIGN.md
// for why the quarter-decay classic rule is too aggressive at a 30 s
// control period). Regenerate with cmd/fantune.
func DefaultRegions() []control.Region {
	return defaultRegions
}

// defaultRegions is overwritten by the values cmd/fantune prints; keep in
// sync with EXPERIMENTS.md.
var defaultRegions = []control.Region{
	{RefSpeed: 2000, Gains: control.PIDGains{KP: 259, KI: 66, KD: 676}},
	{RefSpeed: 6000, Gains: control.PIDGains{KP: 738, KI: 279, KD: 1304}},
}

// TuneResult reports one region's tuning experiment.
type TuneResult struct {
	Region   control.Region
	Ultimate tuning.Ultimate
	RefTemp  units.Celsius // equilibrium temperature used as the set-point
}

// TuneRegions runs the closed-loop Ziegler–Nichols procedure of Sec. IV-A
// at each operating fan speed against the full simulated platform
// (including the non-ideal measurement chain) and returns the gain
// schedule. The set-point of each experiment is the plant's own
// steady-state junction temperature at (util, speed), so the warm start
// is an equilibrium and the pulse perturbation explores its neighborhood.
//
// Each region's experiment drives its own private plant, so the per-speed
// tuning runs fan out across cores through the batch engine's ParallelFor;
// results stay in speed order regardless of scheduling.
func TuneRegions(cfg sim.Config, speeds []units.RPM, util units.Utilization,
	fanPeriod units.Seconds, rule tuning.Rule) ([]TuneResult, error) {
	if len(speeds) == 0 {
		return nil, fmt.Errorf("core: no operating speeds")
	}
	cpu, _, err := cfg.Models()
	if err != nil {
		return nil, err
	}
	out := make([]TuneResult, len(speeds))
	errs := make([]error, len(speeds))
	if err := sim.ParallelFor(len(speeds), 0, func(i int) {
		v := speeds[i]
		p := cpu.Power(util)
		sink := thermal.SteadyState(cfg.Ambient, cfg.HeatSinkLaw.Resistance(v), p)
		ref := thermal.SteadyState(sink, cfg.DieRes, p)

		plant, err := sim.NewPlant(cfg, util, v, fanPeriod)
		if err != nil {
			errs[i] = err
			return
		}
		// Bracket the ultimate gain from the plant's local sensitivity:
		// |dT/ds| at the operating point gives the static loop gain; the
		// discrete boundary sits within a decade of its inverse.
		sens := cfg.HeatSinkLaw.Sensitivity(v, p)
		if sens >= 0 {
			errs[i] = fmt.Errorf("core: non-negative plant sensitivity at %v", v)
			return
		}
		kuEstimate := 1 / -sens
		znCfg := tuning.ZNConfig{
			RefTemp:  ref,
			RefSpeed: v,
			Limits:   control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed},
			KPLo:     kuEstimate / 30,
			KPHi:     kuEstimate * 10,
			// The 1 °C ADC makes sub-degree ripple invisible; classify
			// with a prominence just above one quantization step.
			Prominence: 1.2,
		}
		// Speculative parallel bisection (tuning.ZNConfig.Spawn): each
		// round classifies the midpoint and both candidate next midpoints
		// concurrently, landing two bisection iterations per round with
		// bit-identical gains. Each region spawns three concurrent trials,
		// so speculation only pays once the machine has cores beyond the
		// per-region fan-out this loop already uses; below that it would
		// trade wall time for redundant work.
		if runtime.GOMAXPROCS(0) >= 3*len(speeds) {
			znCfg.Spawn = func() (tuning.Plant, error) {
				return sim.NewPlant(cfg, util, v, fanPeriod)
			}
			znCfg.Parallel = func(n int, fn func(i int)) error {
				return sim.ParallelFor(n, 0, fn)
			}
		}
		region, ult, err := tuning.TuneRegion(plant, znCfg, rule)
		if err != nil {
			errs[i] = fmt.Errorf("core: tuning at %v: %w", v, err)
			return
		}
		out[i] = TuneResult{Region: region, Ultimate: ult, RefTemp: ref}
	}); err != nil {
		return nil, err
	}
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return out, nil
}

// SetDefaultRegionsForTest swaps the shipped gain schedule and returns the
// previous one; experiment tests use it to evaluate tuning-rule ablations.
func SetDefaultRegionsForTest(rs []control.Region) []control.Region {
	old := defaultRegions
	defaultRegions = rs
	return old
}
