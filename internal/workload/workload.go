// Package workload generates the CPU utilization traces that drive the
// simulator. The paper's evaluation (Sec. VI-A) uses synthetic traces that
// alternate between 0.1 and 0.7 with additive Gaussian noise (σ = 0.04);
// this package provides that construction plus the spike patterns that
// motivate the single-step fan scaler (Sec. V-C, citing [20]), and several
// generic generators (constant, ramp, PRBS, Markov-modulated, recorded
// trace playback) used by tests and examples.
//
// A Generator maps simulation time to the utilization the workload demands.
// Generators are deterministic: the same generator asked at the same time
// always returns the same value, so controllers under test can be replayed
// exactly.
package workload

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/units"
)

// Generator yields the required CPU utilization at simulation time t.
type Generator interface {
	At(t units.Seconds) units.Utilization
}

// Constant is a fixed-utilization workload.
type Constant struct {
	U units.Utilization
}

// At implements Generator.
func (c Constant) At(units.Seconds) units.Utilization { return units.ClampUtil(c.U) }

// Square alternates between Low and High with the given period, starting
// at Low: u(t) = Low for t in [0, Period/2), High for [Period/2, Period).
type Square struct {
	Low, High units.Utilization
	Period    units.Seconds
}

// NewSquare validates and builds a square-wave workload.
func NewSquare(low, high units.Utilization, period units.Seconds) (Square, error) {
	if period <= 0 {
		return Square{}, fmt.Errorf("workload: non-positive period %v", period)
	}
	if low < 0 || low > 1 || high < 0 || high > 1 {
		return Square{}, fmt.Errorf("workload: utilizations [%v, %v] outside [0, 1]", low, high)
	}
	return Square{Low: low, High: high, Period: period}, nil
}

// PaperSquare returns the evaluation workload of Sec. VI-A: alternating
// 0.1 / 0.7 with the given period.
func PaperSquare(period units.Seconds) Square {
	s, err := NewSquare(0.1, 0.7, period)
	if err != nil {
		panic(err) // constants are valid
	}
	return s
}

// At implements Generator.
func (s Square) At(t units.Seconds) units.Utilization {
	if t < 0 {
		t = 0
	}
	phase := math.Mod(float64(t), float64(s.Period))
	if phase < float64(s.Period)/2 {
		return s.Low
	}
	return s.High
}

// Ramp rises linearly from From to To over Duration, then holds To.
type Ramp struct {
	From, To units.Utilization
	Duration units.Seconds
}

// At implements Generator.
func (r Ramp) At(t units.Seconds) units.Utilization {
	if r.Duration <= 0 || t >= r.Duration {
		return units.ClampUtil(r.To)
	}
	if t <= 0 {
		return units.ClampUtil(r.From)
	}
	frac := float64(t) / float64(r.Duration)
	return units.ClampUtil(units.Utilization(units.Lerp(float64(r.From), float64(r.To), frac)))
}

// Step jumps from Before to After at time At.
type Step struct {
	Before, After units.Utilization
	Time          units.Seconds
}

// At implements Generator.
func (s Step) At(t units.Seconds) units.Utilization {
	if t < s.Time {
		return units.ClampUtil(s.Before)
	}
	return units.ClampUtil(s.After)
}

// Noisy overlays zero-mean Gaussian noise (σ = Sigma) on a base generator,
// clamped to [0, 1]. Noise is drawn per discrete tick of width Tick so that
// At is deterministic in t: the same tick always sees the same noise value.
type Noisy struct {
	Base  Generator
	Sigma float64
	Tick  units.Seconds
	seed  int64
}

// NewNoisy validates and builds a noisy overlay. Tick must be positive;
// the paper's simulation draws noise per 1 s control tick.
func NewNoisy(base Generator, sigma float64, tick units.Seconds, seed int64) (*Noisy, error) {
	if base == nil {
		return nil, fmt.Errorf("workload: nil base generator")
	}
	if sigma < 0 {
		return nil, fmt.Errorf("workload: negative sigma %v", sigma)
	}
	if tick <= 0 {
		return nil, fmt.Errorf("workload: non-positive tick %v", tick)
	}
	return &Noisy{Base: base, Sigma: sigma, Tick: tick, seed: seed}, nil
}

// At implements Generator. The noise for tick k is produced by a
// tick-indexed hash of the seed, so queries are random-access
// deterministic rather than stream-order dependent.
func (n *Noisy) At(t units.Seconds) units.Utilization {
	base := float64(n.Base.At(t))
	if n.Sigma == 0 {
		return units.ClampUtil(units.Utilization(base))
	}
	k := int64(math.Floor(float64(t) / float64(n.Tick)))
	v := base + n.Sigma*stats.HashNormal(n.seed, k)
	return units.ClampUtil(units.Utilization(v))
}

// Spike is one transient utilization burst.
type Spike struct {
	Start    units.Seconds
	Duration units.Seconds
	Level    units.Utilization
}

// Spiky overlays deterministic spikes on a base generator: during a spike
// the demand is max(base, spike level). The single-step fan scaling
// experiment uses it to model the abrupt load surges of [20].
//
// NewSpiky precompiles the (possibly overlapping) spikes into a sorted
// piecewise-constant schedule of boundary times and active max levels, so
// At is an allocation-free O(log n) binary search instead of a per-tick
// scan over every spike — Table III queries the generator once per
// simulated second for hours.
type Spiky struct {
	Base   Generator
	Spikes []Spike

	// Compiled schedule: segT[k] begins a segment where the strongest
	// active spike level is segLevel[k]; the segment ends at segT[k+1]
	// (the last segment has level 0 and extends to infinity). Empty for a
	// zero-value Spiky, in which case At falls back to scanning Spikes.
	segT     []units.Seconds
	segLevel []units.Utilization
}

// NewSpiky validates and builds a spike overlay.
func NewSpiky(base Generator, spikes []Spike) (*Spiky, error) {
	if base == nil {
		return nil, fmt.Errorf("workload: nil base generator")
	}
	for i, s := range spikes {
		if s.Duration <= 0 {
			return nil, fmt.Errorf("workload: spike %d has non-positive duration %v", i, s.Duration)
		}
		if s.Level < 0 || s.Level > 1 {
			return nil, fmt.Errorf("workload: spike %d level %v outside [0, 1]", i, s.Level)
		}
	}
	sp := &Spiky{Base: base, Spikes: spikes}
	sp.compile()
	return sp, nil
}

// compile builds the sorted segment schedule from the spike list.
func (s *Spiky) compile() {
	if len(s.Spikes) == 0 {
		s.segT, s.segLevel = nil, nil
		return
	}
	// Collect the segment boundaries: every spike start and end.
	bounds := make([]units.Seconds, 0, 2*len(s.Spikes))
	for _, sp := range s.Spikes {
		bounds = append(bounds, sp.Start, sp.Start+sp.Duration)
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i] < bounds[j] })
	uniq := bounds[:1]
	for _, b := range bounds[1:] {
		if b != uniq[len(uniq)-1] {
			uniq = append(uniq, b)
		}
	}
	// For each segment [uniq[k], uniq[k+1]) record the strongest level of
	// any covering spike; the final boundary opens an unbounded level-0
	// segment. Construction cost is O(spikes × segments), paid once.
	s.segT = uniq
	s.segLevel = make([]units.Utilization, len(uniq))
	for k := 0; k < len(uniq)-1; k++ {
		at := uniq[k]
		level := units.Utilization(0)
		for _, sp := range s.Spikes {
			if at >= sp.Start && at < sp.Start+sp.Duration && sp.Level > level {
				level = sp.Level
			}
		}
		s.segLevel[k] = level
	}
}

// PeriodicSpikes builds count spikes of the given level and duration,
// spaced every interval starting at first.
func PeriodicSpikes(first, interval, duration units.Seconds, level units.Utilization, count int) []Spike {
	spikes := make([]Spike, 0, count)
	for i := 0; i < count; i++ {
		spikes = append(spikes, Spike{
			Start:    first + units.Seconds(i)*interval,
			Duration: duration,
			Level:    level,
		})
	}
	return spikes
}

// At implements Generator.
func (s *Spiky) At(t units.Seconds) units.Utilization {
	u := s.Base.At(t)
	if s.segT == nil {
		// Zero-value construction without NewSpiky: scan directly.
		for _, sp := range s.Spikes {
			if t >= sp.Start && t < sp.Start+sp.Duration && sp.Level > u {
				u = sp.Level
			}
		}
		return u
	}
	if t < s.segT[0] {
		return u
	}
	// Binary search for the last boundary at or before t.
	lo, hi := 0, len(s.segT)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.segT[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if level := s.segLevel[lo-1]; level > u {
		u = level
	}
	return u
}

// PRBS is a pseudo-random binary sequence between Low and High, switching
// at Dwell-second boundaries with 50% probability, deterministic per seed.
// Control engineers use PRBS excitation for identification experiments;
// the tuner tests use it to stress controllers across frequencies.
type PRBS struct {
	Low, High units.Utilization
	Dwell     units.Seconds
	Seed      int64
}

// At implements Generator.
func (p PRBS) At(t units.Seconds) units.Utilization {
	if p.Dwell <= 0 {
		return units.ClampUtil(p.Low)
	}
	k := int64(math.Floor(float64(t) / float64(p.Dwell)))
	if stats.HashUniform(p.Seed, k) < 0.5 {
		return units.ClampUtil(p.Low)
	}
	return units.ClampUtil(p.High)
}

// Markov is a two-state Markov-modulated workload (busy/idle) with
// per-dwell transition probabilities, deterministic per seed. It produces
// the bursty long-tailed busy periods typical of server traces.
type Markov struct {
	IdleU, BusyU units.Utilization
	Dwell        units.Seconds
	PIdleToBusy  float64
	PBusyToIdle  float64
	Seed         int64
}

// At implements Generator. State is reconstructed by replaying transitions
// from t = 0, which keeps the generator deterministic and stateless at the
// cost of O(t / Dwell) work; simulation horizons keep this cheap.
func (m Markov) At(t units.Seconds) units.Utilization {
	if m.Dwell <= 0 {
		return units.ClampUtil(m.IdleU)
	}
	k := int64(math.Floor(float64(t) / float64(m.Dwell)))
	busy := false
	for i := int64(0); i <= k; i++ {
		p := stats.HashUniform(m.Seed, i)
		if busy {
			if p < m.PBusyToIdle {
				busy = false
			}
		} else {
			if p < m.PIdleToBusy {
				busy = true
			}
		}
	}
	if busy {
		return units.ClampUtil(m.BusyU)
	}
	return units.ClampUtil(m.IdleU)
}

// Trace plays back a recorded utilization trace with zero-order hold,
// holding the last value after the trace ends and the first value before
// it begins.
type Trace struct {
	times []units.Seconds
	utils []units.Utilization
}

// NewTrace builds a playback generator from parallel slices. Times must be
// strictly increasing.
func NewTrace(times []units.Seconds, utils []units.Utilization) (*Trace, error) {
	if len(times) != len(utils) {
		return nil, fmt.Errorf("workload: %d times vs %d utils", len(times), len(utils))
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("workload: empty trace")
	}
	for i := 1; i < len(times); i++ {
		if times[i] <= times[i-1] {
			return nil, fmt.Errorf("workload: non-increasing time at index %d", i)
		}
	}
	for i, u := range utils {
		if u < 0 || u > 1 {
			return nil, fmt.Errorf("workload: utilization %v at index %d outside [0, 1]", u, i)
		}
	}
	return &Trace{times: append([]units.Seconds(nil), times...), utils: append([]units.Utilization(nil), utils...)}, nil
}

// At implements Generator.
func (tr *Trace) At(t units.Seconds) units.Utilization {
	if t <= tr.times[0] {
		return tr.utils[0]
	}
	lo, hi := 0, len(tr.times)
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.times[mid] <= t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return tr.utils[lo-1]
}

// Len returns the number of samples in the trace.
func (tr *Trace) Len() int { return len(tr.times) }
