package workload

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
	"repro/internal/units"
)

func TestConstant(t *testing.T) {
	c := Constant{U: 0.5}
	if c.At(0) != 0.5 || c.At(1e6) != 0.5 {
		t.Error("constant not constant")
	}
	if (Constant{U: 1.5}).At(0) != 1 {
		t.Error("constant not clamped")
	}
}

func TestSquareWave(t *testing.T) {
	s, err := NewSquare(0.1, 0.7, 300)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		t    units.Seconds
		want units.Utilization
	}{
		{0, 0.1}, {149, 0.1}, {150, 0.7}, {299, 0.7}, {300, 0.1}, {450, 0.7},
		{-5, 0.1},
	}
	for _, tt := range tests {
		if got := s.At(tt.t); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
}

func TestSquareValidation(t *testing.T) {
	if _, err := NewSquare(0.1, 0.7, 0); err == nil {
		t.Error("zero period accepted")
	}
	if _, err := NewSquare(-0.1, 0.7, 10); err == nil {
		t.Error("negative low accepted")
	}
	if _, err := NewSquare(0.1, 1.7, 10); err == nil {
		t.Error("high > 1 accepted")
	}
}

func TestPaperSquare(t *testing.T) {
	s := PaperSquare(300)
	if s.Low != 0.1 || s.High != 0.7 {
		t.Errorf("paper square = %+v", s)
	}
}

func TestRamp(t *testing.T) {
	r := Ramp{From: 0.2, To: 0.8, Duration: 10}
	if got := r.At(0); got != 0.2 {
		t.Errorf("At(0) = %v", got)
	}
	if got := r.At(5); math.Abs(float64(got)-0.5) > 1e-12 {
		t.Errorf("At(5) = %v, want 0.5", got)
	}
	if got := r.At(10); got != 0.8 {
		t.Errorf("At(10) = %v", got)
	}
	if got := r.At(100); got != 0.8 {
		t.Errorf("At(100) = %v", got)
	}
	if got := r.At(-1); got != 0.2 {
		t.Errorf("At(-1) = %v", got)
	}
	zero := Ramp{From: 0.1, To: 0.9, Duration: 0}
	if got := zero.At(0); got != 0.9 {
		t.Errorf("zero-duration ramp = %v, want To", got)
	}
}

func TestStep(t *testing.T) {
	s := Step{Before: 0.1, After: 0.7, Time: 100}
	if s.At(99.9) != 0.1 || s.At(100) != 0.7 {
		t.Error("step transition wrong")
	}
}

func TestNoisyDeterministicAndClamped(t *testing.T) {
	base := PaperSquare(300)
	n, err := NewNoisy(base, 0.04, 1, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tm := units.Seconds(i)
		a, b := n.At(tm), n.At(tm)
		if a != b {
			t.Fatalf("non-deterministic at t=%v: %v vs %v", tm, a, b)
		}
		if a < 0 || a > 1 {
			t.Fatalf("unclamped value %v", a)
		}
	}
}

func TestNoisySigmaMatchesPaper(t *testing.T) {
	// Around a constant base the noise σ should be ~0.04 as in Fig. 5.
	n, _ := NewNoisy(Constant{U: 0.5}, 0.04, 1, 7)
	var xs []float64
	for i := 0; i < 5000; i++ {
		xs = append(xs, float64(n.At(units.Seconds(i))))
	}
	if m := stats.Mean(xs); math.Abs(m-0.5) > 0.01 {
		t.Errorf("noisy mean = %v, want ~0.5", m)
	}
	if s := stats.StdDev(xs); math.Abs(s-0.04) > 0.01 {
		t.Errorf("noisy std = %v, want ~0.04", s)
	}
}

func TestNoisySameTickSameNoise(t *testing.T) {
	n, _ := NewNoisy(Constant{U: 0.5}, 0.04, 1, 7)
	if n.At(3.1) != n.At(3.9) {
		t.Error("noise differs within one tick")
	}
	if n.At(3.0) == n.At(4.0) {
		t.Error("noise identical across ticks (suspicious)")
	}
}

func TestNoisyValidation(t *testing.T) {
	if _, err := NewNoisy(nil, 0.04, 1, 0); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewNoisy(Constant{}, -1, 1, 0); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewNoisy(Constant{}, 0.04, 0, 0); err == nil {
		t.Error("zero tick accepted")
	}
}

func TestSpiky(t *testing.T) {
	base := Constant{U: 0.2}
	s, err := NewSpiky(base, []Spike{{Start: 100, Duration: 20, Level: 0.95}})
	if err != nil {
		t.Fatal(err)
	}
	if got := s.At(99); got != 0.2 {
		t.Errorf("before spike = %v", got)
	}
	if got := s.At(100); got != 0.95 {
		t.Errorf("at spike start = %v", got)
	}
	if got := s.At(119.9); got != 0.95 {
		t.Errorf("during spike = %v", got)
	}
	if got := s.At(120); got != 0.2 {
		t.Errorf("after spike = %v", got)
	}
}

func TestSpikyDoesNotLowerDemand(t *testing.T) {
	// A spike below the base level must not reduce demand.
	s, _ := NewSpiky(Constant{U: 0.8}, []Spike{{Start: 0, Duration: 10, Level: 0.3}})
	if got := s.At(5); got != 0.8 {
		t.Errorf("low spike lowered demand to %v", got)
	}
}

func TestSpikyValidation(t *testing.T) {
	if _, err := NewSpiky(nil, nil); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewSpiky(Constant{}, []Spike{{Duration: 0, Level: 0.5}}); err == nil {
		t.Error("zero duration spike accepted")
	}
	if _, err := NewSpiky(Constant{}, []Spike{{Duration: 5, Level: 1.5}}); err == nil {
		t.Error("level > 1 accepted")
	}
}

func TestPeriodicSpikes(t *testing.T) {
	spikes := PeriodicSpikes(50, 100, 10, 0.9, 3)
	if len(spikes) != 3 {
		t.Fatalf("count = %d", len(spikes))
	}
	wantStarts := []units.Seconds{50, 150, 250}
	for i, sp := range spikes {
		if sp.Start != wantStarts[i] || sp.Duration != 10 || sp.Level != 0.9 {
			t.Errorf("spike %d = %+v", i, sp)
		}
	}
}

func TestPRBSDeterministicAndBinary(t *testing.T) {
	p := PRBS{Low: 0.1, High: 0.7, Dwell: 10, Seed: 3}
	sawLow, sawHigh := false, false
	for i := 0; i < 100; i++ {
		tm := units.Seconds(i * 10)
		v := p.At(tm)
		if v != p.At(tm) {
			t.Fatal("PRBS non-deterministic")
		}
		switch v {
		case 0.1:
			sawLow = true
		case 0.7:
			sawHigh = true
		default:
			t.Fatalf("PRBS produced non-binary %v", v)
		}
	}
	if !sawLow || !sawHigh {
		t.Error("PRBS never switched")
	}
	zero := PRBS{Low: 0.3, Dwell: 0}
	if zero.At(5) != 0.3 {
		t.Error("zero dwell should return Low")
	}
}

func TestMarkovEventuallyVisitsBothStates(t *testing.T) {
	m := Markov{IdleU: 0.1, BusyU: 0.8, Dwell: 5, PIdleToBusy: 0.3, PBusyToIdle: 0.3, Seed: 9}
	sawIdle, sawBusy := false, false
	for i := 0; i < 200; i++ {
		switch m.At(units.Seconds(i * 5)) {
		case 0.1:
			sawIdle = true
		case 0.8:
			sawBusy = true
		}
	}
	if !sawIdle || !sawBusy {
		t.Errorf("Markov stuck: idle=%v busy=%v", sawIdle, sawBusy)
	}
	if m.At(123) != m.At(123) {
		t.Error("Markov non-deterministic")
	}
}

func TestTracePlayback(t *testing.T) {
	tr, err := NewTrace(
		[]units.Seconds{0, 10, 20},
		[]units.Utilization{0.2, 0.5, 0.9},
	)
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		t    units.Seconds
		want units.Utilization
	}{
		{-5, 0.2}, {0, 0.2}, {9.9, 0.2}, {10, 0.5}, {15, 0.5}, {20, 0.9}, {1000, 0.9},
	}
	for _, tt := range tests {
		if got := tr.At(tt.t); got != tt.want {
			t.Errorf("At(%v) = %v, want %v", tt.t, got, tt.want)
		}
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTraceValidation(t *testing.T) {
	if _, err := NewTrace(nil, nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := NewTrace([]units.Seconds{0}, []units.Utilization{0.1, 0.2}); err == nil {
		t.Error("mismatched lengths accepted")
	}
	if _, err := NewTrace([]units.Seconds{0, 0}, []units.Utilization{0.1, 0.2}); err == nil {
		t.Error("non-increasing times accepted")
	}
	if _, err := NewTrace([]units.Seconds{0}, []units.Utilization{1.5}); err == nil {
		t.Error("out-of-range utilization accepted")
	}
}

func TestGeneratorsAlwaysInRangeProperty(t *testing.T) {
	sq := PaperSquare(300)
	noisy, _ := NewNoisy(sq, 0.2, 1, 5)
	spiky, _ := NewSpiky(noisy, PeriodicSpikes(10, 100, 15, 1.0, 5))
	gens := []Generator{
		sq, noisy, spiky,
		Ramp{From: 0, To: 1, Duration: 100},
		PRBS{Low: 0, High: 1, Dwell: 7, Seed: 1},
		Markov{IdleU: 0, BusyU: 1, Dwell: 3, PIdleToBusy: 0.5, PBusyToIdle: 0.5, Seed: 2},
	}
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		tm := units.Seconds(math.Mod(math.Abs(raw), 1e5))
		for _, g := range gens {
			u := g.At(tm)
			if u < 0 || u > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpikyScheduleMatchesScan(t *testing.T) {
	// Overlapping spikes of different levels, including exact-boundary and
	// nested intervals: the compiled segment schedule must agree with the
	// naive per-spike scan at every boundary and interior instant.
	spikes := []Spike{
		{Start: 10, Duration: 20, Level: 0.6},
		{Start: 15, Duration: 30, Level: 0.9},
		{Start: 18, Duration: 4, Level: 0.7},
		{Start: 45, Duration: 5, Level: 1.0},
		{Start: 50, Duration: 5, Level: 0.5},
		{Start: 200, Duration: 1, Level: 0.8},
	}
	base := Constant{U: 0.2}
	sp, err := NewSpiky(base, spikes)
	if err != nil {
		t.Fatal(err)
	}
	naive := func(tm units.Seconds) units.Utilization {
		u := base.At(tm)
		for _, s := range spikes {
			if tm >= s.Start && tm < s.Start+s.Duration && s.Level > u {
				u = s.Level
			}
		}
		return u
	}
	for tm := units.Seconds(0); tm < 220; tm += 0.25 {
		if got, want := sp.At(tm), naive(tm); got != want {
			t.Fatalf("At(%v) = %v, want %v", tm, got, want)
		}
	}
}
