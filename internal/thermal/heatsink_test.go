package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestTableIResistanceValues(t *testing.T) {
	law := TableIHeatSinkLaw()
	// Spot values computed directly from R = 0.141 + 132.5/v^0.923.
	tests := []struct {
		v    units.RPM
		want float64
	}{
		{8500, 0.141 + 132.5/math.Pow(8500, 0.923)},
		{6000, 0.141 + 132.5/math.Pow(6000, 0.923)},
		{2000, 0.141 + 132.5/math.Pow(2000, 0.923)},
		{1000, 0.141 + 132.5/math.Pow(1000, 0.923)},
	}
	for _, tt := range tests {
		got := law.Resistance(tt.v)
		if math.Abs(float64(got)-tt.want) > 1e-12 {
			t.Errorf("R(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
	// Sanity on magnitudes used throughout DESIGN.md.
	if r := law.Resistance(8500); math.Abs(float64(r)-0.172) > 0.002 {
		t.Errorf("R(8500) = %v, want ~0.172", r)
	}
	if r := law.Resistance(2000); math.Abs(float64(r)-0.260) > 0.002 {
		t.Errorf("R(2000) = %v, want ~0.260", r)
	}
}

func TestResistanceMonotoneDecreasing(t *testing.T) {
	law := TableIHeatSinkLaw()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		va := units.RPM(100 + math.Mod(math.Abs(a), 8400))
		vb := units.RPM(100 + math.Mod(math.Abs(b), 8400))
		if va > vb {
			va, vb = vb, va
		}
		return law.Resistance(va) >= law.Resistance(vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestResistanceFloorsLowSpeed(t *testing.T) {
	law := TableIHeatSinkLaw()
	if got, want := law.Resistance(0), law.Resistance(100); got != want {
		t.Errorf("R(0) = %v, want clamp to R(100) = %v", got, want)
	}
	if got, want := law.Resistance(-500), law.Resistance(100); got != want {
		t.Errorf("R(-500) = %v, want %v", got, want)
	}
}

func TestSpeedForInvertsResistance(t *testing.T) {
	law := TableIHeatSinkLaw()
	for _, v := range []units.RPM{500, 1000, 2000, 4000, 6000, 8500} {
		r := law.Resistance(v)
		got, err := law.SpeedFor(r)
		if err != nil {
			t.Fatalf("SpeedFor(R(%v)): %v", v, err)
		}
		if math.Abs(float64(got-v)) > 0.01 {
			t.Errorf("SpeedFor(R(%v)) = %v", v, got)
		}
	}
}

func TestSpeedForRejectsUnreachable(t *testing.T) {
	law := TableIHeatSinkLaw()
	if _, err := law.SpeedFor(law.R0); err == nil {
		t.Error("resistance at floor accepted")
	}
	if _, err := law.SpeedFor(0.1); err == nil {
		t.Error("resistance below floor accepted")
	}
	// Resistance higher than at the minimum speed: requires sub-floor speed.
	tooHigh := law.Resistance(minSpeedFloor) + 1
	if _, err := law.SpeedFor(tooHigh); err == nil {
		t.Error("sub-floor speed accepted")
	}
}

func TestSensitivityShrinksWithSpeed(t *testing.T) {
	law := TableIHeatSinkLaw()
	load := units.Watt(140.8) // P at u = 0.7
	s2000 := law.Sensitivity(2000, load)
	s6000 := law.Sensitivity(6000, load)
	if s2000 >= 0 || s6000 >= 0 {
		t.Fatalf("sensitivities must be negative: %v, %v", s2000, s6000)
	}
	ratio := s2000 / s6000
	if ratio < 5 || ratio > 12 {
		t.Errorf("gain ratio 2000/6000 = %v, want ~8 (paper's nonlinearity)", ratio)
	}
}

func TestSensitivityFloor(t *testing.T) {
	law := TableIHeatSinkLaw()
	if got, want := law.Sensitivity(0, 100), law.Sensitivity(100, 100); got != want {
		t.Errorf("Sensitivity(0) = %v, want clamped %v", got, want)
	}
}
