package thermal

import (
	"fmt"

	"repro/internal/units"
)

// Network is a general lumped thermal RC network under the thermal ⇄
// electrical duality of [18] (HotSpot): temperatures are node voltages,
// heat flows are currents, thermal resistances are resistors and thermal
// capacitances are grounded capacitors. Each node obeys
//
//	C_i dT_i/dt = P_i + Σ_j (T_j - T_i)/R_ij + (T_amb - T_i)/R_i,amb
//
// integrated with classic RK4. The two-node Server model is a special case;
// the tests cross-validate the fast exponential stepping against this
// general integrator, and multi-core scenarios use it directly.
//
// Step is allocation-free after the first call: the coupling matrix is
// compiled into a flat CSR-style neighbor list so derivatives costs
// O(edges) instead of O(n²), and the RK4 substep count (a function of the
// smallest node time constant) is cached and recomputed only when the
// topology, a capacitance, or a conductance changes — not on every Step.
type Network struct {
	n        int
	names    []string
	caps     []units.JPerK
	temps    []units.Celsius
	ambient  units.Celsius
	ambCond  []float64   // conductance to ambient per node (1/R), 0 = none
	cond     [][]float64 // symmetric node-to-node conductances (source of truth)
	loads    []units.Watt
	deriv    []float64 // scratch buffers for RK4
	k1, k2   []float64
	k3, k4   []float64
	tmp      []float64
	tempsBuf []float64

	// Compiled hot-path state, rebuilt lazily from cond/caps/ambCond.
	invCaps  []float64 // 1 / C_i
	nbrStart []int     // CSR row offsets into nbrIdx/nbrG (len n+1)
	nbrIdx   []int     // neighbor node indices
	nbrG     []float64 // neighbor conductances
	rowG     []float64 // Σ_j cond[i][j], for O(n) time-constant refresh
	tauMin   float64   // cached smallest C_i / G_i
	csrDirty bool      // node-to-node topology or conductance changed
	tauDirty bool      // any quantity feeding tauMin changed
}

// NewNetwork creates a network of n isolated nodes at the given ambient
// temperature. Nodes start at ambient with unit capacitance and no
// couplings.
func NewNetwork(n int, ambient units.Celsius) (*Network, error) {
	if n < 1 {
		return nil, fmt.Errorf("thermal: network size %d < 1", n)
	}
	net := &Network{
		n:        n,
		names:    make([]string, n),
		caps:     make([]units.JPerK, n),
		temps:    make([]units.Celsius, n),
		ambient:  ambient,
		ambCond:  make([]float64, n),
		cond:     make([][]float64, n),
		loads:    make([]units.Watt, n),
		deriv:    make([]float64, n),
		k1:       make([]float64, n),
		k2:       make([]float64, n),
		k3:       make([]float64, n),
		k4:       make([]float64, n),
		tmp:      make([]float64, n),
		tempsBuf: make([]float64, n),
		invCaps:  make([]float64, n),
		nbrStart: make([]int, n+1),
		rowG:     make([]float64, n),
		csrDirty: true,
		tauDirty: true,
	}
	for i := 0; i < n; i++ {
		net.names[i] = fmt.Sprintf("node%d", i)
		net.caps[i] = 1
		net.invCaps[i] = 1
		net.temps[i] = ambient
		net.cond[i] = make([]float64, n)
	}
	return net, nil
}

// Size returns the number of nodes.
func (net *Network) Size() int { return net.n }

// SetName labels node i.
func (net *Network) SetName(i int, name string) { net.names[i] = name }

// Name returns node i's label.
func (net *Network) Name(i int) string { return net.names[i] }

// SetCapacitance sets node i's thermal capacitance.
// Non-positive values error.
func (net *Network) SetCapacitance(i int, c units.JPerK) error {
	if c <= 0 {
		return fmt.Errorf("thermal: non-positive capacitance %v for node %d", c, i)
	}
	net.caps[i] = c
	net.invCaps[i] = 1 / float64(c)
	net.tauDirty = true
	return nil
}

// Connect couples nodes i and j with thermal resistance r (symmetric).
// Non-positive r or i == j errors.
func (net *Network) Connect(i, j int, r units.KPerW) error {
	if i == j {
		return fmt.Errorf("thermal: self-coupling of node %d", i)
	}
	if r <= 0 {
		return fmt.Errorf("thermal: non-positive resistance %v between %d and %d", r, i, j)
	}
	g := 1 / float64(r)
	net.cond[i][j] = g
	net.cond[j][i] = g
	net.csrDirty = true
	net.tauDirty = true
	return nil
}

// ConnectAmbient couples node i to ambient with resistance r. The sink
// node's ambient resistance is updated every step as the fan speed changes;
// only the (cheap, O(n)) time-constant cache is refreshed for it, not the
// neighbor list.
func (net *Network) ConnectAmbient(i int, r units.KPerW) error {
	if r <= 0 {
		return fmt.Errorf("thermal: non-positive ambient resistance %v for node %d", r, i)
	}
	g := 1 / float64(r)
	if g != net.ambCond[i] {
		net.ambCond[i] = g
		net.tauDirty = true
	}
	return nil
}

// SetLoad sets the heat injected into node i.
func (net *Network) SetLoad(i int, p units.Watt) { net.loads[i] = p }

// Temperature returns node i's temperature.
func (net *Network) Temperature(i int) units.Celsius { return net.temps[i] }

// SetTemperature forces node i's temperature.
func (net *Network) SetTemperature(i int, t units.Celsius) { net.temps[i] = t }

// Ambient returns the ambient temperature.
func (net *Network) Ambient() units.Celsius { return net.ambient }

// SetAmbient changes the ambient temperature.
func (net *Network) SetAmbient(t units.Celsius) { net.ambient = t }

// compile rebuilds the CSR neighbor list and per-row conductance sums from
// the dense coupling matrix. Called lazily; the scratch slices are reused
// so steady-state stepping allocates only when the edge count grows.
func (net *Network) compile() {
	edges := 0
	for i := 0; i < net.n; i++ {
		for j := 0; j < net.n; j++ {
			if net.cond[i][j] != 0 {
				edges++
			}
		}
	}
	if cap(net.nbrIdx) < edges {
		net.nbrIdx = make([]int, edges)
		net.nbrG = make([]float64, edges)
	}
	net.nbrIdx = net.nbrIdx[:edges]
	net.nbrG = net.nbrG[:edges]
	k := 0
	for i := 0; i < net.n; i++ {
		net.nbrStart[i] = k
		sum := 0.0
		for j := 0; j < net.n; j++ {
			if g := net.cond[i][j]; g != 0 {
				net.nbrIdx[k] = j
				net.nbrG[k] = g
				sum += g
				k++
			}
		}
		net.rowG[i] = sum
	}
	net.nbrStart[net.n] = k
	net.csrDirty = false
}

// refreshTau recomputes the cached smallest time constant from the compiled
// row sums in O(n).
func (net *Network) refreshTau() {
	minTau := 1e18
	for i := 0; i < net.n; i++ {
		g := net.rowG[i] + net.ambCond[i]
		if g == 0 {
			continue
		}
		tau := float64(net.caps[i]) / g
		if tau < minTau {
			minTau = tau
		}
	}
	if minTau == 1e18 {
		minTau = 1 // fully disconnected network: any step is exact
	}
	net.tauMin = minTau
	net.tauDirty = false
}

// derivatives fills out with dT/dt for the state in temps.
func (net *Network) derivatives(temps, out []float64) {
	amb := float64(net.ambient)
	for i := 0; i < net.n; i++ {
		q := float64(net.loads[i])
		ti := temps[i]
		for k := net.nbrStart[i]; k < net.nbrStart[i+1]; k++ {
			q += (temps[net.nbrIdx[k]] - ti) * net.nbrG[k]
		}
		if g := net.ambCond[i]; g != 0 {
			q += (amb - ti) * g
		}
		out[i] = q * net.invCaps[i]
	}
}

// Step advances the network by dt using RK4. For accuracy dt should be a
// fraction of the smallest time constant; Step subdivides automatically so
// callers may pass any positive dt. It errors on non-positive dt.
func (net *Network) Step(dt units.Seconds) error {
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive step %v", dt)
	}
	if net.csrDirty {
		net.compile()
	}
	if net.tauDirty {
		net.refreshTau()
	}
	// Subdivide: RK4 is stable up to roughly dt ~ 2.8*tau_min; stay well
	// under at tau_min/4 for accuracy.
	sub := 1
	if h := float64(dt); h > net.tauMin/4 {
		sub = int(h/(net.tauMin/4)) + 1
	}
	h := float64(dt) / float64(sub)
	x := net.tempsBuf
	for i := range net.temps {
		x[i] = float64(net.temps[i])
	}
	tmp := net.tmp
	for s := 0; s < sub; s++ {
		net.derivatives(x, net.k1)
		for i := range tmp {
			tmp[i] = x[i] + h/2*net.k1[i]
		}
		net.derivatives(tmp, net.k2)
		for i := range tmp {
			tmp[i] = x[i] + h/2*net.k2[i]
		}
		net.derivatives(tmp, net.k3)
		for i := range tmp {
			tmp[i] = x[i] + h*net.k3[i]
		}
		net.derivatives(tmp, net.k4)
		for i := range x {
			x[i] += h / 6 * (net.k1[i] + 2*net.k2[i] + 2*net.k3[i] + net.k4[i])
		}
	}
	for i := range net.temps {
		net.temps[i] = units.Celsius(x[i])
	}
	return nil
}

// minTimeConstant returns the smallest C_i / G_i over nodes with any
// conductance, used to pick the RK4 substep.
func (net *Network) minTimeConstant() float64 {
	if net.csrDirty {
		net.compile()
	}
	if net.tauDirty {
		net.refreshTau()
	}
	return net.tauMin
}

// SteadyState solves the linear steady-state system (dT/dt = 0) by
// Gauss-Seidel iteration and returns the node temperatures. It errors when
// iteration fails to converge, which indicates a node with no path to
// ambient carrying nonzero load.
func (net *Network) SteadyState() ([]units.Celsius, error) {
	if net.csrDirty {
		net.compile()
	}
	x := make([]float64, net.n)
	for i := range x {
		x[i] = float64(net.temps[i])
	}
	const maxIter = 200000
	const tol = 1e-10
	for iter := 0; iter < maxIter; iter++ {
		maxDelta := 0.0
		for i := 0; i < net.n; i++ {
			g := net.ambCond[i] + net.rowG[i]
			rhs := float64(net.loads[i]) + net.ambCond[i]*float64(net.ambient)
			for k := net.nbrStart[i]; k < net.nbrStart[i+1]; k++ {
				rhs += net.nbrG[k] * x[net.nbrIdx[k]]
			}
			if g == 0 {
				if net.loads[i] != 0 {
					return nil, fmt.Errorf("thermal: node %d has load but no thermal path", i)
				}
				continue
			}
			nv := rhs / g
			if d := nv - x[i]; d > maxDelta {
				maxDelta = d
			} else if -d > maxDelta {
				maxDelta = -d
			}
			x[i] = nv
		}
		if maxDelta < tol {
			out := make([]units.Celsius, net.n)
			for i := range out {
				out[i] = units.Celsius(x[i])
			}
			return out, nil
		}
	}
	return nil, fmt.Errorf("thermal: steady-state iteration did not converge")
}
