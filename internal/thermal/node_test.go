package thermal

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestSteadyState(t *testing.T) {
	// Eq. 3: T_ss = T_amb + R * P
	if got := SteadyState(25, 0.26, 140.8); math.Abs(float64(got)-(25+0.26*140.8)) > 1e-12 {
		t.Errorf("SteadyState = %v", got)
	}
}

func TestNodeConvergesToSteadyState(t *testing.T) {
	n := NewNode(25)
	// tau = 0.2*300 = 60 s; after 10 tau the node is at steady state.
	for i := 0; i < 600; i++ {
		n.Step(25, 0.2, 300, 100, 1)
	}
	want := SteadyState(25, 0.2, 100) // 45
	if math.Abs(float64(n.Temperature()-want)) > 1e-3 {
		t.Errorf("converged to %v, want %v", n.Temperature(), want)
	}
}

func TestNodeExactExponential(t *testing.T) {
	// One step of the exact solution must match the closed form whatever
	// the step size, including steps much larger than tau.
	n := NewNode(80)
	got := n.Step(25, 0.5, 100, 0, 200) // tau = 50, dt = 200
	want := 25 + (80-25)*math.Exp(-200.0/50)
	if math.Abs(float64(got)-want) > 1e-9 {
		t.Errorf("Step = %v, want %v", got, want)
	}
}

func TestNodeStepSizeInvariance(t *testing.T) {
	// The exact integrator gives identical results for one big step and
	// many small steps under constant input.
	big := NewNode(30)
	big.Step(25, 0.3, 200, 150, 60)
	small := NewNode(30)
	for i := 0; i < 60; i++ {
		small.Step(25, 0.3, 200, 150, 1)
	}
	if math.Abs(float64(big.Temperature()-small.Temperature())) > 1e-9 {
		t.Errorf("big step %v != many small steps %v", big.Temperature(), small.Temperature())
	}
}

func TestNodeMonotoneApproachProperty(t *testing.T) {
	// Under constant input the temperature approaches steady state
	// monotonically and never overshoots (first-order system).
	f := func(t0raw, praw float64) bool {
		if math.IsNaN(t0raw) || math.IsInf(t0raw, 0) || math.IsNaN(praw) || math.IsInf(praw, 0) {
			return true
		}
		t0 := units.Celsius(math.Mod(t0raw, 150))
		p := units.Watt(math.Mod(math.Abs(praw), 300))
		n := NewNode(t0)
		ss := SteadyState(25, 0.2, p)
		prevDist := math.Abs(float64(t0 - ss))
		for i := 0; i < 50; i++ {
			n.Step(25, 0.2, 100, p, 1)
			dist := math.Abs(float64(n.Temperature() - ss))
			if dist > prevDist+1e-9 {
				return false
			}
			prevDist = dist
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNodeZeroStepIsIdentity(t *testing.T) {
	n := NewNode(55)
	if got := n.Step(25, 0.2, 100, 100, 0); got != 55 {
		t.Errorf("zero step moved temperature to %v", got)
	}
}

func TestNodePanicsOnBadParams(t *testing.T) {
	cases := []struct {
		name string
		r    units.KPerW
		c    units.JPerK
		dt   units.Seconds
	}{
		{"zero R", 0, 100, 1},
		{"negative R", -1, 100, 1},
		{"zero C", 0.1, 0, 1},
		{"negative dt", 0.1, 100, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", tc.name)
				}
			}()
			NewNode(25).Step(25, tc.r, tc.c, 100, tc.dt)
		})
	}
}

func TestTimeConstantAndCapacitanceFor(t *testing.T) {
	if got := TimeConstant(0.2, 300); got != 60 {
		t.Errorf("TimeConstant = %v, want 60", got)
	}
	c, err := CapacitanceFor(60, 0.2)
	if err != nil || c != 300 {
		t.Errorf("CapacitanceFor = %v, %v, want 300", c, err)
	}
	if _, err := CapacitanceFor(0, 0.2); err == nil {
		t.Error("zero tau accepted")
	}
	if _, err := CapacitanceFor(60, 0); err == nil {
		t.Error("zero R accepted")
	}
}

func TestTableIDerivedSinkCapacitance(t *testing.T) {
	// C_hs = 60 s / R_hs(8500 rpm) ~ 348 J/K (DESIGN.md calibration).
	law := TableIHeatSinkLaw()
	c, err := CapacitanceFor(60, law.Resistance(8500))
	if err != nil {
		t.Fatal(err)
	}
	if float64(c) < 330 || float64(c) > 360 {
		t.Errorf("C_hs = %v, want ~348", c)
	}
}

func TestSetTemperature(t *testing.T) {
	n := NewNode(25)
	n.SetTemperature(90)
	if n.Temperature() != 90 {
		t.Error("SetTemperature did not take")
	}
}
