package thermal

import (
	"testing"

	"repro/internal/units"
)

// buildPair constructs a B-server batch network and B standalone reference
// networks with identical topology (a loaded star around an ambient-coupled
// sink) but per-server loads, initial temperatures and ambients.
func buildPair(t testing.TB, n, b int) (*BatchNetwork, []*Network) {
	t.Helper()
	bn, err := NewBatchNetwork(n, b, 25)
	if err != nil {
		t.Fatal(err)
	}
	refs := make([]*Network, b)
	for s := range refs {
		refs[s], err = NewNetwork(n, 25)
		if err != nil {
			t.Fatal(err)
		}
	}
	sink := n - 1
	if err := bn.SetCapacitance(sink, 500); err != nil {
		t.Fatal(err)
	}
	if err := bn.ConnectAmbient(sink, 0.05); err != nil {
		t.Fatal(err)
	}
	for _, ref := range refs {
		if err := ref.SetCapacitance(sink, 500); err != nil {
			t.Fatal(err)
		}
		if err := ref.ConnectAmbient(sink, 0.05); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < sink; i++ {
		if err := bn.SetCapacitance(i, 50); err != nil {
			t.Fatal(err)
		}
		if err := bn.Connect(i, sink, 0.5); err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			if err := ref.SetCapacitance(i, 50); err != nil {
				t.Fatal(err)
			}
			if err := ref.Connect(i, sink, 0.5); err != nil {
				t.Fatal(err)
			}
		}
	}
	// Per-server variation: loads, initial state and ambient all differ.
	for s := 0; s < b; s++ {
		amb := units.Celsius(20 + float64(s))
		bn.SetAmbient(s, amb)
		refs[s].SetAmbient(amb)
		for i := 0; i < sink; i++ {
			p := units.Watt(5 + float64(i) + 0.25*float64(s))
			bn.SetLoad(i, s, p)
			refs[s].SetLoad(i, p)
			t0 := units.Celsius(25 + 0.5*float64(i) + 0.1*float64(s))
			bn.SetTemperature(i, s, t0)
			refs[s].SetTemperature(i, t0)
		}
	}
	return bn, refs
}

// TestBatchNetworkBitIdentical: every server column of the lockstep batch
// must track its standalone reference network bit for bit, across steps
// that change loads and ambients mid-flight.
func TestBatchNetworkBitIdentical(t *testing.T) {
	for _, b := range []int{1, 3, 8} {
		const n = 5
		bn, refs := buildPair(t, n, b)
		for step := 0; step < 50; step++ {
			if step == 20 {
				// Perturb one server's load and another's ambient.
				bn.SetLoad(0, b-1, 42)
				refs[b-1].SetLoad(0, 42)
				bn.SetAmbient(0, 31)
				refs[0].SetAmbient(31)
			}
			if err := bn.Step(1); err != nil {
				t.Fatal(err)
			}
			for _, ref := range refs {
				if err := ref.Step(1); err != nil {
					t.Fatal(err)
				}
			}
			for s := 0; s < b; s++ {
				for i := 0; i < n; i++ {
					if got, want := bn.Temperature(i, s), refs[s].Temperature(i); got != want {
						t.Fatalf("batch %d: step %d node %d server %d: %v != reference %v",
							b, step, i, s, got, want)
					}
				}
			}
		}
	}
}

// TestBatchNetworkRetune: a shared ambient-resistance retune (the fleet
// fan-speed pattern) must stay bit-identical and not disturb other state.
func TestBatchNetworkRetune(t *testing.T) {
	const n, b = 4, 3
	bn, refs := buildPair(t, n, b)
	law := TableIHeatSinkLaw()
	for step := 0; step < 30; step++ {
		r := law.Resistance(units.RPM(2000 + 200*step))
		if err := bn.ConnectAmbient(n-1, r); err != nil {
			t.Fatal(err)
		}
		for _, ref := range refs {
			if err := ref.ConnectAmbient(n-1, r); err != nil {
				t.Fatal(err)
			}
		}
		if err := bn.Step(1); err != nil {
			t.Fatal(err)
		}
		for s, ref := range refs {
			if err := ref.Step(1); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if got, want := bn.Temperature(i, s), ref.Temperature(i); got != want {
					t.Fatalf("step %d node %d server %d: %v != %v", step, i, s, got, want)
				}
			}
		}
	}
}

// TestBatchNetworkValidation: construction and mutation errors mirror
// Network's.
func TestBatchNetworkValidation(t *testing.T) {
	if _, err := NewBatchNetwork(0, 4, 25); err == nil {
		t.Error("0-node batch accepted")
	}
	if _, err := NewBatchNetwork(2, 0, 25); err == nil {
		t.Error("0-server batch accepted")
	}
	bn, err := NewBatchNetwork(2, 2, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := bn.SetCapacitance(0, 0); err == nil {
		t.Error("non-positive capacitance accepted")
	}
	if err := bn.Connect(0, 0, 1); err == nil {
		t.Error("self-coupling accepted")
	}
	if err := bn.Connect(0, 1, 0); err == nil {
		t.Error("non-positive resistance accepted")
	}
	if err := bn.ConnectAmbient(0, -1); err == nil {
		t.Error("negative ambient resistance accepted")
	}
	if err := bn.Step(0); err == nil {
		t.Error("non-positive step accepted")
	}
}
