package thermal

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Node is a single first-order thermal RC node integrated with the exact
// exponential solution of Eq. 2:
//
//	T(t+dt) = T_ss + (T(t) - T_ss) * exp(-dt / (R*C)),
//	T_ss    = T_ref + R * P            (Eq. 3)
//
// where T_ref is the temperature the node relaxes toward at zero load (the
// ambient for a heat sink, the sink temperature for a die). The exact form
// is unconditionally stable for any step size, which lets the simulator
// take 1 s steps against a 0.1 s die time constant without blowing up.
//
// The decay factor exp(-dt/tau) is memoized on (tau, dt): a die node's tau
// never changes and a sink node's changes only while the fan slews, so the
// steady-state tick path skips the math.Exp call entirely (profiling puts
// it near a fifth of the closed-loop tick). The cache is bit-transparent —
// a hit returns exactly the value the call would recompute.
type Node struct {
	temp units.Celsius

	decTau, decDt float64 // inputs the cached decay was computed for
	decay         float64
	decSet        bool
}

// NewNode returns a node at the given initial temperature.
func NewNode(initial units.Celsius) *Node { return &Node{temp: initial} }

// Temperature returns the node's current temperature.
func (n *Node) Temperature() units.Celsius { return n.temp }

// SetTemperature overrides the node state (used when re-initializing a
// scenario mid-run).
func (n *Node) SetTemperature(t units.Celsius) { n.temp = t }

// SteadyState returns Eq. 3 for the given reference temperature,
// resistance and heat load.
func SteadyState(ref units.Celsius, r units.KPerW, p units.Watt) units.Celsius {
	return ref + units.Celsius(float64(r)*float64(p))
}

// Step advances the node by dt against reference temperature ref,
// resistance r and capacitance c, under constant heat load p, using the
// exact exponential update. It panics on non-positive R or C or negative
// dt — all are construction-time errors, not runtime data.
func (n *Node) Step(ref units.Celsius, r units.KPerW, c units.JPerK, p units.Watt, dt units.Seconds) units.Celsius {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("thermal: non-positive RC (R=%v, C=%v)", r, c))
	}
	if dt < 0 {
		panic(fmt.Sprintf("thermal: negative step %v", dt))
	}
	ss := SteadyState(ref, r, p)
	tau := float64(r) * float64(c)
	if !n.decSet || tau != n.decTau || float64(dt) != n.decDt {
		n.decTau, n.decDt = tau, float64(dt)
		n.decay = math.Exp(-float64(dt) / tau)
		n.decSet = true
	}
	n.temp = ss + units.Celsius(float64(n.temp-ss)*n.decay)
	return n.temp
}

// TimeConstant returns tau = R*C in seconds.
func TimeConstant(r units.KPerW, c units.JPerK) units.Seconds {
	return units.Seconds(float64(r) * float64(c))
}

// CapacitanceFor returns the capacitance that yields the given time
// constant at the given resistance: C = tau / R. The server model uses it
// to derive C_hs from Table I's "60 s at max air flow".
func CapacitanceFor(tau units.Seconds, r units.KPerW) (units.JPerK, error) {
	if tau <= 0 || r <= 0 {
		return 0, fmt.Errorf("thermal: non-positive tau %v or R %v", tau, r)
	}
	return units.JPerK(float64(tau) / float64(r)), nil
}
