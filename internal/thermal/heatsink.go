// Package thermal implements the temperature models of Sec. III-B: the
// fan-speed-dependent heat-sink resistance law of Table I, exact
// exponential integration of first-order RC nodes (Eqs. 2–3), the
// die-plus-sink server model built on the time-constant separation the
// paper exploits, and a general thermal RC network (electrical duality,
// HotSpot-style [18]) used to cross-validate the fast two-node model.
package thermal

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// HeatSinkLaw is the Table I thermal-resistance model
//
//	R_hs(v) = R0 + A / v^B   [K/W],  v in rpm,
//
// with Table I values R0 = 0.141, A = 132.5, B = 0.923. The resistance
// falls with air flow, steeply at low speed — the nonlinearity that
// motivates the adaptive PID controller.
type HeatSinkLaw struct {
	// The json tags mirror the field names: the law is hashed into
	// scenario store keys through sim.Config (repolint: hashedfield).
	R0 units.KPerW `json:"R0"` // resistance floor at infinite flow
	A  float64     `json:"A"`  // numerator of the speed-dependent term
	B  float64     `json:"B"`  // speed exponent
}

// TableIHeatSinkLaw returns the law with the paper's Table I constants.
func TableIHeatSinkLaw() HeatSinkLaw {
	return HeatSinkLaw{R0: 0.141, A: 132.5, B: 0.923}
}

// Resistance returns R_hs at fan speed v. Speeds below minSpeedFloor are
// clamped there: the law diverges as v -> 0 and a real chassis always has
// some passive convection.
func (l HeatSinkLaw) Resistance(v units.RPM) units.KPerW {
	if v < minSpeedFloor {
		v = minSpeedFloor
	}
	return l.R0 + units.KPerW(l.A/math.Pow(float64(v), l.B))
}

// minSpeedFloor bounds the resistance law away from its v -> 0 divergence.
const minSpeedFloor units.RPM = 100

// SpeedFor inverts the law: the fan speed at which the resistance equals r.
// It returns an error if r is at or below the R0 floor (unreachable) or if
// r exceeds the resistance at the minimum modeled speed.
func (l HeatSinkLaw) SpeedFor(r units.KPerW) (units.RPM, error) {
	if r <= l.R0 {
		return 0, fmt.Errorf("thermal: resistance %v at or below floor %v", r, l.R0)
	}
	v := math.Pow(l.A/float64(r-l.R0), 1/l.B)
	if v < float64(minSpeedFloor) {
		return 0, fmt.Errorf("thermal: resistance %v needs speed below floor %v", r, minSpeedFloor)
	}
	return units.RPM(v), nil
}

// Sensitivity returns dT_ss/dv at the given fan speed and heat load: the
// plant gain the adaptive PID controller linearizes piecewise. It is
// negative (more flow, cooler sink) and its magnitude shrinks rapidly with
// speed — about 8x smaller at 6000 rpm than at 2000 rpm with Table I
// constants.
func (l HeatSinkLaw) Sensitivity(v units.RPM, load units.Watt) float64 {
	if v < minSpeedFloor {
		v = minSpeedFloor
	}
	dRdv := -l.B * l.A / math.Pow(float64(v), l.B+1)
	return dRdv * float64(load)
}
