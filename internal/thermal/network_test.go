package thermal

import (
	"math"
	"testing"

	"repro/internal/units"
)

func buildTwoNode(t *testing.T) *Network {
	t.Helper()
	net, err := NewNetwork(2, 25)
	if err != nil {
		t.Fatal(err)
	}
	if err := net.SetCapacitance(0, 0.8333); err != nil { // die: tau 0.1 at R 0.12
		t.Fatal(err)
	}
	if err := net.SetCapacitance(1, 348); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(0, 1, 0.12); err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectAmbient(1, 0.2); err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNetworkValidation(t *testing.T) {
	if _, err := NewNetwork(0, 25); err == nil {
		t.Error("zero-node network accepted")
	}
	net, _ := NewNetwork(2, 25)
	if err := net.SetCapacitance(0, 0); err == nil {
		t.Error("zero capacitance accepted")
	}
	if err := net.Connect(0, 0, 1); err == nil {
		t.Error("self-coupling accepted")
	}
	if err := net.Connect(0, 1, 0); err == nil {
		t.Error("zero resistance accepted")
	}
	if err := net.ConnectAmbient(0, -1); err == nil {
		t.Error("negative ambient resistance accepted")
	}
	if err := net.Step(0); err == nil {
		t.Error("zero step accepted")
	}
}

func TestNetworkNames(t *testing.T) {
	net, _ := NewNetwork(2, 25)
	if net.Name(0) != "node0" {
		t.Errorf("default name = %q", net.Name(0))
	}
	net.SetName(0, "die")
	if net.Name(0) != "die" {
		t.Error("SetName did not take")
	}
	if net.Size() != 2 {
		t.Errorf("Size = %d", net.Size())
	}
}

func TestNetworkSteadyStateMatchesAnalytic(t *testing.T) {
	net := buildTwoNode(t)
	net.SetLoad(0, 100)
	ss, err := net.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	// All 100 W flows die -> sink -> ambient:
	// T_sink = 25 + 0.2*100 = 45, T_die = 45 + 0.12*100 = 57.
	if math.Abs(float64(ss[1])-45) > 1e-6 {
		t.Errorf("sink steady = %v, want 45", ss[1])
	}
	if math.Abs(float64(ss[0])-57) > 1e-6 {
		t.Errorf("die steady = %v, want 57", ss[0])
	}
}

func TestNetworkStepConvergesToSteadyState(t *testing.T) {
	net := buildTwoNode(t)
	net.SetLoad(0, 100)
	want, err := net.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1500; i++ { // ~20 tau_sink
		if err := net.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if d := math.Abs(float64(net.Temperature(i) - want[i])); d > 0.01 {
			t.Errorf("node %d = %v, want %v (diff %v)", i, net.Temperature(i), want[i], d)
		}
	}
}

func TestNetworkStepSubdividesStiffSystems(t *testing.T) {
	// A huge dt against the 0.1 s die time constant must not explode.
	net := buildTwoNode(t)
	net.SetLoad(0, 160)
	if err := net.Step(100); err != nil {
		t.Fatal(err)
	}
	if d := float64(net.Temperature(0)); math.IsNaN(d) || d < 25 || d > 120 {
		t.Errorf("stiff step produced %v", d)
	}
}

func TestNetworkEnergyConservationSingleNode(t *testing.T) {
	// Single node, known closed form: exact exponential approach.
	net, _ := NewNetwork(1, 20)
	if err := net.SetCapacitance(0, 50); err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectAmbient(0, 0.5); err != nil {
		t.Fatal(err)
	}
	net.SetLoad(0, 60)
	// tau = 25 s, T_ss = 20 + 30 = 50.
	if err := net.Step(25); err != nil {
		t.Fatal(err)
	}
	want := 50 + (20-50)*math.Exp(-1)
	if math.Abs(float64(net.Temperature(0))-want) > 0.01 {
		t.Errorf("after one tau: %v, want %v", net.Temperature(0), want)
	}
}

func TestNetworkIsolatedLoadedNodeFailsSteadyState(t *testing.T) {
	net, _ := NewNetwork(1, 25)
	net.SetLoad(0, 10)
	if _, err := net.SteadyState(); err == nil {
		t.Error("steady state of loaded isolated node accepted")
	}
}

func TestNetworkDisconnectedUnloadedNodeOK(t *testing.T) {
	net, _ := NewNetwork(2, 25)
	if err := net.ConnectAmbient(0, 1); err != nil {
		t.Fatal(err)
	}
	net.SetLoad(0, 10)
	ss, err := net.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(float64(ss[0])-35) > 1e-6 {
		t.Errorf("loaded node = %v, want 35", ss[0])
	}
	if ss[1] != 25 {
		t.Errorf("isolated node moved to %v", ss[1])
	}
	// Stepping a disconnected node holds its temperature.
	if err := net.Step(10); err != nil {
		t.Fatal(err)
	}
	if net.Temperature(1) != 25 {
		t.Errorf("disconnected node drifted to %v", net.Temperature(1))
	}
}

func TestNetworkMultiCoreLateralCoupling(t *testing.T) {
	// Four cores on a shared sink: unevenly loaded cores must order their
	// temperatures by load, and lateral spreading pulls them together.
	const ncore = 4
	net, err := NewNetwork(ncore+1, 25) // nodes 0..3 cores, 4 sink
	if err != nil {
		t.Fatal(err)
	}
	sink := ncore
	if err := net.SetCapacitance(sink, 348); err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectAmbient(sink, 0.2); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < ncore; c++ {
		if err := net.SetCapacitance(c, 0.8333); err != nil {
			t.Fatal(err)
		}
		if err := net.Connect(c, sink, 0.48); err != nil { // 4 cores in parallel ~ 0.12
			t.Fatal(err)
		}
	}
	// Ring lateral coupling.
	for c := 0; c < ncore; c++ {
		if err := net.Connect(c, (c+1)%ncore, 1.5); err != nil {
			t.Fatal(err)
		}
	}
	loads := []units.Watt{50, 30, 20, 10}
	for c, p := range loads {
		net.SetLoad(c, p)
	}
	ss, err := net.SteadyState()
	if err != nil {
		t.Fatal(err)
	}
	for c := 1; c < ncore; c++ {
		if ss[c] >= ss[c-1] {
			t.Errorf("core %d (%v) not cooler than core %d (%v)", c, ss[c], c-1, ss[c-1])
		}
	}
	// Total heat must flow through the sink: T_sink = 25 + 0.2*110 = 47.
	if math.Abs(float64(ss[sink])-47) > 1e-6 {
		t.Errorf("sink = %v, want 47", ss[sink])
	}
	// RK4 stepping should converge to the same fixed point.
	for i := 0; i < 2000; i++ {
		if err := net.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i <= ncore; i++ {
		if d := math.Abs(float64(net.Temperature(i) - ss[i])); d > 0.05 {
			t.Errorf("node %d stepped to %v, steady %v", i, net.Temperature(i), ss[i])
		}
	}
}

func TestNetworkSetters(t *testing.T) {
	net, _ := NewNetwork(1, 25)
	net.SetTemperature(0, 90)
	if net.Temperature(0) != 90 {
		t.Error("SetTemperature did not take")
	}
	net.SetAmbient(30)
	if net.Ambient() != 30 {
		t.Error("SetAmbient did not take")
	}
}

// TestNetworkCacheInvalidation: mutating topology, capacitance, or an
// ambient coupling after stepping must produce the same trajectory as a
// fresh network built in the final configuration — the compiled neighbor
// list and cached substep count may never serve stale values.
func TestNetworkCacheInvalidation(t *testing.T) {
	build := func() *Network {
		net, err := NewNetwork(3, 25)
		if err != nil {
			t.Fatal(err)
		}
		mustOK(t, net.SetCapacitance(0, 10))
		mustOK(t, net.SetCapacitance(1, 20))
		mustOK(t, net.SetCapacitance(2, 200))
		mustOK(t, net.Connect(0, 2, 0.5))
		mustOK(t, net.ConnectAmbient(2, 0.1))
		net.SetLoad(0, 50)
		return net
	}

	// Mutated path: step (compiling the caches), then rewire.
	net := build()
	for i := 0; i < 20; i++ {
		mustOK(t, net.Step(1))
	}
	mustOK(t, net.Connect(1, 2, 0.25))     // new edge after stepping
	mustOK(t, net.SetCapacitance(0, 2))    // much stiffer node
	mustOK(t, net.ConnectAmbient(2, 0.05)) // stronger ambient coupling

	// Fresh path: identical final configuration, state forced to match.
	fresh := build()
	mustOK(t, fresh.Connect(1, 2, 0.25))
	mustOK(t, fresh.SetCapacitance(0, 2))
	mustOK(t, fresh.ConnectAmbient(2, 0.05))
	for i := 0; i < 3; i++ {
		fresh.SetTemperature(i, net.Temperature(i))
	}

	for i := 0; i < 50; i++ {
		mustOK(t, net.Step(1))
		mustOK(t, fresh.Step(1))
	}
	for i := 0; i < 3; i++ {
		if got, want := float64(net.Temperature(i)), float64(fresh.Temperature(i)); got != want {
			t.Errorf("node %d: mutated-network temperature %v != fresh-network %v (stale cache?)", i, got, want)
		}
	}
}

func mustOK(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
