package thermal

import (
	"fmt"

	"repro/internal/units"
)

// BatchNetwork integrates B structurally identical RC networks in lockstep:
// one shared topology (capacitances, node-to-node conductances, ambient
// couplings) driving B independent state columns that differ only in node
// temperatures, injected loads and ambient temperature. Monte Carlo sweeps
// and fleet racks simulate many same-topology servers; stepping them as one
// batch turns N scattered integrations into contiguous streams.
//
// State is laid out structure-of-arrays, [node][server]: slot i*B+s holds
// node i of server s, so the RK4 inner loops walk the batch dimension with
// unit stride and the CSR neighbor gathers of all servers share one cache
// line per node row. The substep count is a function of the shared
// topology alone, so it is computed once for the whole batch and cached
// exactly like Network's.
//
// Every server column performs bit-for-bit the same floating-point
// operations, in the same order, as a standalone Network with the same
// topology, loads and ambient — the batch tests assert bit-identity, and
// Step is allocation-free after the first call.
type BatchNetwork struct {
	n int // nodes per network
	b int // batch size (servers)

	caps    []units.JPerK
	ambCond []float64   // conductance to ambient per node (1/R), 0 = none
	cond    [][]float64 // symmetric node-to-node conductances (source of truth)

	temps   []float64 // [node][server] SoA, len n*b
	loads   []float64 // [node][server] SoA, len n*b
	ambient []float64 // per server, len b

	// RK4 scratch, len n*b.
	k1, k2, k3, k4 []float64
	tmp            []float64
	x              []float64

	// Compiled hot-path state, rebuilt lazily (same discipline as Network).
	invCaps  []float64
	nbrStart []int
	nbrIdx   []int
	nbrG     []float64
	rowG     []float64
	tauMin   float64
	csrDirty bool
	tauDirty bool
}

// NewBatchNetwork creates a batch of b isolated n-node networks, every node
// of every server at the given ambient temperature with unit capacitance
// and no couplings.
func NewBatchNetwork(n, b int, ambient units.Celsius) (*BatchNetwork, error) {
	if n < 1 {
		return nil, fmt.Errorf("thermal: batch network size %d < 1", n)
	}
	if b < 1 {
		return nil, fmt.Errorf("thermal: batch of %d servers < 1", b)
	}
	bn := &BatchNetwork{
		n:        n,
		b:        b,
		caps:     make([]units.JPerK, n),
		ambCond:  make([]float64, n),
		cond:     make([][]float64, n),
		temps:    make([]float64, n*b),
		loads:    make([]float64, n*b),
		ambient:  make([]float64, b),
		k1:       make([]float64, n*b),
		k2:       make([]float64, n*b),
		k3:       make([]float64, n*b),
		k4:       make([]float64, n*b),
		tmp:      make([]float64, n*b),
		x:        make([]float64, n*b),
		invCaps:  make([]float64, n),
		nbrStart: make([]int, n+1),
		rowG:     make([]float64, n),
		csrDirty: true,
		tauDirty: true,
	}
	for i := 0; i < n; i++ {
		bn.caps[i] = 1
		bn.invCaps[i] = 1
		bn.cond[i] = make([]float64, n)
	}
	for s := range bn.ambient {
		bn.ambient[s] = float64(ambient)
	}
	for i := range bn.temps {
		bn.temps[i] = float64(ambient)
	}
	return bn, nil
}

// Size returns the number of nodes per network.
func (bn *BatchNetwork) Size() int { return bn.n }

// Batch returns the number of servers integrated in lockstep.
func (bn *BatchNetwork) Batch() int { return bn.b }

// SetCapacitance sets node i's thermal capacitance for every server.
func (bn *BatchNetwork) SetCapacitance(i int, c units.JPerK) error {
	if c <= 0 {
		return fmt.Errorf("thermal: non-positive capacitance %v for node %d", c, i)
	}
	bn.caps[i] = c
	bn.invCaps[i] = 1 / float64(c)
	bn.tauDirty = true
	return nil
}

// Connect couples nodes i and j with thermal resistance r in every server.
func (bn *BatchNetwork) Connect(i, j int, r units.KPerW) error {
	if i == j {
		return fmt.Errorf("thermal: self-coupling of node %d", i)
	}
	if r <= 0 {
		return fmt.Errorf("thermal: non-positive resistance %v between %d and %d", r, i, j)
	}
	g := 1 / float64(r)
	bn.cond[i][j] = g
	bn.cond[j][i] = g
	bn.csrDirty = true
	bn.tauDirty = true
	return nil
}

// ConnectAmbient couples node i to ambient with resistance r in every
// server. Like Network, a repeated call with an unchanged resistance only
// refreshes the (cheap) time-constant cache when the value actually moves.
func (bn *BatchNetwork) ConnectAmbient(i int, r units.KPerW) error {
	if r <= 0 {
		return fmt.Errorf("thermal: non-positive ambient resistance %v for node %d", r, i)
	}
	g := 1 / float64(r)
	if g != bn.ambCond[i] {
		bn.ambCond[i] = g
		bn.tauDirty = true
	}
	return nil
}

// SetLoad sets the heat injected into node i of server s.
func (bn *BatchNetwork) SetLoad(i, s int, p units.Watt) { bn.loads[i*bn.b+s] = float64(p) }

// Temperature returns the temperature of node i of server s.
func (bn *BatchNetwork) Temperature(i, s int) units.Celsius {
	return units.Celsius(bn.temps[i*bn.b+s])
}

// SetTemperature forces the temperature of node i of server s.
func (bn *BatchNetwork) SetTemperature(i, s int, t units.Celsius) {
	bn.temps[i*bn.b+s] = float64(t)
}

// Ambient returns server s's ambient temperature.
func (bn *BatchNetwork) Ambient(s int) units.Celsius { return units.Celsius(bn.ambient[s]) }

// SetAmbient changes server s's ambient temperature (fleet inlet fields
// give every server its own).
func (bn *BatchNetwork) SetAmbient(s int, t units.Celsius) { bn.ambient[s] = float64(t) }

// compile rebuilds the CSR neighbor list and per-row conductance sums from
// the dense coupling matrix, exactly as Network does.
func (bn *BatchNetwork) compile() {
	edges := 0
	for i := 0; i < bn.n; i++ {
		for j := 0; j < bn.n; j++ {
			if bn.cond[i][j] != 0 {
				edges++
			}
		}
	}
	if cap(bn.nbrIdx) < edges {
		bn.nbrIdx = make([]int, edges)
		bn.nbrG = make([]float64, edges)
	}
	bn.nbrIdx = bn.nbrIdx[:edges]
	bn.nbrG = bn.nbrG[:edges]
	k := 0
	for i := 0; i < bn.n; i++ {
		bn.nbrStart[i] = k
		sum := 0.0
		for j := 0; j < bn.n; j++ {
			if g := bn.cond[i][j]; g != 0 {
				bn.nbrIdx[k] = j
				bn.nbrG[k] = g
				sum += g
				k++
			}
		}
		bn.rowG[i] = sum
	}
	bn.nbrStart[bn.n] = k
	bn.csrDirty = false
}

// refreshTau recomputes the cached smallest time constant — shared by the
// whole batch, since the topology is.
func (bn *BatchNetwork) refreshTau() {
	minTau := 1e18
	for i := 0; i < bn.n; i++ {
		g := bn.rowG[i] + bn.ambCond[i]
		if g == 0 {
			continue
		}
		tau := float64(bn.caps[i]) / g
		if tau < minTau {
			minTau = tau
		}
	}
	if minTau == 1e18 {
		minTau = 1
	}
	bn.tauMin = minTau
	bn.tauDirty = false
}

// derivatives fills out with dT/dt for the batched state in temps. The
// inner loops stream the batch dimension contiguously; each server column
// accumulates terms in the same order as Network.derivatives.
func (bn *BatchNetwork) derivatives(temps, out []float64) {
	b := bn.b
	for i := 0; i < bn.n; i++ {
		row := temps[i*b : i*b+b]
		orow := out[i*b : i*b+b]
		lrow := bn.loads[i*b : i*b+b]
		copy(orow, lrow)
		for k := bn.nbrStart[i]; k < bn.nbrStart[i+1]; k++ {
			nrow := temps[bn.nbrIdx[k]*b : bn.nbrIdx[k]*b+b]
			g := bn.nbrG[k]
			for s := 0; s < b; s++ {
				orow[s] += (nrow[s] - row[s]) * g
			}
		}
		if g := bn.ambCond[i]; g != 0 {
			for s := 0; s < b; s++ {
				orow[s] += (bn.ambient[s] - row[s]) * g
			}
		}
		ic := bn.invCaps[i]
		for s := 0; s < b; s++ {
			orow[s] *= ic
		}
	}
}

// Step advances every server by dt using RK4 with the shared cached substep
// count. It is allocation-free after the first call and errors on
// non-positive dt.
func (bn *BatchNetwork) Step(dt units.Seconds) error {
	if dt <= 0 {
		return fmt.Errorf("thermal: non-positive step %v", dt)
	}
	if bn.csrDirty {
		bn.compile()
	}
	if bn.tauDirty {
		bn.refreshTau()
	}
	sub := 1
	if h := float64(dt); h > bn.tauMin/4 {
		sub = int(h/(bn.tauMin/4)) + 1
	}
	h := float64(dt) / float64(sub)
	x := bn.x
	copy(x, bn.temps)
	tmp := bn.tmp
	for s := 0; s < sub; s++ {
		bn.derivatives(x, bn.k1)
		for i := range tmp {
			tmp[i] = x[i] + h/2*bn.k1[i]
		}
		bn.derivatives(tmp, bn.k2)
		for i := range tmp {
			tmp[i] = x[i] + h/2*bn.k2[i]
		}
		bn.derivatives(tmp, bn.k3)
		for i := range tmp {
			tmp[i] = x[i] + h*bn.k3[i]
		}
		bn.derivatives(tmp, bn.k4)
		for i := range x {
			x[i] += h / 6 * (bn.k1[i] + 2*bn.k2[i] + 2*bn.k3[i] + bn.k4[i])
		}
	}
	copy(bn.temps, x)
	return nil
}
