package thermal

import (
	"fmt"

	"repro/internal/units"
)

// ServerParams parameterizes the two-node (die + heat sink) server thermal
// model. Zero values are invalid; use Validate before simulating.
type ServerParams struct {
	Law     HeatSinkLaw   // fan-speed-dependent sink resistance (Table I)
	SinkCap units.JPerK   // C_hs, derived from the 60 s max-flow time constant
	DieRes  units.KPerW   // R_die, junction-to-sink resistance
	DieCap  units.JPerK   // C_die, from the 0.1 s die time constant
	Ambient units.Celsius // inlet air temperature
}

// Validate reports the first invalid parameter, or nil.
func (p ServerParams) Validate() error {
	if p.Law.A <= 0 || p.Law.B <= 0 || p.Law.R0 < 0 {
		return fmt.Errorf("thermal: bad heat sink law %+v", p.Law)
	}
	if p.SinkCap <= 0 {
		return fmt.Errorf("thermal: non-positive sink capacitance %v", p.SinkCap)
	}
	if p.DieRes <= 0 {
		return fmt.Errorf("thermal: non-positive die resistance %v", p.DieRes)
	}
	if p.DieCap <= 0 {
		return fmt.Errorf("thermal: non-positive die capacitance %v", p.DieCap)
	}
	if p.Ambient < -60 || p.Ambient > 100 {
		return fmt.Errorf("thermal: implausible ambient %v", p.Ambient)
	}
	return nil
}

// Server is the two-node server thermal model of Sec. III-B. It exploits
// the time-constant separation the paper relies on: the sink (tau >= 60 s)
// integrates against ambient while the die (tau = 0.1 s) relaxes toward
// the sink so fast that within one simulator step it is effectively in
// quasi-steady state riding on the slowly moving sink temperature.
type Server struct {
	params ServerParams
	sink   *Node
	die    *Node

	// rhs memoizes Law.Resistance(v) for the last fan speed: the law's
	// math.Pow dominates the closed-loop tick profile, and the fan holds
	// its speed for the vast majority of ticks (decisions every 30 s,
	// slew-limited moves lasting a few seconds). A hit is bit-identical
	// to recomputing.
	rhsV   units.RPM
	rhs    units.KPerW
	rhsSet bool
}

// NewServer returns a server model with both nodes at ambient.
func NewServer(params ServerParams) (*Server, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	return &Server{
		params: params,
		sink:   NewNode(params.Ambient),
		die:    NewNode(params.Ambient),
	}, nil
}

// Params returns the model parameters.
func (s *Server) Params() ServerParams { return s.params }

// Sink returns the current heat-sink temperature T_hs.
func (s *Server) Sink() units.Celsius { return s.sink.Temperature() }

// Junction returns the current die junction temperature T_j.
func (s *Server) Junction() units.Celsius { return s.die.Temperature() }

// Ambient returns the configured ambient temperature.
func (s *Server) Ambient() units.Celsius { return s.params.Ambient }

// SetAmbient changes the inlet temperature (datacenter scenarios vary it).
func (s *Server) SetAmbient(t units.Celsius) { s.params.Ambient = t }

// Step advances the model by dt under CPU heat load p and fan speed v.
// The sink integrates Eq. 2 with R_hs(v); the die then integrates against
// the updated sink temperature. It returns the new junction temperature.
func (s *Server) Step(p units.Watt, v units.RPM, dt units.Seconds) units.Celsius {
	if !s.rhsSet || v != s.rhsV {
		s.rhsV, s.rhs = v, s.params.Law.Resistance(v)
		s.rhsSet = true
	}
	rhs := s.rhs
	s.sink.Step(s.params.Ambient, rhs, s.params.SinkCap, p, dt)
	s.die.Step(s.sink.Temperature(), s.params.DieRes, s.params.DieCap, p, dt)
	return s.die.Temperature()
}

// SteadyJunction returns the junction temperature the model converges to
// if load p and fan speed v are held forever:
// T_amb + (R_hs(v) + R_die) * P.
func (s *Server) SteadyJunction(p units.Watt, v units.RPM) units.Celsius {
	rhs := s.params.Law.Resistance(v)
	return SteadyState(SteadyState(s.params.Ambient, rhs, p), s.params.DieRes, p)
}

// SpeedForJunction returns the lowest fan speed keeping the steady-state
// junction temperature at or below target under load p, or an error when
// even infinite flow cannot (target below ambient + (R0+R_die)*P). The
// single-step fan scaler uses it to pick the descent endpoint.
func (s *Server) SpeedForJunction(target units.Celsius, p units.Watt) (units.RPM, error) {
	if p <= 0 {
		return 0, fmt.Errorf("thermal: non-positive load %v", p)
	}
	// target = amb + (Rhs + Rdie)*P  =>  Rhs = (target-amb)/P - Rdie
	rhs := units.KPerW(float64(target-s.params.Ambient)/float64(p)) - s.params.DieRes
	if rhs <= s.params.Law.R0 {
		return 0, fmt.Errorf("thermal: target %v unreachable at load %v", target, p)
	}
	v, err := s.params.Law.SpeedFor(rhs)
	if err != nil {
		// Resistance above the law's value at the minimum modeled speed:
		// any speed suffices; report the floor.
		return minSpeedFloor, nil
	}
	return v, nil
}

// Reset returns both nodes to ambient.
func (s *Server) Reset() {
	s.sink.SetTemperature(s.params.Ambient)
	s.die.SetTemperature(s.params.Ambient)
}

// SetState forces the node temperatures (scenario warm starts).
func (s *Server) SetState(sink, junction units.Celsius) {
	s.sink.SetTemperature(sink)
	s.die.SetTemperature(junction)
}
