package thermal

import (
	"math"
	"testing"

	"repro/internal/units"
)

// testParams returns the DESIGN.md calibration of the Table I model.
func testParams(t *testing.T) ServerParams {
	t.Helper()
	law := TableIHeatSinkLaw()
	sinkCap, err := CapacitanceFor(60, law.Resistance(8500))
	if err != nil {
		t.Fatal(err)
	}
	dieCap, err := CapacitanceFor(0.1, 0.12)
	if err != nil {
		t.Fatal(err)
	}
	return ServerParams{
		Law:     law,
		SinkCap: sinkCap,
		DieRes:  0.12,
		DieCap:  dieCap,
		Ambient: 25,
	}
}

func TestServerValidation(t *testing.T) {
	good := testParams(t)
	if err := good.Validate(); err != nil {
		t.Fatalf("good params rejected: %v", err)
	}
	cases := []func(*ServerParams){
		func(p *ServerParams) { p.Law.A = 0 },
		func(p *ServerParams) { p.SinkCap = 0 },
		func(p *ServerParams) { p.DieRes = -1 },
		func(p *ServerParams) { p.DieCap = 0 },
		func(p *ServerParams) { p.Ambient = 150 },
		func(p *ServerParams) { p.Ambient = -100 },
	}
	for i, mutate := range cases {
		p := testParams(t)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
		if _, err := NewServer(p); err == nil {
			t.Errorf("case %d: NewServer accepted invalid params", i)
		}
	}
}

func TestServerStartsAtAmbient(t *testing.T) {
	s, err := NewServer(testParams(t))
	if err != nil {
		t.Fatal(err)
	}
	if s.Sink() != 25 || s.Junction() != 25 {
		t.Errorf("initial temps = %v, %v, want ambient", s.Sink(), s.Junction())
	}
}

func TestServerConvergesToSteadyJunction(t *testing.T) {
	s, _ := NewServer(testParams(t))
	p := units.Watt(140.8) // u = 0.7
	v := units.RPM(2000)
	for i := 0; i < 3000; i++ { // 3000 s >> 10 * tau_hs(2000rpm) ~ 900 s
		s.Step(p, v, 1)
	}
	want := s.SteadyJunction(p, v)
	if math.Abs(float64(s.Junction()-want)) > 0.01 {
		t.Errorf("junction = %v, want steady %v", s.Junction(), want)
	}
	// DESIGN.md calibration: ~78.5 C at 2000 rpm / u = 0.7.
	if float64(want) < 76 || float64(want) > 81 {
		t.Errorf("steady junction at 2000rpm/0.7 = %v, want ~78.5", want)
	}
}

func TestServerFanAuthority(t *testing.T) {
	// Higher fan speed must strictly lower the steady junction temperature.
	s, _ := NewServer(testParams(t))
	p := units.Watt(140.8)
	prev := s.SteadyJunction(p, 1000)
	for _, v := range []units.RPM{2000, 3000, 4000, 6000, 8500} {
		cur := s.SteadyJunction(p, v)
		if cur >= prev {
			t.Errorf("SteadyJunction(%v) = %v, not below %v", v, cur, prev)
		}
		prev = cur
	}
	// Calibration anchors from DESIGN.md.
	if tj := s.SteadyJunction(p, 6000); math.Abs(float64(tj)-67.8) > 1.5 {
		t.Errorf("T_j(6000rpm, 0.7) = %v, want ~67.8", tj)
	}
}

func TestServerDieFasterThanSink(t *testing.T) {
	// After a load step the junction must lead the sink: the die time
	// constant (0.1 s) is far below the sink's (>= 60 s).
	s, _ := NewServer(testParams(t))
	s.Step(160, 4000, 1)
	dieRise := float64(s.Junction() - 25)
	sinkRise := float64(s.Sink() - 25)
	if dieRise <= sinkRise {
		t.Errorf("die rise %v not above sink rise %v after 1 s", dieRise, sinkRise)
	}
	// One second in, the die should already carry most of its R_die * P
	// offset over the sink.
	wantOffset := 0.12 * 160
	gotOffset := float64(s.Junction() - s.Sink())
	if math.Abs(gotOffset-wantOffset) > 1 {
		t.Errorf("die-sink offset = %v, want ~%v", gotOffset, wantOffset)
	}
}

func TestSpeedForJunction(t *testing.T) {
	s, _ := NewServer(testParams(t))
	p := units.Watt(140.8)
	v, err := s.SpeedForJunction(75, p)
	if err != nil {
		t.Fatal(err)
	}
	// The returned speed must hold the target within a small margin.
	got := s.SteadyJunction(p, v)
	if math.Abs(float64(got)-75) > 0.1 {
		t.Errorf("SteadyJunction(SpeedForJunction(75)) = %v", got)
	}
	// Lower speeds must violate the target.
	if s.SteadyJunction(p, v-200) <= 75 {
		t.Error("SpeedForJunction did not return the lowest feasible speed")
	}
}

func TestSpeedForJunctionUnreachable(t *testing.T) {
	s, _ := NewServer(testParams(t))
	// Even infinite airflow cannot reach ambient+1 at 140 W.
	if _, err := s.SpeedForJunction(26, 140.8); err == nil {
		t.Error("unreachable target accepted")
	}
	if _, err := s.SpeedForJunction(75, 0); err == nil {
		t.Error("non-positive load accepted")
	}
}

func TestSpeedForJunctionEasyTargetFloors(t *testing.T) {
	s, _ := NewServer(testParams(t))
	// A very generous target at tiny load is satisfiable at the minimum
	// modeled speed.
	v, err := s.SpeedForJunction(95, 20)
	if err != nil {
		t.Fatal(err)
	}
	if v != 100 {
		t.Errorf("easy target speed = %v, want floor 100", v)
	}
}

func TestServerResetAndSetState(t *testing.T) {
	s, _ := NewServer(testParams(t))
	s.Step(160, 1000, 500)
	s.Reset()
	if s.Sink() != 25 || s.Junction() != 25 {
		t.Error("Reset did not return to ambient")
	}
	s.SetState(60, 75)
	if s.Sink() != 60 || s.Junction() != 75 {
		t.Error("SetState did not take")
	}
}

func TestServerSetAmbient(t *testing.T) {
	s, _ := NewServer(testParams(t))
	s.SetAmbient(35)
	if s.Ambient() != 35 {
		t.Fatal("SetAmbient did not take")
	}
	// Steady junction shifts by exactly the ambient delta.
	a := s.SteadyJunction(100, 4000)
	s.SetAmbient(25)
	b := s.SteadyJunction(100, 4000)
	if math.Abs(float64(a-b)-10) > 1e-9 {
		t.Errorf("ambient shift = %v, want 10", a-b)
	}
}

func TestServerMatchesGeneralNetwork(t *testing.T) {
	// Cross-validation: the fast two-node quasi-static model must track
	// the general RK4 network within a tight tolerance over a transient.
	params := testParams(t)
	s, _ := NewServer(params)

	net, err := NewNetwork(2, params.Ambient)
	if err != nil {
		t.Fatal(err)
	}
	const die, sink = 0, 1
	if err := net.SetCapacitance(die, params.DieCap); err != nil {
		t.Fatal(err)
	}
	if err := net.SetCapacitance(sink, params.SinkCap); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(die, sink, params.DieRes); err != nil {
		t.Fatal(err)
	}

	v := units.RPM(3000)
	rhs := params.Law.Resistance(v)
	if err := net.ConnectAmbient(sink, rhs); err != nil {
		t.Fatal(err)
	}
	p := units.Watt(140.8)
	net.SetLoad(die, p)

	// The two-node Server feeds P through the sink equation directly
	// (quasi-static die), while the network routes the same P through the
	// die node; both have identical steady states.
	for i := 0; i < 1200; i++ {
		s.Step(p, v, 1)
		if err := net.Step(1); err != nil {
			t.Fatal(err)
		}
	}
	diff := math.Abs(float64(s.Junction() - net.Temperature(die)))
	if diff > 0.6 {
		t.Errorf("two-node model diverges from network by %v C", diff)
	}
}
