package filter

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMovingAverageBasics(t *testing.T) {
	m := NewMovingAverage(3)
	steps := []struct{ in, want float64 }{
		{3, 3},   // [3]
		{6, 4.5}, // [3 6]
		{9, 6},   // [3 6 9]
		{12, 9},  // [6 9 12]
		{0, 7},   // [9 12 0]
		{0, 4},   // [12 0 0]
		{0, 0},   // [0 0 0]
	}
	for i, s := range steps {
		if got := m.Update(s.in); math.Abs(got-s.want) > 1e-12 {
			t.Errorf("step %d: Update(%v) = %v, want %v", i, s.in, got, s.want)
		}
	}
}

func TestMovingAverageFilled(t *testing.T) {
	m := NewMovingAverage(2)
	if m.Filled() {
		t.Error("fresh filter reports filled")
	}
	m.Update(1)
	if m.Filled() {
		t.Error("half-full filter reports filled")
	}
	m.Update(2)
	if !m.Filled() {
		t.Error("full filter reports unfilled")
	}
	if m.Len() != 2 {
		t.Errorf("Len = %d", m.Len())
	}
}

func TestMovingAverageReset(t *testing.T) {
	m := NewMovingAverage(4)
	for i := 0; i < 10; i++ {
		m.Update(float64(i))
	}
	m.Reset()
	if got := m.Update(42); got != 42 {
		t.Errorf("after reset first sample = %v, want 42", got)
	}
}

func TestMovingAveragePanicsOnBadWindow(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewMovingAverage(0) did not panic")
		}
	}()
	NewMovingAverage(0)
}

func TestMovingAverageBoundsProperty(t *testing.T) {
	// Output is always within [min, max] of the inputs seen in the window.
	f := func(raw []float64) bool {
		m := NewMovingAverage(5)
		var lastFive []float64
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			x = math.Mod(x, 1e9)
			lastFive = append(lastFive, x)
			if len(lastFive) > 5 {
				lastFive = lastFive[1:]
			}
			got := m.Update(x)
			lo, hi := lastFive[0], lastFive[0]
			for _, v := range lastFive {
				lo, hi = math.Min(lo, v), math.Max(hi, v)
			}
			if got < lo-1e-6 || got > hi+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.5)
	if got := e.Update(10); got != 10 {
		t.Errorf("first sample = %v, want 10 (seeded)", got)
	}
	if got := e.Update(0); got != 5 {
		t.Errorf("second = %v, want 5", got)
	}
	if got := e.Update(0); got != 2.5 {
		t.Errorf("third = %v, want 2.5", got)
	}
	e.Reset()
	if got := e.Update(7); got != 7 {
		t.Errorf("after reset = %v, want 7", got)
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e := NewEWMA(0.2)
	var got float64
	for i := 0; i < 200; i++ {
		got = e.Update(3.5)
	}
	if math.Abs(got-3.5) > 1e-9 {
		t.Errorf("EWMA of constant = %v, want 3.5", got)
	}
}

func TestEWMAPanicsOnBadAlpha(t *testing.T) {
	for _, a := range []float64{0, -0.1, 1.1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEWMA(%v) did not panic", a)
				}
			}()
			NewEWMA(a)
		}()
	}
}

func TestMedianOddWindow(t *testing.T) {
	m := NewMedian(3)
	steps := []struct{ in, want float64 }{
		{5, 5},
		{1, 3}, // [5 1] -> mean of two
		{9, 5}, // [5 1 9] -> 5
		{2, 2}, // [1 9 2] -> 2
		{2, 2}, // [9 2 2] -> 2
	}
	for i, s := range steps {
		if got := m.Update(s.in); got != s.want {
			t.Errorf("step %d: Update(%v) = %v, want %v", i, s.in, got, s.want)
		}
	}
}

func TestMedianSuppressesSpike(t *testing.T) {
	m := NewMedian(5)
	for i := 0; i < 5; i++ {
		m.Update(10)
	}
	if got := m.Update(1000); got != 10 {
		t.Errorf("median after single spike = %v, want 10", got)
	}
}

func TestMedianMatchesSortReference(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		m := NewMedian(7)
		var win []float64
		for _, x := range xs {
			win = append(win, x)
			if len(win) > 7 {
				win = win[1:]
			}
			got := m.Update(x)
			ref := append([]float64(nil), win...)
			sort.Float64s(ref)
			var want float64
			n := len(ref)
			if n%2 == 1 {
				want = ref[n/2]
			} else {
				want = (ref[n/2-1] + ref[n/2]) / 2
			}
			if math.Abs(got-want) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMedianReset(t *testing.T) {
	m := NewMedian(3)
	m.Update(1)
	m.Update(2)
	m.Reset()
	if got := m.Update(9); got != 9 {
		t.Errorf("after reset = %v, want 9", got)
	}
}

func TestRateLimiter(t *testing.T) {
	r := NewRateLimiter(10)
	if got := r.Update(100); got != 100 {
		t.Errorf("first sample = %v, want 100 (primed)", got)
	}
	if got := r.Update(200); got != 110 {
		t.Errorf("limited up-step = %v, want 110", got)
	}
	if got := r.Update(50); got != 100 {
		t.Errorf("limited down-step = %v, want 100", got)
	}
	if got := r.Update(103); got != 103 {
		t.Errorf("small step = %v, want 103", got)
	}
}

func TestRateLimiterConvergesEventually(t *testing.T) {
	r := NewRateLimiter(5)
	r.Update(0)
	var got float64
	for i := 0; i < 100; i++ {
		got = r.Update(42)
	}
	if got != 42 {
		t.Errorf("did not converge: %v", got)
	}
}

func TestRateLimiterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewRateLimiter(0) did not panic")
		}
	}()
	NewRateLimiter(0)
}

func TestRateLimiterStepBoundProperty(t *testing.T) {
	f := func(raw []float64) bool {
		r := NewRateLimiter(3)
		prev := math.NaN()
		for _, x := range raw {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			x = math.Mod(x, 1e6)
			got := r.Update(x)
			if !math.IsNaN(prev) && math.Abs(got-prev) > 3+1e-9 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChain(t *testing.T) {
	c := NewChain(NewEWMA(1), NewRateLimiter(5))
	// EWMA with alpha=1 is identity, so the chain acts as the rate limiter.
	c.Update(0)
	if got := c.Update(100); got != 5 {
		t.Errorf("chain = %v, want 5", got)
	}
	c.Reset()
	if got := c.Update(7); got != 7 {
		t.Errorf("after reset = %v, want 7", got)
	}
}

func TestEmptyChainIsIdentity(t *testing.T) {
	c := NewChain()
	if got := c.Update(3.14); got != 3.14 {
		t.Errorf("empty chain = %v", got)
	}
}

func TestMAPredictorTracksMean(t *testing.T) {
	p := NewMAPredictor(4)
	var got float64
	for i := 0; i < 20; i++ {
		got = p.Observe(0.7)
	}
	if math.Abs(got-0.7) > 1e-12 {
		t.Errorf("predictor = %v, want 0.7", got)
	}
}

func TestMAPredictorFiltersNoise(t *testing.T) {
	// Alternating +/-1 noise around 0.5 should predict close to 0.5.
	p := NewMAPredictor(10)
	var got float64
	for i := 0; i < 100; i++ {
		x := 0.5
		if i%2 == 0 {
			x += 0.1
		} else {
			x -= 0.1
		}
		got = p.Observe(x)
	}
	if math.Abs(got-0.5) > 0.02 {
		t.Errorf("noisy prediction = %v, want ~0.5", got)
	}
}

func TestLastValuePredictor(t *testing.T) {
	var p LastValuePredictor
	if got := p.Observe(0.42); got != 0.42 {
		t.Errorf("LastValuePredictor = %v", got)
	}
}
