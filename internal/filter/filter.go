// Package filter provides the streaming signal filters used by the
// predictive set-point scheduler (moving-average utilization prediction,
// Sec. V-B of the paper, following Coskun et al. [19]) and by the sensing
// pipeline (rate limiting, smoothing).
//
// Every filter implements Filter: a stateful sample-in/sample-out stage.
// Filters are deliberately simple and allocation-free per sample.
package filter

import "fmt"

// Filter is a streaming single-input single-output filter stage.
type Filter interface {
	// Update consumes one input sample and returns the filter output.
	Update(x float64) float64
	// Reset returns the filter to its initial state.
	Reset()
}

// MovingAverage is a fixed-window arithmetic-mean filter. Before the window
// fills it averages the samples seen so far.
type MovingAverage struct {
	window []float64
	next   int
	count  int
	sum    float64
}

// NewMovingAverage returns a moving-average filter over n samples.
// It panics if n < 1.
func NewMovingAverage(n int) *MovingAverage {
	if n < 1 {
		panic(fmt.Sprintf("filter: moving average window %d < 1", n))
	}
	return &MovingAverage{window: make([]float64, n)}
}

// Update implements Filter.
func (m *MovingAverage) Update(x float64) float64 {
	if m.count < len(m.window) {
		m.count++
	} else {
		m.sum -= m.window[m.next]
	}
	m.window[m.next] = x
	m.sum += x
	m.next = (m.next + 1) % len(m.window)
	return m.sum / float64(m.count)
}

// Reset implements Filter.
func (m *MovingAverage) Reset() {
	for i := range m.window {
		m.window[i] = 0
	}
	m.next, m.count, m.sum = 0, 0, 0
}

// Len returns the configured window length.
func (m *MovingAverage) Len() int { return len(m.window) }

// Filled reports whether the window has seen at least Len samples.
func (m *MovingAverage) Filled() bool { return m.count == len(m.window) }

// EWMA is an exponentially weighted moving average:
// y[k] = alpha*x[k] + (1-alpha)*y[k-1], seeded with the first sample.
type EWMA struct {
	alpha  float64
	value  float64
	primed bool
}

// NewEWMA returns an EWMA filter with smoothing factor alpha in (0, 1].
// It panics for alpha outside that interval.
func NewEWMA(alpha float64) *EWMA {
	if alpha <= 0 || alpha > 1 {
		panic(fmt.Sprintf("filter: EWMA alpha %v outside (0, 1]", alpha))
	}
	return &EWMA{alpha: alpha}
}

// Update implements Filter.
func (e *EWMA) Update(x float64) float64 {
	if !e.primed {
		e.value, e.primed = x, true
		return x
	}
	e.value = e.alpha*x + (1-e.alpha)*e.value
	return e.value
}

// Reset implements Filter.
func (e *EWMA) Reset() { e.value, e.primed = 0, false }

// Median is a fixed-window streaming median filter, robust against the
// single-sample spikes that Gaussian measurement noise produces.
type Median struct {
	window []float64
	sorted []float64
	next   int
	count  int
}

// NewMedian returns a median filter over n samples. It panics if n < 1.
func NewMedian(n int) *Median {
	if n < 1 {
		panic(fmt.Sprintf("filter: median window %d < 1", n))
	}
	return &Median{window: make([]float64, n), sorted: make([]float64, 0, n)}
}

// Update implements Filter.
func (m *Median) Update(x float64) float64 {
	if m.count < len(m.window) {
		m.count++
		m.sorted = insertSorted(m.sorted, x)
	} else {
		old := m.window[m.next]
		m.sorted = removeSorted(m.sorted, old)
		m.sorted = insertSorted(m.sorted, x)
	}
	m.window[m.next] = x
	m.next = (m.next + 1) % len(m.window)
	n := len(m.sorted)
	if n%2 == 1 {
		return m.sorted[n/2]
	}
	return (m.sorted[n/2-1] + m.sorted[n/2]) / 2
}

// Reset implements Filter.
func (m *Median) Reset() {
	m.next, m.count = 0, 0
	m.sorted = m.sorted[:0]
}

func insertSorted(s []float64, x float64) []float64 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s = append(s, 0)
	copy(s[lo+1:], s[lo:])
	s[lo] = x
	return s
}

func removeSorted(s []float64, x float64) []float64 {
	lo, hi := 0, len(s)
	for lo < hi {
		mid := (lo + hi) / 2
		if s[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	// lo is the first index >= x; it must equal x since x was inserted.
	copy(s[lo:], s[lo+1:])
	return s[:len(s)-1]
}

// RateLimiter bounds the per-sample change of a signal: the output moves
// toward the input by at most maxStep per Update. It models actuator slew
// (the fan cannot jump instantaneously between speeds).
type RateLimiter struct {
	maxStep float64
	value   float64
	primed  bool
}

// NewRateLimiter returns a rate limiter allowing at most maxStep change per
// sample. It panics if maxStep <= 0.
func NewRateLimiter(maxStep float64) *RateLimiter {
	if maxStep <= 0 {
		panic(fmt.Sprintf("filter: rate limit %v <= 0", maxStep))
	}
	return &RateLimiter{maxStep: maxStep}
}

// Update implements Filter.
func (r *RateLimiter) Update(x float64) float64 {
	if !r.primed {
		r.value, r.primed = x, true
		return x
	}
	d := x - r.value
	switch {
	case d > r.maxStep:
		r.value += r.maxStep
	case d < -r.maxStep:
		r.value -= r.maxStep
	default:
		r.value = x
	}
	return r.value
}

// Reset implements Filter.
func (r *RateLimiter) Reset() { r.value, r.primed = 0, false }

// Chain composes filters in sequence: the output of stage i feeds stage
// i+1. An empty chain is the identity.
type Chain struct {
	stages []Filter
}

// NewChain returns a Chain over the given stages.
func NewChain(stages ...Filter) *Chain { return &Chain{stages: stages} }

// Update implements Filter.
func (c *Chain) Update(x float64) float64 {
	for _, s := range c.stages {
		x = s.Update(x)
	}
	return x
}

// Reset implements Filter.
func (c *Chain) Reset() {
	for _, s := range c.stages {
		s.Reset()
	}
}

// Predictor forecasts the next sample of a signal. The set-point scheduler
// uses it for utilization prediction.
type Predictor interface {
	// Observe records one sample and returns the prediction for the next.
	Observe(x float64) float64
}

// MAPredictor predicts the next sample as the moving average of the last n
// samples — the predictor the paper adopts from [19] to filter out the
// noise term in CPU utilization.
type MAPredictor struct {
	ma *MovingAverage
}

// NewMAPredictor returns a moving-average predictor over n samples.
func NewMAPredictor(n int) *MAPredictor { return &MAPredictor{ma: NewMovingAverage(n)} }

// Observe implements Predictor.
func (p *MAPredictor) Observe(x float64) float64 { return p.ma.Update(x) }

// Reset clears the predictor's window in place — indistinguishable from a
// freshly constructed predictor, without the allocation (policy Reset sits
// on the warm batch re-step path).
func (p *MAPredictor) Reset() { p.ma.Reset() }

// LastValuePredictor predicts the next sample to equal the current one
// (the naive baseline the moving-average predictor is compared against).
type LastValuePredictor struct{}

// Observe implements Predictor.
func (LastValuePredictor) Observe(x float64) float64 { return x }
