package multicore

import (
	"math"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default invalid: %v", err)
	}
	cases := []func(*Config){
		func(c *Config) { c.NCore = 0 },
		func(c *Config) { c.CoreRes = 0 },
		func(c *Config) { c.LateralRes = -1 },
		func(c *Config) { c.Base.Tick = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := NewServer(cfg); err == nil {
			t.Errorf("case %d: NewServer accepted invalid config", i)
		}
	}
}

// TestBalancedMatchesSingleSocket: with even per-core load the N-core
// model must converge to the same junction temperature as the Table I
// two-node model — the paper's balanced-workload assumption is then
// exactly recovered.
func TestBalancedMatchesSingleSocket(t *testing.T) {
	cfg := DefaultConfig()
	server, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server.CommandFan(3000)
	var last TickResult
	for i := 0; i < 2500; i++ {
		var err error
		last, err = server.Tick(SplitEven(0.7, cfg.NCore))
		if err != nil {
			t.Fatal(err)
		}
	}
	single, err := sim.NewPhysicalServer(cfg.Base)
	if err != nil {
		t.Fatal(err)
	}
	want := single.Thermal().SteadyJunction(96+0.7*64, 3000)
	if math.Abs(float64(last.MaxJunc-want)) > 1.0 {
		t.Errorf("balanced 4-core junction %.2f vs single-socket %.2f", float64(last.MaxJunc), float64(want))
	}
	// All cores within a whisker of each other.
	for c, j := range last.Junctions {
		if math.Abs(float64(j-last.Junctions[0])) > 0.01 {
			t.Errorf("core %d at %v, core 0 at %v (should be symmetric)", c, j, last.Junctions[0])
		}
	}
}

// TestSkewedLoadCreatesHotspot: consolidating the load on one core must
// heat it well above its idle siblings.
func TestSkewedLoadCreatesHotspot(t *testing.T) {
	cfg := DefaultConfig()
	server, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	server.CommandFan(3000)
	util := make([]units.Utilization, cfg.NCore)
	util[0] = 1.0
	var last TickResult
	for i := 0; i < 2000; i++ {
		var err error
		last, err = server.Tick(util)
		if err != nil {
			t.Fatal(err)
		}
	}
	if spread := float64(last.Junctions[0] - last.Junctions[2]); spread < 3 {
		t.Errorf("hot-cold spread = %.2f °C, want a real hotspot", spread)
	}
	// Lateral coupling: the ring neighbours of core 0 run warmer than
	// the opposite core.
	if last.Junctions[1] <= last.Junctions[2] {
		t.Errorf("neighbour core1 %v not above far core2 %v (lateral spreading)", last.Junctions[1], last.Junctions[2])
	}
}

func TestTickValidatesArity(t *testing.T) {
	server, err := NewServer(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := server.Tick([]units.Utilization{0.5}); err == nil {
		t.Error("wrong-arity tick accepted")
	}
}

func TestServerReset(t *testing.T) {
	cfg := DefaultConfig()
	server, _ := NewServer(cfg)
	server.CommandFan(8000)
	for i := 0; i < 100; i++ {
		if _, err := server.Tick(SplitEven(0.9, cfg.NCore)); err != nil {
			t.Fatal(err)
		}
	}
	server.Reset()
	if server.FanActual() != cfg.Base.FanMinSpeed {
		t.Error("fan not reset")
	}
	if server.CoreJunction(0) != cfg.Base.Ambient {
		t.Error("cores not reset to ambient")
	}
}

func TestSchedulerValidation(t *testing.T) {
	if _, err := NewScheduler(0, 0.2, 5); err == nil {
		t.Error("zero spread accepted")
	}
	if _, err := NewScheduler(3, 0, 5); err == nil {
		t.Error("zero step accepted")
	}
	if _, err := NewScheduler(3, 1.5, 5); err == nil {
		t.Error("step > 1 accepted")
	}
	if _, err := NewScheduler(3, 0.2, 0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestSchedulerMigratesHotToCold(t *testing.T) {
	sc, err := NewScheduler(3, 0.25, 5)
	if err != nil {
		t.Fatal(err)
	}
	meas := []units.Celsius{85, 70, 72, 71}
	assign := []units.Utilization{1.0, 0.1, 0.2, 0.2}
	out := sc.Decide(0, meas, assign)
	if out[0] != 0.75 || out[1] != 0.35 {
		t.Errorf("migration = %v, want 0.25 moved from core0 to core1", out)
	}
	if sc.Migrations != 1 {
		t.Errorf("migrations = %d", sc.Migrations)
	}
	// The input must not be mutated.
	if assign[0] != 1.0 {
		t.Error("Decide mutated its input")
	}
}

func TestSchedulerRespectsIntervalAndThreshold(t *testing.T) {
	sc, _ := NewScheduler(3, 0.25, 5)
	meas := []units.Celsius{85, 70, 72, 71}
	assign := []units.Utilization{1.0, 0.1, 0.2, 0.2}
	sc.Decide(0, meas, assign) // fires
	out := sc.Decide(2, meas, assign)
	if out[0] != 1.0 {
		t.Error("migrated inside the decision interval")
	}
	// Below threshold: no migration even when due.
	flat := []units.Celsius{75, 74, 74, 73}
	out = sc.Decide(10, flat, assign)
	if out[0] != 1.0 || sc.Migrations != 1 {
		t.Error("migrated below the spread threshold")
	}
}

func TestSchedulerBoundsMoves(t *testing.T) {
	sc, _ := NewScheduler(3, 0.5, 5)
	// Hot core only has 0.1 to give.
	out := sc.Decide(0, []units.Celsius{90, 60}, []units.Utilization{0.1, 0.3})
	if out[0] != 0 || math.Abs(float64(out[1]-0.4)) > 1e-12 {
		t.Errorf("bounded move = %v", out)
	}
	// Cold core can only absorb 0.1.
	sc2, _ := NewScheduler(3, 0.5, 5)
	out = sc2.Decide(0, []units.Celsius{90, 60}, []units.Utilization{0.8, 0.9})
	if math.Abs(float64(out[0]-0.7)) > 1e-12 || out[1] != 1.0 {
		t.Errorf("absorb-bounded move = %v", out)
	}
	// Nothing to move: no migration counted.
	sc3, _ := NewScheduler(3, 0.5, 5)
	out = sc3.Decide(0, []units.Celsius{90, 60}, []units.Utilization{0, 1})
	if sc3.Migrations != 0 || out[0] != 0 {
		t.Errorf("degenerate move = %v (%d migrations)", out, sc3.Migrations)
	}
}

func TestSchedulerReset(t *testing.T) {
	sc, _ := NewScheduler(3, 0.25, 5)
	sc.Decide(0, []units.Celsius{85, 70}, []units.Utilization{1, 0})
	sc.Reset()
	if sc.Migrations != 0 {
		t.Error("reset incomplete")
	}
}

func TestSplits(t *testing.T) {
	even := SplitEven(0.6, 4)
	for _, u := range even {
		if u != 0.6 {
			t.Errorf("SplitEven = %v", even)
		}
	}
	skew := SplitSkewed(0.5, 4) // 2.0 core-units
	want := []units.Utilization{1, 1, 0, 0}
	for i := range want {
		if skew[i] != want[i] {
			t.Fatalf("SplitSkewed = %v, want %v", skew, want)
		}
	}
	frac := SplitSkewed(0.4, 4) // 1.6 core-units
	if frac[0] != 1 || math.Abs(float64(frac[1]-0.6)) > 1e-12 || frac[2] != 0 {
		t.Errorf("fractional skew = %v", frac)
	}
}

// TestThreeControllerCoordination is the extension's headline: with the
// fan controller, the CPU capper and the thermal-aware scheduler all
// active (the scenario the paper's introduction warns about), serialized
// performance-biased coordination slashes the deadline violations of the
// free-running configuration.
func TestThreeControllerCoordination(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Base.Ambient = 30
	noisy, err := workload.NewNoisy(workload.PaperSquare(600), 0.04, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func(coordinate bool) *RunResult {
		res, err := Run(RunConfig{
			Config:     cfg,
			Duration:   3600,
			Workload:   noisy,
			Skewed:     true,
			Coordinate: coordinate,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	free := run(false)
	coord := run(true)

	if free.ViolationFrac < 3*coord.ViolationFrac {
		t.Errorf("coordination did not pay: free %.2f%% vs coordinated %.2f%%",
			free.ViolationFrac*100, coord.ViolationFrac*100)
	}
	if coord.Migrations == 0 {
		t.Error("scheduler never migrated under coordination")
	}
	if free.FanEnergy >= coord.FanEnergy {
		t.Error("free-running should save fan energy by throttling (the single-socket story)")
	}
}

func TestRunValidation(t *testing.T) {
	cfg := DefaultConfig()
	if _, err := Run(RunConfig{Config: cfg, Duration: 10}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Run(RunConfig{Config: cfg, Duration: 0, Workload: workload.Constant{U: 0.5}}); err == nil {
		t.Error("zero duration accepted")
	}
}

func TestRunRecordsTraces(t *testing.T) {
	cfg := DefaultConfig()
	res, err := Run(RunConfig{
		Config:   cfg,
		Duration: 120,
		Workload: workload.Constant{U: 0.5},
		Record:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"fan_cmd", "max_junction", "core_spread"} {
		if s := res.Traces.Get(name); s == nil || s.Len() != 120 {
			t.Errorf("trace %q missing or wrong length", name)
		}
	}
}

// TestTickResultAliasesScratch pins the documented aliasing contract:
// the slices returned by consecutive Ticks share backing storage.
func TestTickResultAliasesScratch(t *testing.T) {
	cfg := DefaultConfig()
	server, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	util := SplitEven(0.5, cfg.NCore)
	a, err := server.Tick(util)
	if err != nil {
		t.Fatal(err)
	}
	b, err := server.Tick(util)
	if err != nil {
		t.Fatal(err)
	}
	if &a.Junctions[0] != &b.Junctions[0] || &a.Measured[0] != &b.Measured[0] {
		t.Error("TickResult slices not reused across ticks (scratch contract broken)")
	}
}

// TestDecideIntoMatchesDecide: the scratch-reusing scheduler entry point
// must be behaviorally identical to the allocating one.
func TestDecideIntoMatchesDecide(t *testing.T) {
	meas := []units.Celsius{85, 70, 72, 71}
	assign := []units.Utilization{1.0, 0.1, 0.2, 0.2}
	sc1, _ := NewScheduler(3, 0.25, 5)
	sc2, _ := NewScheduler(3, 0.25, 5)
	scratch := make([]units.Utilization, 0, len(assign))
	for _, tm := range []units.Seconds{0, 2, 5, 10} {
		want := sc1.Decide(tm, meas, assign)
		scratch = sc2.DecideInto(scratch, tm, meas, assign)
		for i := range want {
			if scratch[i] != want[i] {
				t.Fatalf("t=%v: DecideInto %v != Decide %v", tm, scratch, want)
			}
		}
	}
	if sc1.Migrations != sc2.Migrations {
		t.Errorf("migration counts diverged: %d vs %d", sc1.Migrations, sc2.Migrations)
	}
}
