package multicore

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// RunConfig describes a three-controller experiment: the fan controller,
// the CPU capper and the thermal-aware scheduler all manage the same
// N-core platform, either free-running (the paper's instability warning)
// or serialized through the performance-biased coordination of Sec. V.
type RunConfig struct {
	Config     Config
	Duration   units.Seconds
	Workload   workload.Generator // socket-level demand in [0, 1]
	RefTemp    units.Celsius      // fan set-point (default 75)
	Skewed     bool               // start from a consolidated assignment
	Coordinate bool               // serialize actions (one per epoch)
	Record     bool
}

// RunResult is the outcome of one three-controller run.
type RunResult struct {
	ViolationFrac float64
	Migrations    int
	FanEnergy     units.Joule
	MaxJunction   units.Celsius
	FanAmplitude  float64 // oscillation amplitude of the fan command, rpm
	CoreSpread    float64 // mean hot-cold true-temperature gap, °C
	Traces        *trace.Set
}

// Run executes the three-controller scenario.
func Run(rc RunConfig) (*RunResult, error) {
	if rc.Workload == nil {
		return nil, fmt.Errorf("multicore: nil workload")
	}
	if rc.Duration <= 0 {
		return nil, fmt.Errorf("multicore: non-positive duration %v", rc.Duration)
	}
	if rc.RefTemp == 0 {
		rc.RefTemp = 75
	}
	server, err := NewServer(rc.Config)
	if err != nil {
		return nil, err
	}
	base := rc.Config.Base

	adaptive, err := control.NewAdaptivePID(core.DefaultRegions(), rc.RefTemp,
		control.Limits{Min: base.FanMinSpeed, Max: base.FanMaxSpeed})
	if err != nil {
		return nil, err
	}
	adaptive.SetSlewFrac(0.6, 400)
	fan, err := control.NewQuantGuard(adaptive, 1)
	if err != nil {
		return nil, err
	}
	capper, err := control.NewCapper(rc.RefTemp+1.5, rc.RefTemp+4, 0.05, 0.5)
	if err != nil {
		return nil, err
	}
	sched, err := NewScheduler(3, 0.25, 5)
	if err != nil {
		return nil, err
	}

	n := rc.Config.NCore
	var assignShare []units.Utilization // per-core share of demand, sums to ~1*n scale
	if rc.Skewed {
		assignShare = SplitSkewed(0.5, n)
	} else {
		assignShare = SplitEven(0.5, n)
	}

	var ts *trace.Set
	var sFan, sMax, sSpread *trace.Series
	if rc.Record {
		ts = trace.NewSet()
		sFan = trace.NewSeries("fan_cmd")
		sMax = trace.NewSeries("max_junction")
		sSpread = trace.NewSeries("core_spread")
		ts.Add(sFan)
		ts.Add(sMax)
		ts.Add(sSpread)
	}

	cap := units.Utilization(1)
	fanCmd := base.FanMinSpeed
	lastFan := units.Seconds(0)
	fanEver := false
	standing := units.RPM(0) // last fan delta, for coordination priority
	lastAction := units.Seconds(-1000)
	const epoch = units.Seconds(5)

	var spreadSum float64
	violations, ticks := 0, 0
	var fanE units.Joule
	maxJ := units.Celsius(0)
	meas := make([]units.Celsius, n)
	for i := range meas {
		meas[i] = units.Celsius(base.Sensor.InitialValue)
	}

	// All per-tick state is allocated once here: the loop itself is
	// allocation-free (trace recording, when enabled, amortizes through
	// the series' append growth).
	nTicks := int(float64(rc.Duration) / float64(base.Tick))
	fanVals := make([]float64, 0, nTicks)
	coreUtil := make([]units.Utilization, n)
	proposal := make([]units.Utilization, 0, n) // scheduler scratch
	for k := 0; k < nTicks; k++ {
		t := units.Seconds(float64(k) * float64(base.Tick))
		demand := rc.Workload.At(t)

		// --- local controller proposals against the hottest reading ---
		maxMeas := meas[0]
		for _, m := range meas[1:] {
			if m > maxMeas {
				maxMeas = m
			}
		}
		capProposal := capper.Decide(control.CapInputs{T: t, Meas: maxMeas, Actual: cap})
		fanProposal := fanCmd
		fanDue := !fanEver || t-lastFan >= 30-1e-9
		if fanDue {
			fanProposal = fan.Decide(control.FanInputs{T: t, Meas: maxMeas, Actual: fanCmd})
			lastFan = t
			fanEver = true
		}
		proposal = sched.DecideInto(proposal, t, meas, assignShare)

		// --- apply: free-for-all vs serialized ---
		if !rc.Coordinate {
			if fanDue {
				fanCmd = fanProposal
			}
			cap = capProposal
			copy(assignShare, proposal)
		} else {
			// One action per epoch, performance-biased: a pending fan
			// move wins (and defines the standing intent); migrations
			// are performance-free and run next; cap cuts last, cap
			// releases free.
			switch {
			case fanDue && abs(float64(fanProposal-fanCmd)) > 25:
				standing = fanProposal - fanCmd
				fanCmd = fanProposal
				lastAction = t
			case capProposal > cap:
				cap = capProposal // restore performance freely
			case t-lastAction >= epoch-1e-9 && changed(proposal, assignShare):
				copy(assignShare, proposal)
				lastAction = t
			case t-lastAction >= epoch-1e-9 && capProposal < cap && standing <= 0:
				cap = capProposal
				lastAction = t
			}
		}

		// --- deliver and advance the plant ---
		delivered := demand
		if delivered > cap {
			delivered = cap
		}
		if delivered < demand-1e-9 {
			violations++
		}
		for c := range coreUtil {
			// assignShare is a distribution weight; scale so that the
			// balanced case matches the single-socket model: delivered
			// demand spread by weight, clamped per core.
			coreUtil[c] = units.ClampUtil(units.Utilization(float64(delivered) * float64(assignShare[c]) * 2))
		}
		server.CommandFan(fanCmd)
		res, err := server.Tick(coreUtil)
		if err != nil {
			return nil, err
		}
		copy(meas, res.Measured)
		fanE += units.Joule(float64(res.FanPower) * float64(base.Tick))
		if res.MaxJunc > maxJ {
			maxJ = res.MaxJunc
		}
		lo, hi := res.Junctions[0], res.Junctions[0]
		for _, j := range res.Junctions[1:] {
			if j < lo {
				lo = j
			}
			if j > hi {
				hi = j
			}
		}
		spreadSum += float64(hi - lo)
		fanVals = append(fanVals, float64(fanCmd))
		ticks++
		if rc.Record {
			tf := float64(t)
			sFan.MustAppend(tf, float64(fanCmd))
			sMax.MustAppend(tf, float64(res.MaxJunc))
			sSpread.MustAppend(tf, float64(hi-lo))
		}
	}

	out := &RunResult{
		Migrations:  sched.Migrations,
		FanEnergy:   fanE,
		MaxJunction: maxJ,
		Traces:      ts,
	}
	if ticks > 0 {
		out.ViolationFrac = float64(violations) / float64(ticks)
		out.CoreSpread = spreadSum / float64(ticks)
	}
	if len(fanVals) > 60 {
		out.FanAmplitude = stats.PeakAmplitude(stats.FindPeaks(fanVals[60:], 200))
	}
	return out, nil
}

func changed(a, b []units.Utilization) bool {
	for i := range a {
		if a[i] != b[i] {
			return true
		}
	}
	return false
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
