package multicore

import (
	"fmt"

	"repro/internal/units"
)

// Scheduler is the temperature-aware workload scheduler of the paper's
// introduction (its refs. [13], [14]): the OS-level local controller that
// migrates utilization from the hottest core toward the coolest one when
// their measured spread exceeds a threshold. It manipulates the workload
// *distribution*; the total demand is conserved.
type Scheduler struct {
	// SpreadThreshold is the measured hot-cold gap (°C) that triggers a
	// migration.
	SpreadThreshold units.Celsius
	// MigrationStep is the utilization fraction moved per decision.
	MigrationStep units.Utilization
	// Interval is the scheduler's decision period (OS-level, typically
	// a few seconds).
	Interval units.Seconds

	last    units.Seconds
	started bool
	// Migrations counts executed migrations (observability for tests).
	Migrations int
}

// NewScheduler validates and builds the scheduler.
func NewScheduler(spread units.Celsius, step units.Utilization, interval units.Seconds) (*Scheduler, error) {
	if spread <= 0 {
		return nil, fmt.Errorf("multicore: non-positive spread threshold %v", spread)
	}
	if step <= 0 || step > 1 {
		return nil, fmt.Errorf("multicore: migration step %v outside (0, 1]", step)
	}
	if interval <= 0 {
		return nil, fmt.Errorf("multicore: non-positive interval %v", interval)
	}
	return &Scheduler{SpreadThreshold: spread, MigrationStep: step, Interval: interval}, nil
}

// Decide returns the new per-core utilization assignment given the
// measured per-core temperatures and the current assignment. Outside its
// decision period, or when the spread is inside the threshold, it returns
// the assignment unchanged. The returned slice is always a fresh copy;
// the per-tick run loop uses DecideInto with a reused scratch slice
// instead.
func (sc *Scheduler) Decide(t units.Seconds, meas []units.Celsius, assign []units.Utilization) []units.Utilization {
	return sc.DecideInto(make([]units.Utilization, 0, len(assign)), t, meas, assign)
}

// DecideInto is Decide writing the new assignment into dst (grown as
// needed and returned re-sliced) so a caller invoking the scheduler every
// tick can reuse one scratch buffer instead of allocating per decision.
// dst must not alias assign.
func (sc *Scheduler) DecideInto(dst []units.Utilization, t units.Seconds, meas []units.Celsius, assign []units.Utilization) []units.Utilization {
	out := append(dst[:0], assign...)
	if len(meas) != len(assign) || len(out) < 2 {
		return out
	}
	if sc.started && t-sc.last < sc.Interval-1e-9 {
		return out
	}
	sc.last = t
	sc.started = true

	hot, cold := 0, 0
	for i := range meas {
		if meas[i] > meas[hot] {
			hot = i
		}
		if meas[i] < meas[cold] {
			cold = i
		}
	}
	if meas[hot]-meas[cold] < sc.SpreadThreshold {
		return out
	}
	// Move up to MigrationStep of utilization from hot to cold, bounded
	// by what the hot core has and what the cold core can absorb.
	move := sc.MigrationStep
	if out[hot] < move {
		move = out[hot]
	}
	if room := 1 - out[cold]; room < move {
		move = room
	}
	if move <= 0 {
		return out
	}
	out[hot] -= move
	out[cold] += move
	sc.Migrations++
	return out
}

// Reset clears scheduler state.
func (sc *Scheduler) Reset() {
	sc.last = 0
	sc.started = false
	sc.Migrations = 0
}

// SplitEven divides a socket-level utilization evenly over n cores.
func SplitEven(total units.Utilization, n int) []units.Utilization {
	out := make([]units.Utilization, n)
	per := units.ClampUtil(total)
	for i := range out {
		out[i] = per
	}
	return out
}

// SplitSkewed puts the whole demand on as few cores as possible (bin-
// packing consolidation, the energy-favoring assignment [13] starts
// from): total*n core-units filled core by core.
func SplitSkewed(total units.Utilization, n int) []units.Utilization {
	out := make([]units.Utilization, n)
	remaining := float64(units.ClampUtil(total)) * float64(n)
	for i := 0; i < n && remaining > 0; i++ {
		u := remaining
		if u > 1 {
			u = 1
		}
		out[i] = units.Utilization(u)
		remaining -= u
	}
	return out
}
