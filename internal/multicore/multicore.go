// Package multicore extends the paper's single-socket model to the
// N-core system its Sec. III-A describes ("a server consisting of N_core
// cores") without the balanced-workload simplification: each core has its
// own RC node on the shared heat sink (general network of [18]), its own
// 8-bit/10 s measurement chain, and its own utilization share. On top of
// it sits the *third* local controller of the paper's introduction — the
// temperature-aware workload scheduler of the OS ([13], [14]) — whose
// interaction with the fan controller and the CPU capper is exactly the
// "two or all three of these local controllers active simultaneously"
// scenario the paper warns about.
package multicore

import (
	"fmt"
	"math"

	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Config parameterizes the multi-core platform. It reuses the single-
// socket sim.Config for everything shared (fan, sink, sensing, power per
// socket) and adds the core-level structure.
type Config struct {
	Base sim.Config
	// NCore is the number of cores (paper: N_core).
	NCore int
	// CoreRes is the per-core junction-to-sink resistance. With N cores
	// in parallel the effective die resistance is CoreRes / NCore; the
	// default scales the single-socket DieRes so a balanced load matches
	// the two-node model.
	CoreRes units.KPerW
	// LateralRes couples ring neighbours (silicon spreading). Zero
	// disables lateral coupling.
	LateralRes units.KPerW
}

// DefaultConfig returns a four-core platform equivalent, under balanced
// load, to the Table I single-socket model.
func DefaultConfig() Config {
	base := sim.Default()
	return Config{
		Base:       base,
		NCore:      4,
		CoreRes:    base.DieRes * 4, // 4 in parallel = DieRes
		LateralRes: 1.5,
	}
}

// Validate reports the first invalid parameter, or nil.
func (c Config) Validate() error {
	if err := c.Base.Validate(); err != nil {
		return err
	}
	if c.NCore < 1 {
		return fmt.Errorf("multicore: %d cores", c.NCore)
	}
	if c.CoreRes <= 0 || !units.IsFinite(float64(c.CoreRes)) {
		return fmt.Errorf("multicore: bad core resistance %v", c.CoreRes)
	}
	if c.LateralRes < 0 || !units.IsFinite(float64(c.LateralRes)) {
		return fmt.Errorf("multicore: bad lateral resistance %v", c.LateralRes)
	}
	return nil
}

// Server is the N-core platform: a thermal network of NCore die nodes on
// one heat-sink node, per-core measurement pipelines, one shared fan.
type Server struct {
	cfg     Config
	net     *thermal.Network
	cpu     power.CPUModel
	fan     power.FanModel
	pipes   []*sensor.Pipeline
	sinkIdx int
	fanCmd  units.RPM
	fanAct  units.RPM
	clock   units.Seconds
	started bool
	// Per-server scratch backing TickResult.Junctions/Measured: the tick
	// loop runs once per simulated second for hours, so the result slices
	// are reused rather than reallocated (see Tick's aliasing contract).
	juncBuf []units.Celsius
	measBuf []units.Celsius
}

// NewServer builds the platform with all nodes at ambient and the fan at
// its floor.
func NewServer(cfg Config) (*Server, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.NCore
	net, err := thermal.NewNetwork(n+1, cfg.Base.Ambient)
	if err != nil {
		return nil, err
	}
	sinkIdx := n
	net.SetName(sinkIdx, "sink")
	sinkCap, err := thermal.CapacitanceFor(cfg.Base.SinkTau, cfg.Base.HeatSinkLaw.Resistance(cfg.Base.FanMaxSpeed))
	if err != nil {
		return nil, err
	}
	if err := net.SetCapacitance(sinkIdx, sinkCap); err != nil {
		return nil, err
	}
	// Sink-to-ambient resistance is fan-speed dependent; set per tick.
	if err := net.ConnectAmbient(sinkIdx, cfg.Base.HeatSinkLaw.Resistance(cfg.Base.FanMinSpeed)); err != nil {
		return nil, err
	}
	// Per-core nodes: the core time constant matches the single-socket
	// die (DieTau) at the per-core resistance.
	coreCap, err := thermal.CapacitanceFor(cfg.Base.DieTau, cfg.CoreRes)
	if err != nil {
		return nil, err
	}
	for c := 0; c < n; c++ {
		net.SetName(c, fmt.Sprintf("core%d", c))
		if err := net.SetCapacitance(c, coreCap); err != nil {
			return nil, err
		}
		if err := net.Connect(c, sinkIdx, cfg.CoreRes); err != nil {
			return nil, err
		}
	}
	if cfg.LateralRes > 0 && n > 2 {
		for c := 0; c < n; c++ {
			if err := net.Connect(c, (c+1)%n, cfg.LateralRes); err != nil {
				return nil, err
			}
		}
	}
	if cfg.LateralRes > 0 && n == 2 {
		if err := net.Connect(0, 1, cfg.LateralRes); err != nil {
			return nil, err
		}
	}

	cpu, fanModel, err := cfg.Base.Models()
	if err != nil {
		return nil, err
	}
	pipes := make([]*sensor.Pipeline, n)
	for c := 0; c < n; c++ {
		sc := cfg.Base.Sensor
		// Decorrelate per-core transducer noise through the mixing hash:
		// additive sub-seeds (seed + c) put sibling cores on consecutive
		// generator starting points, which correlate across a fleet whose
		// node seeds are themselves consecutive.
		sc.NoiseSeed = stats.SubSeed(sc.NoiseSeed, int64(c))
		p, err := sensor.New(sc)
		if err != nil {
			return nil, err
		}
		pipes[c] = p
	}
	return &Server{
		cfg:     cfg,
		net:     net,
		cpu:     cpu,
		fan:     fanModel,
		pipes:   pipes,
		sinkIdx: sinkIdx,
		fanCmd:  cfg.Base.FanMinSpeed,
		fanAct:  cfg.Base.FanMinSpeed,
		juncBuf: make([]units.Celsius, n),
		measBuf: make([]units.Celsius, n),
	}, nil
}

// NCore returns the number of cores.
func (s *Server) NCore() int { return s.cfg.NCore }

// CommandFan sets the shared fan command, clamped to the platform range.
func (s *Server) CommandFan(v units.RPM) {
	s.fanCmd = units.ClampRPM(v, s.cfg.Base.FanMinSpeed, s.cfg.Base.FanMaxSpeed)
}

// FanActual returns the slewed physical fan speed.
func (s *Server) FanActual() units.RPM { return s.fanAct }

// CoreJunction returns core c's true temperature.
func (s *Server) CoreJunction(c int) units.Celsius { return s.net.Temperature(c) }

// TickResult reports one multi-core engine step.
type TickResult struct {
	T units.Seconds
	// Junctions and Measured alias per-server scratch buffers: they are
	// valid until the server's next Tick and must be copied by callers
	// that retain samples across ticks. The aliasing keeps the tick loop
	// allocation-free (it runs once per simulated second for hours).
	Junctions []units.Celsius // true per-core temperatures
	Measured  []units.Celsius // DTM-visible per-core temperatures
	MaxJunc   units.Celsius
	MaxMeas   units.Celsius
	FanActual units.RPM
	CPUPower  units.Watt
	FanPower  units.Watt
}

// Tick advances the platform by one base tick under the given per-core
// delivered utilizations (len must equal NCore; each in [0, 1] as a
// fraction of the core's share of the socket's dynamic power). The
// returned Junctions/Measured slices are overwritten by the next Tick.
func (s *Server) Tick(coreUtil []units.Utilization) (TickResult, error) {
	if len(coreUtil) != s.cfg.NCore {
		return TickResult{}, fmt.Errorf("multicore: %d utilizations for %d cores", len(coreUtil), s.cfg.NCore)
	}
	dt := s.cfg.Base.Tick
	if s.started {
		s.clock += dt
	}
	s.started = true

	// Fan slew.
	maxStep := units.RPM(float64(s.cfg.Base.FanSlewPerSec) * float64(dt))
	switch d := s.fanCmd - s.fanAct; {
	case d > maxStep:
		s.fanAct += maxStep
	case d < -maxStep:
		s.fanAct -= maxStep
	default:
		s.fanAct = s.fanCmd
	}
	// Update the fan-speed-dependent sink resistance, then step.
	if err := s.net.ConnectAmbient(s.sinkIdx, s.cfg.Base.HeatSinkLaw.Resistance(s.fanAct)); err != nil {
		return TickResult{}, err
	}

	// Power split: the socket's static power spreads evenly; each core
	// adds its share of the dynamic power.
	n := float64(s.cfg.NCore)
	staticPer := s.cfg.Base.CPUIdlePower / units.Watt(n)
	dynSpan := (s.cfg.Base.CPUMaxPower - s.cfg.Base.CPUIdlePower) / units.Watt(n)
	var totalCPU units.Watt
	for c, u := range coreUtil {
		u = units.ClampUtil(u)
		p := staticPer + units.Watt(float64(dynSpan)*float64(u))
		s.net.SetLoad(c, p)
		totalCPU += p
	}
	if err := s.net.Step(dt); err != nil {
		return TickResult{}, err
	}

	res := TickResult{
		T:         s.clock,
		Junctions: s.juncBuf,
		Measured:  s.measBuf,
		FanActual: s.fanAct,
		CPUPower:  totalCPU,
		FanPower:  s.fan.Power(s.fanAct),
		MaxJunc:   units.Celsius(math.Inf(-1)),
		MaxMeas:   units.Celsius(math.Inf(-1)),
	}
	for c := 0; c < s.cfg.NCore; c++ {
		j := s.net.Temperature(c)
		m := units.Celsius(s.pipes[c].Sample(s.clock, float64(j)))
		res.Junctions[c] = j
		res.Measured[c] = m
		if j > res.MaxJunc {
			res.MaxJunc = j
		}
		if m > res.MaxMeas {
			res.MaxMeas = m
		}
	}
	return res, nil
}

// Reset returns the platform to ambient with the fan at its floor.
func (s *Server) Reset() {
	for i := 0; i <= s.cfg.NCore; i++ {
		s.net.SetTemperature(i, s.cfg.Base.Ambient)
	}
	for _, p := range s.pipes {
		p.Reset()
	}
	s.fanCmd = s.cfg.Base.FanMinSpeed
	s.fanAct = s.cfg.Base.FanMinSpeed
	s.clock = 0
	s.started = false
}
