package coord

import (
	"fmt"
	"math"
	"sort"
)

// This file extends the Table II selector from one server to a rack: the
// per-node action class still comes from Rule — the single-server matrix
// is the primitive, not duplicated logic — and a rack-level arbitration
// orders the nodes' power asks against a shared budget with the same
// performance bias the table encodes (fan-up responses first, then
// performance-restoring cap releases, savings last).

// RackProposal is one node's local (cap, fan) intent submitted to the
// rack arbitration: the directions its private DTM proposes, the power
// allocation its local constraints require at minimum (Floor — the power
// at its cap floor, which the coordinator must never take away), the
// allocation it asks for (Need), and a priority used to order nodes
// within an action class.
type RackProposal struct {
	// CapDir and FanDir are the node's local proposal directions, exactly
	// the inputs the single-server Rule takes.
	CapDir Direction
	FanDir Direction
	// Floor is the node's minimum power allocation in watts: the draw at
	// its local cap floor. Arbitration always grants at least Floor — the
	// local thermal/performance constraint outranks the global budget.
	Floor float64
	// Need is the node's requested allocation in watts. A Need below
	// Floor asks for nothing beyond the floor.
	Need float64
	// Urgency orders nodes within one action class (higher first); ties
	// break on node index, so the arbitration is deterministic.
	Urgency float64
}

// RackGrant is the arbitration's answer for one node.
type RackGrant struct {
	// Action is the node's Table II action class, Rule(CapDir, FanDir).
	Action Action
	// Alloc is the granted power allocation:
	// Floor <= Alloc <= max(Floor, Need).
	Alloc float64
}

// rackRank orders the Table II action classes for budget distribution,
// mirroring the matrix's performance bias: nodes whose fans are spinning
// up are thermal emergencies and must not be starved while the fan works
// (rank 0); cap raises restore performance (rank 1); everything else —
// holds and downs — is savings and waits (rank 2).
func rackRank(p RackProposal) int {
	switch {
	case Rule(p.CapDir, p.FanDir) == ApplyFan && p.FanDir == Up:
		return 0
	case Rule(p.CapDir, p.FanDir) == ApplyCap && p.CapDir == Up:
		return 1
	default:
		return 2
	}
}

// ArbitrateRack selects each node's Table II action class and splits the
// rack power budget across the nodes. Every node is granted its Floor
// first (local constraints always win); the surplus budget is then handed
// out in rank order — fan-up emergencies, cap-up performance recovery,
// savings — and by descending Urgency (index ascending on ties) within a
// rank, each node taking at most Need - Floor. The result is
// deterministic in the inputs.
//
// The budget must cover the floors: a budget below their sum is
// infeasible (some node would have to run past its local constraint) and
// is an error — callers clamp the budget up before arbitrating.
func ArbitrateRack(budget float64, nodes []RackProposal) ([]RackGrant, error) {
	sumFloor := 0.0
	for i, p := range nodes {
		if p.Floor < 0 || math.IsNaN(p.Floor) || math.IsInf(p.Floor, 0) {
			return nil, fmt.Errorf("coord: node %d floor %v", i, p.Floor)
		}
		if math.IsNaN(p.Need) || math.IsInf(p.Need, 0) {
			return nil, fmt.Errorf("coord: node %d need %v", i, p.Need)
		}
		if math.IsNaN(p.Urgency) {
			return nil, fmt.Errorf("coord: node %d urgency NaN", i)
		}
		sumFloor += p.Floor
	}
	if math.IsNaN(budget) || math.IsInf(budget, 0) {
		return nil, fmt.Errorf("coord: bad budget %v", budget)
	}
	if budget < sumFloor {
		return nil, fmt.Errorf("coord: budget %.6g W below the %.6g W the node floors require", budget, sumFloor)
	}

	grants := make([]RackGrant, len(nodes))
	order := make([]int, len(nodes))
	for i, p := range nodes {
		grants[i] = RackGrant{Action: Rule(p.CapDir, p.FanDir), Alloc: p.Floor}
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		ia, ib := order[a], order[b]
		ra, rb := rackRank(nodes[ia]), rackRank(nodes[ib])
		if ra != rb {
			return ra < rb
		}
		if nodes[ia].Urgency != nodes[ib].Urgency {
			return nodes[ia].Urgency > nodes[ib].Urgency
		}
		return ia < ib
	})
	surplus := budget - sumFloor
	for _, i := range order {
		if surplus <= 0 {
			break
		}
		ask := nodes[i].Need - nodes[i].Floor
		if ask <= 0 {
			continue
		}
		take := ask
		if take > surplus {
			take = surplus
		}
		grants[i].Alloc += take
		surplus -= take
	}
	return grants, nil
}
