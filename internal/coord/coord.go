// Package coord implements the global coordination layer of Sec. V: the
// rule-based action selector of Table II, the energy-greedy E-coord
// baseline the paper compares against ([6], JETC), the predictive
// set-point scheduler of Sec. V-B, and the single-step fan speed scaler
// of Sec. V-C.
//
// Everything here is pure decision logic over proposals; the core package
// assembles these pieces with the local controllers into runnable DTM
// policies.
package coord

import "fmt"

// Direction classifies a proposed change relative to the applied value.
type Direction int

// Direction values.
const (
	Down Direction = iota - 1
	Hold
	Up
)

// String implements fmt.Stringer.
func (d Direction) String() string {
	switch d {
	case Down:
		return "down"
	case Hold:
		return "hold"
	case Up:
		return "up"
	default:
		return fmt.Sprintf("Direction(%d)", int(d))
	}
}

// Classify returns the direction of proposed relative to current, with a
// tolerance band inside which the proposal counts as Hold.
func Classify(proposed, current, tol float64) Direction {
	switch d := proposed - current; {
	case d > tol:
		return Up
	case d < -tol:
		return Down
	default:
		return Hold
	}
}

// Action is the single control action the global coordinator selects per
// decision (Sec. V-A: "dynamically selects only one control action at a
// time affecting the system").
type Action int

// Action values.
const (
	// NoAction leaves both variables unchanged.
	NoAction Action = iota
	// ApplyFan applies the fan-speed proposal, holding the CPU cap.
	ApplyFan
	// ApplyCap applies the CPU-cap proposal, holding the fan speed.
	ApplyCap
)

// String implements fmt.Stringer.
func (a Action) String() string {
	switch a {
	case NoAction:
		return "none"
	case ApplyFan:
		return "fan"
	case ApplyCap:
		return "cap"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Rule implements Table II, the performance-biased rule matrix. Rows are
// the CPU-cap proposal direction, columns the fan proposal direction:
//
//	              s_fan ↓     s_fan =     s_fan ↑
//	u_cpu ↓       s_fan ↓     u_cpu ↓     s_fan ↑
//	u_cpu =       s_fan ↓     —           s_fan ↑
//	u_cpu ↑       u_cpu ↑     u_cpu ↑     s_fan ↑
//
// Fan-up always wins (a too-slow fan costs performance for a whole fan
// period); cap-up beats fan-down (raising the cap restores performance,
// and the fan can descend later); fan-down is taken only when the cap
// does not want to rise.
func Rule(capDir, fanDir Direction) Action {
	switch fanDir {
	case Up:
		return ApplyFan
	case Down:
		if capDir == Up {
			return ApplyCap
		}
		return ApplyFan
	default: // fan Hold
		if capDir == Hold {
			return NoAction
		}
		return ApplyCap
	}
}
