package coord

import (
	"testing"

	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/units"
)

func newTestECoord(t *testing.T) *ECoord {
	t.Helper()
	cpu, err := power.NewCPUModel(96, 160)
	if err != nil {
		t.Fatal(err)
	}
	fan, err := power.NewFanModel(29.4, 8500)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewECoord(79, 76, 500, 0.05, 0.1, thermal.TableIHeatSinkLaw(), cpu, fan)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestECoordValidation(t *testing.T) {
	cpu, _ := power.NewCPUModel(96, 160)
	fan, _ := power.NewFanModel(29.4, 8500)
	law := thermal.TableIHeatSinkLaw()
	cases := []struct {
		emergency, relax float64
		fanStep          float64
		capStep, minCap  float64
	}{
		{76, 79, 500, 0.05, 0.1},  // relax above emergency
		{79, 76, 0, 0.05, 0.1},    // zero fan step
		{79, 76, 500, 0, 0.1},     // zero cap step
		{79, 76, 500, 1.5, 0.1},   // cap step > 1
		{79, 76, 500, 0.05, 1.0},  // min cap = 1
		{79, 76, 500, 0.05, -0.1}, // negative min cap
	}
	for i, c := range cases {
		_, err := NewECoord(
			units.Celsius(c.emergency), units.Celsius(c.relax),
			units.RPM(c.fanStep), units.Utilization(c.capStep), units.Utilization(c.minCap),
			law, cpu, fan)
		if err == nil {
			t.Errorf("case %d: invalid E-coord accepted", i)
		}
	}
}

func TestECoordEmergencyPrefersCapping(t *testing.T) {
	e := newTestECoord(t)
	// Util above the would-be cap so the cut actually binds (sheds heat).
	d := e.Decide(EState{
		Measured: 81, Fan: 3000, FanMin: 1000, FanMax: 8500, Cap: 1.0, Util: 0.98,
	})
	if d.Action != ApplyCap {
		t.Fatalf("emergency action = %v, want cap (throttling saves energy)", d.Action)
	}
	if d.Cap >= 1.0 {
		t.Errorf("cap proposal = %v, want reduction", d.Cap)
	}
	if d.CapEff <= d.FanEff {
		t.Errorf("cap efficiency %v not above fan efficiency %v", d.CapEff, d.FanEff)
	}
}

func TestECoordEmergencyFanFallback(t *testing.T) {
	// Cap already at the floor and below the running load: capping is
	// infeasible, so the fan takes the action.
	e := newTestECoord(t)
	d := e.Decide(EState{
		Measured: 81, Fan: 3000, FanMin: 1000, FanMax: 8500, Cap: 0.1, Util: 0.1,
	})
	if d.Action != ApplyFan {
		t.Fatalf("floored-cap emergency action = %v, want fan", d.Action)
	}
	if d.Fan != 3500 {
		t.Errorf("fan proposal = %v, want 3500", d.Fan)
	}
}

func TestECoordEmergencyNothingLeft(t *testing.T) {
	// Cap floored and fan at max: no action remains.
	e := newTestECoord(t)
	d := e.Decide(EState{
		Measured: 81, Fan: 8500, FanMin: 1000, FanMax: 8500, Cap: 0.1, Util: 0.05,
	})
	if d.Action != NoAction {
		t.Errorf("exhausted emergency action = %v, want none", d.Action)
	}
}

func TestECoordColdSavesEnergyFanFirst(t *testing.T) {
	e := newTestECoord(t)
	// Cold with fan above floor: lower the fan (cubic savings) before
	// restoring the cap.
	d := e.Decide(EState{
		Measured: 70, Fan: 4000, FanMin: 1000, FanMax: 8500, Cap: 0.5, Util: 0.5,
	})
	if d.Action != ApplyFan || d.Fan != 3500 {
		t.Errorf("cold action = %+v, want fan down to 3500", d)
	}
	// Fan at floor: now release the cap.
	d = e.Decide(EState{
		Measured: 70, Fan: 1000, FanMin: 1000, FanMax: 8500, Cap: 0.5, Util: 0.5,
	})
	if d.Action != ApplyCap || d.Cap != 0.55 {
		t.Errorf("cold floored action = %+v, want cap release to 0.55", d)
	}
	// Fully recovered: nothing to do.
	d = e.Decide(EState{
		Measured: 70, Fan: 1000, FanMin: 1000, FanMax: 8500, Cap: 1.0, Util: 0.5,
	})
	if d.Action != NoAction {
		t.Errorf("recovered cold action = %v, want none", d.Action)
	}
}

func TestECoordComfortBandHolds(t *testing.T) {
	e := newTestECoord(t)
	d := e.Decide(EState{
		Measured: 77.5, Fan: 3000, FanMin: 1000, FanMax: 8500, Cap: 0.7, Util: 0.7,
	})
	if d.Action != NoAction {
		t.Errorf("in-band action = %v, want none", d.Action)
	}
}
