package coord

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/thermal"
	"repro/internal/units"
)

// ECoord is the energy-greedy coordination baseline modeled on [6] (JETC):
// when a thermal emergency occurs it compares the candidate control
// actions by their temperature-reduction-per-added-watt ratio and takes
// the most energy-efficient one; when the system is cold it takes the most
// energy-saving action. The paper's criticism — reproduced faithfully —
// is that this ignores performance: throttling the CPU both cools and
// *saves* energy, so its efficiency ratio is unbeatable and E-coord
// throttles where the rule-based scheme would spin the fan.
type ECoord struct {
	// Emergency and Relax bracket the comfort band: above Emergency an
	// action is taken to cool; below Relax an action is taken to save
	// energy or restore performance.
	Emergency units.Celsius
	Relax     units.Celsius
	// FanStep and CapStep are the candidate action magnitudes.
	FanStep units.RPM
	CapStep units.Utilization
	// MinCap bounds throttling depth.
	MinCap units.Utilization

	law thermal.HeatSinkLaw
	cpu power.CPUModel
	fan power.FanModel
}

// NewECoord validates and builds the baseline. The thermal and power
// models are the coordinator's own (E-coord is model-based, unlike the
// paper's proposal): it uses them to score candidate actions.
func NewECoord(emergency, relax units.Celsius, fanStep units.RPM, capStep, minCap units.Utilization,
	law thermal.HeatSinkLaw, cpu power.CPUModel, fan power.FanModel) (*ECoord, error) {
	if relax >= emergency {
		return nil, fmt.Errorf("coord: relax %v not below emergency %v", relax, emergency)
	}
	if fanStep <= 0 {
		return nil, fmt.Errorf("coord: non-positive fan step %v", fanStep)
	}
	if capStep <= 0 || capStep > 1 {
		return nil, fmt.Errorf("coord: cap step %v outside (0, 1]", capStep)
	}
	if minCap < 0 || minCap >= 1 {
		return nil, fmt.Errorf("coord: min cap %v outside [0, 1)", minCap)
	}
	return &ECoord{
		Emergency: emergency,
		Relax:     relax,
		FanStep:   fanStep,
		CapStep:   capStep,
		MinCap:    minCap,
		law:       law,
		cpu:       cpu,
		fan:       fan,
	}, nil
}

// EState is the platform state E-coord scores actions against.
type EState struct {
	Measured units.Celsius
	Fan      units.RPM
	FanMin   units.RPM
	FanMax   units.RPM
	Cap      units.Utilization
	Util     units.Utilization // delivered utilization (heat source)
}

// EDecision is the outcome of one E-coord evaluation.
type EDecision struct {
	Action Action
	Fan    units.RPM         // new fan command when Action == ApplyFan
	Cap    units.Utilization // new cap when Action == ApplyCap
	FanEff float64           // °C cooled per added watt for the fan step
	CapEff float64           // °C cooled per added watt for the cap step
}

// scoreFan estimates ΔT/ΔP for raising the fan by FanStep.
func (e *ECoord) scoreFan(st EState) (eff float64, newFan units.RPM, feasible bool) {
	newFan = units.ClampRPM(st.Fan+e.FanStep, st.FanMin, st.FanMax)
	if newFan <= st.Fan {
		return 0, st.Fan, false
	}
	p := e.cpu.Power(st.Util)
	dT := float64(e.law.Resistance(st.Fan)-e.law.Resistance(newFan)) * float64(p)
	dP := float64(e.fan.Power(newFan) - e.fan.Power(st.Fan))
	if dP <= 0 {
		return 0, st.Fan, false
	}
	return dT / dP, newFan, true
}

// scoreCap estimates ΔT/ΔP for lowering the cap by CapStep. The power
// delta is negative (throttling saves energy), which the greedy criterion
// treats as infinitely efficient — the degenerate preference the paper
// criticizes.
func (e *ECoord) scoreCap(st EState) (eff float64, newCap units.Utilization, feasible bool) {
	newCap = st.Cap - e.CapStep
	if newCap < e.MinCap {
		newCap = e.MinCap
	}
	if newCap >= st.Cap || st.Util <= newCap {
		// Capping below the running load is the only way to cool.
		if newCap >= st.Cap {
			return 0, st.Cap, false
		}
	}
	rTot := float64(e.law.Resistance(st.Fan)) + dieResistance
	dU := float64(st.Util) - float64(newCap)
	if dU <= 0 {
		return 0, st.Cap, false // cap not binding: no thermal effect
	}
	dT := rTot * float64(e.cpu.Dynamic) * dU
	// dP < 0: model as a very large positive efficiency.
	return dT * 1e9, newCap, true
}

// dieResistance mirrors the DESIGN.md calibration; E-coord only needs it
// for scoring, and a constant keeps the baseline self-contained.
const dieResistance = 0.12

// Decide evaluates the E-coord policy for the current state.
func (e *ECoord) Decide(st EState) EDecision {
	switch {
	case st.Measured > e.Emergency:
		fanEff, newFan, fanOK := e.scoreFan(st)
		capEff, newCap, capOK := e.scoreCap(st)
		d := EDecision{FanEff: fanEff, CapEff: capEff}
		switch {
		case capOK && (!fanOK || capEff >= fanEff):
			d.Action, d.Cap = ApplyCap, newCap
		case fanOK:
			d.Action, d.Fan = ApplyFan, newFan
		default:
			d.Action = NoAction
		}
		return d
	case st.Measured < e.Relax:
		// Cold: take the most energy-saving action. Lowering the fan
		// saves cubic power; raising the cap only costs energy, so the
		// fan descends first and the cap releases once the fan floor is
		// reached (performance recovery is E-coord's last priority).
		if st.Fan > st.FanMin {
			return EDecision{Action: ApplyFan, Fan: units.ClampRPM(st.Fan-e.FanStep, st.FanMin, st.FanMax)}
		}
		if st.Cap < 1 {
			cap := st.Cap + e.CapStep
			if cap > 1 {
				cap = 1
			}
			return EDecision{Action: ApplyCap, Cap: cap}
		}
		return EDecision{Action: NoAction}
	default:
		return EDecision{Action: NoAction}
	}
}
