package coord

import (
	"testing"
	"testing/quick"
)

func TestClassify(t *testing.T) {
	tests := []struct {
		proposed, current, tol float64
		want                   Direction
	}{
		{5, 3, 1, Up},
		{3, 5, 1, Down},
		{3.5, 3, 1, Hold},
		{3, 3, 0.001, Hold},
		{2.0, 3, 0.999, Down},
	}
	for _, tt := range tests {
		if got := Classify(tt.proposed, tt.current, tt.tol); got != tt.want {
			t.Errorf("Classify(%v, %v, %v) = %v, want %v", tt.proposed, tt.current, tt.tol, got, tt.want)
		}
	}
}

// TestRuleTableII exhaustively checks the nine cases of Table II.
func TestRuleTableII(t *testing.T) {
	tests := []struct {
		cap, fan Direction
		want     Action
	}{
		{Down, Down, ApplyFan}, // s_fan ↓
		{Down, Hold, ApplyCap}, // u_cpu ↓
		{Down, Up, ApplyFan},   // s_fan ↑
		{Hold, Down, ApplyFan}, // s_fan ↓
		{Hold, Hold, NoAction}, // —
		{Hold, Up, ApplyFan},   // s_fan ↑
		{Up, Down, ApplyCap},   // u_cpu ↑
		{Up, Hold, ApplyCap},   // u_cpu ↑
		{Up, Up, ApplyFan},     // s_fan ↑
	}
	for _, tt := range tests {
		if got := Rule(tt.cap, tt.fan); got != tt.want {
			t.Errorf("Rule(cap %v, fan %v) = %v, want %v", tt.cap, tt.fan, got, tt.want)
		}
	}
}

// TestRuleSingleActionProperty: the coordinator never selects more than
// one action, and selects none only when both proposals hold.
func TestRuleSingleActionProperty(t *testing.T) {
	f := func(c, fn int8) bool {
		capDir := Direction(((int(c)%3)+3)%3 - 1)
		fanDir := Direction(((int(fn)%3)+3)%3 - 1)
		a := Rule(capDir, fanDir)
		if capDir == Hold && fanDir == Hold {
			return a == NoAction
		}
		return a == ApplyFan || a == ApplyCap
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestRulePerformanceBias: fan-up always wins; cap-up beats fan-down.
func TestRulePerformanceBias(t *testing.T) {
	for _, capDir := range []Direction{Down, Hold, Up} {
		if got := Rule(capDir, Up); got != ApplyFan {
			t.Errorf("fan-up vs cap %v = %v, want fan", capDir, got)
		}
	}
	if got := Rule(Up, Down); got != ApplyCap {
		t.Errorf("cap-up vs fan-down = %v, want cap (restore performance first)", got)
	}
}

func TestStringers(t *testing.T) {
	if Up.String() != "up" || Down.String() != "down" || Hold.String() != "hold" {
		t.Error("Direction strings wrong")
	}
	if Direction(9).String() == "" {
		t.Error("unknown direction string empty")
	}
	if ApplyFan.String() != "fan" || ApplyCap.String() != "cap" || NoAction.String() != "none" {
		t.Error("Action strings wrong")
	}
	if Action(9).String() == "" {
		t.Error("unknown action string empty")
	}
}
