package coord

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestSetpointValidation(t *testing.T) {
	if _, err := NewSetpointScheduler(80, 70, 30); err == nil {
		t.Error("inverted band accepted")
	}
	if _, err := NewSetpointScheduler(70, 80, 0); err == nil {
		t.Error("zero window accepted")
	}
}

func TestSetpointLinearScaling(t *testing.T) {
	// Sec. V-B: T_ref scales linearly with predicted utilization over
	// the band. With a filled window of constant utilization the
	// prediction equals the input.
	s, err := NewSetpointScheduler(70, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	var got units.Celsius
	for i := 0; i < 20; i++ {
		got = s.Observe(0.5)
	}
	if math.Abs(float64(got-75)) > 1e-9 {
		t.Errorf("T_ref(0.5) = %v, want 75", got)
	}
	for i := 0; i < 20; i++ {
		got = s.Observe(0.0)
	}
	if got != 70 {
		t.Errorf("T_ref(0) = %v, want 70", got)
	}
	for i := 0; i < 20; i++ {
		got = s.Observe(1.0)
	}
	if got != 80 {
		t.Errorf("T_ref(1) = %v, want 80", got)
	}
}

func TestSetpointFiltersNoise(t *testing.T) {
	// A single spike in a long window barely moves the set-point — the
	// moving-average predictor exists to filter exactly this.
	s, _ := NewSetpointScheduler(70, 80, 30)
	for i := 0; i < 30; i++ {
		s.Observe(0.1)
	}
	before := s.Current()
	after := s.Observe(1.0)
	if float64(after-before) > 0.5 {
		t.Errorf("one spike moved T_ref by %v", after-before)
	}
}

func TestSetpointBoundsProperty(t *testing.T) {
	s, _ := NewSetpointScheduler(70, 80, 10)
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		got := s.Observe(units.Utilization(math.Mod(raw, 3)))
		return got >= 70 && got <= 80
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetpointReset(t *testing.T) {
	s, _ := NewSetpointScheduler(70, 80, 4)
	for i := 0; i < 10; i++ {
		s.Observe(0.9)
	}
	s.Reset()
	if s.Current() != 70 {
		t.Errorf("after reset Current = %v, want 70", s.Current())
	}
	if got := s.Observe(0.4); math.Abs(float64(got-74)) > 1e-9 {
		t.Errorf("first post-reset observation = %v, want 74 (fresh window)", got)
	}
}

func TestSingleStepValidation(t *testing.T) {
	if _, err := NewSingleStepScaler(0, 10, 1); err == nil {
		t.Error("zero threshold accepted")
	}
	if _, err := NewSingleStepScaler(1.5, 10, 1); err == nil {
		t.Error("threshold > 1 accepted")
	}
	if _, err := NewSingleStepScaler(0.3, 0, 1); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewSingleStepScaler(0.3, 10, -1); err == nil {
		t.Error("negative margin accepted")
	}
}

func TestSingleStepTriggersOnDegradation(t *testing.T) {
	s, err := NewSingleStepScaler(0.3, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Window must fill before the scaler may trigger.
	for i := 0; i < 9; i++ {
		if s.Observe(true, 85, 75) {
			t.Fatalf("boost before window filled (tick %d)", i)
		}
	}
	if !s.Observe(true, 85, 75) {
		t.Fatal("boost did not trigger with 100% degradation")
	}
	if !s.Boosted() || s.BoostCount() != 1 {
		t.Errorf("state = boosted %v count %d", s.Boosted(), s.BoostCount())
	}
}

func TestSingleStepReleaseConditions(t *testing.T) {
	s, _ := NewSingleStepScaler(0.3, 5, 1)
	for i := 0; i < 5; i++ {
		s.Observe(true, 85, 75)
	}
	if !s.Boosted() {
		t.Fatal("not boosted")
	}
	// Violations cleared but still warm: keep boosting.
	for i := 0; i < 5; i++ {
		s.Observe(false, 76, 75)
	}
	if !s.Boosted() {
		t.Error("released while above T_ref - margin")
	}
	// Cool AND clean: release.
	s.Observe(false, 73, 75)
	if s.Boosted() {
		t.Error("did not release when cool and violation-free")
	}
	// A fresh degradation burst re-triggers.
	for i := 0; i < 5; i++ {
		s.Observe(true, 85, 75)
	}
	if !s.Boosted() || s.BoostCount() != 2 {
		t.Errorf("re-trigger failed: boosted %v count %d", s.Boosted(), s.BoostCount())
	}
}

func TestSingleStepBelowThresholdNoBoost(t *testing.T) {
	s, _ := NewSingleStepScaler(0.5, 10, 1)
	// 40% degradation < 50% threshold.
	for i := 0; i < 50; i++ {
		s.Observe(i%5 < 2, 85, 75)
	}
	if s.Boosted() {
		t.Error("boosted below threshold")
	}
}

func TestSingleStepReset(t *testing.T) {
	s, _ := NewSingleStepScaler(0.3, 5, 1)
	for i := 0; i < 5; i++ {
		s.Observe(true, 85, 75)
	}
	s.Reset()
	if s.Boosted() || s.BoostCount() != 0 {
		t.Error("reset incomplete")
	}
	// Window must refill from scratch.
	if s.Observe(true, 85, 75) {
		t.Error("boost immediately after reset")
	}
}
