package coord

import (
	"fmt"

	"repro/internal/filter"
	"repro/internal/units"
)

// SetpointScheduler is the predictive T_ref adjustment of Sec. V-B: the
// fan controller's reference temperature scales linearly with the
// moving-average-predicted CPU utilization,
//
//	T_ref(k) = T_lo + (T_hi − T_lo) · û(k),
//
// so a lightly loaded server keeps a cold set-point (fan headroom against
// sudden load spikes: the spike lands on a cool die) while a busy server
// relaxes the set-point (the fan's cubic power is spent only when the
// extra headroom buys nothing — demand is already near its ceiling).
type SetpointScheduler struct {
	Lo, Hi units.Celsius
	window int
	pred   filter.Predictor
	last   units.Celsius
}

// NewSetpointScheduler builds a scheduler over the paper's 70–80 °C band
// with a moving-average predictor of the given window (in CPU ticks,
// following [19]).
func NewSetpointScheduler(lo, hi units.Celsius, window int) (*SetpointScheduler, error) {
	if hi <= lo {
		return nil, fmt.Errorf("coord: setpoint band [%v, %v] empty", lo, hi)
	}
	if window < 1 {
		return nil, fmt.Errorf("coord: predictor window %d < 1", window)
	}
	return &SetpointScheduler{Lo: lo, Hi: hi, window: window, pred: filter.NewMAPredictor(window), last: lo}, nil
}

// Observe feeds one utilization sample (called every CPU tick) and
// returns the scheduled reference temperature.
func (s *SetpointScheduler) Observe(u units.Utilization) units.Celsius {
	uu := units.Clamp(float64(u), 0, 1)
	uhat := units.Clamp(s.pred.Observe(uu), 0, 1)
	s.last = s.Lo + units.Celsius(float64(s.Hi-s.Lo)*uhat)
	return s.last
}

// Current returns the most recently scheduled reference.
func (s *SetpointScheduler) Current() units.Celsius { return s.last }

// Reset restores the initial state. Predictors that can clear in place do
// (keeping warm-batch policy resets allocation-free); others are rebuilt.
func (s *SetpointScheduler) Reset() {
	if r, ok := s.pred.(interface{ Reset() }); ok {
		r.Reset()
	} else {
		s.pred = filter.NewMAPredictor(s.window)
	}
	s.last = s.Lo
}
