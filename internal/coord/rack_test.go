package coord

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
)

// TestArbitrateRackActions: the per-node action class is exactly the
// single-server Table II rule — the rack selector extends the matrix, it
// does not reinterpret it.
func TestArbitrateRackActions(t *testing.T) {
	dirs := []Direction{Down, Hold, Up}
	var nodes []RackProposal
	for _, capDir := range dirs {
		for _, fanDir := range dirs {
			nodes = append(nodes, RackProposal{CapDir: capDir, FanDir: fanDir, Floor: 10, Need: 20})
		}
	}
	grants, err := ArbitrateRack(1e6, nodes)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range nodes {
		if grants[i].Action != Rule(p.CapDir, p.FanDir) {
			t.Errorf("node %d (%v, %v): action %v != Rule %v",
				i, p.CapDir, p.FanDir, grants[i].Action, Rule(p.CapDir, p.FanDir))
		}
		if grants[i].Alloc != 20 { // unconstrained budget: everyone fully served
			t.Errorf("node %d alloc %v, want 20", i, grants[i].Alloc)
		}
	}
}

// TestArbitrateRackPriority: with a budget that cannot serve everyone,
// surplus flows to fan-up emergencies first, then cap-up recovery, then
// savings — and within a class by urgency.
func TestArbitrateRackPriority(t *testing.T) {
	nodes := []RackProposal{
		{CapDir: Hold, FanDir: Down, Floor: 50, Need: 100, Urgency: 9}, // savings, loudest
		{CapDir: Up, FanDir: Hold, Floor: 50, Need: 100, Urgency: 1},   // cap-up
		{CapDir: Hold, FanDir: Up, Floor: 50, Need: 100, Urgency: 0},   // fan-up emergency
		{CapDir: Up, FanDir: Hold, Floor: 50, Need: 100, Urgency: 5},   // cap-up, more urgent
	}
	// Floors take 200; surplus 125 covers the emergency (50), the urgent
	// cap-up (50), and 25 of the second cap-up. The savings node gets
	// nothing beyond its floor despite the highest urgency.
	grants, err := ArbitrateRack(325, nodes)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{50, 75, 100, 100}
	for i, g := range grants {
		if g.Alloc != want[i] {
			t.Errorf("node %d alloc %v, want %v", i, g.Alloc, want[i])
		}
	}
}

// TestArbitrateRackInfeasibleBudget: a budget below the summed floors is
// an error, never a silent violation of a node's local constraint.
func TestArbitrateRackInfeasibleBudget(t *testing.T) {
	nodes := []RackProposal{{Floor: 60, Need: 80}, {Floor: 60, Need: 80}}
	if _, err := ArbitrateRack(100, nodes); err == nil {
		t.Fatal("infeasible budget accepted")
	}
	for _, bad := range []RackProposal{
		{Floor: -1, Need: 10},
		{Floor: math.NaN(), Need: 10},
		{Floor: 1, Need: math.Inf(1)},
		{Floor: 1, Need: 2, Urgency: math.NaN()},
	} {
		if _, err := ArbitrateRack(100, []RackProposal{bad}); err == nil {
			t.Errorf("degenerate proposal %+v accepted", bad)
		}
	}
	if _, err := ArbitrateRack(math.Inf(1), nil); err == nil {
		t.Error("non-finite budget accepted")
	}
}

// TestArbitrateRackInvariants is the coordinator budget property test:
// for random racks of any size and seed, the arbitrated allocations never
// exceed the global budget, never fall below a node's local floor, never
// exceed its ask, and a lower-priority node receives surplus only when
// every higher-priority node is fully served. The arbitration is also a
// pure function of its inputs.
func TestArbitrateRackInvariants(t *testing.T) {
	dirs := []Direction{Down, Hold, Up}
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(48)
		nodes := make([]RackProposal, n)
		sumFloor, sumAsk := 0.0, 0.0
		for i := range nodes {
			floor := rng.Float64() * 100
			need := rng.Float64() * 250 // sometimes below floor: a no-op ask
			nodes[i] = RackProposal{
				CapDir:  dirs[rng.Intn(3)],
				FanDir:  dirs[rng.Intn(3)],
				Floor:   floor,
				Need:    need,
				Urgency: rng.Float64() * 10,
			}
			sumFloor += floor
			if need > floor {
				sumAsk += need - floor
			}
		}
		budget := sumFloor + rng.Float64()*sumAsk*1.2
		grants, err := ArbitrateRack(budget, nodes)
		if err != nil {
			t.Fatal(err)
		}

		total := 0.0
		for i, g := range grants {
			total += g.Alloc
			if g.Alloc < nodes[i].Floor {
				t.Fatalf("seed %d node %d: alloc %v below floor %v (local constraint violated)",
					seed, i, g.Alloc, nodes[i].Floor)
			}
			if max := math.Max(nodes[i].Floor, nodes[i].Need); g.Alloc > max+1e-9 {
				t.Fatalf("seed %d node %d: alloc %v above ask %v", seed, i, g.Alloc, max)
			}
		}
		if total > budget+1e-6 {
			t.Fatalf("seed %d: total alloc %v exceeds budget %v", seed, total, budget)
		}

		// Priority: if node b received surplus, every node ordered before
		// it (lower rank, or same rank and higher urgency / lower index)
		// must be fully served.
		for b := range grants {
			if grants[b].Alloc <= nodes[b].Floor {
				continue
			}
			for a := range grants {
				if a == b {
					continue
				}
				ra, rb := rackRank(nodes[a]), rackRank(nodes[b])
				before := ra < rb ||
					(ra == rb && nodes[a].Urgency > nodes[b].Urgency) ||
					(ra == rb && nodes[a].Urgency == nodes[b].Urgency && a < b)
				full := math.Max(nodes[a].Floor, nodes[a].Need)
				if before && grants[a].Alloc < full-1e-9 {
					t.Fatalf("seed %d: node %d got surplus while higher-priority node %d starved (%v < %v)",
						seed, b, a, grants[a].Alloc, full)
				}
			}
		}

		again, err := ArbitrateRack(budget, nodes)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, grants) {
			t.Fatalf("seed %d: arbitration is not deterministic", seed)
		}
	}
}
