package coord

import (
	"fmt"

	"repro/internal/units"
)

// SingleStepScaler is the single-step fan speed scaling of Sec. V-C:
// when the measured performance degradation over a sliding window exceeds
// a threshold, the fan jumps straight to maximum — server load spikes are
// much faster than the controller settling time (N_trans^fan fan periods),
// so waiting for the PID to ramp costs a whole transient of missed
// deadlines. The boost holds until the degradation clears and the
// measured temperature is back under the set-point, then the PID resumes
// and descends to the lowest feasible speed.
type SingleStepScaler struct {
	// Threshold is the violated-tick fraction that triggers the boost.
	Threshold float64
	// Window is the sliding window length in CPU ticks.
	Window int
	// ReleaseMargin: the boost releases once the measurement is at or
	// below T_ref − margin and the window shows no violations.
	ReleaseMargin units.Celsius

	history []bool
	next    int
	count   int
	viols   int
	boosted bool
	boosts  int
}

// NewSingleStepScaler validates and builds the scaler.
func NewSingleStepScaler(threshold float64, window int, releaseMargin units.Celsius) (*SingleStepScaler, error) {
	if threshold <= 0 || threshold > 1 {
		return nil, fmt.Errorf("coord: boost threshold %v outside (0, 1]", threshold)
	}
	if window < 1 {
		return nil, fmt.Errorf("coord: window %d < 1", window)
	}
	if releaseMargin < 0 {
		return nil, fmt.Errorf("coord: negative release margin %v", releaseMargin)
	}
	return &SingleStepScaler{
		Threshold:     threshold,
		Window:        window,
		ReleaseMargin: releaseMargin,
		history:       make([]bool, window),
	}, nil
}

// Observe feeds one CPU tick (whether it violated its demand, the current
// measurement, and the fan set-point) and reports whether the fan should
// be pinned at maximum this tick.
func (s *SingleStepScaler) Observe(violated bool, meas, ref units.Celsius) bool {
	if s.count < s.Window {
		s.count++
	} else if s.history[s.next] {
		s.viols--
	}
	s.history[s.next] = violated
	if violated {
		s.viols++
	}
	s.next = (s.next + 1) % s.Window

	degradation := float64(s.viols) / float64(s.count)
	if !s.boosted {
		if s.count == s.Window && degradation > s.Threshold {
			s.boosted = true
			s.boosts++
		}
	} else {
		if s.viols == 0 && meas <= ref-s.ReleaseMargin {
			s.boosted = false
		}
	}
	return s.boosted
}

// Boosted reports whether the scaler currently pins the fan at maximum.
func (s *SingleStepScaler) Boosted() bool { return s.boosted }

// BoostCount returns how many distinct boosts have fired.
func (s *SingleStepScaler) BoostCount() int { return s.boosts }

// Reset clears all state.
func (s *SingleStepScaler) Reset() {
	for i := range s.history {
		s.history[i] = false
	}
	s.next, s.count, s.viols, s.boosts = 0, 0, 0, 0
	s.boosted = false
}
