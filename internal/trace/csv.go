package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteCSV writes the set as CSV with a "t" column followed by one column
// per series in insertion order. Series are aligned on the union of their
// timestamps using zero-order hold; values before a series' first sample
// are written as empty cells.
func (st *Set) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	header := append([]string{"t"}, st.order...)
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	// Union of timestamps.
	seen := make(map[float64]bool)
	var times []float64
	for _, name := range st.order {
		for _, p := range st.byKey[name].points {
			if !seen[p.T] {
				seen[p.T] = true
				times = append(times, p.T)
			}
		}
	}
	sort.Float64s(times)
	row := make([]string, len(header))
	for _, t := range times {
		row[0] = formatFloat(t)
		for i, name := range st.order {
			if v, ok := st.byKey[name].ValueAt(t); ok {
				row[i+1] = formatFloat(v)
			} else {
				row[i+1] = ""
			}
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("trace: write row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV written by WriteCSV back into a Set. Empty cells are
// skipped (the sample is simply absent from that series).
func ReadCSV(r io.Reader) (*Set, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	header := records[0]
	if len(header) < 2 || header[0] != "t" {
		return nil, fmt.Errorf("trace: bad header %v", header)
	}
	st := NewSet()
	for _, name := range header[1:] {
		st.Add(NewSeries(name))
	}
	for li, rec := range records[1:] {
		if len(rec) != len(header) {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", li+2, len(rec), len(header))
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d time: %w", li+2, err)
		}
		for i, cell := range rec[1:] {
			if cell == "" {
				continue
			}
			v, err := strconv.ParseFloat(cell, 64)
			if err != nil {
				return nil, fmt.Errorf("trace: row %d col %q: %w", li+2, header[i+1], err)
			}
			if err := st.byKey[header[i+1]].Append(t, v); err != nil {
				return nil, err
			}
		}
	}
	return st, nil
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', 10, 64) }
