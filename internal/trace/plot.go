package trace

import (
	"fmt"
	"math"
	"strings"
)

// PlotOptions configures terminal rendering of a series set.
type PlotOptions struct {
	Width  int     // plot columns, excluding the axis gutter (default 72)
	Height int     // plot rows (default 16)
	YMin   float64 // fixed y-axis minimum; used when YFixed is true
	YMax   float64 // fixed y-axis maximum; used when YFixed is true
	YFixed bool    // if false, the y range is fitted to the data
	Title  string  // optional title line
}

var plotMarks = []byte{'*', '+', 'o', 'x', '#', '@'}

// Plot renders the series of the set as an ASCII chart, one mark per
// series, with a legend. Series are resampled onto the plot's column grid
// with zero-order hold. It returns "" for a set with no samples.
func (st *Set) Plot(opt PlotOptions) string {
	if opt.Width <= 0 {
		opt.Width = 72
	}
	if opt.Height <= 0 {
		opt.Height = 16
	}
	// Global time extent and y extent.
	t0, t1 := math.Inf(1), math.Inf(-1)
	lo, hi := math.Inf(1), math.Inf(-1)
	any := false
	for _, name := range st.order {
		s := st.byKey[name]
		if s.Len() == 0 {
			continue
		}
		any = true
		t0 = math.Min(t0, s.points[0].T)
		t1 = math.Max(t1, s.points[s.Len()-1].T)
		for _, p := range s.points {
			lo = math.Min(lo, p.V)
			hi = math.Max(hi, p.V)
		}
	}
	if !any {
		return ""
	}
	if opt.YFixed {
		lo, hi = opt.YMin, opt.YMax
	}
	if hi == lo {
		hi = lo + 1
	}
	if t1 == t0 {
		t1 = t0 + 1
	}

	grid := make([][]byte, opt.Height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", opt.Width))
	}
	for si, name := range st.order {
		s := st.byKey[name]
		if s.Len() == 0 {
			continue
		}
		mark := plotMarks[si%len(plotMarks)]
		for c := 0; c < opt.Width; c++ {
			t := t0 + (t1-t0)*float64(c)/float64(opt.Width-1)
			v, ok := s.ValueAt(t)
			if !ok {
				continue
			}
			frac := (v - lo) / (hi - lo)
			if frac < 0 || frac > 1 {
				continue
			}
			r := int(math.Round(float64(opt.Height-1) * (1 - frac)))
			grid[r][c] = mark
		}
	}

	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	for r := 0; r < opt.Height; r++ {
		y := hi - (hi-lo)*float64(r)/float64(opt.Height-1)
		fmt.Fprintf(&b, "%10.2f |%s\n", y, string(grid[r]))
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", opt.Width))
	fmt.Fprintf(&b, "%10s  t=%.0fs%st=%.0fs\n", "", t0,
		strings.Repeat(" ", maxInt(1, opt.Width-len(fmt.Sprintf("t=%.0fs", t0))-len(fmt.Sprintf("t=%.0fs", t1)))), t1)
	for si, name := range st.order {
		if st.byKey[name].Len() == 0 {
			continue
		}
		fmt.Fprintf(&b, "%10s  %c %s\n", "", plotMarks[si%len(plotMarks)], name)
	}
	return b.String()
}

// Sparkline renders a single series as a one-line block-character chart of
// the given width, useful for compact progress output.
func Sparkline(s *Series, width int) string {
	if s.Len() == 0 || width <= 0 {
		return ""
	}
	blocks := []rune("▁▂▃▄▅▆▇█")
	st, _ := s.Summarize()
	span := st.Max - st.Min
	t0 := s.points[0].T
	t1 := s.points[s.Len()-1].T
	if t1 == t0 {
		t1 = t0 + 1
	}
	var b strings.Builder
	for c := 0; c < width; c++ {
		t := t0 + (t1-t0)*float64(c)/float64(maxInt(1, width-1))
		v, ok := s.ValueAt(t)
		if !ok {
			b.WriteRune(' ')
			continue
		}
		var level int
		if span == 0 {
			level = 0
		} else {
			level = int((v - st.Min) / span * float64(len(blocks)-1))
		}
		b.WriteRune(blocks[level])
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
