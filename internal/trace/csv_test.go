package trace

import (
	"bytes"
	"strings"
	"testing"
)

func buildTestSet() *Set {
	st := NewSet()
	a, _ := FromSlices("temp", []float64{0, 1, 2}, []float64{70, 71.5, 72})
	b, _ := FromSlices("fan", []float64{1, 2}, []float64{2000, 2100})
	st.Add(a)
	st.Add(b)
	return st
}

func TestCSVRoundTrip(t *testing.T) {
	st := buildTestSet()
	var buf bytes.Buffer
	if err := st.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if names := got.Names(); len(names) != 2 || names[0] != "temp" || names[1] != "fan" {
		t.Fatalf("Names = %v", names)
	}
	temp := got.Get("temp")
	if temp.Len() != 3 {
		t.Fatalf("temp len = %d, want 3", temp.Len())
	}
	if temp.At(1).V != 71.5 {
		t.Errorf("temp[1] = %v", temp.At(1).V)
	}
	fan := got.Get("fan")
	// fan has no sample at t=0, but zero-order hold in WriteCSV fills
	// forward only from its first sample; before that the cell is empty,
	// so after round trip the fan series still has exactly 2 samples.
	if fan.Len() != 2 {
		t.Errorf("fan len = %d, want 2", fan.Len())
	}
}

func TestCSVHeaderValidation(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv accepted")
	}
	if _, err := ReadCSV(strings.NewReader("x,y\n1,2\n")); err == nil {
		t.Error("csv without t column accepted")
	}
	if _, err := ReadCSV(strings.NewReader("t\n1\n")); err == nil {
		t.Error("csv without series columns accepted")
	}
}

func TestCSVBadCells(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("t,a\nxx,1\n")); err == nil {
		t.Error("bad time cell accepted")
	}
	if _, err := ReadCSV(strings.NewReader("t,a\n1,zz\n")); err == nil {
		t.Error("bad value cell accepted")
	}
}

func TestCSVEmptyCellsSkipped(t *testing.T) {
	in := "t,a,b\n0,1,\n1,,2\n"
	st, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if st.Get("a").Len() != 1 || st.Get("b").Len() != 1 {
		t.Errorf("a len=%d b len=%d, want 1 and 1", st.Get("a").Len(), st.Get("b").Len())
	}
}

func TestPlotRendersAllSeries(t *testing.T) {
	st := buildTestSet()
	out := st.Plot(PlotOptions{Width: 40, Height: 8, Title: "test plot"})
	if out == "" {
		t.Fatal("empty plot")
	}
	if !strings.Contains(out, "test plot") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "temp") || !strings.Contains(out, "fan") {
		t.Error("missing legend entries")
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "+") {
		t.Error("missing series marks")
	}
}

func TestPlotEmptySet(t *testing.T) {
	if out := NewSet().Plot(PlotOptions{}); out != "" {
		t.Errorf("empty set plot = %q", out)
	}
	st := NewSet()
	st.Add(NewSeries("empty"))
	if out := st.Plot(PlotOptions{}); out != "" {
		t.Errorf("set of empty series plot = %q", out)
	}
}

func TestPlotFixedYRange(t *testing.T) {
	st := buildTestSet()
	out := st.Plot(PlotOptions{Width: 30, Height: 6, YFixed: true, YMin: 0, YMax: 100})
	if !strings.Contains(out, "100.00") || !strings.Contains(out, "0.00") {
		t.Errorf("fixed range labels missing:\n%s", out)
	}
}

func TestSparkline(t *testing.T) {
	s, _ := FromSlices("x", []float64{0, 1, 2, 3}, []float64{0, 1, 2, 3})
	sp := Sparkline(s, 8)
	if len([]rune(sp)) != 8 {
		t.Errorf("sparkline width = %d, want 8", len([]rune(sp)))
	}
	if Sparkline(NewSeries("e"), 8) != "" {
		t.Error("empty sparkline not empty")
	}
	if Sparkline(s, 0) != "" {
		t.Error("zero-width sparkline not empty")
	}
	// Constant series renders at the lowest level without panicking.
	c, _ := FromSlices("c", []float64{0, 1}, []float64{5, 5})
	if got := Sparkline(c, 4); len([]rune(got)) != 4 {
		t.Errorf("constant sparkline = %q", got)
	}
}
