// Package trace provides the time-series container used throughout the
// simulator for recorded signals (temperatures, fan speeds, utilizations),
// plus CSV interchange and terminal plotting so every paper figure can be
// rendered without external tooling.
package trace

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrMismatch is returned when paired time/value inputs differ in length.
var ErrMismatch = errors.New("trace: time and value lengths differ")

// Point is one sample of a time series.
type Point struct {
	T float64 // simulation time in seconds
	V float64 // signal value
}

// Series is an append-only time series with non-decreasing timestamps.
type Series struct {
	Name   string
	points []Point
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series { return &Series{Name: name} }

// NewSeriesCap returns an empty named series preallocated for n samples,
// so recorders with a known horizon (one append per simulated tick) never
// reallocate mid-run. n <= 0 degenerates to NewSeries.
func NewSeriesCap(name string, n int) *Series {
	if n <= 0 {
		return NewSeries(name)
	}
	return &Series{Name: name, points: make([]Point, 0, n)}
}

// Reset truncates the series to zero samples while keeping its capacity,
// so a warm recorder (the lockstep engine re-stepping a batch) reuses its
// storage run after run with zero steady-state allocations.
func (s *Series) Reset() { s.points = s.points[:0] }

// FromSlices builds a series from parallel time and value slices.
func FromSlices(name string, ts, vs []float64) (*Series, error) {
	if len(ts) != len(vs) {
		return nil, ErrMismatch
	}
	s := NewSeries(name)
	for i := range ts {
		if err := s.Append(ts[i], vs[i]); err != nil {
			return nil, err
		}
	}
	return s, nil
}

// Append adds a sample. Timestamps must be non-decreasing and finite.
func (s *Series) Append(t, v float64) error {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return fmt.Errorf("trace: non-finite timestamp %v", t)
	}
	if n := len(s.points); n > 0 && t < s.points[n-1].T {
		return fmt.Errorf("trace: timestamp %v precedes %v", t, s.points[n-1].T)
	}
	s.points = append(s.points, Point{T: t, V: v})
	return nil
}

// MustAppend is Append that panics on error; recorders use it on internally
// generated monotone clocks where failure is a programming error.
func (s *Series) MustAppend(t, v float64) {
	if err := s.Append(t, v); err != nil {
		panic(err)
	}
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.points) }

// At returns the i-th sample.
func (s *Series) At(i int) Point { return s.points[i] }

// Times returns a copy of all timestamps.
func (s *Series) Times() []float64 {
	ts := make([]float64, len(s.points))
	for i, p := range s.points {
		ts[i] = p.T
	}
	return ts
}

// Values returns a copy of all values.
func (s *Series) Values() []float64 {
	vs := make([]float64, len(s.points))
	for i, p := range s.points {
		vs[i] = p.V
	}
	return vs
}

// Window returns the sub-series with t in [t0, t1]. The returned series
// shares no storage with s.
func (s *Series) Window(t0, t1 float64) *Series {
	out := NewSeries(s.Name)
	for _, p := range s.points {
		if p.T >= t0 && p.T <= t1 {
			out.points = append(out.points, p)
		}
	}
	return out
}

// ValueAt returns the sample value at time t using zero-order hold (the
// last sample at or before t). ok is false if t precedes the first sample
// or the series is empty.
func (s *Series) ValueAt(t float64) (v float64, ok bool) {
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].T > t })
	if i == 0 {
		return 0, false
	}
	return s.points[i-1].V, true
}

// Resample returns the series sampled every dt from its first to last
// timestamp using zero-order hold. It returns an empty series when s is
// empty, and an error for dt <= 0.
func (s *Series) Resample(dt float64) (*Series, error) {
	if dt <= 0 {
		return nil, fmt.Errorf("trace: resample interval %v <= 0", dt)
	}
	out := NewSeries(s.Name)
	if len(s.points) == 0 {
		return out, nil
	}
	t0, t1 := s.points[0].T, s.points[len(s.points)-1].T
	for k := 0; ; k++ {
		t := t0 + float64(k)*dt
		if t > t1+1e-9 {
			break
		}
		v, _ := s.ValueAt(t)
		out.points = append(out.points, Point{T: t, V: v})
	}
	return out, nil
}

// Crossings returns the times at which the series crosses the given level,
// with linear interpolation between samples. Touching the level exactly
// counts once.
func (s *Series) Crossings(level float64) []float64 {
	var out []float64
	for i := 1; i < len(s.points); i++ {
		a, b := s.points[i-1], s.points[i]
		da, db := a.V-level, b.V-level
		if da == 0 {
			if i == 1 || s.points[i-2].V-level != 0 {
				out = append(out, a.T)
			}
			continue
		}
		if da*db < 0 {
			frac := da / (a.V - b.V)
			out = append(out, a.T+frac*(b.T-a.T))
		}
	}
	if n := len(s.points); n > 0 && s.points[n-1].V == level {
		if n == 1 || s.points[n-2].V != level {
			out = append(out, s.points[n-1].T)
		}
	}
	return out
}

// Stats summarizes a series.
type Stats struct {
	Min, Max, Mean, Last float64
}

// Summarize computes the summary statistics of the series values.
// ok is false for an empty series.
func (s *Series) Summarize() (Stats, bool) {
	if len(s.points) == 0 {
		return Stats{}, false
	}
	st := Stats{Min: s.points[0].V, Max: s.points[0].V}
	sum := 0.0
	for _, p := range s.points {
		st.Min = math.Min(st.Min, p.V)
		st.Max = math.Max(st.Max, p.V)
		sum += p.V
	}
	st.Mean = sum / float64(len(s.points))
	st.Last = s.points[len(s.points)-1].V
	return st, true
}

// SettlingTime returns the earliest time after which the series stays
// within ±band of target forever (within the recorded horizon). ok is
// false if the series never settles or is empty.
func (s *Series) SettlingTime(target, band float64) (t float64, ok bool) {
	if len(s.points) == 0 {
		return 0, false
	}
	// Walk backward to find the last excursion outside the band.
	lastOutside := -1
	for i := len(s.points) - 1; i >= 0; i-- {
		if math.Abs(s.points[i].V-target) > band {
			lastOutside = i
			break
		}
	}
	if lastOutside == len(s.points)-1 {
		return 0, false // still outside at the end
	}
	return s.points[lastOutside+1].T, true
}

// Integrate returns the trapezoidal integral of the series over its full
// extent: for power traces in watts against seconds this is energy in
// joules.
func (s *Series) Integrate() float64 {
	var sum float64
	for i := 1; i < len(s.points); i++ {
		a, b := s.points[i-1], s.points[i]
		sum += (a.V + b.V) / 2 * (b.T - a.T)
	}
	return sum
}

// Set is an ordered collection of series sharing a time base, e.g. all
// recorded signals of one simulation run.
type Set struct {
	order []string
	byKey map[string]*Series
}

// NewSet returns an empty series set.
func NewSet() *Set { return &Set{byKey: make(map[string]*Series)} }

// Add registers a series under its name, replacing any previous series
// with the same name while preserving its position.
func (st *Set) Add(s *Series) {
	if _, exists := st.byKey[s.Name]; !exists {
		st.order = append(st.order, s.Name)
	}
	st.byKey[s.Name] = s
}

// Get returns the named series, or nil.
func (st *Set) Get(name string) *Series { return st.byKey[name] }

// Names returns the series names in insertion order.
func (st *Set) Names() []string { return append([]string(nil), st.order...) }

// Len returns the number of series.
func (st *Set) Len() int { return len(st.order) }
