package trace

import (
	"math"
	"testing"
	"testing/quick"
)

func TestAppendMonotonic(t *testing.T) {
	s := NewSeries("x")
	if err := s.Append(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(1, 3); err != nil { // equal timestamps allowed
		t.Fatal(err)
	}
	if err := s.Append(0.5, 4); err == nil {
		t.Error("out-of-order append accepted")
	}
	if err := s.Append(math.NaN(), 0); err == nil {
		t.Error("NaN timestamp accepted")
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
}

func TestMustAppendPanics(t *testing.T) {
	s := NewSeries("x")
	s.MustAppend(5, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("MustAppend out of order did not panic")
		}
	}()
	s.MustAppend(4, 1)
}

func TestFromSlices(t *testing.T) {
	s, err := FromSlices("u", []float64{0, 1, 2}, []float64{5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.At(1).V != 6 {
		t.Errorf("bad series: %+v", s)
	}
	if _, err := FromSlices("u", []float64{0}, []float64{1, 2}); err != ErrMismatch {
		t.Errorf("mismatched slices err = %v", err)
	}
}

func TestValueAtZeroOrderHold(t *testing.T) {
	s, _ := FromSlices("x", []float64{10, 20, 30}, []float64{1, 2, 3})
	tests := []struct {
		t    float64
		want float64
		ok   bool
	}{
		{5, 0, false},
		{10, 1, true},
		{15, 1, true},
		{20, 2, true},
		{29.9, 2, true},
		{30, 3, true},
		{100, 3, true},
	}
	for _, tt := range tests {
		got, ok := s.ValueAt(tt.t)
		if ok != tt.ok || (ok && got != tt.want) {
			t.Errorf("ValueAt(%v) = %v, %v, want %v, %v", tt.t, got, ok, tt.want, tt.ok)
		}
	}
}

func TestWindow(t *testing.T) {
	s, _ := FromSlices("x", []float64{0, 1, 2, 3, 4}, []float64{0, 1, 2, 3, 4})
	w := s.Window(1, 3)
	if w.Len() != 3 || w.At(0).T != 1 || w.At(2).T != 3 {
		t.Errorf("Window = %+v", w)
	}
	// Mutating the window must not affect the original.
	w.MustAppend(10, 99)
	if s.Len() != 5 {
		t.Error("window shares storage with parent")
	}
}

func TestResample(t *testing.T) {
	s, _ := FromSlices("x", []float64{0, 10}, []float64{1, 5})
	r, err := s.Resample(5)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 3 {
		t.Fatalf("Resample len = %d, want 3", r.Len())
	}
	wants := []float64{1, 1, 5}
	for i, w := range wants {
		if r.At(i).V != w {
			t.Errorf("sample %d = %v, want %v", i, r.At(i).V, w)
		}
	}
	if _, err := s.Resample(0); err == nil {
		t.Error("Resample(0) accepted")
	}
	empty := NewSeries("e")
	if r, err := empty.Resample(1); err != nil || r.Len() != 0 {
		t.Errorf("empty resample = %v, %v", r, err)
	}
}

func TestCrossings(t *testing.T) {
	s, _ := FromSlices("x", []float64{0, 1, 2, 3, 4}, []float64{0, 2, 0, 2, 0})
	xs := s.Crossings(1)
	if len(xs) != 4 {
		t.Fatalf("Crossings = %v, want 4 crossings", xs)
	}
	wants := []float64{0.5, 1.5, 2.5, 3.5}
	for i, w := range wants {
		if math.Abs(xs[i]-w) > 1e-12 {
			t.Errorf("crossing %d = %v, want %v", i, xs[i], w)
		}
	}
}

func TestCrossingsTouch(t *testing.T) {
	s, _ := FromSlices("x", []float64{0, 1, 2}, []float64{0, 1, 0})
	xs := s.Crossings(1)
	if len(xs) != 1 || xs[0] != 1 {
		t.Errorf("touch crossing = %v, want [1]", xs)
	}
}

func TestSummarize(t *testing.T) {
	s, _ := FromSlices("x", []float64{0, 1, 2, 3}, []float64{4, -2, 6, 0})
	st, ok := s.Summarize()
	if !ok {
		t.Fatal("Summarize not ok")
	}
	if st.Min != -2 || st.Max != 6 || st.Mean != 2 || st.Last != 0 {
		t.Errorf("Stats = %+v", st)
	}
	if _, ok := NewSeries("e").Summarize(); ok {
		t.Error("empty Summarize ok")
	}
}

func TestSettlingTime(t *testing.T) {
	// Signal: outside band until t=3, then inside.
	s, _ := FromSlices("x",
		[]float64{0, 1, 2, 3, 4, 5},
		[]float64{10, 8, 6, 5.2, 4.9, 5.1})
	got, ok := s.SettlingTime(5, 0.5)
	if !ok || got != 3 {
		t.Errorf("SettlingTime = %v, %v, want 3, true", got, ok)
	}
	// Never settles.
	s2, _ := FromSlices("x", []float64{0, 1}, []float64{0, 10})
	if _, ok := s2.SettlingTime(5, 0.5); ok {
		t.Error("non-settling series reported settled")
	}
	// Settles immediately.
	s3, _ := FromSlices("x", []float64{0, 1}, []float64{5, 5})
	if got, ok := s3.SettlingTime(5, 0.5); !ok || got != 0 {
		t.Errorf("immediate settle = %v, %v", got, ok)
	}
}

func TestIntegrate(t *testing.T) {
	s, _ := FromSlices("p", []float64{0, 2, 4}, []float64{1, 3, 1})
	// Trapezoids: (1+3)/2*2 + (3+1)/2*2 = 8
	if got := s.Integrate(); got != 8 {
		t.Errorf("Integrate = %v, want 8", got)
	}
	if got := NewSeries("e").Integrate(); got != 0 {
		t.Errorf("empty Integrate = %v", got)
	}
}

func TestIntegrateConstantProperty(t *testing.T) {
	f := func(v float64, n uint8) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return true
		}
		v = math.Mod(v, 1e6)
		steps := int(n%50) + 2
		s := NewSeries("c")
		for i := 0; i < steps; i++ {
			s.MustAppend(float64(i), v)
		}
		want := v * float64(steps-1)
		return math.Abs(s.Integrate()-want) <= 1e-6*(1+math.Abs(want))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSetOrderAndReplace(t *testing.T) {
	st := NewSet()
	st.Add(NewSeries("a"))
	st.Add(NewSeries("b"))
	replacement := NewSeries("a")
	replacement.MustAppend(0, 9)
	st.Add(replacement)
	names := st.Names()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Errorf("Names = %v", names)
	}
	if st.Get("a").Len() != 1 {
		t.Error("replacement did not take effect")
	}
	if st.Get("missing") != nil {
		t.Error("missing series should be nil")
	}
	if st.Len() != 2 {
		t.Errorf("Len = %d", st.Len())
	}
}
