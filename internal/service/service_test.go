package service

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/units"
)

// ctx is the background context every direct backend/module call in
// these tests runs under.
var ctx = context.Background()

// testSpec is the cheap single-job fixture; ambient varies the content
// key.
func testSpec(ambient float64) scenario.Spec {
	cfg := sim.Default()
	cfg.Ambient = units.Celsius(ambient)
	return scenario.Spec{
		Kind:     scenario.KindSingle,
		Name:     "service-test",
		Base:     &cfg,
		Duration: 120,
		Jobs: []scenario.JobSpec{{
			Workload: scenario.FactoryRef{Name: "constant", Params: scenario.Params{"u": 0.6}},
			Policy:   scenario.FactoryRef{Name: "hold", Params: scenario.Params{"fan": 3000}},
		}},
	}
}

// startDaemon builds and starts a daemon, failing the test on error and
// stopping it on cleanup.
func startDaemon(t *testing.T, cfg Config) *Daemon {
	t.Helper()
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := d.Stop(); err != nil {
			t.Errorf("stopping daemon: %v", err)
		}
	})
	return d
}

// fakeModule records lifecycle calls into a shared log.
type fakeModule struct {
	name                string
	log                 *[]string
	failConf, failStart bool
}

func (m *fakeModule) Name() string { return m.name }
func (m *fakeModule) Configure() error {
	*m.log = append(*m.log, "conf:"+m.name)
	if m.failConf {
		return fmt.Errorf("boom")
	}
	return nil
}
func (m *fakeModule) Start() error {
	*m.log = append(*m.log, "start:"+m.name)
	if m.failStart {
		return fmt.Errorf("boom")
	}
	return nil
}
func (m *fakeModule) Stop() error {
	*m.log = append(*m.log, "stop:"+m.name)
	return nil
}

// TestCoordinatorLifecycle: Configure/Start walk in order, Stop in
// reverse, and a failed Start rolls back the already-started prefix.
func TestCoordinatorLifecycle(t *testing.T) {
	var log []string
	a := &fakeModule{name: "a", log: &log}
	b := &fakeModule{name: "b", log: &log}
	c := NewCoordinator(a, b)
	if err := c.Configure(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	if err := c.Stop(); err != nil {
		t.Fatal(err)
	}
	want := "[conf:a conf:b start:a start:b stop:b stop:a]"
	if got := fmt.Sprint(log); got != want {
		t.Errorf("lifecycle order %v, want %v", got, want)
	}

	// Start failure in the middle: the started prefix stops in reverse,
	// the failing module and everything after it are never stopped.
	log = nil
	bad := &fakeModule{name: "bad", log: &log, failStart: true}
	tail := &fakeModule{name: "tail", log: &log}
	c = NewCoordinator(a, bad, tail)
	if err := c.Configure(); err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err == nil {
		t.Fatal("Start succeeded past a failing module")
	}
	want = "[conf:a conf:bad conf:tail start:a start:bad stop:a]"
	if got := fmt.Sprint(log); got != want {
		t.Errorf("rollback order %v, want %v", got, want)
	}

	// Configure failure stops the walk.
	log = nil
	c = NewCoordinator(&fakeModule{name: "x", log: &log, failConf: true}, a)
	if err := c.Configure(); err == nil {
		t.Fatal("Configure succeeded past a failing module")
	}
	if got := fmt.Sprint(log); got != "[conf:x]" {
		t.Errorf("configure walk continued past failure: %v", got)
	}
}

// TestMemBackendGC: the in-memory backend evicts oldest insertion
// first, key tiebreak, and a re-put keeps the original age.
func TestMemBackendGC(t *testing.T) {
	b := NewMemBackend()
	specs := make([]scenario.Spec, 4)
	keys := make([]string, 4)
	out, err := scenario.Run(testSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	for i := range specs {
		specs[i] = testSpec(24 + float64(i))
		keys[i], _ = scenario.Key(specs[i])
		if err := b.Put(ctx, specs[i], out); err != nil {
			t.Fatal(err)
		}
	}
	// Re-put the oldest: it must stay the oldest.
	if err := b.Put(ctx, specs[0], out); err != nil {
		t.Fatal(err)
	}
	res, err := b.GC(ctx, scenario.GCConfig{MaxCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Evicted) != fmt.Sprint(keys[:2]) {
		t.Errorf("evicted %v, want %v (insertion order, re-put keeps age)", res.Evicted, keys[:2])
	}
	if n, _ := b.Len(ctx); n != 2 {
		t.Errorf("Len = %d after GC, want 2", n)
	}
	if _, err := b.GC(ctx, scenario.GCConfig{}); err == nil {
		t.Error("GC accepted an empty cap set")
	}
}

// TestStorageCaps: with caps configured the storage module trims after
// every Put and accounts the evictions.
func TestStorageCaps(t *testing.T) {
	s := NewStorage(NewMemBackend(), scenario.GCConfig{MaxCells: 2})
	if err := s.Configure(); err != nil {
		t.Fatal(err)
	}
	if err := s.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := s.Stop(); err != nil {
			t.Error(err)
		}
	}()
	out, err := scenario.Run(testSpec(24))
	if err != nil {
		t.Fatal(err)
	}
	var keys []string
	for i := 0; i < 3; i++ {
		spec := testSpec(24 + float64(i))
		key, _ := scenario.Key(spec)
		keys = append(keys, key)
		if err := s.Put(ctx, spec, out); err != nil {
			t.Fatal(err)
		}
	}
	if n, err := s.Len(ctx); err != nil || n != 2 {
		t.Fatalf("Len = %d (%v), want 2 under MaxCells=2", n, err)
	}
	if _, ok, err := s.Get(ctx, keys[0]); err != nil || ok {
		t.Errorf("oldest cell survived the cap: ok=%v err=%v", ok, err)
	}
	st, err := s.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Puts != 3 || st.Evicted != 1 || st.Cells != 2 {
		t.Errorf("stats = %+v, want 3 puts / 1 evicted / 2 cells", st)
	}

	// A capped configuration without a GC-capable backend is a
	// configuration error, not a silent unbounded cache.
	bare := NewStorage(nopBackend{}, scenario.GCConfig{MaxCells: 1})
	if err := bare.Configure(); err == nil {
		t.Error("Configure accepted caps on a backend without GC")
	}
}

// nopBackend implements Backend but not GCBackend.
type nopBackend struct{}

func (nopBackend) Name() string { return "nop" }
func (nopBackend) Get(context.Context, string) (*scenario.Outcome, bool, error) {
	return nil, false, nil
}
func (nopBackend) Put(context.Context, scenario.Spec, *scenario.Outcome) error { return nil }
func (nopBackend) List(context.Context) ([]scenario.CellInfo, error)           { return nil, nil }
func (nopBackend) Len(context.Context) (int, error)                            { return 0, nil }

// TestSingleflightAndByteIdentity is the tentpole's core contract in one
// scene: k concurrent submits of one never-seen spec cost exactly one
// simulation (probe-verified), and every HTTP-fetched outcome is
// byte-identical to a direct scenario.Run.
func TestSingleflightAndByteIdentity(t *testing.T) {
	spec := testSpec(30)
	ticksBefore := scenario.ProbeSimTicks()
	want, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	oneRun := scenario.ProbeSimTicks() - ticksBefore
	if oneRun <= 0 {
		t.Fatalf("reference run moved the tick probe by %d", oneRun)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	d := startDaemon(t, Config{Shards: 4})
	c := NewClient(d.BaseURL())

	const k = 12
	start := scenario.ProbeSimTicks()
	var wg sync.WaitGroup
	results := make([]JobStatus, k)
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.Submit(ctx, spec, true)
		}(i)
	}
	wg.Wait()
	if d := scenario.ProbeSimTicks() - start; d != oneRun {
		t.Errorf("%d concurrent submits simulated %d ticks, want one run's %d", k, d, oneRun)
	}
	for i := 0; i < k; i++ {
		if errs[i] != nil {
			t.Fatalf("submit %d: %v", i, errs[i])
		}
		if results[i].State != StateDone {
			t.Fatalf("submit %d finished %s: %s", i, results[i].State, results[i].Error)
		}
		got, err := json.Marshal(results[i].Outcome)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(wantJSON) {
			t.Errorf("submit %d outcome differs from direct scenario.Run", i)
		}
	}

	qs := d.Queue().Stats()
	if qs.Submitted != k || qs.Simulated != 1 {
		t.Errorf("queue stats %+v: want %d submitted, 1 simulated", qs, k)
	}
	if qs.CacheHits+qs.Coalesced != k-1 {
		t.Errorf("queue stats %+v: want %d hits+coalesced", qs, k-1)
	}

	// The poll path returns the same bytes from the store.
	st, err := c.Get(ctx, results[0].Key)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cached || st.State != StateDone {
		t.Errorf("poll after completion: %+v, want cached done", st)
	}
	got, _ := json.Marshal(st.Outcome)
	if string(got) != string(wantJSON) {
		t.Error("polled outcome differs from direct scenario.Run")
	}
}

// TestWarmRestartServesFromStore: a second daemon over the same store
// directory answers a known spec from disk with zero simulation.
func TestWarmRestartServesFromStore(t *testing.T) {
	dir := t.TempDir()
	spec := testSpec(31)

	d1 := startDaemon(t, Config{StoreDir: dir})
	st, err := NewClient(d1.BaseURL()).Submit(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || st.Cached {
		t.Fatalf("first submit: %+v, want fresh done", st)
	}
	if err := d1.Stop(); err != nil {
		t.Fatal(err)
	}

	d2, err := New(Config{StoreDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if err := d2.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if err := d2.Stop(); err != nil {
			t.Error(err)
		}
	}()
	before := scenario.ProbeSimTicks()
	st2, err := NewClient(d2.BaseURL()).Submit(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if st2.State != StateDone || !st2.Cached {
		t.Fatalf("warm submit: %+v, want cached done", st2)
	}
	if d := scenario.ProbeSimTicks() - before; d != 0 {
		t.Errorf("warm submit simulated %d ticks, want 0", d)
	}
	a, _ := json.Marshal(st.Outcome)
	b, _ := json.Marshal(st2.Outcome)
	if string(a) != string(b) {
		t.Error("outcome changed across daemon restart")
	}
}

// TestHTTPValidation: malformed and unknown requests map to 400/404,
// not 500s or silent acceptance.
func TestHTTPValidation(t *testing.T) {
	d := startDaemon(t, Config{})
	c := NewClient(d.BaseURL())

	// Invalid spec (unknown kind): 400.
	if _, err := c.Submit(ctx, scenario.Spec{Kind: "warp"}, false); err == nil {
		t.Error("invalid spec accepted")
	} else if se, ok := err.(*StatusError); !ok || se.Code != 400 {
		t.Errorf("invalid spec: %v, want HTTP 400", err)
	}

	// Unknown key: 404, recognizable via IsNotFound.
	if _, err := c.Get(ctx, "deadbeef"); !IsNotFound(err) {
		t.Errorf("unknown key: %v, want 404", err)
	}

	// A typoed field must be rejected, not silently dropped from the
	// content hash (strict decoding).
	resp, err := c.hc.Post(d.BaseURL()+"/v1/scenarios", "application/json",
		strings.NewReader(`{"kind":"single","durration":600}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("unknown field: HTTP %d, want 400", resp.StatusCode)
	}
}

// TestListAndStats: the listing reflects stored cells, the stats
// endpoint the engine accounting.
func TestListAndStats(t *testing.T) {
	d := startDaemon(t, Config{})
	c := NewClient(d.BaseURL())
	for i := 0; i < 2; i++ {
		if _, err := c.Submit(ctx, testSpec(40+float64(i)), true); err != nil {
			t.Fatal(err)
		}
	}
	lr, err := c.List(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(lr.Cells) != 2 || len(lr.Inflight) != 0 {
		t.Fatalf("list = %d cells / %d inflight, want 2 / 0", len(lr.Cells), len(lr.Inflight))
	}
	for i := 1; i < len(lr.Cells); i++ {
		if lr.Cells[i-1].Key >= lr.Cells[i].Key {
			t.Error("listing not sorted by key")
		}
	}
	sr, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Queue.Simulated != 2 || sr.SimRuns < 2 || sr.SimTicks <= 0 {
		t.Errorf("stats = %+v, want 2 simulations with ticks accounted", sr)
	}
	if sr.Storage.Puts != 2 || sr.Storage.Cells != 2 {
		t.Errorf("storage stats = %+v, want 2 puts / 2 cells", sr.Storage)
	}
}

// TestStoppedQueueRejectsSubmits: after Stop the queue answers
// ErrStopped instead of queueing into a dead worker set.
func TestStoppedQueueRejectsSubmits(t *testing.T) {
	d, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Start(); err != nil {
		t.Fatal(err)
	}
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Queue().Submit(ctx, testSpec(24)); err != ErrStopped {
		t.Errorf("submit after stop: %v, want ErrStopped", err)
	}
	// Stopped storage answers ErrStopped too (not a panic).
	if _, _, err := d.Storage().Get(ctx, "deadbeef"); err != ErrStopped {
		t.Errorf("storage get after stop: %v, want ErrStopped", err)
	}
}

// TestLoadTestSmoke drives the two-phase load test against a tiny
// self-hosted daemon: the dedup invariant holds and the hot phase hits
// the cache.
func TestLoadTestSmoke(t *testing.T) {
	d := startDaemon(t, Config{Shards: 4})
	res, err := RunLoadTest(NewClient(d.BaseURL()), LoadTestConfig{
		Clients: 4, ColdSpecs: 3, HotSpecs: 2, Requests: 10,
		Duration: 120, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ColdSimulated != int64(res.UniqueSpecs) {
		t.Errorf("cold phase simulated %d, want %d", res.ColdSimulated, res.UniqueSpecs)
	}
	if res.HotRequests != 4*10 {
		t.Errorf("hot requests = %d, want 40", res.HotRequests)
	}
	if res.HitRate <= 0.5 {
		t.Errorf("hit rate %.2f, want mostly warm", res.HitRate)
	}
	if res.WarmP99MS <= 0 {
		t.Error("warm p99 not measured")
	}
	if res.Summary() == "" {
		t.Error("empty summary")
	}
}
