package service

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"repro/internal/scenario"
)

// Backend abstracts the result store the storage module serves. The
// on-disk content-addressed scenario.Store is the canonical backend; an
// in-memory backend ships for tests and ephemeral daemons; RemoteBackend
// fronts either with a shared tier on another scenariod. Every method
// takes a context: the storage module derives a per-request deadline
// before each call, so a backend that does I/O (disk, network) can be
// cancelled instead of wedging the serving goroutine.
//
// Backends are accessed from the storage module's single goroutine, so
// implementations need no internal locking for daemon use — but the
// in-memory backend locks anyway, because tests hit backends directly.
type Backend interface {
	// Name identifies the backend in listings and stats.
	Name() string
	// Get returns the outcome stored under a content key (ok=false on a
	// miss).
	Get(ctx context.Context, key string) (*scenario.Outcome, bool, error)
	// Put persists a spec's outcome under its content key.
	Put(ctx context.Context, spec scenario.Spec, out *scenario.Outcome) error
	// List inspects every stored cell, sorted by key.
	List(ctx context.Context) ([]scenario.CellInfo, error)
	// Len reports the number of stored cells.
	Len(ctx context.Context) (int, error)
}

// GCBackend is the optional eviction hook: backends that can trim
// themselves to a footprint cap implement it, and the storage module
// runs a pass after every Put when caps are configured.
type GCBackend interface {
	GC(ctx context.Context, cfg scenario.GCConfig) (scenario.GCResult, error)
}

// Fetcher is the optional read-through hook: a backend that can resolve
// a miss by handing the spec to another tier (RemoteBackend delegates
// the simulation to its remote daemon) implements it. The queue's
// workers fetch instead of getting, so a miss on a tiered daemon costs
// the fleet one simulation wherever the key lands; plain backends fall
// back to Get.
type Fetcher interface {
	Fetch(ctx context.Context, spec scenario.Spec, key string) (*scenario.Outcome, bool, error)
}

// StoreBackend serves an on-disk content-addressed scenario.Store.
type StoreBackend struct {
	st *scenario.Store
}

// OpenStoreBackend opens (creating if needed) a store-backed backend
// rooted at dir.
func OpenStoreBackend(dir string) (*StoreBackend, error) {
	st, err := scenario.OpenStore(dir)
	if err != nil {
		return nil, err
	}
	return &StoreBackend{st: st}, nil
}

// NewStoreBackend wraps an already-open store.
func NewStoreBackend(st *scenario.Store) *StoreBackend { return &StoreBackend{st: st} }

// Name identifies the backend as the store directory.
func (b *StoreBackend) Name() string { return "store:" + b.st.Dir() }

// Get reads a cell by key.
func (b *StoreBackend) Get(_ context.Context, key string) (*scenario.Outcome, bool, error) {
	return b.st.GetKey(key)
}

// Put persists a cell (atomic temp-file + rename, see scenario.Store).
func (b *StoreBackend) Put(_ context.Context, spec scenario.Spec, out *scenario.Outcome) error {
	return b.st.Put(spec, out)
}

// List inspects the store.
func (b *StoreBackend) List(context.Context) ([]scenario.CellInfo, error) { return b.st.List() }

// Len counts the cells.
func (b *StoreBackend) Len(context.Context) (int, error) { return b.st.Len() }

// GC trims the store to the caps (oldest mtime first, key tiebreak).
func (b *StoreBackend) GC(_ context.Context, cfg scenario.GCConfig) (scenario.GCResult, error) {
	return b.st.GC(cfg)
}

// memCell is one in-memory cell: the encoded entry (so List can report a
// size comparable to the on-disk backend) plus the decoded outcome.
type memCell struct {
	spec scenario.Spec
	out  *scenario.Outcome
	size int64
	seq  int64 // insertion order, the in-memory analog of mtime
}

// MemBackend is the in-memory backend: same contract as StoreBackend,
// nothing on disk. Eviction order replaces the store's mtime with the
// insertion sequence (oldest insert first, key tiebreak on re-puts that
// keep the original sequence), which is deterministic per process.
type MemBackend struct {
	mu    sync.Mutex
	cells map[string]*memCell
	seq   int64
}

// NewMemBackend builds an empty in-memory backend.
func NewMemBackend() *MemBackend {
	return &MemBackend{cells: make(map[string]*memCell)}
}

// Name identifies the backend.
func (b *MemBackend) Name() string { return "mem" }

// Get returns the outcome stored under key.
func (b *MemBackend) Get(_ context.Context, key string) (*scenario.Outcome, bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	c, ok := b.cells[key]
	if !ok {
		return nil, false, nil
	}
	return c.out, true, nil
}

// Put stores the outcome under the spec's content key. A re-put of an
// existing key refreshes the payload but keeps the original insertion
// sequence, mirroring how the disk backend's key identity is stable.
func (b *MemBackend) Put(_ context.Context, spec scenario.Spec, out *scenario.Outcome) error {
	key, err := scenario.Key(spec)
	if err != nil {
		return err
	}
	enc, err := json.Marshal(struct {
		Spec    scenario.Spec     `json:"spec"`
		Outcome *scenario.Outcome `json:"outcome"`
	}{spec, out})
	if err != nil {
		return fmt.Errorf("service: encoding mem cell %s: %w", key, err)
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	seq := b.seq
	if old, ok := b.cells[key]; ok {
		seq = old.seq
	} else {
		b.seq++
	}
	b.cells[key] = &memCell{spec: spec, out: out, size: int64(len(enc)), seq: seq}
	return nil
}

// List inspects the cells, sorted by key.
func (b *MemBackend) List(context.Context) ([]scenario.CellInfo, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	infos := make([]scenario.CellInfo, 0, len(b.cells))
	for key, c := range b.cells {
		infos = append(infos, scenario.CellInfo{
			Key:   key,
			Kind:  c.spec.Kind,
			Name:  c.spec.Name,
			Units: len(c.out.Units),
			Size:  c.size,
		})
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Key < infos[j].Key })
	return infos, nil
}

// Len counts the cells.
func (b *MemBackend) Len(context.Context) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.cells), nil
}

// GC trims the backend to the caps: oldest insertion first, key as the
// tiebreaker — the same deterministic contract as Store.GC with the
// insertion sequence standing in for the file mtime.
func (b *MemBackend) GC(_ context.Context, cfg scenario.GCConfig) (scenario.GCResult, error) {
	var res scenario.GCResult
	if !cfg.Enabled() {
		return res, fmt.Errorf("service: GC needs at least one cap (max_bytes or max_cells)")
	}
	if cfg.MaxBytes < 0 || cfg.MaxCells < 0 {
		return res, fmt.Errorf("service: negative GC cap")
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	type cand struct {
		key  string
		size int64
		seq  int64
	}
	cands := make([]cand, 0, len(b.cells))
	var total int64
	for key, c := range b.cells {
		cands = append(cands, cand{key: key, size: c.size, seq: c.seq})
		total += c.size
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].seq != cands[j].seq {
			return cands[i].seq < cands[j].seq
		}
		return cands[i].key < cands[j].key
	})
	remaining := len(cands)
	over := func() bool {
		return (cfg.MaxCells > 0 && remaining > cfg.MaxCells) ||
			(cfg.MaxBytes > 0 && total > cfg.MaxBytes)
	}
	for _, c := range cands {
		if !over() {
			break
		}
		delete(b.cells, c.key)
		res.Evicted = append(res.Evicted, c.key)
		res.BytesFreed += c.size
		total -= c.size
		remaining--
	}
	res.Remaining = remaining
	res.RemainingBytes = total
	return res, nil
}
