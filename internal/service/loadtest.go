package service

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/scenario"
	"repro/internal/units"
)

// Load test. The driver exercises a running daemon the way a sweep
// client fleet would: a cold phase populates the cache with a set of
// unique specs (and asserts the singleflight invariant — exactly one
// simulation per unique spec, no matter how many clients raced), then a
// hot phase hammers a working set of warm keys mixed with a trickle of
// fresh ones and measures what the paper's experiment loop actually
// feels: warm-key submit latency (p50/p99/max) and the cache hit rate.

// LoadTestConfig shapes one load-test run.
type LoadTestConfig struct {
	// Clients is the number of concurrent clients (the k in the report).
	Clients int `json:"clients"`
	// ColdSpecs is the unique spec population submitted in the cold phase.
	ColdSpecs int `json:"cold_specs"`
	// HotSpecs is the size of the hot working set (a prefix of the cold
	// population) the hot phase draws from.
	HotSpecs int `json:"hot_specs"`
	// Requests is the number of hot-phase requests per client.
	Requests int `json:"requests_per_client"`
	// HotFraction is the probability a hot-phase request draws from the
	// hot set; the rest submit fresh, never-seen specs. Defaults to 0.95.
	HotFraction float64 `json:"hot_fraction"`
	// Duration is each spec's simulated horizon (seconds). Defaults to
	// 900 — long enough to be real work, short enough to load-test with.
	Duration units.Seconds `json:"duration_s"`
	// Seed drives the spec population and each client's request mix.
	Seed int64 `json:"seed"`
}

// withDefaults fills the zero fields.
func (c LoadTestConfig) withDefaults() LoadTestConfig {
	if c.Clients == 0 {
		c.Clients = 8
	}
	if c.ColdSpecs == 0 {
		c.ColdSpecs = 24
	}
	if c.HotSpecs == 0 || c.HotSpecs > c.ColdSpecs {
		c.HotSpecs = c.ColdSpecs / 2
		if c.HotSpecs == 0 {
			c.HotSpecs = 1
		}
	}
	if c.Requests == 0 {
		c.Requests = 50
	}
	if c.HotFraction == 0 {
		c.HotFraction = 0.95
	}
	if c.Duration == 0 {
		c.Duration = 900
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// LoadTestResult is the committed report of one run.
type LoadTestResult struct {
	Config LoadTestConfig `json:"config"`

	// Cold phase: populate the cache, assert the dedup invariant.
	ColdRequests int     `json:"cold_requests"`
	ColdWallMS   float64 `json:"cold_wall_ms"`
	ColdP50MS    float64 `json:"cold_p50_ms"`
	ColdP99MS    float64 `json:"cold_p99_ms"`
	UniqueSpecs  int     `json:"unique_specs"`
	// ColdSimulated is the daemon-side simulation count after the cold
	// phase; the invariant is ColdSimulated == UniqueSpecs.
	ColdSimulated int64 `json:"cold_simulated"`
	ColdCoalesced int64 `json:"cold_coalesced"`
	ColdHits      int64 `json:"cold_cache_hits"`

	// Hot phase: warm-key latency and hit rate. The percentiles cover
	// warm-key requests only, so the trickle of fresh specs (reported as
	// FreshRequests) cannot masquerade as cache latency.
	HotRequests   int     `json:"hot_requests"`
	WarmRequests  int     `json:"warm_requests"`
	FreshRequests int     `json:"fresh_requests"`
	HotWallMS     float64 `json:"hot_wall_ms"`
	WarmP50MS     float64 `json:"warm_p50_ms"`
	WarmP99MS     float64 `json:"warm_p99_ms"`
	WarmMaxMS     float64 `json:"warm_max_ms"`
	HitRate       float64 `json:"hit_rate"`
	Throughput    float64 `json:"hot_requests_per_s"`

	// Daemon-side accounting after both phases.
	Queue   QueueStats   `json:"queue"`
	Storage StorageStats `json:"storage"`
}

// ltRequest is one planned request: the spec plus whether the plan
// expects it warm (drawn from the cached working set).
type ltRequest struct {
	spec scenario.Spec
	warm bool
}

// loadTestSpec builds the i-th unique spec of a population. The seed is
// the only varying field, so every spec costs the same simulation work
// and the content keys are guaranteed distinct.
func loadTestSpec(cfg LoadTestConfig, i int) scenario.Spec {
	return scenario.Spec{
		Kind:     scenario.KindSingle,
		Name:     fmt.Sprintf("loadtest-%04d", i),
		Duration: cfg.Duration,
		Jobs: []scenario.JobSpec{{
			Workload: scenario.FactoryRef{
				Name:   "noisy-square",
				Seed:   cfg.Seed + int64(i),
				Params: scenario.Params{"period": 300, "sigma": 0.05},
			},
			Policy: scenario.FactoryRef{Name: "full"},
		}},
	}
}

// percentileMS reads the p-quantile (0 < p <= 1) out of a sorted
// duration slice, in milliseconds.
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}

// fanOut runs each client's planned requests on its own goroutine (all
// sharing one HTTP client), timing each submit. It returns the sorted
// warm- and fresh-request latencies and the phase wall time; the first
// submit or job error aborts the phase.
func fanOut(c *Client, clients int, plan func(client int) []ltRequest) (warm, fresh []time.Duration, wall time.Duration, err error) {
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	start := time.Now()
	for client := 0; client < clients; client++ {
		wg.Add(1)
		go func(client int) {
			defer wg.Done()
			var w, f []time.Duration
			for _, req := range plan(client) {
				t0 := time.Now()
				st, rerr := c.Submit(context.Background(), req.spec, true)
				lat := time.Since(t0)
				if rerr == nil && st.State != StateDone {
					rerr = fmt.Errorf("key %s finished %s: %s", st.Key, st.State, st.Error)
				}
				if rerr != nil {
					mu.Lock()
					errs = append(errs, fmt.Errorf("client %d: %w", client, rerr))
					mu.Unlock()
					return
				}
				if req.warm {
					w = append(w, lat)
				} else {
					f = append(f, lat)
				}
			}
			mu.Lock()
			warm = append(warm, w...)
			fresh = append(fresh, f...)
			mu.Unlock()
		}(client)
	}
	wg.Wait()
	wall = time.Since(start)
	if len(errs) > 0 {
		return nil, nil, wall, errs[0]
	}
	sort.Slice(warm, func(i, j int) bool { return warm[i] < warm[j] })
	sort.Slice(fresh, func(i, j int) bool { return fresh[i] < fresh[j] })
	return warm, fresh, wall, nil
}

// RunLoadTest drives a daemon through the two-phase workload and
// returns the report. The daemon should start empty: the dedup
// assertion counts simulations against the spec population, so a
// pre-warmed cache would under-count.
func RunLoadTest(c *Client, cfg LoadTestConfig) (*LoadTestResult, error) {
	cfg = cfg.withDefaults()
	res := &LoadTestResult{Config: cfg, UniqueSpecs: cfg.ColdSpecs}

	before, err := c.Stats(context.Background())
	if err != nil {
		return nil, fmt.Errorf("loadtest: reading initial stats: %w", err)
	}

	// Cold phase: every client walks the whole population — identical
	// specs race on purpose so the singleflight has to earn its keep —
	// each starting at a different offset to spread the contention.
	coldLats, _, coldWall, err := fanOut(c, cfg.Clients, func(client int) []ltRequest {
		reqs := make([]ltRequest, cfg.ColdSpecs)
		for i := range reqs {
			reqs[i] = ltRequest{spec: loadTestSpec(cfg, (i+client*7)%cfg.ColdSpecs), warm: true}
		}
		return reqs
	})
	if err != nil {
		return nil, fmt.Errorf("loadtest: cold phase: %w", err)
	}
	res.ColdRequests = len(coldLats)
	res.ColdWallMS = float64(coldWall) / float64(time.Millisecond)
	res.ColdP50MS = percentileMS(coldLats, 0.50)
	res.ColdP99MS = percentileMS(coldLats, 0.99)

	afterCold, err := c.Stats(context.Background())
	if err != nil {
		return nil, fmt.Errorf("loadtest: reading post-cold stats: %w", err)
	}
	res.ColdSimulated = afterCold.Queue.Simulated - before.Queue.Simulated
	res.ColdCoalesced = afterCold.Queue.Coalesced - before.Queue.Coalesced
	res.ColdHits = afterCold.Queue.CacheHits - before.Queue.CacheHits
	if res.ColdSimulated != int64(cfg.ColdSpecs) {
		return res, fmt.Errorf("loadtest: dedup invariant broken: %d unique specs but %d simulations",
			cfg.ColdSpecs, res.ColdSimulated)
	}

	// Hot phase: each client draws mostly from the warm working set, with
	// a trickle of fresh specs. Fresh indices are client-unique (past the
	// cold population), so a fresh draw is a genuine miss, not a race win.
	warmLats, freshLats, hotWall, err := fanOut(c, cfg.Clients, func(client int) []ltRequest {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(client)*1_000_003))
		reqs := make([]ltRequest, cfg.Requests)
		nextFresh := cfg.ColdSpecs + client*cfg.Requests
		for i := range reqs {
			if rng.Float64() < cfg.HotFraction {
				reqs[i] = ltRequest{spec: loadTestSpec(cfg, rng.Intn(cfg.HotSpecs)), warm: true}
			} else {
				reqs[i] = ltRequest{spec: loadTestSpec(cfg, nextFresh)}
				nextFresh++
			}
		}
		return reqs
	})
	if err != nil {
		return nil, fmt.Errorf("loadtest: hot phase: %w", err)
	}
	res.WarmRequests = len(warmLats)
	res.FreshRequests = len(freshLats)
	res.HotRequests = len(warmLats) + len(freshLats)
	res.HotWallMS = float64(hotWall) / float64(time.Millisecond)
	res.WarmP50MS = percentileMS(warmLats, 0.50)
	res.WarmP99MS = percentileMS(warmLats, 0.99)
	res.WarmMaxMS = percentileMS(warmLats, 1.00)
	if hotWall > 0 {
		res.Throughput = float64(res.HotRequests) / hotWall.Seconds()
	}

	after, err := c.Stats(context.Background())
	if err != nil {
		return nil, fmt.Errorf("loadtest: reading final stats: %w", err)
	}
	hotSubmitted := after.Queue.Submitted - afterCold.Queue.Submitted
	hotHits := after.Queue.CacheHits - afterCold.Queue.CacheHits
	if hotSubmitted > 0 {
		res.HitRate = float64(hotHits) / float64(hotSubmitted)
	}
	res.Queue = after.Queue
	res.Storage = after.Storage
	return res, nil
}

// Summary renders the report as the human-readable block the CLI prints.
func (r *LoadTestResult) Summary() string {
	return fmt.Sprintf(
		"loadtest: clients=%d unique=%d hot_set=%d\n"+
			"  cold: %d reqs in %.0f ms, p50 %.1f ms, p99 %.1f ms, simulated %d (coalesced %d, hits %d)\n"+
			"  hot:  %d reqs in %.0f ms (%.0f req/s), warm p50 %.2f ms, p99 %.2f ms, max %.2f ms\n"+
			"  hit rate %.1f%% (%d warm / %d fresh)",
		r.Config.Clients, r.UniqueSpecs, r.Config.HotSpecs,
		r.ColdRequests, r.ColdWallMS, r.ColdP50MS, r.ColdP99MS,
		r.ColdSimulated, r.ColdCoalesced, r.ColdHits,
		r.HotRequests, r.HotWallMS, r.Throughput,
		r.WarmP50MS, r.WarmP99MS, r.WarmMaxMS,
		100*r.HitRate, r.WarmRequests, r.FreshRequests)
}
