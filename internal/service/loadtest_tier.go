package service

import (
	"context"
	"fmt"
	"time"
)

// Two-tier load test. A leader daemon owns the shared tier; a follower
// daemon runs with `-remote` pointed at it. The driver measures what a
// fleet worker joining a warm sweep actually feels: phase 1 warms the
// leader (every unique spec simulated exactly once, on the leader);
// phase 2 hits the cold follower, whose every key must be served
// read-through from the leader — the follower simulates zero ticks —
// and reports the remote-hit latency; phase 3 re-hits the follower,
// now warm, and reports the local-hit latency the write-back bought.

// TwoTierResult is the committed report of one two-tier run.
type TwoTierResult struct {
	Config LoadTestConfig `json:"config"`

	// Phase 1: warm the leader.
	LeaderRequests  int     `json:"leader_requests"`
	LeaderWallMS    float64 `json:"leader_wall_ms"`
	LeaderSimulated int64   `json:"leader_simulated"`

	// Phase 2: cold follower — every key leader-owned, served remote.
	RemoteRequests   int     `json:"remote_requests"`
	RemoteWallMS     float64 `json:"remote_wall_ms"`
	RemoteP50MS      float64 `json:"remote_hit_p50_ms"`
	RemoteP99MS      float64 `json:"remote_hit_p99_ms"`
	RemoteMaxMS      float64 `json:"remote_hit_max_ms"`
	RemoteHits       int64   `json:"remote_hits"`
	FollowerSimTicks int64   `json:"follower_sim_ticks"`
	FollowerSims     int64   `json:"follower_simulated"`

	// Phase 3: warm follower — write-backs make every key local.
	LocalRequests int     `json:"local_requests"`
	LocalWallMS   float64 `json:"local_wall_ms"`
	LocalP50MS    float64 `json:"local_hit_p50_ms"`
	LocalP99MS    float64 `json:"local_hit_p99_ms"`
	LocalHits     int64   `json:"local_hits"`

	// FleetSimulated is leader + follower simulations across the whole
	// run; the tiered invariant is FleetSimulated == UniqueSpecs.
	UniqueSpecs    int          `json:"unique_specs"`
	FleetSimulated int64        `json:"fleet_simulated"`
	FollowerTier   *TierStats   `json:"follower_tier,omitempty"`
	FollowerQueue  QueueStats   `json:"follower_queue"`
	LeaderQueue    QueueStats   `json:"leader_queue"`
	Storage        StorageStats `json:"follower_storage"`
}

// RunTwoTierLoadTest drives a leader/follower pair through the
// three-phase workload. Both daemons should start empty; the follower
// must be configured with the leader as its remote tier.
func RunTwoTierLoadTest(leader, follower *Client, cfg LoadTestConfig) (*TwoTierResult, error) {
	cfg = cfg.withDefaults()
	res := &TwoTierResult{Config: cfg, UniqueSpecs: cfg.ColdSpecs}
	ctx := context.Background()

	lBefore, err := leader.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("twotier: reading leader stats: %w", err)
	}

	population := func(client int) []ltRequest {
		reqs := make([]ltRequest, cfg.ColdSpecs)
		for i := range reqs {
			reqs[i] = ltRequest{spec: loadTestSpec(cfg, (i+client*7)%cfg.ColdSpecs), warm: true}
		}
		return reqs
	}

	// Phase 1: warm the leader.
	leadLats, _, leadWall, err := fanOut(leader, cfg.Clients, population)
	if err != nil {
		return nil, fmt.Errorf("twotier: leader warm phase: %w", err)
	}
	res.LeaderRequests = len(leadLats)
	res.LeaderWallMS = float64(leadWall) / float64(time.Millisecond)

	lWarm, err := leader.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("twotier: reading post-warm leader stats: %w", err)
	}
	res.LeaderSimulated = lWarm.Queue.Simulated - lBefore.Queue.Simulated
	if res.LeaderSimulated != int64(cfg.ColdSpecs) {
		return res, fmt.Errorf("twotier: leader simulated %d, want %d (dedup invariant)",
			res.LeaderSimulated, cfg.ColdSpecs)
	}

	// Phase 2: cold follower. Every key is leader-owned, so every
	// submit must be a read-through remote hit: the follower's engine
	// probe must not move. The tick-probe baseline is taken here, after
	// the warm-up, because the probe is process-global — when both
	// daemons share a process (the self-hosted loadtest), the leader's
	// phase-1 simulations would otherwise land in the follower's delta.
	fBefore, err := follower.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("twotier: reading follower stats: %w", err)
	}
	remoteLats, _, remoteWall, err := fanOut(follower, cfg.Clients, population)
	if err != nil {
		return nil, fmt.Errorf("twotier: cold follower phase: %w", err)
	}
	res.RemoteRequests = len(remoteLats)
	res.RemoteWallMS = float64(remoteWall) / float64(time.Millisecond)
	res.RemoteP50MS = percentileMS(remoteLats, 0.50)
	res.RemoteP99MS = percentileMS(remoteLats, 0.99)
	res.RemoteMaxMS = percentileMS(remoteLats, 1.00)

	fCold, err := follower.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("twotier: reading post-cold follower stats: %w", err)
	}
	res.FollowerSimTicks = fCold.SimTicks - fBefore.SimTicks
	res.FollowerSims = fCold.Queue.Simulated - fBefore.Queue.Simulated
	if res.FollowerSimTicks != 0 || res.FollowerSims != 0 {
		return res, fmt.Errorf("twotier: cold follower simulated %d ticks / %d runs for leader-owned keys, want 0/0",
			res.FollowerSimTicks, res.FollowerSims)
	}
	if fCold.Storage.Tier == nil {
		return res, fmt.Errorf("twotier: follower reports no tier stats — is it running with -remote?")
	}
	res.RemoteHits = fCold.Storage.Tier.RemoteHits

	// Phase 3: warm follower. Write-backs from phase 2 make every key a
	// local-tier hit; the remote-hit counter must not move again.
	localLats, _, localWall, err := fanOut(follower, cfg.Clients, population)
	if err != nil {
		return nil, fmt.Errorf("twotier: warm follower phase: %w", err)
	}
	res.LocalRequests = len(localLats)
	res.LocalWallMS = float64(localWall) / float64(time.Millisecond)
	res.LocalP50MS = percentileMS(localLats, 0.50)
	res.LocalP99MS = percentileMS(localLats, 0.99)

	fAfter, err := follower.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("twotier: reading final follower stats: %w", err)
	}
	lAfter, err := leader.Stats(ctx)
	if err != nil {
		return nil, fmt.Errorf("twotier: reading final leader stats: %w", err)
	}
	if fAfter.Storage.Tier != nil {
		res.FollowerTier = fAfter.Storage.Tier
		res.LocalHits = fAfter.Storage.Tier.LocalHits
		if fAfter.Storage.Tier.RemoteHits != res.RemoteHits {
			return res, fmt.Errorf("twotier: warm follower still fetched remotely (%d -> %d remote hits); write-back broken",
				res.RemoteHits, fAfter.Storage.Tier.RemoteHits)
		}
	}
	res.FleetSimulated = (lAfter.Queue.Simulated - lBefore.Queue.Simulated) +
		(fAfter.Queue.Simulated - fBefore.Queue.Simulated)
	if res.FleetSimulated != int64(cfg.ColdSpecs) {
		return res, fmt.Errorf("twotier: fleet simulated %d for %d unique specs", res.FleetSimulated, cfg.ColdSpecs)
	}
	res.FollowerQueue = fAfter.Queue
	res.LeaderQueue = lAfter.Queue
	res.Storage = fAfter.Storage
	return res, nil
}

// Summary renders the report as the human-readable block the CLI prints.
func (r *TwoTierResult) Summary() string {
	return fmt.Sprintf(
		"twotier: clients=%d unique=%d\n"+
			"  leader warm:   %d reqs in %.0f ms, simulated %d\n"+
			"  cold follower: %d reqs in %.0f ms, remote-hit p50 %.2f ms, p99 %.2f ms, max %.2f ms (remote hits %d, follower sim ticks %d)\n"+
			"  warm follower: %d reqs in %.0f ms, local-hit p50 %.2f ms, p99 %.2f ms\n"+
			"  fleet: %d simulations for %d unique specs",
		r.Config.Clients, r.UniqueSpecs,
		r.LeaderRequests, r.LeaderWallMS, r.LeaderSimulated,
		r.RemoteRequests, r.RemoteWallMS, r.RemoteP50MS, r.RemoteP99MS, r.RemoteMaxMS,
		r.RemoteHits, r.FollowerSimTicks,
		r.LocalRequests, r.LocalWallMS, r.LocalP50MS, r.LocalP99MS,
		r.FleetSimulated, r.UniqueSpecs)
}
