package service

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"repro/internal/scenario"
)

// Config assembles a scenario daemon.
type Config struct {
	// Addr is the HTTP listen address; "127.0.0.1:0" picks a free port.
	Addr string
	// StoreDir roots the on-disk cache tier; empty selects the in-memory
	// backend (ephemeral: the cache dies with the process).
	StoreDir string
	// Backend overrides the StoreDir/mem selection with a caller-built
	// backend.
	Backend Backend
	// Remote is the base URL of another scenariod to front as a shared
	// cache tier ("http://host:port"). When set, the local backend is
	// wrapped in a RemoteBackend: reads fall through to the remote on a
	// local miss, misses delegate the simulation to the remote's queue,
	// and puts write through. A down or slow remote degrades this daemon
	// to local-only — it never fails a submit.
	Remote string
	// RemoteTimeout bounds each remote call; zero selects the
	// RemoteBackend default (5s).
	RemoteTimeout time.Duration
	// RemoteSync makes puts block on the write-through instead of
	// queueing it to the background writer.
	RemoteSync bool
	// Shards is the queue worker count; 0 picks min(NumCPU, 4).
	Shards int
	// EngineWorkers caps each simulation's internal parallelism
	// (scenario.Spec.Workers; 0 = all cores).
	EngineWorkers int
	// MaxCells / MaxBytes cap the cache tier; after every Put the
	// storage module evicts oldest-first (see scenario.Store.GC). Zero
	// means unbounded.
	MaxCells int
	MaxBytes int64
}

// Daemon is the composed scenario service: storage, queue and API
// modules under one coordinator.
type Daemon struct {
	coord   *Coordinator
	storage *Storage
	queue   *Queue
	http    *HTTPServer
	backend Backend
}

// New builds and configures a daemon (no sockets or goroutines yet —
// Start owns those).
func New(cfg Config) (*Daemon, error) {
	backend := cfg.Backend
	if backend == nil {
		if cfg.StoreDir != "" {
			sb, err := OpenStoreBackend(cfg.StoreDir)
			if err != nil {
				return nil, err
			}
			backend = sb
		} else {
			backend = NewMemBackend()
		}
	}
	if cfg.Remote != "" {
		rc := NewClient(cfg.Remote, WithTimeout(cfg.RemoteTimeout))
		backend = NewRemoteBackend(backend, rc,
			RemoteTimeout(cfg.RemoteTimeout), RemoteSyncWrites(cfg.RemoteSync))
	}
	shards := cfg.Shards
	if shards == 0 {
		shards = runtime.NumCPU()
		if shards > 4 {
			shards = 4
		}
	}
	addr := cfg.Addr
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	d := &Daemon{backend: backend}
	d.storage = NewStorage(backend, scenario.GCConfig{MaxBytes: cfg.MaxBytes, MaxCells: cfg.MaxCells})
	d.queue = NewQueue(d.storage, shards, cfg.EngineWorkers)
	d.http = NewHTTPServer(addr, d.queue, d.storage)
	d.coord = NewCoordinator(d.storage, d.queue, d.http)
	if err := d.coord.Configure(); err != nil {
		return nil, err
	}
	return d, nil
}

// Start brings the modules up in dependency order (storage, queue,
// API); on failure everything already started is stopped.
func (d *Daemon) Start() error { return d.coord.Start() }

// Stop tears the modules down in reverse: the API stops accepting,
// the queue drains, storage serves the queue's final Puts, then closes.
// A closable backend (RemoteBackend's background writer) is closed
// last, after nothing can reach it.
func (d *Daemon) Stop() error {
	err := d.coord.Stop()
	if c, ok := d.backend.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// BaseURL returns the daemon's API root (valid after Start).
func (d *Daemon) BaseURL() string { return "http://" + d.http.ListenAddr() }

// BackendName identifies the storage backend for logs.
func (d *Daemon) BackendName() string { return d.backend.Name() }

// Shards reports the queue worker count.
func (d *Daemon) Shards() int { return d.queue.shards }

// Queue exposes the queue module (tests and in-process consumers).
func (d *Daemon) Queue() *Queue { return d.queue }

// Storage exposes the storage module (tests and in-process consumers).
func (d *Daemon) Storage() *Storage { return d.storage }

// String describes the daemon for startup logs.
func (d *Daemon) String() string {
	return fmt.Sprintf("scenariod backend=%s shards=%d", d.BackendName(), d.Shards())
}
