package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/scenario"
)

// HTTPServer is the API module. Endpoints:
//
//	POST /v1/scenarios        submit a Spec (JSON body) → JobStatus.
//	                          A spec whose cell is already stored
//	                          answers state=done cached=true with the
//	                          outcome attached — the warm path is one
//	                          round trip. ?wait=1 blocks until done.
//	PUT  /v1/scenarios/{key}  push an already-computed {spec, outcome}
//	                          cell (the tiered write-through verb); the
//	                          key must match the spec's content hash.
//	GET  /v1/scenarios        list stored cells + in-flight jobs
//	                          (mirrors `store ls`).
//	GET  /v1/scenarios/{key}  poll a key: job progress or the stored
//	                          outcome; 404 for unknown keys.
//	GET  /v1/stats            queue/storage/engine accounting.
//
// Error responses carry the apiError envelope: a human-readable `error`
// string (unchanged since PR 9, so old clients keep working) plus a
// stable machine-readable `code` (the Code* constants).
//
// Spec bodies are decoded strictly (unknown fields are a 400): a typoed
// field would otherwise silently drop out of the content hash and alias
// a different cell.
type HTTPServer struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// queue and storage are the modules the handlers call into.
	queue   *Queue
	storage *Storage
	// startTicks snapshots the engine tick probe at module start so
	// /v1/stats reports the daemon's own simulation work.
	startTicks int64
	startRuns  int64

	srv *http.Server
	ln  net.Listener
	mux *http.ServeMux
}

// NewHTTPServer builds the API module.
func NewHTTPServer(addr string, queue *Queue, storage *Storage) *HTTPServer {
	return &HTTPServer{Addr: addr, queue: queue, storage: storage}
}

// Name implements Module.
func (h *HTTPServer) Name() string { return "httpserver" }

// Configure validates the wiring and builds the route table (no socket
// yet — Start owns outside resources).
func (h *HTTPServer) Configure() error {
	if h.queue == nil || h.storage == nil {
		return fmt.Errorf("httpserver: nil queue or storage module")
	}
	if h.Addr == "" {
		return fmt.Errorf("httpserver: empty listen address")
	}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("POST /v1/scenarios", h.handleSubmit)
	h.mux.HandleFunc("GET /v1/scenarios", h.handleList)
	h.mux.HandleFunc("GET /v1/scenarios/{key}", h.handleGet)
	h.mux.HandleFunc("PUT /v1/scenarios/{key}", h.handlePush)
	h.mux.HandleFunc("GET /v1/stats", h.handleStats)
	h.srv = &http.Server{Handler: h.mux, ReadHeaderTimeout: 10 * time.Second}
	return nil
}

// Start binds the listener and serves in the background.
func (h *HTTPServer) Start() error {
	ln, err := net.Listen("tcp", h.Addr)
	if err != nil {
		return fmt.Errorf("httpserver: %w", err)
	}
	h.ln = ln
	h.startTicks = scenario.ProbeSimTicks()
	h.startRuns = scenario.ProbeRuns()
	go func() {
		// ErrServerClosed is the Shutdown path; anything else would have
		// surfaced to clients already.
		_ = h.srv.Serve(ln)
	}()
	return nil
}

// Stop drains in-flight requests and closes the listener.
func (h *HTTPServer) Stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return h.srv.Shutdown(ctx)
}

// ListenAddr returns the bound address (resolves ":0" to the real port).
// Only valid after Start.
func (h *HTTPServer) ListenAddr() string {
	if h.ln == nil {
		return h.Addr
	}
	return h.ln.Addr().String()
}

// apiError is the JSON error envelope. Error is the human-readable
// message (the PR 9 field, unchanged); Code is the stable
// machine-readable classification (the Code* constants).
type apiError struct {
	Error string `json:"error"`
	Code  string `json:"code,omitempty"`
}

// pushRequest is the PUT /v1/scenarios/{key} body.
type pushRequest struct {
	Spec    scenario.Spec     `json:"spec"`
	Outcome *scenario.Outcome `json:"outcome"`
}

// ListResponse is the GET /v1/scenarios shape.
type ListResponse struct {
	// Cells are the stored outcomes, sorted by key.
	Cells []CellInfo `json:"cells"`
	// Inflight are the queued/running/failed jobs, sorted by key.
	Inflight []JobStatus `json:"inflight"`
}

// CellInfo mirrors scenario.CellInfo with JSON tags for the API.
type CellInfo struct {
	Key     string `json:"key"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Units   int    `json:"units"`
	Version int    `json:"version"`
	Size    int64  `json:"size"`
}

// StatsResponse is the GET /v1/stats shape.
type StatsResponse struct {
	Queue   QueueStats   `json:"queue"`
	Storage StorageStats `json:"storage"`
	// SimTicks / SimRuns are the engine work this daemon performed since
	// start (scenario probe deltas): a warm resubmission adds zero.
	SimTicks int64 `json:"sim_ticks"`
	SimRuns  int64 `json:"sim_runs"`
}

// writeJSON emits one response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// writeError emits one error envelope with its stable code.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, apiError{Error: msg, Code: code})
}

// submitErr maps a queue submit error onto status + code.
func submitErr(w http.ResponseWriter, err error) {
	if err == ErrStopped {
		writeError(w, http.StatusServiceUnavailable, CodeShuttingDown, err.Error())
		return
	}
	writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
}

// handleSubmit is POST /v1/scenarios.
func (h *HTTPServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var spec scenario.Spec
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, fmt.Sprintf("decoding spec: %v", err))
		return
	}
	st, err := h.queue.Submit(r.Context(), spec)
	if err != nil {
		submitErr(w, err)
		return
	}
	if r.URL.Query().Get("wait") == "1" && st.State != StateDone {
		if ws, ok, err := h.queue.Wait(r.Context(), st.Key); err == nil && ok {
			st = ws
		}
	}
	code := http.StatusOK
	if st.State == StateQueued || st.State == StateRunning {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

// handlePush is PUT /v1/scenarios/{key}: store an already-computed cell
// (tiered daemons replicating into the shared tier). The key in the URL
// must match the spec's content hash — content addressing makes pushes
// self-validating.
func (h *HTTPServer) handlePush(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 64<<20))
	dec.DisallowUnknownFields()
	var pr pushRequest
	if err := dec.Decode(&pr); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, fmt.Sprintf("decoding push: %v", err))
		return
	}
	if pr.Outcome == nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, "push without outcome")
		return
	}
	if err := pr.Spec.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, fmt.Sprintf("invalid spec: %v", err))
		return
	}
	key, err := scenario.Key(pr.Spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec, err.Error())
		return
	}
	if got := r.PathValue("key"); got != key {
		writeError(w, http.StatusBadRequest, CodeInvalidSpec,
			fmt.Sprintf("pushed key %q does not match spec content key %q", got, key))
		return
	}
	if err := h.storage.Put(r.Context(), pr.Spec, pr.Outcome); err != nil {
		if err == ErrStopped {
			writeError(w, http.StatusServiceUnavailable, CodeShuttingDown, err.Error())
			return
		}
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, JobStatus{Key: key, State: StateDone, Cached: true})
}

// handleGet is GET /v1/scenarios/{key}.
func (h *HTTPServer) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	st, ok, err := h.queue.Status(r.Context(), key)
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	if !ok {
		// A miss while the shared tier is unreachable gets the degraded
		// code: the key may exist fleet-wide, this daemon just cannot see
		// it right now. IsNotFound matches both.
		code := CodeNotFound
		if ss, serr := h.storage.Stats(r.Context()); serr == nil &&
			ss.Tier != nil && ss.Tier.BreakerState != "closed" {
			code = CodeRemoteDegraded
		}
		writeError(w, http.StatusNotFound, code, fmt.Sprintf("unknown scenario key %q", key))
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleList is GET /v1/scenarios.
func (h *HTTPServer) handleList(w http.ResponseWriter, r *http.Request) {
	infos, err := h.storage.List(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	resp := ListResponse{Cells: make([]CellInfo, len(infos)), Inflight: h.queue.Inflight()}
	for i, info := range infos {
		resp.Cells[i] = CellInfo{
			Key: info.Key, Kind: info.Kind, Name: info.Name,
			Units: info.Units, Version: info.Version, Size: info.Size,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats is GET /v1/stats.
func (h *HTTPServer) handleStats(w http.ResponseWriter, r *http.Request) {
	ss, err := h.storage.Stats(r.Context())
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeInternal, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Queue:    h.queue.Stats(),
		Storage:  ss,
		SimTicks: scenario.ProbeSimTicks() - h.startTicks,
		SimRuns:  scenario.ProbeRuns() - h.startRuns,
	})
}
