package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"time"

	"repro/internal/scenario"
)

// HTTPServer is the API module. Endpoints:
//
//	POST /v1/scenarios        submit a Spec (JSON body) → JobStatus.
//	                          A spec whose cell is already stored
//	                          answers state=done cached=true with the
//	                          outcome attached — the warm path is one
//	                          round trip. ?wait=1 blocks until done.
//	GET  /v1/scenarios        list stored cells + in-flight jobs
//	                          (mirrors `store ls`).
//	GET  /v1/scenarios/{key}  poll a key: job progress or the stored
//	                          outcome; 404 for unknown keys.
//	GET  /v1/stats            queue/storage/engine accounting.
//
// Spec bodies are decoded strictly (unknown fields are a 400): a typoed
// field would otherwise silently drop out of the content hash and alias
// a different cell.
type HTTPServer struct {
	// Addr is the listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// queue and storage are the modules the handlers call into.
	queue   *Queue
	storage *Storage
	// startTicks snapshots the engine tick probe at module start so
	// /v1/stats reports the daemon's own simulation work.
	startTicks int64
	startRuns  int64

	srv *http.Server
	ln  net.Listener
	mux *http.ServeMux
}

// NewHTTPServer builds the API module.
func NewHTTPServer(addr string, queue *Queue, storage *Storage) *HTTPServer {
	return &HTTPServer{Addr: addr, queue: queue, storage: storage}
}

// Name implements Module.
func (h *HTTPServer) Name() string { return "httpserver" }

// Configure validates the wiring and builds the route table (no socket
// yet — Start owns outside resources).
func (h *HTTPServer) Configure() error {
	if h.queue == nil || h.storage == nil {
		return fmt.Errorf("httpserver: nil queue or storage module")
	}
	if h.Addr == "" {
		return fmt.Errorf("httpserver: empty listen address")
	}
	h.mux = http.NewServeMux()
	h.mux.HandleFunc("POST /v1/scenarios", h.handleSubmit)
	h.mux.HandleFunc("GET /v1/scenarios", h.handleList)
	h.mux.HandleFunc("GET /v1/scenarios/{key}", h.handleGet)
	h.mux.HandleFunc("GET /v1/stats", h.handleStats)
	h.srv = &http.Server{Handler: h.mux, ReadHeaderTimeout: 10 * time.Second}
	return nil
}

// Start binds the listener and serves in the background.
func (h *HTTPServer) Start() error {
	ln, err := net.Listen("tcp", h.Addr)
	if err != nil {
		return fmt.Errorf("httpserver: %w", err)
	}
	h.ln = ln
	h.startTicks = scenario.ProbeSimTicks()
	h.startRuns = scenario.ProbeRuns()
	go func() {
		// ErrServerClosed is the Shutdown path; anything else would have
		// surfaced to clients already.
		_ = h.srv.Serve(ln)
	}()
	return nil
}

// Stop drains in-flight requests and closes the listener.
func (h *HTTPServer) Stop() error {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return h.srv.Shutdown(ctx)
}

// ListenAddr returns the bound address (resolves ":0" to the real port).
// Only valid after Start.
func (h *HTTPServer) ListenAddr() string {
	if h.ln == nil {
		return h.Addr
	}
	return h.ln.Addr().String()
}

// apiError is the JSON error envelope.
type apiError struct {
	Error string `json:"error"`
}

// ListResponse is the GET /v1/scenarios shape.
type ListResponse struct {
	// Cells are the stored outcomes, sorted by key.
	Cells []CellInfo `json:"cells"`
	// Inflight are the queued/running/failed jobs, sorted by key.
	Inflight []JobStatus `json:"inflight"`
}

// CellInfo mirrors scenario.CellInfo with JSON tags for the API.
type CellInfo struct {
	Key     string `json:"key"`
	Kind    string `json:"kind"`
	Name    string `json:"name"`
	Units   int    `json:"units"`
	Version int    `json:"version"`
	Size    int64  `json:"size"`
}

// StatsResponse is the GET /v1/stats shape.
type StatsResponse struct {
	Queue   QueueStats   `json:"queue"`
	Storage StorageStats `json:"storage"`
	// SimTicks / SimRuns are the engine work this daemon performed since
	// start (scenario probe deltas): a warm resubmission adds zero.
	SimTicks int64 `json:"sim_ticks"`
	SimRuns  int64 `json:"sim_runs"`
}

// writeJSON emits one response.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	_ = enc.Encode(v)
}

// handleSubmit is POST /v1/scenarios.
func (h *HTTPServer) handleSubmit(w http.ResponseWriter, r *http.Request) {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	dec.DisallowUnknownFields()
	var spec scenario.Spec
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: fmt.Sprintf("decoding spec: %v", err)})
		return
	}
	st, err := h.queue.Submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if err == ErrStopped {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, apiError{Error: err.Error()})
		return
	}
	if r.URL.Query().Get("wait") == "1" && st.State != StateDone {
		if ws, ok, err := h.queue.Wait(st.Key); err == nil && ok {
			st = ws
		}
	}
	code := http.StatusOK
	if st.State == StateQueued || st.State == StateRunning {
		code = http.StatusAccepted
	}
	writeJSON(w, code, st)
}

// handleGet is GET /v1/scenarios/{key}.
func (h *HTTPServer) handleGet(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	st, ok, err := h.queue.Status(key)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: fmt.Sprintf("unknown scenario key %q", key)})
		return
	}
	writeJSON(w, http.StatusOK, st)
}

// handleList is GET /v1/scenarios.
func (h *HTTPServer) handleList(w http.ResponseWriter, r *http.Request) {
	infos, err := h.storage.List()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	resp := ListResponse{Cells: make([]CellInfo, len(infos)), Inflight: h.queue.Inflight()}
	for i, info := range infos {
		resp.Cells[i] = CellInfo{
			Key: info.Key, Kind: info.Kind, Name: info.Name,
			Units: info.Units, Version: info.Version, Size: info.Size,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleStats is GET /v1/stats.
func (h *HTTPServer) handleStats(w http.ResponseWriter, r *http.Request) {
	ss, err := h.storage.Stats()
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, StatsResponse{
		Queue:    h.queue.Stats(),
		Storage:  ss,
		SimTicks: scenario.ProbeSimTicks() - h.startTicks,
		SimRuns:  scenario.ProbeRuns() - h.startRuns,
	})
}
