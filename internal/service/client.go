package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/scenario"
)

// Stable machine-readable error codes carried in the apiError envelope
// (and surfaced on StatusError.APICode). Old clients that only read the
// `error` string keep working; new clients should branch on these
// instead of matching message text.
const (
	// CodeNotFound: the scenario key is neither in flight nor stored.
	CodeNotFound = "not_found"
	// CodeInvalidSpec: the submitted spec failed decoding or validation.
	CodeInvalidSpec = "invalid_spec"
	// CodeShuttingDown: the daemon is stopping and no longer accepts work.
	CodeShuttingDown = "shutting_down"
	// CodeRemoteDegraded: the key was not found locally and the shared
	// remote tier could not be consulted (circuit breaker open) — the key
	// may exist fleet-wide.
	CodeRemoteDegraded = "remote_degraded"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// Client talks to a scenariod instance. It is safe for concurrent use
// (the load-test driver shares one client across its workers so the
// underlying http.Transport pools connections).
type Client struct {
	base string
	hc   *http.Client
	// retries is the total attempt budget per call (1 = no retry);
	// backoff seeds the jittered exponential delay between attempts.
	retries int
	backoff time.Duration
}

// ClientOption shapes a Client.
type ClientOption func(*Client)

// WithTimeout bounds each HTTP round trip (the whole call when no
// per-call context deadline is tighter). The default is 5 minutes —
// byte-identical to the pre-option client.
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) {
		if d > 0 {
			c.hc.Timeout = d
		}
	}
}

// WithRetry retries transport errors and 5xx responses up to n extra
// attempts with jittered exponential backoff from base. 4xx responses
// are never retried (they are deterministic), and a cancelled context
// stops the loop. The default is no retry.
func WithRetry(n int, base time.Duration) ClientOption {
	return func(c *Client) {
		if n > 0 {
			c.retries = 1 + n
		}
		if base > 0 {
			c.backoff = base
		}
	}
}

// NewClient builds a client for a daemon base URL ("http://host:port").
// Without options the behavior is the historical one: 5-minute timeout,
// no retries.
func NewClient(base string, opts ...ClientOption) *Client {
	c := &Client{
		base:    base,
		hc:      &http.Client{Timeout: 5 * time.Minute},
		retries: 1,
		backoff: 50 * time.Millisecond,
	}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Base returns the daemon base URL the client points at.
func (c *Client) Base() string { return c.base }

// StatusError is a non-2xx API response. Code is the HTTP status;
// APICode is the stable machine-readable envelope code (empty when the
// server predates codes or the body was not an envelope).
type StatusError struct {
	Code    int
	APICode string
	Message string
}

func (e *StatusError) Error() string {
	if e.APICode != "" {
		return fmt.Sprintf("scenariod: HTTP %d (%s): %s", e.Code, e.APICode, e.Message)
	}
	return fmt.Sprintf("scenariod: HTTP %d: %s", e.Code, e.Message)
}

// IsNotFound reports whether err says the scenario key is unknown. It
// matches the stable envelope code first (including the degraded-read
// variant, which is still "not found here") and falls back to the raw
// 404 status for servers that predate codes.
func IsNotFound(err error) bool {
	se, ok := err.(*StatusError)
	if !ok {
		return false
	}
	switch se.APICode {
	case CodeNotFound, CodeRemoteDegraded:
		return true
	case "":
		return se.Code == http.StatusNotFound
	}
	return false
}

// retryable reports whether an attempt outcome is worth retrying:
// transport errors and 5xx statuses are; 4xx are deterministic.
func retryable(err error) bool {
	if err == nil {
		return false
	}
	if se, ok := err.(*StatusError); ok {
		return se.Code >= 500
	}
	return true
}

// do runs one JSON round trip with the configured retry budget. body is
// re-readable by construction (a byte slice), so every attempt sends
// identical bytes.
func (c *Client) do(ctx context.Context, method, url string, body []byte, v any) error {
	delay := c.backoff
	var last error
	for attempt := 0; attempt < c.retries; attempt++ {
		if attempt > 0 {
			// Jittered exponential backoff off the wall clock's low bits,
			// so a fleet of retrying clients decorrelates.
			jitter := time.Duration(time.Now().UnixNano()) % (delay/2 + 1)
			select {
			case <-time.After(delay + jitter):
			case <-ctx.Done():
				return ctx.Err()
			}
			delay *= 2
		}
		last = c.once(ctx, method, url, body, v)
		if last == nil || !retryable(last) || ctx.Err() != nil {
			return last
		}
	}
	return last
}

// once is a single attempt.
func (c *Client) once(ctx context.Context, method, url string, body []byte, v any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	return decode(resp, v)
}

// decode reads one JSON response, mapping API error envelopes onto Go
// errors.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return &StatusError{Code: resp.StatusCode, APICode: apiErr.Code, Message: apiErr.Error}
		}
		return &StatusError{Code: resp.StatusCode, Message: string(body)}
	}
	return json.Unmarshal(body, v)
}

// Submit posts a spec; wait=true blocks server-side until the job
// completes (one round trip for warm keys either way).
func (c *Client) Submit(ctx context.Context, spec scenario.Spec, wait bool) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	url := c.base + "/v1/scenarios"
	if wait {
		url += "?wait=1"
	}
	var st JobStatus
	if err := c.do(ctx, http.MethodPost, url, body, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Push uploads an already-computed outcome under its spec's content key
// — the write-through verb tiered daemons use to replicate cells into
// the shared tier without re-simulating.
func (c *Client) Push(ctx context.Context, spec scenario.Spec, out *scenario.Outcome) error {
	key, err := scenario.Key(spec)
	if err != nil {
		return err
	}
	body, err := json.Marshal(pushRequest{Spec: spec, Outcome: out})
	if err != nil {
		return err
	}
	var st JobStatus
	return c.do(ctx, http.MethodPut, c.base+"/v1/scenarios/"+key, body, &st)
}

// Get polls a key.
func (c *Client) Get(ctx context.Context, key string) (JobStatus, error) {
	var st JobStatus
	if err := c.do(ctx, http.MethodGet, c.base+"/v1/scenarios/"+key, nil, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Poll polls a key until it reaches StateDone or StateFailed, or the
// timeout elapses.
func (c *Client) Poll(ctx context.Context, key string, interval, timeout time.Duration) (JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Get(ctx, key)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("scenariod: key %s still %s after %v", key, st.State, timeout)
		}
		select {
		case <-time.After(interval):
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// List fetches the stored cells and in-flight jobs.
func (c *Client) List(ctx context.Context) (ListResponse, error) {
	var lr ListResponse
	if err := c.do(ctx, http.MethodGet, c.base+"/v1/scenarios", nil, &lr); err != nil {
		return ListResponse{}, err
	}
	return lr, nil
}

// Stats fetches the daemon accounting.
func (c *Client) Stats(ctx context.Context) (StatsResponse, error) {
	var sr StatsResponse
	if err := c.do(ctx, http.MethodGet, c.base+"/v1/stats", nil, &sr); err != nil {
		return StatsResponse{}, err
	}
	return sr, nil
}
