package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/scenario"
)

// Client talks to a scenariod instance. It is safe for concurrent use
// (the load-test driver shares one client across its workers so the
// underlying http.Transport pools connections).
type Client struct {
	base string
	hc   *http.Client
}

// NewClient builds a client for a daemon base URL ("http://host:port").
func NewClient(base string) *Client {
	return &Client{base: base, hc: &http.Client{Timeout: 5 * time.Minute}}
}

// decode reads one JSON response, mapping API error envelopes onto Go
// errors.
func decode(resp *http.Response, v any) error {
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode >= 400 {
		var apiErr apiError
		if json.Unmarshal(body, &apiErr) == nil && apiErr.Error != "" {
			return &StatusError{Code: resp.StatusCode, Message: apiErr.Error}
		}
		return &StatusError{Code: resp.StatusCode, Message: string(body)}
	}
	return json.Unmarshal(body, v)
}

// StatusError is a non-2xx API response.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("scenariod: HTTP %d: %s", e.Code, e.Message)
}

// IsNotFound reports whether err is a 404 (unknown scenario key).
func IsNotFound(err error) bool {
	se, ok := err.(*StatusError)
	return ok && se.Code == http.StatusNotFound
}

// Submit posts a spec; wait=true blocks server-side until the job
// completes (one round trip for warm keys either way).
func (c *Client) Submit(spec scenario.Spec, wait bool) (JobStatus, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return JobStatus{}, err
	}
	url := c.base + "/v1/scenarios"
	if wait {
		url += "?wait=1"
	}
	resp, err := c.hc.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := decode(resp, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Get polls a key.
func (c *Client) Get(key string) (JobStatus, error) {
	resp, err := c.hc.Get(c.base + "/v1/scenarios/" + key)
	if err != nil {
		return JobStatus{}, err
	}
	var st JobStatus
	if err := decode(resp, &st); err != nil {
		return JobStatus{}, err
	}
	return st, nil
}

// Poll polls a key until it reaches StateDone or StateFailed, or the
// timeout elapses.
func (c *Client) Poll(key string, interval, timeout time.Duration) (JobStatus, error) {
	deadline := time.Now().Add(timeout)
	for {
		st, err := c.Get(key)
		if err != nil {
			return JobStatus{}, err
		}
		if st.State == StateDone || st.State == StateFailed {
			return st, nil
		}
		if time.Now().After(deadline) {
			return st, fmt.Errorf("scenariod: key %s still %s after %v", key, st.State, timeout)
		}
		time.Sleep(interval)
	}
}

// List fetches the stored cells and in-flight jobs.
func (c *Client) List() (ListResponse, error) {
	resp, err := c.hc.Get(c.base + "/v1/scenarios")
	if err != nil {
		return ListResponse{}, err
	}
	var lr ListResponse
	if err := decode(resp, &lr); err != nil {
		return ListResponse{}, err
	}
	return lr, nil
}

// Stats fetches the daemon accounting.
func (c *Client) Stats() (StatsResponse, error) {
	resp, err := c.hc.Get(c.base + "/v1/stats")
	if err != nil {
		return StatsResponse{}, err
	}
	var sr StatsResponse
	if err := decode(resp, &sr); err != nil {
		return StatsResponse{}, err
	}
	return sr, nil
}
