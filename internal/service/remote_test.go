package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/scenario"
)

// deadRemote is a base URL nothing listens on: connections are refused
// instantly, which is the fastest way to exercise the failure paths.
const deadRemote = "http://127.0.0.1:1"

// fakeClock is a hand-advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }

// TestBreakerTrip: threshold consecutive failures open the breaker;
// successes in between reset the count.
func TestBreakerTrip(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(3, 5*time.Second, clk.now)

	if !b.allow() {
		t.Fatal("fresh breaker refused a call")
	}
	b.failure()
	b.failure()
	b.success() // resets the consecutive count
	b.failure()
	b.failure()
	if b.state() != breakerClosed {
		t.Fatalf("state after interrupted failures = %s, want closed", b.state())
	}
	b.failure()
	if b.state() != breakerOpen {
		t.Fatalf("state after 3 consecutive failures = %s, want open", b.state())
	}
	if b.opens() != 1 {
		t.Errorf("opens = %d, want 1", b.opens())
	}
	if b.allow() {
		t.Error("open breaker admitted a call before cooldown")
	}
}

// TestBreakerHalfOpenProbe: after the cooldown exactly one probe is
// admitted; its failure re-opens the breaker, its success closes it.
func TestBreakerHalfOpenProbe(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, 5*time.Second, clk.now)
	b.failure()
	if b.state() != breakerOpen {
		t.Fatalf("state = %s, want open", b.state())
	}

	clk.advance(4 * time.Second)
	if b.allow() {
		t.Fatal("breaker probed before the cooldown elapsed")
	}
	clk.advance(time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the half-open probe after cooldown")
	}
	if b.state() != breakerHalfOpen {
		t.Fatalf("state during probe = %s, want half-open", b.state())
	}
	if b.allow() {
		t.Error("second concurrent call admitted during the single probe")
	}

	// Probe fails: straight back to open for another full cooldown.
	b.failure()
	if b.state() != breakerOpen {
		t.Fatalf("state after failed probe = %s, want open", b.state())
	}
	if b.allow() {
		t.Error("re-opened breaker admitted a call immediately")
	}

	// Next probe succeeds: closed, calls flow again.
	clk.advance(5 * time.Second)
	if !b.allow() {
		t.Fatal("breaker refused the second probe")
	}
	b.success()
	if b.state() != breakerClosed {
		t.Fatalf("state after successful probe = %s, want closed", b.state())
	}
	if !b.allow() || !b.allow() {
		t.Error("closed breaker throttled calls")
	}
}

// TestBreakerDegradedAccounting: time outside the closed state is
// accumulated, including the in-progress interval.
func TestBreakerDegradedAccounting(t *testing.T) {
	clk := newFakeClock()
	b := newBreaker(1, time.Second, clk.now)
	b.failure()
	clk.advance(3 * time.Second)
	if got := b.degraded(); got != 3*time.Second {
		t.Errorf("degraded during open = %v, want 3s", got)
	}
	if !b.allow() { // half-open probe
		t.Fatal("probe refused")
	}
	clk.advance(time.Second)
	b.success()
	if got := b.degraded(); got != 4*time.Second {
		t.Errorf("degraded after recovery = %v, want 4s", got)
	}
	clk.advance(time.Hour) // closed time does not accumulate
	if got := b.degraded(); got != 4*time.Second {
		t.Errorf("degraded while closed = %v, want 4s", got)
	}
}

// TestRemoteDownAtStartup: a daemon whose remote never answered a
// single call still serves submits — the breaker trips and the daemon
// runs local-only from the first minute.
func TestRemoteDownAtStartup(t *testing.T) {
	d := startDaemon(t, Config{Remote: deadRemote, RemoteTimeout: 200 * time.Millisecond})
	c := NewClient(d.BaseURL())

	for i := 0; i < 4; i++ {
		st, err := c.Submit(ctx, testSpec(60+float64(i)), true)
		if err != nil {
			t.Fatalf("submit %d with dead remote: %v", i, err)
		}
		if st.State != StateDone {
			t.Fatalf("submit %d state = %s: %s", i, st.State, st.Error)
		}
	}

	sr, err := c.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	tier := sr.Storage.Tier
	if tier == nil {
		t.Fatal("tiered daemon reports no tier stats")
	}
	if tier.RemoteErrors == 0 {
		t.Error("dead remote produced zero remote_errors")
	}
	// Four consecutive fetch failures are past the default threshold of
	// three: the breaker must have opened (later calls may be probes, so
	// only the transition count is deterministic).
	if tier.BreakerOpens == 0 {
		t.Errorf("breaker never opened: %+v", tier)
	}
}

// TestLeaderDiesMidRun is the headline degraded-mode scenario: a warm
// leader/follower pair loses the leader and the follower keeps serving
// — old keys from its local tier, new keys by simulating itself.
func TestLeaderDiesMidRun(t *testing.T) {
	leader, err := New(Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := leader.Start(); err != nil {
		t.Fatal(err)
	}
	leaderUp := true
	defer func() {
		if leaderUp {
			_ = leader.Stop()
		}
	}()

	follower := startDaemon(t, Config{Remote: leader.BaseURL(), RemoteTimeout: time.Second})
	fc := NewClient(follower.BaseURL())

	// Warm phase: the follower delegates the simulation to the leader.
	specA := testSpec(70)
	st, err := fc.Submit(ctx, specA, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("warm submit state = %s: %s", st.State, st.Error)
	}
	if sims := leader.Queue().Stats().Simulated; sims != 1 {
		t.Errorf("leader simulated %d, want 1 (follower should delegate)", sims)
	}
	if sims := follower.Queue().Stats().Simulated; sims != 0 {
		t.Errorf("follower simulated %d, want 0 (remote hit)", sims)
	}

	// Kill the leader mid-run.
	if err := leader.Stop(); err != nil {
		t.Fatal(err)
	}
	leaderUp = false

	// Old key: still a local hit (write-back from the warm phase).
	st, err = fc.Submit(ctx, specA, true)
	if err != nil {
		t.Fatalf("resubmit after leader death: %v", err)
	}
	if st.State != StateDone || !st.Cached {
		t.Fatalf("resubmit = %+v, want cached done from the local tier", st)
	}

	// New key: the remote fetch fails, the follower simulates itself —
	// the submit still succeeds.
	st, err = fc.Submit(ctx, testSpec(71), true)
	if err != nil {
		t.Fatalf("cold submit after leader death: %v", err)
	}
	if st.State != StateDone {
		t.Fatalf("cold submit state = %s: %s", st.State, st.Error)
	}
	if sims := follower.Queue().Stats().Simulated; sims != 1 {
		t.Errorf("follower simulated %d after leader death, want 1", sims)
	}

	sr, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Storage.Tier == nil || sr.Storage.Tier.RemoteErrors == 0 {
		t.Errorf("follower tier stats show no remote errors after leader death: %+v", sr.Storage.Tier)
	}
}

// TestWriteThroughFailureNeverFailsPut: a Put whose write-through
// cannot reach the remote still succeeds, synchronously and async.
func TestWriteThroughFailureNeverFailsPut(t *testing.T) {
	spec := testSpec(72)
	out, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	for _, mode := range []struct {
		name string
		sync bool
	}{{"sync", true}, {"async", false}} {
		t.Run(mode.name, func(t *testing.T) {
			rb := NewRemoteBackend(NewMemBackend(), NewClient(deadRemote),
				RemoteSyncWrites(mode.sync),
				RemoteTimeout(200*time.Millisecond),
				RemoteRetry(2, time.Millisecond),
				RemoteBreaker(100, time.Hour)) // keep probing: count real errors
			defer func() {
				if err := rb.Close(); err != nil {
					t.Error(err)
				}
			}()

			if err := rb.Put(ctx, spec, out); err != nil {
				t.Fatalf("%s put with dead remote: %v", mode.name, err)
			}
			// The cell is safe in the local tier regardless of the remote.
			key, err := scenario.Key(spec)
			if err != nil {
				t.Fatal(err)
			}
			got, ok, err := rb.Get(ctx, key)
			if err != nil || !ok || got == nil {
				t.Fatalf("local tier lost the put: ok=%v err=%v", ok, err)
			}
			if mode.sync {
				st := rb.TierStats()
				if st.WriteDropped == 0 || st.RemoteErrors == 0 {
					t.Errorf("sync write-through to dead remote not accounted: %+v", st)
				}
			}
		})
	}
}

// TestTwoTierByteIdentity: an outcome served read-through from the
// leader is byte-identical to a direct in-process scenario.Run, and a
// unique spec costs exactly one simulation across the fleet.
func TestTwoTierByteIdentity(t *testing.T) {
	spec := testSpec(73)
	want, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}

	leader := startDaemon(t, Config{})
	follower := startDaemon(t, Config{Remote: leader.BaseURL()})
	fc := NewClient(follower.BaseURL())

	st, err := fc.Submit(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone {
		t.Fatalf("submit state = %s: %s", st.State, st.Error)
	}
	got, err := json.Marshal(st.Outcome)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(wantJSON) {
		t.Error("read-through outcome differs from direct scenario.Run")
	}

	if sims := leader.Queue().Stats().Simulated + follower.Queue().Stats().Simulated; sims != 1 {
		t.Errorf("fleet simulated %d for one unique spec, want 1", sims)
	}

	// Resubmit: the write-back made the key a local hit, so the remote
	// counter must not move again.
	sr1, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := fc.Submit(ctx, spec, true)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.Cached {
		t.Errorf("resubmit = %+v, want cached", st2)
	}
	sr2, err := fc.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sr1.Storage.Tier == nil || sr2.Storage.Tier == nil {
		t.Fatal("follower reports no tier stats")
	}
	if sr2.Storage.Tier.RemoteHits != sr1.Storage.Tier.RemoteHits {
		t.Errorf("resubmit went remote again (%d -> %d remote hits); write-back broken",
			sr1.Storage.Tier.RemoteHits, sr2.Storage.Tier.RemoteHits)
	}
	if sr2.Storage.Tier.LocalHits <= sr1.Storage.Tier.LocalHits {
		t.Errorf("resubmit not a local hit: %d -> %d", sr1.Storage.Tier.LocalHits, sr2.Storage.Tier.LocalHits)
	}
}

// TestErrorEnvelopeCodes: the stable machine-readable codes on the
// error envelope, and IsNotFound's code-first matching.
func TestErrorEnvelopeCodes(t *testing.T) {
	d := startDaemon(t, Config{})
	c := NewClient(d.BaseURL())

	_, err := c.Submit(ctx, scenario.Spec{Kind: "warp"}, false)
	se, ok := err.(*StatusError)
	if !ok {
		t.Fatalf("invalid spec error = %T (%v), want *StatusError", err, err)
	}
	if se.Code != http.StatusBadRequest || se.APICode != CodeInvalidSpec {
		t.Errorf("invalid spec -> %d/%q, want 400/%q", se.Code, se.APICode, CodeInvalidSpec)
	}

	_, err = c.Get(ctx, "no-such-key")
	se, ok = err.(*StatusError)
	if !ok {
		t.Fatalf("unknown key error = %T (%v), want *StatusError", err, err)
	}
	if se.Code != http.StatusNotFound || se.APICode != CodeNotFound {
		t.Errorf("unknown key -> %d/%q, want 404/%q", se.Code, se.APICode, CodeNotFound)
	}
	if !IsNotFound(err) {
		t.Error("IsNotFound rejected a coded 404")
	}

	// Matching matrix: codes rule; the raw status is only a fallback for
	// pre-code servers.
	if !IsNotFound(&StatusError{Code: 404}) {
		t.Error("IsNotFound rejected a code-less 404")
	}
	if !IsNotFound(&StatusError{Code: 404, APICode: CodeRemoteDegraded}) {
		t.Error("IsNotFound rejected a degraded 404")
	}
	if IsNotFound(&StatusError{Code: 404, APICode: CodeShuttingDown}) {
		t.Error("IsNotFound matched a non-not-found code on a 404")
	}
	if IsNotFound(fmt.Errorf("plain error")) {
		t.Error("IsNotFound matched a non-StatusError")
	}
}

// TestDegradedReadCode: with the breaker open, a miss on the local
// tier is reported as remote_degraded — "not found here, but the fleet
// may have it" — and still satisfies IsNotFound.
func TestDegradedReadCode(t *testing.T) {
	d := startDaemon(t, Config{Remote: deadRemote, RemoteTimeout: 200 * time.Millisecond})
	c := NewClient(d.BaseURL())

	// Trip the breaker: three submits, three failed remote fetches.
	for i := 0; i < 3; i++ {
		if _, err := c.Submit(ctx, testSpec(50+float64(i)), true); err != nil {
			t.Fatal(err)
		}
	}
	_, err := c.Get(ctx, "no-such-key")
	se, ok := err.(*StatusError)
	if !ok {
		t.Fatalf("degraded miss error = %T (%v), want *StatusError", err, err)
	}
	if se.Code != http.StatusNotFound || se.APICode != CodeRemoteDegraded {
		t.Errorf("degraded miss -> %d/%q, want 404/%q", se.Code, se.APICode, CodeRemoteDegraded)
	}
	if !IsNotFound(err) {
		t.Error("IsNotFound rejected a degraded miss")
	}
}

// TestClientWithRetry: transport-level retries are opt-in, bounded, and
// only cover retryable outcomes (5xx), never deterministic 4xx.
func TestClientWithRetry(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.WriteHeader(http.StatusInternalServerError)
			_ = json.NewEncoder(w).Encode(apiError{Error: "transient", Code: CodeInternal})
			return
		}
		_ = json.NewEncoder(w).Encode(ListResponse{})
	}))
	defer srv.Close()

	// Default client: no retries, the first 500 is final.
	if _, err := NewClient(srv.URL).List(ctx); err == nil {
		t.Error("default client retried a 500")
	}

	// Retrying client: two extra attempts clear the two failures.
	calls.Store(0)
	c := NewClient(srv.URL, WithRetry(2, time.Millisecond))
	if _, err := c.List(ctx); err != nil {
		t.Errorf("retrying client failed: %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("retrying client made %d calls, want 3", got)
	}

	// 4xx is deterministic: one call, no retry budget spent.
	var gets atomic.Int64
	srv4 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gets.Add(1)
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(apiError{Error: "nope", Code: CodeNotFound})
	}))
	defer srv4.Close()
	if _, err := NewClient(srv4.URL, WithRetry(3, time.Millisecond)).Get(ctx, "k"); !IsNotFound(err) {
		t.Errorf("coded 404 -> %v, want not-found", err)
	}
	if got := gets.Load(); got != 1 {
		t.Errorf("404 retried: %d calls, want 1", got)
	}
}

// TestPushEndpointValidation: the write-through verb is content
// addressed — the URL key must match the spec's content key.
func TestPushEndpointValidation(t *testing.T) {
	d := startDaemon(t, Config{})
	c := NewClient(d.BaseURL())

	spec := testSpec(55)
	out, err := scenario.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Push(ctx, spec, out); err != nil {
		t.Fatal(err)
	}
	key, err := scenario.Key(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := c.Get(ctx, key)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateDone || !st.Cached {
		t.Errorf("pushed key reads back %+v, want cached done", st)
	}

	// A mismatched key is rejected as an invalid spec.
	body, err := json.Marshal(pushRequest{Spec: spec, Outcome: out})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPut, d.BaseURL()+"/v1/scenarios/wrongkey", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("mismatched push key -> %d, want 400", resp.StatusCode)
	}
	var apiErr apiError
	if err := json.NewDecoder(resp.Body).Decode(&apiErr); err != nil {
		t.Fatal(err)
	}
	if apiErr.Code != CodeInvalidSpec {
		t.Errorf("mismatched push key code = %q, want %q", apiErr.Code, CodeInvalidSpec)
	}
}
