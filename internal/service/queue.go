package service

import (
	"context"
	"fmt"
	"sort"
	"strconv"
	"sync"

	"repro/internal/scenario"
)

// Job states reported by the API.
const (
	// StateQueued: accepted, waiting for a shard worker.
	StateQueued = "queued"
	// StateRunning: a worker is simulating the spec.
	StateRunning = "running"
	// StateDone: the outcome is available (from the store or fresh).
	StateDone = "done"
	// StateFailed: the run errored; Error carries the message. A
	// re-submit of the same spec retries.
	StateFailed = "failed"
)

// JobStatus is a snapshot of one submitted scenario's progress — the
// JSON shape the API returns for submits and polls.
type JobStatus struct {
	// Key is the spec's content address.
	Key string `json:"key"`
	// State is one of the State* constants.
	State string `json:"state"`
	// Cached reports that the outcome was served from the store without
	// simulating (set on submits that hit the cache and on polls of
	// store-resident keys).
	Cached bool `json:"cached,omitempty"`
	// Error carries the failure message when State is StateFailed.
	Error string `json:"error,omitempty"`
	// Outcome is attached when State is StateDone.
	Outcome *scenario.Outcome `json:"outcome,omitempty"`
}

// QueueStats accounts the queue's traffic.
type QueueStats struct {
	// Submitted counts every accepted submit (including duplicates).
	Submitted int64 `json:"submitted"`
	// CacheHits counts submits answered from the store without queueing.
	CacheHits int64 `json:"cache_hits"`
	// Coalesced counts submits deduplicated onto an in-flight job — the
	// singleflight wins: a thundering herd on one spec is 1 simulation
	// plus N-1 coalesced submits.
	Coalesced int64 `json:"coalesced"`
	// Simulated counts jobs actually executed by workers.
	Simulated int64 `json:"simulated"`
	// Failed counts jobs whose run errored.
	Failed int64 `json:"failed"`
	// Inflight is the current queued+running population.
	Inflight int64 `json:"inflight"`
}

// job is one in-flight scenario.
type job struct {
	key  string
	spec scenario.Spec

	mu      sync.Mutex
	state   string
	cached  bool
	err     string
	outcome *scenario.Outcome
	done    chan struct{} // closed when the job leaves queued/running
}

// snapshot returns the job's status under its lock.
func (j *job) snapshot() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{Key: j.key, State: j.state, Cached: j.cached, Error: j.err}
	if j.state == StateDone {
		st.Outcome = j.outcome
	}
	return st
}

// Queue is the job-queue module: submitted specs are deduplicated
// against the store and the in-flight table (singleflight), then fanned
// over N sharded workers. A spec's key always lands on the same shard
// (hash sharding), so two submits racing past the dedup window would
// still serialize; each worker runs the scenario layer, which picks the
// lockstep engine for eligible specs — the "sharded lockstep workers".
type Queue struct {
	storage *Storage
	// shards is the worker count (≥ 1).
	shards int
	// engineWorkers caps each run's internal engine parallelism
	// (scenario.Spec.Workers; 0 = all cores).
	engineWorkers int
	// run executes one spec; tests may stub it. Defaults to scenario.Run.
	run func(scenario.Spec) (*scenario.Outcome, error)

	mu       sync.Mutex
	inflight map[string]*job
	accept   bool
	stopping bool
	// submitters tracks Submits past the accept check but not yet
	// enqueued, so Stop never closes a shard channel under a sender.
	submitters sync.WaitGroup

	queues []chan *job
	wg     sync.WaitGroup

	stats struct {
		mu                                                 sync.Mutex
		submitted, cacheHits, coalesced, simulated, failed int64
	}
}

// NewQueue builds the queue module over the storage module.
func NewQueue(storage *Storage, shards, engineWorkers int) *Queue {
	return &Queue{storage: storage, shards: shards, engineWorkers: engineWorkers, run: scenario.Run}
}

// Name implements Module.
func (q *Queue) Name() string { return "queue" }

// Configure validates the shard count and allocates the job table and
// shard channels.
func (q *Queue) Configure() error {
	if q.storage == nil {
		return fmt.Errorf("queue: nil storage module")
	}
	if q.shards < 1 {
		return fmt.Errorf("queue: need at least one shard worker (got %d)", q.shards)
	}
	if q.engineWorkers < 0 {
		return fmt.Errorf("queue: negative engine worker cap %d", q.engineWorkers)
	}
	q.inflight = make(map[string]*job)
	q.queues = make([]chan *job, q.shards)
	for i := range q.queues {
		// The buffer absorbs submit bursts without blocking the HTTP
		// handler; a full shard applies backpressure on the submitter.
		q.queues[i] = make(chan *job, 256)
	}
	return nil
}

// Start launches the shard workers and opens the intake.
func (q *Queue) Start() error {
	for i := range q.queues {
		q.wg.Add(1)
		go q.worker(q.queues[i])
	}
	q.mu.Lock()
	q.accept = true
	q.mu.Unlock()
	return nil
}

// Stop closes the intake and waits for the workers. Jobs already
// executing finish (their results are persisted for the next process);
// jobs still queued are failed with a shutdown error instead of run, so
// Stop returns promptly even with a deep backlog.
func (q *Queue) Stop() error {
	q.mu.Lock()
	q.accept = false
	q.stopping = true
	q.mu.Unlock()
	q.submitters.Wait()
	for i := range q.queues {
		close(q.queues[i])
	}
	q.wg.Wait()
	return nil
}

// shardOf maps a content key to its worker. Keys are SHA-256 hex, so
// the leading 8 hex digits are already uniformly distributed.
func (q *Queue) shardOf(key string) int {
	if len(key) < 8 {
		return 0
	}
	v, err := strconv.ParseUint(key[:8], 16, 64)
	if err != nil {
		return 0
	}
	return int(v % uint64(q.shards))
}

// Submit accepts a spec: validate, hash, answer from the store when the
// cell exists, coalesce onto an in-flight job when one is already
// queued or running (singleflight), otherwise enqueue on the key's
// shard. The returned status is the submit-time snapshot; poll Status
// (or wait on the HTTP API) for completion. The store check is a Fetch
// — on a tiered daemon a miss reads through to (and may be simulated
// by) the shared remote tier, so the key's first simulation happens
// once fleet-wide, wherever the singleflight that owns it runs.
func (q *Queue) Submit(ctx context.Context, spec scenario.Spec) (JobStatus, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, err
	}
	spec.Workers = q.engineWorkers
	key, err := scenario.Key(spec)
	if err != nil {
		return JobStatus{}, err
	}
	q.addStat(&q.stats.submitted)

	// Store first: a finished cell answers immediately, no job needed.
	if out, ok, err := q.storage.Fetch(ctx, spec, key); err != nil {
		return JobStatus{}, err
	} else if ok {
		q.addStat(&q.stats.cacheHits)
		return JobStatus{Key: key, State: StateDone, Cached: true, Outcome: out}, nil
	}

	q.mu.Lock()
	if !q.accept {
		q.mu.Unlock()
		return JobStatus{}, ErrStopped
	}
	if j, ok := q.inflight[key]; ok {
		// Singleflight: identical spec already queued or running —
		// unless it failed, in which case this submit retries it.
		j.mu.Lock()
		failed := j.state == StateFailed
		j.mu.Unlock()
		if !failed {
			q.mu.Unlock()
			q.addStat(&q.stats.coalesced)
			return j.snapshot(), nil
		}
		delete(q.inflight, key)
	}
	j := &job{key: key, spec: spec, state: StateQueued, done: make(chan struct{})}
	q.inflight[key] = j
	q.submitters.Add(1)
	q.mu.Unlock()

	q.queues[q.shardOf(key)] <- j
	q.submitters.Done()
	return j.snapshot(), nil
}

// Status reports a key's progress: in-flight jobs first (including
// failures held for inspection), then the store. ok=false means the key
// is neither in flight nor stored (on a tiered daemon the lookup reads
// through to the remote, so a leader-owned key polls as done here too).
func (q *Queue) Status(ctx context.Context, key string) (JobStatus, bool, error) {
	q.mu.Lock()
	j, inflight := q.inflight[key]
	q.mu.Unlock()
	if inflight {
		return j.snapshot(), true, nil
	}
	out, ok, err := q.storage.Get(ctx, key)
	if err != nil {
		return JobStatus{}, false, err
	}
	if !ok {
		return JobStatus{}, false, nil
	}
	return JobStatus{Key: key, State: StateDone, Cached: true, Outcome: out}, true, nil
}

// Wait blocks until the key's in-flight job completes, the context is
// cancelled, or returns the stored status immediately. ok=false when
// the key is unknown.
func (q *Queue) Wait(ctx context.Context, key string) (JobStatus, bool, error) {
	q.mu.Lock()
	j, inflight := q.inflight[key]
	q.mu.Unlock()
	if inflight {
		select {
		case <-j.done:
			return j.snapshot(), true, nil
		case <-ctx.Done():
			return j.snapshot(), true, ctx.Err()
		}
	}
	return q.Status(ctx, key)
}

// Inflight lists the in-flight jobs' statuses, sorted by key (outcomes
// omitted — listings are inventory, not payload).
func (q *Queue) Inflight() []JobStatus {
	q.mu.Lock()
	statuses := make([]JobStatus, 0, len(q.inflight))
	for _, j := range q.inflight {
		st := j.snapshot()
		st.Outcome = nil
		statuses = append(statuses, st)
	}
	q.mu.Unlock()
	// Sort after collection so map order never reaches the API.
	sort.Slice(statuses, func(i, k int) bool { return statuses[i].Key < statuses[k].Key })
	return statuses
}

// Stats snapshots the queue accounting.
func (q *Queue) Stats() QueueStats {
	q.stats.mu.Lock()
	s := QueueStats{
		Submitted: q.stats.submitted,
		CacheHits: q.stats.cacheHits,
		Coalesced: q.stats.coalesced,
		Simulated: q.stats.simulated,
		Failed:    q.stats.failed,
	}
	q.stats.mu.Unlock()
	q.mu.Lock()
	for _, j := range q.inflight {
		j.mu.Lock()
		if j.state == StateQueued || j.state == StateRunning {
			s.Inflight++
		}
		j.mu.Unlock()
	}
	q.mu.Unlock()
	return s
}

// worker drains one shard: run, persist, publish, retire.
func (q *Queue) worker(jobs <-chan *job) {
	defer q.wg.Done()
	for j := range jobs {
		q.mu.Lock()
		stopping := q.stopping
		q.mu.Unlock()
		if stopping {
			// Shutdown: fail the backlog instead of simulating it.
			j.mu.Lock()
			j.state = StateFailed
			j.err = "scenariod stopping before execution"
			j.mu.Unlock()
			close(j.done)
			q.addStat(&q.stats.failed)
			continue
		}

		j.mu.Lock()
		j.state = StateRunning
		j.mu.Unlock()

		// Re-check the store: a submit can race the previous winner's
		// Put/retire window (store miss observed before the Put, in-flight
		// check after the retire) and enqueue a duplicate job. The worker
		// absorbs that race with a store read instead of a simulation, so
		// "one simulation per unique spec" holds unconditionally. The
		// re-check is a Fetch: on a tiered daemon it reads through to the
		// shared tier and may delegate the simulation to the remote —
		// local engine work is the last resort. Workers run under the
		// daemon's lifetime context, not any submitter's.
		if out, ok, err := q.storage.Fetch(context.Background(), j.spec, j.key); err == nil && ok {
			j.mu.Lock()
			j.state = StateDone
			j.cached = true
			j.outcome = out
			j.mu.Unlock()
			close(j.done)
			q.addStat(&q.stats.cacheHits)
			q.mu.Lock()
			delete(q.inflight, j.key)
			q.mu.Unlock()
			continue
		}

		out, err := q.run(j.spec)
		if err == nil {
			// Persist before publishing: once the job leaves the
			// in-flight table, pollers must find the cell in the store.
			err = q.storage.Put(context.Background(), j.spec, out)
		}

		j.mu.Lock()
		if err != nil {
			j.state = StateFailed
			j.err = err.Error()
		} else {
			j.state = StateDone
			j.outcome = out
		}
		j.mu.Unlock()
		close(j.done)

		if err != nil {
			q.addStat(&q.stats.failed)
			// Failed jobs stay in the table so pollers see the error;
			// a re-submit replaces them (see Submit).
			continue
		}
		q.addStat(&q.stats.simulated)
		q.mu.Lock()
		delete(q.inflight, j.key)
		q.mu.Unlock()
	}
}

// addStat bumps one counter under the stats lock.
func (q *Queue) addStat(c *int64) {
	q.stats.mu.Lock()
	*c++
	q.stats.mu.Unlock()
}
