package service

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/scenario"
)

// RemoteBackend is the tiered store: a local Backend (the on-disk
// StoreBackend or MemBackend) fronted onto another scenariod reached
// through a Client. Reads check the local tier first and read through
// to the remote on a miss (write-backing hits into the local tier);
// Fetch — the queue workers' miss path — delegates the whole simulation
// to the remote daemon, whose singleflight queue dedups across the
// fleet, so N daemons sharing one leader cost exactly one simulation
// per unique spec. Puts land locally first and write through to the
// remote (async by default, sync when configured).
//
// The headline guarantee is the failure semantics: remote trouble can
// only cost cache hits, never correctness or availability. Every remote
// call carries a bounded deadline; a run of consecutive failures trips
// a circuit breaker that degrades the daemon to local-only, with timed
// half-open probes to recover; write-through retries with jittered
// backoff and swallows terminal errors. No remote outcome — down, slow,
// erroring — ever fails a Get, Fetch, or Put.
type RemoteBackend struct {
	local  Backend
	client *Client

	// timeout bounds each remote call (Get/Fetch/Push attempt).
	timeout time.Duration
	// sync makes Put block on the write-through instead of queueing it.
	sync bool
	// retries/backoff shape the write-through retry loop.
	retries int
	backoff time.Duration
	// now is the clock (injected by tests).
	now func() time.Time

	br *breaker

	// writes is the async write-through queue; nil when sync.
	writes chan writeThrough
	// root cancels in-flight remote work on Close.
	root   context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu sync.Mutex
	st TierStats
}

// writeThrough is one queued async write-through.
type writeThrough struct {
	spec scenario.Spec
	out  *scenario.Outcome
}

// TierStats is the tier split a tiered backend reports into
// StorageStats.Tier.
type TierStats struct {
	// LocalHits / RemoteHits split where reads were answered.
	LocalHits  int64 `json:"local_hits"`
	RemoteHits int64 `json:"remote_hits"`
	// RemoteMisses counts healthy remote round trips that found nothing
	// (the key exists nowhere in the fleet yet).
	RemoteMisses int64 `json:"remote_misses"`
	// RemoteErrors counts failed remote calls (timeouts, transport
	// errors, non-404 statuses) across reads and write-throughs.
	RemoteErrors int64 `json:"remote_errors"`
	// DegradedSkips counts remote calls not even attempted because the
	// breaker was open — the local-only operating mode at work.
	DegradedSkips int64 `json:"degraded_skips"`
	// WriteThroughs / WriteDropped account the Put replication path:
	// completed remote writes and writes abandoned (queue full on async,
	// retries exhausted, or breaker open).
	WriteThroughs int64 `json:"write_throughs"`
	WriteDropped  int64 `json:"write_dropped"`
	// BreakerState is "closed", "open" or "half-open"; BreakerOpens
	// counts closed→open transitions; DegradedMS accumulates total time
	// spent outside the closed state.
	BreakerState string  `json:"breaker_state"`
	BreakerOpens int64   `json:"breaker_opens"`
	DegradedMS   float64 `json:"degraded_ms"`
}

// TierStatter is implemented by backends that keep a tier split; the
// storage module attaches it to StorageStats.
type TierStatter interface {
	TierStats() TierStats
}

// RemoteOption shapes a RemoteBackend.
type RemoteOption func(*RemoteBackend)

// RemoteTimeout bounds each remote call; the default is 5s.
func RemoteTimeout(d time.Duration) RemoteOption {
	return func(r *RemoteBackend) {
		if d > 0 {
			r.timeout = d
		}
	}
}

// RemoteSyncWrites makes Put block on the write-through (still never
// failing the Put) instead of queueing it to the background writer.
func RemoteSyncWrites(sync bool) RemoteOption {
	return func(r *RemoteBackend) { r.sync = sync }
}

// RemoteRetry shapes the write-through retry loop: up to n attempts with
// exponential backoff from base (jittered). Defaults: 3 attempts, 50ms.
func RemoteRetry(n int, base time.Duration) RemoteOption {
	return func(r *RemoteBackend) {
		if n > 0 {
			r.retries = n
		}
		if base > 0 {
			r.backoff = base
		}
	}
}

// RemoteBreaker shapes the circuit breaker: trip after threshold
// consecutive failures, probe again after cooldown. Defaults: 3, 5s.
func RemoteBreaker(threshold int, cooldown time.Duration) RemoteOption {
	return func(r *RemoteBackend) {
		if threshold > 0 {
			r.br.threshold = threshold
		}
		if cooldown > 0 {
			r.br.cooldown = cooldown
		}
	}
}

// remoteClock injects a fake clock (tests).
func remoteClock(now func() time.Time) RemoteOption {
	return func(r *RemoteBackend) {
		r.now = now
		r.br.now = now
	}
}

// NewRemoteBackend builds the tiered backend over a local tier and a
// client pointed at the remote daemon. Call Close when done: it stops
// the background writer and abandons in-flight remote work.
func NewRemoteBackend(local Backend, client *Client, opts ...RemoteOption) *RemoteBackend {
	r := &RemoteBackend{
		local:   local,
		client:  client,
		timeout: 5 * time.Second,
		retries: 3,
		backoff: 50 * time.Millisecond,
		now:     time.Now,
		br:      newBreaker(3, 5*time.Second, time.Now),
	}
	for _, opt := range opts {
		opt(r)
	}
	r.root, r.cancel = context.WithCancel(context.Background())
	if !r.sync {
		r.writes = make(chan writeThrough, 128)
		r.wg.Add(1)
		go r.writer()
	}
	return r
}

// Name identifies both tiers.
func (r *RemoteBackend) Name() string {
	return fmt.Sprintf("tiered(%s -> %s)", r.local.Name(), r.client.Base())
}

// Close stops the background writer and cancels in-flight remote work.
// Queued write-throughs not yet attempted are dropped (and counted);
// the local tier is never touched.
func (r *RemoteBackend) Close() error {
	r.cancel()
	if r.writes != nil {
		close(r.writes)
	}
	r.wg.Wait()
	return nil
}

// Get checks the local tier, then reads through to the remote on a
// miss. Key-only reads cannot write back (the local tiers key by spec,
// and an Outcome does not carry its spec) — the Fetch path, which has
// the spec in hand, is the one that populates the local tier. Remote
// trouble degrades to a plain miss.
func (r *RemoteBackend) Get(ctx context.Context, key string) (*scenario.Outcome, bool, error) {
	out, ok, err := r.local.Get(ctx, key)
	if err != nil || ok {
		if ok {
			r.count(func(st *TierStats) { st.LocalHits++ })
		}
		return out, ok, err
	}
	if !r.br.allow() {
		r.count(func(st *TierStats) { st.DegradedSkips++ })
		return nil, false, nil
	}
	rctx, cancel := context.WithTimeout(ctx, r.timeout)
	st, err := r.client.Get(rctx, key)
	cancel()
	if err != nil {
		if IsNotFound(err) {
			// A 404 is a healthy remote that simply doesn't have the key.
			r.br.success()
			r.count(func(st *TierStats) { st.RemoteMisses++ })
			return nil, false, nil
		}
		r.remoteFailure(err)
		return nil, false, nil
	}
	r.br.success()
	if st.State != StateDone || st.Outcome == nil {
		// In flight on the remote: not an error, not a hit either — the
		// local queue will fetch (and coalesce on the remote's job).
		r.count(func(st *TierStats) { st.RemoteMisses++ })
		return nil, false, nil
	}
	r.count(func(st *TierStats) { st.RemoteHits++ })
	return st.Outcome, true, nil
}

// Fetch resolves a miss with the spec in hand: local first, then a
// blocking submit to the remote daemon — the remote simulates (its
// singleflight dedups across every daemon fetching the same spec) and
// the outcome is write-backed locally. Remote trouble returns a miss so
// the local worker runs the simulation itself.
func (r *RemoteBackend) Fetch(ctx context.Context, spec scenario.Spec, key string) (*scenario.Outcome, bool, error) {
	out, ok, err := r.local.Get(ctx, key)
	if err != nil || ok {
		if ok {
			r.count(func(st *TierStats) { st.LocalHits++ })
		}
		return out, ok, err
	}
	if !r.br.allow() {
		r.count(func(st *TierStats) { st.DegradedSkips++ })
		return nil, false, nil
	}
	rctx, cancel := context.WithTimeout(ctx, r.timeout)
	st, err := r.client.Submit(rctx, spec, true)
	cancel()
	if err != nil {
		r.remoteFailure(err)
		return nil, false, nil
	}
	r.br.success()
	if st.State != StateDone || st.Outcome == nil {
		r.count(func(st *TierStats) { st.RemoteMisses++ })
		return nil, false, nil
	}
	r.count(func(st *TierStats) { st.RemoteHits++ })
	// Write-back: the next read of this key is a local hit. Failure is
	// tolerable — the outcome is already in hand and re-fetchable.
	_ = r.local.Put(ctx, spec, st.Outcome)
	return st.Outcome, true, nil
}

// Put lands the outcome in the local tier (errors here are real — the
// local store is the daemon's correctness tier) and then writes through
// to the remote: synchronously with retries when configured, otherwise
// queued to the background writer. Write-through failure never fails
// the Put.
func (r *RemoteBackend) Put(ctx context.Context, spec scenario.Spec, out *scenario.Outcome) error {
	if err := r.local.Put(ctx, spec, out); err != nil {
		return err
	}
	if r.sync {
		r.pushRetry(ctx, spec, out)
		return nil
	}
	select {
	case r.writes <- writeThrough{spec: spec, out: out}:
	default:
		// Full queue: drop rather than block the storage goroutine. The
		// cell is safe locally; only the shared tier misses it.
		r.count(func(st *TierStats) { st.WriteDropped++ })
	}
	return nil
}

// writer drains the async write-through queue.
func (r *RemoteBackend) writer() {
	defer r.wg.Done()
	for wt := range r.writes {
		select {
		case <-r.root.Done():
			r.count(func(st *TierStats) { st.WriteDropped++ })
			continue // drain the queue, counting drops
		default:
		}
		r.pushRetry(r.root, wt.spec, wt.out)
	}
}

// pushRetry attempts the remote write up to retries times with jittered
// exponential backoff, honoring the breaker. Terminal failure is
// counted, never returned.
func (r *RemoteBackend) pushRetry(ctx context.Context, spec scenario.Spec, out *scenario.Outcome) {
	delay := r.backoff
	for attempt := 0; attempt < r.retries; attempt++ {
		if ctx.Err() != nil {
			break
		}
		if !r.br.allow() {
			r.count(func(st *TierStats) { st.DegradedSkips++ })
			break
		}
		rctx, cancel := context.WithTimeout(ctx, r.timeout)
		err := r.client.Push(rctx, spec, out)
		cancel()
		if err == nil {
			r.br.success()
			r.count(func(st *TierStats) { st.WriteThroughs++ })
			return
		}
		r.remoteFailure(err)
		if attempt < r.retries-1 {
			// Jitter the backoff off the wall clock's low bits so
			// synchronized retry storms decorrelate.
			jitter := time.Duration(r.now().UnixNano()) % (delay/2 + 1)
			select {
			case <-time.After(delay + jitter):
			case <-ctx.Done():
			}
			delay *= 2
		}
	}
	r.count(func(st *TierStats) { st.WriteDropped++ })
}

// List inspects the local tier only: listings are daemon inventory, not
// a fleet-wide census.
func (r *RemoteBackend) List(ctx context.Context) ([]scenario.CellInfo, error) {
	return r.local.List(ctx)
}

// Len counts the local tier.
func (r *RemoteBackend) Len(ctx context.Context) (int, error) { return r.local.Len(ctx) }

// GC trims the local tier (the remote runs its own caps).
func (r *RemoteBackend) GC(ctx context.Context, cfg scenario.GCConfig) (scenario.GCResult, error) {
	gcb, ok := r.local.(GCBackend)
	if !ok {
		return scenario.GCResult{}, fmt.Errorf("service: local tier %s does not support eviction", r.local.Name())
	}
	return gcb.GC(ctx, cfg)
}

// Degraded reports whether the breaker is currently outside the closed
// state (the daemon is operating local-only).
func (r *RemoteBackend) Degraded() bool { return r.br.state() != breakerClosed }

// TierStats snapshots the tier counters plus the breaker's state.
func (r *RemoteBackend) TierStats() TierStats {
	r.mu.Lock()
	st := r.st
	r.mu.Unlock()
	st.BreakerState = r.br.state().String()
	st.BreakerOpens = r.br.opens()
	st.DegradedMS = float64(r.br.degraded()) / float64(time.Millisecond)
	return st
}

// count mutates the tier counters under the lock.
func (r *RemoteBackend) count(f func(*TierStats)) {
	r.mu.Lock()
	f(&r.st)
	r.mu.Unlock()
}

// remoteFailure records one failed remote call.
func (r *RemoteBackend) remoteFailure(err error) {
	r.br.failure()
	r.count(func(st *TierStats) { st.RemoteErrors++ })
	_ = err
}

// breakerState enumerates the circuit breaker's states.
type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a consecutive-failure circuit breaker with timed half-open
// probes: threshold consecutive failures open it; after cooldown the
// next allow() admits exactly one probe (half-open); the probe's
// success closes the breaker, its failure re-opens it for another
// cooldown. It also accounts total time spent degraded (open or
// half-open) for the stats surface.
type breaker struct {
	mu        sync.Mutex
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	cur           breakerState
	consecutive   int
	openedAt      time.Time
	probing       bool
	openCount     int64
	degradedSince time.Time
	degradedTotal time.Duration
}

// newBreaker builds a closed breaker.
func newBreaker(threshold int, cooldown time.Duration, now func() time.Time) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, now: now}
}

// allow reports whether a remote call may proceed. In the open state it
// transitions to half-open once the cooldown has elapsed, admitting a
// single probe; concurrent callers during the probe are refused.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.cur {
	case breakerClosed:
		return true
	case breakerOpen:
		if b.now().Sub(b.openedAt) >= b.cooldown {
			b.cur = breakerHalfOpen
			b.probing = true
			return true
		}
		return false
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// success records a healthy remote call, closing the breaker.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive = 0
	b.probing = false
	if b.cur != breakerClosed {
		b.degradedTotal += b.now().Sub(b.degradedSince)
		b.cur = breakerClosed
	}
}

// failure records a failed remote call: threshold consecutive failures
// trip the breaker; a failed half-open probe re-opens it immediately.
func (b *breaker) failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecutive++
	b.probing = false
	switch b.cur {
	case breakerClosed:
		if b.consecutive >= b.threshold {
			b.open()
		}
	case breakerHalfOpen:
		b.cur = breakerOpen
		b.openedAt = b.now()
	}
}

// open transitions closed→open (caller holds the lock).
func (b *breaker) open() {
	b.cur = breakerOpen
	b.openedAt = b.now()
	b.degradedSince = b.openedAt
	b.openCount++
}

// state reads the current state (advancing open→half-open is left to
// allow; state is a pure read).
func (b *breaker) state() breakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.cur
}

// opens counts closed→open transitions.
func (b *breaker) opens() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.openCount
}

// degraded totals the time spent outside closed, including the current
// degraded interval when one is in progress.
func (b *breaker) degraded() time.Duration {
	b.mu.Lock()
	defer b.mu.Unlock()
	d := b.degradedTotal
	if b.cur != breakerClosed {
		d += b.now().Sub(b.degradedSince)
	}
	return d
}
