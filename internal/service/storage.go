package service

import (
	"fmt"

	"repro/internal/scenario"
)

// Storage is the storage module: it owns the Backend and serializes
// every access through a request/reply channel served by one goroutine
// (the coop/storage pattern). Serialization is what makes the cache-cap
// contract simple — a Put and the GC pass it triggers are one atomic
// step from every other module's point of view, and backends need no
// locking of their own.
type Storage struct {
	backend Backend
	// gc caps the cache tier; the zero value disables eviction.
	gc scenario.GCConfig

	reqs chan storageReq
	done chan struct{}

	// stats are owned by the serving goroutine.
	stats StorageStats
}

// StorageStats accounts the storage module's traffic.
type StorageStats struct {
	Gets    int64 `json:"gets"`
	Hits    int64 `json:"hits"`
	Puts    int64 `json:"puts"`
	Evicted int64 `json:"evicted"`
	// Cells / Bytes snapshot the backend footprint after the last Put or
	// GC pass (List-derived; refreshed lazily on Stats when never put).
	Cells int64 `json:"cells"`
	Bytes int64 `json:"bytes"`
}

// storageOp selects the request kind.
type storageOp int

const (
	opGet storageOp = iota
	opPut
	opList
	opLen
	opStats
)

// storageReq is one request into the serving goroutine; the reply
// channel is buffered so the server never blocks on a dead client.
type storageReq struct {
	op    storageOp
	key   string
	spec  scenario.Spec
	out   *scenario.Outcome
	reply chan storageResp
}

type storageResp struct {
	out   *scenario.Outcome
	ok    bool
	infos []scenario.CellInfo
	n     int
	stats StorageStats
	err   error
}

// NewStorage builds the storage module over a backend. gc caps the
// cache tier (zero = unbounded); a capped configuration needs a backend
// implementing GCBackend.
func NewStorage(backend Backend, gc scenario.GCConfig) *Storage {
	return &Storage{backend: backend, gc: gc}
}

// Name implements Module.
func (s *Storage) Name() string { return "storage" }

// Configure validates the backend/cap combination and allocates the
// request plumbing.
func (s *Storage) Configure() error {
	if s.backend == nil {
		return fmt.Errorf("storage: nil backend")
	}
	if s.gc.Enabled() {
		if s.gc.MaxBytes < 0 || s.gc.MaxCells < 0 {
			return fmt.Errorf("storage: negative GC cap")
		}
		if _, ok := s.backend.(GCBackend); !ok {
			return fmt.Errorf("storage: backend %s does not support eviction (cache caps need a GCBackend)", s.backend.Name())
		}
	}
	s.reqs = make(chan storageReq)
	s.done = make(chan struct{})
	return nil
}

// Start launches the serving goroutine.
func (s *Storage) Start() error {
	go s.serve()
	return nil
}

// Stop closes the intake and waits for the server to drain. Requests
// after Stop fail with ErrStopped.
func (s *Storage) Stop() error {
	close(s.reqs)
	<-s.done
	return nil
}

// ErrStopped reports a request against a stopped module.
var ErrStopped = fmt.Errorf("service: module stopped")

// serve is the single goroutine owning the backend.
func (s *Storage) serve() {
	defer close(s.done)
	for req := range s.reqs {
		var resp storageResp
		switch req.op {
		case opGet:
			out, ok, err := s.backend.Get(req.key)
			s.stats.Gets++
			if ok {
				s.stats.Hits++
			}
			resp = storageResp{out: out, ok: ok, err: err}
		case opPut:
			err := s.backend.Put(req.spec, req.out)
			if err == nil {
				s.stats.Puts++
				err = s.maybeGC()
			}
			resp = storageResp{err: err}
		case opList:
			infos, err := s.backend.List()
			resp = storageResp{infos: infos, err: err}
		case opLen:
			n, err := s.backend.Len()
			resp = storageResp{n: n, err: err}
		case opStats:
			if s.stats.Puts == 0 && s.stats.Cells == 0 {
				s.refreshFootprint()
			}
			resp = storageResp{stats: s.stats}
		}
		req.reply <- resp
	}
}

// maybeGC runs an eviction pass when caps are configured, then refreshes
// the footprint snapshot.
func (s *Storage) maybeGC() error {
	if s.gc.Enabled() {
		res, err := s.backend.(GCBackend).GC(s.gc)
		if err != nil {
			return err
		}
		s.stats.Evicted += int64(len(res.Evicted))
		s.stats.Cells = int64(res.Remaining)
		s.stats.Bytes = res.RemainingBytes
		return nil
	}
	s.refreshFootprint()
	return nil
}

// refreshFootprint recomputes the Cells/Bytes snapshot from a listing.
func (s *Storage) refreshFootprint() {
	infos, err := s.backend.List()
	if err != nil {
		return // footprint is advisory; the next pass retries
	}
	s.stats.Cells = int64(len(infos))
	s.stats.Bytes = 0
	for _, info := range infos {
		s.stats.Bytes += info.Size
	}
}

// call sends one request, translating a stopped module into ErrStopped
// instead of a panic on the closed channel.
func (s *Storage) call(req storageReq) (resp storageResp) {
	defer func() {
		if recover() != nil {
			resp = storageResp{err: ErrStopped}
		}
	}()
	req.reply = make(chan storageResp, 1)
	s.reqs <- req
	return <-req.reply
}

// Get looks a content key up in the backend.
func (s *Storage) Get(key string) (*scenario.Outcome, bool, error) {
	resp := s.call(storageReq{op: opGet, key: key})
	return resp.out, resp.ok, resp.err
}

// Put persists an outcome and, when caps are configured, trims the
// cache tier in the same serialized step.
func (s *Storage) Put(spec scenario.Spec, out *scenario.Outcome) error {
	return s.call(storageReq{op: opPut, spec: spec, out: out}).err
}

// List inspects the backend's cells.
func (s *Storage) List() ([]scenario.CellInfo, error) {
	resp := s.call(storageReq{op: opList})
	return resp.infos, resp.err
}

// Len counts the backend's cells.
func (s *Storage) Len() (int, error) {
	resp := s.call(storageReq{op: opLen})
	return resp.n, resp.err
}

// Stats snapshots the module's accounting.
func (s *Storage) Stats() (StorageStats, error) {
	resp := s.call(storageReq{op: opStats})
	return resp.stats, resp.err
}
