package service

import (
	"context"
	"fmt"
	"time"

	"repro/internal/scenario"
)

// defaultReqTimeout bounds one backend operation inside the storage
// serve loop. Local backends finish in microseconds; the bound exists
// for tiered backends whose Get/Fetch may cross the network (those also
// apply their own, tighter remote deadline).
const defaultReqTimeout = 30 * time.Second

// Storage is the storage module: it owns the Backend and serializes
// every access through a request/reply channel served by one goroutine
// (the coop/storage pattern). Serialization is what makes the cache-cap
// contract simple — a Put and the GC pass it triggers are one atomic
// step from every other module's point of view, and backends need no
// locking of their own.
//
// Every public method takes the caller's context; the serve loop derives
// a per-request deadline (ReqTimeout) under it before touching the
// backend, so a stuck or slow backend call is cancelled instead of
// wedging the goroutine for everyone behind it.
type Storage struct {
	backend Backend
	// gc caps the cache tier; the zero value disables eviction.
	gc scenario.GCConfig
	// ReqTimeout bounds each backend call made by the serve loop; zero
	// selects defaultReqTimeout. Set before Configure.
	ReqTimeout time.Duration

	reqs chan storageReq
	done chan struct{}

	// stats are owned by the serving goroutine.
	stats StorageStats
}

// StorageStats accounts the storage module's traffic.
type StorageStats struct {
	Gets    int64 `json:"gets"`
	Hits    int64 `json:"hits"`
	Puts    int64 `json:"puts"`
	Evicted int64 `json:"evicted"`
	// Cells / Bytes snapshot the backend footprint after the last Put or
	// GC pass (List-derived; refreshed lazily on Stats when never put).
	Cells int64 `json:"cells"`
	Bytes int64 `json:"bytes"`
	// Tier is present when the backend is tiered (RemoteBackend): the
	// local/remote hit split, remote failure accounting, and the circuit
	// breaker's state. Nil for single-tier backends.
	Tier *TierStats `json:"tier,omitempty"`
}

// storageOp selects the request kind.
type storageOp int

const (
	opGet storageOp = iota
	opFetch
	opPut
	opList
	opLen
	opStats
)

// storageReq is one request into the serving goroutine; the reply
// channel is buffered so the server never blocks on a dead client.
type storageReq struct {
	op    storageOp
	ctx   context.Context
	key   string
	spec  scenario.Spec
	out   *scenario.Outcome
	reply chan storageResp
}

type storageResp struct {
	out   *scenario.Outcome
	ok    bool
	infos []scenario.CellInfo
	n     int
	stats StorageStats
	err   error
}

// NewStorage builds the storage module over a backend. gc caps the
// cache tier (zero = unbounded); a capped configuration needs a backend
// implementing GCBackend.
func NewStorage(backend Backend, gc scenario.GCConfig) *Storage {
	return &Storage{backend: backend, gc: gc}
}

// Name implements Module.
func (s *Storage) Name() string { return "storage" }

// Configure validates the backend/cap combination and allocates the
// request plumbing.
func (s *Storage) Configure() error {
	if s.backend == nil {
		return fmt.Errorf("storage: nil backend")
	}
	if s.gc.Enabled() {
		if s.gc.MaxBytes < 0 || s.gc.MaxCells < 0 {
			return fmt.Errorf("storage: negative GC cap")
		}
		if _, ok := s.backend.(GCBackend); !ok {
			return fmt.Errorf("storage: backend %s does not support eviction (cache caps need a GCBackend)", s.backend.Name())
		}
	}
	if s.ReqTimeout == 0 {
		s.ReqTimeout = defaultReqTimeout
	}
	s.reqs = make(chan storageReq)
	s.done = make(chan struct{})
	return nil
}

// Start launches the serving goroutine.
func (s *Storage) Start() error {
	go s.serve()
	return nil
}

// Stop closes the intake and waits for the server to drain. Requests
// after Stop fail with ErrStopped.
func (s *Storage) Stop() error {
	close(s.reqs)
	<-s.done
	return nil
}

// ErrStopped reports a request against a stopped module.
var ErrStopped = fmt.Errorf("service: module stopped")

// serve is the single goroutine owning the backend.
func (s *Storage) serve() {
	defer close(s.done)
	for req := range s.reqs {
		// Per-request deadline: the caller's context (already cancelled
		// if the client went away) capped by the module bound.
		base := req.ctx
		if base == nil {
			base = context.Background()
		}
		ctx, cancel := context.WithTimeout(base, s.ReqTimeout)
		var resp storageResp
		switch req.op {
		case opGet:
			out, ok, err := s.backend.Get(ctx, req.key)
			s.stats.Gets++
			if ok {
				s.stats.Hits++
			}
			resp = storageResp{out: out, ok: ok, err: err}
		case opFetch:
			out, ok, err := s.fetch(ctx, req.spec, req.key)
			s.stats.Gets++
			if ok {
				s.stats.Hits++
			}
			resp = storageResp{out: out, ok: ok, err: err}
		case opPut:
			err := s.backend.Put(ctx, req.spec, req.out)
			if err == nil {
				s.stats.Puts++
				err = s.maybeGC(ctx)
			}
			resp = storageResp{err: err}
		case opList:
			infos, err := s.backend.List(ctx)
			resp = storageResp{infos: infos, err: err}
		case opLen:
			n, err := s.backend.Len(ctx)
			resp = storageResp{n: n, err: err}
		case opStats:
			if s.stats.Puts == 0 && s.stats.Cells == 0 {
				s.refreshFootprint(ctx)
			}
			resp = storageResp{stats: s.statsSnapshot()}
		}
		cancel()
		req.reply <- resp
	}
}

// fetch resolves a key with the spec in hand: tiered backends read
// through (and may delegate the simulation to their remote); plain
// backends degrade to Get.
func (s *Storage) fetch(ctx context.Context, spec scenario.Spec, key string) (*scenario.Outcome, bool, error) {
	if f, ok := s.backend.(Fetcher); ok {
		return f.Fetch(ctx, spec, key)
	}
	return s.backend.Get(ctx, key)
}

// statsSnapshot copies the counters and attaches the tier split when the
// backend keeps one.
func (s *Storage) statsSnapshot() StorageStats {
	st := s.stats
	if ts, ok := s.backend.(TierStatter); ok {
		tier := ts.TierStats()
		st.Tier = &tier
	}
	return st
}

// maybeGC runs an eviction pass when caps are configured, then refreshes
// the footprint snapshot.
func (s *Storage) maybeGC(ctx context.Context) error {
	if s.gc.Enabled() {
		res, err := s.backend.(GCBackend).GC(ctx, s.gc)
		if err != nil {
			return err
		}
		s.stats.Evicted += int64(len(res.Evicted))
		s.stats.Cells = int64(res.Remaining)
		s.stats.Bytes = res.RemainingBytes
		return nil
	}
	s.refreshFootprint(ctx)
	return nil
}

// refreshFootprint recomputes the Cells/Bytes snapshot from a listing.
func (s *Storage) refreshFootprint(ctx context.Context) {
	infos, err := s.backend.List(ctx)
	if err != nil {
		return // footprint is advisory; the next pass retries
	}
	s.stats.Cells = int64(len(infos))
	s.stats.Bytes = 0
	for _, info := range infos {
		s.stats.Bytes += info.Size
	}
}

// call sends one request, translating a stopped module into ErrStopped
// instead of a panic on the closed channel.
func (s *Storage) call(req storageReq) (resp storageResp) {
	defer func() {
		if recover() != nil {
			resp = storageResp{err: ErrStopped}
		}
	}()
	req.reply = make(chan storageResp, 1)
	s.reqs <- req
	return <-req.reply
}

// Get looks a content key up in the backend.
func (s *Storage) Get(ctx context.Context, key string) (*scenario.Outcome, bool, error) {
	resp := s.call(storageReq{op: opGet, ctx: ctx, key: key})
	return resp.out, resp.ok, resp.err
}

// Fetch looks a key up with the spec available, letting a tiered
// backend resolve the miss remotely (the queue's workers use this so a
// miss costs the fleet one simulation, wherever it runs).
func (s *Storage) Fetch(ctx context.Context, spec scenario.Spec, key string) (*scenario.Outcome, bool, error) {
	resp := s.call(storageReq{op: opFetch, ctx: ctx, spec: spec, key: key})
	return resp.out, resp.ok, resp.err
}

// Put persists an outcome and, when caps are configured, trims the
// cache tier in the same serialized step.
func (s *Storage) Put(ctx context.Context, spec scenario.Spec, out *scenario.Outcome) error {
	return s.call(storageReq{op: opPut, ctx: ctx, spec: spec, out: out}).err
}

// List inspects the backend's cells.
func (s *Storage) List(ctx context.Context) ([]scenario.CellInfo, error) {
	resp := s.call(storageReq{op: opList, ctx: ctx})
	return resp.infos, resp.err
}

// Len counts the backend's cells.
func (s *Storage) Len(ctx context.Context) (int, error) {
	resp := s.call(storageReq{op: opLen, ctx: ctx})
	return resp.n, resp.err
}

// Stats snapshots the module's accounting.
func (s *Storage) Stats(ctx context.Context) (StorageStats, error) {
	resp := s.call(storageReq{op: opStats, ctx: ctx})
	return resp.stats, resp.err
}
