// Package service is the scenario layer as a long-running daemon: an
// HTTP API over a sharded job queue over a pluggable storage backend,
// with the content-addressed scenario.Store as the cache tier. A
// repeated spec is a store hit (~tens of µs) instead of a simulation
// (~hundreds of µs to ms), which is exactly the shape that serves heavy
// repeated traffic; the singleflight job table makes a thundering herd
// on one spec run one simulation.
//
// The package is organized as modules under a coordinator — the
// Configure/Start/Stop lifecycle in the spirit of jbvmio/modules'
// Coordinator interface — so subsystems compose declaratively and stop
// in reverse start order:
//
//	storage  — owns the Backend, serialized behind a request/reply channel
//	queue    — N sharded workers, in-flight dedup (singleflight)
//	http     — the /v1/scenarios API surface
//
// The storage Backend interface (context-threaded Get/Put/List/Len,
// plus the optional Fetcher read-through hook) is the pluggability
// point: the on-disk scenario.Store is the canonical backend, an
// in-memory backend ships for tests and ephemeral daemons, and
// RemoteBackend tiers either onto another scenariod — local tier first,
// read-through to the shared tier on a miss, write-through on puts,
// and a circuit breaker that degrades the daemon to local-only when
// the remote is down, slow, or erroring (remote trouble can only cost
// cache hits, never a submit).
//
// Unlike every other internal package, service is *not* a deterministic
// simulation layer: it legitimately reads the wall clock and talks to
// the network. It is therefore exempt from the detsource analyzer's
// deterministic-package list (internal/lint pins that list; a test
// asserts the scoping), while the other analyzers still apply.
package service

import (
	"errors"
	"fmt"
)

// Module is one subsystem with a managed lifecycle. Configure validates
// configuration and allocates internal structures (channels, tables) but
// must not touch outside resources — no sockets, no disk writes; Start
// acquires resources and launches goroutines, returning once the module
// is serving; Stop reverses Start, returning once every goroutine has
// drained. Configure is called exactly once before Start; Stop is only
// called after a successful Start.
type Module interface {
	// Name identifies the module in errors and logs.
	Name() string
	Configure() error
	Start() error
	Stop() error
}

// Coordinator composes modules: Configure and Start walk the modules in
// registration order (dependencies first), Stop walks them in reverse,
// so a module's dependencies outlive it on both ends of the lifecycle.
type Coordinator struct {
	modules []Module
	started int // prefix of modules successfully started
}

// NewCoordinator builds a coordinator over the modules in dependency
// order: the first module is started first and stopped last.
func NewCoordinator(mods ...Module) *Coordinator {
	return &Coordinator{modules: mods}
}

// Configure configures every module in order, stopping at the first
// error.
func (c *Coordinator) Configure() error {
	for _, m := range c.modules {
		if err := m.Configure(); err != nil {
			return fmt.Errorf("service: configuring %s: %w", m.Name(), err)
		}
	}
	return nil
}

// Start starts every module in order. On failure the modules already
// running are stopped in reverse, so Start either leaves everything
// serving or nothing.
func (c *Coordinator) Start() error {
	for i, m := range c.modules {
		if err := m.Start(); err != nil {
			c.started = i
			_ = c.stopStarted()
			return fmt.Errorf("service: starting %s: %w", m.Name(), err)
		}
	}
	c.started = len(c.modules)
	return nil
}

// Stop stops the started modules in reverse order, collecting every
// error (a failing module must not shield the ones below it from
// stopping).
func (c *Coordinator) Stop() error {
	return c.stopStarted()
}

func (c *Coordinator) stopStarted() error {
	var errs []error
	for i := c.started - 1; i >= 0; i-- {
		m := c.modules[i]
		if err := m.Stop(); err != nil {
			errs = append(errs, fmt.Errorf("service: stopping %s: %w", m.Name(), err))
		}
	}
	c.started = 0
	return errors.Join(errs...)
}
