// Package tuning implements the controller tuning machinery of Sec. IV-A:
// the Ziegler–Nichols closed-loop method (find the ultimate gain K_u whose
// proportional-only loop oscillates indefinitely at steady state, measure
// the ultimate period P_u, then apply the rule table of Eqs. 5–7), a relay
// (Åström–Hägglund) autotuner as a faster alternative, and the sustained-
// oscillation classifier both need.
//
// The tuner drives a Plant: one closed-loop decision step at a time, on
// the simulated clock. The sim package adapts the full server model
// (thermal + non-ideal sensing) to this interface.
package tuning

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/stats"
	"repro/internal/units"
)

// Plant is a single-input single-output process under test: fan speed
// command in, DTM-visible measured temperature out, advanced one fan
// control period per Step.
type Plant interface {
	// Reset returns the plant to its initial operating condition.
	Reset()
	// Step applies the fan speed for one control period and returns the
	// measurement visible at the end of the period.
	Step(s units.RPM) units.Celsius
	// ControlPeriod returns the duration of one Step in seconds.
	ControlPeriod() units.Seconds
}

// Verdict classifies a closed-loop response.
type Verdict int

// Verdict values, ordered by oscillatory energy.
const (
	// Quiet: no significant oscillation detected.
	Quiet Verdict = iota
	// Decaying: oscillation present but shrinking.
	Decaying
	// Sustained: steady limit-cycle oscillation (the Z-N target).
	Sustained
	// Growing: oscillation amplitude increasing — unstable.
	Growing
)

// String implements fmt.Stringer.
func (v Verdict) String() string {
	switch v {
	case Quiet:
		return "quiet"
	case Decaying:
		return "decaying"
	case Sustained:
		return "sustained"
	case Growing:
		return "growing"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Oscillation summarizes the oscillatory content of a sampled signal.
type Oscillation struct {
	Verdict   Verdict
	Amplitude float64 // mean half peak-to-peak excursion
	Period    float64 // in samples; multiply by the control period for seconds
	Trend     float64 // late/early amplitude ratio (1 = sustained)
}

// Classify analyzes a signal for sustained oscillation. prominence sets
// the minimum excursion that counts as a peak (noise floor); sustainedTol
// brackets the amplitude-trend ratio accepted as "sustained"
// (e.g. 0.25 accepts trends in [0.75, 1.33]).
func Classify(xs []float64, prominence, sustainedTol float64) Oscillation {
	peaks := stats.FindPeaks(xs, prominence)
	if len(peaks) < 4 {
		return Oscillation{Verdict: Quiet}
	}
	amp := stats.PeakAmplitude(peaks)
	period := stats.PeakSpacing(peaks)
	trend := stats.AmplitudeTrend(peaks)
	o := Oscillation{Amplitude: amp, Period: period, Trend: trend}
	lo, hi := 1-sustainedTol, 1/(1-sustainedTol)
	switch {
	case trend > hi:
		o.Verdict = Growing
	case trend >= lo:
		o.Verdict = Sustained
	default:
		o.Verdict = Decaying
	}
	return o
}

// ZNConfig parameterizes the closed-loop ultimate-gain search.
type ZNConfig struct {
	RefTemp  units.Celsius // set-point the P-only loop tracks
	RefSpeed units.RPM     // Eq. 4 offset s_ref at the operating point
	Limits   control.Limits
	// KPLo and KPHi bracket the search. KPLo must be stable (decaying)
	// and KPHi unstable (growing); FindUltimate verifies both.
	KPLo, KPHi float64
	// Steps per trial run and warmup steps run before the perturbation.
	Steps, Warmup int
	// PulseRPM and PulseSteps define the excitation: after warmup the
	// commanded speed is offset by PulseRPM for PulseSteps decisions,
	// then the loop is observed. Defaults: 20% of RefSpeed, 4 steps.
	// Without excitation a noiseless stable loop sits at exactly zero
	// error and every gain would classify as quiet.
	PulseRPM   units.RPM
	PulseSteps int
	// Prominence for peak detection in °C (noise floor). Default 0.1.
	Prominence float64
	// SustainedTol brackets the sustained verdict. Default 0.35.
	SustainedTol float64
	// Iterations bounds the bisection. Default 24.
	Iterations int
	// SatFraction is the fraction of post-pulse steps pinned at an
	// actuator limit above which the trial is declared unstable even if
	// the rail-to-rail cycle looks "sustained". Default 0.25.
	SatFraction float64

	// Spawn builds an additional, independent plant at the same operating
	// point. When both Spawn and Parallel are set, FindUltimate bisects
	// speculatively: each round evaluates the current midpoint and both
	// candidate next midpoints concurrently on three plants, consuming two
	// bisection iterations per round — about half the wall time on a
	// multi-core host. The result is bit-identical to the serial search
	// (the speculative evaluations it consumes are exactly the gains the
	// serial loop would visit; the rest are discarded), provided Spawn's
	// plants respond identically to the primary after Reset — true of
	// deterministic simulated plants.
	Spawn func() (Plant, error)
	// Parallel executes fn(0..n-1) concurrently and returns when all
	// calls finish (sim.ParallelFor adapts directly). Nil disables
	// speculation.
	Parallel func(n int, fn func(i int)) error
}

func (c *ZNConfig) setDefaults() {
	if c.Steps == 0 {
		c.Steps = 160
	}
	if c.Warmup == 0 {
		c.Warmup = 40
	}
	if c.PulseRPM == 0 {
		c.PulseRPM = c.RefSpeed / 5
		if c.PulseRPM < 100 {
			c.PulseRPM = 100
		}
	}
	if c.PulseSteps == 0 {
		c.PulseSteps = 4
	}
	if c.Prominence == 0 {
		c.Prominence = 0.1
	}
	if c.SustainedTol == 0 {
		c.SustainedTol = 0.35
	}
	if c.Iterations == 0 {
		c.Iterations = 24
	}
	if c.SatFraction == 0 {
		c.SatFraction = 0.25
	}
}

// Ultimate is the result of an ultimate-gain experiment.
type Ultimate struct {
	Ku units.RPM     // per °C: the proportional gain at the stability boundary
	Pu units.Seconds // the ultimate oscillation period
}

// bisectSpeculative advances the ultimate-gain bisection two iterations
// per concurrent round: the current midpoint and both candidate next
// midpoints (the gains the serial loop would evaluate next, depending on
// the midpoint's verdict) are classified in parallel on three independent
// plants; the round then consumes the midpoint and whichever speculative
// result the serial loop would have visited, discarding the other. Every
// consumed (gain, verdict) pair is exactly the serial sequence, so the
// search result is bit-identical at roughly half the wall time when three
// evaluations fit the machine.
func bisectSpeculative(p Plant, cfg ZNConfig,
	consume func(float64, Oscillation), bracket func() (float64, float64)) error {
	p2, err := cfg.Spawn()
	if err != nil {
		return fmt.Errorf("tuning: spawning speculative plant: %w", err)
	}
	p3, err := cfg.Spawn()
	if err != nil {
		return fmt.Errorf("tuning: spawning speculative plant: %w", err)
	}
	plants := [3]Plant{p, p2, p3}
	for done := 0; done < cfg.Iterations; {
		lo, hi := bracket()
		mid := (lo + hi) / 2
		// The two futures: hi=mid makes the next midpoint (lo+mid)/2,
		// lo=mid makes it (mid+hi)/2 — identical expressions to the ones
		// the serial loop would evaluate, so the consumed sequence is
		// bit-equal.
		gains := [3]float64{mid, (lo + mid) / 2, (mid + hi) / 2}
		var os [3]Oscillation
		if err := cfg.Parallel(3, func(i int) {
			os[i] = classifyGain(plants[i], cfg, gains[i])
		}); err != nil {
			return err
		}
		consume(mid, os[0])
		done++
		if done >= cfg.Iterations {
			break
		}
		if os[0].Verdict == Growing {
			consume(gains[1], os[1])
		} else {
			consume(gains[2], os[2])
		}
		done++
	}
	return nil
}

// runPOnly drives a proportional-only loop at gain kp: warmup to settle,
// a pulse perturbation to excite the loop, then observation. It returns
// the post-pulse measurement trace and the fraction of observed steps the
// actuator spent pinned at a limit.
func runPOnly(p Plant, cfg ZNConfig, kp float64) (trace []float64, satFrac float64) {
	p.Reset()
	pid, err := control.NewPID(control.PIDConfig{
		Gains:    control.PIDGains{KP: kp},
		RefSpeed: cfg.RefSpeed,
		RefTemp:  cfg.RefTemp,
		Limits:   cfg.Limits,
	})
	if err != nil {
		panic(err) // gains >= 0 and validated limits by FindUltimate
	}
	s := cfg.RefSpeed
	total := cfg.Warmup + cfg.PulseSteps + cfg.Steps
	trace = make([]float64, 0, cfg.Steps)
	saturated := 0
	for k := 0; k < total; k++ {
		cmd := s
		if k >= cfg.Warmup && k < cfg.Warmup+cfg.PulseSteps {
			cmd = cfg.Limits.Clamp(s - cfg.PulseRPM) // heat the plant briefly
		}
		meas := p.Step(cmd)
		if k >= cfg.Warmup+cfg.PulseSteps {
			trace = append(trace, float64(meas))
			if s <= cfg.Limits.Min || s >= cfg.Limits.Max {
				saturated++
			}
		}
		s = pid.Decide(control.FanInputs{Meas: meas, Actual: cmd})
	}
	if cfg.Steps > 0 {
		satFrac = float64(saturated) / float64(cfg.Steps)
	}
	return trace, satFrac
}

// classifyGain runs one P-only trial and classifies it. Trials that spend
// a large fraction of their time pinned at an actuator limit are declared
// Growing regardless of the waveform: a rail-to-rail limit cycle is
// instability for Z-N purposes, not sustained oscillation at the boundary.
func classifyGain(p Plant, cfg ZNConfig, kp float64) Oscillation {
	trace, satFrac := runPOnly(p, cfg, kp)
	o := Classify(trace, cfg.Prominence, cfg.SustainedTol)
	if satFrac > cfg.SatFraction {
		o.Verdict = Growing
	}
	return o
}

// FindUltimate locates the ultimate gain K_u and period P_u by bisection
// between a stable and an unstable proportional gain (Sec. IV-A: "finding
// the value of the proportional-only gain that causes the control loop to
// oscillate indefinitely at steady state"). With ZNConfig.Spawn and
// ZNConfig.Parallel set it bisects speculatively — both candidate next
// midpoints are evaluated alongside the current one, so two iterations
// land per concurrent round — with bit-identical results.
func FindUltimate(p Plant, cfg ZNConfig) (Ultimate, error) {
	cfg.setDefaults()
	if err := cfg.Limits.Validate(); err != nil {
		return Ultimate{}, err
	}
	if cfg.KPLo <= 0 || cfg.KPHi <= cfg.KPLo {
		return Ultimate{}, fmt.Errorf("tuning: bad bracket [%v, %v]", cfg.KPLo, cfg.KPHi)
	}
	lo, hi := cfg.KPLo, cfg.KPHi
	if v := classifyGain(p, cfg, lo).Verdict; v == Growing {
		return Ultimate{}, fmt.Errorf("tuning: lower bracket %v already unstable", lo)
	}
	if v := classifyGain(p, cfg, hi).Verdict; v != Growing && v != Sustained {
		return Ultimate{}, fmt.Errorf("tuning: upper bracket %v not unstable (%v)", hi, v)
	}
	best := Oscillation{}
	bestKp := 0.0
	// consume folds one evaluated gain into the bisection state, the
	// single transition both search modes share.
	consume := func(kp float64, o Oscillation) {
		switch o.Verdict {
		case Growing:
			hi = kp
		case Sustained:
			// Keep the largest sustained gain seen; continue tightening
			// toward the true boundary from below.
			if kp > bestKp {
				best, bestKp = o, kp
			}
			lo = kp
		default:
			lo = kp
		}
	}
	if cfg.Spawn != nil && cfg.Parallel != nil {
		if err := bisectSpeculative(p, cfg, consume, func() (float64, float64) { return lo, hi }); err != nil {
			return Ultimate{}, err
		}
	} else {
		for i := 0; i < cfg.Iterations; i++ {
			mid := (lo + hi) / 2
			consume(mid, classifyGain(p, cfg, mid))
		}
	}
	if bestKp == 0 {
		// The boundary was crossed without landing on a "sustained"
		// verdict (classification bands can be narrow); use the midpoint
		// and measure the period at the last stable-ish gain.
		bestKp = (lo + hi) / 2
		best = classifyGain(p, cfg, bestKp)
		if best.Period == 0 {
			best = classifyGain(p, cfg, hi)
		}
		if best.Period == 0 {
			return Ultimate{}, fmt.Errorf("tuning: could not measure ultimate period near kp=%v", bestKp)
		}
	}
	return Ultimate{
		Ku: units.RPM(bestKp),
		Pu: units.Seconds(best.Period) * p.ControlPeriod(),
	}, nil
}
