package tuning

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/units"
)

// Rule is a Ziegler–Nichols-type tuning rule mapping (K_u, P_u) to PID
// parameters in the classic continuous parameterization
//
//	KP = KPFactor * Ku,  Ti = TiFactor * Pu,  Td = TdFactor * Pu,
//
// discretized for the Eq. 4 positional sum form at control period h as
//
//	KI_step = KP * h / Ti,   KD_step = KP * Td / h.
//
// TiFactor == 0 disables the integral term (pure P/PD rules).
type Rule struct {
	Name     string
	KPFactor float64
	TiFactor float64
	TdFactor float64
}

// The standard rule table. ClassicPID is the paper's Eqs. 5–7
// (KP = 0.6 Ku, KI = KP·2/Pu, KD = KP·Pu/8, i.e. Ti = Pu/2, Td = Pu/8).
var (
	ClassicPID     = Rule{Name: "classic-pid", KPFactor: 0.6, TiFactor: 0.5, TdFactor: 0.125}
	ClassicPI      = Rule{Name: "classic-pi", KPFactor: 0.45, TiFactor: 1 / 1.2}
	ClassicP       = Rule{Name: "classic-p", KPFactor: 0.5}
	PessenIntegral = Rule{Name: "pessen", KPFactor: 0.7, TiFactor: 0.4, TdFactor: 0.15}
	SomeOvershoot  = Rule{Name: "some-overshoot", KPFactor: 0.33, TiFactor: 0.5, TdFactor: 1.0 / 3}
	NoOvershoot    = Rule{Name: "no-overshoot", KPFactor: 0.2, TiFactor: 0.5, TdFactor: 1.0 / 3}
)

// Rules lists every built-in rule, for sweeps and the tuning CLI.
var Rules = []Rule{ClassicPID, ClassicPI, ClassicP, PessenIntegral, SomeOvershoot, NoOvershoot}

// RuleByName returns the built-in rule with the given name.
func RuleByName(name string) (Rule, error) {
	for _, r := range Rules {
		if r.Name == name {
			return r, nil
		}
	}
	return Rule{}, fmt.Errorf("tuning: unknown rule %q", name)
}

// Gains applies the rule to an ultimate-gain measurement, producing
// per-step discrete gains for a controller running every h seconds.
func (r Rule) Gains(u Ultimate, h units.Seconds) (control.PIDGains, error) {
	if u.Ku <= 0 || u.Pu <= 0 {
		return control.PIDGains{}, fmt.Errorf("tuning: bad ultimate point %+v", u)
	}
	if h <= 0 {
		return control.PIDGains{}, fmt.Errorf("tuning: non-positive control period %v", h)
	}
	kp := r.KPFactor * float64(u.Ku)
	g := control.PIDGains{KP: kp}
	if r.TiFactor > 0 {
		ti := r.TiFactor * float64(u.Pu)
		g.KI = kp * float64(h) / ti
	}
	if r.TdFactor > 0 {
		td := r.TdFactor * float64(u.Pu)
		g.KD = kp * td / float64(h)
	}
	return g, nil
}

// TuneRegion runs the full closed-loop Z-N procedure at one operating
// point and returns the gain-scheduling region for the adaptive controller.
func TuneRegion(p Plant, cfg ZNConfig, rule Rule) (control.Region, Ultimate, error) {
	u, err := FindUltimate(p, cfg)
	if err != nil {
		return control.Region{}, Ultimate{}, err
	}
	g, err := rule.Gains(u, p.ControlPeriod())
	if err != nil {
		return control.Region{}, Ultimate{}, err
	}
	return control.Region{RefSpeed: cfg.RefSpeed, Gains: g}, u, nil
}
