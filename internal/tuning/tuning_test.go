package tuning

import (
	"errors"
	"math"
	"sync"
	"testing"

	"repro/internal/control"
	"repro/internal/units"
)

// linearPlant is a first-order lag with static gain and a whole-step
// measurement delay: the analytic stand-in for the server around one
// operating point. With pole a = exp(-h/tau) and one-step delay, a P-only
// loop crosses the stability boundary at K_u = 1 / ((1-a)·|g|).
type linearPlant struct {
	g      float64 // °C per rpm, negative (more fan, cooler)
	tau    float64 // seconds
	h      float64 // control period, seconds
	t0     float64 // temperature at the operating speed s0
	s0     float64
	nDelay int // measurement delay in whole steps

	temp float64
	hist []float64
}

func newLinearPlant(g, tau, h, t0, s0 float64, nDelay int) *linearPlant {
	p := &linearPlant{g: g, tau: tau, h: h, t0: t0, s0: s0, nDelay: nDelay}
	p.Reset()
	return p
}

func (p *linearPlant) Reset() {
	p.temp = p.t0
	p.hist = p.hist[:0]
}

func (p *linearPlant) Step(s units.RPM) units.Celsius {
	ss := p.t0 + p.g*(float64(s)-p.s0)
	a := math.Exp(-p.h / p.tau)
	p.temp = ss + (p.temp-ss)*a
	p.hist = append(p.hist, p.temp)
	idx := len(p.hist) - 1 - p.nDelay
	if idx < 0 {
		idx = 0
	}
	return units.Celsius(p.hist[idx])
}

func (p *linearPlant) ControlPeriod() units.Seconds { return units.Seconds(p.h) }

func (p *linearPlant) analyticKu() float64 {
	a := math.Exp(-p.h / p.tau)
	return 1 / ((1 - a) * math.Abs(p.g))
}

func TestClassifyVerdicts(t *testing.T) {
	n := 200
	sustained := make([]float64, n)
	decaying := make([]float64, n)
	growing := make([]float64, n)
	quiet := make([]float64, n)
	for i := range sustained {
		ph := 2 * math.Pi * float64(i) / 12
		sustained[i] = 75 + 2*math.Sin(ph)
		decaying[i] = 75 + 2*math.Exp(-float64(i)/40)*math.Sin(ph)
		growing[i] = 75 + 0.5*math.Exp(float64(i)/60)*math.Sin(ph)
		quiet[i] = 75
	}
	cases := []struct {
		name string
		xs   []float64
		want Verdict
	}{
		{"sustained", sustained, Sustained},
		{"decaying", decaying, Decaying},
		{"growing", growing, Growing},
		{"quiet", quiet, Quiet},
	}
	for _, tc := range cases {
		if got := Classify(tc.xs, 0.3, 0.35); got.Verdict != tc.want {
			t.Errorf("%s: verdict = %v (trend %.2f), want %v", tc.name, got.Verdict, got.Trend, tc.want)
		}
	}
}

func TestClassifyMeasuresAmplitudeAndPeriod(t *testing.T) {
	n := 300
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 75 + 3*math.Sin(2*math.Pi*float64(i)/15)
	}
	o := Classify(xs, 0.3, 0.35)
	if math.Abs(o.Amplitude-3) > 0.3 {
		t.Errorf("amplitude = %v, want ~3", o.Amplitude)
	}
	if math.Abs(o.Period-15) > 1.5 {
		t.Errorf("period = %v, want ~15", o.Period)
	}
}

func TestVerdictString(t *testing.T) {
	for v, want := range map[Verdict]string{
		Quiet: "quiet", Decaying: "decaying", Sustained: "sustained",
		Growing: "growing", Verdict(9): "Verdict(9)",
	} {
		if v.String() != want {
			t.Errorf("String(%d) = %q", int(v), v.String())
		}
	}
}

func znConfig(kpLo, kpHi float64) ZNConfig {
	return ZNConfig{
		RefTemp:  75,
		RefSpeed: 2000,
		Limits:   control.Limits{Min: 100, Max: 100000},
		KPLo:     kpLo,
		KPHi:     kpHi,
	}
}

func TestFindUltimateMatchesAnalyticBoundary(t *testing.T) {
	// Server-like operating point at 2000 rpm: g = -7.7e-3 C/rpm,
	// tau = 90 s, h = 30 s, one-step measurement delay.
	p := newLinearPlant(-7.7e-3, 90, 30, 75, 2000, 1)
	want := p.analyticKu()
	u, err := FindUltimate(p, znConfig(want/10, want*4))
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(u.Ku) / want; ratio < 0.7 || ratio > 1.3 {
		t.Errorf("Ku = %v, analytic %v (ratio %.2f)", u.Ku, want, ratio)
	}
	// Ultimate period: z = e^{±i*acos(a/2)} -> period = 2*pi/theta steps.
	a := math.Exp(-30.0 / 90)
	theta := math.Acos(a / 2)
	wantPu := 2 * math.Pi / theta * 30
	if ratio := float64(u.Pu) / wantPu; ratio < 0.6 || ratio > 1.6 {
		t.Errorf("Pu = %v, analytic %v", u.Pu, wantPu)
	}
}

func TestFindUltimateGainScalesWithPlantGain(t *testing.T) {
	// The low-gain operating point (6000 rpm-like, |g| 8x smaller) must
	// yield a proportionally larger Ku: the heart of Fig. 3.
	pLow := newLinearPlant(-7.7e-3, 90, 30, 75, 2000, 1)
	pHigh := newLinearPlant(-0.96e-3, 64, 30, 68, 6000, 1)
	uLow, err := FindUltimate(pLow, znConfig(50, 4000))
	if err != nil {
		t.Fatal(err)
	}
	cfgHigh := znConfig(400, 32000)
	cfgHigh.RefSpeed = 6000
	uHigh, err := FindUltimate(pHigh, cfgHigh)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(uHigh.Ku) / float64(uLow.Ku)
	if ratio < 4 || ratio > 14 {
		t.Errorf("Ku(6000)/Ku(2000) = %.2f, want ~8 (plant gain ratio)", ratio)
	}
}

// goParallel is a real concurrent executor for speculation tests: all n
// calls run on their own goroutines, so cross-plant interference or
// ordering assumptions would surface here.
func goParallel(n int, fn func(i int)) error {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			fn(i)
		}(i)
	}
	wg.Wait()
	return nil
}

// TestFindUltimateSpeculativeBitIdentical: the speculative parallel
// bisection must return exactly the serial result — same Ku, same Pu —
// at even and odd iteration budgets.
func TestFindUltimateSpeculativeBitIdentical(t *testing.T) {
	mk := func() *linearPlant { return newLinearPlant(-7.7e-3, 90, 30, 75, 2000, 1) }
	for _, iters := range []int{0, 7, 24} { // 0 = default
		cfg := znConfig(50, 4000)
		cfg.Iterations = iters
		serial, err := FindUltimate(mk(), cfg)
		if err != nil {
			t.Fatal(err)
		}
		spec := cfg
		spec.Spawn = func() (Plant, error) { return mk(), nil }
		spec.Parallel = goParallel
		got, err := FindUltimate(mk(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial {
			t.Errorf("iterations=%d: speculative %+v != serial %+v", iters, got, serial)
		}
	}
}

// TestFindUltimateSpeculativeSpawnError: a failing plant factory surfaces
// instead of silently degrading.
func TestFindUltimateSpeculativeSpawnError(t *testing.T) {
	cfg := znConfig(50, 4000)
	cfg.Spawn = func() (Plant, error) { return nil, errors.New("no plant") }
	cfg.Parallel = goParallel
	if _, err := FindUltimate(newLinearPlant(-7.7e-3, 90, 30, 75, 2000, 1), cfg); err == nil {
		t.Fatal("spawn failure not reported")
	}
}

func TestFindUltimateBracketValidation(t *testing.T) {
	p := newLinearPlant(-7.7e-3, 90, 30, 75, 2000, 1)
	if _, err := FindUltimate(p, znConfig(0, 100)); err == nil {
		t.Error("zero lower bracket accepted")
	}
	if _, err := FindUltimate(p, znConfig(100, 50)); err == nil {
		t.Error("inverted bracket accepted")
	}
	// Lower bracket already unstable.
	ku := p.analyticKu()
	if _, err := FindUltimate(p, znConfig(ku*3, ku*6)); err == nil {
		t.Error("unstable lower bracket accepted")
	}
	// Upper bracket still stable.
	if _, err := FindUltimate(p, znConfig(ku/100, ku/50)); err == nil {
		t.Error("stable upper bracket accepted")
	}
	bad := znConfig(1, 100)
	bad.Limits = control.Limits{Min: 100, Max: 10}
	if _, err := FindUltimate(p, bad); err == nil {
		t.Error("bad limits accepted")
	}
}

func TestRuleGainsClassicPIDMatchesPaperEqs(t *testing.T) {
	// Eqs. 5-7: KP = 0.6 Ku; KI = KP*(2/Pu); KD = KP*(Pu/8). With the
	// per-step discretization at h: KI_step = KP*h*2/Pu, KD_step = KP*Pu/(8h).
	u := Ultimate{Ku: 1000, Pu: 120}
	g, err := ClassicPID.Gains(u, 30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(g.KP-600) > 1e-9 {
		t.Errorf("KP = %v, want 600", g.KP)
	}
	if want := 600 * 30 * 2 / 120.0; math.Abs(g.KI-want) > 1e-9 {
		t.Errorf("KI = %v, want %v", g.KI, want)
	}
	if want := 600 * 120 / (8 * 30.0); math.Abs(g.KD-want) > 1e-9 {
		t.Errorf("KD = %v, want %v", g.KD, want)
	}
}

func TestRuleGainsValidation(t *testing.T) {
	if _, err := ClassicPID.Gains(Ultimate{Ku: 0, Pu: 10}, 30); err == nil {
		t.Error("zero Ku accepted")
	}
	if _, err := ClassicPID.Gains(Ultimate{Ku: 10, Pu: 0}, 30); err == nil {
		t.Error("zero Pu accepted")
	}
	if _, err := ClassicPID.Gains(Ultimate{Ku: 10, Pu: 10}, 0); err == nil {
		t.Error("zero period accepted")
	}
}

func TestRuleVariants(t *testing.T) {
	u := Ultimate{Ku: 1000, Pu: 100}
	pOnly, _ := ClassicP.Gains(u, 30)
	if pOnly.KI != 0 || pOnly.KD != 0 || pOnly.KP != 500 {
		t.Errorf("classic-p = %+v", pOnly)
	}
	pi, _ := ClassicPI.Gains(u, 30)
	if pi.KD != 0 || pi.KI == 0 {
		t.Errorf("classic-pi = %+v", pi)
	}
	no, _ := NoOvershoot.Gains(u, 30)
	some, _ := SomeOvershoot.Gains(u, 30)
	if no.KP >= some.KP {
		t.Error("no-overshoot must be gentler than some-overshoot")
	}
}

func TestRuleByName(t *testing.T) {
	r, err := RuleByName("classic-pid")
	if err != nil || r.Name != "classic-pid" {
		t.Errorf("RuleByName = %+v, %v", r, err)
	}
	if _, err := RuleByName("nope"); err == nil {
		t.Error("unknown rule accepted")
	}
}

func TestTunedGainsStabilizeThePlant(t *testing.T) {
	// End-to-end: tune at the operating point, then verify the full PID
	// closed loop converges to the set-point without sustained oscillation.
	// The gentler some-overshoot ZN-type rule is the simulator's default:
	// with P_u only ~5 control samples, quarter-decay classic gains sit on
	// the discrete stability boundary (see DESIGN.md).
	p := newLinearPlant(-7.7e-3, 90, 30, 78, 2000, 1)
	region, u, err := TuneRegion(p, znConfig(50, 4000), SomeOvershoot)
	if err != nil {
		t.Fatal(err)
	}
	if u.Ku <= 0 || u.Pu <= 0 {
		t.Fatalf("bad ultimate %+v", u)
	}
	pid, err := control.NewPID(control.PIDConfig{
		Gains:    region.Gains,
		RefSpeed: 2000,
		RefTemp:  75,
		Limits:   control.Limits{Min: 100, Max: 100000},
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Reset()
	s := units.RPM(2000)
	trace := make([]float64, 0, 200)
	for k := 0; k < 200; k++ {
		m := p.Step(s)
		trace = append(trace, float64(m))
		s = pid.Decide(control.FanInputs{Meas: m, Actual: s})
	}
	// Late-window error must be small and not oscillating.
	late := trace[150:]
	for _, v := range late {
		if math.Abs(v-75) > 1.0 {
			t.Fatalf("closed loop did not settle: late value %v", v)
		}
	}
	if o := Classify(late, 0.3, 0.35); o.Verdict == Sustained || o.Verdict == Growing {
		t.Errorf("tuned loop oscillates: %+v", o)
	}
}

func TestRelayTuneAgreesWithBisection(t *testing.T) {
	p := newLinearPlant(-7.7e-3, 90, 30, 75, 2000, 1)
	uZN, err := FindUltimate(p, znConfig(50, 4000))
	if err != nil {
		t.Fatal(err)
	}
	uRelay, err := RelayTune(p, RelayConfig{
		RefTemp:   75,
		RefSpeed:  2000,
		Amplitude: 300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if ratio := float64(uRelay.Ku) / float64(uZN.Ku); ratio < 0.5 || ratio > 2 {
		t.Errorf("relay Ku %v vs bisection Ku %v (ratio %.2f)", uRelay.Ku, uZN.Ku, ratio)
	}
	if ratio := float64(uRelay.Pu) / float64(uZN.Pu); ratio < 0.5 || ratio > 2 {
		t.Errorf("relay Pu %v vs bisection Pu %v", uRelay.Pu, uZN.Pu)
	}
}

func TestRelayTuneValidation(t *testing.T) {
	p := newLinearPlant(-7.7e-3, 90, 30, 75, 2000, 1)
	if _, err := RelayTune(p, RelayConfig{Amplitude: 0}); err == nil {
		t.Error("zero amplitude accepted")
	}
	// A relay on a plant with no dynamics (gain 0) produces no cycle.
	flat := newLinearPlant(0, 90, 30, 75, 2000, 0)
	if _, err := RelayTune(flat, RelayConfig{RefTemp: 75, RefSpeed: 2000, Amplitude: 300}); err == nil {
		t.Error("flat plant relay should fail")
	}
}
