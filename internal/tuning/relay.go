package tuning

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// RelayConfig parameterizes the relay (Åström–Hägglund) autotuning
// experiment: instead of searching for the ultimate gain, a relay of
// amplitude d around the operating fan speed forces a limit cycle whose
// amplitude a and period give K_u = 4d / (π a) and P_u directly. One
// experiment replaces the whole bisection, at the cost of a describing-
// function approximation.
type RelayConfig struct {
	RefTemp   units.Celsius // set-point the relay switches around
	RefSpeed  units.RPM     // operating fan speed the relay straddles
	Amplitude units.RPM     // relay half-amplitude d
	Steps     int           // total closed-loop steps (default 200)
	Warmup    int           // steps discarded before measuring (default 60)
	// Prominence for peak detection in °C. Default 0.1.
	Prominence float64
}

func (c *RelayConfig) setDefaults() {
	if c.Steps == 0 {
		c.Steps = 200
	}
	if c.Warmup == 0 {
		c.Warmup = 60
	}
	if c.Prominence == 0 {
		c.Prominence = 0.1
	}
}

// RelayTune runs the relay experiment against the plant and returns the
// estimated ultimate point.
func RelayTune(p Plant, cfg RelayConfig) (Ultimate, error) {
	cfg.setDefaults()
	if cfg.Amplitude <= 0 {
		return Ultimate{}, fmt.Errorf("tuning: non-positive relay amplitude %v", cfg.Amplitude)
	}
	p.Reset()
	s := cfg.RefSpeed
	meas := make([]float64, 0, cfg.Steps)
	for k := 0; k < cfg.Warmup+cfg.Steps; k++ {
		m := p.Step(s)
		if k >= cfg.Warmup {
			meas = append(meas, float64(m))
		}
		// Hotter than the set-point: push the fan up; cooler: down.
		if m > cfg.RefTemp {
			s = cfg.RefSpeed + cfg.Amplitude
		} else {
			s = cfg.RefSpeed - cfg.Amplitude
		}
	}
	o := Classify(meas, cfg.Prominence, 0.5)
	if o.Verdict == Quiet || o.Amplitude == 0 || o.Period == 0 {
		return Ultimate{}, fmt.Errorf("tuning: relay produced no measurable limit cycle")
	}
	ku := 4 * float64(cfg.Amplitude) / (math.Pi * o.Amplitude)
	return Ultimate{
		Ku: units.RPM(ku),
		Pu: units.Seconds(o.Period) * p.ControlPeriod(),
	}, nil
}
