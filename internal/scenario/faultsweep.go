package scenario

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// This file is the non-ideal-sensing campaign surface: the faultsweep
// kind runner (one faulted cell with pathology metrics distilled from
// per-tick traces), the severity ladder that maps (fault type, severity)
// onto concrete FaultSpec scalars, and the FaultSweep campaign driver
// that crosses fault type x severity x target stack into store-addressed
// cells, compares each against its fault-free baseline, and classifies
// the degradation as graceful, degraded, or pathological.

// The faultsweep pathology metric keys. Both are distilled from the
// recorded per-tick traces, so a cell can report latch signatures without
// persisting the series themselves.
const (
	// MetricMaxViolWindow is the worst violation fraction over any
	// pathologyWindowS-second sliding window — a sustained near-1 value is
	// the "control gave up" signature that a run-mean violation fraction
	// dilutes away.
	MetricMaxViolWindow = "fault_max_viol_window"
	// MetricLatchFrac is the fraction of the final quarter of the run
	// spent with the fan pinned at its ceiling while the utilization cap
	// never released — the latched state a stuck-low sensor can wedge the
	// controller into.
	MetricLatchFrac = "fault_latch_frac"
)

const (
	// pathologyWindowS is the sliding-window span for MetricMaxViolWindow.
	pathologyWindowS = 120.0
	// latchFanEpsRPM / latchCapEps decide "fan pinned at max" and "cap not
	// released" for MetricLatchFrac.
	latchFanEpsRPM = 0.5
	latchCapEps    = 1e-3
	// violEps mirrors the engine's violation comparison tolerance.
	violEps = 1e-9
)

func init() {
	RegisterKind(KindFaultSweep,
		"one non-ideal-sensing campaign cell (faulted target + pathology metrics)",
		runFaultSweep)
}

// runFaultSweep executes the cell's target stack with recording forced
// on, distills the pathology metrics from the traces, and strips the
// series again unless the spec asked for them. The target engine is the
// one the equivalent plain spec would use, so a faultsweep cell differs
// from its baseline only by the injected fault chain.
func runFaultSweep(s Spec) (*Outcome, error) {
	inner := s
	inner.Record = true
	var cfgs []sim.Config
	if len(s.Jobs) > 0 {
		inner.Kind = KindBatch
		inner.Params = nil
		for _, j := range s.Jobs {
			cfg := s.base()
			if j.Config != nil {
				cfg = *j.Config
			}
			cfgs = append(cfgs, cfg)
		}
	} else {
		if _, ok := s.Params["coordinated"]; ok {
			inner.Kind = KindFleetCoord
			var p Params
			for k, v := range s.Params {
				if k == "coordinated" {
					continue
				}
				if p == nil {
					p = Params{}
				}
				p[k] = v
			}
			inner.Params = p
		} else {
			inner.Kind = KindFleet
			inner.Params = nil
		}
		for _, n := range s.Fleet.Nodes {
			cfg := s.base()
			if n.Config != nil {
				cfg = *n.Config
			}
			cfgs = append(cfgs, cfg)
		}
	}
	runner, ok := kindRunner(inner.Kind)
	if !ok {
		return nil, fmt.Errorf("scenario: faultsweep target kind %q not registered", inner.Kind)
	}
	out, err := runner(inner)
	if err != nil {
		return nil, err
	}
	out.Kind = KindFaultSweep
	if out.Aggregate == nil {
		out.Aggregate = make(map[string]float64)
	}
	var maxWindow, maxLatch float64
	for i := range out.Units {
		u := &out.Units[i]
		window, latch, err := pathologyMetrics(u, cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("scenario: faultsweep unit %q: %w", u.Name, err)
		}
		u.Metrics[MetricMaxViolWindow] = window
		u.Metrics[MetricLatchFrac] = latch
		maxWindow = max(maxWindow, window)
		maxLatch = max(maxLatch, latch)
		if !s.Record {
			u.Series = nil
		}
	}
	out.Aggregate[MetricMaxViolWindow] = maxWindow
	out.Aggregate[MetricLatchFrac] = maxLatch
	return out, nil
}

// pathologyMetrics distills one unit's recorded traces into the two
// latch-signature metrics. cfg is the unit's platform (for the fan
// ceiling).
func pathologyMetrics(u *Unit, cfg sim.Config) (maxViolWindow, latchFrac float64, err error) {
	demand := u.FindSeries("demand")
	delivered := u.FindSeries("delivered")
	fan := u.FindSeries("fan_actual")
	capacity := u.FindSeries("cap")
	if demand == nil || delivered == nil || fan == nil || capacity == nil {
		return 0, 0, fmt.Errorf("missing recorded series (need demand/delivered/fan_actual/cap, have %d series)", len(u.Series))
	}
	n := len(demand.T)
	if len(delivered.V) != n || len(fan.V) != n || len(capacity.V) != n {
		return 0, 0, fmt.Errorf("series length mismatch (%d/%d/%d/%d)",
			n, len(delivered.V), len(fan.V), len(capacity.V))
	}
	if n == 0 {
		return 0, 0, nil
	}

	// Worst violation fraction over any pathologyWindowS-second sliding
	// window, two-pointer over the shared time base.
	violations := 0
	lo := 0
	for hi := 0; hi < n; hi++ {
		if delivered.V[hi] < demand.V[hi]-violEps {
			violations++
		}
		for demand.T[hi]-demand.T[lo] > pathologyWindowS {
			if delivered.V[lo] < demand.V[lo]-violEps {
				violations--
			}
			lo++
		}
		maxViolWindow = max(maxViolWindow, float64(violations)/float64(hi-lo+1))
	}

	// Latched-state fraction over the final quarter: fan pinned at the
	// ceiling while the cap never releases.
	fanCeil := float64(cfg.FanMaxSpeed) - latchFanEpsRPM
	start := n - n/4
	if start >= n {
		start = n - 1
	}
	latched := 0
	for k := start; k < n; k++ {
		if fan.V[k] >= fanCeil && capacity.V[k] < 1-latchCapEps {
			latched++
		}
	}
	latchFrac = float64(latched) / float64(n-start)
	return maxViolWindow, latchFrac, nil
}

// The campaign fault types. Each maps a unitless severity in (0, 1] onto
// one stage of the FaultSpec chain (see FaultSpecFor).
const (
	FaultStuck       = "stuck"
	FaultDropout     = "dropout"
	FaultPlacement   = "placement"
	FaultCalibration = "calibration"
	FaultSlew        = "slew"
	// FaultSegment is the correlated bus failure: the cell injects the
	// fault as a BusSegment over the target's declared segment nodes, so
	// every member's telemetry degrades simultaneously. Fleet targets
	// with a Segment declaration only.
	FaultSegment = "segment"
)

// FaultTypes returns the campaign fault type names in severity-ladder
// order.
func FaultTypes() []string {
	return []string{FaultStuck, FaultDropout, FaultPlacement, FaultCalibration, FaultSlew, FaultSegment}
}

// FaultSpecFor maps (fault type, severity) onto concrete FaultSpec
// scalars for a run of the given duration. Severity is unitless in
// (0, 1]; seed decorrelates the seeded stages (dropout pattern,
// calibration draw) between campaigns while keeping every cell
// reproducible.
//
// The silicon-side rungs are calibrated against Rotem et al.'s measured
// Core Duo sensor-error distributions ("Temperature measurement in the
// Intel Core Duo processor"; also PAPER.md Sec. I), severity 1 = the
// worst error class they report:
//
//	ladder rung          severity 1 value   measured anchor
//	-----------------    ----------------   ------------------------------
//	calibration sigma    4 degC             part-to-part offset spread at a
//	                                        fixed test point: +/-8 degC
//	                                        worst case ~= a 2-sigma draw
//	                                        from N(0, 4^2)
//	placement coeff      0.25 degC/W        hotspot-to-diode gradient: up
//	                                        to ~8 degC under a ~32 W power
//	                                        virus => 0.25 degC/W of
//	                                        instantaneous package power
//	slew floor           0.02 degC/s        remote-diode + SMBus filtering
//	                                        time constants (paper Sec. I);
//	                                        1/severity so rung 1 is the
//	                                        slowest tracking
//	stuck window         half the run       transport failure modes, not
//	dropout rate         0.9                silicon: kept at PR 6's
//	                                        envelope bounds
//	segment (lag+drop)   +30 s lag, 0.6     a degraded I2C segment: ~60
//	                                        sensors' worth of extra bus
//	                                        occupancy (sensor.DefaultBus
//	                                        0.5 s/sensor) plus arbitration
//	                                        loss on most scans
func FaultSpecFor(faultType string, severity float64, duration units.Seconds, seed int64) (*FaultSpec, error) {
	if !(severity > 0 && severity <= 1) {
		return nil, fmt.Errorf("scenario: fault severity %v outside (0, 1]", severity)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("scenario: non-positive fault duration %v", duration)
	}
	switch faultType {
	case FaultStuck:
		return &FaultSpec{
			StuckAt:  duration / 4,
			StuckLen: units.Seconds(severity * 0.5 * float64(duration)),
		}, nil
	case FaultDropout:
		return &FaultSpec{
			DropoutRate: 0.9 * severity,
			DropoutSeed: stats.SubSeed(seed, 1),
		}, nil
	case FaultPlacement:
		return &FaultSpec{PlacementCoeff: 0.25 * severity}, nil
	case FaultCalibration:
		return &FaultSpec{
			CalibSigma: 4 * severity,
			CalibSeed:  stats.SubSeed(seed, 2),
		}, nil
	case FaultSlew:
		return &FaultSpec{SlewLimitCPerS: 0.02 / severity}, nil
	case FaultSegment:
		return &FaultSpec{
			AddedLagS:   units.Seconds(30 * severity),
			DropoutRate: 0.6 * severity,
			DropoutSeed: stats.SubSeed(seed, 3),
		}, nil
	}
	return nil, fmt.Errorf("scenario: unknown fault type %q (known: %v)", faultType, FaultTypes())
}

// FaultTarget is one control stack a campaign stresses: a fault-free
// baseline spec of an existing kind (single/batch/lockstep jobs, or an
// explicit-node fleet/fleetcoord rack).
type FaultTarget struct {
	Name string
	Spec Spec
	// Segment names the explicit fleet nodes sharing one telemetry bus
	// for FaultSegment cells. Empty opts the target out of segment-type
	// cells; non-empty requires a fleet-kind spec.
	Segment []string
}

// The campaign control-stack (sensing) variants: the ordinary
// single-chain stack, and the redundant voting stack (Spec.Voting armed
// on every unit, fail-safe policy wrap included).
const (
	StackFull   = "full"
	StackVoting = "voting"
)

// FaultStacks returns the stack variant names a campaign can cross.
func FaultStacks() []string { return []string{StackFull, StackVoting} }

// DefaultVoting is the voting block campaigns arm when none is given:
// triple-redundant sensing with the sensor-package fusion defaults.
func DefaultVoting() *VotingSpec { return &VotingSpec{Sensors: 3} }

// FaultCampaign crosses fault types x severities x targets x stacks into
// a grid of faultsweep cells plus one fault-free baseline per
// (target, stack).
type FaultCampaign struct {
	Targets    []FaultTarget
	Types      []string
	Severities []float64
	// Stacks selects the sensing variants (StackFull / StackVoting); nil
	// means {full}.
	Stacks []string
	// Voting parameterizes the voting stack; nil means DefaultVoting().
	Voting *VotingSpec
	// Seed decorrelates the seeded fault stages between campaigns.
	Seed int64
}

// Verdict is the graceful-degradation classification of one cell.
type Verdict string

const (
	// VerdictGraceful: the faulted stack stays within the degradation
	// thresholds of its fault-free baseline.
	VerdictGraceful Verdict = "graceful"
	// VerdictDegraded: measurably worse than baseline, but the control
	// loop still functions.
	VerdictDegraded Verdict = "degraded"
	// VerdictPathological: a latch signature — sustained near-total
	// violation windows, or the fan pinned at max while caps never
	// release.
	VerdictPathological Verdict = "pathological"
)

// The classification thresholds. Pathology is judged on the cell's own
// latch signatures; degradation on the deltas against its baseline.
const (
	pathologicalViolWindow = 0.95
	pathologicalLatchFrac  = 0.95
	degradedDViolation     = 0.02
	degradedDFanEnergyRel  = 0.05
	degradedDTimeAboveS    = 5.0
)

// Degradation is one cell's damage report against its fault-free
// baseline, plus the cell's own latch-signature metrics.
type Degradation struct {
	// DViolationFrac / DFanEnergyJ / DTimeAboveS are faulted minus
	// baseline headline metrics.
	DViolationFrac float64 `json:"d_violation_frac"`
	DFanEnergyJ    float64 `json:"d_fan_energy_j"`
	DTimeAboveS    float64 `json:"d_time_above_limit_s"`
	// DFanEnergyRel is DFanEnergyJ over the baseline fan energy (0 when
	// the baseline spent none).
	DFanEnergyRel float64 `json:"d_fan_energy_rel"`
	// MaxViolWindow / LatchFrac echo the cell's pathology metrics.
	MaxViolWindow float64 `json:"max_viol_window"`
	LatchFrac     float64 `json:"latch_frac"`
}

// Classify maps a damage report onto the three-way verdict.
func Classify(d Degradation) Verdict {
	if d.MaxViolWindow >= pathologicalViolWindow || d.LatchFrac >= pathologicalLatchFrac {
		return VerdictPathological
	}
	if d.DViolationFrac > degradedDViolation ||
		d.DFanEnergyRel > degradedDFanEnergyRel ||
		d.DTimeAboveS > degradedDTimeAboveS {
		return VerdictDegraded
	}
	return VerdictGraceful
}

// FaultCell is one campaign grid point: the faulted cell, its store
// accounting, and the classified damage against the (target, stack)
// baseline.
type FaultCell struct {
	Target      string
	Stack       string
	Type        string
	Severity    float64
	Key         string
	Cached      bool
	Outcome     *Outcome
	Degradation Degradation
	Verdict     Verdict
}

// FaultBaseline is one fault-free (target, stack) run.
type FaultBaseline struct {
	Target  string
	Stack   string
	Key     string
	Cached  bool
	Outcome *Outcome
}

// FaultSweepResult bundles the campaign's baselines, classified cells,
// and cache accounting (baselines included).
type FaultSweepResult struct {
	// Baselines are the fault-free runs, target-major then stack,
	// matching the campaign declaration order.
	Baselines []FaultBaseline
	// Cells are the faulted grid points, target-major then stack then
	// type then severity. Segment-type points exist only for targets
	// with a Segment declaration; the grid simply has no cell there for
	// the others.
	Cells  []FaultCell
	Hits   int
	Misses int
}

// FaultCellSpec derives the faultsweep spec for one grid point: the
// target's spec with the fault chain injected into its first job or
// first node (one bad sensor in an otherwise healthy stack — the rack
// case shows whether recirculation and the coordinator spread or contain
// the damage), or — for FaultSegment — as a BusSegment over the target's
// declared segment nodes, degrading every member's telemetry at once.
// The voting stack arms the voting block on top (nil voting = the full
// stack). The returned spec's store key is independent of the baseline's,
// while every fault-free full-stack spec keeps its existing-kind key.
func FaultCellSpec(t FaultTarget, faultType string, severity float64, seed int64, voting *VotingSpec) (Spec, error) {
	f, err := FaultSpecFor(faultType, severity, t.Spec.Duration, seed)
	if err != nil {
		return Spec{}, err
	}
	s := t.Spec
	s.Kind = KindFaultSweep
	s.Name = fmt.Sprintf("%s/%s@%g", t.Name, faultType, severity)
	s.Voting = voting
	if voting != nil {
		s.Name += "+voting"
	}
	fleetTarget := false
	switch t.Spec.Kind {
	case KindSingle, KindBatch, KindLockstep:
		if len(s.Jobs) == 0 {
			return Spec{}, fmt.Errorf("scenario: fault target %q has no jobs", t.Name)
		}
		if faultType == FaultSegment {
			return Spec{}, fmt.Errorf("scenario: fault target %q is a jobs target (segment faults need a fleet rack)", t.Name)
		}
		jobs := append([]JobSpec(nil), s.Jobs...)
		jobs[0].Faults = f
		s.Jobs = jobs
	case KindFleet, KindFleetCoord:
		fleetTarget = true
		if s.Fleet == nil || len(s.Fleet.Nodes) == 0 {
			return Spec{}, fmt.Errorf("scenario: fault target %q needs explicit fleet nodes", t.Name)
		}
		fl := *s.Fleet
		fl.Nodes = append([]FleetNode(nil), fl.Nodes...)
		if faultType == FaultSegment {
			if len(t.Segment) == 0 {
				return Spec{}, fmt.Errorf("scenario: fault target %q declares no segment nodes", t.Name)
			}
			fl.Segments = append([]BusSegment(nil), fl.Segments...)
			fl.Segments = append(fl.Segments, BusSegment{
				Name:   "bus0",
				Nodes:  t.Segment,
				Faults: f,
			})
		} else {
			fl.Nodes[0].Faults = f
		}
		s.Fleet = &fl
		if t.Spec.Kind == KindFleetCoord {
			p := Params{"coordinated": 1}
			for k, v := range t.Spec.Params {
				p[k] = v
			}
			s.Params = p
		}
	default:
		return Spec{}, fmt.Errorf("scenario: fault target %q has unsupported kind %q", t.Name, t.Spec.Kind)
	}
	if len(t.Segment) > 0 && !fleetTarget {
		return Spec{}, fmt.Errorf("scenario: fault target %q declares segment nodes but is not a fleet target", t.Name)
	}
	return s, nil
}

// stackVoting resolves a stack name to the voting block armed on its
// specs: nil for the full stack, the campaign's (or default) block for
// the voting stack.
func (c *FaultCampaign) stackVoting(stack string) (*VotingSpec, error) {
	switch stack {
	case StackFull:
		return nil, nil
	case StackVoting:
		if c.Voting != nil {
			return c.Voting, nil
		}
		return DefaultVoting(), nil
	}
	return nil, fmt.Errorf("scenario: unknown fault stack %q (known: %v)", stack, FaultStacks())
}

// FaultSweep runs the campaign with store-backed resume: baselines first
// (one per target x stack), then every faulted cell, each looked up by
// content hash before executing (killing a campaign loses at most the
// in-flight cell; the rerun simulates zero ticks for finished cells).
// Every cell is then compared against its (target, stack) baseline and
// classified. Segment-type cells run only on targets declaring Segment
// nodes; a campaign whose Types include FaultSegment with no such target
// is an error rather than a silently empty column.
func FaultSweep(c FaultCampaign, store *Store) (*FaultSweepResult, error) {
	if len(c.Targets) == 0 || len(c.Types) == 0 || len(c.Severities) == 0 {
		return nil, fmt.Errorf("scenario: fault campaign needs targets, types and severities")
	}
	stacks := c.Stacks
	if len(stacks) == 0 {
		stacks = []string{StackFull}
	}
	seen := make(map[string]bool, len(stacks))
	votingFor := make(map[string]*VotingSpec, len(stacks))
	for _, st := range stacks {
		if seen[st] {
			return nil, fmt.Errorf("scenario: fault campaign lists stack %q twice", st)
		}
		seen[st] = true
		v, err := c.stackVoting(st)
		if err != nil {
			return nil, err
		}
		votingFor[st] = v
	}
	segmentable := 0
	for _, t := range c.Targets {
		if len(t.Segment) > 0 {
			segmentable++
		}
	}
	for _, typ := range c.Types {
		if typ == FaultSegment && segmentable == 0 {
			return nil, fmt.Errorf("scenario: campaign includes %q cells but no target declares Segment nodes", FaultSegment)
		}
	}

	specs := make([]Spec, 0, len(c.Targets)*len(stacks)*(1+len(c.Types)*len(c.Severities)))
	type baseMeta struct {
		target string
		stack  string
	}
	bmetas := make([]baseMeta, 0, len(c.Targets)*len(stacks))
	for _, t := range c.Targets {
		if err := t.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: fault target %q: %w", t.Name, err)
		}
		if faulted(t.Spec) {
			return nil, fmt.Errorf("scenario: fault target %q already carries faults (baselines must be fault-free)", t.Name)
		}
		if t.Spec.Voting != nil {
			return nil, fmt.Errorf("scenario: fault target %q already arms voting (the campaign's Stacks control it)", t.Name)
		}
		for _, st := range stacks {
			b := t.Spec
			b.Voting = votingFor[st]
			specs = append(specs, b)
			bmetas = append(bmetas, baseMeta{t.Name, st})
		}
	}
	type cellMeta struct {
		target   string
		stack    string
		typ      string
		severity float64
	}
	metas := make([]cellMeta, 0, len(c.Targets)*len(stacks)*len(c.Types)*len(c.Severities))
	for _, t := range c.Targets {
		for _, st := range stacks {
			for _, typ := range c.Types {
				if typ == FaultSegment && len(t.Segment) == 0 {
					continue
				}
				for _, sev := range c.Severities {
					cell, err := FaultCellSpec(t, typ, sev, c.Seed, votingFor[st])
					if err != nil {
						return nil, err
					}
					specs = append(specs, cell)
					metas = append(metas, cellMeta{t.Name, st, typ, sev})
				}
			}
		}
	}
	sw, err := Sweep(specs, store)
	if err != nil {
		return nil, err
	}
	res := &FaultSweepResult{
		Baselines: make([]FaultBaseline, len(bmetas)),
		Cells:     make([]FaultCell, len(metas)),
		Hits:      sw.Hits,
		Misses:    sw.Misses,
	}
	baseline := make(map[baseMeta]*Outcome, len(bmetas))
	for i, bm := range bmetas {
		cell := sw.Cells[i]
		res.Baselines[i] = FaultBaseline{
			Target:  bm.target,
			Stack:   bm.stack,
			Key:     cell.Key,
			Cached:  cell.Cached,
			Outcome: cell.Outcome,
		}
		baseline[bm] = cell.Outcome
	}
	for i, m := range metas {
		cell := sw.Cells[len(bmetas)+i]
		bViol, bFanE, bAbove := HeadlineMetrics(baseline[baseMeta{m.target, m.stack}])
		viol, fanE, above := HeadlineMetrics(cell.Outcome)
		d := Degradation{
			DViolationFrac: viol - bViol,
			DFanEnergyJ:    fanE - bFanE,
			DTimeAboveS:    above - bAbove,
			MaxViolWindow:  cell.Outcome.Aggregate[MetricMaxViolWindow],
			LatchFrac:      cell.Outcome.Aggregate[MetricLatchFrac],
		}
		if bFanE > 0 {
			d.DFanEnergyRel = d.DFanEnergyJ / bFanE
		}
		res.Cells[i] = FaultCell{
			Target:      m.target,
			Stack:       m.stack,
			Type:        m.typ,
			Severity:    m.severity,
			Key:         cell.Key,
			Cached:      cell.Cached,
			Outcome:     cell.Outcome,
			Degradation: d,
			Verdict:     Classify(d),
		}
	}
	return res, nil
}

// verdictRank orders verdicts for dominance comparison.
func verdictRank(v Verdict) int {
	switch v {
	case VerdictGraceful:
		return 0
	case VerdictDegraded:
		return 1
	default:
		return 2
	}
}

// Dominance checks the campaign's robustness claim: at every shared
// (target, type, severity) grid point, stack a is never pathological
// where stack b is not, and its violation *degradation* is no higher,
// while the clean baselines agree on fan energy within cleanFanTol
// (relative) — the voter must not buy robustness by burning fan power
// when healthy. Degradation is max(0, dViol): a negative delta means the
// fault accidentally overcooled (e.g. a calibration draw that reads
// high), which is luck, not robustness, so both sides clamp to "no
// degradation". The graceful/degraded boundary is deliberately not
// compared — a lucky overcooling draw on one side can flip the
// multi-metric label while the violation comparison still favours the
// other (a biased chain that overcools masks its time-above-threshold);
// only the pathological rank, and the violation metric itself, carry the
// claim. The epsilon is a tenth of the degraded-verdict threshold:
// differences an order of magnitude below classification granularity are
// tie, not defeat. It returns whether a dominates b plus the reasons it
// does not.
func (r *FaultSweepResult) Dominance(a, b string, cleanFanTol float64) (bool, []string) {
	const dViolEps = degradedDViolation / 10
	var reasons []string
	baseFan := make(map[string]float64)
	for _, bl := range r.Baselines {
		if bl.Stack == b {
			_, fanE, _ := HeadlineMetrics(bl.Outcome)
			baseFan[bl.Target] = fanE
		}
	}
	for _, bl := range r.Baselines {
		if bl.Stack != a {
			continue
		}
		_, fanE, _ := HeadlineMetrics(bl.Outcome)
		ref, ok := baseFan[bl.Target]
		if !ok {
			continue
		}
		if ref > 0 {
			if rel := (fanE - ref) / ref; rel > cleanFanTol || rel < -cleanFanTol {
				reasons = append(reasons, fmt.Sprintf(
					"baseline %s: clean fan energy %.0f J vs %.0f J (%.2f%% > %.2f%% tolerance)",
					bl.Target, fanE, ref, 100*rel, 100*cleanFanTol))
			}
		}
	}
	type point struct {
		target   string
		typ      string
		severity float64
	}
	other := make(map[point]*FaultCell)
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Stack == b {
			other[point{c.Target, c.Type, c.Severity}] = c
		}
	}
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Stack != a {
			continue
		}
		o, ok := other[point{c.Target, c.Type, c.Severity}]
		if !ok {
			continue
		}
		if verdictRank(c.Verdict) > verdictRank(o.Verdict) && c.Verdict == VerdictPathological {
			reasons = append(reasons, fmt.Sprintf(
				"%s/%s@%g: %s is %s where %s is %s",
				c.Target, c.Type, c.Severity, a, c.Verdict, b, o.Verdict))
		}
		av := max(0, c.Degradation.DViolationFrac)
		bv := max(0, o.Degradation.DViolationFrac)
		if av > bv+dViolEps {
			reasons = append(reasons, fmt.Sprintf(
				"%s/%s@%g: %s dViol %.4f > %s dViol %.4f",
				c.Target, c.Type, c.Severity, a, av, b, bv))
		}
	}
	return len(reasons) == 0, reasons
}

// faulted reports whether any job or node of the spec carries a fault
// block.
func faulted(s Spec) bool {
	for i := range s.Jobs {
		if s.Jobs[i].Faults != nil {
			return true
		}
	}
	if s.Fleet != nil {
		for i := range s.Fleet.Nodes {
			if s.Fleet.Nodes[i].Faults != nil {
				return true
			}
		}
	}
	return false
}

// HeadlineMetrics extracts the campaign's comparison triple (violation
// fraction, fan energy, time above limit) from an outcome: the rack-level
// aggregate when the kind has one (for fleetcoord that is the coordinated
// rack, not the local baseline), the mean across units otherwise.
func HeadlineMetrics(o *Outcome) (viol, fanE, above float64) {
	if v, ok := o.Aggregate[MetricViolationFrac]; ok {
		return v, o.Aggregate[MetricFanEnergyJ], o.Aggregate[MetricTimeAboveS]
	}
	if len(o.Units) == 0 {
		return 0, 0, 0
	}
	for i := range o.Units {
		u := &o.Units[i]
		viol += u.Metric(MetricViolationFrac, 0)
		fanE += u.Metric(MetricFanEnergyJ, 0)
		above += u.Metric(MetricTimeAboveS, 0)
	}
	n := float64(len(o.Units))
	return viol / n, fanE / n, above / n
}
