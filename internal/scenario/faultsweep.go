package scenario

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// This file is the non-ideal-sensing campaign surface: the faultsweep
// kind runner (one faulted cell with pathology metrics distilled from
// per-tick traces), the severity ladder that maps (fault type, severity)
// onto concrete FaultSpec scalars, and the FaultSweep campaign driver
// that crosses fault type x severity x target stack into store-addressed
// cells, compares each against its fault-free baseline, and classifies
// the degradation as graceful, degraded, or pathological.

// The faultsweep pathology metric keys. Both are distilled from the
// recorded per-tick traces, so a cell can report latch signatures without
// persisting the series themselves.
const (
	// MetricMaxViolWindow is the worst violation fraction over any
	// pathologyWindowS-second sliding window — a sustained near-1 value is
	// the "control gave up" signature that a run-mean violation fraction
	// dilutes away.
	MetricMaxViolWindow = "fault_max_viol_window"
	// MetricLatchFrac is the fraction of the final quarter of the run
	// spent with the fan pinned at its ceiling while the utilization cap
	// never released — the latched state a stuck-low sensor can wedge the
	// controller into.
	MetricLatchFrac = "fault_latch_frac"
)

const (
	// pathologyWindowS is the sliding-window span for MetricMaxViolWindow.
	pathologyWindowS = 120.0
	// latchFanEpsRPM / latchCapEps decide "fan pinned at max" and "cap not
	// released" for MetricLatchFrac.
	latchFanEpsRPM = 0.5
	latchCapEps    = 1e-3
	// violEps mirrors the engine's violation comparison tolerance.
	violEps = 1e-9
)

func init() {
	RegisterKind(KindFaultSweep,
		"one non-ideal-sensing campaign cell (faulted target + pathology metrics)",
		runFaultSweep)
}

// runFaultSweep executes the cell's target stack with recording forced
// on, distills the pathology metrics from the traces, and strips the
// series again unless the spec asked for them. The target engine is the
// one the equivalent plain spec would use, so a faultsweep cell differs
// from its baseline only by the injected fault chain.
func runFaultSweep(s Spec) (*Outcome, error) {
	inner := s
	inner.Record = true
	var cfgs []sim.Config
	if len(s.Jobs) > 0 {
		inner.Kind = KindBatch
		inner.Params = nil
		for _, j := range s.Jobs {
			cfg := s.base()
			if j.Config != nil {
				cfg = *j.Config
			}
			cfgs = append(cfgs, cfg)
		}
	} else {
		if _, ok := s.Params["coordinated"]; ok {
			inner.Kind = KindFleetCoord
			var p Params
			for k, v := range s.Params {
				if k == "coordinated" {
					continue
				}
				if p == nil {
					p = Params{}
				}
				p[k] = v
			}
			inner.Params = p
		} else {
			inner.Kind = KindFleet
			inner.Params = nil
		}
		for _, n := range s.Fleet.Nodes {
			cfg := s.base()
			if n.Config != nil {
				cfg = *n.Config
			}
			cfgs = append(cfgs, cfg)
		}
	}
	runner, ok := kindRunner(inner.Kind)
	if !ok {
		return nil, fmt.Errorf("scenario: faultsweep target kind %q not registered", inner.Kind)
	}
	out, err := runner(inner)
	if err != nil {
		return nil, err
	}
	out.Kind = KindFaultSweep
	if out.Aggregate == nil {
		out.Aggregate = make(map[string]float64)
	}
	var maxWindow, maxLatch float64
	for i := range out.Units {
		u := &out.Units[i]
		window, latch, err := pathologyMetrics(u, cfgs[i])
		if err != nil {
			return nil, fmt.Errorf("scenario: faultsweep unit %q: %w", u.Name, err)
		}
		u.Metrics[MetricMaxViolWindow] = window
		u.Metrics[MetricLatchFrac] = latch
		maxWindow = max(maxWindow, window)
		maxLatch = max(maxLatch, latch)
		if !s.Record {
			u.Series = nil
		}
	}
	out.Aggregate[MetricMaxViolWindow] = maxWindow
	out.Aggregate[MetricLatchFrac] = maxLatch
	return out, nil
}

// pathologyMetrics distills one unit's recorded traces into the two
// latch-signature metrics. cfg is the unit's platform (for the fan
// ceiling).
func pathologyMetrics(u *Unit, cfg sim.Config) (maxViolWindow, latchFrac float64, err error) {
	demand := u.FindSeries("demand")
	delivered := u.FindSeries("delivered")
	fan := u.FindSeries("fan_actual")
	capacity := u.FindSeries("cap")
	if demand == nil || delivered == nil || fan == nil || capacity == nil {
		return 0, 0, fmt.Errorf("missing recorded series (need demand/delivered/fan_actual/cap, have %d series)", len(u.Series))
	}
	n := len(demand.T)
	if len(delivered.V) != n || len(fan.V) != n || len(capacity.V) != n {
		return 0, 0, fmt.Errorf("series length mismatch (%d/%d/%d/%d)",
			n, len(delivered.V), len(fan.V), len(capacity.V))
	}
	if n == 0 {
		return 0, 0, nil
	}

	// Worst violation fraction over any pathologyWindowS-second sliding
	// window, two-pointer over the shared time base.
	violations := 0
	lo := 0
	for hi := 0; hi < n; hi++ {
		if delivered.V[hi] < demand.V[hi]-violEps {
			violations++
		}
		for demand.T[hi]-demand.T[lo] > pathologyWindowS {
			if delivered.V[lo] < demand.V[lo]-violEps {
				violations--
			}
			lo++
		}
		maxViolWindow = max(maxViolWindow, float64(violations)/float64(hi-lo+1))
	}

	// Latched-state fraction over the final quarter: fan pinned at the
	// ceiling while the cap never releases.
	fanCeil := float64(cfg.FanMaxSpeed) - latchFanEpsRPM
	start := n - n/4
	if start >= n {
		start = n - 1
	}
	latched := 0
	for k := start; k < n; k++ {
		if fan.V[k] >= fanCeil && capacity.V[k] < 1-latchCapEps {
			latched++
		}
	}
	latchFrac = float64(latched) / float64(n-start)
	return maxViolWindow, latchFrac, nil
}

// The campaign fault types. Each maps a unitless severity in (0, 1] onto
// one stage of the FaultSpec chain (see FaultSpecFor).
const (
	FaultStuck       = "stuck"
	FaultDropout     = "dropout"
	FaultPlacement   = "placement"
	FaultCalibration = "calibration"
	FaultSlew        = "slew"
)

// FaultTypes returns the campaign fault type names in severity-ladder
// order.
func FaultTypes() []string {
	return []string{FaultStuck, FaultDropout, FaultPlacement, FaultCalibration, FaultSlew}
}

// FaultSpecFor maps (fault type, severity) onto concrete FaultSpec
// scalars for a run of the given duration. Severity is unitless in
// (0, 1]: 1 is the worst the ladder injects — a stuck window covering
// half the run, a 90% dropout rate, an 8 degC calibration sigma, a
// 0.1 degC/W placement error, a 0.02 degC/s slew floor. seed decorrelates
// the seeded stages (dropout pattern, calibration draw) between
// campaigns while keeping every cell reproducible.
func FaultSpecFor(faultType string, severity float64, duration units.Seconds, seed int64) (*FaultSpec, error) {
	if !(severity > 0 && severity <= 1) {
		return nil, fmt.Errorf("scenario: fault severity %v outside (0, 1]", severity)
	}
	if duration <= 0 {
		return nil, fmt.Errorf("scenario: non-positive fault duration %v", duration)
	}
	switch faultType {
	case FaultStuck:
		return &FaultSpec{
			StuckAt:  duration / 4,
			StuckLen: units.Seconds(severity * 0.5 * float64(duration)),
		}, nil
	case FaultDropout:
		return &FaultSpec{
			DropoutRate: 0.9 * severity,
			DropoutSeed: stats.SubSeed(seed, 1),
		}, nil
	case FaultPlacement:
		return &FaultSpec{PlacementCoeff: 0.1 * severity}, nil
	case FaultCalibration:
		return &FaultSpec{
			CalibSigma: 8 * severity,
			CalibSeed:  stats.SubSeed(seed, 2),
		}, nil
	case FaultSlew:
		return &FaultSpec{SlewLimitCPerS: 0.02 / severity}, nil
	}
	return nil, fmt.Errorf("scenario: unknown fault type %q (known: %v)", faultType, FaultTypes())
}

// FaultTarget is one control stack a campaign stresses: a fault-free
// baseline spec of an existing kind (single/batch/lockstep jobs, or an
// explicit-node fleet/fleetcoord rack).
type FaultTarget struct {
	Name string
	Spec Spec
}

// FaultCampaign crosses fault types x severities x targets into a grid of
// faultsweep cells plus one fault-free baseline per target.
type FaultCampaign struct {
	Targets    []FaultTarget
	Types      []string
	Severities []float64
	// Seed decorrelates the seeded fault stages between campaigns.
	Seed int64
}

// Verdict is the graceful-degradation classification of one cell.
type Verdict string

const (
	// VerdictGraceful: the faulted stack stays within the degradation
	// thresholds of its fault-free baseline.
	VerdictGraceful Verdict = "graceful"
	// VerdictDegraded: measurably worse than baseline, but the control
	// loop still functions.
	VerdictDegraded Verdict = "degraded"
	// VerdictPathological: a latch signature — sustained near-total
	// violation windows, or the fan pinned at max while caps never
	// release.
	VerdictPathological Verdict = "pathological"
)

// The classification thresholds. Pathology is judged on the cell's own
// latch signatures; degradation on the deltas against its baseline.
const (
	pathologicalViolWindow = 0.95
	pathologicalLatchFrac  = 0.95
	degradedDViolation     = 0.02
	degradedDFanEnergyRel  = 0.05
	degradedDTimeAboveS    = 5.0
)

// Degradation is one cell's damage report against its fault-free
// baseline, plus the cell's own latch-signature metrics.
type Degradation struct {
	// DViolationFrac / DFanEnergyJ / DTimeAboveS are faulted minus
	// baseline headline metrics.
	DViolationFrac float64 `json:"d_violation_frac"`
	DFanEnergyJ    float64 `json:"d_fan_energy_j"`
	DTimeAboveS    float64 `json:"d_time_above_limit_s"`
	// DFanEnergyRel is DFanEnergyJ over the baseline fan energy (0 when
	// the baseline spent none).
	DFanEnergyRel float64 `json:"d_fan_energy_rel"`
	// MaxViolWindow / LatchFrac echo the cell's pathology metrics.
	MaxViolWindow float64 `json:"max_viol_window"`
	LatchFrac     float64 `json:"latch_frac"`
}

// Classify maps a damage report onto the three-way verdict.
func Classify(d Degradation) Verdict {
	if d.MaxViolWindow >= pathologicalViolWindow || d.LatchFrac >= pathologicalLatchFrac {
		return VerdictPathological
	}
	if d.DViolationFrac > degradedDViolation ||
		d.DFanEnergyRel > degradedDFanEnergyRel ||
		d.DTimeAboveS > degradedDTimeAboveS {
		return VerdictDegraded
	}
	return VerdictGraceful
}

// FaultCell is one campaign grid point: the faulted cell, its store
// accounting, and the classified damage against the target's baseline.
type FaultCell struct {
	Target      string
	Type        string
	Severity    float64
	Key         string
	Cached      bool
	Outcome     *Outcome
	Degradation Degradation
	Verdict     Verdict
}

// FaultSweepResult bundles the campaign's baselines, classified cells,
// and cache accounting (baselines included).
type FaultSweepResult struct {
	// Baselines are the fault-free target runs, in target order.
	Baselines []SweepCell
	// Cells are the faulted grid points, target-major then type then
	// severity, matching the campaign declaration order.
	Cells  []FaultCell
	Hits   int
	Misses int
}

// FaultCellSpec derives the faultsweep spec for one grid point: the
// target's spec with the fault chain injected into its first job or
// first node (one bad sensor in an otherwise healthy stack — the rack
// case shows whether recirculation and the coordinator spread or contain
// the damage). The returned spec's store key is independent of the
// baseline's, while every fault-free spec keeps its existing-kind key.
func FaultCellSpec(t FaultTarget, faultType string, severity float64, seed int64) (Spec, error) {
	f, err := FaultSpecFor(faultType, severity, t.Spec.Duration, seed)
	if err != nil {
		return Spec{}, err
	}
	s := t.Spec
	s.Kind = KindFaultSweep
	s.Name = fmt.Sprintf("%s/%s@%g", t.Name, faultType, severity)
	switch t.Spec.Kind {
	case KindSingle, KindBatch, KindLockstep:
		if len(s.Jobs) == 0 {
			return Spec{}, fmt.Errorf("scenario: fault target %q has no jobs", t.Name)
		}
		jobs := append([]JobSpec(nil), s.Jobs...)
		jobs[0].Faults = f
		s.Jobs = jobs
	case KindFleet, KindFleetCoord:
		if s.Fleet == nil || len(s.Fleet.Nodes) == 0 {
			return Spec{}, fmt.Errorf("scenario: fault target %q needs explicit fleet nodes", t.Name)
		}
		fl := *s.Fleet
		fl.Nodes = append([]FleetNode(nil), fl.Nodes...)
		fl.Nodes[0].Faults = f
		s.Fleet = &fl
		if t.Spec.Kind == KindFleetCoord {
			p := Params{"coordinated": 1}
			for k, v := range t.Spec.Params {
				p[k] = v
			}
			s.Params = p
		}
	default:
		return Spec{}, fmt.Errorf("scenario: fault target %q has unsupported kind %q", t.Name, t.Spec.Kind)
	}
	return s, nil
}

// FaultSweep runs the campaign with store-backed resume: baselines first,
// then every faulted cell, each looked up by content hash before
// executing (killing a campaign loses at most the in-flight cell; the
// rerun simulates zero ticks for finished cells). Every cell is then
// compared against its target's baseline and classified.
func FaultSweep(c FaultCampaign, store *Store) (*FaultSweepResult, error) {
	if len(c.Targets) == 0 || len(c.Types) == 0 || len(c.Severities) == 0 {
		return nil, fmt.Errorf("scenario: fault campaign needs targets, types and severities")
	}
	specs := make([]Spec, 0, len(c.Targets)*(1+len(c.Types)*len(c.Severities)))
	for _, t := range c.Targets {
		if err := t.Spec.Validate(); err != nil {
			return nil, fmt.Errorf("scenario: fault target %q: %w", t.Name, err)
		}
		if faulted(t.Spec) {
			return nil, fmt.Errorf("scenario: fault target %q already carries faults (baselines must be fault-free)", t.Name)
		}
		specs = append(specs, t.Spec)
	}
	type cellMeta struct {
		target   string
		typ      string
		severity float64
	}
	metas := make([]cellMeta, 0, len(c.Targets)*len(c.Types)*len(c.Severities))
	for _, t := range c.Targets {
		for _, typ := range c.Types {
			for _, sev := range c.Severities {
				cell, err := FaultCellSpec(t, typ, sev, c.Seed)
				if err != nil {
					return nil, err
				}
				specs = append(specs, cell)
				metas = append(metas, cellMeta{t.Name, typ, sev})
			}
		}
	}
	sw, err := Sweep(specs, store)
	if err != nil {
		return nil, err
	}
	res := &FaultSweepResult{
		Baselines: sw.Cells[:len(c.Targets)],
		Cells:     make([]FaultCell, len(metas)),
		Hits:      sw.Hits,
		Misses:    sw.Misses,
	}
	baseline := make(map[string]*Outcome, len(c.Targets))
	for i, t := range c.Targets {
		baseline[t.Name] = res.Baselines[i].Outcome
	}
	for i, m := range metas {
		cell := sw.Cells[len(c.Targets)+i]
		bViol, bFanE, bAbove := HeadlineMetrics(baseline[m.target])
		viol, fanE, above := HeadlineMetrics(cell.Outcome)
		d := Degradation{
			DViolationFrac: viol - bViol,
			DFanEnergyJ:    fanE - bFanE,
			DTimeAboveS:    above - bAbove,
			MaxViolWindow:  cell.Outcome.Aggregate[MetricMaxViolWindow],
			LatchFrac:      cell.Outcome.Aggregate[MetricLatchFrac],
		}
		if bFanE > 0 {
			d.DFanEnergyRel = d.DFanEnergyJ / bFanE
		}
		res.Cells[i] = FaultCell{
			Target:      m.target,
			Type:        m.typ,
			Severity:    m.severity,
			Key:         cell.Key,
			Cached:      cell.Cached,
			Outcome:     cell.Outcome,
			Degradation: d,
			Verdict:     Classify(d),
		}
	}
	return res, nil
}

// faulted reports whether any job or node of the spec carries a fault
// block.
func faulted(s Spec) bool {
	for i := range s.Jobs {
		if s.Jobs[i].Faults != nil {
			return true
		}
	}
	if s.Fleet != nil {
		for i := range s.Fleet.Nodes {
			if s.Fleet.Nodes[i].Faults != nil {
				return true
			}
		}
	}
	return false
}

// HeadlineMetrics extracts the campaign's comparison triple (violation
// fraction, fan energy, time above limit) from an outcome: the rack-level
// aggregate when the kind has one (for fleetcoord that is the coordinated
// rack, not the local baseline), the mean across units otherwise.
func HeadlineMetrics(o *Outcome) (viol, fanE, above float64) {
	if v, ok := o.Aggregate[MetricViolationFrac]; ok {
		return v, o.Aggregate[MetricFanEnergyJ], o.Aggregate[MetricTimeAboveS]
	}
	if len(o.Units) == 0 {
		return 0, 0, 0
	}
	for i := range o.Units {
		u := &o.Units[i]
		viol += u.Metric(MetricViolationFrac, 0)
		fanE += u.Metric(MetricFanEnergyJ, 0)
		above += u.Metric(MetricTimeAboveS, 0)
	}
	n := float64(len(o.Units))
	return viol / n, fanE / n, above / n
}
