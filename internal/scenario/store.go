package scenario

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Store is the content-addressed result cache: outcomes persisted as JSON
// on disk, keyed by the SHA-256 hash of the spec's canonical JSON. Two
// specs that describe the same scenario — regardless of how their maps
// were populated or which Workers knob ran them — share one key, so a
// repeated Sweep reads finished cells back instead of recomputing them.
//
// Layout: one file per cell, <dir>/<key>.json, where <key> is the 64-hex
// SHA-256 of the canonical spec. Each file holds the spec alongside the
// outcome, so a store is self-describing (a cell can be re-verified or
// re-run from its own file).
type Store struct {
	dir string
}

// storeEntry is the on-disk cell format.
type storeEntry struct {
	// Version guards the format; bump on incompatible changes.
	Version int      `json:"version"`
	Key     string   `json:"key"`
	Spec    Spec     `json:"spec"`
	Outcome *Outcome `json:"outcome"`
}

// storeVersion is the current cell format.
const storeVersion = 1

// Key returns the spec's content address: the SHA-256 hex digest of its
// canonical JSON. The canonical form is Go's encoding/json output —
// struct fields in declaration order, map keys sorted — with execution
// knobs (Workers) excluded, so the key is stable across processes, map
// iteration orders and concurrency settings, and changes whenever any
// semantic field changes.
func Key(s Spec) (string, error) {
	canon, err := CanonicalJSON(s)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:]), nil
}

// CanonicalJSON returns the spec's canonical serialized form (the bytes
// Key hashes).
func CanonicalJSON(s Spec) ([]byte, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return nil, fmt.Errorf("scenario: canonicalizing spec: %w", err)
	}
	return b, nil
}

// OpenStore opens (creating if needed) a result store rooted at dir.
func OpenStore(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("scenario: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("scenario: opening store: %w", err)
	}
	return &Store{dir: dir}, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// path returns the cell file for a key.
func (st *Store) path(key string) string {
	return filepath.Join(st.dir, key+".json")
}

// Get looks a spec up. ok is false on a miss; a hit returns the stored
// outcome, bit-identical to the run that produced it (float64 survives
// the JSON round trip exactly).
func (st *Store) Get(s Spec) (out *Outcome, ok bool, err error) {
	key, err := Key(s)
	if err != nil {
		return nil, false, err
	}
	return st.GetKey(key)
}

// GetKey looks a precomputed key up.
func (st *Store) GetKey(key string) (*Outcome, bool, error) {
	b, err := os.ReadFile(st.path(key))
	if os.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, fmt.Errorf("scenario: reading store cell %s: %w", key, err)
	}
	// Decode only what a hit needs: the stored spec is provenance for
	// humans and re-runs, not for the hot lookup path.
	var entry struct {
		Version int      `json:"version"`
		Outcome *Outcome `json:"outcome"`
	}
	if err := json.Unmarshal(b, &entry); err != nil {
		return nil, false, fmt.Errorf("scenario: decoding store cell %s: %w", key, err)
	}
	if entry.Version != storeVersion {
		// An old-format cell is a miss, not an error: the caller recomputes
		// and Put overwrites it in the current format.
		return nil, false, nil
	}
	return entry.Outcome, true, nil
}

// Put persists a spec's outcome. The write is atomic (temp file + rename)
// so a killed sweep never leaves a truncated cell behind — on restart the
// cell either exists complete or reads as a miss.
func (st *Store) Put(s Spec, out *Outcome) error {
	key, err := Key(s)
	if err != nil {
		return err
	}
	entry := storeEntry{Version: storeVersion, Key: key, Spec: s, Outcome: out}
	b, err := json.MarshalIndent(entry, "", " ")
	if err != nil {
		return fmt.Errorf("scenario: encoding store cell %s: %w", key, err)
	}
	tmp, err := os.CreateTemp(st.dir, "."+key+".tmp-*")
	if err != nil {
		return fmt.Errorf("scenario: writing store cell %s: %w", key, err)
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		return fmt.Errorf("scenario: writing store cell %s: %w", key, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("scenario: writing store cell %s: %w", key, err)
	}
	if err := os.Rename(tmp.Name(), st.path(key)); err != nil {
		return fmt.Errorf("scenario: committing store cell %s: %w", key, err)
	}
	return nil
}

// Len reports how many cells the store currently holds.
func (st *Store) Len() (int, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".json") && !strings.HasPrefix(name, ".") {
			n++
		}
	}
	return n, nil
}

// CellInfo describes one stored cell for inspection listings (store ls):
// enough to see what a cell is without decoding its outcome payload.
type CellInfo struct {
	// Key is the cell's content address (also its filename stem).
	Key string
	// Kind and Name echo the stored spec.
	Kind string
	Name string
	// Units is the number of per-unit results in the outcome.
	Units int
	// Version is the cell's on-disk format version.
	Version int
	// Size is the cell file's size in bytes.
	Size int64
}

// List inspects every cell in the store, sorted by key. Cells written by
// other format versions are still listed (with their stored version) —
// inspection sees what is on disk, unlike Get, which treats them as
// misses.
func (st *Store) List() ([]CellInfo, error) {
	keys, err := st.Keys()
	if err != nil {
		return nil, err
	}
	infos := make([]CellInfo, 0, len(keys))
	for _, key := range keys {
		b, err := os.ReadFile(st.path(key))
		if err != nil {
			return nil, fmt.Errorf("scenario: inspecting store cell %s: %w", key, err)
		}
		var probe struct {
			Version int `json:"version"`
			Spec    struct {
				Kind string `json:"kind"`
				Name string `json:"name"`
			} `json:"spec"`
			Outcome struct {
				Units []struct{} `json:"units"`
			} `json:"outcome"`
		}
		if err := json.Unmarshal(b, &probe); err != nil {
			return nil, fmt.Errorf("scenario: inspecting store cell %s: %w", key, err)
		}
		infos = append(infos, CellInfo{
			Key:     key,
			Kind:    probe.Spec.Kind,
			Name:    probe.Spec.Name,
			Units:   len(probe.Outcome.Units),
			Version: probe.Version,
			Size:    int64(len(b)),
		})
	}
	return infos, nil
}

// Keys returns the stored cell keys, sorted.
func (st *Store) Keys() ([]string, error) {
	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return nil, err
	}
	var keys []string
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".json") && !strings.HasPrefix(name, ".") {
			keys = append(keys, strings.TrimSuffix(name, ".json"))
		}
	}
	sort.Strings(keys)
	return keys, nil
}
