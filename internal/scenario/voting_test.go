package scenario

import (
	"reflect"
	"testing"

	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/units"
)

// votingFleetTarget is faultFleetTarget plus a declared bus segment over
// the hot node, the shape segment-type campaign cells need.
func votingFleetTarget(dur units.Seconds, coordinated bool) FaultTarget {
	t := faultFleetTarget(dur, coordinated)
	t.Segment = []string{"n1"}
	return t
}

// TestVotingAndSegmentValidation covers the declarative surface: voting
// blocks on kinds that ignore them, malformed voting knobs, and every
// structural rule on bus segments.
func TestVotingAndSegmentValidation(t *testing.T) {
	segFault := &FaultSpec{DropoutRate: 0.5, DropoutSeed: 9}
	mkSeg := func(mut func(*Spec)) Spec {
		s := faultFleetTarget(120, false).Spec
		s.Fleet.Segments = []BusSegment{{Name: "bus0", Nodes: []string{"n1"}, Faults: segFault}}
		if mut != nil {
			mut(&s)
		}
		return s
	}
	good := mkSeg(nil)
	good.Voting = &VotingSpec{Sensors: 3}
	if err := good.Validate(); err != nil {
		t.Fatalf("good voting+segment spec rejected: %v", err)
	}
	bad := []struct {
		name string
		mk   func() Spec
	}{
		{"voting on multicore", func() Spec {
			return Spec{
				Kind: KindMulticore, Duration: 120,
				Multicore: &MulticoreSpec{Workload: FactoryRef{Name: "constant"}},
				Voting:    &VotingSpec{Sensors: 3},
			}
		}},
		{"two sensors", func() Spec {
			s := faultJobTarget(120).Spec
			s.Voting = &VotingSpec{Sensors: 2}
			return s
		}},
		{"negative outlier bound", func() Spec {
			s := faultJobTarget(120).Spec
			s.Voting = &VotingSpec{Sensors: 3, OutlierC: -1}
			return s
		}},
		{"quorum above replicas", func() Spec {
			s := faultJobTarget(120).Spec
			s.Voting = &VotingSpec{Sensors: 3, Quorum: 4}
			return s
		}},
		{"negative hold budget", func() Spec {
			s := faultJobTarget(120).Spec
			s.Voting = &VotingSpec{Sensors: 3, HoldTicks: -1}
			return s
		}},
		{"segment names unknown node", func() Spec {
			return mkSeg(func(s *Spec) { s.Fleet.Segments[0].Nodes = []string{"ghost"} })
		}},
		{"segment lists node twice", func() Spec {
			return mkSeg(func(s *Spec) { s.Fleet.Segments[0].Nodes = []string{"n1", "n1"} })
		}},
		{"segment without nodes", func() Spec {
			return mkSeg(func(s *Spec) { s.Fleet.Segments[0].Nodes = nil })
		}},
		{"segment without name", func() Spec {
			return mkSeg(func(s *Spec) { s.Fleet.Segments[0].Name = "" })
		}},
		{"duplicate segment names", func() Spec {
			return mkSeg(func(s *Spec) {
				s.Fleet.Segments = append(s.Fleet.Segments,
					BusSegment{Name: "bus0", Nodes: []string{"n0"}, Faults: segFault})
			})
		}},
		{"segment without faults", func() Spec {
			return mkSeg(func(s *Spec) { s.Fleet.Segments[0].Faults = nil })
		}},
		{"segment with silicon-side faults", func() Spec {
			return mkSeg(func(s *Spec) {
				s.Fleet.Segments[0].Faults = &FaultSpec{CalibSigma: 4, CalibSeed: 1}
			})
		}},
		{"segment on generated rack", func() Spec {
			s := mkSeg(nil)
			s.Fleet.Nodes = nil
			s.Fleet.Size = 4
			return s
		}},
	}
	for _, tc := range bad {
		s := tc.mk()
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}

	// Cell construction: segment cells need a fleet target with declared
	// Segment nodes.
	if _, err := FaultCellSpec(faultJobTarget(120), FaultSegment, 0.5, 42, nil); err == nil {
		t.Error("segment cell on a jobs target accepted")
	}
	if _, err := FaultCellSpec(faultFleetTarget(120, false), FaultSegment, 0.5, 42, nil); err == nil {
		t.Error("segment cell on a fleet target without Segment nodes accepted")
	}

	// Campaign construction: unknown stacks, duplicate stacks, segment
	// cells with no segmentable target, and pre-armed voting targets.
	base := FaultCampaign{
		Targets:    []FaultTarget{faultJobTarget(120)},
		Types:      []string{FaultStuck},
		Severities: []float64{0.5},
	}
	for _, tc := range []struct {
		name string
		mut  func(*FaultCampaign)
	}{
		{"unknown stack", func(c *FaultCampaign) { c.Stacks = []string{"psychic"} }},
		{"duplicate stack", func(c *FaultCampaign) { c.Stacks = []string{StackFull, StackFull} }},
		{"segment cells without segmentable target", func(c *FaultCampaign) {
			c.Types = []string{FaultSegment}
		}},
		{"pre-armed voting target", func(c *FaultCampaign) {
			c.Targets[0].Spec.Voting = &VotingSpec{Sensors: 3}
		}},
	} {
		c := base
		c.Targets = []FaultTarget{faultJobTarget(120)}
		tc.mut(&c)
		if _, err := FaultSweep(c, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestVotingCleanBaselineMatchesFull: with no faults and no transducer
// noise the replicas are identical, so arming the voter must cost nothing
// — engine metrics bit-identical to the single-chain stack. This is the
// clean-baseline half of the campaign dominance claim.
func TestVotingCleanBaselineMatchesFull(t *testing.T) {
	plain := faultJobTarget(240).Spec
	ref, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	armed := faultJobTarget(240).Spec
	armed.Voting = &VotingSpec{Sensors: 3}
	out, err := Run(armed)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := SimMetrics(&out.Units[0]), SimMetrics(&ref.Units[0]); got != want {
		t.Errorf("clean voting metrics diverge from full:\nvoting %+v\nfull   %+v", got, want)
	}
	if got := out.Units[0].Labels["policy"]; got != "R-coord+A-Tref+SSfan+failsafe" {
		t.Errorf("voting unit policy = %q, want the full stack with the +failsafe suffix", got)
	}
}

// TestVotingNeverLatchesOnStuck is the latch regression: the harshest
// stuck-sensor cell latches the single-chain stack's fan (the wedged
// reading pins the controller), while the voter outvotes the one wedged
// replica — latch fraction exactly zero and no violation degradation.
func TestVotingNeverLatchesOnStuck(t *testing.T) {
	target := faultJobTarget(600)
	full, err := FaultCellSpec(target, FaultStuck, 1, 42, nil)
	if err != nil {
		t.Fatal(err)
	}
	fullOut, err := Run(full)
	if err != nil {
		t.Fatal(err)
	}
	voting, err := FaultCellSpec(target, FaultStuck, 1, 42, DefaultVoting())
	if err != nil {
		t.Fatal(err)
	}
	votingOut, err := Run(voting)
	if err != nil {
		t.Fatal(err)
	}
	if latch := fullOut.Aggregate[MetricLatchFrac]; latch <= 0 {
		t.Errorf("full stack latch frac %v under stuck@1; the regression needs a latching baseline", latch)
	}
	if latch := votingOut.Aggregate[MetricLatchFrac]; latch != 0 {
		t.Errorf("voting stack latch frac %v under stuck@1, want exactly 0", latch)
	}
	fullViol, _, _ := HeadlineMetrics(fullOut)
	votingViol, _, _ := HeadlineMetrics(votingOut)
	if votingViol > fullViol {
		t.Errorf("voting violation %v exceeds full %v under stuck@1", votingViol, fullViol)
	}
}

// TestSegmentFaultedFleetDeterministicAcrossWorkers: correlated segment
// faults plus per-replica voting state must stay bit-identical at any
// worker count through the recirculation fixed point and the coordinator
// rounds — one voter per lane, never shared.
func TestSegmentFaultedFleetDeterministicAcrossWorkers(t *testing.T) {
	for _, coordinated := range []bool{false, true} {
		spec := faultFleetTarget(240, coordinated).Spec
		spec.Fleet.Nodes[0].Faults = &FaultSpec{StuckAt: 30, StuckLen: 90}
		spec.Fleet.Segments = []BusSegment{{
			Name:   "bus0",
			Nodes:  []string{"n0", "n1"},
			Faults: &FaultSpec{AddedLagS: 15, DropoutRate: 0.4, DropoutSeed: 11},
		}}
		spec.Voting = &VotingSpec{Sensors: 3}
		spec.Record = true
		spec.Workers = 1
		ref, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			spec.Workers = w
			out, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out, ref) {
				t.Errorf("coordinated=%v: outcome differs at Workers=%d", coordinated, w)
			}
		}
	}
}

// TestFailSafePolicyEscalates: while the voter reports FailSafe the
// wrapped policy's command is overridden to open-loop safe cooling (fan
// floor, cap released); in any other health state it passes through.
func TestFailSafePolicyEscalates(t *testing.T) {
	lo, hi := &sensor.CalibrationBias{}, &sensor.CalibrationBias{}
	red, err := sensor.NewRedundant(
		sensor.RedundantConfig{OutlierC: 2, HoldTicks: 1},
		sensor.NewPipeline(lo), sensor.NewPipeline(), sensor.NewPipeline(hi))
	if err != nil {
		t.Fatal(err)
	}
	pol := &failSafePolicy{
		inner: &sim.HoldPolicy{Fan: 2000},
		h:     &votingHandle{r: red},
		floor: 8500,
	}
	if got, want := pol.Name(), "hold+failsafe"; got != want {
		t.Errorf("name %q, want %q", got, want)
	}
	red.Sample(0, 50)
	cmd := pol.Step(sim.Observation{})
	if cmd.Fan != 2000 {
		t.Errorf("healthy voter: fan %v, want inner command 2000", cmd.Fan)
	}
	// Spread the replicas past the outlier bound: hold for one tick, then
	// FailSafe.
	lo.Offset, hi.Offset = -10, 10
	red.Sample(1, 50)
	red.Sample(2, 50)
	if red.Health() != sensor.HealthFailSafe {
		t.Fatalf("health %v, want failsafe", red.Health())
	}
	cmd = pol.Step(sim.Observation{})
	if cmd.Fan != 8500 || cmd.Cap != 1 {
		t.Errorf("failsafe command %+v, want fan 8500 cap 1", cmd)
	}
	// Recovery passes through again.
	lo.Offset, hi.Offset = 0, 0
	red.Sample(3, 50)
	if cmd := pol.Step(sim.Observation{}); cmd.Fan != 2000 {
		t.Errorf("recovered voter: fan %v, want inner command 2000", cmd.Fan)
	}
}

// TestVotingCampaignDominanceAndResume is the two-stack campaign end to
// end: baselines per (target, stack), segment cells only where declared,
// voting dominating the single chain, and a warm rerun served entirely
// from the store.
func TestVotingCampaignDominanceAndResume(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	campaign := FaultCampaign{
		Targets:    []FaultTarget{faultJobTarget(240), votingFleetTarget(240, false)},
		Types:      []string{FaultStuck, FaultSegment},
		Severities: []float64{1},
		Stacks:     []string{StackFull, StackVoting},
		Seed:       7,
	}
	res, err := FaultSweep(campaign, store)
	if err != nil {
		t.Fatal(err)
	}
	// 2 targets x 2 stacks baselines; stuck cells on both targets, segment
	// cells only on the fleet target: (1 + 2) x 2 stacks.
	if len(res.Baselines) != 4 {
		t.Fatalf("baselines = %d, want 4", len(res.Baselines))
	}
	if len(res.Cells) != 6 {
		t.Fatalf("cells = %d, want 6", len(res.Cells))
	}
	for _, c := range res.Cells {
		if c.Type == FaultSegment && c.Target != "rack" {
			t.Errorf("segment cell ran on target %q without Segment nodes", c.Target)
		}
	}
	dominates, reasons := res.Dominance(StackVoting, StackFull, 0.01)
	if !dominates {
		t.Errorf("voting does not dominate full: %v", reasons)
	}

	// Warm rerun: everything cached, zero simulation.
	before := ProbeSimTicks()
	res2, err := FaultSweep(campaign, store)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Misses != 0 || res2.Hits != 10 {
		t.Errorf("warm campaign: %d hits, %d misses, want 10/0", res2.Hits, res2.Misses)
	}
	if ticks := ProbeSimTicks() - before; ticks != 0 {
		t.Errorf("warm campaign simulated %d ticks", ticks)
	}
	for i := range res.Cells {
		if res.Cells[i].Verdict != res2.Cells[i].Verdict {
			t.Errorf("cell %d verdict drifted: %s vs %s", i, res.Cells[i].Verdict, res2.Cells[i].Verdict)
		}
	}
}
