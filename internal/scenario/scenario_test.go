package scenario

import (
	"math"
	"testing"

	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// cheapSpec returns a fast deterministic single-run scenario for store
// and sweep tests; the ambient knob makes distinct cells.
func cheapSpec(ambient float64) Spec {
	cfg := sim.Default()
	cfg.Ambient = units.Celsius(ambient)
	return Spec{
		Kind:     KindSingle,
		Name:     "cheap",
		Base:     &cfg,
		Duration: 120,
		Jobs: []JobSpec{{
			Workload: FactoryRef{Name: "constant", Params: Params{"u": 0.6}},
			Policy:   FactoryRef{Name: "hold", Params: Params{"fan": 3000}},
		}},
	}
}

func TestValidateRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec Spec
	}{
		{"unknown kind", Spec{Kind: "warp"}},
		{"no jobs", Spec{Kind: KindBatch, Duration: 10}},
		{"single with two jobs", func() Spec {
			s := cheapSpec(25)
			s.Jobs = append(s.Jobs, s.Jobs[0])
			return s
		}()},
		{"no duration", func() Spec {
			s := cheapSpec(25)
			s.Duration = 0
			return s
		}()},
		{"unregistered workload", func() Spec {
			s := cheapSpec(25)
			s.Jobs[0].Workload.Name = "nope"
			return s
		}()},
		{"unregistered policy", func() Spec {
			s := cheapSpec(25)
			s.Jobs[0].Policy.Name = "nope"
			return s
		}()},
		{"fleet without block", Spec{Kind: KindFleet}},
		{"fleet with size and nodes", Spec{Kind: KindFleet, Duration: 10, Fleet: &FleetSpec{
			Size:  2,
			Nodes: []FleetNode{{Name: "a", Aisle: "cold"}},
		}}},
		{"fleet bad aisle", Spec{Kind: KindFleet, Duration: 10, Fleet: &FleetSpec{
			Nodes: []FleetNode{{
				Name: "a", Aisle: "tepid",
				Workload: FactoryRef{Name: "constant"},
				Policy:   FactoryRef{Name: "full"},
			}},
		}}},
		{"multicore without block", Spec{Kind: KindMulticore, Duration: 10}},
		{"fleet without duration", Spec{Kind: KindFleet, Fleet: &FleetSpec{Size: 2}}},
		{"fleet negative duration", Spec{Kind: KindFleet, Duration: -5, Fleet: &FleetSpec{Size: 2}}},
		{"sim kind with inert fleet block", func() Spec {
			s := cheapSpec(25)
			s.Fleet = &FleetSpec{Size: 2}
			return s
		}()},
		{"sim kind with inert params", func() Spec {
			s := cheapSpec(25)
			s.Params = Params{"x": 1}
			return s
		}()},
		{"fleet with inert jobs", Spec{Kind: KindFleet, Duration: 10,
			Fleet: &FleetSpec{Size: 2},
			Jobs:  []JobSpec{{Workload: FactoryRef{Name: "constant"}, Policy: FactoryRef{Name: "full"}}}}},
		{"multicore with inert fleet", Spec{Kind: KindMulticore, Duration: 10,
			Multicore: &MulticoreSpec{Workload: FactoryRef{Name: "constant"}},
			Fleet:     &FleetSpec{Size: 2}}},
	}
	for _, tc := range cases {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	good := cheapSpec(25)
	if err := good.Validate(); err != nil {
		t.Errorf("good spec rejected: %v", err)
	}
}

// TestValidateRejectsBadFaults: out-of-range severities and inert fault
// blocks (populated but ignored at run time) must be rejected, whether
// the block hangs off a job or a fleet node.
func TestValidateRejectsBadFaults(t *testing.T) {
	nan := math.NaN()
	bad := []struct {
		name string
		f    FaultSpec
	}{
		{"dropout rate one", FaultSpec{DropoutRate: 1.0}},
		{"dropout rate negative", FaultSpec{DropoutRate: -0.1}},
		{"negative stuck_at", FaultSpec{StuckAt: -5, StuckLen: 10}},
		{"negative stuck_len", FaultSpec{StuckAt: 5, StuckLen: -10}},
		{"nan placement", FaultSpec{PlacementCoeff: nan}},
		{"negative placement", FaultSpec{PlacementCoeff: -0.1}},
		{"nan calib sigma", FaultSpec{CalibSigma: nan}},
		{"negative calib sigma", FaultSpec{CalibSigma: -1}},
		{"nan slew", FaultSpec{SlewLimitCPerS: nan}},
		{"negative slew", FaultSpec{SlewLimitCPerS: -0.1}},
		{"inert all-zero block", FaultSpec{}},
		{"inert stuck without window", FaultSpec{StuckAt: 100}},
		{"inert dropout seed only", FaultSpec{DropoutSeed: 7}},
		{"inert calib seed only", FaultSpec{CalibSeed: 7}},
	}
	for _, tc := range bad {
		f := tc.f
		js := cheapSpec(25)
		js.Jobs[0].Faults = &f
		if err := js.Validate(); err == nil {
			t.Errorf("job %s: accepted", tc.name)
		}
		fs := Spec{Kind: KindFleet, Duration: 10, Fleet: &FleetSpec{
			Nodes: []FleetNode{{
				Name: "a", Aisle: "cold",
				Workload: FactoryRef{Name: "constant"},
				Policy:   FactoryRef{Name: "full"},
				Faults:   &f,
			}},
		}}
		if err := fs.Validate(); err == nil {
			t.Errorf("fleet node %s: accepted", tc.name)
		}
	}
	// Each new stage alone makes a valid, non-inert block.
	for _, f := range []FaultSpec{
		{PlacementCoeff: 0.05},
		{CalibSigma: 4, CalibSeed: 2},
		{SlewLimitCPerS: 0.1},
	} {
		f := f
		s := cheapSpec(25)
		s.Jobs[0].Faults = &f
		if err := s.Validate(); err != nil {
			t.Errorf("good fault %+v rejected: %v", f, err)
		}
	}
}

// TestRunSingleMatchesDirect pins the single-kind runner to a direct
// sim.Run with the same construction.
func TestRunSingleMatchesDirect(t *testing.T) {
	spec := cheapSpec(28)
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	cfg := *spec.Base
	server, err := sim.NewPhysicalServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(server, sim.RunConfig{
		Duration: spec.Duration,
		Workload: mustWorkload(t, spec.Jobs[0].Workload, cfg),
		Policy:   sim.HoldPolicy{Fan: 3000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := SimMetrics(&out.Units[0]); got != res.Metrics {
		t.Errorf("metrics:\nscenario %+v\ndirect   %+v", got, res.Metrics)
	}
	if out.Units[0].Labels["policy"] != "hold" {
		t.Errorf("policy label = %q", out.Units[0].Labels["policy"])
	}
}

func mustWorkload(t *testing.T, ref FactoryRef, cfg sim.Config) workload.Generator {
	t.Helper()
	g, err := buildWorkload(ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestBatchKindsBitIdentical: the same jobs through single, batch and
// lockstep kinds (and any worker count) produce identical unit metrics.
func TestBatchKindsBitIdentical(t *testing.T) {
	base := cheapSpec(27)
	single, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []string{KindBatch, KindLockstep} {
		for _, workers := range []int{0, 1, 2} {
			s := cheapSpec(27)
			s.Kind = kind
			s.Workers = workers
			out, err := Run(s)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", kind, workers, err)
			}
			if got, want := SimMetrics(&out.Units[0]), SimMetrics(&single.Units[0]); got != want {
				t.Errorf("%s workers=%d metrics differ:\n%+v\n%+v", kind, workers, got, want)
			}
		}
	}
}

// TestFleetGeneratedMatchesDirect pins the generated-rack runner to a
// direct fleet.NewRack + fleet.Run with the same overrides.
func TestFleetGeneratedMatchesDirect(t *testing.T) {
	seed := stats.SubSeed(9, 4)
	spec := Spec{
		Kind:     KindFleet,
		Name:     "rack",
		Duration: 600,
		Fleet: &FleetSpec{
			Size:         4,
			Layout:       []string{"cold", "hot"},
			Seed:         seed,
			AisleOffsets: &[3]units.Celsius{0, 3, 6},
			Recirc:       0.01,
		},
	}
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := fleet.NewRack(4, []fleet.Aisle{fleet.Cold, fleet.Hot}, seed)
	if err != nil {
		t.Fatal(err)
	}
	cfg.AisleOffsets = [fleet.NumAisles]units.Celsius{fleet.Cold: 0, fleet.Mid: 3, fleet.Hot: 6}
	cfg.Recirc = 0.01
	cfg.Duration = 600
	res, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	if len(out.Units) != len(res.Nodes) {
		t.Fatalf("units = %d, want %d", len(out.Units), len(res.Nodes))
	}
	for i, n := range res.Nodes {
		u := &out.Units[i]
		if u.Name != n.Name {
			t.Errorf("unit %d name %q != node %q", i, u.Name, n.Name)
		}
		if got := SimMetrics(u); got != n.Metrics {
			t.Errorf("node %s metrics differ:\n%+v\n%+v", n.Name, got, n.Metrics)
		}
		if got := u.Metric(MetricInletC, -1); got != float64(n.Inlet) {
			t.Errorf("node %s inlet %v != %v", n.Name, got, n.Inlet)
		}
		if u.Labels["aisle"] != n.Aisle.String() {
			t.Errorf("node %s aisle %q != %q", n.Name, u.Labels["aisle"], n.Aisle)
		}
	}
	if got := out.Aggregate[MetricPeakRackPowerW]; got != float64(res.PeakRackPower) {
		t.Errorf("peak rack power %v != %v", got, res.PeakRackPower)
	}
	if got := out.Aggregate[MetricViolationFrac]; got != res.ViolationFrac {
		t.Errorf("violation frac %v != %v", got, res.ViolationFrac)
	}
	if got := out.Aggregate[MetricPasses]; got != float64(res.Passes) {
		t.Errorf("passes %v != %v", got, res.Passes)
	}
}

// TestFleetGridMatchesFleetSweep pins the spec-per-cell grid (what the
// fleetsweep subcommand builds) to fleet.Sweep: same sub-seed keying on
// rack size, same spread-to-offsets mapping, bit-identical rack metrics.
func TestFleetGridMatchesFleetSweep(t *testing.T) {
	sizes := []int{2, 3}
	spreads := []float64{0, 4}
	const seed, recirc, duration = 1, 0.01, 400.0

	ref, err := fleet.Sweep(fleet.SweepConfig{
		RackSizes: sizes,
		Spreads:   []units.Celsius{0, 4},
		Seed:      seed,
		Recirc:    recirc,
		Duration:  duration,
	})
	if err != nil {
		t.Fatal(err)
	}

	var specs []Spec
	for _, size := range sizes {
		for _, spread := range spreads {
			specs = append(specs, Spec{
				Kind:     KindFleet,
				Duration: duration,
				Fleet: &FleetSpec{
					Size:         size,
					Seed:         stats.SubSeed(seed, int64(size)),
					AisleOffsets: &[3]units.Celsius{0, units.Celsius(spread / 2), units.Celsius(spread)},
					Recirc:       recirc,
				},
			})
		}
	}
	res, err := Sweep(specs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != len(ref) {
		t.Fatalf("cells = %d, want %d", len(res.Cells), len(ref))
	}
	for i, cell := range res.Cells {
		want := ref[i].Result
		agg := cell.Outcome.Aggregate
		if agg[MetricViolationFrac] != want.ViolationFrac ||
			agg[MetricFanEnergyJ] != float64(want.FanEnergy) ||
			agg[MetricFanEnergyShare] != want.FanEnergyShare ||
			agg[MetricPeakRackPowerW] != float64(want.PeakRackPower) ||
			agg[MetricMaxJunctionC] != float64(want.MaxJunction) {
			t.Errorf("cell %d (size %d, spread %g) aggregates differ from fleet.Sweep",
				i, ref[i].RackSize, float64(ref[i].Spread))
		}
	}
}

// TestFleetGeneratedHonorsBase: a declared Base platform must shape a
// generated rack's nodes (it is part of the identity hash, so ignoring
// it would let one store cell masquerade as another).
func TestFleetGeneratedHonorsBase(t *testing.T) {
	base := sim.Default()
	base.FanMaxSpeed = 6000 // visibly different actuator ceiling
	spec := Spec{
		Kind:     KindFleet,
		Base:     &base,
		Duration: 600,
		Fleet:    &FleetSpec{Size: 2, Seed: 3},
	}
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := fleet.NewRack(2, nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := range cfg.Nodes {
		cfg.Nodes[i].Config = base
	}
	cfg.Duration = 600
	res, err := fleet.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, n := range res.Nodes {
		if got := SimMetrics(&out.Units[i]); got != n.Metrics {
			t.Errorf("node %s metrics ignore Base:\n%+v\n%+v", n.Name, got, n.Metrics)
		}
	}

	// And the default-Base run must genuinely differ (the knob bites).
	def := spec
	def.Base = nil
	outDef, err := Run(def)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range out.Units {
		if SimMetrics(&out.Units[i]) != SimMetrics(&outDef.Units[i]) {
			same = false
		}
	}
	if same {
		t.Error("6000 rpm fan ceiling produced identical metrics to the default platform")
	}
}

// TestMulticoreMatchesDirect pins the multicore runner to a direct
// multicore.Run.
func TestMulticoreMatchesDirect(t *testing.T) {
	spec := Spec{
		Kind:     KindMulticore,
		Duration: 600,
		Multicore: &MulticoreSpec{
			Workload:   FactoryRef{Name: "noisy-square", Seed: 7, Params: Params{"period": 600, "sigma": 0.04}},
			Skewed:     true,
			Coordinate: true,
		},
	}
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	u := &out.Units[0]
	if u.Metric(MetricTicks, 0) != 600 {
		t.Errorf("ticks = %v, want 600", u.Metric(MetricTicks, 0))
	}
	if u.Metric(MetricFanEnergyJ, 0) <= 0 {
		t.Errorf("fan energy = %v, want > 0", u.Metric(MetricFanEnergyJ, 0))
	}
	// Rerun: deterministic.
	out2, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	for k, v := range u.Metrics {
		if out2.Units[0].Metrics[k] != v {
			t.Errorf("metric %s drifted between identical runs", k)
		}
	}
}

// TestWorkloadSharing: identical (ref, platform) pairs alias one
// generator instance; different refs do not.
func TestWorkloadSharing(t *testing.T) {
	cfg := sim.Default()
	ref := FactoryRef{Name: "noisy-square", Seed: 1, Params: Params{"period": 300, "sigma": 0.04}}
	cache := make(map[string]workload.Generator)
	g1, err := sharedWorkload(cache, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sharedWorkload(cache, ref, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 {
		t.Error("identical refs built distinct generators")
	}
	other := ref
	other.Seed = 2
	g3, err := sharedWorkload(cache, other, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if g3 == g1 {
		t.Error("different seeds aliased one generator")
	}
}

// TestFleetCoordValidation: the coordinator kind requires the Fleet
// block, accepts only known coordinator knobs in Params, and the plain
// fleet kind still rejects Params outright.
func TestFleetCoordValidation(t *testing.T) {
	good := Spec{
		Kind:     KindFleetCoord,
		Duration: 300,
		Fleet:    &FleetSpec{Size: 2, Seed: 1, Recirc: 0.02},
		Params:   Params{"migration_gain": 0.4, "rounds": 1},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good fleetcoord spec rejected: %v", err)
	}
	bad := []struct {
		name string
		spec Spec
	}{
		{"missing fleet block", Spec{Kind: KindFleetCoord, Duration: 300}},
		{"unknown knob", func() Spec {
			s := good
			s.Params = Params{"warp_factor": 9}
			return s
		}()},
		{"fractional rounds", func() Spec {
			s := good
			s.Params = Params{"rounds": 2.5}
			return s
		}()},
		{"inert jobs", func() Spec {
			s := good
			s.Jobs = []JobSpec{{Workload: FactoryRef{Name: "constant"}, Policy: FactoryRef{Name: "full"}}}
			return s
		}()},
		{"fleet kind with coordinator knobs", Spec{
			Kind: KindFleet, Duration: 300,
			Fleet:  &FleetSpec{Size: 2},
			Params: Params{"migration_gain": 0.4},
		}},
	}
	for _, tc := range bad {
		if err := tc.spec.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestFleetCoordMatchesDirect pins the fleetcoord runner to a direct
// fleet.RunCoordinated with the same knobs: coordinated units, the
// local_ comparison aggregates, and the plan metadata all line up.
func TestFleetCoordMatchesDirect(t *testing.T) {
	spec := Spec{
		Kind:     KindFleetCoord,
		Name:     "coord",
		Duration: 600,
		Fleet:    &FleetSpec{Size: 4, Seed: 9, Recirc: 0.03},
		Params:   Params{"power_budget_w": 700},
	}
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}

	cfg, err := fleet.NewRack(4, nil, 9)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Recirc = 0.03
	cfg.Duration = 600
	res, err := fleet.RunCoordinated(cfg, fleet.CoordinatorConfig{PowerBudget: 700})
	if err != nil {
		t.Fatal(err)
	}

	for i, n := range res.Coordinated.Nodes {
		u := &out.Units[i]
		if got := SimMetrics(u); got != n.Metrics {
			t.Errorf("node %s coordinated metrics differ", n.Name)
		}
		if got := u.Metric(MetricShare, -1); got != res.Shares[i] {
			t.Errorf("node %s share %v != %v", n.Name, got, res.Shares[i])
		}
	}
	agg := out.Aggregate
	if agg[MetricViolationFrac] != res.Coordinated.ViolationFrac {
		t.Errorf("coordinated violations %v != %v", agg[MetricViolationFrac], res.Coordinated.ViolationFrac)
	}
	if agg[LocalMetricPrefix+MetricViolationFrac] != res.Local.ViolationFrac {
		t.Errorf("local violations %v != %v", agg[LocalMetricPrefix+MetricViolationFrac], res.Local.ViolationFrac)
	}
	if agg[LocalMetricPrefix+MetricFanEnergyJ] != float64(res.Local.FanEnergy) {
		t.Errorf("local fan energy differs")
	}
	if agg[MetricCoordBestRound] != float64(res.BestRound) ||
		agg[MetricCoordRounds] != float64(res.Rounds) ||
		agg[MetricCoordBudgetW] != float64(res.Budget) ||
		agg[MetricCoordMigrated] != res.MigratedShare {
		t.Error("coordinator plan metadata differs from the direct run")
	}
	// The headline comparison the sweeps print: coordinated never worse.
	if agg[MetricViolationFrac] > agg[LocalMetricPrefix+MetricViolationFrac] {
		t.Error("coordinated violations above local in one outcome")
	}

	// Deterministic across Workers.
	for _, workers := range []int{1, 3} {
		s := spec
		s.Workers = workers
		again, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		for k, v := range agg {
			if again.Aggregate[k] != v {
				t.Fatalf("workers=%d: aggregate %s drifted", workers, k)
			}
		}
	}
}

// TestFleetCoordSweepServedFromStore: coordinator cells resume from the
// content-addressed store like any other kind — the second pass is all
// hits and performs zero simulation ticks.
func TestFleetCoordSweepServedFromStore(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{
		{
			Kind: KindFleetCoord, Name: "cell-a", Duration: 300,
			Fleet:  &FleetSpec{Size: 2, Seed: 1, Recirc: 0.03},
			Params: Params{"rounds": 1},
		},
		{
			Kind: KindFleetCoord, Name: "cell-b", Duration: 300,
			Fleet:  &FleetSpec{Size: 3, Seed: 2, Recirc: 0.03},
			Params: Params{"rounds": 1},
		},
	}
	cold, err := Sweep(specs, st)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Misses != 2 {
		t.Fatalf("cold sweep: %d misses, want 2", cold.Misses)
	}
	ticksBefore, runsBefore := ProbeSimTicks(), ProbeRuns()
	warm, err := Sweep(specs, st)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hits != 2 || warm.Misses != 0 {
		t.Fatalf("warm sweep: %d hits / %d misses, want 2/0", warm.Hits, warm.Misses)
	}
	if d := ProbeSimTicks() - ticksBefore; d != 0 {
		t.Errorf("warm coordinator sweep simulated %d ticks, want 0", d)
	}
	if d := ProbeRuns() - runsBefore; d != 0 {
		t.Errorf("warm coordinator sweep executed %d runs, want 0", d)
	}
	for i := range warm.Cells {
		a, b := cold.Cells[i].Outcome, warm.Cells[i].Outcome
		if a.Aggregate[MetricViolationFrac] != b.Aggregate[MetricViolationFrac] ||
			a.Aggregate[LocalMetricPrefix+MetricViolationFrac] != b.Aggregate[LocalMetricPrefix+MetricViolationFrac] {
			t.Errorf("cell %d: cached coordinator outcome differs", i)
		}
	}
}
