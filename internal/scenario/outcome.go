package scenario

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/units"
)

// Outcome is the one normalized result shape every scenario kind returns:
// per-unit metric maps (a unit is a batch job, a rack node, or the whole
// run for single-unit kinds) plus run-level aggregates. Everything is
// float64 and string — Outcomes marshal to JSON and back without loss
// (Go's float64 JSON encoding round-trips exactly), which is what lets
// the Store serve cached results bit-identical to a fresh run.
type Outcome struct {
	// Kind echoes the spec's kind.
	Kind string `json:"kind"`
	// Units are the per-job / per-node results, in spec order.
	Units []Unit `json:"units"`
	// Aggregate holds run-level metrics (rack totals, relaxation pass
	// counts); empty for kinds without a cross-unit view.
	Aggregate map[string]float64 `json:"aggregate,omitempty"`
}

// Unit is one job's or node's normalized result.
type Unit struct {
	// Name is the job/node name from the spec.
	Name string `json:"name"`
	// Labels carry non-numeric annotations (the built policy's name, a
	// fleet node's aisle).
	Labels map[string]string `json:"labels,omitempty"`
	// Metrics is the normalized metric map (see the sim metric keys in
	// simMetricsMap).
	Metrics map[string]float64 `json:"metrics"`
	// Series are the recorded time series, in engine recording order.
	Series []Series `json:"series,omitempty"`
}

// Series is one recorded time series.
type Series struct {
	Name string    `json:"name"`
	T    []float64 `json:"t"`
	V    []float64 `json:"v"`
}

// Metric returns a unit metric, or def when absent.
func (u *Unit) Metric(key string, def float64) float64 {
	if v, ok := u.Metrics[key]; ok {
		return v
	}
	return def
}

// FindSeries returns the named series, or nil.
func (u *Unit) FindSeries(name string) *Series {
	for i := range u.Series {
		if u.Series[i].Name == name {
			return &u.Series[i]
		}
	}
	return nil
}

// Unit returns the named unit, or nil.
func (o *Outcome) Unit(name string) *Unit {
	for i := range o.Units {
		if o.Units[i].Name == name {
			return &o.Units[i]
		}
	}
	return nil
}

// The normalized metric keys for a sim.Metrics block.
const (
	MetricTicks          = "ticks"
	MetricViolationFrac  = "violation_frac"
	MetricHWThrottleFrac = "hw_throttle_frac"
	MetricFanEnergyJ     = "fan_energy_j"
	MetricCPUEnergyJ     = "cpu_energy_j"
	MetricMaxJunctionC   = "max_junction_c"
	MetricMeanJunctionC  = "mean_junction_c"
	MetricTimeAboveS     = "time_above_limit_s"
	MetricMeanFanRPM     = "mean_fan_rpm"
	MetricMeanDelivered  = "mean_delivered"
	MetricMeanDemand     = "mean_demand"
)

// simMetricsMap normalizes a sim.Metrics block into the metric map.
func simMetricsMap(m sim.Metrics) map[string]float64 {
	return map[string]float64{
		MetricTicks:          float64(m.Ticks),
		MetricViolationFrac:  m.ViolationFrac,
		MetricHWThrottleFrac: m.HWThrottleFrac,
		MetricFanEnergyJ:     float64(m.FanEnergy),
		MetricCPUEnergyJ:     float64(m.CPUEnergy),
		MetricMaxJunctionC:   float64(m.MaxJunction),
		MetricMeanJunctionC:  float64(m.MeanJunction),
		MetricTimeAboveS:     float64(m.TimeAboveLimit),
		MetricMeanFanRPM:     float64(m.MeanFanSpeed),
		MetricMeanDelivered:  float64(m.MeanDelivered),
		MetricMeanDemand:     float64(m.MeanDemand),
	}
}

// SimMetrics reconstructs the sim.Metrics block from a unit's metric map —
// the inverse of the normalization Run applies, bit-exact for values a
// sim run can produce.
func SimMetrics(u *Unit) sim.Metrics {
	return sim.Metrics{
		Ticks:          int(u.Metric(MetricTicks, 0)),
		ViolationFrac:  u.Metric(MetricViolationFrac, 0),
		HWThrottleFrac: u.Metric(MetricHWThrottleFrac, 0),
		FanEnergy:      units.Joule(u.Metric(MetricFanEnergyJ, 0)),
		CPUEnergy:      units.Joule(u.Metric(MetricCPUEnergyJ, 0)),
		MaxJunction:    units.Celsius(u.Metric(MetricMaxJunctionC, 0)),
		MeanJunction:   units.Celsius(u.Metric(MetricMeanJunctionC, 0)),
		TimeAboveLimit: units.Seconds(u.Metric(MetricTimeAboveS, 0)),
		MeanFanSpeed:   units.RPM(u.Metric(MetricMeanFanRPM, 0)),
		MeanDelivered:  units.Utilization(u.Metric(MetricMeanDelivered, 0)),
		MeanDemand:     units.Utilization(u.Metric(MetricMeanDemand, 0)),
	}
}

// FromTraceSet converts a recorded trace set into outcome series,
// preserving the engine's recording order.
func FromTraceSet(ts *trace.Set) []Series {
	if ts == nil {
		return nil
	}
	out := make([]Series, 0, ts.Len())
	for _, name := range ts.Names() {
		s := ts.Get(name)
		out = append(out, Series{Name: name, T: s.Times(), V: s.Values()})
	}
	return out
}

// ToTraceSet rebuilds a trace.Set from outcome series, preserving order.
// It is the inverse of FromTraceSet: the rebuilt series hold the same
// float64 samples, so downstream post-processing (settling times, peak
// finding, CSV dumps) is bit-identical to operating on the originals.
func ToTraceSet(series []Series) (*trace.Set, error) {
	if len(series) == 0 {
		return nil, nil
	}
	ts := trace.NewSet()
	for _, s := range series {
		tr, err := trace.FromSlices(s.Name, s.T, s.V)
		if err != nil {
			return nil, fmt.Errorf("scenario: series %q: %w", s.Name, err)
		}
		ts.Add(tr)
	}
	return ts, nil
}
