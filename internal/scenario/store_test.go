package scenario

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// goldenSpec is the canonical fixture for hash-stability tests: every
// spec field class populated with fixed values.
func goldenSpec() Spec {
	cfg := sim.Default()
	cfg.Ambient = 30
	return Spec{
		Kind:     KindLockstep,
		Name:     "golden",
		Base:     &cfg,
		Duration: 1200,
		Jobs: []JobSpec{
			{
				Name:      "a",
				Workload:  FactoryRef{Name: "noisy-square", Seed: 42, Params: Params{"period": 600, "sigma": 0.04}},
				Policy:    FactoryRef{Name: "full"},
				WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1200},
			},
			{
				Name:     "b",
				Workload: FactoryRef{Name: "noisy-square", Seed: 42, Params: Params{"period": 600, "sigma": 0.04}},
				Policy:   FactoryRef{Name: "rcoord", Params: Params{"ref_temp": 75}},
				Faults:   &FaultSpec{StuckAt: 100, StuckLen: 60, DropoutRate: 0.1, DropoutSeed: 5},
			},
		},
	}
}

// TestKeyGolden pins the content addresses of canonical specs. These
// values are the store's on-disk contract: a change here invalidates
// every existing store, so it must be a deliberate, versioned decision —
// not a side effect of a refactor.
func TestKeyGolden(t *testing.T) {
	golden := map[string]func() Spec{
		"236c43152a15f928a8611490bbc719188d7af8cea7c79631a5ab5c77077d8fb3": goldenSpec,
		"675e5826c6f5390dc3cde13daaf557c0ca1142579ec887bc5b77ce41c8aaa014": func() Spec { return cheapSpec(25) },
		"e4e8797e94a085f1f5d8329b2f15a7836f3a2fd5ac5ee9f8ba5679c9eb2702c2": func() Spec {
			return Spec{
				Kind:     KindFleet,
				Name:     "rack",
				Duration: 600,
				Fleet: &FleetSpec{
					Size:   4,
					Layout: []string{"cold", "mid", "hot"},
					Seed:   1,
					Recirc: 0.01,
				},
			}
		},
		"17c743d1f66f81ea5986f49856f02089eea86920eafb99c7be5a63378d05599f": goldenFleetCoordSpec,
	}
	for want, build := range golden {
		got, err := Key(build())
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			canon, _ := CanonicalJSON(build())
			t.Errorf("golden key drifted:\n got %s\nwant %s\ncanonical: %s", got, want, canon)
		}
	}
}

// goldenFleetCoordSpec is the canonical coordinator-scenario fixture: the
// new kind plus its Params knobs, all of which are semantic and must move
// the content address.
func goldenFleetCoordSpec() Spec {
	return Spec{
		Kind:     KindFleetCoord,
		Name:     "rack-coord",
		Duration: 600,
		Fleet: &FleetSpec{
			Size:   4,
			Layout: []string{"cold", "mid", "hot"},
			Seed:   1,
			Recirc: 0.03,
		},
		Params: Params{"migration_gain": 0.5, "power_budget_w": 520},
	}
}

// TestKeyFleetCoordSemanticEdits: the coordinator kind and every
// coordinator knob are part of a cell's identity — and Workers still is
// not.
func TestKeyFleetCoordSemanticEdits(t *testing.T) {
	base, err := Key(goldenFleetCoordSpec())
	if err != nil {
		t.Fatal(err)
	}
	edits := map[string]func(*Spec){
		"kind fleet vs fleetcoord": func(s *Spec) { s.Kind = KindFleet; s.Params = nil },
		"budget knob":              func(s *Spec) { s.Params["power_budget_w"] = 600 },
		"migration gain knob":      func(s *Spec) { s.Params["migration_gain"] = 0.4 },
		"new knob":                 func(s *Spec) { s.Params["rounds"] = 3 },
		"drop knobs":               func(s *Spec) { s.Params = nil },
		"rack recirc":              func(s *Spec) { s.Fleet.Recirc = 0.05 },
	}
	for name, edit := range edits {
		s := goldenFleetCoordSpec()
		edit(&s)
		if err := s.Validate(); err != nil {
			t.Fatalf("edit %q produced an invalid spec: %v", name, err)
		}
		k, err := Key(s)
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Errorf("edit %q did not change the key", name)
		}
	}
	s := goldenFleetCoordSpec()
	s.Workers = 5
	if k, _ := Key(s); k != base {
		t.Error("Workers changed the fleetcoord key")
	}
}

// TestKeyFleetNodeFaults: a fleet node's fault block is part of the
// cell's identity — and a fault-free explicit-node spec keys identically
// whether the Faults field is nil or simply absent (there is no way to
// populate an "empty but present" block; Validate rejects inert ones).
func TestKeyFleetNodeFaults(t *testing.T) {
	mk := func(f *FaultSpec) Spec {
		return Spec{
			Kind:     KindFleet,
			Name:     "faulty-rack",
			Duration: 600,
			Fleet: &FleetSpec{
				Nodes: []FleetNode{
					{
						Name: "n0", Aisle: "cold", Slot: 0,
						Workload: FactoryRef{Name: "constant", Params: Params{"u": 0.5}},
						Policy:   FactoryRef{Name: "full"},
						Faults:   f,
					},
					{
						Name: "n1", Aisle: "hot", Slot: 0,
						Workload: FactoryRef{Name: "constant", Params: Params{"u": 0.5}},
						Policy:   FactoryRef{Name: "full"},
					},
				},
			},
		}
	}
	clean, err := Key(mk(nil))
	if err != nil {
		t.Fatal(err)
	}
	for name, f := range map[string]*FaultSpec{
		"stuck":     {StuckAt: 100, StuckLen: 60},
		"dropout":   {DropoutRate: 0.2, DropoutSeed: 9},
		"placement": {PlacementCoeff: 0.08},
		"calib":     {CalibSigma: 4, CalibSeed: 3},
		"slew":      {SlewLimitCPerS: 0.05},
	} {
		s := mk(f)
		if err := s.Validate(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		k, err := Key(s)
		if err != nil {
			t.Fatal(err)
		}
		if k == clean {
			t.Errorf("node fault %q did not change the key", name)
		}
	}
	// Bus segments are identity too: arming one moves the key, and so
	// does every semantic edit inside the segment.
	withSeg := func(f *FaultSpec) Spec {
		s := mk(nil)
		s.Fleet.Segments = []BusSegment{{Name: "bus0", Nodes: []string{"n1"}, Faults: f}}
		return s
	}
	segBase := withSeg(&FaultSpec{DropoutRate: 0.3, DropoutSeed: 5})
	if err := segBase.Validate(); err != nil {
		t.Fatal(err)
	}
	segKey, err := Key(segBase)
	if err != nil {
		t.Fatal(err)
	}
	if segKey == clean {
		t.Error("bus segment did not change the key")
	}
	for name, s := range map[string]Spec{
		"segment name": func() Spec {
			s := withSeg(&FaultSpec{DropoutRate: 0.3, DropoutSeed: 5})
			s.Fleet.Segments[0].Name = "bus1"
			return s
		}(),
		"segment nodes": func() Spec {
			s := withSeg(&FaultSpec{DropoutRate: 0.3, DropoutSeed: 5})
			s.Fleet.Segments[0].Nodes = []string{"n0"}
			return s
		}(),
		"segment fault": withSeg(&FaultSpec{DropoutRate: 0.4, DropoutSeed: 5}),
		"segment lag":   withSeg(&FaultSpec{DropoutRate: 0.3, DropoutSeed: 5, AddedLagS: 10}),
	} {
		k, err := Key(s)
		if err != nil {
			t.Fatal(err)
		}
		if k == segKey {
			t.Errorf("segment edit %q did not change the key", name)
		}
	}
}

// TestKeyMapOrderInvariant: the hash must not depend on how parameter
// maps were populated (Go randomizes map iteration; the canonical JSON
// sorts keys).
func TestKeyMapOrderInvariant(t *testing.T) {
	mk := func(order []string) Spec {
		s := cheapSpec(25)
		p := make(Params)
		vals := map[string]float64{"period": 600, "sigma": 0.04, "spike_len": 30, "duration": 7200}
		for _, k := range order {
			p[k] = vals[k]
		}
		s.Jobs[0].Workload = FactoryRef{Name: "table3", Seed: 42, Params: p}
		return s
	}
	a, err := Key(mk([]string{"period", "sigma", "spike_len", "duration"}))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		b, err := Key(mk([]string{"duration", "spike_len", "sigma", "period"}))
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("key depends on map population order: %s != %s", a, b)
		}
	}
}

// TestKeyChangesOnSemanticEdits: every semantic field must move the
// hash; the Workers execution knob must not.
func TestKeyChangesOnSemanticEdits(t *testing.T) {
	base, err := Key(goldenSpec())
	if err != nil {
		t.Fatal(err)
	}
	edits := map[string]func(*Spec){
		"kind":            func(s *Spec) { s.Kind = KindBatch },
		"name":            func(s *Spec) { s.Name = "other" },
		"duration":        func(s *Spec) { s.Duration = 1201 },
		"record":          func(s *Spec) { s.Record = true },
		"record_power":    func(s *Spec) { s.RecordPower = true },
		"base ambient":    func(s *Spec) { s.Base.Ambient = 31 },
		"base tick":       func(s *Spec) { s.Base.Tick = 2 },
		"job name":        func(s *Spec) { s.Jobs[0].Name = "z" },
		"workload name":   func(s *Spec) { s.Jobs[0].Workload.Name = "square" },
		"workload seed":   func(s *Spec) { s.Jobs[0].Workload.Seed = 43 },
		"workload param":  func(s *Spec) { s.Jobs[0].Workload.Params["sigma"] = 0.05 },
		"policy name":     func(s *Spec) { s.Jobs[0].Policy.Name = "none" },
		"policy param":    func(s *Spec) { s.Jobs[1].Policy.Params["ref_temp"] = 76 },
		"warm start":      func(s *Spec) { s.Jobs[0].WarmStart.Fan = 1300 },
		"drop warm start": func(s *Spec) { s.Jobs[0].WarmStart = nil },
		"fault window":    func(s *Spec) { s.Jobs[1].Faults.StuckLen = 61 },
		"fault rate":      func(s *Spec) { s.Jobs[1].Faults.DropoutRate = 0.2 },
		"fault placement": func(s *Spec) { s.Jobs[1].Faults.PlacementCoeff = 0.05 },
		"fault calib":     func(s *Spec) { s.Jobs[1].Faults.CalibSigma = 3 },
		"fault calibseed": func(s *Spec) { s.Jobs[1].Faults.CalibSigma = 3; s.Jobs[1].Faults.CalibSeed = 7 },
		"fault slew":      func(s *Spec) { s.Jobs[1].Faults.SlewLimitCPerS = 0.05 },
		"fault added lag": func(s *Spec) { s.Jobs[1].Faults.AddedLagS = 5 },
		"voting armed":    func(s *Spec) { s.Voting = &VotingSpec{Sensors: 3} },
		"voting replicas": func(s *Spec) { s.Voting = &VotingSpec{Sensors: 5} },
		"voting knob":     func(s *Spec) { s.Voting = &VotingSpec{Sensors: 3, OutlierC: 2} },
		"job order":       func(s *Spec) { s.Jobs[0], s.Jobs[1] = s.Jobs[1], s.Jobs[0] },
		"extra job":       func(s *Spec) { s.Jobs = append(s.Jobs, s.Jobs[0]) },
		"job config":      func(s *Spec) { c := sim.Default(); s.Jobs[0].Config = &c },
	}
	for name, edit := range edits {
		s := goldenSpec()
		edit(&s)
		k, err := Key(s)
		if err != nil {
			t.Fatal(err)
		}
		if k == base {
			t.Errorf("edit %q did not change the key", name)
		}
	}
	// Workers is an execution knob: any value, same identity.
	for _, workers := range []int{0, 1, 7} {
		s := goldenSpec()
		s.Workers = workers
		k, err := Key(s)
		if err != nil {
			t.Fatal(err)
		}
		if k != base {
			t.Errorf("Workers=%d changed the key", workers)
		}
	}
}

// TestStoreRoundTrip: a stored outcome reads back bit-identical,
// including recorded series (float64 survives the JSON round trip).
func TestStoreRoundTrip(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := cheapSpec(26)
	spec.Record = true
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, _ := st.Get(spec); ok {
		t.Fatal("hit on empty store")
	}
	if err := st.Put(spec, out); err != nil {
		t.Fatal(err)
	}
	back, ok, err := st.Get(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("miss after Put")
	}
	a, _ := json.Marshal(out)
	b, _ := json.Marshal(back)
	if string(a) != string(b) {
		t.Error("outcome changed across the store round trip")
	}
	if got := SimMetrics(&back.Units[0]); got != SimMetrics(&out.Units[0]) {
		t.Error("metrics changed across the store round trip")
	}
	if n, err := st.Len(); err != nil || n != 1 {
		t.Errorf("Len = %d (%v), want 1", n, err)
	}
}

// TestStoreVersionMismatchIsMiss: a cell written by a different format
// version reads as a miss, not an error.
func TestStoreVersionMismatchIsMiss(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := cheapSpec(26)
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put(spec, out); err != nil {
		t.Fatal(err)
	}
	key, _ := Key(spec)
	path := filepath.Join(st.Dir(), key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entry storeEntry
	if err := json.Unmarshal(b, &entry); err != nil {
		t.Fatal(err)
	}
	entry.Version = storeVersion + 1
	b, _ = json.Marshal(entry)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := st.Get(spec); err != nil || ok {
		t.Errorf("future-version cell: ok=%v err=%v, want miss without error", ok, err)
	}
}

// TestSweepResume is the store's reason to exist: a sweep killed halfway
// loses nothing — the rerun computes only the missing cells, and a fully
// warm sweep performs zero simulation ticks.
func TestSweepResume(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := []Spec{cheapSpec(24), cheapSpec(26), cheapSpec(28), cheapSpec(30)}

	// Reference outcomes, computed without any store.
	var want []*Outcome
	for _, s := range specs {
		out, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, out)
	}

	// "Kill the sweep halfway": only the first half runs.
	half, err := Sweep(specs[:2], st)
	if err != nil {
		t.Fatal(err)
	}
	if half.Hits != 0 || half.Misses != 2 {
		t.Fatalf("first half: %d hits / %d misses, want 0/2", half.Hits, half.Misses)
	}

	// The rerun over the full grid recomputes only the missing cells.
	runsBefore := ProbeRuns()
	full, err := Sweep(specs, st)
	if err != nil {
		t.Fatal(err)
	}
	if full.Hits != 2 || full.Misses != 2 {
		t.Fatalf("resume: %d hits / %d misses, want 2/2", full.Hits, full.Misses)
	}
	if executed := ProbeRuns() - runsBefore; executed != 2 {
		t.Errorf("resume executed %d runs, want 2", executed)
	}
	for i, cell := range full.Cells {
		a, _ := json.Marshal(cell.Outcome)
		b, _ := json.Marshal(want[i])
		if string(a) != string(b) {
			t.Errorf("cell %d outcome differs from a storeless run", i)
		}
		if wantCached := i < 2; cell.Cached != wantCached {
			t.Errorf("cell %d cached=%v, want %v", i, cell.Cached, wantCached)
		}
	}

	// Fully warm: all hits, zero simulation ticks (the acceptance bar).
	ticksBefore, runsBefore := ProbeSimTicks(), ProbeRuns()
	warm, err := Sweep(specs, st)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Hits != len(specs) || warm.Misses != 0 {
		t.Fatalf("warm: %d hits / %d misses, want %d/0", warm.Hits, warm.Misses, len(specs))
	}
	if d := ProbeSimTicks() - ticksBefore; d != 0 {
		t.Errorf("warm sweep simulated %d ticks, want 0", d)
	}
	if d := ProbeRuns() - runsBefore; d != 0 {
		t.Errorf("warm sweep executed %d runs, want 0", d)
	}
	for i, cell := range warm.Cells {
		a, _ := json.Marshal(cell.Outcome)
		b, _ := json.Marshal(want[i])
		if string(a) != string(b) {
			t.Errorf("warm cell %d outcome differs", i)
		}
	}
}

// TestSweepWithoutStore still runs every cell.
func TestSweepWithoutStore(t *testing.T) {
	res, err := Sweep([]Spec{cheapSpec(24), cheapSpec(25)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits != 0 || res.Misses != 2 || len(res.Cells) != 2 {
		t.Errorf("storeless sweep: %+v", res)
	}
}

// TestProbeTicksCountSimulation: running a scenario moves the tick probe
// by exactly the simulated tick count.
func TestProbeTicksCountSimulation(t *testing.T) {
	spec := cheapSpec(25)
	before := ProbeSimTicks()
	if _, err := Run(spec); err != nil {
		t.Fatal(err)
	}
	if d := ProbeSimTicks() - before; d != int64(float64(spec.Duration)/float64(units.Seconds(1))) {
		t.Errorf("probe moved %d ticks, want %v", d, spec.Duration)
	}
}

// TestStoreList: the inspection listing reports key, kind, name, unit
// count and on-disk size per cell, sorted by key, including cells written
// by other format versions.
func TestStoreList(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if infos, err := st.List(); err != nil || len(infos) != 0 {
		t.Fatalf("empty store listed %d cells (%v)", len(infos), err)
	}
	specs := []Spec{cheapSpec(24), cheapSpec(26)}
	for _, s := range specs {
		out, err := Run(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(s, out); err != nil {
			t.Fatal(err)
		}
	}
	infos, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 {
		t.Fatalf("listed %d cells, want 2", len(infos))
	}
	wantKeys := make(map[string]bool)
	for _, s := range specs {
		k, _ := Key(s)
		wantKeys[k] = true
	}
	for i, info := range infos {
		if !wantKeys[info.Key] {
			t.Errorf("cell %d: unexpected key %s", i, info.Key)
		}
		if info.Kind != KindSingle || info.Name != "cheap" {
			t.Errorf("cell %d: kind/name = %q/%q", i, info.Kind, info.Name)
		}
		if info.Units != 1 {
			t.Errorf("cell %d: units = %d, want 1", i, info.Units)
		}
		if info.Version != storeVersion {
			t.Errorf("cell %d: version = %d", i, info.Version)
		}
		if info.Size <= 0 {
			t.Errorf("cell %d: size = %d", i, info.Size)
		}
		if i > 0 && infos[i-1].Key >= info.Key {
			t.Error("listing not sorted by key")
		}
	}

	// A future-version cell still appears in the listing (with its own
	// version) even though Get treats it as a miss.
	path := filepath.Join(st.Dir(), infos[0].Key+".json")
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var entry storeEntry
	if err := json.Unmarshal(b, &entry); err != nil {
		t.Fatal(err)
	}
	entry.Version = storeVersion + 1
	b, _ = json.Marshal(entry)
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
	infos, err = st.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != 2 || infos[0].Version != storeVersion+1 {
		t.Errorf("future-version cell mislisted: %+v", infos)
	}
}
