package scenario

import (
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// faultJobTarget is a small single-job control stack for campaign tests.
func faultJobTarget(dur units.Seconds) FaultTarget {
	return FaultTarget{
		Name: "solo",
		Spec: Spec{
			Kind:     KindSingle,
			Name:     "solo",
			Duration: dur,
			Jobs: []JobSpec{{
				Name:     "full",
				Workload: FactoryRef{Name: "square", Params: Params{"period": 120}},
				Policy:   FactoryRef{Name: "full"},
			}},
		},
	}
}

// faultFleetTarget is a two-node explicit rack, optionally coordinated.
func faultFleetTarget(dur units.Seconds, coordinated bool) FaultTarget {
	name, kind := "rack", KindFleet
	var params Params
	if coordinated {
		name, kind = "rackcoord", KindFleetCoord
		params = Params{"rounds": 1, "migration_gain": 0.1}
	}
	return FaultTarget{
		Name: name,
		Spec: Spec{
			Kind:     kind,
			Name:     name,
			Duration: dur,
			Params:   params,
			Fleet: &FleetSpec{
				Nodes: []FleetNode{
					{
						Name: "n0", Aisle: "cold", Slot: 0,
						Workload: FactoryRef{Name: "square", Params: Params{"period": 120}},
						Policy:   FactoryRef{Name: "full"},
					},
					{
						Name: "n1", Aisle: "hot", Slot: 0,
						Workload: FactoryRef{Name: "constant", Params: Params{"u": 0.6}},
						Policy:   FactoryRef{Name: "full"},
					},
				},
			},
		},
	}
}

// TestFaultSpecFor pins the severity ladder: every type yields a valid,
// enabled FaultSpec; severity and type are range-checked.
func TestFaultSpecFor(t *testing.T) {
	for _, typ := range FaultTypes() {
		for _, sev := range []float64{0.1, 0.5, 1} {
			f, err := FaultSpecFor(typ, sev, 600, 42)
			if err != nil {
				t.Fatalf("%s@%g: %v", typ, sev, err)
			}
			if !f.enabled() {
				t.Errorf("%s@%g: disabled spec %+v", typ, sev, f)
			}
			if err := f.validate(); err != nil {
				t.Errorf("%s@%g: invalid spec: %v", typ, sev, err)
			}
		}
	}
	// Harsher severity must not shrink the injected fault.
	lo, _ := FaultSpecFor(FaultStuck, 0.2, 600, 42)
	hi, _ := FaultSpecFor(FaultStuck, 0.9, 600, 42)
	if hi.StuckLen <= lo.StuckLen {
		t.Errorf("stuck ladder not monotone: %v vs %v", lo.StuckLen, hi.StuckLen)
	}
	loS, _ := FaultSpecFor(FaultSlew, 0.2, 600, 42)
	hiS, _ := FaultSpecFor(FaultSlew, 0.9, 600, 42)
	if hiS.SlewLimitCPerS >= loS.SlewLimitCPerS {
		t.Errorf("slew ladder not monotone: %v vs %v", loS.SlewLimitCPerS, hiS.SlewLimitCPerS)
	}
	for _, bad := range []struct {
		typ string
		sev float64
		dur units.Seconds
	}{
		{"stuck", 0, 600},
		{"stuck", 1.5, 600},
		{"stuck", -0.1, 600},
		{"stuck", 0.5, 0},
		{"warp", 0.5, 600},
	} {
		if _, err := FaultSpecFor(bad.typ, bad.sev, bad.dur, 42); err == nil {
			t.Errorf("%+v: accepted", bad)
		}
	}
}

// TestFaultSweepValidate covers the faultsweep-specific structural rules.
func TestFaultSweepValidate(t *testing.T) {
	f := &FaultSpec{DropoutRate: 0.5, DropoutSeed: 1}
	mkJobs := func() Spec {
		s := faultJobTarget(120).Spec
		s.Kind = KindFaultSweep
		s.Jobs[0].Faults = f
		return s
	}
	good := mkJobs()
	if err := good.Validate(); err != nil {
		t.Fatalf("good jobs cell rejected: %v", err)
	}
	goodFleet := faultFleetTarget(120, false).Spec
	goodFleet.Kind = KindFaultSweep
	goodFleet.Fleet.Nodes[0].Faults = f
	if err := goodFleet.Validate(); err != nil {
		t.Fatalf("good fleet cell rejected: %v", err)
	}
	goodCoord := faultFleetTarget(120, true).Spec
	goodCoord.Kind = KindFaultSweep
	goodCoord.Fleet.Nodes[0].Faults = f
	goodCoord.Params["coordinated"] = 1
	if err := goodCoord.Validate(); err != nil {
		t.Fatalf("good coordinated cell rejected: %v", err)
	}
	bad := []struct {
		name string
		mk   func() Spec
	}{
		{"no faults", func() Spec {
			s := mkJobs()
			s.Jobs[0].Faults = nil
			return s
		}},
		{"both jobs and fleet", func() Spec {
			s := mkJobs()
			s.Fleet = goodFleet.Fleet
			return s
		}},
		{"neither block", func() Spec {
			s := mkJobs()
			s.Jobs = nil
			return s
		}},
		{"generated rack", func() Spec {
			s := goodFleet
			s.Fleet = &FleetSpec{Size: 4}
			return s
		}},
		{"multicore block", func() Spec {
			s := mkJobs()
			s.Multicore = &MulticoreSpec{Workload: FactoryRef{Name: "constant"}}
			return s
		}},
		{"coordinated zero", func() Spec {
			s := goodCoord
			s.Params = Params{"coordinated": 0}
			return s
		}},
		{"coordinated on jobs", func() Spec {
			s := mkJobs()
			s.Params = Params{"coordinated": 1}
			return s
		}},
		{"coord knob without coordinated", func() Spec {
			s := goodFleet
			s.Params = Params{"rounds": 1}
			return s
		}},
		{"unknown param", func() Spec {
			s := goodCoord
			s.Params = Params{"coordinated": 1, "warp": 9}
			return s
		}},
		{"fractional rounds", func() Spec {
			s := goodCoord
			s.Params = Params{"coordinated": 1, "rounds": 1.5}
			return s
		}},
	}
	for _, tc := range bad {
		s := tc.mk()
		if err := s.Validate(); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

// TestPathologyMetrics pins the trace-distillation math on synthetic
// series: a violation burst confined to one window, and a latched tail.
func TestPathologyMetrics(t *testing.T) {
	cfg := sim.Default()
	n := 400 // 1s ticks
	mk := func(name string, f func(i int) float64) Series {
		s := Series{Name: name, T: make([]float64, n), V: make([]float64, n)}
		for i := 0; i < n; i++ {
			s.T[i] = float64(i)
			s.V[i] = f(i)
		}
		return s
	}
	u := Unit{
		Name: "synthetic",
		Series: []Series{
			mk("demand", func(i int) float64 { return 0.8 }),
			// Violations on [100, 160): 60 bad ticks inside any 120 s
			// window that covers them -> max window fraction 60/121.
			mk("delivered", func(i int) float64 {
				if i >= 100 && i < 160 {
					return 0.5
				}
				return 0.8
			}),
			// Fan pinned at max for the final half; cap released (=1) for
			// the first half of the final quarter, held low after.
			mk("fan_actual", func(i int) float64 {
				if i >= 200 {
					return float64(cfg.FanMaxSpeed)
				}
				return 4000
			}),
			mk("cap", func(i int) float64 {
				if i >= 350 {
					return 0.4
				}
				return 1
			}),
		},
	}
	window, latch, err := pathologyMetrics(&u, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if want := 60.0 / 121.0; window != want {
		t.Errorf("max viol window = %v, want %v", window, want)
	}
	// Final quarter is ticks [300, 400); latched on [350, 400) -> 0.5.
	if latch != 0.5 {
		t.Errorf("latch frac = %v, want 0.5", latch)
	}

	// A unit without recorded series must error, not silently report 0.
	bare := Unit{Name: "bare"}
	if _, _, err := pathologyMetrics(&bare, cfg); err == nil {
		t.Error("missing series accepted")
	}
}

// TestRunFaultSweepMatchesPlain: a faultsweep cell is its target run
// plus pathology metrics — the underlying engine metrics must be
// bit-identical to the equivalent plain faulted spec, and the series
// must be stripped unless requested.
func TestRunFaultSweepMatchesPlain(t *testing.T) {
	f := &FaultSpec{StuckAt: 30, StuckLen: 60}

	cell := faultJobTarget(240).Spec
	cell.Kind = KindFaultSweep
	cell.Jobs[0].Faults = f
	out, err := Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if out.Kind != KindFaultSweep {
		t.Errorf("kind = %q", out.Kind)
	}
	plain := faultJobTarget(240).Spec
	plain.Jobs[0].Faults = f
	ref, err := Run(plain)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := SimMetrics(&out.Units[0]), SimMetrics(&ref.Units[0]); got != want {
		t.Errorf("engine metrics diverge:\nfaultsweep %+v\nplain      %+v", got, want)
	}
	for _, key := range []string{MetricMaxViolWindow, MetricLatchFrac} {
		if _, ok := out.Units[0].Metrics[key]; !ok {
			t.Errorf("unit missing %s", key)
		}
		if _, ok := out.Aggregate[key]; !ok {
			t.Errorf("aggregate missing %s", key)
		}
	}
	if len(out.Units[0].Series) != 0 {
		t.Errorf("series not stripped (%d kept)", len(out.Units[0].Series))
	}

	// Record=true keeps the series.
	cell.Record = true
	rec, err := Run(cell)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Units[0].FindSeries("junction") == nil {
		t.Error("recording cell lost its series")
	}

	// Same shape for a fleet cell: engine metrics match the plain fleet
	// run of the same faulted rack.
	fcell := faultFleetTarget(240, false).Spec
	fcell.Kind = KindFaultSweep
	fcell.Fleet.Nodes[0].Faults = f
	fout, err := Run(fcell)
	if err != nil {
		t.Fatal(err)
	}
	fplain := faultFleetTarget(240, false).Spec
	fplain.Fleet.Nodes[0].Faults = f
	fref, err := Run(fplain)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fref.Units {
		if got, want := SimMetrics(&fout.Units[i]), SimMetrics(&fref.Units[i]); got != want {
			t.Errorf("fleet node %d metrics diverge:\nfaultsweep %+v\nplain      %+v", i, got, want)
		}
	}
	for k, want := range fref.Aggregate {
		if got := fout.Aggregate[k]; got != want {
			t.Errorf("fleet aggregate %s = %v, want %v", k, got, want)
		}
	}
}

// TestClassify pins the verdict thresholds.
func TestClassify(t *testing.T) {
	cases := []struct {
		name string
		d    Degradation
		want Verdict
	}{
		{"clean", Degradation{}, VerdictGraceful},
		{"small drift", Degradation{DViolationFrac: 0.01, DFanEnergyRel: 0.02}, VerdictGraceful},
		{"violation jump", Degradation{DViolationFrac: 0.05}, VerdictDegraded},
		{"fan energy jump", Degradation{DFanEnergyRel: 0.10}, VerdictDegraded},
		{"thermal excursion", Degradation{DTimeAboveS: 30}, VerdictDegraded},
		{"sustained violation window", Degradation{MaxViolWindow: 0.99}, VerdictPathological},
		{"fan latch", Degradation{LatchFrac: 1}, VerdictPathological},
		{"latch beats degraded", Degradation{DViolationFrac: 0.05, LatchFrac: 0.99}, VerdictPathological},
	}
	for _, tc := range cases {
		if got := Classify(tc.d); got != tc.want {
			t.Errorf("%s: %s, want %s", tc.name, got, tc.want)
		}
	}
}

// TestFaultSweepCampaignResume is the campaign end-to-end: every cell
// classified, baselines keyed as plain existing-kind specs, and a rerun
// against the same store serving everything from cache with zero
// simulation.
func TestFaultSweepCampaignResume(t *testing.T) {
	store, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	campaign := FaultCampaign{
		Targets:    []FaultTarget{faultJobTarget(120), faultFleetTarget(120, true)},
		Types:      []string{FaultStuck, FaultPlacement},
		Severities: []float64{0.3, 0.9},
		Seed:       7,
	}
	res, err := FaultSweep(campaign, store)
	if err != nil {
		t.Fatal(err)
	}
	wantCells := 2 * 2 * 2
	if len(res.Cells) != wantCells || len(res.Baselines) != 2 {
		t.Fatalf("cells = %d, baselines = %d", len(res.Cells), len(res.Baselines))
	}
	if res.Hits != 0 || res.Misses != wantCells+2 {
		t.Errorf("cold campaign: %d hits, %d misses", res.Hits, res.Misses)
	}
	for _, c := range res.Cells {
		switch c.Verdict {
		case VerdictGraceful, VerdictDegraded, VerdictPathological:
		default:
			t.Errorf("cell %s/%s@%g: unclassified verdict %q", c.Target, c.Type, c.Severity, c.Verdict)
		}
	}
	// Baseline cells are the plain target specs: same key, same kind.
	for i, b := range res.Baselines {
		want, err := Key(campaign.Targets[i].Spec)
		if err != nil {
			t.Fatal(err)
		}
		if b.Key != want {
			t.Errorf("baseline %d key %s, want plain-spec key %s", i, b.Key, want)
		}
		if b.Outcome.Kind != campaign.Targets[i].Spec.Kind {
			t.Errorf("baseline %d kind %q", i, b.Outcome.Kind)
		}
	}

	// Warm rerun: all cells cached, zero ticks simulated, identical
	// verdicts.
	before := ProbeSimTicks()
	res2, err := FaultSweep(campaign, store)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Misses != 0 || res2.Hits != wantCells+2 {
		t.Errorf("warm campaign: %d hits, %d misses", res2.Hits, res2.Misses)
	}
	if ticks := ProbeSimTicks() - before; ticks != 0 {
		t.Errorf("warm campaign simulated %d ticks", ticks)
	}
	for i := range res.Cells {
		if res.Cells[i].Verdict != res2.Cells[i].Verdict {
			t.Errorf("cell %d verdict drifted: %s vs %s", i, res.Cells[i].Verdict, res2.Cells[i].Verdict)
		}
		if res.Cells[i].Degradation != res2.Cells[i].Degradation {
			t.Errorf("cell %d degradation drifted", i)
		}
	}
}

// TestFaultedFleetDeterministicAcrossWorkers: per-node fault injection
// must stay bit-identical at any worker count, through both the
// recirculation fixed point and the coordinator rounds — fault stage
// state lives inside each lane's pipeline, never shared across lanes.
func TestFaultedFleetDeterministicAcrossWorkers(t *testing.T) {
	for _, coordinated := range []bool{false, true} {
		spec := faultFleetTarget(240, coordinated).Spec
		spec.Fleet.Nodes[0].Faults = &FaultSpec{PlacementCoeff: 0.08, SlewLimitCPerS: 0.5}
		spec.Fleet.Nodes[1].Faults = &FaultSpec{DropoutRate: 0.4, DropoutSeed: 11, CalibSigma: 4, CalibSeed: 3}
		spec.Record = true
		spec.Workers = 1
		ref, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range []int{2, 4} {
			spec.Workers = w
			out, err := Run(spec)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(out, ref) {
				t.Errorf("coordinated=%v: outcome differs at Workers=%d", coordinated, w)
			}
		}
	}
}

// TestFaultSweepRejectsBadCampaigns: empty axes and pre-faulted
// baselines are campaign-construction errors.
func TestFaultSweepRejectsBadCampaigns(t *testing.T) {
	target := faultJobTarget(120)
	for _, tc := range []struct {
		name string
		c    FaultCampaign
	}{
		{"no targets", FaultCampaign{Types: []string{FaultStuck}, Severities: []float64{0.5}}},
		{"no types", FaultCampaign{Targets: []FaultTarget{target}, Severities: []float64{0.5}}},
		{"no severities", FaultCampaign{Targets: []FaultTarget{target}, Types: []string{FaultStuck}}},
		{"unknown type", FaultCampaign{Targets: []FaultTarget{target}, Types: []string{"warp"}, Severities: []float64{0.5}}},
		{"faulted baseline", func() FaultCampaign {
			t := faultJobTarget(120)
			t.Spec.Jobs[0].Faults = &FaultSpec{DropoutRate: 0.5}
			return FaultCampaign{Targets: []FaultTarget{t}, Types: []string{FaultStuck}, Severities: []float64{0.5}}
		}()},
		{"multicore target", FaultCampaign{
			Targets: []FaultTarget{{Name: "mc", Spec: Spec{
				Kind: KindMulticore, Duration: 120,
				Multicore: &MulticoreSpec{Workload: FactoryRef{Name: "constant"}},
			}}},
			Types: []string{FaultStuck}, Severities: []float64{0.5},
		}},
	} {
		if _, err := FaultSweep(tc.c, nil); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}
