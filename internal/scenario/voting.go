// Fault-tolerant sensing: the declarative voting/redundancy surface and
// the correlated bus-segment fault model.
//
// VotingSpec arms sensor.Redundant on every unit of a spec: the unit's
// measurement chain — including its injected FaultSpec stages — is
// replicated into N independently seeded copies observing the same
// junction, fused by median voting with plausibility checks and outlier
// rejection, and every policy is wrapped with a fail-safe escalation that
// degrades to open-loop safe cooling (fan floor + released cap) while the
// voter reports FailSafe. BusSegment models the correlated failure the
// single-chain stack cannot distinguish from silicon faults: one I2C
// segment degrading takes every member node's telemetry with it, so one
// declarative segment spec fans out to every sensor — every replica — on
// that segment.
package scenario

import (
	"fmt"

	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
)

// VotingSpec arms redundant sensing. All knobs except Sensors are
// optional: zero selects the sensor-package default and, being omitted
// from the canonical JSON, hashes identically to an absent field.
type VotingSpec struct {
	// Sensors is the replica count (>= 3; median voting cannot outvote a
	// wedged replica with fewer).
	Sensors int `json:"sensors"`
	// OutlierC is the max distance (degC) from the replica median before
	// a reading is voted out. 0 = sensor.DefaultOutlierC.
	OutlierC float64 `json:"outlier_c,omitempty"`
	// Quorum is the minimum surviving replica count for a good fused
	// reading. 0 = strict majority.
	Quorum int `json:"quorum,omitempty"`
	// HoldTicks is the hold-last-good budget before FailSafe latches.
	// 0 = sensor.DefaultHoldTicks.
	HoldTicks int `json:"hold_ticks,omitempty"`
	// MaxSlewCPerS is the per-replica plausibility slew bound.
	// 0 = sensor.DefaultMaxSlewCPerS.
	MaxSlewCPerS float64 `json:"max_slew_c_per_s,omitempty"`
	// FanFloorRPM is the fail-safe fan floor. 0 = the platform's
	// FanMaxSpeed (full open-loop cooling).
	FanFloorRPM units.RPM `json:"fan_floor_rpm,omitempty"`
}

// validate rejects voting blocks that would simulate garbage or hash
// without shaping the run.
func (v *VotingSpec) validate() error {
	if v.Sensors < 3 {
		return fmt.Errorf("sensors %d (voting needs >= 3 replicas)", v.Sensors)
	}
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"outlier_c", v.OutlierC},
		{"max_slew_c_per_s", v.MaxSlewCPerS},
		{"fan_floor_rpm", float64(v.FanFloorRPM)},
	} {
		if !units.IsFinite(c.v) {
			return fmt.Errorf("non-finite %s %v", c.name, c.v)
		}
		if c.v < 0 {
			return fmt.Errorf("negative %s %v", c.name, c.v)
		}
	}
	if v.Quorum < 0 || v.Quorum > v.Sensors {
		return fmt.Errorf("quorum %d outside [0, %d]", v.Quorum, v.Sensors)
	}
	if v.HoldTicks < 0 {
		return fmt.Errorf("negative hold_ticks %d", v.HoldTicks)
	}
	return nil
}

// BusSegment declares one shared telemetry bus: a named group of fleet
// nodes whose sensors ride the same I2C segment, plus the transport fault
// every member sees simultaneously when the segment degrades.
type BusSegment struct {
	Name string `json:"name"`
	// Nodes are the member node names (explicit-node racks only).
	Nodes []string `json:"nodes"`
	// Faults is the correlated transport fault (stuck / dropout / added
	// lag) applied to every member node's chain — to every replica, when
	// voting is armed. Silicon-side fields (placement, calibration, slew)
	// are per-part properties, not bus properties, and are rejected here.
	Faults *FaultSpec `json:"faults"`
}

// transportOnly reports whether the spec is free of silicon-side stages
// (the requirement for a segment fault).
func (f *FaultSpec) transportOnly() bool {
	return f.PlacementCoeff == 0 && f.CalibSigma == 0 && f.SlewLimitCPerS == 0
}

// validateSegments enforces the bus-segment rules on a fleet block:
// explicit nodes only, known unique members, and a non-inert
// transport-only fault spec per segment.
func (s *Spec) validateSegments() error {
	segs := s.Fleet.Segments
	if len(segs) == 0 {
		return nil
	}
	if s.Fleet.Size > 0 {
		return fmt.Errorf("scenario: fleet segments need explicit nodes (generated racks have no stable node names)")
	}
	known := make(map[string]bool, len(s.Fleet.Nodes))
	for i := range s.Fleet.Nodes {
		known[s.Fleet.Nodes[i].Name] = true
	}
	names := make(map[string]bool, len(segs))
	for i, seg := range segs {
		if seg.Name == "" {
			return fmt.Errorf("scenario: fleet segment %d has no name", i)
		}
		if names[seg.Name] {
			return fmt.Errorf("scenario: duplicate fleet segment name %q", seg.Name)
		}
		names[seg.Name] = true
		if len(seg.Nodes) == 0 {
			return fmt.Errorf("scenario: fleet segment %q has no member nodes", seg.Name)
		}
		members := make(map[string]bool, len(seg.Nodes))
		for _, n := range seg.Nodes {
			if !known[n] {
				return fmt.Errorf("scenario: fleet segment %q names unknown node %q", seg.Name, n)
			}
			if members[n] {
				return fmt.Errorf("scenario: fleet segment %q lists node %q twice", seg.Name, n)
			}
			members[n] = true
		}
		if seg.Faults == nil {
			return fmt.Errorf("scenario: fleet segment %q has no fault spec (a segment exists to fail)", seg.Name)
		}
		if err := seg.Faults.validate(); err != nil {
			return fmt.Errorf("scenario: fleet segment %q faults: %w", seg.Name, err)
		}
		if !seg.Faults.transportOnly() {
			return fmt.Errorf("scenario: fleet segment %q faults carry silicon-side stages (placement/calibration/slew are per-part, not bus, properties)", seg.Name)
		}
	}
	return nil
}

// replicaStream offsets the SubSeed stream ids used to decorrelate
// replica chains, keeping them clear of the small stream ids other
// layers derive from the same declared seeds.
const replicaStream int64 = 0x52ed0000

// replicaSeed decorrelates a declared per-stage seed across replicas.
// Replica 0 keeps the declared seed exactly, so the voting stack's first
// chain is bit-identical to the single-chain stack under the same
// FaultSpec — the comparison the campaign dominance claim rests on.
func replicaSeed(seed int64, replica int) int64 {
	if replica == 0 {
		return seed
	}
	return stats.SubSeed(seed, replicaStream+int64(replica))
}

// replicaStages assembles one replica's sensor chain for a unit: silicon
// stages (identical physics across replicas, decorrelated random draws),
// the base chain (noise -> ADC -> transport delay), node-level transport
// faults, then each bus segment's correlated stages in declared order.
// The node-level stuck stage wedges replica 0 only — one failed part —
// while segment-level stages hit every replica: the whole bus degrades.
func replicaStages(cfg sim.Config, f *FaultSpec, segs []*FaultSpec, replica int) ([]sensor.Stage, error) {
	var stages []sensor.Stage
	if f != nil {
		if f.PlacementCoeff > 0 {
			place, err := sensor.NewPlacementOffset(f.PlacementCoeff)
			if err != nil {
				return nil, err
			}
			stages = append(stages, place)
		}
		if f.CalibSigma > 0 {
			calib, err := sensor.NewCalibrationBias(f.CalibSigma, replicaSeed(f.CalibSeed, replica))
			if err != nil {
				return nil, err
			}
			stages = append(stages, calib)
		}
		if f.SlewLimitCPerS > 0 {
			slew, err := sensor.NewSlewLimit(f.SlewLimitCPerS)
			if err != nil {
				return nil, err
			}
			stages = append(stages, slew)
		}
	}
	scfg := cfg.Sensor
	if scfg.NoiseSigma > 0 {
		scfg.NoiseSeed = replicaSeed(scfg.NoiseSeed, replica)
	}
	base, err := sensor.New(scfg)
	if err != nil {
		return nil, err
	}
	stages = append(stages, base)
	if f != nil {
		if f.AddedLagS > 0 {
			lag, err := sensor.NewDelayLine(f.AddedLagS, cfg.Sensor.InitialValue)
			if err != nil {
				return nil, err
			}
			stages = append(stages, lag)
		}
		if f.DropoutRate > 0 {
			drop, err := sensor.NewDropout(f.DropoutRate, replicaSeed(f.DropoutSeed, replica))
			if err != nil {
				return nil, err
			}
			stages = append(stages, drop)
		}
		if f.StuckLen > 0 && replica == 0 {
			stuck, err := sensor.NewStuckAt(f.StuckAt, f.StuckAt+f.StuckLen)
			if err != nil {
				return nil, err
			}
			stages = append(stages, stuck)
		}
	}
	for _, sf := range segs {
		if sf.AddedLagS > 0 {
			lag, err := sensor.NewDelayLine(sf.AddedLagS, cfg.Sensor.InitialValue)
			if err != nil {
				return nil, err
			}
			stages = append(stages, lag)
		}
		if sf.DropoutRate > 0 {
			drop, err := sensor.NewDropout(sf.DropoutRate, replicaSeed(sf.DropoutSeed, replica))
			if err != nil {
				return nil, err
			}
			stages = append(stages, drop)
		}
		if sf.StuckLen > 0 {
			stuck, err := sensor.NewStuckAt(sf.StuckAt, sf.StuckAt+sf.StuckLen)
			if err != nil {
				return nil, err
			}
			stages = append(stages, stuck)
		}
	}
	return stages, nil
}

// redundantConfig maps the voting block onto the fusion stage's knobs,
// with the plausibility range taken from the unit's ADC configuration.
func redundantConfig(cfg sim.Config, v *VotingSpec) sensor.RedundantConfig {
	min, max := cfg.Sensor.RangeMin, cfg.Sensor.RangeMax
	if !(max > min) {
		min, max = 0, 255
	}
	return sensor.RedundantConfig{
		RangeMin:     min,
		RangeMax:     max,
		MaxSlewCPerS: v.MaxSlewCPerS,
		OutlierC:     v.OutlierC,
		Quorum:       v.Quorum,
		HoldTicks:    v.HoldTicks,
	}
}

// sensorPipeline builds a unit's full measurement pipeline: the plain
// single chain when voting is off, or v.Sensors replica chains fused by a
// sensor.Redundant voter. The returned *Redundant is non-nil only in the
// voting case; callers hand it to the unit's failSafePolicy via a
// votingHandle.
func sensorPipeline(cfg sim.Config, f *FaultSpec, segs []*FaultSpec, v *VotingSpec) (*sensor.Pipeline, *sensor.Redundant, error) {
	if v == nil {
		stages, err := replicaStages(cfg, f, segs, 0)
		if err != nil {
			return nil, nil, err
		}
		return sensor.NewPipeline(stages...), nil, nil
	}
	chains := make([]sensor.Stage, v.Sensors)
	for j := range chains {
		stages, err := replicaStages(cfg, f, segs, j)
		if err != nil {
			return nil, nil, err
		}
		chains[j] = sensor.NewPipeline(stages...)
	}
	red, err := sensor.NewRedundant(redundantConfig(cfg, v), chains...)
	if err != nil {
		return nil, nil, err
	}
	return sensor.NewPipeline(red), red, nil
}

// votingHandle connects a unit's voter (built by the server factory) to
// its failSafePolicy (built by the policy factory). The fleet engine
// builds servers once per run but rebuilds policies every relaxation
// pass, so the two constructions cannot share a closure — they share
// this per-unit holder instead.
type votingHandle struct{ r *sensor.Redundant }

// failSafePolicy wraps a unit's policy with the redundancy escalation:
// while the voter reports FailSafe, closed-loop output no longer has a
// trustworthy input, so the command degrades to open-loop safe cooling —
// fan at least at the floor, cap released (a wedged sensor must not keep
// the CPU throttled AND the reading is unusable for modulating the fan).
// The hardware throttle (TProtect) remains the independent backstop.
// One-tick staleness is inherent: the engine steps the policy before the
// tick's sample, so Health reflects the previous measurement.
type failSafePolicy struct {
	inner sim.Policy
	h     *votingHandle
	floor units.RPM
}

func (p *failSafePolicy) Name() string { return p.inner.Name() + "+failsafe" }

func (p *failSafePolicy) Step(o sim.Observation) sim.Command {
	cmd := p.inner.Step(o)
	if p.h.r != nil && p.h.r.Health() == sensor.HealthFailSafe {
		if cmd.Fan < p.floor {
			cmd.Fan = p.floor
		}
		cmd.Cap = 1
	}
	return cmd
}

func (p *failSafePolicy) Reset() { p.inner.Reset() }

// fanFloor resolves the fail-safe floor: the declared RPM, or the
// platform's full fan speed.
func fanFloor(cfg sim.Config, v *VotingSpec) units.RPM {
	if v.FanFloorRPM > 0 {
		return v.FanFloorRPM
	}
	return cfg.FanMaxSpeed
}
