package scenario

import "fmt"

// Sweep runs a grid of scenarios with optional store-backed resume: each
// cell is looked up by content hash first, executed only on a miss, and
// persisted as soon as it finishes. Killing a sweep halfway therefore
// loses at most the in-flight cell; the rerun recomputes only what is
// missing (assert with ProbeSimTicks — a fully warm sweep simulates zero
// ticks). Cells execute in spec order, one at a time: the parallelism
// lives inside each cell's engine, which already saturates the cores.

// SweepCell is one grid point's result.
type SweepCell struct {
	// Spec is the cell's scenario.
	Spec Spec
	// Key is the cell's content address (also its store filename).
	Key string
	// Outcome is the cell's result, freshly computed or cached.
	Outcome *Outcome
	// Cached reports whether the outcome was served from the store.
	Cached bool
}

// SweepResult bundles the cells with the cache accounting.
type SweepResult struct {
	Cells  []SweepCell
	Hits   int // cells served from the store
	Misses int // cells actually executed
}

// Sweep executes the specs in order. store may be nil (no caching). On a
// cell failure the cells completed so far are returned with the error, so
// a caller can inspect — and, with a store, has already persisted — the
// finished prefix.
func Sweep(specs []Spec, store *Store) (*SweepResult, error) {
	res := &SweepResult{Cells: make([]SweepCell, 0, len(specs))}
	for i, spec := range specs {
		key, err := Key(spec)
		if err != nil {
			return res, fmt.Errorf("scenario: sweep cell %d: %w", i, err)
		}
		if store != nil {
			if out, ok, err := store.GetKey(key); err != nil {
				return res, fmt.Errorf("scenario: sweep cell %d (%s): %w", i, key, err)
			} else if ok {
				res.Cells = append(res.Cells, SweepCell{Spec: spec, Key: key, Outcome: out, Cached: true})
				res.Hits++
				continue
			}
		}
		out, err := Run(spec)
		if err != nil {
			return res, fmt.Errorf("scenario: sweep cell %d (%s): %w", i, key, err)
		}
		if store != nil {
			if err := store.Put(spec, out); err != nil {
				return res, fmt.Errorf("scenario: sweep cell %d (%s): %w", i, key, err)
			}
		}
		res.Cells = append(res.Cells, SweepCell{Spec: spec, Key: key, Outcome: out})
		res.Misses++
	}
	return res, nil
}
