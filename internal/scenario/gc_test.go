package scenario

import (
	"os"
	"sync"
	"testing"
	"time"
)

// gcFixture populates a store with n cheap cells and staggers their
// mtimes one minute apart (cell i is the i-th oldest), returning the
// keys in age order.
func gcFixture(t *testing.T, st *Store, n int) []string {
	t.Helper()
	keys := make([]string, n)
	base := time.Now().Add(-time.Duration(n+1) * time.Minute)
	for i := 0; i < n; i++ {
		spec := cheapSpec(24 + float64(i))
		out, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		if err := st.Put(spec, out); err != nil {
			t.Fatal(err)
		}
		key, err := Key(spec)
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = key
		mtime := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(st.path(key), mtime, mtime); err != nil {
			t.Fatal(err)
		}
	}
	return keys
}

// TestGCConfigValidate: caps must be non-negative and at least one must
// be set.
func TestGCConfigValidate(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]GCConfig{
		"no caps":         {},
		"negative bytes":  {MaxBytes: -1},
		"negative cells":  {MaxCells: -2},
		"both negative":   {MaxBytes: -1, MaxCells: -1},
		"negative + good": {MaxBytes: -1, MaxCells: 5},
	} {
		if _, err := st.GC(cfg); err == nil {
			t.Errorf("%s: GC accepted %+v", name, cfg)
		}
	}
	if (GCConfig{}).Enabled() {
		t.Error("zero GCConfig reports Enabled")
	}
	if !(GCConfig{MaxCells: 1}).Enabled() || !(GCConfig{MaxBytes: 1}).Enabled() {
		t.Error("capped GCConfig reports disabled")
	}
}

// TestStoreGCMaxCells: eviction removes the oldest cells first and
// reports exactly what it removed.
func TestStoreGCMaxCells(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := gcFixture(t, st, 5)
	res, err := st.GC(GCConfig{MaxCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 3 || res.Remaining != 2 {
		t.Fatalf("evicted %d / remaining %d, want 3 / 2", len(res.Evicted), res.Remaining)
	}
	for i, want := range keys[:3] {
		if res.Evicted[i] != want {
			t.Errorf("eviction order[%d] = %s, want %s (oldest first)", i, res.Evicted[i], want)
		}
	}
	left, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	survivors := map[string]bool{keys[3]: true, keys[4]: true}
	if len(left) != 2 || !survivors[left[0]] || !survivors[left[1]] {
		t.Errorf("survivors = %v, want the two newest cells", left)
	}

	// A second pass under the same cap is a no-op: eviction is
	// deterministic and idempotent.
	res2, err := st.GC(GCConfig{MaxCells: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Evicted) != 0 || res2.Remaining != 2 {
		t.Errorf("idempotence broken: second pass evicted %d", len(res2.Evicted))
	}

	// Evicted cells read back as ordinary misses.
	if _, ok, err := st.GetKey(keys[0]); err != nil || ok {
		t.Errorf("evicted cell: ok=%v err=%v, want clean miss", ok, err)
	}
}

// TestStoreGCMaxBytes: the byte cap evicts oldest-first until the sum
// fits and accounts the freed bytes.
func TestStoreGCMaxBytes(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := gcFixture(t, st, 4)
	infos, err := st.List()
	if err != nil {
		t.Fatal(err)
	}
	size := map[string]int64{}
	var total int64
	for _, info := range infos {
		size[info.Key] = info.Size
		total += info.Size
	}
	// Cap to everything minus one byte: exactly the oldest cell must go.
	res, err := st.GC(GCConfig{MaxBytes: total - 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 1 || res.Evicted[0] != keys[0] {
		t.Fatalf("evicted %v, want exactly the oldest cell %s", res.Evicted, keys[0])
	}
	if res.BytesFreed != size[keys[0]] {
		t.Errorf("freed %d bytes, want %d", res.BytesFreed, size[keys[0]])
	}
	if res.RemainingBytes != total-size[keys[0]] {
		t.Errorf("remaining %d bytes, want %d", res.RemainingBytes, total-size[keys[0]])
	}
}

// TestStoreGCMtimeTieBreak: cells with identical mtimes evict in key
// order, so two stores holding the same cells trim identically.
func TestStoreGCMtimeTieBreak(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := gcFixture(t, st, 4)
	same := time.Now().Add(-time.Hour)
	for _, key := range keys {
		if err := os.Chtimes(st.path(key), same, same); err != nil {
			t.Fatal(err)
		}
	}
	res, err := st.GC(GCConfig{MaxCells: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Evicted) != 3 {
		t.Fatalf("evicted %d, want 3", len(res.Evicted))
	}
	for i := 1; i < len(res.Evicted); i++ {
		if res.Evicted[i-1] >= res.Evicted[i] {
			t.Fatalf("tie-broken eviction not in key order: %v", res.Evicted)
		}
	}
}

// TestStoreConcurrentPutGet: concurrent writers and readers on the same
// key are safe (atomic temp-file + rename) — run under -race, any Get
// sees either a miss or a complete, valid cell.
func TestStoreConcurrentPutGet(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := cheapSpec(25)
	out, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	const workers = 8
	var wg sync.WaitGroup
	errc := make(chan error, workers*2)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if err := st.Put(spec, out); err != nil {
					errc <- err
					return
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				back, ok, err := st.Get(spec)
				if err != nil {
					errc <- err
					return
				}
				if ok && len(back.Units) != len(out.Units) {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	back, ok, err := st.Get(spec)
	if err != nil || !ok {
		t.Fatalf("final Get: ok=%v err=%v", ok, err)
	}
	if len(back.Units) != len(out.Units) {
		t.Error("stored outcome corrupted by concurrent writes")
	}
}

// TestStoreGCWithConcurrentPuts: GC racing ordinary writers neither
// errors nor corrupts surviving cells (run under -race).
func TestStoreGCWithConcurrentPuts(t *testing.T) {
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	specs := make([]Spec, 6)
	outs := make([]*Outcome, len(specs))
	for i := range specs {
		specs[i] = cheapSpec(24 + float64(i))
		out, err := Run(specs[i])
		if err != nil {
			t.Fatal(err)
		}
		outs[i] = out
	}
	var wg sync.WaitGroup
	errc := make(chan error, 4)
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if err := st.Put(specs[(w+i)%len(specs)], outs[(w+i)%len(specs)]); err != nil {
					errc <- err
					return
				}
			}
		}(w)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if _, err := st.GC(GCConfig{MaxCells: 3}); err != nil {
					errc <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
	// Whatever survived must read back valid.
	keys, err := st.Keys()
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range keys {
		if _, ok, err := st.GetKey(key); err != nil || !ok {
			t.Errorf("surviving cell %s unreadable: ok=%v err=%v", key, ok, err)
		}
	}
}
