package scenario

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/sim"
	"repro/internal/workload"
)

// The registry resolves the factory names a Spec carries into executable
// generators, policies and kind runners. Registration happens at package
// init (builtin.go registers everything the repository's experiments
// need); the read paths are lock-cheap and safe for concurrent use.

// WorkloadFactory builds a demand generator from a spec reference. cfg is
// the job's resolved platform configuration (per-tick noise overlays need
// the tick; generators must not read cfg.Ambient — demand is exogenous,
// and the fleet layer rebuilds inlets without rebuilding generators).
type WorkloadFactory func(cfg sim.Config, seed int64, p Params) (workload.Generator, error)

// PolicyFactory builds a DTM policy from a spec reference against the
// job's resolved platform configuration.
type PolicyFactory func(cfg sim.Config, seed int64, p Params) (sim.Policy, error)

// KindRunner executes one scenario kind. The five built-in kinds register
// theirs in runner.go; experiment-specific kinds (e.g. the Fig. 1
// telemetry probe) register from their own packages.
type KindRunner func(s Spec) (*Outcome, error)

// Registration describes one registry entry for listings: the key plus a
// one-line usage hint (parameter names for factories).
type Registration struct {
	Name string
	Doc  string
}

type registry[T any] struct {
	mu      sync.RWMutex
	entries map[string]T
	docs    map[string]string
}

func (r *registry[T]) register(kind, name, doc string, v T) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.entries == nil {
		r.entries = make(map[string]T)
		r.docs = make(map[string]string)
	}
	if _, dup := r.entries[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate %s registration %q", kind, name))
	}
	r.entries[name] = v
	r.docs[name] = doc
}

func (r *registry[T]) lookup(name string) (T, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	v, ok := r.entries[name]
	return v, ok
}

func (r *registry[T]) list() []Registration {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Registration, 0, len(r.entries))
	for name := range r.entries {
		out = append(out, Registration{Name: name, Doc: r.docs[name]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

var (
	workloads registry[WorkloadFactory]
	policies  registry[PolicyFactory]
	kinds     registry[KindRunner]
)

// RegisterWorkload adds a named workload factory. doc is the one-line
// parameter hint shown by listings (e.g. "period, sigma; seeded").
// Duplicate names panic: registration is an init-time programming act.
func RegisterWorkload(name, doc string, f WorkloadFactory) {
	workloads.register("workload", name, doc, f)
}

// RegisterPolicy adds a named policy factory.
func RegisterPolicy(name, doc string, f PolicyFactory) {
	policies.register("policy", name, doc, f)
}

// RegisterKind adds a scenario kind runner. The built-in kinds are
// pre-registered; experiment packages add bespoke kinds (the Fig. 1
// telemetry probe) so every surface routes through Run and the Store.
func RegisterKind(name, doc string, f KindRunner) {
	kinds.register("kind", name, doc, f)
}

// LookupWorkload resolves a workload factory name.
func LookupWorkload(name string) (WorkloadFactory, bool) { return workloads.lookup(name) }

// LookupPolicy resolves a policy factory name.
func LookupPolicy(name string) (PolicyFactory, bool) { return policies.lookup(name) }

// kindRunner resolves a kind runner.
func kindRunner(name string) (KindRunner, bool) { return kinds.lookup(name) }

// Workloads lists the registered workload factories, sorted by name.
func Workloads() []Registration { return workloads.list() }

// Policies lists the registered policy factories, sorted by name.
func Policies() []Registration { return policies.list() }

// KindList lists the registered scenario kinds, sorted by name.
func KindList() []Registration { return kinds.list() }

// Kinds returns just the registered kind names, sorted.
func Kinds() []string {
	regs := kinds.list()
	names := make([]string, len(regs))
	for i, r := range regs {
		names[i] = r.Name
	}
	return names
}

// buildWorkload resolves and invokes a workload reference.
func buildWorkload(ref FactoryRef, cfg sim.Config) (workload.Generator, error) {
	f, ok := LookupWorkload(ref.Name)
	if !ok {
		return nil, fmt.Errorf("scenario: unregistered workload %q", ref.Name)
	}
	gen, err := f(cfg, ref.Seed, ref.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: workload %q: %w", ref.Name, err)
	}
	return gen, nil
}

// buildPolicy resolves and invokes a policy reference.
func buildPolicy(ref FactoryRef, cfg sim.Config) (sim.Policy, error) {
	f, ok := LookupPolicy(ref.Name)
	if !ok {
		return nil, fmt.Errorf("scenario: unregistered policy %q", ref.Name)
	}
	pol, err := f(cfg, ref.Seed, ref.Params)
	if err != nil {
		return nil, fmt.Errorf("scenario: policy %q: %w", ref.Name, err)
	}
	return pol, nil
}
