// Package scenario is the unified experiment surface of the repository:
// one declarative Spec describes any simulation the other layers can run —
// a single closed-loop server, a homogeneous batch, a lockstep cohort, a
// rack with a shared inlet field, or the multicore three-controller
// scenario — and Run executes it on the fastest eligible engine and
// returns one normalized Outcome.
//
// A Spec is plain data: platform configurations are embedded verbatim
// (sim.Config, fleet parameters), while workloads and policies are named
// references into a process-wide registry (see registry.go) with scalar
// parameters and an explicit seed. Plain data buys three things:
//
//   - every experiment entry point (internal/experiments, cmd/experiments,
//     cmd/fansim, the examples) shares one shape instead of growing its own
//     XxxConfig;
//   - a Spec canonicalizes to stable JSON, so its SHA-256 content hash
//     keys a persistent result store (store.go) and Sweep resumes
//     incrementally instead of recomputing finished cells;
//   - new surfaces (a future fleet coordinator, remote execution) plug in
//     by registering a kind runner, not by inventing another API.
//
// The legacy internal/experiments entry points remain as thin adapters
// that build Specs and post-process Outcomes; their results are
// bit-identical to the pre-scenario implementations (asserted by tests).
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/units"
)

// The built-in scenario kinds. Custom kinds (e.g. the Fig. 1 telemetry
// probe) register their own runners via RegisterKind.
const (
	// KindSingle runs exactly one job on the plain engine (sim.Run).
	KindSingle = "single"
	// KindBatch runs the jobs concurrently, auto-selecting the engine:
	// one warm sim.Lockstep instance when every job shares the clock
	// (always true for spec-level Duration), sim.RunBatch otherwise.
	KindBatch = "batch"
	// KindLockstep is KindBatch with the lockstep engine asserted: the
	// run fails instead of falling back when the jobs are heterogeneous.
	KindLockstep = "lockstep"
	// KindFleet runs a rack through fleet.Run (shared inlet field,
	// recirculation fixed point).
	KindFleet = "fleet"
	// KindFleetCoord runs the same rack under the rack-level global
	// coordinator (fleet.RunCoordinated): thermal-aware load placement
	// plus a Table II-style global budget arbitration layered over the
	// warm-lockstep fixed point. It reads the Fleet block like KindFleet;
	// the coordinator's policy knobs travel in Spec.Params (see
	// FleetCoordParams), so they participate in the store identity hash.
	KindFleetCoord = "fleetcoord"
	// KindMulticore runs the three-controller N-core scenario through
	// multicore.Run.
	KindMulticore = "multicore"
	// KindFaultSweep is one cell of a non-ideal-sensing campaign: the spec
	// carries exactly one target stack — a Jobs list (batch engine) or an
	// explicit-node Fleet block (fleet engine; coordinated when
	// Params["coordinated"] is 1) — with at least one enabled FaultSpec.
	// The runner executes the target with recording forced on, folds the
	// per-tick traces into pathology metrics (MetricMaxViolWindow,
	// MetricLatchFrac), and strips the series again unless the spec asks
	// for them, so a cell stays store-light. Fault-free baselines are plain
	// existing-kind specs — their store keys do not change.
	KindFaultSweep = "faultsweep"
)

// Params carries a factory's scalar parameters. Values are float64 —
// integers up to 2^53 survive exactly; seeds, which need all 64 bits,
// travel in FactoryRef.Seed instead.
type Params map[string]float64

// Get returns the parameter or the default when absent.
func (p Params) Get(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Keys returns the parameter names in sorted order.
func (p Params) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FactoryRef names a registered workload or policy factory plus its
// parameters. The referenced factory rebuilds the exact generator or
// policy on every run, so a ref is as deterministic as the code behind it.
type FactoryRef struct {
	// Name is the registry key (see Workloads / Policies for the list).
	Name string `json:"name"`
	// Seed is the factory's random seed, carried as int64 so mixing-hash
	// seeds (stats.SubSeed) keep all 64 bits. Zero for seedless factories.
	Seed int64 `json:"seed,omitempty"`
	// Params are the factory's scalar parameters.
	Params Params `json:"params,omitempty"`
}

// FaultSpec declaratively describes the non-ideal-sensing chain injected
// into a job's or fleet node's sensor path. Two groups of stages compose:
// silicon-side error sources measured by Rotem et al. (placement offset
// growing with instantaneous power, fixed calibration bias, slew-limited
// tracking) applied before the ADC/transport chain, and transport-side
// faults (a stuck interval plus a sustained dropout rate) applied after
// it. The zero value injects nothing; every field participates in the
// store identity hash, so Validate rejects fields that would hash without
// shaping the run (see validate).
type FaultSpec struct {
	// StuckAt / StuckLen wedge the sensor output from StuckAt for
	// StuckLen seconds. StuckLen <= 0 disables the stuck stage.
	StuckAt  units.Seconds `json:"stuck_at,omitempty"`
	StuckLen units.Seconds `json:"stuck_len,omitempty"`
	// DropoutRate is the per-sample probability a reading is lost;
	// DropoutSeed decides which ones. Rate 0 disables the stage.
	DropoutRate float64 `json:"dropout_rate,omitempty"`
	DropoutSeed int64   `json:"dropout_seed,omitempty"`
	// PlacementCoeff makes the sensor read low by Coeff x instantaneous
	// CPU power (degC/W) — the sensor-to-hotspot placement error. 0
	// disables the stage.
	PlacementCoeff float64 `json:"placement_coeff,omitempty"`
	// CalibSigma draws a fixed per-sensor calibration offset from
	// N(0, sigma^2) seeded by CalibSeed (via stats.SubSeed). 0 disables
	// the stage.
	CalibSigma float64 `json:"calib_sigma,omitempty"`
	CalibSeed  int64   `json:"calib_seed,omitempty"`
	// SlewLimitCPerS bounds how fast the reported temperature can move
	// (degC/s); fast transients are under-reported until the reading
	// catches up. 0 disables the stage.
	SlewLimitCPerS float64 `json:"slew_limit_c_per_s,omitempty"`
	// AddedLagS inserts an extra transport delay after the base chain —
	// the retry/arbitration latency of a degraded I2C segment (each extra
	// second is ~2 sensors' worth of bus occupancy under sensor.DefaultBus).
	// 0 disables the stage.
	AddedLagS units.Seconds `json:"added_lag_s,omitempty"`
}

// enabled reports whether the spec injects any fault stage.
func (f *FaultSpec) enabled() bool {
	return f != nil && (f.StuckLen > 0 || f.DropoutRate > 0 ||
		f.PlacementCoeff > 0 || f.CalibSigma > 0 || f.SlewLimitCPerS > 0 ||
		f.AddedLagS > 0)
}

// validate rejects fault blocks that would either simulate garbage
// (out-of-range or non-finite fields) or perturb the content hash without
// shaping the run (inert blocks — the same cell-splitting hazard as a
// populated block a kind ignores). Called on every non-nil FaultSpec.
func (f *FaultSpec) validate() error {
	for _, c := range []struct {
		name string
		v    float64
	}{
		{"stuck_at", float64(f.StuckAt)},
		{"stuck_len", float64(f.StuckLen)},
		{"dropout_rate", f.DropoutRate},
		{"placement_coeff", f.PlacementCoeff},
		{"calib_sigma", f.CalibSigma},
		{"slew_limit_c_per_s", f.SlewLimitCPerS},
		{"added_lag_s", float64(f.AddedLagS)},
	} {
		if !units.IsFinite(c.v) {
			return fmt.Errorf("non-finite %s %v", c.name, c.v)
		}
		if c.v < 0 {
			return fmt.Errorf("negative %s %v", c.name, c.v)
		}
	}
	if f.DropoutRate >= 1 {
		return fmt.Errorf("dropout_rate %v outside [0, 1)", f.DropoutRate)
	}
	if !f.enabled() {
		return fmt.Errorf("inert fault block (no stage enabled; drop the Faults field instead — it would split the store cell)")
	}
	// Per-stage inert fields: set, hashed, but the stage they parameterize
	// is disabled, so two semantically identical scenarios would occupy
	// different store cells.
	if f.StuckAt != 0 && f.StuckLen <= 0 {
		return fmt.Errorf("inert stuck_at %v (stuck_len is 0, the stuck stage is disabled)", f.StuckAt)
	}
	if f.DropoutSeed != 0 && f.DropoutRate == 0 {
		return fmt.Errorf("inert dropout_seed %d (dropout_rate is 0, the dropout stage is disabled)", f.DropoutSeed)
	}
	if f.CalibSeed != 0 && f.CalibSigma == 0 {
		return fmt.Errorf("inert calib_seed %d (calib_sigma is 0, the calibration stage is disabled)", f.CalibSeed)
	}
	return nil
}

// JobSpec is one independent closed-loop run within a single/batch/
// lockstep scenario.
type JobSpec struct {
	// Name labels the job's unit in the Outcome (defaults to the built
	// policy's name).
	Name string `json:"name,omitempty"`
	// Config overrides the spec's Base platform for this job only.
	Config *sim.Config `json:"config,omitempty"`
	// Workload names the demand generator. Required.
	Workload FactoryRef `json:"workload"`
	// Policy names the DTM under test. Required.
	Policy FactoryRef `json:"policy"`
	// WarmStart optionally starts the platform at thermal steady state.
	WarmStart *sim.WarmPoint `json:"warm_start,omitempty"`
	// Faults optionally injects the telemetry fault chain.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FleetNode is one explicit rack position in a fleet scenario.
type FleetNode struct {
	Name string `json:"name"`
	// Aisle is "cold", "mid" or "hot".
	Aisle string `json:"aisle"`
	// Slot is the node's depth along its aisle's airflow path.
	Slot int `json:"slot"`
	// Config overrides the spec's Base platform for this node.
	Config *sim.Config `json:"config,omitempty"`
	// Workload and Policy name the node's generators. Required.
	Workload FactoryRef `json:"workload"`
	Policy   FactoryRef `json:"policy"`
	// WarmStart optionally starts the node at a thermal operating point.
	WarmStart *sim.WarmPoint `json:"warm_start,omitempty"`
	// Faults optionally injects the non-ideal-sensing chain into this
	// node's sensor path. The faulted chain persists across recirculation
	// relaxation passes and coordinator rounds (the warm lockstep resets
	// stage state between passes, so every pass replays the same fault).
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FleetSpec describes a rack scenario: either a generated heterogeneous
// rack (Size > 0, via fleet.NewRack) or an explicit node list.
type FleetSpec struct {
	// Size > 0 generates a fleet.NewRack rack with the given layout
	// pattern and root seed; Nodes must then be empty.
	Size   int      `json:"size,omitempty"`
	Layout []string `json:"layout,omitempty"` // aisle names, cycled
	Seed   int64    `json:"seed,omitempty"`
	// Nodes is the explicit rack population when Size == 0.
	Nodes []FleetNode `json:"nodes,omitempty"`
	// Segments declares shared telemetry buses over explicit nodes: one
	// segment failure spec hits every member node's sensor chain (every
	// replica, when voting is armed) simultaneously. Only meaningful —
	// and only accepted — with an explicit Nodes list.
	Segments []BusSegment `json:"segments,omitempty"`

	// Supply is the CRAC supply temperature; zero means 24 °C (the
	// fleet.Sweep convention).
	Supply units.Celsius `json:"supply,omitempty"`
	// AisleOffsets is added to Supply per aisle position (cold, mid,
	// hot); nil means fleet.DefaultOffsets.
	AisleOffsets *[3]units.Celsius `json:"aisle_offsets,omitempty"`
	// Recirc / RecircPasses / RecircTol / MaxRecircPasses mirror
	// fleet.Config's recirculation controls.
	Recirc          units.KPerW   `json:"recirc,omitempty"`
	RecircPasses    int           `json:"recirc_passes,omitempty"`
	RecircTol       units.Celsius `json:"recirc_tol,omitempty"`
	MaxRecircPasses int           `json:"max_recirc_passes,omitempty"`
}

// MulticoreSpec describes the three-controller N-core scenario.
type MulticoreSpec struct {
	// NCore / CoreRes / LateralRes mirror multicore.Config; zero values
	// take multicore.DefaultConfig defaults (scaled to the Base config).
	NCore      int           `json:"ncore,omitempty"`
	CoreRes    units.KPerW   `json:"core_res,omitempty"`
	LateralRes units.KPerW   `json:"lateral_res,omitempty"`
	Workload   FactoryRef    `json:"workload"`
	RefTemp    units.Celsius `json:"ref_temp,omitempty"`
	Skewed     bool          `json:"skewed,omitempty"`
	Coordinate bool          `json:"coordinate,omitempty"`
}

// Spec is the declarative description of one experiment scenario. It is
// plain data end to end: marshal it, hash it, store it, rebuild the exact
// run from it.
type Spec struct {
	// Kind selects the runner (see the Kind constants and RegisterKind).
	Kind string `json:"kind"`
	// Name labels the scenario in stores and listings (not semantic for
	// execution, but part of the identity hash: two differently named
	// scenarios are different cells).
	Name string `json:"name,omitempty"`
	// Base is the platform configuration shared by jobs/nodes that do not
	// override it; nil means sim.Default().
	Base *sim.Config `json:"base,omitempty"`
	// Duration is the simulated horizon, shared by every job/node.
	Duration units.Seconds `json:"duration,omitempty"`
	// Jobs populate single/batch/lockstep scenarios.
	Jobs []JobSpec `json:"jobs,omitempty"`
	// Fleet populates fleet scenarios.
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Multicore populates multicore scenarios.
	Multicore *MulticoreSpec `json:"multicore,omitempty"`
	// Params parameterizes custom kinds (registered via RegisterKind).
	Params Params `json:"params,omitempty"`
	// Voting arms redundant sensing on every job/node: each sensor chain
	// is replicated into independently seeded copies fused by median
	// voting (sensor.Redundant), and every policy gains the fail-safe
	// fan-floor escalation. Nil runs the ordinary single-chain stack.
	// Semantic — it changes what every unit measures — so it participates
	// in the identity hash; kinds that ignore it reject it (Validate).
	Voting *VotingSpec `json:"voting,omitempty"`
	// Record captures full per-tick series into the Outcome (memory- and
	// store-heavy for long runs); RecordPower captures only the
	// "total_power" series. Both are semantic: they change the Outcome's
	// content, so they participate in the identity hash.
	Record      bool `json:"record,omitempty"`
	RecordPower bool `json:"record_power,omitempty"`

	// Workers caps engine concurrency (0 = GOMAXPROCS). Results are
	// bit-identical at any value, so Workers is an execution knob, not
	// part of the scenario's identity: it is excluded from JSON and from
	// the content hash.
	Workers int `json:"-"`
}

// base returns the effective shared platform configuration.
func (s *Spec) base() sim.Config {
	if s.Base != nil {
		return *s.Base
	}
	return sim.Default()
}

// Validate reports the first structural problem, or nil. Factory names
// are resolved (but not invoked) so a typo fails before any simulation.
func (s *Spec) Validate() error {
	if _, ok := kindRunner(s.Kind); !ok {
		return fmt.Errorf("scenario: unknown kind %q (registered: %v)", s.Kind, Kinds())
	}
	// A populated block the kind never reads would still perturb the
	// content hash — two semantically identical scenarios would occupy
	// different store cells — so inert blocks are errors, not noise.
	switch s.Kind {
	case KindSingle, KindBatch, KindLockstep:
		if s.Fleet != nil || s.Multicore != nil || len(s.Params) > 0 {
			return fmt.Errorf("scenario: %s spec carries blocks its kind ignores (fleet/multicore/params)", s.Kind)
		}
	case KindFleet:
		if len(s.Jobs) > 0 || s.Multicore != nil || len(s.Params) > 0 {
			return fmt.Errorf("scenario: fleet spec carries blocks its kind ignores (jobs/multicore/params)")
		}
	case KindFleetCoord:
		if len(s.Jobs) > 0 || s.Multicore != nil {
			return fmt.Errorf("scenario: fleetcoord spec carries blocks its kind ignores (jobs/multicore)")
		}
		// Params hold the coordinator knobs — but only those: an unknown
		// key would be inert yet still split the store cell. "rounds" is
		// consumed as an integer, so a fractional value would be another
		// cell-splitter (truncated at run time, distinct in the hash).
		for _, k := range s.Params.Keys() {
			if !fleetCoordParams[k] {
				return fmt.Errorf("scenario: fleetcoord spec has unknown coordinator param %q (known: %v)", k, FleetCoordParams())
			}
		}
		if rounds, ok := s.Params["rounds"]; ok && rounds != float64(int(rounds)) {
			return fmt.Errorf("scenario: fleetcoord rounds %v is not an integer", rounds)
		}
	case KindMulticore:
		if len(s.Jobs) > 0 || s.Fleet != nil || len(s.Params) > 0 {
			return fmt.Errorf("scenario: multicore spec carries blocks its kind ignores (jobs/fleet/params)")
		}
		// The multicore engine has its own per-core sensor model and never
		// reads Voting — an armed block would split the store cell without
		// shaping the run (same rule as the inert cross-kind blocks above).
		if s.Voting != nil {
			return fmt.Errorf("scenario: multicore spec carries a voting block its kind ignores")
		}
	case KindFaultSweep:
		if s.Multicore != nil {
			return fmt.Errorf("scenario: faultsweep spec carries a multicore block")
		}
		if err := s.validateFaultSweepParams(); err != nil {
			return err
		}
	}
	if s.Voting != nil {
		if err := s.Voting.validate(); err != nil {
			return fmt.Errorf("scenario: voting: %w", err)
		}
	}
	switch s.Kind {
	case KindSingle, KindBatch, KindLockstep:
		if len(s.Jobs) == 0 {
			return fmt.Errorf("scenario: %s spec has no jobs", s.Kind)
		}
		if s.Kind == KindSingle && len(s.Jobs) != 1 {
			return fmt.Errorf("scenario: single spec has %d jobs", len(s.Jobs))
		}
		if s.Duration <= 0 {
			return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
		}
		if err := s.validateJobList(); err != nil {
			return err
		}
	case KindFleet, KindFleetCoord:
		if s.Fleet == nil {
			return fmt.Errorf("scenario: %s spec missing Fleet block", s.Kind)
		}
		if s.Duration <= 0 {
			return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
		}
		if err := s.validateFleetBlock(); err != nil {
			return err
		}
	case KindFaultSweep:
		if (len(s.Jobs) > 0) == (s.Fleet != nil) {
			return fmt.Errorf("scenario: faultsweep spec needs exactly one target block (jobs or fleet)")
		}
		if s.Duration <= 0 {
			return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
		}
		if len(s.Jobs) > 0 {
			if err := s.validateJobList(); err != nil {
				return err
			}
			ok := false
			for i := range s.Jobs {
				ok = ok || s.Jobs[i].Faults.enabled()
			}
			if !ok {
				return fmt.Errorf("scenario: faultsweep spec has no faulted job (fault-free cells are plain %s specs)", KindBatch)
			}
		} else {
			if s.Fleet.Size > 0 {
				return fmt.Errorf("scenario: faultsweep fleet target needs explicit nodes (generated racks cannot carry per-node faults)")
			}
			if err := s.validateFleetBlock(); err != nil {
				return err
			}
			ok := len(s.Fleet.Segments) > 0
			for i := range s.Fleet.Nodes {
				ok = ok || s.Fleet.Nodes[i].Faults.enabled()
			}
			if !ok {
				return fmt.Errorf("scenario: faultsweep spec has no faulted node or segment (fault-free cells are plain %s specs)", KindFleet)
			}
		}
	case KindMulticore:
		if s.Multicore == nil {
			return fmt.Errorf("scenario: multicore spec missing Multicore block")
		}
		if s.Duration <= 0 {
			return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
		}
		if err := checkRef(s.Multicore.Workload, LookupWorkload); err != nil {
			return fmt.Errorf("scenario: multicore workload: %w", err)
		}
	}
	return nil
}

// validateJobList runs the per-job structural checks shared by the sim
// kinds and the faultsweep target form.
func (s *Spec) validateJobList() error {
	for i, j := range s.Jobs {
		if err := checkRef(j.Workload, LookupWorkload); err != nil {
			return fmt.Errorf("scenario: job %d (%s) workload: %w", i, j.Name, err)
		}
		if err := checkRef(j.Policy, LookupPolicy); err != nil {
			return fmt.Errorf("scenario: job %d (%s) policy: %w", i, j.Name, err)
		}
		if j.Faults != nil {
			if err := j.Faults.validate(); err != nil {
				return fmt.Errorf("scenario: job %d (%s) faults: %w", i, j.Name, err)
			}
		}
	}
	return nil
}

// validateFleetBlock runs the fleet-block structural checks shared by the
// fleet kinds and the faultsweep target form.
func (s *Spec) validateFleetBlock() error {
	if s.Fleet.Size > 0 && len(s.Fleet.Nodes) > 0 {
		return fmt.Errorf("scenario: fleet spec sets both Size and Nodes")
	}
	if s.Fleet.Size == 0 && len(s.Fleet.Nodes) == 0 {
		return fmt.Errorf("scenario: fleet spec has neither Size nor Nodes")
	}
	for i, n := range s.Fleet.Nodes {
		if _, err := parseAisle(n.Aisle); err != nil {
			return fmt.Errorf("scenario: fleet node %d (%s): %w", i, n.Name, err)
		}
		if err := checkRef(n.Workload, LookupWorkload); err != nil {
			return fmt.Errorf("scenario: fleet node %d (%s) workload: %w", i, n.Name, err)
		}
		if err := checkRef(n.Policy, LookupPolicy); err != nil {
			return fmt.Errorf("scenario: fleet node %d (%s) policy: %w", i, n.Name, err)
		}
		if n.Faults != nil {
			if err := n.Faults.validate(); err != nil {
				return fmt.Errorf("scenario: fleet node %d (%s) faults: %w", i, n.Name, err)
			}
		}
	}
	for _, a := range s.Fleet.Layout {
		if _, err := parseAisle(a); err != nil {
			return fmt.Errorf("scenario: fleet layout: %w", err)
		}
	}
	if err := s.validateSegments(); err != nil {
		return err
	}
	return nil
}

// validateFaultSweepParams enforces the closed faultsweep knob set:
// "coordinated" (exactly 1; omit it for uncoordinated targets — 0 would
// split the store cell without changing the run) selects the coordinator
// engine and unlocks the fleetcoord knobs, which are meaningless — hence
// rejected — for job targets and uncoordinated racks.
func (s *Spec) validateFaultSweepParams() error {
	coordinated := false
	if v, ok := s.Params["coordinated"]; ok {
		if v != 1 {
			return fmt.Errorf("scenario: faultsweep coordinated = %v (must be 1; omit the key for an uncoordinated target)", v)
		}
		coordinated = true
		if s.Fleet == nil {
			return fmt.Errorf("scenario: coordinated faultsweep needs a fleet target")
		}
	}
	for _, k := range s.Params.Keys() {
		if k == "coordinated" {
			continue
		}
		if !fleetCoordParams[k] {
			return fmt.Errorf("scenario: faultsweep spec has unknown param %q (known: coordinated + %v)", k, FleetCoordParams())
		}
		if !coordinated {
			return fmt.Errorf("scenario: faultsweep param %q needs coordinated = 1 (inert otherwise, and it would split the store cell)", k)
		}
	}
	if rounds, ok := s.Params["rounds"]; ok && rounds != float64(int(rounds)) {
		return fmt.Errorf("scenario: faultsweep rounds %v is not an integer", rounds)
	}
	return nil
}

// checkRef resolves a factory reference against a lookup, without
// invoking the factory.
func checkRef[T any](ref FactoryRef, lookup func(string) (T, bool)) error {
	if ref.Name == "" {
		return fmt.Errorf("empty factory name")
	}
	if _, ok := lookup(ref.Name); !ok {
		return fmt.Errorf("unregistered factory %q", ref.Name)
	}
	return nil
}

// parseAisle maps an aisle name to the fleet position class.
func parseAisle(s string) (fleet.Aisle, error) {
	switch s {
	case "cold":
		return fleet.Cold, nil
	case "mid":
		return fleet.Mid, nil
	case "hot":
		return fleet.Hot, nil
	}
	return 0, fmt.Errorf("unknown aisle %q (want cold|mid|hot)", s)
}

// AisleName returns the canonical spec name for a fleet aisle.
func AisleName(a fleet.Aisle) string { return a.String() }

// fleetCoordParams is the closed set of coordinator policy knobs a
// fleetcoord spec may carry in Params. Every knob is semantic (it shapes
// the run), so all of them participate in the store identity hash; zero
// or absent values select fleet.CoordinatorConfig's defaults.
var fleetCoordParams = map[string]bool{
	"power_budget_w": true, // global rack power budget (W); 0 = off
	"migration_gain": true, // share moved per round at the spread extreme
	"max_share":      true, // per-node demand share ceiling
	"min_share":      true, // per-node demand share floor
	"peak_target":    true, // scaled-peak demand bound for receivers
	"rounds":         true, // coordination rounds after the baseline
	"cap_floor":      true, // utilization floor the arbitration guarantees
	"fan_trim":       true, // fan ceiling margin for savings-class nodes
}

// FleetCoordParams returns the recognized fleetcoord knob names, sorted.
func FleetCoordParams() []string {
	names := make([]string, 0, len(fleetCoordParams))
	for k := range fleetCoordParams {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
