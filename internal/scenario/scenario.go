// Package scenario is the unified experiment surface of the repository:
// one declarative Spec describes any simulation the other layers can run —
// a single closed-loop server, a homogeneous batch, a lockstep cohort, a
// rack with a shared inlet field, or the multicore three-controller
// scenario — and Run executes it on the fastest eligible engine and
// returns one normalized Outcome.
//
// A Spec is plain data: platform configurations are embedded verbatim
// (sim.Config, fleet parameters), while workloads and policies are named
// references into a process-wide registry (see registry.go) with scalar
// parameters and an explicit seed. Plain data buys three things:
//
//   - every experiment entry point (internal/experiments, cmd/experiments,
//     cmd/fansim, the examples) shares one shape instead of growing its own
//     XxxConfig;
//   - a Spec canonicalizes to stable JSON, so its SHA-256 content hash
//     keys a persistent result store (store.go) and Sweep resumes
//     incrementally instead of recomputing finished cells;
//   - new surfaces (a future fleet coordinator, remote execution) plug in
//     by registering a kind runner, not by inventing another API.
//
// The legacy internal/experiments entry points remain as thin adapters
// that build Specs and post-process Outcomes; their results are
// bit-identical to the pre-scenario implementations (asserted by tests).
package scenario

import (
	"fmt"
	"sort"

	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/units"
)

// The built-in scenario kinds. Custom kinds (e.g. the Fig. 1 telemetry
// probe) register their own runners via RegisterKind.
const (
	// KindSingle runs exactly one job on the plain engine (sim.Run).
	KindSingle = "single"
	// KindBatch runs the jobs concurrently, auto-selecting the engine:
	// one warm sim.Lockstep instance when every job shares the clock
	// (always true for spec-level Duration), sim.RunBatch otherwise.
	KindBatch = "batch"
	// KindLockstep is KindBatch with the lockstep engine asserted: the
	// run fails instead of falling back when the jobs are heterogeneous.
	KindLockstep = "lockstep"
	// KindFleet runs a rack through fleet.Run (shared inlet field,
	// recirculation fixed point).
	KindFleet = "fleet"
	// KindFleetCoord runs the same rack under the rack-level global
	// coordinator (fleet.RunCoordinated): thermal-aware load placement
	// plus a Table II-style global budget arbitration layered over the
	// warm-lockstep fixed point. It reads the Fleet block like KindFleet;
	// the coordinator's policy knobs travel in Spec.Params (see
	// FleetCoordParams), so they participate in the store identity hash.
	KindFleetCoord = "fleetcoord"
	// KindMulticore runs the three-controller N-core scenario through
	// multicore.Run.
	KindMulticore = "multicore"
)

// Params carries a factory's scalar parameters. Values are float64 —
// integers up to 2^53 survive exactly; seeds, which need all 64 bits,
// travel in FactoryRef.Seed instead.
type Params map[string]float64

// Get returns the parameter or the default when absent.
func (p Params) Get(key string, def float64) float64 {
	if v, ok := p[key]; ok {
		return v
	}
	return def
}

// Keys returns the parameter names in sorted order.
func (p Params) Keys() []string {
	keys := make([]string, 0, len(p))
	for k := range p {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// FactoryRef names a registered workload or policy factory plus its
// parameters. The referenced factory rebuilds the exact generator or
// policy on every run, so a ref is as deterministic as the code behind it.
type FactoryRef struct {
	// Name is the registry key (see Workloads / Policies for the list).
	Name string `json:"name"`
	// Seed is the factory's random seed, carried as int64 so mixing-hash
	// seeds (stats.SubSeed) keep all 64 bits. Zero for seedless factories.
	Seed int64 `json:"seed,omitempty"`
	// Params are the factory's scalar parameters.
	Params Params `json:"params,omitempty"`
}

// FaultSpec declaratively describes the telemetry fault chain injected on
// the firmware side of a job's sensor path: a stuck interval plus a
// sustained dropout rate (the internal/experiments robustness scenario).
// The zero value injects nothing.
type FaultSpec struct {
	// StuckAt / StuckLen wedge the sensor output from StuckAt for
	// StuckLen seconds. StuckLen <= 0 disables the stuck stage.
	StuckAt  units.Seconds `json:"stuck_at,omitempty"`
	StuckLen units.Seconds `json:"stuck_len,omitempty"`
	// DropoutRate is the per-sample probability a reading is lost;
	// DropoutSeed decides which ones. Rate 0 disables the stage.
	DropoutRate float64 `json:"dropout_rate,omitempty"`
	DropoutSeed int64   `json:"dropout_seed,omitempty"`
}

// enabled reports whether the spec injects any fault stage.
func (f *FaultSpec) enabled() bool {
	return f != nil && (f.StuckLen > 0 || f.DropoutRate > 0)
}

// JobSpec is one independent closed-loop run within a single/batch/
// lockstep scenario.
type JobSpec struct {
	// Name labels the job's unit in the Outcome (defaults to the built
	// policy's name).
	Name string `json:"name,omitempty"`
	// Config overrides the spec's Base platform for this job only.
	Config *sim.Config `json:"config,omitempty"`
	// Workload names the demand generator. Required.
	Workload FactoryRef `json:"workload"`
	// Policy names the DTM under test. Required.
	Policy FactoryRef `json:"policy"`
	// WarmStart optionally starts the platform at thermal steady state.
	WarmStart *sim.WarmPoint `json:"warm_start,omitempty"`
	// Faults optionally injects the telemetry fault chain.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FleetNode is one explicit rack position in a fleet scenario.
type FleetNode struct {
	Name string `json:"name"`
	// Aisle is "cold", "mid" or "hot".
	Aisle string `json:"aisle"`
	// Slot is the node's depth along its aisle's airflow path.
	Slot int `json:"slot"`
	// Config overrides the spec's Base platform for this node.
	Config *sim.Config `json:"config,omitempty"`
	// Workload and Policy name the node's generators. Required.
	Workload FactoryRef `json:"workload"`
	Policy   FactoryRef `json:"policy"`
	// WarmStart optionally starts the node at a thermal operating point.
	WarmStart *sim.WarmPoint `json:"warm_start,omitempty"`
}

// FleetSpec describes a rack scenario: either a generated heterogeneous
// rack (Size > 0, via fleet.NewRack) or an explicit node list.
type FleetSpec struct {
	// Size > 0 generates a fleet.NewRack rack with the given layout
	// pattern and root seed; Nodes must then be empty.
	Size   int      `json:"size,omitempty"`
	Layout []string `json:"layout,omitempty"` // aisle names, cycled
	Seed   int64    `json:"seed,omitempty"`
	// Nodes is the explicit rack population when Size == 0.
	Nodes []FleetNode `json:"nodes,omitempty"`

	// Supply is the CRAC supply temperature; zero means 24 °C (the
	// fleet.Sweep convention).
	Supply units.Celsius `json:"supply,omitempty"`
	// AisleOffsets is added to Supply per aisle position (cold, mid,
	// hot); nil means fleet.DefaultOffsets.
	AisleOffsets *[3]units.Celsius `json:"aisle_offsets,omitempty"`
	// Recirc / RecircPasses / RecircTol / MaxRecircPasses mirror
	// fleet.Config's recirculation controls.
	Recirc          units.KPerW   `json:"recirc,omitempty"`
	RecircPasses    int           `json:"recirc_passes,omitempty"`
	RecircTol       units.Celsius `json:"recirc_tol,omitempty"`
	MaxRecircPasses int           `json:"max_recirc_passes,omitempty"`
}

// MulticoreSpec describes the three-controller N-core scenario.
type MulticoreSpec struct {
	// NCore / CoreRes / LateralRes mirror multicore.Config; zero values
	// take multicore.DefaultConfig defaults (scaled to the Base config).
	NCore      int           `json:"ncore,omitempty"`
	CoreRes    units.KPerW   `json:"core_res,omitempty"`
	LateralRes units.KPerW   `json:"lateral_res,omitempty"`
	Workload   FactoryRef    `json:"workload"`
	RefTemp    units.Celsius `json:"ref_temp,omitempty"`
	Skewed     bool          `json:"skewed,omitempty"`
	Coordinate bool          `json:"coordinate,omitempty"`
}

// Spec is the declarative description of one experiment scenario. It is
// plain data end to end: marshal it, hash it, store it, rebuild the exact
// run from it.
type Spec struct {
	// Kind selects the runner (see the Kind constants and RegisterKind).
	Kind string `json:"kind"`
	// Name labels the scenario in stores and listings (not semantic for
	// execution, but part of the identity hash: two differently named
	// scenarios are different cells).
	Name string `json:"name,omitempty"`
	// Base is the platform configuration shared by jobs/nodes that do not
	// override it; nil means sim.Default().
	Base *sim.Config `json:"base,omitempty"`
	// Duration is the simulated horizon, shared by every job/node.
	Duration units.Seconds `json:"duration,omitempty"`
	// Jobs populate single/batch/lockstep scenarios.
	Jobs []JobSpec `json:"jobs,omitempty"`
	// Fleet populates fleet scenarios.
	Fleet *FleetSpec `json:"fleet,omitempty"`
	// Multicore populates multicore scenarios.
	Multicore *MulticoreSpec `json:"multicore,omitempty"`
	// Params parameterizes custom kinds (registered via RegisterKind).
	Params Params `json:"params,omitempty"`
	// Record captures full per-tick series into the Outcome (memory- and
	// store-heavy for long runs); RecordPower captures only the
	// "total_power" series. Both are semantic: they change the Outcome's
	// content, so they participate in the identity hash.
	Record      bool `json:"record,omitempty"`
	RecordPower bool `json:"record_power,omitempty"`

	// Workers caps engine concurrency (0 = GOMAXPROCS). Results are
	// bit-identical at any value, so Workers is an execution knob, not
	// part of the scenario's identity: it is excluded from JSON and from
	// the content hash.
	Workers int `json:"-"`
}

// base returns the effective shared platform configuration.
func (s *Spec) base() sim.Config {
	if s.Base != nil {
		return *s.Base
	}
	return sim.Default()
}

// Validate reports the first structural problem, or nil. Factory names
// are resolved (but not invoked) so a typo fails before any simulation.
func (s *Spec) Validate() error {
	if _, ok := kindRunner(s.Kind); !ok {
		return fmt.Errorf("scenario: unknown kind %q (registered: %v)", s.Kind, Kinds())
	}
	// A populated block the kind never reads would still perturb the
	// content hash — two semantically identical scenarios would occupy
	// different store cells — so inert blocks are errors, not noise.
	switch s.Kind {
	case KindSingle, KindBatch, KindLockstep:
		if s.Fleet != nil || s.Multicore != nil || len(s.Params) > 0 {
			return fmt.Errorf("scenario: %s spec carries blocks its kind ignores (fleet/multicore/params)", s.Kind)
		}
	case KindFleet:
		if len(s.Jobs) > 0 || s.Multicore != nil || len(s.Params) > 0 {
			return fmt.Errorf("scenario: fleet spec carries blocks its kind ignores (jobs/multicore/params)")
		}
	case KindFleetCoord:
		if len(s.Jobs) > 0 || s.Multicore != nil {
			return fmt.Errorf("scenario: fleetcoord spec carries blocks its kind ignores (jobs/multicore)")
		}
		// Params hold the coordinator knobs — but only those: an unknown
		// key would be inert yet still split the store cell. "rounds" is
		// consumed as an integer, so a fractional value would be another
		// cell-splitter (truncated at run time, distinct in the hash).
		for _, k := range s.Params.Keys() {
			if !fleetCoordParams[k] {
				return fmt.Errorf("scenario: fleetcoord spec has unknown coordinator param %q (known: %v)", k, FleetCoordParams())
			}
		}
		if rounds, ok := s.Params["rounds"]; ok && rounds != float64(int(rounds)) {
			return fmt.Errorf("scenario: fleetcoord rounds %v is not an integer", rounds)
		}
	case KindMulticore:
		if len(s.Jobs) > 0 || s.Fleet != nil || len(s.Params) > 0 {
			return fmt.Errorf("scenario: multicore spec carries blocks its kind ignores (jobs/fleet/params)")
		}
	}
	switch s.Kind {
	case KindSingle, KindBatch, KindLockstep:
		if len(s.Jobs) == 0 {
			return fmt.Errorf("scenario: %s spec has no jobs", s.Kind)
		}
		if s.Kind == KindSingle && len(s.Jobs) != 1 {
			return fmt.Errorf("scenario: single spec has %d jobs", len(s.Jobs))
		}
		if s.Duration <= 0 {
			return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
		}
		for i, j := range s.Jobs {
			if err := checkRef(j.Workload, LookupWorkload); err != nil {
				return fmt.Errorf("scenario: job %d (%s) workload: %w", i, j.Name, err)
			}
			if err := checkRef(j.Policy, LookupPolicy); err != nil {
				return fmt.Errorf("scenario: job %d (%s) policy: %w", i, j.Name, err)
			}
		}
	case KindFleet, KindFleetCoord:
		if s.Fleet == nil {
			return fmt.Errorf("scenario: %s spec missing Fleet block", s.Kind)
		}
		if s.Duration <= 0 {
			return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
		}
		if s.Fleet.Size > 0 && len(s.Fleet.Nodes) > 0 {
			return fmt.Errorf("scenario: fleet spec sets both Size and Nodes")
		}
		if s.Fleet.Size == 0 && len(s.Fleet.Nodes) == 0 {
			return fmt.Errorf("scenario: fleet spec has neither Size nor Nodes")
		}
		for i, n := range s.Fleet.Nodes {
			if _, err := parseAisle(n.Aisle); err != nil {
				return fmt.Errorf("scenario: fleet node %d (%s): %w", i, n.Name, err)
			}
			if err := checkRef(n.Workload, LookupWorkload); err != nil {
				return fmt.Errorf("scenario: fleet node %d (%s) workload: %w", i, n.Name, err)
			}
			if err := checkRef(n.Policy, LookupPolicy); err != nil {
				return fmt.Errorf("scenario: fleet node %d (%s) policy: %w", i, n.Name, err)
			}
		}
		for _, a := range s.Fleet.Layout {
			if _, err := parseAisle(a); err != nil {
				return fmt.Errorf("scenario: fleet layout: %w", err)
			}
		}
	case KindMulticore:
		if s.Multicore == nil {
			return fmt.Errorf("scenario: multicore spec missing Multicore block")
		}
		if s.Duration <= 0 {
			return fmt.Errorf("scenario: non-positive duration %v", s.Duration)
		}
		if err := checkRef(s.Multicore.Workload, LookupWorkload); err != nil {
			return fmt.Errorf("scenario: multicore workload: %w", err)
		}
	}
	return nil
}

// checkRef resolves a factory reference against a lookup, without
// invoking the factory.
func checkRef[T any](ref FactoryRef, lookup func(string) (T, bool)) error {
	if ref.Name == "" {
		return fmt.Errorf("empty factory name")
	}
	if _, ok := lookup(ref.Name); !ok {
		return fmt.Errorf("unregistered factory %q", ref.Name)
	}
	return nil
}

// parseAisle maps an aisle name to the fleet position class.
func parseAisle(s string) (fleet.Aisle, error) {
	switch s {
	case "cold":
		return fleet.Cold, nil
	case "mid":
		return fleet.Mid, nil
	case "hot":
		return fleet.Hot, nil
	}
	return 0, fmt.Errorf("unknown aisle %q (want cold|mid|hot)", s)
}

// AisleName returns the canonical spec name for a fleet aisle.
func AisleName(a fleet.Aisle) string { return a.String() }

// fleetCoordParams is the closed set of coordinator policy knobs a
// fleetcoord spec may carry in Params. Every knob is semantic (it shapes
// the run), so all of them participate in the store identity hash; zero
// or absent values select fleet.CoordinatorConfig's defaults.
var fleetCoordParams = map[string]bool{
	"power_budget_w": true, // global rack power budget (W); 0 = off
	"migration_gain": true, // share moved per round at the spread extreme
	"max_share":      true, // per-node demand share ceiling
	"min_share":      true, // per-node demand share floor
	"peak_target":    true, // scaled-peak demand bound for receivers
	"rounds":         true, // coordination rounds after the baseline
	"cap_floor":      true, // utilization floor the arbitration guarantees
	"fan_trim":       true, // fan ceiling margin for savings-class nodes
}

// FleetCoordParams returns the recognized fleetcoord knob names, sorted.
func FleetCoordParams() []string {
	names := make([]string, 0, len(fleetCoordParams))
	for k := range fleetCoordParams {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
