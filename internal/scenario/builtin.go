package scenario

import (
	"fmt"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Built-in factory registrations: every workload and policy the
// repository's experiment surfaces use, under stable names. Each factory
// reproduces its pre-scenario construction exactly, so specs that replace
// the old ad-hoc entry points stay bit-identical.

func init() {
	registerBuiltinWorkloads()
	registerBuiltinPolicies()
}

func registerBuiltinWorkloads() {
	RegisterWorkload("constant", "u", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		return workload.Constant{U: units.Utilization(p.Get("u", 0.5))}, nil
	})
	RegisterWorkload("square", "period", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		return workload.PaperSquare(units.Seconds(p.Get("period", 600))), nil
	})
	RegisterWorkload("step", "before, after, at", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		return workload.Step{
			Before: units.Utilization(p.Get("before", 0.1)),
			After:  units.Utilization(p.Get("after", 0.7)),
			Time:   units.Seconds(p.Get("at", 100)),
		}, nil
	})
	RegisterWorkload("noisy-square", "period, sigma; seeded", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		return workload.NewNoisy(
			workload.PaperSquare(units.Seconds(p.Get("period", 600))),
			p.Get("sigma", 0.04), cfg.Tick, seed)
	})
	RegisterWorkload("prbs", "low, high, dwell; seeded", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		return workload.PRBS{
			Low:   units.Utilization(p.Get("low", 0.1)),
			High:  units.Utilization(p.Get("high", 0.7)),
			Dwell: units.Seconds(p.Get("dwell", 60)),
			Seed:  seed,
		}, nil
	})
	RegisterWorkload("markov", "idle_u, busy_u, dwell, p_idle_busy, p_busy_idle; seeded", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		return workload.Markov{
			IdleU:       units.Utilization(p.Get("idle_u", 0.1)),
			BusyU:       units.Utilization(p.Get("busy_u", 0.8)),
			Dwell:       units.Seconds(p.Get("dwell", 30)),
			PIdleToBusy: p.Get("p_idle_busy", 0.2),
			PBusyToIdle: p.Get("p_busy_idle", 0.3),
			Seed:        seed,
		}, nil
	})
	// The batch-node archetype: noisy constant base with periodic
	// full-load spikes (the fleet layer's "batch" role).
	RegisterWorkload("spiky-batch", "u, sigma, first, every, len, level, count; seeded", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		noisy, err := workload.NewNoisy(
			workload.Constant{U: units.Utilization(p.Get("u", 0.65))},
			p.Get("sigma", 0.05), cfg.Tick, seed)
		if err != nil {
			return nil, err
		}
		return workload.NewSpiky(noisy, workload.PeriodicSpikes(
			units.Seconds(p.Get("first", 200)),
			units.Seconds(p.Get("every", 500)),
			units.Seconds(p.Get("len", 30)),
			units.Utilization(p.Get("level", 1.0)),
			int(p.Get("count", 6))))
	})
	// The cmd/fansim "spiky" workload: a noisy square wave with two
	// full-load bursts per period, sized from the horizon.
	RegisterWorkload("spiky-square", "period, sigma, duration; seeded", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		period := p.Get("period", 600)
		duration := p.Get("duration", 3600)
		noisy, err := workload.NewNoisy(
			workload.PaperSquare(units.Seconds(period)), p.Get("sigma", 0.04), cfg.Tick, seed)
		if err != nil {
			return nil, err
		}
		n := int(duration/period) + 1
		spikes := workload.PeriodicSpikes(
			units.Seconds(period/4), units.Seconds(period/2), 25, 1.0, 2*n)
		return workload.NewSpiky(noisy, spikes)
	})
	// The Table III evaluation trace: noisy square wave plus four abrupt
	// full-load bursts per period at fixed phase fractions (two out of
	// each phase), covering any period/duration combination.
	RegisterWorkload("table3", "period, sigma, spike_len, duration; seeded", func(cfg sim.Config, seed int64, p Params) (workload.Generator, error) {
		period := units.Seconds(p.Get("period", 600))
		base := workload.PaperSquare(period)
		noisy, err := workload.NewNoisy(base, p.Get("sigma", 0.04), cfg.Tick, seed)
		if err != nil {
			return nil, err
		}
		spikeLen := units.Seconds(p.Get("spike_len", 0))
		if spikeLen <= 0 {
			return noisy, nil
		}
		duration := units.Seconds(p.Get("duration", 7200))
		var spikes []workload.Spike
		periods := int(float64(duration)/float64(period)) + 1
		offsets := []float64{0.15, 0.30, 0.65, 0.80}
		for q := 0; q < periods; q++ {
			start := units.Seconds(float64(q)) * period
			for _, frac := range offsets {
				spikes = append(spikes, workload.Spike{
					Start:    start + units.Seconds(frac*float64(period)),
					Duration: spikeLen,
					Level:    1.0,
				})
			}
		}
		return workload.NewSpiky(noisy, spikes)
	})
}

func registerBuiltinPolicies() {
	// The five Table III solutions, under the cmd/fansim names. "rcoord"
	// takes the set-point as a parameter (Table III uses 75 °C).
	RegisterPolicy("none", "w/o coordination baseline", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		return core.NewUncoordinated(cfg)
	})
	RegisterPolicy("ecoord", "energy-aware coordination of [6]", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		return core.NewECoordPolicy(cfg)
	})
	RegisterPolicy("rcoord", "rule-based coordination; ref_temp", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		return core.NewRuleCoord(cfg, units.Celsius(p.Get("ref_temp", 75)))
	})
	RegisterPolicy("atref", "R-coord + adaptive set-point", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		return core.NewRuleCoordAdaptiveRef(cfg)
	})
	RegisterPolicy("full", "complete proposal (R-coord+A-Tref+SSfan)", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		return core.NewFullStack(cfg)
	})
	RegisterPolicy("hold", "constant fan speed; fan", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		return sim.HoldPolicy{Fan: units.RPM(p.Get("fan", 4000))}, nil
	})

	// The stability-experiment fan-only policies (Figs. 3 and 4): a bare
	// fan controller with the cap held open.
	RegisterPolicy("pid-fixed", "fixed-gain PID fan loop; region (0|1), ref_temp", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		regions := core.DefaultRegions()
		region := int(p.Get("region", 0))
		if region < 0 || region >= len(regions) {
			return nil, fmt.Errorf("region %d outside gain schedule (%d regions)", region, len(regions))
		}
		r := regions[region]
		pid, err := control.NewPID(control.PIDConfig{
			Gains: r.Gains, RefSpeed: r.RefSpeed,
			RefTemp:  units.Celsius(p.Get("ref_temp", 68)),
			Limits:   control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed},
			SlewFrac: 0.6, SlewFloor: 400,
		})
		if err != nil {
			return nil, err
		}
		fan, err := control.NewQuantGuard(pid, 1)
		if err != nil {
			return nil, err
		}
		name := fmt.Sprintf("pid@%.0frpm", float64(r.RefSpeed))
		return core.NewFanOnlyPolicy(name, fan, core.DefaultFanInterval, cfg)
	})
	RegisterPolicy("adaptive-pid", "gain-scheduled PID fan loop; ref_temp", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		a, err := control.NewAdaptivePID(core.DefaultRegions(),
			units.Celsius(p.Get("ref_temp", 68)),
			control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed})
		if err != nil {
			return nil, err
		}
		a.SetSlewFrac(0.6, 400)
		fan, err := control.NewQuantGuard(a, 1)
		if err != nil {
			return nil, err
		}
		return core.NewFanOnlyPolicy("adaptive-pid", fan, core.DefaultFanInterval, cfg)
	})
	RegisterPolicy("deadzone", "band fan controller; band_lo, band_hi, step", func(cfg sim.Config, seed int64, p Params) (sim.Policy, error) {
		dz, err := control.NewDeadzone(
			units.Celsius(p.Get("band_lo", 74.4)),
			units.Celsius(p.Get("band_hi", 74.6)),
			units.RPM(p.Get("step", 500)),
			control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed})
		if err != nil {
			return nil, err
		}
		return core.NewFanOnlyPolicy("deadzone", dz, core.DefaultFanInterval, cfg)
	})
}
