package scenario

import (
	"fmt"
	"os"
	"sort"
)

// Store eviction. A long-running service treats the store as a cache
// tier, and a cache needs a bounded footprint: GC trims the store to the
// configured caps in a deterministic order — oldest modification time
// first, key as the tiebreaker — so two stores holding the same cells
// with the same timestamps evict identically. Eviction is just cell
// deletion: a victim read again later is an ordinary miss and recomputes.

// GCConfig caps the store footprint. A zero field means "no cap on this
// axis"; at least one cap must be set.
type GCConfig struct {
	// MaxBytes caps the summed size of the cell files.
	MaxBytes int64
	// MaxCells caps the number of cells.
	MaxCells int
}

// validate rejects nonsensical cap combinations.
func (c GCConfig) validate() error {
	if c.MaxBytes < 0 || c.MaxCells < 0 {
		return fmt.Errorf("scenario: negative GC cap (max_bytes=%d, max_cells=%d)", c.MaxBytes, c.MaxCells)
	}
	if c.MaxBytes == 0 && c.MaxCells == 0 {
		return fmt.Errorf("scenario: GC needs at least one cap (max_bytes or max_cells)")
	}
	return nil
}

// Enabled reports whether any cap is set (the zero GCConfig disables GC).
func (c GCConfig) Enabled() bool { return c.MaxBytes > 0 || c.MaxCells > 0 }

// GCResult accounts one GC pass.
type GCResult struct {
	// Evicted lists the removed cell keys in eviction order.
	Evicted []string
	// BytesFreed is the summed size of the evicted cell files.
	BytesFreed int64
	// Remaining / RemainingBytes describe the store after the pass.
	Remaining      int
	RemainingBytes int64
}

// gcCandidate is one cell ranked for eviction.
type gcCandidate struct {
	key   string
	size  int64
	mtime int64 // UnixNano: enough resolution to order same-second writes
}

// GC evicts cells until the store fits the caps, returning what was
// removed. Eviction order is deterministic: oldest modification time
// first, lexicographically smallest key on ties. The walk tolerates a
// concurrently deleted cell (another GC, a manual rm) by skipping it;
// a concurrent Put may land after the snapshot, so a caller that needs
// a hard bound re-runs GC (the scenariod storage module serializes Put
// and GC on one goroutine, which closes that window).
func (st *Store) GC(cfg GCConfig) (GCResult, error) {
	var res GCResult
	if err := cfg.validate(); err != nil {
		return res, err
	}
	keys, err := st.Keys()
	if err != nil {
		return res, err
	}
	cands := make([]gcCandidate, 0, len(keys))
	var total int64
	for _, key := range keys {
		fi, err := os.Stat(st.path(key))
		if os.IsNotExist(err) {
			continue // raced with a concurrent eviction; already gone
		}
		if err != nil {
			return res, fmt.Errorf("scenario: GC stat %s: %w", key, err)
		}
		cands = append(cands, gcCandidate{key: key, size: fi.Size(), mtime: fi.ModTime().UnixNano()})
		total += fi.Size()
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].mtime != cands[j].mtime {
			return cands[i].mtime < cands[j].mtime
		}
		return cands[i].key < cands[j].key
	})
	remaining := len(cands)
	over := func() bool {
		return (cfg.MaxCells > 0 && remaining > cfg.MaxCells) ||
			(cfg.MaxBytes > 0 && total > cfg.MaxBytes)
	}
	for _, c := range cands {
		if !over() {
			break
		}
		if err := os.Remove(st.path(c.key)); err != nil && !os.IsNotExist(err) {
			return res, fmt.Errorf("scenario: GC evicting %s: %w", c.key, err)
		}
		res.Evicted = append(res.Evicted, c.key)
		res.BytesFreed += c.size
		total -= c.size
		remaining--
	}
	res.Remaining = remaining
	res.RemainingBytes = total
	return res, nil
}
