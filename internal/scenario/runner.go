package scenario

import (
	"encoding/json"
	"fmt"
	"sync/atomic"

	"repro/internal/fleet"
	"repro/internal/multicore"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// Run executes a scenario: validate, dispatch to the kind's runner, and
// return the normalized Outcome. Engine selection is the runner's job —
// sim-kind scenarios advance through one warm sim.Lockstep instance when
// every job shares the clock (always true for a spec-level horizon) and
// fall back to sim.RunBatch otherwise; fleet scenarios resolve the shared
// inlet field through fleet.Run; multicore scenarios use multicore.Run.
// Results are bit-identical at any Workers value.
func Run(s Spec) (*Outcome, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	runner, _ := kindRunner(s.Kind)
	out, err := runner(s)
	if err != nil {
		return nil, err
	}
	runsExecuted.Add(1)
	return out, nil
}

// Probe counters: how much simulation this process has actually executed.
// Cache hits served by a Store add nothing, which is what lets tests and
// the CI smoke assert that a warm Sweep performs zero simulation ticks.
var (
	simTicksRun  atomic.Int64
	runsExecuted atomic.Int64
)

// ProbeSimTicks returns the total number of server-ticks simulated by
// scenario runners in this process (every lane of every relaxation pass
// counts).
func ProbeSimTicks() int64 { return simTicksRun.Load() }

// ProbeRuns returns how many scenarios have been executed (not served
// from a store) in this process.
func ProbeRuns() int64 { return runsExecuted.Load() }

// AddSimTicks feeds the tick probe; custom kind runners call it with the
// work they performed.
func AddSimTicks(n int64) { simTicksRun.Add(n) }

func init() {
	RegisterKind(KindSingle, "one closed-loop run (sim.Run)", runSingle)
	RegisterKind(KindBatch, "concurrent jobs, auto engine (lockstep or batch)", runSimBatch)
	RegisterKind(KindLockstep, "concurrent jobs, lockstep engine asserted", runSimBatch)
	RegisterKind(KindFleet, "rack with shared inlet field (fleet.Run)", runFleet)
	RegisterKind(KindFleetCoord, "rack under the global coordinator (fleet.RunCoordinated)", runFleetCoord)
	RegisterKind(KindMulticore, "three-controller N-core run (multicore.Run)", runMulticore)
}

// faultServer builds a platform whose sensor path carries the declarative
// fault chain — silicon-side error sources (placement offset, calibration
// bias, slew limit) feeding the clean base chain (noise -> ADC -> transport
// delay), whose output crosses the transport faults (added lag, dropout,
// stuck) and then any correlated bus-segment stages — replicated and fused
// by a sensor.Redundant voter when the spec arms voting. Both the sim-kind
// serverFactory and the fleet node hook route through it. The returned
// voter (nil unless voting) is published into h for the unit's
// failSafePolicy.
func faultServer(cfg sim.Config, f *FaultSpec, segs []*FaultSpec, v *VotingSpec, h *votingHandle) (*sim.PhysicalServer, error) {
	server, err := sim.NewPhysicalServer(cfg)
	if err != nil {
		return nil, err
	}
	pipe, red, err := sensorPipeline(cfg, f, segs, v)
	if err != nil {
		return nil, err
	}
	if err := server.ReplaceSensor(pipe); err != nil {
		return nil, err
	}
	if h != nil {
		h.r = red
	}
	return server, nil
}

// serverFactory builds the job's platform factory, wiring the declarative
// fault chain and voting array when the spec asks for them.
func serverFactory(cfg sim.Config, f *FaultSpec, v *VotingSpec, h *votingHandle) sim.ServerFactory {
	if !f.enabled() && v == nil {
		return sim.Factory(cfg)
	}
	var spec *FaultSpec
	if f.enabled() {
		c := *f
		spec = &c
	}
	return func() (*sim.PhysicalServer, error) {
		return faultServer(cfg, spec, nil, v, h)
	}
}

// buildSimJobs materializes the spec's jobs for the batch engines. Jobs
// whose (workload ref, platform) pairs are identical share one generator
// instance — generators are read-only during a run, and the sharing lets
// the lockstep engine compile the demand schedule once per distinct trace
// (Table III's five solutions, a Monte Carlo seed's cohort) instead of
// once per job. The returned policies slice lets callers label units with
// the built policies' names.
func (s *Spec) buildSimJobs() ([]sim.Job, []string, error) {
	jobs := make([]sim.Job, len(s.Jobs))
	polNames := make([]string, len(s.Jobs))
	genCache := make(map[string]workload.Generator)
	for i, j := range s.Jobs {
		cfg := s.base()
		if j.Config != nil {
			cfg = *j.Config
		}
		gen, err := sharedWorkload(genCache, j.Workload, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: job %d (%s): %w", i, j.Name, err)
		}
		pol, err := buildPolicy(j.Policy, cfg)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: job %d (%s): %w", i, j.Name, err)
		}
		var h *votingHandle
		if s.Voting != nil {
			h = &votingHandle{}
			pol = &failSafePolicy{inner: pol, h: h, floor: fanFloor(cfg, s.Voting)}
		}
		polNames[i] = pol.Name()
		name := j.Name
		if name == "" {
			name = pol.Name()
		}
		jobs[i] = sim.Job{
			Name:   name,
			Server: serverFactory(cfg, j.Faults, s.Voting, h),
			Config: sim.RunConfig{
				Duration:    s.Duration,
				Workload:    gen,
				Policy:      pol,
				Record:      s.Record,
				RecordPower: s.RecordPower,
				WarmStart:   j.WarmStart,
			},
		}
	}
	return jobs, polNames, nil
}

// sharedWorkload builds (or reuses) the generator for a (ref, platform)
// pair. The cache key is the canonical JSON of both, so only genuinely
// identical constructions alias — the safe direction, since a stale share
// would corrupt determinism while a missed share only costs a rebuild.
func sharedWorkload(cache map[string]workload.Generator, ref FactoryRef, cfg sim.Config) (workload.Generator, error) {
	refJSON, err := json.Marshal(ref)
	if err != nil {
		return nil, err
	}
	cfgJSON, err := json.Marshal(cfg)
	if err != nil {
		return nil, err
	}
	key := string(refJSON) + "|" + string(cfgJSON)
	if gen, ok := cache[key]; ok {
		return gen, nil
	}
	gen, err := buildWorkload(ref, cfg)
	if err != nil {
		return nil, err
	}
	cache[key] = gen
	return gen, nil
}

// simOutcome folds batch results into the normalized shape.
func simOutcome(kind string, jobs []sim.Job, polNames []string, results []*sim.Result) *Outcome {
	out := &Outcome{Kind: kind, Units: make([]Unit, len(results))}
	var ticks int64
	for i, r := range results {
		out.Units[i] = Unit{
			Name:    jobs[i].Name,
			Labels:  map[string]string{"policy": polNames[i]},
			Metrics: simMetricsMap(r.Metrics),
			Series:  FromTraceSet(r.Traces),
		}
		ticks += int64(r.Metrics.Ticks)
	}
	AddSimTicks(ticks)
	return out
}

// runSingle executes a one-job scenario on the plain engine.
func runSingle(s Spec) (*Outcome, error) {
	jobs, polNames, err := s.buildSimJobs()
	if err != nil {
		return nil, err
	}
	server, err := jobs[0].Server()
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(server, jobs[0].Config)
	if err != nil {
		return nil, err
	}
	return simOutcome(s.Kind, jobs, polNames, []*sim.Result{res}), nil
}

// runSimBatch executes a multi-job scenario. KindBatch auto-selects the
// engine through sim.RunLockstep (one warm lockstep instance when the
// jobs share tick and duration — bit-identical to RunBatch — with a
// RunBatch fallback otherwise); KindLockstep asserts lockstep eligibility
// instead of falling back.
func runSimBatch(s Spec) (*Outcome, error) {
	jobs, polNames, err := s.buildSimJobs()
	if err != nil {
		return nil, err
	}
	opts := sim.BatchOptions{Workers: s.Workers}
	var results []*sim.Result
	if s.Kind == KindLockstep {
		ls, err := sim.NewLockstep(jobs, opts)
		if err != nil {
			return nil, err
		}
		results, err = ls.Run()
		if err != nil {
			return nil, err
		}
	} else {
		results, err = sim.RunLockstep(jobs, opts)
		if err != nil {
			return nil, err
		}
	}
	return simOutcome(s.Kind, jobs, polNames, results), nil
}

// fleetConfig materializes the spec's rack as a fleet.Config.
func (s *Spec) fleetConfig() (fleet.Config, error) {
	fs := s.Fleet
	var cfg fleet.Config
	if fs.Size > 0 {
		layout := make([]fleet.Aisle, len(fs.Layout))
		for i, name := range fs.Layout {
			a, err := parseAisle(name)
			if err != nil {
				return fleet.Config{}, err
			}
			layout[i] = a
		}
		rack, err := fleet.NewRack(fs.Size, layout, fs.Seed)
		if err != nil {
			return fleet.Config{}, err
		}
		// NewRack populates nodes with the Table I platform; a declared
		// Base replaces it on every generated node (Base is part of the
		// spec's identity hash, so it must also shape the run).
		if s.Base != nil {
			for i := range rack.Nodes {
				rack.Nodes[i].Config = *s.Base
			}
		}
		cfg = rack
	} else {
		cfg.Nodes = make([]fleet.NodeSpec, len(fs.Nodes))
		for i, n := range fs.Nodes {
			aisle, err := parseAisle(n.Aisle)
			if err != nil {
				return fleet.Config{}, err
			}
			nodeCfg := s.base()
			if n.Config != nil {
				nodeCfg = *n.Config
			}
			wref, pref := n.Workload, n.Policy
			cfg.Nodes[i] = fleet.NodeSpec{
				Name:   n.Name,
				Aisle:  aisle,
				Slot:   n.Slot,
				Config: nodeCfg,
				Workload: func(c sim.Config) (workload.Generator, error) {
					return buildWorkload(wref, c)
				},
				Policy: func(c sim.Config) (sim.Policy, error) {
					return buildPolicy(pref, c)
				},
				WarmStart: n.WarmStart,
			}
		}
		cfg.Supply = 24
		cfg.AisleOffsets = fleet.DefaultOffsets()
	}
	// Fault, segment, and voting wiring. Node-level faults and bus
	// segments exist only on explicit racks (Validate enforces it);
	// voting arms on generated racks too. Each wired node gets its own
	// votingHandle so the per-pass-rebuilt failSafePolicy finds the voter
	// the once-per-run server hook produced.
	var nodeFaults []*FaultSpec
	nodeSegs := make(map[string][]*FaultSpec)
	if fs.Size == 0 {
		nodeFaults = make([]*FaultSpec, len(fs.Nodes))
		for i := range fs.Nodes {
			if fs.Nodes[i].Faults.enabled() {
				c := *fs.Nodes[i].Faults
				nodeFaults[i] = &c
			}
		}
		for si := range fs.Segments {
			c := *fs.Segments[si].Faults
			for _, name := range fs.Segments[si].Nodes {
				nodeSegs[name] = append(nodeSegs[name], &c)
			}
		}
	}
	for i := range cfg.Nodes {
		var f *FaultSpec
		if nodeFaults != nil {
			f = nodeFaults[i]
		}
		segs := nodeSegs[cfg.Nodes[i].Name]
		voting := s.Voting
		if f == nil && len(segs) == 0 && voting == nil {
			continue
		}
		var h *votingHandle
		if voting != nil {
			h = &votingHandle{}
			inner := cfg.Nodes[i].Policy
			cfg.Nodes[i].Policy = func(c sim.Config) (sim.Policy, error) {
				pol, err := inner(c)
				if err != nil {
					return nil, err
				}
				return &failSafePolicy{inner: pol, h: h, floor: fanFloor(c, voting)}, nil
			}
		}
		cfg.Nodes[i].Server = func(c sim.Config) (*sim.PhysicalServer, error) {
			return faultServer(c, f, segs, voting, h)
		}
	}
	if fs.Supply != 0 {
		cfg.Supply = fs.Supply
	}
	if fs.AisleOffsets != nil {
		cfg.AisleOffsets = [fleet.NumAisles]units.Celsius{
			fleet.Cold: fs.AisleOffsets[0],
			fleet.Mid:  fs.AisleOffsets[1],
			fleet.Hot:  fs.AisleOffsets[2],
		}
	}
	cfg.Recirc = fs.Recirc
	cfg.RecircPasses = fs.RecircPasses
	cfg.RecircTol = fs.RecircTol
	cfg.MaxRecircPasses = fs.MaxRecircPasses
	cfg.Duration = s.Duration // Validate guarantees > 0
	cfg.Workers = s.Workers
	cfg.Record = s.Record
	return cfg, nil
}

// The fleet aggregate metric keys.
const (
	MetricPasses         = "passes"
	MetricTotalEnergyJ   = "total_energy_j"
	MetricFanEnergyShare = "fan_energy_share"
	MetricPeakRackPowerW = "peak_rack_power_w"
	MetricMeanRackPowerW = "mean_rack_power_w"
	MetricSlot           = "slot"
	MetricInletC         = "inlet_c"
)

// fleetUnits folds a rack result's per-node views into outcome units.
func fleetUnits(res *fleet.Result) []Unit {
	units := make([]Unit, len(res.Nodes))
	for i, n := range res.Nodes {
		m := simMetricsMap(n.Metrics)
		m[MetricSlot] = float64(n.Slot)
		m[MetricInletC] = float64(n.Inlet)
		units[i] = Unit{
			Name:    n.Name,
			Labels:  map[string]string{"aisle": n.Aisle.String()},
			Metrics: m,
			Series:  FromTraceSet(n.Traces),
		}
	}
	return units
}

// fleetAggregate folds a rack result's rack- and aisle-level metrics into
// the normalized aggregate map.
func fleetAggregate(res *fleet.Result) map[string]float64 {
	agg := map[string]float64{
		MetricPasses:         float64(res.Passes),
		MetricTicks:          float64(res.Ticks),
		MetricViolationFrac:  res.ViolationFrac,
		MetricFanEnergyJ:     float64(res.FanEnergy),
		MetricCPUEnergyJ:     float64(res.CPUEnergy),
		MetricTotalEnergyJ:   float64(res.TotalEnergy),
		MetricFanEnergyShare: res.FanEnergyShare,
		MetricMaxJunctionC:   float64(res.MaxJunction),
		MetricTimeAboveS:     float64(res.TimeAboveLimit),
		MetricPeakRackPowerW: float64(res.PeakRackPower),
		MetricMeanRackPowerW: float64(res.MeanRackPower),
	}
	for a, am := range res.Aisles {
		if am.Nodes == 0 {
			continue
		}
		prefix := "aisle_" + fleet.Aisle(a).String() + "_"
		agg[prefix+"nodes"] = float64(am.Nodes)
		agg[prefix+MetricViolationFrac] = am.ViolationFrac
		agg[prefix+MetricFanEnergyJ] = float64(am.FanEnergy)
		agg[prefix+MetricCPUEnergyJ] = float64(am.CPUEnergy)
		agg[prefix+MetricMaxJunctionC] = float64(am.MaxJunction)
		agg[prefix+"mean_inlet_c"] = float64(am.MeanInlet)
	}
	return agg
}

// runFleet executes a rack scenario through the fleet engine.
func runFleet(s Spec) (*Outcome, error) {
	cfg, err := s.fleetConfig()
	if err != nil {
		return nil, err
	}
	res, err := fleet.Run(cfg)
	if err != nil {
		return nil, err
	}
	out := &Outcome{Kind: s.Kind, Units: fleetUnits(res), Aggregate: fleetAggregate(res)}
	AddSimTicks(int64(res.Ticks) * int64(len(res.Nodes)) * int64(res.Passes))
	return out, nil
}

// The fleetcoord metric keys: the coordinated rack carries the usual
// fleet aggregates, the local (per-node control) baseline rides along
// under the "local_" prefix, and the per-node units expose the winning
// plan (demand share, arbitrated ceilings).
const (
	MetricShare          = "share"
	MetricCapCeil        = "cap_ceil"
	MetricFanCeilRPM     = "fan_ceil_rpm"
	MetricCoordRounds    = "coord_rounds"
	MetricCoordBestRound = "coord_best_round"
	MetricCoordBudgetW   = "coord_budget_w"
	MetricCoordMigrated  = "coord_migrated_share"
	LocalMetricPrefix    = "local_"
)

// coordinatorConfig maps the spec's Params knobs onto the fleet
// coordinator configuration (zero/absent knobs keep the defaults).
func coordinatorConfig(p Params) fleet.CoordinatorConfig {
	return fleet.CoordinatorConfig{
		PowerBudget:   units.Watt(p.Get("power_budget_w", 0)),
		MigrationGain: p.Get("migration_gain", 0),
		MaxShare:      p.Get("max_share", 0),
		MinShare:      p.Get("min_share", 0),
		PeakTarget:    p.Get("peak_target", 0),
		Rounds:        int(p.Get("rounds", 0)),
		CapFloor:      units.Utilization(p.Get("cap_floor", 0)),
		FanTrim:       p.Get("fan_trim", 0),
	}
}

// runFleetCoord executes a rack scenario under the global coordinator and
// reports coordinated-vs-local side by side in one outcome.
func runFleetCoord(s Spec) (*Outcome, error) {
	cfg, err := s.fleetConfig()
	if err != nil {
		return nil, err
	}
	res, err := fleet.RunCoordinated(cfg, coordinatorConfig(s.Params))
	if err != nil {
		return nil, err
	}
	out := &Outcome{Kind: s.Kind, Units: fleetUnits(res.Coordinated)}
	for i := range out.Units {
		out.Units[i].Metrics[MetricShare] = res.Shares[i]
		if res.CapCeils != nil {
			out.Units[i].Metrics[MetricCapCeil] = float64(res.CapCeils[i])
		}
		if res.FanCeils != nil {
			out.Units[i].Metrics[MetricFanCeilRPM] = float64(res.FanCeils[i])
		}
	}
	agg := fleetAggregate(res.Coordinated)
	for k, v := range fleetAggregate(res.Local) {
		agg[LocalMetricPrefix+k] = v
	}
	agg[MetricCoordRounds] = float64(res.Rounds)
	agg[MetricCoordBestRound] = float64(res.BestRound)
	agg[MetricCoordBudgetW] = float64(res.Budget)
	agg[MetricCoordMigrated] = res.MigratedShare
	out.Aggregate = agg
	AddSimTicks(int64(res.Coordinated.Ticks) * int64(len(res.Coordinated.Nodes)) * int64(res.TotalPasses))
	return out, nil
}

// The multicore metric keys.
const (
	MetricMigrations      = "migrations"
	MetricFanAmplitudeRPM = "fan_amplitude_rpm"
	MetricCoreSpreadC     = "core_spread_c"
)

// runMulticore executes the three-controller scenario.
func runMulticore(s Spec) (*Outcome, error) {
	ms := s.Multicore
	mc := multicore.DefaultConfig()
	mc.Base = s.base()
	if ms.NCore > 0 {
		mc.NCore = ms.NCore
	}
	if ms.CoreRes != 0 {
		mc.CoreRes = ms.CoreRes
	} else {
		// Keep the balanced-load equivalence with the single-socket
		// model: N cores in parallel must reproduce DieRes.
		mc.CoreRes = mc.Base.DieRes * units.KPerW(mc.NCore)
	}
	if ms.LateralRes != 0 {
		mc.LateralRes = ms.LateralRes
	}
	gen, err := buildWorkload(ms.Workload, mc.Base)
	if err != nil {
		return nil, err
	}
	res, err := multicore.Run(multicore.RunConfig{
		Config:     mc,
		Duration:   s.Duration,
		Workload:   gen,
		RefTemp:    ms.RefTemp,
		Skewed:     ms.Skewed,
		Coordinate: ms.Coordinate,
		Record:     s.Record,
	})
	if err != nil {
		return nil, err
	}
	name := s.Name
	if name == "" {
		name = "multicore"
	}
	nTicks := int64(float64(s.Duration) / float64(mc.Base.Tick))
	AddSimTicks(nTicks)
	return &Outcome{
		Kind: s.Kind,
		Units: []Unit{{
			Name: name,
			Metrics: map[string]float64{
				MetricTicks:           float64(nTicks),
				MetricViolationFrac:   res.ViolationFrac,
				MetricMigrations:      float64(res.Migrations),
				MetricFanEnergyJ:      float64(res.FanEnergy),
				MetricMaxJunctionC:    float64(res.MaxJunction),
				MetricFanAmplitudeRPM: res.FanAmplitude,
				MetricCoreSpreadC:     res.CoreSpread,
			},
			Series: FromTraceSet(res.Traces),
		}},
	}, nil
}
