package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Error("Mean(nil) != 0")
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if Variance([]float64{5}) != 0 {
		t.Error("Variance of single sample != 0")
	}
}

func TestRMS(t *testing.T) {
	if got := RMS([]float64{3, 4}); !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Errorf("RMS = %v", got)
	}
	if RMS(nil) != 0 {
		t.Error("RMS(nil) != 0")
	}
}

func TestMinMax(t *testing.T) {
	lo, hi, err := MinMax([]float64{3, -1, 7, 2})
	if err != nil || lo != -1 || hi != 7 {
		t.Errorf("MinMax = %v, %v, %v", lo, hi, err)
	}
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, tt := range []struct{ p, want float64 }{
		{0, 1}, {25, 2}, {50, 3}, {75, 4}, {100, 5}, {62.5, 3.5},
	} {
		got, err := Percentile(xs, tt.p)
		if err != nil || !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, %v, want %v", tt.p, got, err, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Error("Percentile(nil) should be ErrEmpty")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101) should fail")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1) should fail")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{5, 1, 3}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{9, 1, 5})
	if err != nil || got != 5 {
		t.Errorf("Median = %v, %v", got, err)
	}
}

func TestAutocorrelationPeriodicSignal(t *testing.T) {
	// Sine with a 40-sample period correlates strongly at lag 40.
	n := 400
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 40)
	}
	if got := Autocorrelation(xs, 0); !almostEqual(got, 1, 1e-12) {
		t.Errorf("r(0) = %v, want 1", got)
	}
	if got := Autocorrelation(xs, 40); got < 0.8 {
		t.Errorf("r(40) = %v, want >0.8", got)
	}
	if got := Autocorrelation(xs, 20); got > -0.5 {
		t.Errorf("r(20) = %v, want strongly negative", got)
	}
}

func TestAutocorrelationEdgeCases(t *testing.T) {
	if Autocorrelation([]float64{1, 1, 1}, 1) != 0 {
		t.Error("constant signal should have r = 0 (no variance)")
	}
	if Autocorrelation([]float64{1, 2}, 5) != 0 {
		t.Error("out-of-range lag should be 0")
	}
	if Autocorrelation([]float64{1, 2}, -1) != 0 {
		t.Error("negative lag should be 0")
	}
}

func TestDominantPeriod(t *testing.T) {
	n := 600
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(2 * math.Pi * float64(i) / 50)
	}
	got := DominantPeriod(xs, 5, 0.5)
	if got < 45 || got > 55 {
		t.Errorf("DominantPeriod = %v, want ~50", got)
	}
	// White-ish aperiodic signal: alternating small values has period 2,
	// but with minLag 3 and high bar no peak qualifies.
	flat := make([]float64, 100)
	for i := range flat {
		flat[i] = float64(i % 2)
	}
	if got := DominantPeriod(flat, 3, 0.99); got != 4 && got != 0 {
		// period-2 harmonics appear at even lags; accept 4 or none
		t.Logf("DominantPeriod(alternating) = %v", got)
	}
	if got := DominantPeriod([]float64{1, 1, 1, 1, 1, 1}, 1, 0.5); got != 0 {
		t.Errorf("constant signal period = %v, want 0", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []float64{0.1, 0.2, 0.55, 0.9, -1, 2}
	counts, err := Histogram(xs, 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("Histogram = %v, want [3 3]", counts)
	}
	if _, err := Histogram(xs, 1, 0, 2); err == nil {
		t.Error("reversed range should fail")
	}
	if _, err := Histogram(xs, 0, 1, 0); err == nil {
		t.Error("zero bins should fail")
	}
}

func TestHistogramTotalProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		counts, err := Histogram(xs, -10, 10, 7)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range counts {
			total += c
		}
		return total == len(xs)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCountAndFractionAbove(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := CountAbove(xs, 2.5); got != 2 {
		t.Errorf("CountAbove = %d", got)
	}
	if got := FractionAbove(xs, 2.5); got != 0.5 {
		t.Errorf("FractionAbove = %v", got)
	}
	if FractionAbove(nil, 0) != 0 {
		t.Error("FractionAbove(nil) != 0")
	}
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRand(43)
	same := true
	a2 := NewRand(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced identical streams")
	}
}

func TestRandNormalMoments(t *testing.T) {
	g := NewRand(7)
	n := 50000
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = g.Normal(5, 2)
	}
	if m := Mean(xs); !almostEqual(m, 5, 0.05) {
		t.Errorf("Normal mean = %v, want ~5", m)
	}
	if s := StdDev(xs); !almostEqual(s, 2, 0.05) {
		t.Errorf("Normal std = %v, want ~2", s)
	}
}

func TestRandNormalNegativeSigmaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Normal(-1) did not panic")
		}
	}()
	NewRand(1).Normal(0, -1)
}

func TestRandExponential(t *testing.T) {
	g := NewRand(11)
	n := 50000
	sum := 0.0
	for i := 0; i < n; i++ {
		v := g.Exponential(3)
		if v < 0 {
			t.Fatal("negative exponential sample")
		}
		sum += v
	}
	if m := sum / float64(n); !almostEqual(m, 3, 0.1) {
		t.Errorf("Exponential mean = %v, want ~3", m)
	}
}

func TestRandExponentialPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exponential(0) did not panic")
		}
	}()
	NewRand(1).Exponential(0)
}
