package stats

import "math"

// mix64 is the splitmix64 finalizer: an invertible avalanche permutation
// of the 64-bit state. Every hash in this file funnels through it so that
// structurally close inputs (adjacent seeds, adjacent tick indices) land
// on statistically unrelated outputs.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Hash64 returns a deterministic 64-bit hash of (seed, k) using the
// splitmix64 finalizer. Workload generators use it for random-access
// determinism: the k-th tick's randomness is a pure function of (seed, k),
// independent of query order, and far cheaper than constructing a
// math/rand source per tick.
func Hash64(seed, k int64) uint64 {
	return mix64(uint64(seed) + uint64(k)*0x9E3779B97F4A7C15)
}

// SubSeed derives the seed of an independent child stream from a parent
// seed and a stream index. Plain additive derivation (seed + i) puts
// sibling streams on consecutive splitmix64 starting points, which is
// exactly the structured-input case a single finalizer pass exists to
// break — and callers that also use consecutive literals as parent seeds
// (fleet nodes, per-core sensors) would stack the two offsets into
// colliding streams. SubSeed instead avalanches the stream index first and
// folds it into the parent by XOR, then avalanches again, so any
// (seed, stream) pair maps to a decorrelated child seed:
//
//	child := stats.SubSeed(parentSeed, int64(i))
//
// The derivation is deterministic, collision-resistant over the index
// ranges simulations use, and safe to nest (sub-seeding a sub-seed).
func SubSeed(seed, stream int64) int64 {
	return int64(mix64(uint64(seed) ^ mix64(uint64(stream)+0x9E3779B97F4A7C15)))
}

// HashUniform returns a deterministic uniform sample in [0, 1) for (seed, k).
func HashUniform(seed, k int64) float64 {
	return float64(Hash64(seed, k)>>11) / (1 << 53)
}

// HashNormal returns a deterministic standard-normal sample for (seed, k)
// via the Box-Muller transform over two decorrelated hash streams.
func HashNormal(seed, k int64) float64 {
	u1 := HashUniform(seed, 2*k)
	u2 := HashUniform(seed^0x632BE59BD9B4E019, 2*k+1)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
