package stats

import "math"

// Hash64 returns a deterministic 64-bit hash of (seed, k) using the
// splitmix64 finalizer. Workload generators use it for random-access
// determinism: the k-th tick's randomness is a pure function of (seed, k),
// independent of query order, and far cheaper than constructing a
// math/rand source per tick.
func Hash64(seed, k int64) uint64 {
	z := uint64(seed) + uint64(k)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// HashUniform returns a deterministic uniform sample in [0, 1) for (seed, k).
func HashUniform(seed, k int64) float64 {
	return float64(Hash64(seed, k)>>11) / (1 << 53)
}

// HashNormal returns a deterministic standard-normal sample for (seed, k)
// via the Box-Muller transform over two decorrelated hash streams.
func HashNormal(seed, k int64) float64 {
	u1 := HashUniform(seed, 2*k)
	u2 := HashUniform(seed^0x632BE59BD9B4E019, 2*k+1)
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}
