package stats

import (
	"math"
	"testing"
)

func sine(n int, period, amp float64) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = amp * math.Sin(2*math.Pi*float64(i)/period)
	}
	return xs
}

func TestFindPeaksSine(t *testing.T) {
	xs := sine(400, 100, 5)
	peaks := FindPeaks(xs, 1)
	if len(peaks) < 6 {
		t.Fatalf("found %d peaks, want >= 6", len(peaks))
	}
	// Peaks must alternate polarity.
	for i := 1; i < len(peaks); i++ {
		if peaks[i].Max == peaks[i-1].Max {
			t.Errorf("peaks %d and %d have same polarity", i-1, i)
		}
	}
	// Spacing of same-polarity peaks approximates the period.
	if sp := PeakSpacing(peaks); math.Abs(sp-100) > 5 {
		t.Errorf("PeakSpacing = %v, want ~100", sp)
	}
	// Amplitude approximates the sine amplitude.
	if amp := PeakAmplitude(peaks); math.Abs(amp-5) > 0.5 {
		t.Errorf("PeakAmplitude = %v, want ~5", amp)
	}
}

func TestFindPeaksIgnoresSmallRipples(t *testing.T) {
	// Ripple of amplitude 0.1 on a flat line must not register with
	// prominence 1.
	xs := sine(300, 20, 0.1)
	if peaks := FindPeaks(xs, 1); len(peaks) != 0 {
		t.Errorf("found %d peaks in sub-prominence ripple", len(peaks))
	}
}

func TestFindPeaksEdgeCases(t *testing.T) {
	if FindPeaks(nil, 1) != nil {
		t.Error("nil input should yield nil")
	}
	if FindPeaks([]float64{1, 2}, 1) != nil {
		t.Error("too-short input should yield nil")
	}
	if FindPeaks(sine(100, 10, 5), 0) != nil {
		t.Error("non-positive prominence should yield nil")
	}
	if peaks := FindPeaks([]float64{3, 3, 3, 3, 3}, 0.5); len(peaks) != 0 {
		t.Errorf("constant signal has %d peaks", len(peaks))
	}
}

func TestFindPeaksMonotone(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i)
	}
	if peaks := FindPeaks(xs, 1); len(peaks) != 0 {
		// A monotone ramp has no committed interior extremum: the running
		// max is never retreated from, and the initial min can produce at
		// most one committed minimum at index 0.
		if len(peaks) > 1 || peaks[0].Index != 0 {
			t.Errorf("monotone ramp produced peaks %+v", peaks)
		}
	}
}

func TestAmplitudeTrendSustainedVsDecaying(t *testing.T) {
	sustained := sine(600, 60, 4)
	peaks := FindPeaks(sustained, 1)
	if tr := AmplitudeTrend(peaks); math.Abs(tr-1) > 0.15 {
		t.Errorf("sustained oscillation trend = %v, want ~1", tr)
	}

	// Exponentially decaying oscillation.
	decaying := make([]float64, 600)
	for i := range decaying {
		decaying[i] = 4 * math.Exp(-float64(i)/150) * math.Sin(2*math.Pi*float64(i)/60)
	}
	dp := FindPeaks(decaying, 0.2)
	if tr := AmplitudeTrend(dp); tr >= 0.8 {
		t.Errorf("decaying oscillation trend = %v, want < 0.8", tr)
	}

	// Growing oscillation.
	growing := make([]float64, 600)
	for i := range growing {
		growing[i] = 0.5 * math.Exp(float64(i)/200) * math.Sin(2*math.Pi*float64(i)/60)
	}
	gp := FindPeaks(growing, 0.2)
	if tr := AmplitudeTrend(gp); tr <= 1.2 {
		t.Errorf("growing oscillation trend = %v, want > 1.2", tr)
	}
}

func TestAmplitudeTrendTooFewPeaks(t *testing.T) {
	if tr := AmplitudeTrend([]Peak{{0, 1, true}, {5, -1, false}}); tr != 0 {
		t.Errorf("trend with 2 peaks = %v, want 0", tr)
	}
}

func TestPeakSpacingTooFew(t *testing.T) {
	if sp := PeakSpacing([]Peak{{0, 1, true}}); sp != 0 {
		t.Errorf("spacing with 1 peak = %v, want 0", sp)
	}
}
