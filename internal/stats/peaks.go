package stats

// Peak is a local extremum of a sampled signal.
type Peak struct {
	Index int     // sample index of the extremum
	Value float64 // signal value at the extremum
	Max   bool    // true for a local maximum, false for a minimum
}

// FindPeaks locates local maxima and minima of xs that rise (or fall) at
// least prominence away from the preceding opposite extremum. It is the
// primitive behind oscillation detection in the tuning package: sustained
// oscillation shows as an alternating max/min sequence with roughly constant
// spacing and amplitude.
//
// The algorithm is a single-pass hysteresis tracker: it alternates between
// searching for a maximum and a minimum, committing an extremum only once
// the signal has retreated from it by prominence. Flat plateaus report
// their first sample.
func FindPeaks(xs []float64, prominence float64) []Peak {
	if len(xs) < 3 || prominence <= 0 {
		return nil
	}
	var peaks []Peak
	// Start undecided: track both a running max and min until the signal
	// has moved prominence away from one of them.
	maxIdx, minIdx := 0, 0
	maxVal, minVal := xs[0], xs[0]
	seekingMax := false
	decided := false
	for i := 1; i < len(xs); i++ {
		x := xs[i]
		if x > maxVal {
			maxVal, maxIdx = x, i
		}
		if x < minVal {
			minVal, minIdx = x, i
		}
		if !decided {
			switch {
			case x <= maxVal-prominence:
				// First committed extremum is a maximum.
				peaks = append(peaks, Peak{Index: maxIdx, Value: maxVal, Max: true})
				decided, seekingMax = true, false
				minVal, minIdx = x, i
			case x >= minVal+prominence:
				peaks = append(peaks, Peak{Index: minIdx, Value: minVal, Max: false})
				decided, seekingMax = true, true
				maxVal, maxIdx = x, i
			}
			continue
		}
		if seekingMax {
			if x <= maxVal-prominence {
				peaks = append(peaks, Peak{Index: maxIdx, Value: maxVal, Max: true})
				seekingMax = false
				minVal, minIdx = x, i
			}
		} else {
			if x >= minVal+prominence {
				peaks = append(peaks, Peak{Index: minIdx, Value: minVal, Max: false})
				seekingMax = true
				maxVal, maxIdx = x, i
			}
		}
	}
	return peaks
}

// PeakSpacing returns the mean spacing in samples between consecutive peaks
// of the same polarity (max-to-max and min-to-min averaged), which estimates
// the oscillation period. It returns 0 when there are not enough peaks.
func PeakSpacing(peaks []Peak) float64 {
	var sum float64
	var n int
	lastMax, lastMin := -1, -1
	for _, p := range peaks {
		if p.Max {
			if lastMax >= 0 {
				sum += float64(p.Index - lastMax)
				n++
			}
			lastMax = p.Index
		} else {
			if lastMin >= 0 {
				sum += float64(p.Index - lastMin)
				n++
			}
			lastMin = p.Index
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// PeakAmplitude returns the mean absolute excursion between consecutive
// opposite-polarity peaks (half the mean peak-to-peak is the oscillation
// amplitude). It returns 0 when there are fewer than two peaks.
func PeakAmplitude(peaks []Peak) float64 {
	var sum float64
	var n int
	for i := 1; i < len(peaks); i++ {
		if peaks[i].Max != peaks[i-1].Max {
			d := peaks[i].Value - peaks[i-1].Value
			if d < 0 {
				d = -d
			}
			sum += d
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n) / 2
}

// AmplitudeTrend returns the ratio of the mean amplitude of the second half
// of the peak sequence to that of the first half. A ratio near 1 indicates
// sustained oscillation; well below 1 indicates decay; above 1 indicates
// growth. It returns 0 when there are fewer than four peaks (trend
// undefined).
func AmplitudeTrend(peaks []Peak) float64 {
	if len(peaks) < 4 {
		return 0
	}
	mid := len(peaks) / 2
	first := PeakAmplitude(peaks[:mid])
	second := PeakAmplitude(peaks[mid:])
	if first == 0 {
		return 0
	}
	return second / first
}
