// Package stats provides the small statistics toolkit used across the
// simulator: descriptive statistics, autocorrelation (for oscillation-period
// estimation), histograms, and a deterministic Gaussian random source.
//
// Everything operates on []float64 and is allocation-conscious; the control
// loops call these helpers every decision period.
package stats

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// ErrEmpty is returned by reducers that are undefined on empty input.
var ErrEmpty = errors.New("stats: empty input")

// Mean returns the arithmetic mean of xs, or 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (denominator n), or 0 for
// fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RMS returns the root-mean-square of xs, or 0 for empty input.
func RMS(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// MinMax returns the smallest and largest elements of xs.
// It returns ErrEmpty on empty input.
func MinMax(xs []float64) (lo, hi float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	lo, hi = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return lo, hi, nil
}

// Percentile returns the p-th percentile (p in [0, 100]) of xs using linear
// interpolation between closest ranks. It returns ErrEmpty on empty input
// and an error for p outside [0, 100]. The input slice is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v outside [0, 100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) { return Percentile(xs, 50) }

// Autocorrelation returns the normalized autocorrelation of xs at the given
// lag: r(lag) = sum((x[i]-m)(x[i+lag]-m)) / sum((x[i]-m)^2). It returns 0
// when the lag is out of range or the signal has no variance. The value at
// lag 0 of a non-constant signal is 1.
func Autocorrelation(xs []float64, lag int) float64 {
	n := len(xs)
	if lag < 0 || lag >= n {
		return 0
	}
	m := Mean(xs)
	var num, den float64
	for i := 0; i < n; i++ {
		d := xs[i] - m
		den += d * d
	}
	if den == 0 {
		return 0
	}
	for i := 0; i+lag < n; i++ {
		num += (xs[i] - m) * (xs[i+lag] - m)
	}
	return num / den
}

// DominantPeriod estimates the period (in samples) of the strongest
// oscillatory component of xs by locating the first local maximum of the
// autocorrelation above minLag. It returns 0 if no peak with correlation of
// at least minCorr exists — i.e. the signal is not convincingly periodic.
func DominantPeriod(xs []float64, minLag int, minCorr float64) int {
	n := len(xs)
	if minLag < 1 {
		minLag = 1
	}
	best, bestLag := 0.0, 0
	prev := Autocorrelation(xs, minLag-1)
	cur := Autocorrelation(xs, minLag)
	for lag := minLag; lag < n/2; lag++ {
		next := Autocorrelation(xs, lag+1)
		if cur >= prev && cur > next && cur > best && cur >= minCorr {
			best, bestLag = cur, lag
		}
		prev, cur = cur, next
	}
	return bestLag
}

// Histogram counts xs into nbins equal-width bins spanning [lo, hi].
// Values outside the range are clamped into the first or last bin.
// It returns an error if nbins < 1 or hi <= lo.
func Histogram(xs []float64, lo, hi float64, nbins int) ([]int, error) {
	if nbins < 1 {
		return nil, fmt.Errorf("stats: nbins %d < 1", nbins)
	}
	if hi <= lo {
		return nil, fmt.Errorf("stats: bad histogram range [%v, %v]", lo, hi)
	}
	counts := make([]int, nbins)
	w := (hi - lo) / float64(nbins)
	for _, x := range xs {
		i := int((x - lo) / w)
		if i < 0 {
			i = 0
		}
		if i >= nbins {
			i = nbins - 1
		}
		counts[i]++
	}
	return counts, nil
}

// CountAbove returns how many elements of xs exceed threshold.
func CountAbove(xs []float64, threshold float64) int {
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return n
}

// FractionAbove returns the fraction of elements of xs exceeding threshold,
// or 0 for empty input.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return float64(CountAbove(xs, threshold)) / float64(len(xs))
}

// Rand is the deterministic random source used by the whole simulator. It
// wraps math/rand with an explicit seed so every experiment is reproducible,
// and adds the Gaussian helper the workload generators need.
type Rand struct {
	r *rand.Rand
}

// NewRand returns a deterministic source seeded with seed.
func NewRand(seed int64) *Rand {
	return &Rand{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform sample in [0, 1).
func (g *Rand) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (g *Rand) Intn(n int) int { return g.r.Intn(n) }

// Normal returns a Gaussian sample with the given mean and standard
// deviation. Negative sigma panics.
func (g *Rand) Normal(mean, sigma float64) float64 {
	if sigma < 0 {
		panic("stats: negative sigma")
	}
	return mean + sigma*g.r.NormFloat64()
}

// Exponential returns an exponentially distributed sample with the given
// mean. It panics if mean <= 0.
func (g *Rand) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic("stats: non-positive exponential mean")
	}
	return g.r.ExpFloat64() * mean
}
