package stats

import (
	"math"
	"testing"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("hash not deterministic")
	}
	if Hash64(1, 2) == Hash64(1, 3) || Hash64(1, 2) == Hash64(2, 2) {
		t.Error("hash collisions on adjacent inputs (suspicious)")
	}
}

func TestHashUniformRange(t *testing.T) {
	for k := int64(0); k < 10000; k++ {
		u := HashUniform(42, k)
		if u < 0 || u >= 1 {
			t.Fatalf("HashUniform out of range: %v", u)
		}
	}
}

func TestHashUniformMoments(t *testing.T) {
	n := int64(100000)
	var sum float64
	for k := int64(0); k < n; k++ {
		sum += HashUniform(7, k)
	}
	if m := sum / float64(n); math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
}

func TestHashNormalMoments(t *testing.T) {
	n := int64(100000)
	var sum, sumSq float64
	for k := int64(0); k < n; k++ {
		x := HashNormal(11, k)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(std-1) > 0.02 {
		t.Errorf("normal std = %v, want ~1", std)
	}
}

func TestHashNormalDeterministic(t *testing.T) {
	if HashNormal(3, 9) != HashNormal(3, 9) {
		t.Fatal("HashNormal not deterministic")
	}
}

func TestSubSeedDeterministicAndDistinct(t *testing.T) {
	if SubSeed(42, 3) != SubSeed(42, 3) {
		t.Fatal("SubSeed not deterministic")
	}
	// Adjacent parents × adjacent streams must not collide: this is the
	// additive-derivation failure mode (seed+1, stream) == (seed, stream+1).
	seen := make(map[int64][2]int64)
	for seed := int64(0); seed < 64; seed++ {
		for stream := int64(0); stream < 64; stream++ {
			child := SubSeed(seed, stream)
			if prev, dup := seen[child]; dup {
				t.Fatalf("SubSeed(%d,%d) collides with SubSeed(%d,%d)", seed, stream, prev[0], prev[1])
			}
			seen[child] = [2]int64{seed, stream}
		}
	}
}

func TestSubSeedStreamsDecorrelated(t *testing.T) {
	// Uniform streams drawn under sibling sub-seeds must be essentially
	// uncorrelated; under plain additive seeds the shared increment keeps
	// them from being independent by construction.
	const n = 20000
	a, b := SubSeed(7, 0), SubSeed(7, 1)
	var sa, sb, sab float64
	for k := int64(0); k < n; k++ {
		ua, ub := HashUniform(a, k), HashUniform(b, k)
		sa += ua
		sb += ub
		sab += ua * ub
	}
	ma, mb := sa/n, sb/n
	cov := sab/n - ma*mb
	if math.Abs(cov) > 0.005 { // |corr| ≲ 0.06 at uniform variance 1/12
		t.Errorf("sibling streams covariance = %v, want ~0", cov)
	}
}
