package stats

import (
	"math"
	"testing"
)

func TestHash64Deterministic(t *testing.T) {
	if Hash64(1, 2) != Hash64(1, 2) {
		t.Fatal("hash not deterministic")
	}
	if Hash64(1, 2) == Hash64(1, 3) || Hash64(1, 2) == Hash64(2, 2) {
		t.Error("hash collisions on adjacent inputs (suspicious)")
	}
}

func TestHashUniformRange(t *testing.T) {
	for k := int64(0); k < 10000; k++ {
		u := HashUniform(42, k)
		if u < 0 || u >= 1 {
			t.Fatalf("HashUniform out of range: %v", u)
		}
	}
}

func TestHashUniformMoments(t *testing.T) {
	n := int64(100000)
	var sum float64
	for k := int64(0); k < n; k++ {
		sum += HashUniform(7, k)
	}
	if m := sum / float64(n); math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
}

func TestHashNormalMoments(t *testing.T) {
	n := int64(100000)
	var sum, sumSq float64
	for k := int64(0); k < n; k++ {
		x := HashNormal(11, k)
		sum += x
		sumSq += x * x
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(std-1) > 0.02 {
		t.Errorf("normal std = %v, want ~1", std)
	}
}

func TestHashNormalDeterministic(t *testing.T) {
	if HashNormal(3, 9) != HashNormal(3, 9) {
		t.Fatal("HashNormal not deterministic")
	}
}
