package sim

import (
	"errors"
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// feedbackPolicy is a stateful closed-loop test policy: it integrates the
// measured temperature error toward a set-point and throttles on
// violations, exercising every Observation field so a lockstep/batch
// divergence anywhere in the loop shows up in the results.
type feedbackPolicy struct {
	ref  units.Celsius
	gain float64
	acc  float64
	cap  units.Utilization
}

func (p *feedbackPolicy) Name() string { return "feedback" }

func (p *feedbackPolicy) Step(obs Observation) Command {
	p.acc += float64(obs.Measured - p.ref)
	fan := units.RPM(3000 + p.gain*p.acc)
	if obs.Violated {
		p.cap -= 0.01
	} else if obs.Delivered >= obs.Demand {
		p.cap += 0.02
	}
	p.cap = units.ClampUtil(p.cap)
	if p.cap < 0.4 {
		p.cap = 0.4
	}
	return Command{Fan: fan, Cap: p.cap}
}

func (p *feedbackPolicy) Reset() { p.acc = 0; p.cap = 1 }

// lockstepJobs builds n same-clock jobs over a realistic workload mix
// (noisy square, Markov bursts, spiky batch, PRBS) with per-job seeds,
// warm starts on the odd lanes and trace recording on a couple of lanes.
func lockstepJobs(t testing.TB, n int) []Job {
	t.Helper()
	cfg := Default()
	cfg.Ambient = 30
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		var gen workload.Generator
		var err error
		switch i % 4 {
		case 0:
			gen, err = workload.NewNoisy(workload.PaperSquare(400), 0.04, cfg.Tick, int64(i+1))
		case 1:
			gen = workload.Markov{IdleU: 0.15, BusyU: 0.85, Dwell: 45,
				PIdleToBusy: 0.25, PBusyToIdle: 0.2, Seed: int64(i + 1)}
		case 2:
			var noisy *workload.Noisy
			noisy, err = workload.NewNoisy(workload.Constant{U: 0.65}, 0.05, cfg.Tick, int64(i+1))
			if err == nil {
				gen, err = workload.NewSpiky(noisy, workload.PeriodicSpikes(100, 300, 30, 1.0, 3))
			}
		default:
			gen = workload.PRBS{Low: 0.2, High: 0.8, Dwell: 90, Seed: int64(i + 1)}
		}
		if err != nil {
			t.Fatal(err)
		}
		rc := RunConfig{
			Duration: 600,
			Workload: gen,
			Policy:   &feedbackPolicy{ref: 70, gain: 15, cap: 1},
		}
		if i%2 == 1 {
			rc.WarmStart = &WarmPoint{Util: 0.2, Fan: 1500}
		}
		if i%5 == 2 {
			rc.Record = true
		} else if i%3 == 1 {
			rc.RecordPower = true
		}
		jobs[i] = Job{Name: fmt.Sprintf("lane-%d", i), Server: Factory(cfg), Config: rc}
	}
	return jobs
}

// TestLockstepMatchesRunBatch: the lockstep runner must reproduce
// RunBatch's results bit for bit — metrics and traces — across batch
// sizes and worker counts.
func TestLockstepMatchesRunBatch(t *testing.T) {
	for _, n := range []int{1, 3, 8} {
		want, err := RunBatch(lockstepJobs(t, n), BatchOptions{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4, 0} {
			got, err := RunLockstep(lockstepJobs(t, n), BatchOptions{Workers: workers})
			if err != nil {
				t.Fatalf("n=%d workers=%d: %v", n, workers, err)
			}
			for i := range want {
				if got[i].Metrics != want[i].Metrics {
					t.Fatalf("n=%d workers=%d lane %d: lockstep metrics %+v != batch %+v",
						n, workers, i, got[i].Metrics, want[i].Metrics)
				}
				if !reflect.DeepEqual(got[i].Traces, want[i].Traces) {
					t.Fatalf("n=%d workers=%d lane %d: lockstep traces differ from batch", n, workers, i)
				}
			}
		}
	}
}

// TestLockstepWarmRerunIdentical: re-stepping a warm instance must
// reproduce its first pass exactly — the property the fleet fixed point
// relies on when it reuses one rack instance across relaxation passes.
func TestLockstepWarmRerunIdentical(t *testing.T) {
	ls, err := NewLockstep(lockstepJobs(t, 5), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	first, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Results alias lockstep-owned storage: snapshot pass one.
	snap := make([]Metrics, len(first))
	for i, r := range first {
		snap[i] = r.Metrics
	}
	for rep := 0; rep < 3; rep++ {
		again, err := ls.Run()
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range again {
			if r.Metrics != snap[i] {
				t.Fatalf("rerun %d lane %d: metrics drifted: %+v != %+v", rep, i, r.Metrics, snap[i])
			}
		}
	}
}

// TestLockstepSetAmbientMatchesRebuild: re-homing a warm lane at a new
// inlet and re-running must equal building the job at that inlet from
// scratch — the fleet relaxation pass in miniature.
func TestLockstepSetAmbientMatchesRebuild(t *testing.T) {
	const n = 4
	ls, err := NewLockstep(lockstepJobs(t, n), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Run(); err != nil {
		t.Fatal(err)
	}
	inlets := []units.Celsius{31, 33.5, 36, 30.25}
	for i, inlet := range inlets {
		if err := ls.SetAmbient(i, inlet); err != nil {
			t.Fatal(err)
		}
		if err := ls.SetPolicy(i, &feedbackPolicy{ref: 70, gain: 15, cap: 1}); err != nil {
			t.Fatal(err)
		}
	}
	got, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}

	jobs := lockstepJobs(t, n)
	for i := range jobs {
		cfg := Default()
		cfg.Ambient = inlets[i]
		jobs[i].Server = Factory(cfg)
	}
	want, err := RunBatch(jobs, BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Metrics != want[i].Metrics {
			t.Fatalf("lane %d: re-homed metrics %+v != rebuilt %+v", i, got[i].Metrics, want[i].Metrics)
		}
	}
}

// TestLockstepSetAmbientRejectsInvalid: an inlet at or above the thermal
// limit must error exactly as server construction would.
func TestLockstepSetAmbientRejectsInvalid(t *testing.T) {
	ls, err := NewLockstep(lockstepJobs(t, 2), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.SetAmbient(0, 95); err == nil {
		t.Fatal("inlet above TLimit accepted")
	}
}

// TestLockstepSharedScheduleDedupe: jobs driven by the same generator
// instance share one precompiled schedule and still match RunBatch.
func TestLockstepSharedScheduleDedupe(t *testing.T) {
	cfg := Default()
	cfg.Ambient = 30
	gen, err := workload.NewNoisy(workload.PaperSquare(400), 0.04, cfg.Tick, 9)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() []Job {
		jobs := make([]Job, 3)
		for i := range jobs {
			jobs[i] = Job{
				Name:   fmt.Sprintf("shared-%d", i),
				Server: Factory(cfg),
				Config: RunConfig{
					Duration: 500,
					Workload: gen, // same instance across all jobs
					Policy:   &feedbackPolicy{ref: 68 + units.Celsius(i), gain: 12, cap: 1},
				},
			}
		}
		return jobs
	}
	want, err := RunBatch(mk(), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLockstep(mk(), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Metrics != want[i].Metrics {
			t.Fatalf("lane %d: shared-generator lockstep differs from batch", i)
		}
	}
}

// TestLockstepHeterogeneousFallsBack: mixed durations or ticks are not
// lockstep-eligible; NewLockstep says so and RunLockstep transparently
// degrades to RunBatch with identical results.
func TestLockstepHeterogeneousFallsBack(t *testing.T) {
	mixed := func() []Job {
		jobs := lockstepJobs(t, 3)
		jobs[2].Config.Duration = 450
		return jobs
	}
	if _, err := NewLockstep(mixed(), BatchOptions{}); !errors.Is(err, ErrHeterogeneous) {
		t.Fatalf("mixed durations: err = %v, want ErrHeterogeneous", err)
	}
	want, err := RunBatch(mixed(), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunLockstep(mixed(), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i].Metrics != want[i].Metrics {
			t.Fatalf("lane %d: fallback results differ from RunBatch", i)
		}
	}

	// Mixed engine ticks (only discoverable after construction).
	ticky := lockstepJobs(t, 2)
	cfg2 := Default()
	cfg2.Tick = 2
	ticky[1].Server = Factory(cfg2)
	if _, err := NewLockstep(ticky, BatchOptions{}); !errors.Is(err, ErrHeterogeneous) {
		t.Fatalf("mixed ticks: err = %v, want ErrHeterogeneous", err)
	}
}

// TestLockstepRejectsSharedPolicy mirrors RunBatch's aliasing guard at
// construction and through SetPolicy.
func TestLockstepRejectsSharedPolicy(t *testing.T) {
	jobs := lockstepJobs(t, 2)
	shared := &feedbackPolicy{ref: 70, gain: 15, cap: 1}
	jobs[0].Config.Policy = shared
	jobs[1].Config.Policy = shared
	var be *BatchError
	if _, err := NewLockstep(jobs, BatchOptions{}); !errors.As(err, &be) {
		t.Fatalf("shared policy accepted: %v", err)
	}

	ls, err := NewLockstep(lockstepJobs(t, 2), BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.SetPolicy(0, ls.lanes[1].policy); err == nil {
		t.Fatal("SetPolicy accepted a policy aliased with another lane")
	}
	if err := ls.SetPolicy(0, nil); err == nil {
		t.Fatal("SetPolicy accepted nil")
	}
}

// TestLockstepConstructionErrors: per-job defects surface as *BatchError
// with the failing index, like RunBatch.
func TestLockstepConstructionErrors(t *testing.T) {
	for name, mutate := range map[string]func([]Job){
		"nil-factory":  func(js []Job) { js[1].Server = nil },
		"nil-workload": func(js []Job) { js[1].Config.Workload = nil },
		"nil-policy":   func(js []Job) { js[1].Config.Policy = nil },
		"bad-duration": func(js []Job) { js[1].Config.Duration = -1 },
	} {
		jobs := lockstepJobs(t, 3)
		mutate(jobs)
		var be *BatchError
		if _, err := NewLockstep(jobs, BatchOptions{}); !errors.As(err, &be) {
			t.Errorf("%s: err = %v, want *BatchError", name, err)
		} else if be.Index != 1 {
			t.Errorf("%s: error blames job %d, want 1", name, be.Index)
		}
	}
}

// TestRunLockstepPartialResultsOnJobError: for per-job defects the
// drop-in entry point degrades to RunBatch and preserves its contract —
// healthy jobs still produce results beside the *BatchError.
func TestRunLockstepPartialResultsOnJobError(t *testing.T) {
	jobs := lockstepJobs(t, 3)
	jobs[1].Config.Duration = -1
	results, err := RunLockstep(jobs, BatchOptions{Workers: 1})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("defective job accepted: %v", err)
	}
	if be.Index != 1 {
		t.Errorf("error blames job %d, want 1", be.Index)
	}
	if len(results) != 3 || results[0] == nil || results[2] == nil {
		t.Error("healthy jobs lost their results on the error path")
	}
}

// TestLockstepEmpty: an empty batch runs to an empty result set.
func TestLockstepEmpty(t *testing.T) {
	ls, err := NewLockstep(nil, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("empty lockstep returned %d results", len(results))
	}
}

// TestLockstepDemandScale: a unit scale is bit-transparent, a fractional
// scale multiplies the effective demand (clamped at full load), and the
// precompiled schedule itself — possibly shared between lanes — is never
// mutated, so scaling one lane cannot leak into another.
func TestLockstepDemandScale(t *testing.T) {
	gen := workload.Constant{U: 0.6}
	mkJobs := func() []Job {
		cfg := Default()
		cfg.Ambient = 30
		jobs := make([]Job, 2)
		for i := range jobs {
			jobs[i] = Job{
				Name:   fmt.Sprintf("n%d", i),
				Server: Factory(cfg),
				Config: RunConfig{
					Duration: 300,
					Workload: gen, // shared generator: one compiled schedule
					Policy:   &feedbackPolicy{ref: 70, gain: 15, cap: 1},
				},
			}
		}
		return jobs
	}

	base, err := RunLockstep(mkJobs(), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	ls, err := NewLockstep(mkJobs(), BatchOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ls.SetDemandScale(0, 1); err != nil {
		t.Fatal(err)
	}
	unit, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range unit {
		if !reflect.DeepEqual(unit[i].Metrics, base[i].Metrics) {
			t.Errorf("lane %d: unit scale changed the run", i)
		}
	}

	// Scale lane 0 down: its mean demand drops by the factor; lane 1,
	// sharing the same compiled schedule, is untouched.
	if err := ls.SetDemandScale(0, 0.5); err != nil {
		t.Fatal(err)
	}
	if got := ls.DemandScale(0); got != 0.5 {
		t.Fatalf("DemandScale = %v", got)
	}
	scaled, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := float64(scaled[0].Metrics.MeanDemand), 0.3; !approxEq(got, want, 1e-12) {
		t.Errorf("scaled lane mean demand %v, want %v", got, want)
	}
	if !reflect.DeepEqual(scaled[1].Metrics, base[1].Metrics) {
		t.Error("scaling lane 0 leaked into lane 1")
	}
	if got := ls.MeanDemand(0); !approxEq(got, 0.6, 1e-12) {
		t.Errorf("MeanDemand reports the scaled schedule: %v", got)
	}

	// Scaling past full load clamps at 1.
	if err := ls.SetDemandScale(0, 2.5); err != nil {
		t.Fatal(err)
	}
	clamped, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := float64(clamped[0].Metrics.MeanDemand); got != 1 {
		t.Errorf("overdriven lane mean demand %v, want clamp at 1", got)
	}

	// Restore to 1: bit-identical to the unscaled run again.
	if err := ls.SetDemandScale(0, 1); err != nil {
		t.Fatal(err)
	}
	back, err := ls.Run()
	if err != nil {
		t.Fatal(err)
	}
	for i := range back {
		if !reflect.DeepEqual(back[i].Metrics, base[i].Metrics) {
			t.Errorf("lane %d: scale restore not bit-transparent", i)
		}
	}

	// Degenerate scales are rejected.
	if err := ls.SetDemandScale(0, -0.1); err == nil {
		t.Error("negative scale accepted")
	}
	if err := ls.SetDemandScale(0, math.Inf(1)); err == nil {
		t.Error("non-finite scale accepted")
	}
}

func approxEq(a, b, tol float64) bool {
	d := a - b
	return d <= tol && -d <= tol
}
