package sim

import (
	"errors"
	"fmt"
	"reflect"
	"runtime"

	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// This file is the lockstep structure-of-arrays batch runner: where
// RunBatch hands each job its own private simulation loop, a Lockstep
// advances N same-shape servers one tick at a time from a single warm
// instance. Construction does all the expensive, pass-invariant work once
// — servers are built, workload generators are precompiled into per-tick
// demand schedules (deduplicated across jobs sharing a generator, e.g. the
// five Table III solutions fed by one trace), and every result, metrics
// accumulator and recorded series is preallocated — so re-stepping the
// batch is allocation-free and skips the per-tick workload evaluation
// entirely. The fleet layer's recirculation fixed point re-runs the same
// rack with updated inlet temperatures every relaxation pass; holding one
// warm Lockstep per rack turns each pass into a pure re-step.
//
// Results are bit-identical to running the same jobs through RunBatch (or
// sequentially): every lane owns its server and policy, performs exactly
// the floating-point operations sim.Run would, in the same order, and the
// tick-major schedule cannot couple lanes. Tests assert DeepEqual against
// RunBatch across batch sizes and worker counts.
//
// Eligibility: all jobs must share one engine tick and one duration, so
// the batch advances on a single clock. NewLockstep reports
// ErrHeterogeneous otherwise; RunLockstep is the drop-in entry point that
// falls back to RunBatch in that case.

// ErrHeterogeneous reports a job set the lockstep runner cannot batch on
// one clock (mixed engine ticks or durations). Callers fall back to
// RunBatch, which has no such constraint.
var ErrHeterogeneous = errors.New("sim: jobs not lockstep-eligible (mixed tick or duration)")

// lane is one server's slot in the lockstep batch.
type lane struct {
	name   string
	server *PhysicalServer
	policy Policy
	warm   *WarmPoint
	demand []units.Utilization // precompiled schedule, one entry per tick
	// scale multiplies the precompiled schedule at step time (results
	// clamped to [0, 1]); 1 leaves the schedule untouched bit for bit. The
	// fleet coordinator migrates divisible workload share between rack
	// nodes by adjusting lane scales between relaxations.
	scale float64

	record      bool
	recordPower bool

	// Reused output state: the result, its metrics, and (lazily built,
	// then retained) the recorded series. Returned results alias these
	// and stay valid until the next Run.
	result   Result
	prev     TickResult
	tsFull   *trace.Set
	tsPower  *trace.Set
	sDemand  *trace.Series
	sDeliv   *trace.Series
	sCap     *trace.Series
	sFanCmd  *trace.Series
	sFanAct  *trace.Series
	sJunc    *trace.Series
	sMeas    *trace.Series
	sPower   *trace.Series
	violated int
	hwThrot  int
	sumJunc  float64
	sumFan   float64
	sumDeliv float64
	sumDem   float64
}

// Lockstep is a warm batch of same-clock simulations. Build one with
// NewLockstep, run it with Run, and re-step it after adjusting per-lane
// ambients or policies (SetAmbient, SetPolicy) — construction work is
// never repeated.
type Lockstep struct {
	tick    units.Seconds
	nTicks  int
	workers int
	lanes   []lane
	results []*Result
}

// NewLockstep builds a warm lockstep batch from the jobs: servers are
// constructed (one per job, via its factory), demand schedules are
// precompiled, and all result storage is preallocated. It returns
// ErrHeterogeneous when the jobs do not share one tick and duration, and a
// *BatchError for per-job defects (nil factory, nil workload or policy,
// aliased policies, non-positive duration) — mirroring RunBatch's checks.
func NewLockstep(jobs []Job, opts BatchOptions) (*Lockstep, error) {
	if len(jobs) == 0 {
		return &Lockstep{results: []*Result{}}, nil
	}
	seen := make(map[Policy]int, len(jobs))
	for i, j := range jobs {
		if j.Server == nil {
			return nil, &BatchError{Index: i, Name: j.Name, Err: fmt.Errorf("nil ServerFactory")}
		}
		if j.Config.Workload == nil {
			return nil, &BatchError{Index: i, Name: j.Name, Err: fmt.Errorf("nil workload")}
		}
		if j.Config.Policy == nil {
			return nil, &BatchError{Index: i, Name: j.Name, Err: fmt.Errorf("nil policy")}
		}
		if j.Config.Duration <= 0 {
			return nil, &BatchError{Index: i, Name: j.Name, Err: fmt.Errorf("non-positive duration %v", j.Config.Duration)}
		}
		if p := j.Config.Policy; reflect.ValueOf(p).Kind() == reflect.Pointer {
			if prev, dup := seen[p]; dup {
				return nil, &BatchError{
					Index: i, Name: j.Name,
					Err: fmt.Errorf("shares a Policy instance with job %d; give every job its own", prev),
				}
			}
			seen[p] = i
		}
		if j.Config.Duration != jobs[0].Config.Duration {
			return nil, ErrHeterogeneous
		}
	}

	ls := &Lockstep{
		workers: opts.Workers,
		lanes:   make([]lane, len(jobs)),
		results: make([]*Result, len(jobs)),
	}
	schedules := make(map[workload.Generator][]units.Utilization, len(jobs))
	for i, j := range jobs {
		server, err := j.Server()
		if err != nil {
			return nil, &BatchError{Index: i, Name: j.Name, Err: err}
		}
		if i == 0 {
			ls.tick = server.cfg.Tick
			ls.nTicks = int(float64(j.Config.Duration) / float64(ls.tick))
		} else if server.cfg.Tick != ls.tick {
			return nil, ErrHeterogeneous
		}
		ln := &ls.lanes[i]
		ln.name = j.Name
		ln.server = server
		ln.policy = j.Config.Policy
		ln.scale = 1
		ln.warm = j.Config.WarmStart
		ln.record = j.Config.Record
		ln.recordPower = j.Config.Record || j.Config.RecordPower
		ln.demand = compileSchedule(schedules, j.Config.Workload, ls.nTicks, ls.tick)
		ls.results[i] = &ln.result
	}
	return ls, nil
}

// compileSchedule evaluates gen at every tick into a demand schedule,
// reusing an already-compiled schedule when the same generator instance
// drives several jobs (generators are deterministic and read-only, so the
// samples are shared safely). Only comparable generator types participate
// in deduplication.
func compileSchedule(cache map[workload.Generator][]units.Utilization,
	gen workload.Generator, nTicks int, tick units.Seconds) []units.Utilization {
	cmp := reflect.TypeOf(gen).Comparable()
	if cmp {
		if s, ok := cache[gen]; ok {
			return s
		}
	}
	s := make([]units.Utilization, nTicks)
	for k := range s {
		s[k] = gen.At(units.Seconds(float64(k) * float64(tick)))
	}
	if cmp {
		cache[gen] = s
	}
	return s
}

// Len returns the number of lanes in the batch.
func (ls *Lockstep) Len() int { return len(ls.lanes) }

// Ticks returns the per-lane tick count of one run.
func (ls *Lockstep) Ticks() int { return ls.nTicks }

// SetAmbient re-homes lane i's platform at a new inlet temperature. The
// next Run simulates from that operating point; an invalid combination
// (e.g. an inlet at or above the thermal limit) errors like server
// construction would.
func (ls *Lockstep) SetAmbient(i int, t units.Celsius) error {
	if err := ls.lanes[i].server.SetAmbient(t); err != nil {
		return fmt.Errorf("sim: lockstep lane %d (%s): %w", i, ls.lanes[i].name, err)
	}
	return nil
}

// SetPolicy replaces lane i's DTM policy (the fleet fixed point rebuilds
// policies against each pass's resolved inlet). The policy must not be
// shared with any other lane.
func (ls *Lockstep) SetPolicy(i int, p Policy) error {
	if p == nil {
		return fmt.Errorf("sim: lockstep lane %d (%s): nil policy", i, ls.lanes[i].name)
	}
	if reflect.ValueOf(p).Kind() == reflect.Pointer {
		for j := range ls.lanes {
			if j != i && ls.lanes[j].policy == p {
				return fmt.Errorf("sim: lockstep lane %d (%s): shares a Policy instance with lane %d", i, ls.lanes[i].name, j)
			}
		}
	}
	ls.lanes[i].policy = p
	return nil
}

// SetDemandScale multiplies lane i's precompiled demand schedule by f for
// subsequent runs; scaled samples are clamped to [0, 1] at step time. A
// scale of 1 restores the schedule bit for bit (the multiplication is
// skipped entirely). The schedule itself is never modified — scaling a
// lane whose generator is shared with other lanes affects only that lane.
func (ls *Lockstep) SetDemandScale(i int, f float64) error {
	if f < 0 || !units.IsFinite(f) {
		return fmt.Errorf("sim: lockstep lane %d (%s): bad demand scale %v", i, ls.lanes[i].name, f)
	}
	ls.lanes[i].scale = f
	return nil
}

// DemandScale returns lane i's current demand scale.
func (ls *Lockstep) DemandScale(i int) float64 { return ls.lanes[i].scale }

// MeanDemand returns the mean of lane i's unscaled precompiled demand
// schedule — the divisible workload share the fleet coordinator
// redistributes between nodes.
func (ls *Lockstep) MeanDemand(i int) float64 {
	ln := &ls.lanes[i]
	if len(ln.demand) == 0 {
		return 0
	}
	sum := 0.0
	for _, d := range ln.demand {
		sum += float64(d)
	}
	return sum / float64(len(ln.demand))
}

// MaxDemand returns the peak of lane i's unscaled precompiled demand
// schedule. The coordinator bounds a node's receivable share by its peak:
// scaling a trace whose spikes already graze full load would clamp the
// spikes and overload the node the migration meant to help.
func (ls *Lockstep) MaxDemand(i int) float64 {
	peak := 0.0
	for _, d := range ls.lanes[i].demand {
		if float64(d) > peak {
			peak = float64(d)
		}
	}
	return peak
}

// SetRecord adjusts lane i's trace capture for subsequent runs: record
// keeps the full series set, recordPower just the "total_power" series
// (implied by record). Series storage is allocated at most once per lane
// and reused across runs, so toggling recording between passes keeps
// re-stepping allocation-free.
func (ls *Lockstep) SetRecord(i int, record, recordPower bool) {
	ln := &ls.lanes[i]
	ln.record = record
	ln.recordPower = record || recordPower
}

// ensureSeries lazily builds (and then retains) the series and sets a
// lane's current record flags need.
func (ls *Lockstep) ensureSeries(ln *lane) {
	if !ln.recordPower {
		return
	}
	if ln.sPower == nil {
		ln.sPower = trace.NewSeriesCap("total_power", ls.nTicks)
	}
	if ln.record && ln.tsFull == nil {
		ln.sDemand = trace.NewSeriesCap("demand", ls.nTicks)
		ln.sDeliv = trace.NewSeriesCap("delivered", ls.nTicks)
		ln.sCap = trace.NewSeriesCap("cap", ls.nTicks)
		ln.sFanCmd = trace.NewSeriesCap("fan_cmd", ls.nTicks)
		ln.sFanAct = trace.NewSeriesCap("fan_actual", ls.nTicks)
		ln.sJunc = trace.NewSeriesCap("junction", ls.nTicks)
		ln.sMeas = trace.NewSeriesCap("measured", ls.nTicks)
		ts := trace.NewSet()
		for _, s := range []*trace.Series{ln.sDemand, ln.sDeliv, ln.sCap, ln.sFanCmd, ln.sFanAct, ln.sJunc, ln.sMeas} {
			ts.Add(s)
		}
		ts.Add(ln.sPower)
		ln.tsFull = ts
	}
	if !ln.record && ln.tsPower == nil {
		ts := trace.NewSet()
		ts.Add(ln.sPower)
		ln.tsPower = ts
	}
}

// reset returns a lane to its initial condition for a fresh run, mirroring
// the preamble of sim.Run exactly.
func (ls *Lockstep) reset(ln *lane) error {
	ln.server.Reset()
	ln.policy.Reset()
	if ln.warm != nil {
		if err := ln.server.WarmStart(ln.warm.Util, ln.warm.Fan); err != nil {
			return err
		}
	}
	ln.prev = TickResult{
		Cap:       1,
		FanCmd:    ln.server.FanCommand(),
		FanActual: ln.server.FanActual(),
		Measured:  units.Celsius(ln.server.cfg.Sensor.InitialValue),
	}
	if ln.warm != nil {
		ln.prev.Measured = ln.server.Junction()
		ln.prev.Cap = ln.server.Cap()
	}
	ln.result = Result{}
	ln.violated, ln.hwThrot = 0, 0
	ln.sumJunc, ln.sumFan, ln.sumDeliv, ln.sumDem = 0, 0, 0, 0
	ls.ensureSeries(ln)
	if ln.recordPower {
		ln.sPower.Reset()
		if ln.record {
			for _, s := range []*trace.Series{ln.sDemand, ln.sDeliv, ln.sCap, ln.sFanCmd, ln.sFanAct, ln.sJunc, ln.sMeas} {
				s.Reset()
			}
			ln.result.Traces = ln.tsFull
		} else {
			ln.result.Traces = ln.tsPower
		}
	}
	return nil
}

// step advances one lane by one tick: policy decision, actuation, platform
// tick, metrics accumulation — the body of sim.Run's loop, with the
// workload query replaced by the precompiled schedule.
func (ls *Lockstep) step(ln *lane, k int) {
	t := units.Seconds(float64(k) * float64(ls.tick))
	demand := ln.demand[k]
	if ln.scale != 1 {
		demand = units.Utilization(float64(demand) * ln.scale)
		if demand > 1 {
			demand = 1
		}
	}
	cmd := ln.policy.Step(Observation{
		T:         t,
		Measured:  ln.prev.Measured,
		Demand:    demand,
		Delivered: ln.prev.Delivered,
		Violated:  ln.prev.Violated,
		FanCmd:    ln.server.FanCommand(),
		FanActual: ln.server.FanActual(),
		Cap:       ln.server.Cap(),
	})
	ln.server.CommandFan(cmd.Fan)
	ln.server.SetCap(cmd.Cap)
	ln.server.TickInto(demand, &ln.prev)
	res := &ln.prev

	m := &ln.result.Metrics
	if res.Violated {
		ln.violated++
	}
	if res.HWThrottled {
		ln.hwThrot++
	}
	m.FanEnergy += res.FanEnergyJ
	m.CPUEnergy += res.CPUEnergyJ
	if res.Junction > m.MaxJunction {
		m.MaxJunction = res.Junction
	}
	if res.Junction > ln.server.cfg.TLimit {
		m.TimeAboveLimit += ln.server.cfg.Tick
	}
	ln.sumJunc += float64(res.Junction)
	ln.sumFan += float64(res.FanActual)
	ln.sumDeliv += float64(res.Delivered)
	ln.sumDem += float64(res.Demand)

	if ln.recordPower {
		tf := float64(res.T)
		if ln.record {
			ln.sDemand.MustAppend(tf, float64(res.Demand))
			ln.sDeliv.MustAppend(tf, float64(res.Delivered))
			ln.sCap.MustAppend(tf, float64(res.Cap))
			ln.sFanCmd.MustAppend(tf, float64(res.FanCmd))
			ln.sFanAct.MustAppend(tf, float64(res.FanActual))
			ln.sJunc.MustAppend(tf, float64(res.Junction))
			ln.sMeas.MustAppend(tf, float64(res.Measured))
		}
		ln.sPower.MustAppend(tf, float64(res.TotalPower))
	}
}

// finalize folds a lane's accumulators into its metrics, exactly as
// sim.Run does after its loop.
func (ls *Lockstep) finalize(ln *lane) {
	m := &ln.result.Metrics
	m.Ticks = ls.nTicks
	if ls.nTicks > 0 {
		n := float64(ls.nTicks)
		m.ViolationFrac = float64(ln.violated) / n
		m.HWThrottleFrac = float64(ln.hwThrot) / n
		m.MeanJunction = units.Celsius(ln.sumJunc / n)
		m.MeanFanSpeed = units.RPM(ln.sumFan / n)
		m.MeanDelivered = units.Utilization(ln.sumDeliv / n)
		m.MeanDemand = units.Utilization(ln.sumDem / n)
	}
}

// lockstepCohort bounds how many lanes advance tick-major together. A
// lane's working set (server, DTM state, sensor ring, schedule window) is
// a few kilobytes; a whole 64-lane rack swept once per tick would evict
// itself from cache every tick, so the batch advances in cohorts small
// enough to stay resident while still interleaving lanes tick by tick.
// Measured on the 64-lane benchmark: cohorts of 2–4 are ~17% faster than
// 8 and ~20% faster than 32. Cohort order cannot change results — lanes
// are independent.
const lockstepCohort = 4

// runRange advances lanes [lo, hi) through the full horizon, tick-major
// within cache-sized cohorts.
func (ls *Lockstep) runRange(lo, hi int) {
	for c := lo; c < hi; c += lockstepCohort {
		ce := c + lockstepCohort
		if ce > hi {
			ce = hi
		}
		for k := 0; k < ls.nTicks; k++ {
			for i := c; i < ce; i++ {
				ls.step(&ls.lanes[i], k)
			}
		}
	}
}

// Run executes one batch pass: every lane is reset (and warm-started), all
// lanes advance tick-by-tick, and the per-lane results are returned in job
// order. Lanes are sharded contiguously across the worker pool; results
// are bit-identical at any worker count, and to RunBatch on the same jobs.
//
// The returned results (and their trace sets) are owned by the Lockstep
// and remain valid until the next Run — callers that need to retain a pass
// must copy, the same aliasing contract as the multicore scratch buffers.
// A warm Run performs zero heap allocations at Workers <= 1.
func (ls *Lockstep) Run() ([]*Result, error) {
	for i := range ls.lanes {
		if err := ls.reset(&ls.lanes[i]); err != nil {
			return nil, &BatchError{Index: i, Name: ls.lanes[i].name, Err: err}
		}
	}
	n := len(ls.lanes)
	if n == 0 {
		return ls.results, nil
	}
	workers := ls.workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		ls.runRange(0, n)
	} else {
		if err := ParallelFor(workers, workers, func(w int) {
			ls.runRange(w*n/workers, (w+1)*n/workers)
		}); err != nil {
			return nil, err
		}
	}
	for i := range ls.lanes {
		ls.finalize(&ls.lanes[i])
	}
	return ls.results, nil
}

// RunLockstep executes the jobs through a one-shot lockstep batch when
// they share one clock, falling back to RunBatch when they do not. Results
// are bit-identical either way; the lockstep path evaluates each distinct
// workload generator once instead of once per job per tick.
func RunLockstep(jobs []Job, opts BatchOptions) ([]*Result, error) {
	ls, err := NewLockstep(jobs, opts)
	if err != nil {
		var be *BatchError
		if errors.Is(err, ErrHeterogeneous) || errors.As(err, &be) {
			// Not eligible, or a per-job defect: degrade to RunBatch,
			// which honors the partial-results contract (healthy jobs
			// still produce results beside the *BatchError).
			return RunBatch(jobs, opts)
		}
		return nil, err
	}
	return ls.Run()
}
