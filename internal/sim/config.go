// Package sim composes the physical substrates (thermal, power, sensing,
// workload) into the discrete-time server simulator of Sec. VI-A, drives a
// dynamic-thermal-management policy over it, and reports the paper's
// metrics: deadline-violation fraction and fan energy.
//
// The engine ticks at a fixed step (default 1 s, the CPU control interval
// of Table I); the policy under test decides the fan speed and CPU cap at
// its own cadence and the platform applies them through a slew-limited fan
// actuator.
//
// The tick loop is allocation-free after warm-up, and independent runs
// (solution comparisons, seed sweeps, tuning experiments) execute
// concurrently through the batch engine — see RunBatch, ParallelFor and
// Sweep in batch.go. Batch results are order-stable and bit-identical to
// sequential execution.
package sim

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/thermal"
	"repro/internal/units"
)

// Config collects every physical and platform parameter of the simulated
// server. Default() returns the Table I calibration; all experiments start
// from it and override only what they study.
//
// Every field carries a same-name json tag: the scenario store keys cells
// by the SHA-256 of the spec's canonical JSON, so the tags pin the wire
// names — a field rename without a deliberate tag change would silently
// move every store key (enforced by the hashedfield analyzer).
type Config struct {
	// CPU power model (Eq. 1): Table I P_idle = 96 W, P_max = 160 W.
	CPUIdlePower units.Watt `json:"CPUIdlePower"`
	CPUMaxPower  units.Watt `json:"CPUMaxPower"`

	// Fan: Table I 29.4 W per socket at 8500 rpm.
	FanMaxPower units.Watt `json:"FanMaxPower"`
	FanMaxSpeed units.RPM  `json:"FanMaxSpeed"`
	FanMinSpeed units.RPM  `json:"FanMinSpeed"`
	// FanSlewPerSec bounds how fast the physical fan tracks its command.
	FanSlewPerSec units.RPM `json:"FanSlewPerSec"`

	// Thermal model: Table I heat-sink law, 60 s sink time constant at
	// max air flow, 0.1 s die time constant; R_die per DESIGN.md.
	HeatSinkLaw thermal.HeatSinkLaw `json:"HeatSinkLaw"`
	SinkTau     units.Seconds       `json:"SinkTau"`
	DieRes      units.KPerW         `json:"DieRes"`
	DieTau      units.Seconds       `json:"DieTau"`
	Ambient     units.Celsius       `json:"Ambient"`

	// Measurement chain (Sec. I): 10 s I2C lag, 8-bit ADC (1 °C step).
	Sensor sensor.Config `json:"Sensor"`

	// TLimit is the comfort-zone boundary the controllers enforce (the
	// paper's "safe operating region, e.g. < 80 °C"); time above it is
	// reported as a metric but delivery is not clamped there — keeping
	// the die inside the zone is the DTM's job, not the platform's.
	TLimit units.Celsius `json:"TLimit"`
	// TProtect is the silicon protection threshold: above it the
	// platform force-throttles delivered utilization to EmergencyCap
	// regardless of the policy. Real firmware keeps this well above the
	// comfort zone.
	TProtect     units.Celsius     `json:"TProtect"`
	EmergencyCap units.Utilization `json:"EmergencyCap"`

	// Tick is the engine step and CPU control interval (Table I: 1 s).
	Tick units.Seconds `json:"Tick"`

	// NSockets scales reported power; the paper's balanced-workload
	// assumption makes all sockets identical.
	NSockets int `json:"NSockets"`
}

// Default returns the Table I configuration with DESIGN.md calibration.
func Default() Config {
	return Config{
		CPUIdlePower:  96,
		CPUMaxPower:   160,
		FanMaxPower:   29.4,
		FanMaxSpeed:   8500,
		FanMinSpeed:   1000,
		FanSlewPerSec: 800,
		HeatSinkLaw:   thermal.TableIHeatSinkLaw(),
		SinkTau:       60,
		DieRes:        0.12,
		DieTau:        0.1,
		Ambient:       25,
		Sensor:        sensor.TableIConfig(),
		TLimit:        80,
		TProtect:      90,
		EmergencyCap:  0.3,
		Tick:          1,
		NSockets:      1,
	}
}

// Validate reports the first invalid parameter, or nil.
func (c Config) Validate() error {
	if c.CPUIdlePower < 0 || c.CPUMaxPower < c.CPUIdlePower {
		return fmt.Errorf("sim: bad CPU power range [%v, %v]", c.CPUIdlePower, c.CPUMaxPower)
	}
	if c.FanMaxPower < 0 {
		return fmt.Errorf("sim: negative fan power %v", c.FanMaxPower)
	}
	if c.FanMinSpeed < 0 || c.FanMaxSpeed <= c.FanMinSpeed {
		return fmt.Errorf("sim: bad fan speed range [%v, %v]", c.FanMinSpeed, c.FanMaxSpeed)
	}
	if c.FanSlewPerSec <= 0 {
		return fmt.Errorf("sim: non-positive fan slew %v", c.FanSlewPerSec)
	}
	if c.SinkTau <= 0 || c.DieTau <= 0 {
		return fmt.Errorf("sim: non-positive time constants (sink %v, die %v)", c.SinkTau, c.DieTau)
	}
	if c.DieRes <= 0 {
		return fmt.Errorf("sim: non-positive die resistance %v", c.DieRes)
	}
	if c.TLimit <= c.Ambient {
		return fmt.Errorf("sim: TLimit %v at or below ambient %v", c.TLimit, c.Ambient)
	}
	if c.TProtect < c.TLimit {
		return fmt.Errorf("sim: TProtect %v below TLimit %v", c.TProtect, c.TLimit)
	}
	if c.EmergencyCap < 0 || c.EmergencyCap > 1 {
		return fmt.Errorf("sim: emergency cap %v outside [0, 1]", c.EmergencyCap)
	}
	if c.Tick <= 0 {
		return fmt.Errorf("sim: non-positive tick %v", c.Tick)
	}
	if c.NSockets < 1 {
		return fmt.Errorf("sim: %d sockets", c.NSockets)
	}
	return nil
}

// thermalParams derives the two-node thermal model parameters.
func (c Config) thermalParams() (thermal.ServerParams, error) {
	sinkCap, err := thermal.CapacitanceFor(c.SinkTau, c.HeatSinkLaw.Resistance(c.FanMaxSpeed))
	if err != nil {
		return thermal.ServerParams{}, err
	}
	dieCap, err := thermal.CapacitanceFor(c.DieTau, c.DieRes)
	if err != nil {
		return thermal.ServerParams{}, err
	}
	return thermal.ServerParams{
		Law:     c.HeatSinkLaw,
		SinkCap: sinkCap,
		DieRes:  c.DieRes,
		DieCap:  dieCap,
		Ambient: c.Ambient,
	}, nil
}

// ThermalModel builds a standalone two-node thermal model from the
// configuration, used by policies that need steady-state queries (e.g.
// the single-step scaler's release-speed computation).
func (c Config) ThermalModel() (*thermal.Server, error) {
	tp, err := c.thermalParams()
	if err != nil {
		return nil, err
	}
	return thermal.NewServer(tp)
}

// Models builds the validated power models from the configuration.
func (c Config) Models() (power.CPUModel, power.FanModel, error) {
	cpu, err := power.NewCPUModel(c.CPUIdlePower, c.CPUMaxPower)
	if err != nil {
		return power.CPUModel{}, power.FanModel{}, err
	}
	fan, err := power.NewFanModel(c.FanMaxPower, c.FanMaxSpeed)
	if err != nil {
		return power.CPUModel{}, power.FanModel{}, err
	}
	return cpu, fan, nil
}
