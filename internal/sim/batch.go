package sim

import (
	"fmt"
	"reflect"
	"runtime"
	"sync"
)

// This file is the parallel batch simulation engine: experiments that used
// to run their scenarios one after another on one core (Table III's five
// solutions, the Ziegler–Nichols region sweep, Monte Carlo seed fans) fan
// out over a worker pool instead. Results are order-stable — job k's
// result lands in slot k regardless of scheduling — and bit-identical to a
// sequential run of the same jobs, because every job owns its server (via
// ServerFactory), its policy, and all other mutable state.
//
// Usage:
//
//	jobs := []sim.Job{
//		{Name: "baseline", Server: factoryA, Config: rcA},
//		{Name: "proposed", Server: factoryB, Config: rcB},
//	}
//	results, err := sim.RunBatch(jobs, sim.BatchOptions{})
//	// results[0] is "baseline", results[1] is "proposed".

// ServerFactory builds a fresh PhysicalServer for one batch job. Each
// invocation must return a server no other job touches; experiments stop
// sharing one mutable server across runs by constructing per-job here.
type ServerFactory func() (*PhysicalServer, error)

// Factory adapts a Config into a ServerFactory.
func Factory(cfg Config) ServerFactory {
	return func() (*PhysicalServer, error) { return NewPhysicalServer(cfg) }
}

// Job is one independent simulation in a batch.
type Job struct {
	// Name labels the job in error messages (optional).
	Name string
	// Server builds the job's private platform. Required.
	Server ServerFactory
	// Config is the run to execute. Its Policy must not be shared with
	// any other job in the batch: policies are stateful and RunBatch
	// executes jobs concurrently. Workload generators are safe to share —
	// they are deterministic and read-only during a run.
	Config RunConfig
}

// BatchOptions tunes batch execution.
type BatchOptions struct {
	// Workers caps the number of concurrent jobs. Zero or negative means
	// GOMAXPROCS. One worker degenerates to a deterministic sequential
	// run, useful for bit-identical comparisons and benchmarks.
	Workers int
}

// BatchError reports the first failed job of a batch (lowest job index).
type BatchError struct {
	Index int    // failing job's position in the jobs slice
	Name  string // failing job's name
	Err   error
}

// Error implements error.
func (e *BatchError) Error() string {
	if e.Name != "" {
		return fmt.Sprintf("sim: batch job %d (%s): %v", e.Index, e.Name, e.Err)
	}
	return fmt.Sprintf("sim: batch job %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying job error.
func (e *BatchError) Unwrap() error { return e.Err }

// RunBatch executes the jobs concurrently on a worker pool and returns one
// Result per job, in job order. On failure it returns the results computed
// so far (failed or skipped slots are nil) and a *BatchError for the
// lowest-indexed failure. Results are deterministic: scheduling cannot
// reorder or perturb them, so a parallel batch is bit-identical to running
// the same jobs sequentially with fresh servers.
func RunBatch(jobs []Job, opts BatchOptions) ([]*Result, error) {
	results := make([]*Result, len(jobs))
	if len(jobs) == 0 {
		return results, nil
	}
	// Shared mutable state across jobs breaks both determinism and memory
	// safety under -race; reject it up front instead of racing. Only
	// pointer-typed policies can alias mutable state — value policies are
	// copied into each job's interface and two equal values are distinct.
	seen := make(map[Policy]int, len(jobs))
	for i, j := range jobs {
		if j.Server == nil {
			return results, &BatchError{Index: i, Name: j.Name, Err: fmt.Errorf("nil ServerFactory")}
		}
		if p := j.Config.Policy; p != nil && reflect.ValueOf(p).Kind() == reflect.Pointer {
			if prev, dup := seen[p]; dup {
				return results, &BatchError{
					Index: i, Name: j.Name,
					Err: fmt.Errorf("shares a Policy instance with job %d; give every job its own", prev),
				}
			}
			seen[p] = i
		}
	}
	errs := make([]error, len(jobs))
	err := ParallelFor(len(jobs), opts.Workers, func(i int) {
		server, err := jobs[i].Server()
		if err != nil {
			errs[i] = err
			return
		}
		results[i], errs[i] = Run(server, jobs[i].Config)
	})
	if err != nil {
		return results, err
	}
	for i, e := range errs {
		if e != nil {
			return results, &BatchError{Index: i, Name: jobs[i].Name, Err: e}
		}
	}
	return results, nil
}

// ParallelFor runs fn(0..n-1) across a pool of workers and blocks until
// every call returns. Each index runs exactly once; fn must confine its
// writes to per-index state (slot i of a result slice) for the output to
// be deterministic. It is the low-level primitive under RunBatch, also
// used directly by experiments whose unit of work is not a sim.Run (e.g.
// the Ziegler–Nichols tuning sweep). Workers <= 0 means GOMAXPROCS. A
// panicking fn is re-panicked on the calling goroutine.
func ParallelFor(n, workers int, fn func(i int)) error {
	if n < 0 {
		return fmt.Errorf("sim: negative iteration count %d", n)
	}
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return nil
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		panicked any
	)
	idx := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							if panicked == nil {
								panicked = r
							}
							mu.Unlock()
						}
					}()
					fn(i)
				}()
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	if panicked != nil {
		panic(panicked)
	}
	return nil
}

// Sweep builds n jobs with build(i) and runs them as one batch: a
// convenience for one-axis parameter sweeps. The results are order-stable
// against the sweep axis.
func Sweep(n int, opts BatchOptions, build func(i int) (Job, error)) ([]*Result, error) {
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		j, err := build(i)
		if err != nil {
			return nil, fmt.Errorf("sim: building sweep job %d: %w", i, err)
		}
		jobs[i] = j
	}
	return RunBatch(jobs, opts)
}
