package sim

import "repro/internal/units"

// Observation is what a DTM policy sees at one engine tick: only
// firmware-visible quantities. The true junction temperature is
// deliberately absent — policies live behind the non-ideal measurement
// chain, exactly as in the paper.
type Observation struct {
	T         units.Seconds     // simulation time
	Measured  units.Celsius     // lagged + quantized temperature
	Demand    units.Utilization // workload requirement this tick (OS-visible)
	Delivered units.Utilization // what actually ran last tick
	Violated  bool              // last tick missed its demand
	FanCmd    units.RPM         // current fan command
	FanActual units.RPM         // physical fan speed
	Cap       units.Utilization // current CPU cap
}

// Command is what a policy asks the platform to do for the next tick.
type Command struct {
	Fan units.RPM
	Cap units.Utilization
}

// Policy is a dynamic thermal management scheme under test. The engine
// calls Step once per tick; policies decide internally how often each
// local controller actually fires (Δt_cpu = 1 s, Δt_fan = 30 s in the
// paper) and hold their commands in between.
type Policy interface {
	// Name identifies the policy in results tables.
	Name() string
	// Step observes the platform and returns the commands to apply.
	Step(obs Observation) Command
	// Reset clears policy state between runs.
	Reset()
}

// HoldPolicy keeps the fan at a fixed speed and the cap fully open — the
// do-nothing baseline used by calibration tests.
type HoldPolicy struct {
	Fan units.RPM
}

// Name implements Policy.
func (h HoldPolicy) Name() string { return "hold" }

// Step implements Policy.
func (h HoldPolicy) Step(Observation) Command { return Command{Fan: h.Fan, Cap: 1} }

// Reset implements Policy.
func (h HoldPolicy) Reset() {}
