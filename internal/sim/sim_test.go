package sim

import (
	"math"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

func TestDefaultConfigValid(t *testing.T) {
	if err := Default().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.CPUMaxPower = c.CPUIdlePower - 1 },
		func(c *Config) { c.CPUIdlePower = -1 },
		func(c *Config) { c.FanMaxPower = -1 },
		func(c *Config) { c.FanMaxSpeed = c.FanMinSpeed },
		func(c *Config) { c.FanMinSpeed = -1 },
		func(c *Config) { c.FanSlewPerSec = 0 },
		func(c *Config) { c.SinkTau = 0 },
		func(c *Config) { c.DieTau = 0 },
		func(c *Config) { c.DieRes = 0 },
		func(c *Config) { c.TLimit = c.Ambient },
		func(c *Config) { c.TProtect = c.TLimit - 1 },
		func(c *Config) { c.EmergencyCap = 1.5 },
		func(c *Config) { c.Tick = 0 },
		func(c *Config) { c.NSockets = 0 },
	}
	for i, mutate := range cases {
		cfg := Default()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
		if _, err := NewPhysicalServer(cfg); err == nil {
			t.Errorf("case %d: NewPhysicalServer accepted invalid config", i)
		}
	}
}

func TestTableIParameters(t *testing.T) {
	// Table I: P_max 160 W, P_idle 96 W, fan 29.4 W @ 8500 rpm, 1 s fan
	// sample interval, 60 s sink time constant, 0.1 s die constant.
	cfg := Default()
	if cfg.CPUMaxPower != 160 || cfg.CPUIdlePower != 96 {
		t.Errorf("CPU power = %v/%v", cfg.CPUIdlePower, cfg.CPUMaxPower)
	}
	if cfg.FanMaxPower != 29.4 || cfg.FanMaxSpeed != 8500 {
		t.Errorf("fan = %v @ %v", cfg.FanMaxPower, cfg.FanMaxSpeed)
	}
	if cfg.SinkTau != 60 || cfg.DieTau != 0.1 {
		t.Errorf("taus = %v/%v", cfg.SinkTau, cfg.DieTau)
	}
	if cfg.Tick != 1 {
		t.Errorf("tick = %v", cfg.Tick)
	}
	if cfg.Sensor.LagSeconds != 10 || cfg.Sensor.ADCBits != 8 {
		t.Errorf("sensor = %+v", cfg.Sensor)
	}
	law := cfg.HeatSinkLaw
	if law.R0 != 0.141 || law.A != 132.5 || law.B != 0.923 {
		t.Errorf("heat sink law = %+v", law)
	}
}

func TestServerTickPhysics(t *testing.T) {
	server, err := NewPhysicalServer(Default())
	if err != nil {
		t.Fatal(err)
	}
	server.CommandFan(3000)
	server.SetCap(1)
	var last TickResult
	for i := 0; i < 2000; i++ {
		last = server.Tick(0.7)
	}
	// Converges to the analytic steady junction at u = 0.7, 3000 rpm.
	want := server.Thermal().SteadyJunction(last.CPUPower, 3000)
	if math.Abs(float64(last.Junction-want)) > 0.1 {
		t.Errorf("junction = %v, want %v", last.Junction, want)
	}
	if last.FanActual != 3000 {
		t.Errorf("fan actual = %v, want 3000", last.FanActual)
	}
	if last.Violated {
		t.Error("uncapped full-delivery tick reported violation")
	}
	// The measurement lags and quantizes but tracks within ~1.5 C at
	// steady state.
	if math.Abs(float64(last.Measured-last.Junction)) > 1.5 {
		t.Errorf("measured %v vs junction %v", last.Measured, last.Junction)
	}
}

func TestServerFanSlew(t *testing.T) {
	cfg := Default()
	cfg.FanSlewPerSec = 500
	server, _ := NewPhysicalServer(cfg)
	server.CommandFan(8500)
	res := server.Tick(0.1)
	if res.FanActual != 1500 {
		t.Errorf("after 1 tick fan = %v, want 1000+500", res.FanActual)
	}
	res = server.Tick(0.1)
	if res.FanActual != 2000 {
		t.Errorf("after 2 ticks fan = %v, want 2000", res.FanActual)
	}
}

func TestServerCapBindsDelivery(t *testing.T) {
	server, _ := NewPhysicalServer(Default())
	server.SetCap(0.4)
	res := server.Tick(0.9)
	if res.Delivered != 0.4 || !res.Violated {
		t.Errorf("capped tick = %+v", res)
	}
	res = server.Tick(0.3)
	if res.Delivered != 0.3 || res.Violated {
		t.Errorf("uncapped tick = %+v", res)
	}
}

func TestServerProtectionClamp(t *testing.T) {
	cfg := Default()
	server, _ := NewPhysicalServer(cfg)
	// Force the die above TProtect.
	server.Thermal().SetState(91, 95)
	res := server.Tick(1.0)
	if !res.HWThrottled || res.Delivered != cfg.EmergencyCap {
		t.Errorf("protection did not clamp: %+v", res)
	}
}

func TestServerCommandClamping(t *testing.T) {
	server, _ := NewPhysicalServer(Default())
	server.CommandFan(99999)
	if server.FanCommand() != 8500 {
		t.Errorf("over-speed command = %v", server.FanCommand())
	}
	server.CommandFan(0)
	if server.FanCommand() != 1000 {
		t.Errorf("under-speed command = %v", server.FanCommand())
	}
	server.SetCap(7)
	if server.Cap() != 1 {
		t.Errorf("cap = %v", server.Cap())
	}
}

func TestWarmStart(t *testing.T) {
	server, _ := NewPhysicalServer(Default())
	if err := server.WarmStart(0.7, 3000); err != nil {
		t.Fatal(err)
	}
	want := server.Thermal().SteadyJunction(96+0.7*64, 3000)
	if math.Abs(float64(server.Junction()-want)) > 1e-9 {
		t.Errorf("warm junction = %v, want %v", server.Junction(), want)
	}
	// First tick's measurement reflects the warm temperature, not the
	// cold initial value, despite the 10 s sensor lag.
	res := server.Tick(0.7)
	if math.Abs(float64(res.Measured-want)) > 1.5 {
		t.Errorf("first measured = %v, want ~%v (primed delay line)", res.Measured, want)
	}
	if err := server.WarmStart(1.5, 3000); err == nil {
		t.Error("invalid warm utilization accepted")
	}
}

func TestRunValidation(t *testing.T) {
	server, _ := NewPhysicalServer(Default())
	wl := workload.Constant{U: 0.5}
	if _, err := Run(server, RunConfig{Duration: 0, Workload: wl, Policy: HoldPolicy{Fan: 3000}}); err == nil {
		t.Error("zero duration accepted")
	}
	if _, err := Run(server, RunConfig{Duration: 10, Policy: HoldPolicy{Fan: 3000}}); err == nil {
		t.Error("nil workload accepted")
	}
	if _, err := Run(server, RunConfig{Duration: 10, Workload: wl}); err == nil {
		t.Error("nil policy accepted")
	}
}

func TestRunMetricsAndTraces(t *testing.T) {
	server, _ := NewPhysicalServer(Default())
	res, err := Run(server, RunConfig{
		Duration: 300,
		Workload: workload.Constant{U: 0.5},
		Policy:   HoldPolicy{Fan: 4000},
		Record:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Ticks != 300 {
		t.Errorf("ticks = %d", m.Ticks)
	}
	if m.ViolationFrac != 0 {
		t.Errorf("violations = %v for an uncapped hold run", m.ViolationFrac)
	}
	if m.FanEnergy <= 0 || m.CPUEnergy <= 0 {
		t.Errorf("energies = %v, %v", m.FanEnergy, m.CPUEnergy)
	}
	// CPU energy of a 0.5-utilization 300 s run = 128 W * 300 s.
	if math.Abs(float64(m.CPUEnergy)-128*300) > 1 {
		t.Errorf("CPU energy = %v, want 38400", m.CPUEnergy)
	}
	if m.MeanDemand != 0.5 || m.MeanDelivered != 0.5 {
		t.Errorf("demand/delivered = %v/%v", m.MeanDemand, m.MeanDelivered)
	}
	for _, name := range []string{"demand", "delivered", "cap", "fan_cmd", "fan_actual", "junction", "measured", "total_power"} {
		s := res.Traces.Get(name)
		if s == nil || s.Len() != 300 {
			t.Errorf("trace %q missing or wrong length", name)
		}
	}
}

func TestRunWithoutRecordHasNoTraces(t *testing.T) {
	server, _ := NewPhysicalServer(Default())
	res, err := Run(server, RunConfig{
		Duration: 10,
		Workload: workload.Constant{U: 0.5},
		Policy:   HoldPolicy{Fan: 2000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces != nil {
		t.Error("traces recorded without Record")
	}
}

func TestRunDeterminism(t *testing.T) {
	noisy, err := workload.NewNoisy(workload.PaperSquare(100), 0.04, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Metrics {
		server, _ := NewPhysicalServer(Default())
		res, err := Run(server, RunConfig{Duration: 500, Workload: noisy, Policy: HoldPolicy{Fan: 3000}})
		if err != nil {
			t.Fatal(err)
		}
		return res.Metrics
	}
	if a, b := run(), run(); a != b {
		t.Errorf("identical runs diverged:\n%+v\n%+v", a, b)
	}
}

func TestPlantImplementsTuningInterface(t *testing.T) {
	plant, err := NewPlant(Default(), 0.7, 2000, 30)
	if err != nil {
		t.Fatal(err)
	}
	if plant.ControlPeriod() != 30 {
		t.Errorf("control period = %v", plant.ControlPeriod())
	}
	// Holding the warm-start speed keeps the measurement near the warm
	// temperature.
	first := plant.Step(2000)
	if math.Abs(float64(first)-78.5) > 2 {
		t.Errorf("warm measurement = %v, want ~78.5", first)
	}
	// More fan, cooler — visible through the non-ideal chain after a
	// few periods.
	var cooled units.Celsius
	for i := 0; i < 10; i++ {
		cooled = plant.Step(6000)
	}
	if cooled >= first {
		t.Errorf("cooling did not register: %v -> %v", first, cooled)
	}
	plant.Reset()
	if again := plant.Step(2000); math.Abs(float64(again-first)) > 1e-9 {
		t.Errorf("reset not reproducible: %v vs %v", again, first)
	}
}

func TestPlantValidation(t *testing.T) {
	if _, err := NewPlant(Default(), 1.5, 2000, 30); err == nil {
		t.Error("bad utilization accepted")
	}
	if _, err := NewPlant(Default(), 0.5, 2000, 0.5); err == nil {
		t.Error("sub-tick fan period accepted")
	}
}

func TestHoldPolicy(t *testing.T) {
	p := HoldPolicy{Fan: 4200}
	cmd := p.Step(Observation{})
	if cmd.Fan != 4200 || cmd.Cap != 1 {
		t.Errorf("hold command = %+v", cmd)
	}
	if p.Name() != "hold" {
		t.Errorf("name = %q", p.Name())
	}
	p.Reset() // must not panic
}

func TestRunRecordPowerOnly(t *testing.T) {
	server, _ := NewPhysicalServer(Default())
	res, err := Run(server, RunConfig{
		Duration:    50,
		Workload:    workload.Constant{U: 0.5},
		Policy:      HoldPolicy{Fan: 2000},
		RecordPower: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Traces == nil {
		t.Fatal("RecordPower produced no traces")
	}
	if s := res.Traces.Get("total_power"); s == nil || s.Len() != 50 {
		t.Error("total_power series missing or wrong length")
	}
	if res.Traces.Get("junction") != nil {
		t.Error("full series recorded under power-only mode")
	}
}
