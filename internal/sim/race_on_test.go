//go:build race

package sim

// raceEnabled reports whether the race detector instruments this test
// binary; allocation-count assertions are skipped under it because the
// instrumentation perturbs escape analysis and allocation behavior.
const raceEnabled = true
