package sim

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"

	"repro/internal/units"
	"repro/internal/workload"
)

// batchJobs builds n independent jobs at distinct operating points: each
// holds a different fan speed over the noisy paper workload with its own
// seed, so every result differs and any cross-job interference shows.
func batchJobs(t testing.TB, n int) []Job {
	t.Helper()
	cfg := Default()
	cfg.Ambient = 30
	jobs := make([]Job, n)
	for i := 0; i < n; i++ {
		noisy, err := workload.NewNoisy(workload.PaperSquare(600), 0.04, cfg.Tick, int64(i+1))
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = Job{
			Name:   fmt.Sprintf("hold-%d", i),
			Server: Factory(cfg),
			Config: RunConfig{
				Duration: 900,
				Workload: noisy,
				Policy:   HoldPolicy{Fan: units.RPM(2000 + 500*i)},
			},
		}
	}
	return jobs
}

func TestRunBatchMatchesSequential(t *testing.T) {
	jobs := batchJobs(t, 6)

	// Sequential reference: fresh server per job, plain Run.
	want := make([]Metrics, len(jobs))
	for i, j := range jobs {
		server, err := j.Server()
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(server, j.Config)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = res.Metrics
	}

	for _, workers := range []int{1, 2, 4, 0} {
		results, err := RunBatch(batchJobs(t, 6), BatchOptions{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, res := range results {
			if res == nil {
				t.Fatalf("workers=%d: nil result %d", workers, i)
			}
			// Metrics is a struct of comparable scalars: require
			// bit-identical equality, not tolerance.
			if res.Metrics != want[i] {
				t.Errorf("workers=%d job %d: parallel metrics %+v != sequential %+v",
					workers, i, res.Metrics, want[i])
			}
		}
	}
}

func TestRunBatchDeterministicAcrossRuns(t *testing.T) {
	first, err := RunBatch(batchJobs(t, 5), BatchOptions{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		again, err := RunBatch(batchJobs(t, 5), BatchOptions{Workers: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := range first {
			if again[i].Metrics != first[i].Metrics {
				t.Fatalf("repeat %d job %d: metrics drifted: %+v != %+v",
					rep, i, again[i].Metrics, first[i].Metrics)
			}
		}
	}
}

// statefulPolicy is a minimal pointer policy for aliasing tests.
type statefulPolicy struct{ fan units.RPM }

func (p *statefulPolicy) Name() string             { return "stateful" }
func (p *statefulPolicy) Step(Observation) Command { return Command{Fan: p.fan, Cap: 1} }
func (p *statefulPolicy) Reset()                   {}

func TestRunBatchRejectsSharedPolicy(t *testing.T) {
	jobs := batchJobs(t, 2)
	shared := &statefulPolicy{fan: 3000}
	jobs[0].Config.Policy = shared
	jobs[1].Config.Policy = shared
	_, err := RunBatch(jobs, BatchOptions{})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("shared policy accepted: err = %v", err)
	}
	if be.Index != 1 {
		t.Errorf("error blames job %d, want 1", be.Index)
	}
}

func TestRunBatchAllowsEqualValuePolicies(t *testing.T) {
	jobs := batchJobs(t, 2)
	jobs[0].Config.Policy = HoldPolicy{Fan: 2000}
	jobs[1].Config.Policy = HoldPolicy{Fan: 2000} // equal value, not aliased state
	if _, err := RunBatch(jobs, BatchOptions{}); err != nil {
		t.Fatalf("equal value policies rejected: %v", err)
	}
}

func TestRunBatchPropagatesFirstErrorByIndex(t *testing.T) {
	jobs := batchJobs(t, 4)
	jobs[1].Config.Duration = -1 // invalid: Run will reject it
	jobs[3].Config.Workload = nil
	results, err := RunBatch(jobs, BatchOptions{Workers: 4})
	var be *BatchError
	if !errors.As(err, &be) {
		t.Fatalf("invalid job accepted: err = %v", err)
	}
	if be.Index != 1 {
		t.Errorf("first error reported for job %d, want 1 (lowest index)", be.Index)
	}
	if results[0] == nil || results[2] == nil {
		t.Error("healthy jobs should still have results")
	}
}

func TestRunBatchNilFactory(t *testing.T) {
	jobs := batchJobs(t, 2)
	jobs[0].Server = nil
	if _, err := RunBatch(jobs, BatchOptions{}); err == nil {
		t.Fatal("nil ServerFactory accepted")
	}
}

func TestRunBatchEmpty(t *testing.T) {
	results, err := RunBatch(nil, BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("empty batch returned %d results", len(results))
	}
}

func TestParallelForCoversEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 3, 8, 0} {
		const n = 100
		var counts [n]int32
		if err := ParallelFor(n, workers, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		}); err != nil {
			t.Fatal(err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForNegativeCount(t *testing.T) {
	if err := ParallelFor(-1, 2, func(int) {}); err == nil {
		t.Fatal("negative count accepted")
	}
}

func TestParallelForPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("worker panic not propagated")
		}
	}()
	_ = ParallelFor(8, 4, func(i int) {
		if i == 5 {
			panic("boom")
		}
	})
}

func TestSweepOrderStable(t *testing.T) {
	cfg := Default()
	results, err := Sweep(4, BatchOptions{Workers: 4}, func(i int) (Job, error) {
		return Job{
			Server: Factory(cfg),
			Config: RunConfig{
				Duration: 300,
				Workload: workload.Constant{U: 0.7},
				Policy:   HoldPolicy{Fan: units.RPM(1500 + 1000*i)},
			},
		}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Higher fan speed must map monotonically to lower mean junction —
	// results landed in sweep order.
	for i := 1; i < len(results); i++ {
		if results[i].Metrics.MeanJunction >= results[i-1].Metrics.MeanJunction {
			t.Errorf("sweep slot %d (%.2f C) not cooler than slot %d (%.2f C): order unstable?",
				i, float64(results[i].Metrics.MeanJunction),
				i-1, float64(results[i-1].Metrics.MeanJunction))
		}
	}
}
