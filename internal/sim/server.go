package sim

import (
	"fmt"

	"repro/internal/power"
	"repro/internal/sensor"
	"repro/internal/thermal"
	"repro/internal/units"
)

// PhysicalServer is the platform under management: the two-node thermal
// model, the power models, the slew-limited fan actuator, the hardware
// over-temperature throttle, and the non-ideal measurement chain between
// the die and the DTM firmware.
type PhysicalServer struct {
	cfg     Config
	therm   *thermal.Server
	cpu     power.CPUModel
	fan     power.FanModel
	pipe    *sensor.Pipeline
	fanCmd  units.RPM // last commanded speed
	fanAct  units.RPM // actual (slewed) speed
	cap     units.Utilization
	lastT   units.Seconds
	started bool
}

// NewPhysicalServer builds a server from the configuration. The fan starts
// at minimum speed, the cap fully open, both thermal nodes at ambient.
func NewPhysicalServer(cfg Config) (*PhysicalServer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	tp, err := cfg.thermalParams()
	if err != nil {
		return nil, err
	}
	th, err := thermal.NewServer(tp)
	if err != nil {
		return nil, err
	}
	cpu, fan, err := cfg.Models()
	if err != nil {
		return nil, err
	}
	pipe, err := sensor.New(cfg.Sensor)
	if err != nil {
		return nil, err
	}
	return &PhysicalServer{
		cfg:    cfg,
		therm:  th,
		cpu:    cpu,
		fan:    fan,
		pipe:   pipe,
		fanCmd: cfg.FanMinSpeed,
		fanAct: cfg.FanMinSpeed,
		cap:    1,
	}, nil
}

// Config returns the server configuration.
func (s *PhysicalServer) Config() Config { return s.cfg }

// Thermal exposes the underlying thermal model (read-mostly: experiments
// query steady-state helpers).
func (s *PhysicalServer) Thermal() *thermal.Server { return s.therm }

// CommandFan sets the fan speed command, clamped to the platform range.
// The physical speed slews toward it over subsequent ticks.
func (s *PhysicalServer) CommandFan(v units.RPM) {
	s.fanCmd = units.ClampRPM(v, s.cfg.FanMinSpeed, s.cfg.FanMaxSpeed)
}

// SetCap sets the CPU utilization cap, clamped to [0, 1].
func (s *PhysicalServer) SetCap(u units.Utilization) { s.cap = units.ClampUtil(u) }

// Cap returns the applied CPU cap.
func (s *PhysicalServer) Cap() units.Utilization { return s.cap }

// FanCommand returns the last commanded fan speed.
func (s *PhysicalServer) FanCommand() units.RPM { return s.fanCmd }

// FanActual returns the physical (slewed) fan speed.
func (s *PhysicalServer) FanActual() units.RPM { return s.fanAct }

// Junction returns the true die temperature (not visible to the policy).
func (s *PhysicalServer) Junction() units.Celsius { return s.therm.Junction() }

// TickResult reports what happened during one engine tick.
type TickResult struct {
	T           units.Seconds
	Demand      units.Utilization // workload requirement
	Delivered   units.Utilization // after cap and hardware throttle
	Violated    bool              // Delivered < Demand
	HWThrottled bool              // the TProtect clamp engaged
	Junction    units.Celsius     // true die temperature after the tick
	Measured    units.Celsius     // DTM-visible temperature after the tick
	FanActual   units.RPM
	FanCmd      units.RPM
	Cap         units.Utilization
	CPUPower    units.Watt // per socket
	FanPower    units.Watt // per socket
	TotalPower  units.Watt // all sockets
	FanEnergyJ  units.Joule
	CPUEnergyJ  units.Joule
}

// Tick advances the platform by one engine step under the given demanded
// utilization: slews the fan, computes delivered utilization under the cap
// and the hardware throttle, steps the thermal model, and samples the
// measurement chain. Time must advance by exactly cfg.Tick per call.
func (s *PhysicalServer) Tick(demand units.Utilization) TickResult {
	var out TickResult
	s.TickInto(demand, &out)
	return out
}

// TickInto is Tick writing into out instead of returning by value: the
// engine and lockstep loops tick millions of times per run, and the
// ~140-byte result copy is measurable there.
func (s *PhysicalServer) TickInto(demand units.Utilization, out *TickResult) {
	dt := s.cfg.Tick
	t := s.lastT
	if s.started {
		t += dt
	}
	s.lastT = t
	s.started = true

	// Fan slew toward the command.
	maxStep := units.RPM(float64(s.cfg.FanSlewPerSec) * float64(dt))
	switch d := s.fanCmd - s.fanAct; {
	case d > maxStep:
		s.fanAct += maxStep
	case d < -maxStep:
		s.fanAct -= maxStep
	default:
		s.fanAct = s.fanCmd
	}

	// Delivered utilization: the cap binds first; the hardware
	// protection binds harder if the die is over the limit.
	demand = units.ClampUtil(demand)
	delivered := demand
	if delivered > s.cap {
		delivered = s.cap
	}
	hw := false
	if s.therm.Junction() > s.cfg.TProtect && delivered > s.cfg.EmergencyCap {
		delivered = s.cfg.EmergencyCap
		hw = true
	}

	cpuP := s.cpu.Power(delivered)
	fanP := s.fan.Power(s.fanAct)
	s.therm.Step(cpuP, s.fanAct, dt)
	// Power-dependent measurement error (sensor.PlacementOffset) sees the
	// power dissipated during the tick it samples; ideal chains skip the
	// forwarding (NeedsPower is a cached slice-length check).
	if s.pipe.NeedsPower() {
		s.pipe.ObservePower(float64(cpuP))
	}
	meas := s.pipe.Sample(t, float64(s.therm.Junction()))

	*out = TickResult{
		T:           t,
		Demand:      demand,
		Delivered:   delivered,
		Violated:    delivered < demand-1e-9,
		HWThrottled: hw,
		Junction:    s.therm.Junction(),
		Measured:    units.Celsius(meas),
		FanActual:   s.fanAct,
		FanCmd:      s.fanCmd,
		Cap:         s.cap,
		CPUPower:    cpuP,
		FanPower:    fanP,
		TotalPower:  units.Watt(float64(s.cfg.NSockets)) * (cpuP + fanP),
		FanEnergyJ:  units.Joule(float64(fanP) * float64(dt) * float64(s.cfg.NSockets)),
		CPUEnergyJ:  units.Joule(float64(cpuP) * float64(dt) * float64(s.cfg.NSockets)),
	}
}

// ReplaceSensor swaps the measurement chain, e.g. to inject faults
// (sensor.StuckAt, sensor.Dropout) between the transducer and the DTM.
// It must be called before the run starts.
func (s *PhysicalServer) ReplaceSensor(p *sensor.Pipeline) error {
	if p == nil {
		return fmt.Errorf("sim: nil sensor pipeline")
	}
	if s.started {
		return fmt.Errorf("sim: sensor replaced mid-run")
	}
	s.pipe = p
	return nil
}

// SetAmbient re-homes the platform at a new inlet (ambient) temperature,
// revalidating the configuration at the new operating point. The fleet
// layer's warm rack instances call it between relaxation passes instead of
// rebuilding the server; the change applies from the next thermal step (a
// subsequent Reset or WarmStart re-initializes state against it).
func (s *PhysicalServer) SetAmbient(t units.Celsius) error {
	cfg := s.cfg
	cfg.Ambient = t
	if err := cfg.Validate(); err != nil {
		return err
	}
	s.cfg = cfg
	s.therm.SetAmbient(t)
	return nil
}

// Reset returns the platform to its initial state.
func (s *PhysicalServer) Reset() {
	s.therm.Reset()
	s.pipe.Reset()
	s.fanCmd = s.cfg.FanMinSpeed
	s.fanAct = s.cfg.FanMinSpeed
	s.cap = 1
	s.lastT = 0
	s.started = false
}

// WarmStart puts the platform into thermal steady state for the given
// load and fan speed, with the measurement chain primed to match. Fig. 3/4
// scenarios start from an operating point rather than a cold chassis.
func (s *PhysicalServer) WarmStart(u units.Utilization, v units.RPM) error {
	if u < 0 || u > 1 {
		return fmt.Errorf("sim: warm start utilization %v outside [0, 1]", u)
	}
	v = units.ClampRPM(v, s.cfg.FanMinSpeed, s.cfg.FanMaxSpeed)
	p := s.cpu.Power(u)
	sink := thermal.SteadyState(s.cfg.Ambient, s.cfg.HeatSinkLaw.Resistance(v), p)
	junc := thermal.SteadyState(sink, s.cfg.DieRes, p)
	s.therm.SetState(sink, junc)
	s.fanCmd, s.fanAct = v, v
	s.pipe.Reset()
	// The warm operating point has been dissipating p for a long time, so
	// power-dependent measurement error applies to the primed readings too.
	if s.pipe.NeedsPower() {
		s.pipe.ObservePower(float64(p))
	}
	// Prime the delay line so the policy sees the warm temperature, not
	// the initial-value placeholder, from t = 0.
	lag := float64(s.cfg.Sensor.LagSeconds)
	tick := float64(s.cfg.Tick)
	for i := 0; i <= int(lag/tick)+1; i++ {
		s.pipe.Sample(units.Seconds(float64(i)*tick-lag-tick), float64(junc))
	}
	return nil
}
