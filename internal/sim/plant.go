package sim

import (
	"fmt"

	"repro/internal/units"
)

// Plant adapts the physical server to the tuning.Plant interface: a
// fixed-utilization operating point where one Step holds a fan command
// for a full fan control period and returns the DTM-visible measurement.
// Tuning therefore sees exactly what the deployed controller will see —
// lag, quantization and all.
type Plant struct {
	server    *PhysicalServer
	util      units.Utilization
	fanPeriod units.Seconds
	warm      WarmPoint
}

// NewPlant builds a tuning plant at the given operating point. fanPeriod
// is the fan controller decision interval (Table I evaluation: 30 s); the
// plant warm-starts at the operating fan speed so the ultimate-gain search
// explores the neighbourhood the gains will serve.
func NewPlant(cfg Config, util units.Utilization, opSpeed units.RPM, fanPeriod units.Seconds) (*Plant, error) {
	if util < 0 || util > 1 {
		return nil, fmt.Errorf("sim: plant utilization %v outside [0, 1]", util)
	}
	if fanPeriod < cfg.Tick {
		return nil, fmt.Errorf("sim: fan period %v below tick %v", fanPeriod, cfg.Tick)
	}
	server, err := NewPhysicalServer(cfg)
	if err != nil {
		return nil, err
	}
	p := &Plant{
		server:    server,
		util:      util,
		fanPeriod: fanPeriod,
		warm:      WarmPoint{Util: util, Fan: opSpeed},
	}
	p.Reset()
	return p, nil
}

// Reset implements tuning.Plant.
func (p *Plant) Reset() {
	p.server.Reset()
	if err := p.server.WarmStart(p.warm.Util, p.warm.Fan); err != nil {
		panic(err) // validated at construction
	}
}

// Step implements tuning.Plant: hold the fan command for one fan control
// period at constant utilization, return the final measurement.
func (p *Plant) Step(s units.RPM) units.Celsius {
	p.server.CommandFan(s)
	p.server.SetCap(1)
	ticks := int(float64(p.fanPeriod) / float64(p.server.cfg.Tick))
	var last TickResult
	for i := 0; i < ticks; i++ {
		last = p.server.Tick(p.util)
	}
	return last.Measured
}

// ControlPeriod implements tuning.Plant.
func (p *Plant) ControlPeriod() units.Seconds { return p.fanPeriod }
