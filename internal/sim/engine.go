package sim

import (
	"fmt"

	"repro/internal/trace"
	"repro/internal/units"
	"repro/internal/workload"
)

// RunConfig describes one simulation run.
type RunConfig struct {
	Duration units.Seconds      // simulated horizon
	Workload workload.Generator // demanded utilization
	Policy   Policy             // DTM under test
	// Record enables full time-series capture (memory-heavy for long
	// runs; metrics are always computed).
	Record bool
	// RecordPower captures only the "total_power" series — what the
	// fleet layer's rack-power aggregation consumes — at an eighth of
	// Record's memory. Implied by Record.
	RecordPower bool
	// WarmStart, if non-nil, initializes the platform at thermal steady
	// state for the given operating point instead of a cold chassis.
	WarmStart *WarmPoint
}

// WarmPoint is a steady-state initial operating condition. The json tags
// mirror the field names: warm starts are hashed into scenario store keys
// (repolint: hashedfield).
type WarmPoint struct {
	Util units.Utilization `json:"Util"`
	Fan  units.RPM         `json:"Fan"`
}

// Metrics are the paper's evaluation quantities for one run.
type Metrics struct {
	Ticks          int
	ViolationFrac  float64     // Table III column 2 (fraction, not %)
	HWThrottleFrac float64     // fraction of ticks the 80 °C clamp engaged
	FanEnergy      units.Joule // Table III column 3 numerator
	CPUEnergy      units.Joule
	MaxJunction    units.Celsius
	MeanJunction   units.Celsius
	TimeAboveLimit units.Seconds
	MeanFanSpeed   units.RPM
	MeanDelivered  units.Utilization
	MeanDemand     units.Utilization
}

// Result bundles the metrics and (optionally) the recorded traces of a run.
type Result struct {
	Metrics Metrics
	// Traces: "demand", "delivered", "cap", "fan_cmd", "fan_actual",
	// "junction", "measured", "total_power". Nil unless RunConfig.Record
	// (all series) or RunConfig.RecordPower ("total_power" only).
	Traces *trace.Set
}

// Run executes one simulation.
func Run(server *PhysicalServer, rc RunConfig) (*Result, error) {
	if rc.Duration <= 0 {
		return nil, fmt.Errorf("sim: non-positive duration %v", rc.Duration)
	}
	if rc.Workload == nil {
		return nil, fmt.Errorf("sim: nil workload")
	}
	if rc.Policy == nil {
		return nil, fmt.Errorf("sim: nil policy")
	}
	server.Reset()
	rc.Policy.Reset()
	if rc.WarmStart != nil {
		if err := server.WarmStart(rc.WarmStart.Util, rc.WarmStart.Fan); err != nil {
			return nil, err
		}
	}

	var ts *trace.Set
	var sDemand, sDelivered, sCap, sFanCmd, sFanAct, sJunction, sMeasured, sPower *trace.Series
	if rc.Record || rc.RecordPower {
		ts = trace.NewSet()
		sPower = trace.NewSeries("total_power")
		if rc.Record {
			sDemand = trace.NewSeries("demand")
			sDelivered = trace.NewSeries("delivered")
			sCap = trace.NewSeries("cap")
			sFanCmd = trace.NewSeries("fan_cmd")
			sFanAct = trace.NewSeries("fan_actual")
			sJunction = trace.NewSeries("junction")
			sMeasured = trace.NewSeries("measured")
			for _, s := range []*trace.Series{sDemand, sDelivered, sCap, sFanCmd, sFanAct, sJunction, sMeasured} {
				ts.Add(s)
			}
		}
		ts.Add(sPower)
	}

	var m Metrics
	violations, hwThrottles := 0, 0
	var sumJunction, sumFan, sumDelivered, sumDemand float64
	prev := TickResult{Cap: 1, FanCmd: server.FanCommand(), FanActual: server.FanActual(), Measured: units.Celsius(server.cfg.Sensor.InitialValue)}
	if rc.WarmStart != nil {
		prev.Measured = server.Junction()
		prev.Cap = server.Cap()
	}
	nTicks := int(float64(rc.Duration) / float64(server.cfg.Tick))
	for k := 0; k < nTicks; k++ {
		t := units.Seconds(float64(k) * float64(server.cfg.Tick))
		demand := rc.Workload.At(t)
		cmd := rc.Policy.Step(Observation{
			T:         t,
			Measured:  prev.Measured,
			Demand:    demand,
			Delivered: prev.Delivered,
			Violated:  prev.Violated,
			FanCmd:    server.FanCommand(),
			FanActual: server.FanActual(),
			Cap:       server.Cap(),
		})
		server.CommandFan(cmd.Fan)
		server.SetCap(cmd.Cap)
		server.TickInto(demand, &prev)
		res := &prev

		if res.Violated {
			violations++
		}
		if res.HWThrottled {
			hwThrottles++
		}
		m.FanEnergy += res.FanEnergyJ
		m.CPUEnergy += res.CPUEnergyJ
		if res.Junction > m.MaxJunction {
			m.MaxJunction = res.Junction
		}
		if res.Junction > server.cfg.TLimit {
			m.TimeAboveLimit += server.cfg.Tick
		}
		sumJunction += float64(res.Junction)
		sumFan += float64(res.FanActual)
		sumDelivered += float64(res.Delivered)
		sumDemand += float64(res.Demand)

		if ts != nil {
			tf := float64(res.T)
			if rc.Record {
				sDemand.MustAppend(tf, float64(res.Demand))
				sDelivered.MustAppend(tf, float64(res.Delivered))
				sCap.MustAppend(tf, float64(res.Cap))
				sFanCmd.MustAppend(tf, float64(res.FanCmd))
				sFanAct.MustAppend(tf, float64(res.FanActual))
				sJunction.MustAppend(tf, float64(res.Junction))
				sMeasured.MustAppend(tf, float64(res.Measured))
			}
			sPower.MustAppend(tf, float64(res.TotalPower))
		}
	}

	m.Ticks = nTicks
	if nTicks > 0 {
		m.ViolationFrac = float64(violations) / float64(nTicks)
		m.HWThrottleFrac = float64(hwThrottles) / float64(nTicks)
		m.MeanJunction = units.Celsius(sumJunction / float64(nTicks))
		m.MeanFanSpeed = units.RPM(sumFan / float64(nTicks))
		m.MeanDelivered = units.Utilization(sumDelivered / float64(nTicks))
		m.MeanDemand = units.Utilization(sumDemand / float64(nTicks))
	}
	return &Result{Metrics: m, Traces: ts}, nil
}
