package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	// Pos locates the finding (resolve through the program's Fset).
	Pos token.Pos
	// Analyzer is the reporting analyzer's name (the suppression key).
	Analyzer string
	// Message states the violated contract.
	Message string
}

// Analyzer is one repo-specific check.
type Analyzer struct {
	// Name keys the analyzer in findings and //lint:ignore markers.
	Name string
	// Doc is the one-line contract the analyzer enforces.
	Doc string
	// Run reports the package's findings. Output order does not matter;
	// the driver sorts by position.
	Run func(p *Package) []Diagnostic
}

// All returns the full analyzer suite in a fixed order.
func All() []*Analyzer {
	return []*Analyzer{
		DetSource,
		MapOrder,
		AmbientRead,
		ScratchAlias,
		HashedField,
	}
}

// ignoreRe matches a suppression marker: //lint:ignore <analyzer> <reason>.
var ignoreRe = regexp.MustCompile(`^//lint:ignore\s+(\S+)(?:\s+(.*))?$`)

// suppressions maps file:line to the analyzer names silenced there. The
// special name "*" silences every analyzer. A marker covers its own line
// and the line immediately below, so it works both trailing the flagged
// statement and on the line above it.
type suppressions map[string]map[string]bool

// collectSuppressions scans a package's comments for markers. Markers
// missing the mandatory reason are returned as diagnostics — an
// unjustified suppression is itself a finding.
func collectSuppressions(p *Package) (suppressions, []Diagnostic) {
	sup := suppressions{}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				if strings.TrimSpace(m[2]) == "" {
					diags = append(diags, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "lint",
						Message:  fmt.Sprintf("suppression of %q without a reason — write //lint:ignore %s <why this is a false positive>", m[1], m[1]),
					})
					continue
				}
				pos := p.Fset.Position(c.Pos())
				for _, line := range []int{pos.Line, pos.Line + 1} {
					key := fmt.Sprintf("%s:%d", pos.Filename, line)
					if sup[key] == nil {
						sup[key] = map[string]bool{}
					}
					sup[key][m[1]] = true
				}
			}
		}
	}
	return sup, diags
}

// suppressed reports whether the diagnostic is silenced by a marker.
func (s suppressions) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	names := s[fmt.Sprintf("%s:%d", pos.Filename, pos.Line)]
	return names != nil && (names[d.Analyzer] || names["*"])
}

// RunPackage runs the analyzers over one package and returns the
// unsuppressed findings.
func RunPackage(p *Package, analyzers []*Analyzer) []Diagnostic {
	sup, diags := collectSuppressions(p)
	for _, a := range analyzers {
		for _, d := range a.Run(p) {
			if !sup.suppressed(p.Fset, d) {
				diags = append(diags, d)
			}
		}
	}
	SortDiagnostics(p.Fset, diags)
	return diags
}

// RunAll runs the analyzers over every package of the program. Findings
// are position-sorted and deduplicated (an analyzer reaching across
// packages, like hashedfield, may surface the same field twice).
func RunAll(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var all []Diagnostic
	for _, p := range prog.Packages {
		all = append(all, RunPackage(p, analyzers)...)
	}
	SortDiagnostics(prog.Fset, all)
	seen := map[string]bool{}
	out := all[:0]
	for _, d := range all {
		key := fmt.Sprintf("%s|%s|%s", prog.Fset.Position(d.Pos), d.Analyzer, d.Message)
		if seen[key] {
			continue
		}
		seen[key] = true
		out = append(out, d)
	}
	return out
}

// SortDiagnostics orders findings by file, line, column, analyzer.
func SortDiagnostics(fset *token.FileSet, diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := fset.Position(diags[i].Pos), fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
}

// lastElem returns the final element of an import path.
func lastElem(path string) string {
	if i := strings.LastIndex(path, "/"); i >= 0 {
		return path[i+1:]
	}
	return path
}

// funcBodies yields every function body in the file paired with its
// enclosing body list for statement-ordering checks: FuncDecl bodies and
// FuncLit bodies each exactly once.
func funcBodies(f *ast.File) []*ast.BlockStmt {
	var bodies []*ast.BlockStmt
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				bodies = append(bodies, n.Body)
			}
		case *ast.FuncLit:
			bodies = append(bodies, n.Body)
		}
		return true
	})
	return bodies
}
