package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// scratchField identifies one documented scratch-aliased slice field: the
// producing API overwrites the slice on the next call, so callers may
// read it immediately or copy it, never store it.
type scratchField struct {
	pkg, typ, field string
	api             string // the producing API, for the message
}

// scratchFields is the registry of scratch-reusing result fields. PR 2
// documented the multicore contract: Server.Tick reuses per-server
// buffers for TickResult.Junctions and TickResult.Measured. New
// scratch-returning APIs add a row here and inherit the whole check.
var scratchFields = []scratchField{
	{"multicore", "TickResult", "Junctions", "multicore.Server.Tick"},
	{"multicore", "TickResult", "Measured", "multicore.Server.Tick"},
}

// copySafeTarget is a result type documented as a reusable tick target
// (sim.PhysicalServer.TickInto overwrites its *TickResult in place every
// tick). Such a type must stay free of reference-typed exported fields —
// otherwise a retained copy of the struct would silently alias scratch —
// unless the field is explicitly registered in scratchFields, which makes
// the aliasing a documented contract the analyzer then polices at every
// call site.
type copySafeTarget struct {
	pkg, typ string
	api      string
}

var copySafeTargets = []copySafeTarget{
	{"sim", "TickResult", "sim.PhysicalServer.TickInto"},
	{"multicore", "TickResult", "multicore.Server.Tick"},
}

// ScratchAlias polices the scratch-reuse contracts on hot-path tick APIs:
// a scratch-aliased result slice (multicore.TickResult.Junctions/
// Measured) must not be stored anywhere that outlives the tick — struct
// fields, map or slice elements, composite literals, returns, channel
// sends, or appends — without an explicit copy (spread-append and copy()
// stay silent). It also keeps the reusable TickInto/Tick result structs
// copy-safe: adding a reference-typed field to them without registering
// it as scratch is itself a finding.
var ScratchAlias = &Analyzer{
	Name: "scratchalias",
	Doc:  "scratch-aliased tick results must not outlive the call without a copy",
	Run:  scratchAliasRun,
}

func scratchAliasRun(p *Package) []Diagnostic {
	diags := scratchCopySafe(p)
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for i, rhs := range n.Rhs {
					sf, ok := p.scratchSel(rhs)
					if !ok || len(n.Lhs) != len(n.Rhs) {
						continue
					}
					switch lhs := n.Lhs[i].(type) {
					case *ast.Ident:
						// Local alias for immediate reads: allowed.
					case *ast.SelectorExpr:
						diags = append(diags, scratchDiag(lhs, sf, "stored into a struct field"))
					case *ast.IndexExpr:
						diags = append(diags, scratchDiag(lhs, sf, "stored into a map/slice element"))
					default:
						diags = append(diags, scratchDiag(n, sf, "stored"))
					}
				}
			case *ast.CompositeLit:
				for _, elt := range n.Elts {
					v := elt
					if kv, ok := elt.(*ast.KeyValueExpr); ok {
						v = kv.Value
					}
					if sf, ok := p.scratchSel(v); ok {
						diags = append(diags, scratchDiag(v, sf, "captured in a composite literal"))
					}
				}
			case *ast.ReturnStmt:
				for _, res := range n.Results {
					if sf, ok := p.scratchSel(res); ok {
						diags = append(diags, scratchDiag(res, sf, "returned"))
					}
				}
			case *ast.SendStmt:
				if sf, ok := p.scratchSel(n.Value); ok {
					diags = append(diags, scratchDiag(n.Value, sf, "sent on a channel"))
				}
			case *ast.CallExpr:
				fun, ok := n.Fun.(*ast.Ident)
				if !ok || fun.Name != "append" {
					return true
				}
				if b, ok := p.Info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
					return true
				}
				if n.Ellipsis.IsValid() {
					return true // spread-append copies the elements
				}
				for _, arg := range n.Args[1:] {
					if sf, ok := p.scratchSel(arg); ok {
						diags = append(diags, scratchDiag(arg, sf, "appended to a slice"))
					}
				}
			}
			return true
		})
	}
	return diags
}

// scratchSel reports whether expr selects a registered scratch-aliased
// field.
func (p *Package) scratchSel(expr ast.Expr) (scratchField, bool) {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok {
		return scratchField{}, false
	}
	s := p.Info.Selections[sel]
	if s == nil || s.Kind() != types.FieldVal {
		return scratchField{}, false
	}
	for _, sf := range scratchFields {
		if sel.Sel.Name == sf.field && isNamed(s.Recv(), sf.pkg, sf.typ) {
			return sf, true
		}
	}
	return scratchField{}, false
}

func scratchDiag(n ast.Node, sf scratchField, how string) Diagnostic {
	return Diagnostic{
		Pos:      n.Pos(),
		Analyzer: "scratchalias",
		Message: fmt.Sprintf("%s.%s.%s aliases per-server scratch (%s overwrites it on the next call) and is %s, outliving the tick: copy it explicitly (append([]T(nil), s...) or copy)",
			sf.pkg, sf.typ, sf.field, sf.api, how),
	}
}

// scratchCopySafe checks, in the package that defines a copy-safe tick
// result type, that every exported field is either value-typed or a
// registered scratch field.
func scratchCopySafe(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, tgt := range copySafeTargets {
		if lastElem(p.Path) != tgt.pkg || p.Types == nil {
			continue
		}
		obj := p.Types.Scope().Lookup(tgt.typ)
		if obj == nil {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || !isRefType(f.Type()) {
				continue
			}
			registered := false
			for _, sf := range scratchFields {
				if sf.pkg == tgt.pkg && sf.typ == tgt.typ && sf.field == f.Name() {
					registered = true
				}
			}
			if registered {
				continue
			}
			diags = append(diags, Diagnostic{
				Pos:      f.Pos(),
				Analyzer: "scratchalias",
				Message: fmt.Sprintf("%s.%s is a reusable tick target (%s overwrites it in place), but field %s is reference-typed: a retained struct copy would alias scratch — register the field in internal/lint's scratchFields table and audit the call sites, or make it a value",
					tgt.pkg, tgt.typ, tgt.api, f.Name()),
			})
		}
	}
	return diags
}

// isRefType reports whether values of t share underlying storage when the
// struct holding them is copied.
func isRefType(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Slice, *types.Map, *types.Pointer, *types.Chan, *types.Signature:
		return true
	}
	return false
}
