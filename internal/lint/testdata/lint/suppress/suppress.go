// Package suppress seeds a malformed suppression marker: the reason is
// mandatory, so a bare marker is itself a finding.
package suppress

import "fmt"

func report(m map[string]int) {
	for k := range m {
		fmt.Println(k) //lint:ignore maporder
	}
}
