// Package sim is the scratchalias copy-safety twin: its path element is
// sim, so its TickResult is checked as a reusable TickInto target —
// reference-typed fields not registered in the scratch table are
// findings.
package sim

// TickResult mimics the real reusable tick target with an unregistered
// slice field smuggled in.
type TickResult struct {
	Demand    float64
	Delivered float64
	History   []float64 // want "field History is reference-typed"
	note      []byte    // unexported: callers cannot retain it
}

// Keep the unexported field referenced so it is not dead weight.
func (r *TickResult) noteLen() int { return len(r.note) }
