// Package caller seeds scratchalias violations against the real
// multicore types: TickResult.Junctions/Measured alias per-server
// scratch that Server.Tick overwrites on the next call.
package caller

import (
	"repro/internal/multicore"
	"repro/internal/units"
)

type recorder struct {
	last    []units.Celsius
	history [][]units.Celsius
	byTick  map[int][]units.Celsius
}

func (r *recorder) record(srv *multicore.Server, util []units.Utilization, tick int) ([]units.Celsius, error) {
	res, err := srv.Tick(util)
	if err != nil {
		return nil, err
	}
	r.last = res.Junctions                       // want "multicore.TickResult.Junctions aliases per-server scratch"
	r.byTick[tick] = res.Measured                // want "multicore.TickResult.Measured aliases per-server scratch"
	r.history = append(r.history, res.Junctions) // want "multicore.TickResult.Junctions aliases per-server scratch"
	return res.Measured, nil                     // want "multicore.TickResult.Measured aliases per-server scratch"
}

type snapshot struct {
	J []units.Celsius
}

func capture(srv *multicore.Server, util []units.Utilization) snapshot {
	res, _ := srv.Tick(util)
	return snapshot{J: res.Junctions} // want "multicore.TickResult.Junctions aliases per-server scratch"
}

func send(srv *multicore.Server, util []units.Utilization, ch chan []units.Celsius) {
	res, _ := srv.Tick(util)
	ch <- res.Junctions // want "multicore.TickResult.Junctions aliases per-server scratch"
}

// Immediate reads and explicit copies are the documented usage: silent.
func compliant(srv *multicore.Server, util []units.Utilization) (units.Celsius, []units.Celsius, []units.Celsius) {
	res, _ := srv.Tick(util)
	j := res.Junctions // local alias for immediate reads
	peak := j[0]
	for _, v := range j[1:] {
		if v > peak {
			peak = v
		}
	}
	kept := append([]units.Celsius(nil), res.Junctions...) // spread-append copies
	meas := make([]units.Celsius, len(res.Measured))
	copy(meas, res.Measured) // explicit copy
	return peak, kept, meas
}

// Suppression with a justified reason silences the finding.
type suppressedHolder struct {
	j []units.Celsius
}

func suppressedStore(srv *multicore.Server, util []units.Utilization, h *suppressedHolder) {
	res, _ := srv.Tick(util)
	//lint:ignore scratchalias testdata exercises the suppression path
	h.j = res.Junctions
}
