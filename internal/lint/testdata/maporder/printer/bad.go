// Package printer seeds maporder violations: map ranges feeding output,
// hashes, and unsorted slices.
package printer

import (
	"crypto/sha256"
	"fmt"
	"os"
)

// Printing inside a map range: table row order is random per run.
func printTable(metrics map[string]float64) {
	for name, v := range metrics {
		fmt.Printf("%-20s %8.3f\n", name, v) // want "order-sensitive call Printf inside range over map"
	}
}

// Hashing inside a map range: the digest differs run to run.
func hashValues(cells map[string][]byte) [32]byte {
	h := sha256.New()
	for _, b := range cells {
		h.Write(b) // want "order-sensitive call Write inside range over map"
	}
	var sum [32]byte
	copy(sum[:], h.Sum(nil))
	return sum
}

// Appending map values to an outer slice that is never sorted.
func collectValues(m map[string]int) []int {
	var out []int
	for _, v := range m {
		out = append(out, v) // want "append to out inside range over map"
	}
	return out
}

// Collecting the keys but forgetting the sort.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "map keys collected into keys but never sorted"
	}
	return keys
}

// Writing successive slice elements: element order is iteration order.
func fillSlice(m map[string]int) []string {
	out := make([]string, 0, len(m))
	i := 0
	for k := range m {
		out = out[:i+1]
		out[i] = k // want "indexed write inside range over map"
		i++
	}
	return out
}

// Suppression with a justified reason silences the finding.
func suppressedPrint(m map[string]int) {
	for k := range m {
		fmt.Fprintln(os.Stderr, k) //lint:ignore maporder testdata exercises the suppression path
	}
}

// Per-key map writes commute: no finding.
func invert(m map[string]int) map[int]string {
	inv := make(map[int]string, len(m))
	for k, v := range m {
		inv[v] = k
	}
	return inv
}

// Loop-local slices die with the iteration: no finding.
func localScratch(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var pair []int
		pair = append(pair, vs...)
		total += len(pair)
	}
	return total
}
