// Package sorted is the maporder true negative: the collect-then-sort
// idiom in both its key and struct forms, then ranging over the sorted
// slice (not the map) for output.
package sorted

import (
	"fmt"
	"sort"
)

// Keys collected and sorted before use: silent.
func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Printing over the sorted key slice is a slice range, not a map range.
func printSorted(m map[string]float64) {
	for _, k := range sortedKeys(m) {
		fmt.Printf("%s=%v\n", k, m[k])
	}
}

type entry struct {
	Name string
	V    float64
}

// Collecting structs works too, as long as the slice is sorted later in
// the same function (the registry list() idiom).
func sortedEntries(m map[string]float64) []entry {
	out := make([]entry, 0, len(m))
	for k, v := range m {
		out = append(out, entry{Name: k, V: v})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
