// Package trace is the detsource true negative: its import path element
// is not in the deterministic set, so wall-clock reads are fine here.
package trace

import "time"

func stamp() time.Time { return time.Now() }
