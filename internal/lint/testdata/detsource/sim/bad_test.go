package sim

import "time"

// Test files are exempt: they may time themselves.
func timedHelper() time.Duration {
	t0 := time.Now()
	return time.Since(t0)
}
