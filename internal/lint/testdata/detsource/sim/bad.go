// Package sim is a detsource testdata twin: its import path ends in
// /sim, so the analyzer treats it as a deterministic package.
package sim

import (
	"math/rand"
	"os"
	"time"
)

// Forbidden: wall clock, global rand, environment.
func badInputs() (int, string) {
	t0 := time.Now()                 // want "time.Now in deterministic package sim"
	_ = time.Since(t0)               // want "time.Since in deterministic package sim"
	n := rand.Intn(10)               // want "math/rand.Intn in deterministic package sim"
	_ = rand.Float64()               // want "math/rand.Float64 in deterministic package sim"
	home := os.Getenv("HOME")        // want "os.Getenv in deterministic package sim"
	_, _ = os.LookupEnv("REPRO_ENV") // want "os.LookupEnv in deterministic package sim"
	return n, home
}

// Allowed: explicit seeded generators and method calls on them.
func goodInputs(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}

// Suppression with a justified reason silences the finding.
func suppressed() time.Time {
	//lint:ignore detsource testdata exercises the suppression path
	return time.Now()
}
