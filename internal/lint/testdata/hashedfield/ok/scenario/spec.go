// Package scenario is the hashedfield true negative: every reachable
// exported field carries an explicit json name and FaultSpec is fully
// omitempty.
package scenario

type Spec struct {
	Kind   string             `json:"kind"`
	Base   *Platform          `json:"base,omitempty"`
	Jobs   []Job              `json:"jobs,omitempty"`
	Params map[string]float64 `json:"params,omitempty"`
	Hidden int                `json:"-"`
}

type Platform struct {
	Ambient float64 `json:"Ambient"`
	Tick    float64 `json:"Tick"`
}

type Job struct {
	Name   string     `json:"name"`
	Faults *FaultSpec `json:"faults,omitempty"`
}

type FaultSpec struct {
	Rate float64 `json:"rate,omitempty"`
	Seed int64   `json:"seed,omitempty"`
}
