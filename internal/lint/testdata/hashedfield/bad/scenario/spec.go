// Package scenario is the hashedfield violation twin: a mini Spec /
// FaultSpec pair with untagged and non-omitempty fields reachable from
// the store-identity hash.
package scenario

// Spec mimics the real root: reachable exported fields need explicit
// json names.
type Spec struct {
	Kind     string    `json:"kind"`
	Untagged float64   // want "Spec.Untagged is reachable from scenario.Spec's store-identity hash but has no explicit json name"
	Unnamed  float64   `json:",omitempty"` // want "Spec.Unnamed is reachable from scenario.Spec's store-identity hash but has no explicit json name"
	Base     *Platform `json:"base,omitempty"`
	Jobs     []Job     `json:"jobs,omitempty"`
	Skipped  int       `json:"-"`
	internal int
}

// Platform is reached through a pointer field.
type Platform struct {
	Ambient float64 `json:"Ambient"`
	Hidden  float64 // want "Platform.Hidden is reachable from scenario.Spec's store-identity hash but has no explicit json name"
}

// Job is reached through a slice field.
type Job struct {
	Name   string     `json:"name"`
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FaultSpec fields are all optional: omitempty is mandatory so zero
// values never perturb fault-free cells.
type FaultSpec struct {
	Rate    float64 `json:"rate"` // want "FaultSpec.Rate is an optional fault/param field hashed into store keys but lacks omitempty"
	Seed    int64   `json:"seed,omitempty"`
	NoTag   float64 // want "FaultSpec.NoTag is reachable from scenario.Spec's store-identity hash but has no explicit json name"
	Skipped int     `json:"-"`
}

func use() (Spec, int) {
	var s Spec
	return s, s.internal
}
