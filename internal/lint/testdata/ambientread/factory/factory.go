// Package factory seeds ambientread violations against the real sim and
// workload types: any function shaped like a workload factory (takes a
// sim.Config, returns a workload.Generator) must not touch cfg.Ambient.
package factory

import (
	"repro/internal/fleet"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// A named constructor reading the inlet temperature: the compiled demand
// schedule would bake in the first relaxation pass's inlet.
func badFactory(cfg sim.Config) (workload.Generator, error) {
	base := 0.4 + float64(cfg.Ambient)/100 // want "workload factory reads cfg.Ambient"
	return workload.Constant{U: units.Utilization(base)}, nil
}

// A factory closure in a fleet NodeSpec: same contract, same finding.
var node = fleet.NodeSpec{
	Workload: func(cfg sim.Config) (workload.Generator, error) {
		if cfg.Ambient > 30 { // want "workload factory reads cfg.Ambient"
			return workload.Constant{U: 0.2}, nil
		}
		return workload.Constant{U: 0.6}, nil
	},
}

// Reads of other config fields are fine (the Tick is needed by per-tick
// noise overlays).
func goodFactory(cfg sim.Config) (workload.Generator, error) {
	_ = cfg.Tick
	return workload.Constant{U: 0.5}, nil
}

// Policies are rebuilt every relaxation pass and may read the ambient:
// not a workload factory, no finding.
func goodPolicy(cfg sim.Config) (sim.Policy, error) {
	_ = cfg.Ambient
	return nil, nil
}

// Suppression with a justified reason silences the finding.
func suppressedFactory(cfg sim.Config) (workload.Generator, error) {
	//lint:ignore ambientread testdata exercises the suppression path
	_ = cfg.Ambient
	return workload.Constant{U: 0.5}, nil
}
