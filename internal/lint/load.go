// Package lint is the repository's custom static-analysis suite: a
// stdlib-only loader (go/parser + go/types, no module dependencies, so it
// works offline) plus the repo-specific analyzers that machine-check the
// contracts every layer leans on — deterministic packages take time and
// randomness explicitly (detsource), map iteration never shapes output or
// hashes (maporder), workload factories never read cfg.Ambient
// (ambientread), scratch-aliased tick results never outlive their tick
// (scratchalias), and every field reachable from the scenario store hash
// carries a deliberate JSON tag (hashedfield).
//
// The driver is cmd/repolint; `make lint` runs it over the module and
// exits non-zero on any finding. False positives are suppressed in place
// with a justified marker comment:
//
//	//lint:ignore <analyzer> <reason>
//
// which silences that analyzer on the same line and the line below it.
// A marker without a reason is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
)

// Package is one type-checked package of the module (or a standalone
// testdata package loaded via LoadDir).
type Package struct {
	// Path is the package's import path within the module.
	Path string
	// Name is the package clause name.
	Name string
	// Dir is the package's directory on disk.
	Dir string
	// Module is the module path the package belongs to (the prefix
	// analyzers use to tell first-party types from stdlib ones).
	Module string
	// Fset is the program-wide file set (positions are comparable across
	// packages).
	Fset *token.FileSet
	// Files are the parsed, build-tag-filtered source files.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// IsTestFile reports whether the position's file is a _test.go file.
func (p *Package) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Program is a loaded, type-checked module tree.
type Program struct {
	// ModulePath is the module path from go.mod.
	ModulePath string
	// Root is the module root directory.
	Root string
	// Fset is the shared file set.
	Fset *token.FileSet
	// Packages are the module's packages in dependency order. In-package
	// test files are type-checked together with their package; external
	// _test packages appear as separate entries (path suffixed "_test").
	Packages []*Package

	byPath map[string]*Package
	src    types.ImporterFrom
	ctx    build.Context
}

// moduleRe extracts the module path from go.mod.
var moduleRe = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Load parses and type-checks every package under the module rooted at
// root (the directory containing go.mod). Directories named testdata,
// vendor, or starting with "." or "_" are skipped. Build constraints are
// honored under the default build context, so mutually exclusive files
// (race_on/race_off) do not collide.
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modBytes, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %s is not a module root: %w", root, err)
	}
	m := moduleRe.FindSubmatch(modBytes)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	prog := &Program{
		ModulePath: string(m[1]),
		Root:       root,
		Fset:       token.NewFileSet(),
		byPath:     map[string]*Package{},
		ctx:        build.Default,
	}
	prog.src = importer.ForCompiler(prog.Fset, "source", nil).(types.ImporterFrom)

	var dirs []string
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		dirs = append(dirs, path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(dirs)

	// Parse every package directory into raw units (one per package
	// clause: the base package absorbs its in-package test files, an
	// external foo_test package becomes its own unit).
	type unit struct {
		path, name, dir string
		external        bool
		files           []*ast.File
		imports         map[string]bool // module-internal import paths
	}
	var units []*unit
	byUnitPath := map[string]*unit{}
	for _, dir := range dirs {
		groups, err := prog.parseDir(dir)
		if err != nil {
			return nil, err
		}
		for _, g := range groups {
			rel, _ := filepath.Rel(root, dir)
			path := prog.ModulePath
			if rel != "." {
				path += "/" + filepath.ToSlash(rel)
			}
			u := &unit{path: path, name: g.name, dir: dir, external: g.external, files: g.files, imports: map[string]bool{}}
			if g.external {
				// External test package: distinct unit that depends on
				// everything it imports (including its base package).
				u.path += "_test"
			}
			for _, f := range g.files {
				for _, imp := range f.Imports {
					ip := strings.Trim(imp.Path.Value, `"`)
					if ip == prog.ModulePath || strings.HasPrefix(ip, prog.ModulePath+"/") {
						u.imports[ip] = true
					}
				}
			}
			units = append(units, u)
			byUnitPath[u.path] = u
		}
	}

	// Topological order over module-internal imports.
	const (
		white = iota
		gray
		black
	)
	state := map[*unit]int{}
	var order []*unit
	var visit func(u *unit) error
	visit = func(u *unit) error {
		switch state[u] {
		case black:
			return nil
		case gray:
			return fmt.Errorf("lint: import cycle through %s", u.path)
		}
		state[u] = gray
		deps := make([]string, 0, len(u.imports))
		for ip := range u.imports {
			deps = append(deps, ip)
		}
		sort.Strings(deps)
		for _, ip := range deps {
			if dep, ok := byUnitPath[ip]; ok {
				if err := visit(dep); err != nil {
					return err
				}
			}
		}
		state[u] = black
		order = append(order, u)
		return nil
	}
	for _, u := range units {
		if err := visit(u); err != nil {
			return nil, err
		}
	}

	var errs []string
	for _, u := range order {
		pkg, err := prog.check(u.path, u.dir, u.files)
		if err != nil {
			errs = append(errs, err.Error())
		}
		prog.byPath[u.path] = pkg
		prog.Packages = append(prog.Packages, pkg)
	}
	if len(errs) > 0 {
		return prog, fmt.Errorf("lint: type errors:\n%s", strings.Join(errs, "\n"))
	}
	return prog, nil
}

// parsedGroup is one package clause's worth of files in a directory.
type parsedGroup struct {
	name     string
	external bool // foo_test package
	files    []*ast.File
}

// parseDir parses the build-matched .go files of dir, grouped by package
// clause. In-package test files land in the same group as the package.
func (prog *Program) parseDir(dir string) ([]*parsedGroup, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	groups := map[string]*parsedGroup{}
	var names []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		match, err := prog.ctx.MatchFile(dir, e.Name())
		if err != nil {
			return nil, fmt.Errorf("lint: %s/%s: %w", dir, e.Name(), err)
		}
		if !match {
			continue
		}
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		name := f.Name.Name
		g, ok := groups[name]
		if !ok {
			g = &parsedGroup{name: name, external: strings.HasSuffix(name, "_test")}
			groups[name] = g
			names = append(names, name)
		}
		g.files = append(g.files, f)
	}
	sort.Strings(names)
	out := make([]*parsedGroup, 0, len(names))
	for _, n := range names {
		out = append(out, groups[n])
	}
	return out, nil
}

// check type-checks one package's files.
func (prog *Program) check(path, dir string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []string
	conf := types.Config{
		Importer:    prog,
		FakeImportC: true,
		Error: func(err error) {
			errs = append(errs, err.Error())
		},
	}
	name := "?"
	if len(files) > 0 {
		name = files[0].Name.Name
	}
	tpkg, _ := conf.Check(path, prog.Fset, files, info)
	pkg := &Package{
		Path:   path,
		Name:   name,
		Dir:    dir,
		Module: prog.ModulePath,
		Fset:   prog.Fset,
		Files:  files,
		Types:  tpkg,
		Info:   info,
	}
	if len(errs) > 0 {
		return pkg, fmt.Errorf("%s:\n\t%s", path, strings.Join(errs, "\n\t"))
	}
	return pkg, nil
}

// Import implements types.Importer.
func (prog *Program) Import(path string) (*types.Package, error) {
	return prog.ImportFrom(path, prog.Root, 0)
}

// ImportFrom resolves module-internal imports from the loaded tree and
// everything else (the standard library) through the source importer.
func (prog *Program) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == prog.ModulePath || strings.HasPrefix(path, prog.ModulePath+"/") {
		if p, ok := prog.byPath[path]; ok && p.Types != nil {
			return p.Types, nil
		}
		return nil, fmt.Errorf("lint: module package %s not loaded (load order bug?)", path)
	}
	return prog.src.ImportFrom(path, dir, mode)
}

// LoadDir parses and type-checks one standalone directory (an analyzer
// testdata package) against the already-loaded program: its repro/...
// imports resolve to the module's packages. The synthesized import path
// is the module-relative path of dir, so analyzers keyed on path suffixes
// (detsource's deterministic-package set, hashedfield's scenario root)
// see testdata packages exactly as they would see the real ones.
func (prog *Program) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	groups, err := prog.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(groups) != 1 {
		return nil, fmt.Errorf("lint: %s holds %d packages, want exactly 1", dir, len(groups))
	}
	rel, err := filepath.Rel(prog.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module root %s", dir, prog.Root)
	}
	path := prog.ModulePath + "/" + filepath.ToSlash(rel)
	return prog.check(path, dir, groups[0].files)
}
