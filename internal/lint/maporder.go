package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// MapOrder guards the repo's canonical-output contract: Go randomizes map
// iteration order per run, so a `range` over a map must never shape
// anything order-sensitive — appended slices, printed tables, hashed or
// encoded bytes. The store keys (canonical JSON -> SHA-256) and every CLI
// table the ci.sh smokes diff byte-for-byte depend on this.
//
// Compliant patterns stay silent:
//   - collecting the keys into a slice that is sorted later in the same
//     function (the collect-then-sort idiom);
//   - ranging over an already-sorted key slice (not a map at all);
//   - writing dst[f(k)] = g(v) — per-key map writes commute.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc:  "range over a map must not feed output, hashing, or unsorted slices",
	Run:  mapOrderRun,
}

// sinkPrefixes match method/function names that emit into a stateful sink
// (writer, printer, encoder, hasher) where call order is the output order.
var sinkPrefixes = []string{"Print", "Fprint", "Write", "Encode", "Sum"}

func mapOrderRun(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, body := range funcBodies(f) {
			// Find the map ranges whose nearest enclosing function body is
			// this one (nested function literals are scanned as their own
			// bodies, so each range is examined exactly once).
			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					return n.Body == body
				case *ast.RangeStmt:
					if t := p.Info.TypeOf(n.X); t != nil {
						if _, ok := t.Underlying().(*types.Map); ok {
							diags = append(diags, p.checkMapRange(body, n)...)
						}
					}
				}
				return true
			})
		}
	}
	return diags
}

// rangeVarObjs resolves the range statement's key and value objects.
func (p *Package) rangeVarObjs(rs *ast.RangeStmt) (key, val types.Object) {
	resolve := func(e ast.Expr) types.Object {
		id, ok := e.(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		if o := p.Info.Defs[id]; o != nil {
			return o
		}
		return p.Info.Uses[id]
	}
	if rs.Key != nil {
		key = resolve(rs.Key)
	}
	if rs.Value != nil {
		val = resolve(rs.Value)
	}
	return key, val
}

// mentions reports whether expr references any of the given objects.
func (p *Package) mentions(expr ast.Expr, objs ...types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			o := p.Info.Uses[id]
			for _, want := range objs {
				if want != nil && o == want {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// declaredWithin reports whether the object's declaration lies inside the
// node's source range (i.e. the variable is loop-local).
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// checkMapRange inspects one map-range body for order-sensitive effects.
func (p *Package) checkMapRange(encBody *ast.BlockStmt, rs *ast.RangeStmt) []Diagnostic {
	keyObj, valObj := p.rangeVarObjs(rs)
	var diags []Diagnostic
	report := func(pos ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      pos.Pos(),
			Analyzer: "maporder",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "append" && len(n.Args) >= 1 {
					if obj, ok := p.Info.Uses[fun].(*types.Builtin); ok && obj.Name() == "append" {
						diags = append(diags, p.checkRangeAppend(encBody, rs, n, keyObj)...)
					}
				}
				if fun.Name == "print" || fun.Name == "println" {
					if _, ok := p.Info.Uses[fun].(*types.Builtin); ok {
						report(n, "builtin %s inside range over map: output order is map iteration order (random per run)", fun.Name)
					}
				}
			case *ast.SelectorExpr:
				name := fun.Sel.Name
				for _, pre := range sinkPrefixes {
					if strings.HasPrefix(name, pre) || name == "MustAppend" {
						report(n, "order-sensitive call %s inside range over map: printed/encoded/hashed order is map iteration order (random per run); sort the keys first", name)
						break
					}
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				ix, ok := lhs.(*ast.IndexExpr)
				if !ok {
					continue
				}
				if p.mentions(ix.Index, keyObj, valObj) {
					continue // per-key writes commute across iteration orders
				}
				report(ix, "indexed write inside range over map whose index does not depend on the key: element order follows map iteration order (random per run)")
			}
		}
		return true
	})
	return diags
}

// checkRangeAppend classifies an append inside a map-range body: appends
// into loop-local slices are invisible outside the iteration, the
// collect-keys idiom is fine when the slice is sorted later in the same
// function, and everything else bakes random iteration order into the
// slice.
func (p *Package) checkRangeAppend(encBody *ast.BlockStmt, rs *ast.RangeStmt, call *ast.CallExpr, keyObj types.Object) []Diagnostic {
	targetIdent, ok := call.Args[0].(*ast.Ident)
	if !ok {
		// Appending to a field/indexed slice: conservatively treat as
		// outer-lived.
		return []Diagnostic{{
			Pos:      call.Pos(),
			Analyzer: "maporder",
			Message:  "append inside range over map: element order is map iteration order (random per run); sort the keys first",
		}}
	}
	targetObj := p.Info.Uses[targetIdent]
	if targetObj == nil {
		targetObj = p.Info.Defs[targetIdent]
	}
	if declaredWithin(targetObj, rs.Body) {
		return nil // loop-local scratch, dies with the iteration
	}
	if p.sortedAfter(encBody, rs, targetObj) {
		return nil // collect-then-sort idiom
	}
	// Pure key collection: append(keys, k) with k the range key.
	if len(call.Args) == 2 && !call.Ellipsis.IsValid() {
		if arg, ok := call.Args[1].(*ast.Ident); ok && keyObj != nil && p.Info.Uses[arg] == keyObj {
			return []Diagnostic{{
				Pos:      call.Pos(),
				Analyzer: "maporder",
				Message:  fmt.Sprintf("map keys collected into %s but never sorted in this function: downstream order is map iteration order (random per run)", targetIdent.Name),
			}}
		}
	}
	return []Diagnostic{{
		Pos:      call.Pos(),
		Analyzer: "maporder",
		Message:  fmt.Sprintf("append to %s inside range over map: element order is map iteration order (random per run); sort the keys first", targetIdent.Name),
	}}
}

// sortedAfter reports whether, later in the enclosing function body, the
// slice object is passed to a sort/slices sorting call.
func (p *Package) sortedAfter(encBody *ast.BlockStmt, rs *ast.RangeStmt, slice types.Object) bool {
	if slice == nil {
		return false
	}
	found := false
	ast.Inspect(encBody, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgIdent, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := p.Info.Uses[pkgIdent].(*types.PkgName)
		if !ok {
			return true
		}
		if path := pn.Imported().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if p.mentions(arg, slice) {
				found = true
			}
		}
		return !found
	})
	return found
}
