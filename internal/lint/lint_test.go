package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

var (
	progOnce sync.Once
	prog     *Program
	progErr  error
)

// loadProgram loads and type-checks the whole module once per test
// binary (the source importer makes the first load a few seconds).
func loadProgram(t *testing.T) *Program {
	t.Helper()
	progOnce.Do(func() {
		prog, progErr = Load("../..")
	})
	if progErr != nil {
		t.Fatalf("loading module: %v", progErr)
	}
	return prog
}

// TestTreeClean is `make lint` as a test: the full analyzer suite over
// the real tree must be silent. Reverting any of this PR's tree fixes
// (the json tags on sim.Config / sensor.Config / thermal.HeatSinkLaw /
// sim.WarmPoint) makes this fail.
func TestTreeClean(t *testing.T) {
	p := loadProgram(t)
	diags := RunAll(p, All())
	for _, d := range diags {
		t.Errorf("%s: [%s] %s", p.Fset.Position(d.Pos), d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		t.Fatalf("%d finding(s) in the tree — run `make lint` for the list", len(diags))
	}
}

// TestLoaderCoverage sanity-checks that the loader saw the packages the
// analyzers guard (a silently-skipped package would make TestTreeClean
// vacuous).
func TestLoaderCoverage(t *testing.T) {
	p := loadProgram(t)
	got := map[string]bool{}
	for _, pkg := range p.Packages {
		got[pkg.Path] = true
	}
	for _, want := range []string{
		"repro/internal/sim",
		"repro/internal/thermal",
		"repro/internal/sensor",
		"repro/internal/scenario",
		"repro/internal/fleet",
		"repro/internal/multicore",
		"repro/internal/lint",
		"repro/internal/service",
		"repro/cmd/experiments",
		"repro/cmd/repolint",
		"repro/cmd/scenariod",
	} {
		if !got[want] {
			t.Errorf("loader missed package %s", want)
		}
	}
	if len(got) < 25 {
		t.Errorf("loader found only %d packages, expected the whole module", len(got))
	}
}

// TestDetSourceScoping pins the determinism boundary. The
// deterministic-package list is part of the repo's contract — adding a
// package there is a deliberate decision, and silently dropping one
// would make detsource vacuous — so the exact set is asserted here.
// internal/service sits outside the list on purpose (a daemon
// legitimately reads the wall clock): the loader must still see it, it
// must actually use the wall clock in non-test code (otherwise the
// exemption is untested decoration), and detsource must stay silent on
// it while the rest of the suite still applies.
func TestDetSourceScoping(t *testing.T) {
	wantDet := []string{
		"control", "coord", "core", "fleet", "multicore",
		"scenario", "sensor", "sim", "stats", "thermal", "workload",
	}
	got := make([]string, 0, len(deterministicPkgs))
	for name := range deterministicPkgs {
		got = append(got, name)
	}
	sort.Strings(got)
	if fmt.Sprint(got) != fmt.Sprint(wantDet) {
		t.Errorf("deterministic-package list drifted:\n got %v\nwant %v", got, wantDet)
	}
	if deterministicPkgs["service"] {
		t.Error("internal/service must stay exempt from detsource (it is a daemon, not a simulation layer)")
	}

	p := loadProgram(t)
	var svc *Package
	for _, pkg := range p.Packages {
		if pkg.Path == "repro/internal/service" {
			svc = pkg
		}
	}
	if svc == nil {
		t.Fatal("loader missed repro/internal/service — the exemption test is vacuous")
	}

	// The package genuinely uses the wall clock outside tests; if this
	// ever stops being true the exemption should be reconsidered.
	if !usesWallClock(svc) {
		t.Error("internal/service no longer reads the wall clock in non-test code; revisit its detsource exemption")
	}
	if diags := RunPackage(svc, []*Analyzer{DetSource}); len(diags) != 0 {
		t.Errorf("detsource flagged the exempt service package: %v", diags)
	}

	// The exemption is narrow: the rest of the suite still analyzes the
	// package (silence here means "analyzed and clean", and TestTreeClean
	// would catch regressions — this asserts the analyzers do run).
	if diags := RunPackage(svc, All()); len(diags) != 0 {
		t.Errorf("service package has non-detsource findings: %v", diags)
	}
}

// usesWallClock reports whether a package's non-test code calls
// time.Now (the same resolution logic detsource uses).
func usesWallClock(pkg *Package) bool {
	found := false
	for _, f := range pkg.Files {
		if pkg.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pkg.Info.Uses[ident].(*types.Func)
			if ok && fn.Pkg() != nil && fn.Pkg().Path() == "time" && fn.Name() == "Now" {
				found = true
			}
			return true
		})
	}
	return found
}

var wantRe = regexp.MustCompile(`// want "((?:[^"\\]|\\.)*)"`)

// TestAnalyzersOnTestdata drives every analyzer over its testdata
// packages and matches the findings against `// want "substring"`
// annotations: every want must be hit, every finding must be wanted, and
// suppressed or compliant code must stay silent.
func TestAnalyzersOnTestdata(t *testing.T) {
	p := loadProgram(t)
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	entries, err := os.ReadDir("testdata")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() || e.Name() == "lint" {
			continue
		}
		a, ok := byName[e.Name()]
		if !ok {
			t.Errorf("testdata/%s does not name an analyzer", e.Name())
			continue
		}
		for _, dir := range leafPackageDirs(t, filepath.Join("testdata", e.Name())) {
			t.Run(filepath.ToSlash(dir), func(t *testing.T) {
				pkg, err := p.LoadDir(dir)
				if err != nil {
					t.Fatalf("loading %s: %v", dir, err)
				}
				checkWants(t, pkg, RunPackage(pkg, []*Analyzer{a}))
			})
		}
	}
}

// TestSuppressionNeedsReason covers the malformed-marker path: a bare
// //lint:ignore without a reason does not suppress and is itself a
// finding.
func TestSuppressionNeedsReason(t *testing.T) {
	p := loadProgram(t)
	pkg, err := p.LoadDir(filepath.Join("testdata", "lint", "suppress"))
	if err != nil {
		t.Fatal(err)
	}
	diags := RunPackage(pkg, []*Analyzer{MapOrder})
	var kinds []string
	for _, d := range diags {
		kinds = append(kinds, d.Analyzer)
	}
	sort.Strings(kinds)
	if fmt.Sprint(kinds) != "[lint maporder]" {
		t.Fatalf("want one malformed-suppression finding and one unsuppressed maporder finding, got %v: %v", kinds, diags)
	}
	if !strings.Contains(diags[0].Message+diags[1].Message, "without a reason") {
		t.Errorf("missing malformed-suppression message in %v", diags)
	}
}

// leafPackageDirs returns the directories under root that directly
// contain .go files.
func leafPackageDirs(t *testing.T, root string) []string {
	t.Helper()
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// checkWants compares findings against the package's want annotations
// line by line.
func checkWants(t *testing.T, pkg *Package, diags []Diagnostic) {
	t.Helper()
	wants := map[string][]string{} // file:line -> expected substrings
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
					pos := pkg.Fset.Position(c.Pos())
					key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
					wants[key] = append(wants[key], m[1])
				}
			}
		}
	}
	got := map[string][]string{}
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		key := fmt.Sprintf("%s:%d", pos.Filename, pos.Line)
		got[key] = append(got[key], fmt.Sprintf("[%s] %s", d.Analyzer, d.Message))
	}
	keys := map[string]bool{}
	for k := range wants {
		keys[k] = true
	}
	for k := range got {
		keys[k] = true
	}
	sorted := make([]string, 0, len(keys))
	for k := range keys {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		w, g := wants[k], got[k]
		if len(w) != len(g) {
			t.Errorf("%s: want %d finding(s) %v, got %d: %v", k, len(w), w, len(g), g)
			continue
		}
		used := make([]bool, len(g))
		for _, sub := range w {
			matched := false
			for i, msg := range g {
				if !used[i] && strings.Contains(msg, sub) {
					used[i] = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: no finding matches want %q (got %v)", k, sub, g)
			}
		}
	}
}
