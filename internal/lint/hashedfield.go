package lint

import (
	"fmt"
	"go/types"
	"reflect"
	"strings"
)

// HashedField guards the store-key contract: a scenario's content address
// is the SHA-256 of its canonical JSON, so every exported struct field
// reachable from scenario.Spec (and FaultSpec) is part of the hash
// whether its author thought about it or not. Requiring an explicit json
// tag on each such field turns "added a field" from a silent key-splitter
// (or a silent non-splitter, when the field should have split cells but
// was shadowed) into a deliberate, reviewed serialization decision.
// Fields of the FaultSpec root must additionally carry omitempty: every
// fault stage is optional, and a non-omitempty zero field would perturb
// the canonical JSON of every fault-free spec in every existing store.
var HashedField = &Analyzer{
	Name: "hashedfield",
	Doc:  "fields reachable from scenario.Spec/FaultSpec need explicit json tags (omitempty on FaultSpec)",
	Run:  hashedFieldRun,
}

// hashedRoots are the hashed type roots, looked up in any package whose
// import path ends in /scenario. requireOmitempty marks roots whose
// fields are all optional.
// FaultSpec is listed first so its omitempty requirement wins over the
// plain visit it would otherwise get when Spec's traversal reaches it.
var hashedRoots = []struct {
	name             string
	requireOmitempty bool
}{
	{"FaultSpec", true},
	{"Spec", false},
}

func hashedFieldRun(p *Package) []Diagnostic {
	if lastElem(p.Path) != "scenario" || p.Types == nil {
		return nil
	}
	var diags []Diagnostic
	seen := map[*types.Named]bool{}
	var visit func(named *types.Named, omitempty bool)
	visit = func(named *types.Named, omitempty bool) {
		if named == nil || seen[named] {
			return
		}
		seen[named] = true
		obj := named.Obj()
		// Only first-party structs are fixable; a stdlib type reached from
		// the hash would be flagged at the field that introduced it.
		if obj.Pkg() == nil || !strings.HasPrefix(obj.Pkg().Path()+"/", p.Module+"/") {
			return
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			return
		}
		owner := fmt.Sprintf("%s.%s", lastElem(obj.Pkg().Path()), obj.Name())
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue // encoding/json skips unexported fields
			}
			tag, hasTag := reflect.StructTag(st.Tag(i)).Lookup("json")
			name, opts, _ := strings.Cut(tag, ",")
			switch {
			case !hasTag || name == "":
				diags = append(diags, Diagnostic{
					Pos:      f.Pos(),
					Analyzer: "hashedfield",
					Message: fmt.Sprintf("%s.%s is reachable from scenario.Spec's store-identity hash but has no explicit json name: tag it (json:\"...\") so renames and additions split store keys deliberately, never silently",
						owner, f.Name()),
				})
			case name != "-" && omitempty && !strings.Contains(","+opts+",", ",omitempty,"):
				diags = append(diags, Diagnostic{
					Pos:      f.Pos(),
					Analyzer: "hashedfield",
					Message: fmt.Sprintf("%s.%s is an optional fault/param field hashed into store keys but lacks omitempty: its zero value would perturb the canonical JSON of every existing fault-free cell",
						owner, f.Name()),
				})
			}
			if name != "-" {
				visitType(f.Type(), omitempty, visit)
			}
		}
	}
	for _, root := range hashedRoots {
		obj := p.Types.Scope().Lookup(root.name)
		if obj == nil {
			continue
		}
		if named, ok := obj.Type().(*types.Named); ok {
			visit(named, root.requireOmitempty)
		}
	}
	SortDiagnostics(p.Fset, diags)
	return diags
}

// visitType recurses through the serializable structure of t, invoking
// visit on every named type encountered.
func visitType(t types.Type, omitempty bool, visit func(*types.Named, bool)) {
	switch t := t.(type) {
	case *types.Named:
		visit(t, omitempty)
	case *types.Pointer:
		visitType(t.Elem(), omitempty, visit)
	case *types.Slice:
		visitType(t.Elem(), false, visit)
	case *types.Array:
		visitType(t.Elem(), false, visit)
	case *types.Map:
		visitType(t.Key(), false, visit)
		visitType(t.Elem(), false, visit)
	}
}
