package lint

import (
	"fmt"
	"go/ast"
	"go/types"
)

// deterministicPkgs names the packages (by final import-path element)
// whose results must be bit-reproducible from their inputs: seeds, time
// and environment flow in explicitly or not at all. This is the property
// every equivalence test in the repo (parallel ≡ sequential, warm ≡ cold,
// store hit ≡ fresh run) silently assumes.
var deterministicPkgs = map[string]bool{
	"sim":       true,
	"thermal":   true,
	"sensor":    true,
	"control":   true,
	"core":      true,
	"coord":     true,
	"fleet":     true,
	"multicore": true,
	"scenario":  true,
	"workload":  true,
	"stats":     true,
}

// randConstructors are the math/rand entry points that build an explicit,
// seedable generator — allowed; everything else at package level draws
// from the global source and is forbidden.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"NewZipf":    true,
}

// envReads are the os functions that read ambient process state.
var envReads = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
}

// DetSource forbids nondeterministic inputs — wall-clock reads, the
// global math/rand source, environment variables — inside the
// deterministic simulation packages. Test files are exempt (they may
// time themselves); production code must thread seeds and clocks
// explicitly.
var DetSource = &Analyzer{
	Name: "detsource",
	Doc:  "deterministic packages must not read wall clock, global rand, or environment",
	Run:  detSourceRun,
}

func detSourceRun(p *Package) []Diagnostic {
	if !deterministicPkgs[lastElem(p.Path)] {
		return nil
	}
	var diags []Diagnostic
	for _, f := range p.Files {
		if p.IsTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			ident, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[ident].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods (e.g. (*rand.Rand).Intn) are explicit state
			}
			pkgPath, name := fn.Pkg().Path(), fn.Name()
			var why string
			switch {
			case pkgPath == "time" && (name == "Now" || name == "Since"):
				why = "reads the wall clock; simulated time must come from the engine tick"
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !randConstructors[name]:
				why = "draws from the global rand source; build an explicit seeded generator (stats.NewRand / rand.New)"
			case pkgPath == "os" && envReads[name]:
				why = "reads the process environment; configuration must arrive through explicit parameters"
			default:
				return true
			}
			diags = append(diags, Diagnostic{
				Pos:      ident.Pos(),
				Analyzer: "detsource",
				Message:  fmt.Sprintf("%s.%s in deterministic package %s: %s", pkgPath, name, lastElem(p.Path), why),
			})
			return true
		})
	}
	return diags
}
