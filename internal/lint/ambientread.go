package lint

import (
	"go/ast"
	"go/types"
)

// AmbientRead enforces the PR 3 workload-factory contract, documented on
// fleet.WorkloadFactory and scenario.WorkloadFactory: demand is exogenous
// to the machine room, and the fleet layer invokes each factory exactly
// once per Run (at the node's position inlet) before reusing the compiled
// demand schedule across every recirculation relaxation pass and
// coordinator round. A factory that reads cfg.Ambient would silently bake
// the first pass's inlet into all later passes — the exact class of bug
// the warm-lockstep equivalence tests exist to catch, found here at
// compile time instead.
//
// The check is structural, so it covers named constructors, registry
// factories and inline closures alike: any function that takes a
// sim.Config and returns a workload.Generator must not read (or write)
// the config's Ambient field anywhere in its body, including generator
// closures it returns.
var AmbientRead = &Analyzer{
	Name: "ambientread",
	Doc:  "workload factories must not read cfg.Ambient (demand is exogenous)",
	Run:  ambientReadRun,
}

func ambientReadRun(p *Package) []Diagnostic {
	var diags []Diagnostic
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var ftype types.Type
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body == nil {
					return true
				}
				body = n.Body
				if obj := p.Info.Defs[n.Name]; obj != nil {
					ftype = obj.Type()
				}
			case *ast.FuncLit:
				body = n.Body
				ftype = p.Info.TypeOf(n)
			default:
				return true
			}
			sig, ok := ftype.(*types.Signature)
			if !ok || !isWorkloadFactorySig(sig) {
				return true
			}
			ast.Inspect(body, func(m ast.Node) bool {
				sel, ok := m.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s := p.Info.Selections[sel]
				if s == nil || s.Kind() != types.FieldVal || sel.Sel.Name != "Ambient" {
					return true
				}
				if !isNamed(s.Recv(), "sim", "Config") {
					return true
				}
				diags = append(diags, Diagnostic{
					Pos:      sel.Sel.Pos(),
					Analyzer: "ambientread",
					Message: "workload factory reads cfg.Ambient: generators are compiled once per fleet Run " +
						"and reused across relaxation passes, so demand must not depend on the inlet temperature " +
						"(see the fleet.WorkloadFactory contract)",
				})
				return true
			})
			// Nested literals inside this factory were already scanned by
			// the inner inspect; do not double-report them when the outer
			// walk reaches them (they rarely re-match the signature, but a
			// generator-returning helper closure can).
			return false
		})
	}
	return diags
}

// isWorkloadFactorySig reports whether the signature takes a sim.Config
// (first parameter, by value or pointer) and returns a workload.Generator
// among its results — the structural shape of every workload constructor
// in the repo (fleet.WorkloadFactory, scenario.WorkloadFactory, and the
// named helpers behind them).
func isWorkloadFactorySig(sig *types.Signature) bool {
	if sig.Params().Len() == 0 {
		return false
	}
	if !isNamed(sig.Params().At(0).Type(), "sim", "Config") {
		return false
	}
	for i := 0; i < sig.Results().Len(); i++ {
		if isNamed(sig.Results().At(i).Type(), "workload", "Generator") {
			return true
		}
	}
	return false
}

// isNamed reports whether t (after pointer indirection) is the named type
// pkgLastElem.name. Matching on the import path's final element keeps the
// predicate true for the real packages and for analyzer testdata twins
// alike.
func isNamed(t types.Type, pkgLastElem, name string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil &&
		obj.Name() == name && lastElem(obj.Pkg().Path()) == pkgLastElem
}
