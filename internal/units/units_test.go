package units

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCelsiusKelvinRoundTrip(t *testing.T) {
	cases := []Celsius{-273.15, -40, 0, 25, 80, 125}
	for _, c := range cases {
		if got := c.Kelvin().Celsius(); math.Abs(float64(got-c)) > 1e-12 {
			t.Errorf("round trip %v -> %v", c, got)
		}
	}
}

func TestCelsiusKelvinOffset(t *testing.T) {
	if got := Celsius(0).Kelvin(); got != 273.15 {
		t.Fatalf("0C = %v K, want 273.15", got)
	}
	if got := Kelvin(373.15).Celsius(); math.Abs(float64(got-100)) > 1e-12 {
		t.Fatalf("373.15K = %v C, want 100", got)
	}
}

func TestClamp(t *testing.T) {
	tests := []struct {
		v, lo, hi, want float64
	}{
		{5, 0, 10, 5},
		{-5, 0, 10, 0},
		{15, 0, 10, 10},
		{0, 0, 10, 0},
		{10, 0, 10, 10},
		{7, 7, 7, 7},
	}
	for _, tt := range tests {
		if got := Clamp(tt.v, tt.lo, tt.hi); got != tt.want {
			t.Errorf("Clamp(%v, %v, %v) = %v, want %v", tt.v, tt.lo, tt.hi, got, tt.want)
		}
	}
}

func TestClampPanicsOnReversedInterval(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Clamp(0, 10, 0) did not panic")
		}
	}()
	Clamp(0, 10, 0)
}

func TestClampPropertyInRange(t *testing.T) {
	f := func(v, a, b float64) bool {
		if !IsFinite(v) || !IsFinite(a) || !IsFinite(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		got := Clamp(v, lo, hi)
		return got >= lo && got <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampPropertyIdempotent(t *testing.T) {
	f := func(v, a, b float64) bool {
		if !IsFinite(v) || !IsFinite(a) || !IsFinite(b) {
			return true
		}
		lo, hi := math.Min(a, b), math.Max(a, b)
		once := Clamp(v, lo, hi)
		return Clamp(once, lo, hi) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestClampRPM(t *testing.T) {
	if got := ClampRPM(500, 1000, 8500); got != 1000 {
		t.Errorf("ClampRPM(500) = %v, want 1000", got)
	}
	if got := ClampRPM(9000, 1000, 8500); got != 8500 {
		t.Errorf("ClampRPM(9000) = %v, want 8500", got)
	}
}

func TestClampUtil(t *testing.T) {
	if got := ClampUtil(-0.5); got != 0 {
		t.Errorf("ClampUtil(-0.5) = %v", got)
	}
	if got := ClampUtil(1.5); got != 1 {
		t.Errorf("ClampUtil(1.5) = %v", got)
	}
	if got := ClampUtil(0.42); got != 0.42 {
		t.Errorf("ClampUtil(0.42) = %v", got)
	}
}

func TestLerpEndpoints(t *testing.T) {
	if Lerp(2, 10, 0) != 2 {
		t.Error("Lerp t=0 is not a")
	}
	if Lerp(2, 10, 1) != 10 {
		t.Error("Lerp t=1 is not b")
	}
	if Lerp(2, 10, 0.5) != 6 {
		t.Error("Lerp midpoint wrong")
	}
}

func TestInvLerpInvertsLerp(t *testing.T) {
	f := func(a, b, tt float64) bool {
		if !IsFinite(a) || !IsFinite(b) || !IsFinite(tt) {
			return true
		}
		// Keep magnitudes modest so floating point error stays bounded.
		a = math.Mod(a, 1e6)
		b = math.Mod(b, 1e6)
		tt = math.Mod(tt, 4)
		if math.Abs(a-b) < 1e-6 {
			return true
		}
		v := Lerp(a, b, tt)
		got := InvLerp(a, b, v)
		return math.Abs(got-tt) < 1e-6*(1+math.Abs(tt))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestInvLerpPanicsOnDegenerate(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("InvLerp(3, 3, 5) did not panic")
		}
	}()
	InvLerp(3, 3, 5)
}

func TestIsFinite(t *testing.T) {
	if IsFinite(math.NaN()) {
		t.Error("NaN is finite")
	}
	if IsFinite(math.Inf(1)) || IsFinite(math.Inf(-1)) {
		t.Error("Inf is finite")
	}
	if !IsFinite(0) || !IsFinite(-1e308) {
		t.Error("finite values rejected")
	}
}

func TestStringFormats(t *testing.T) {
	tests := []struct {
		got, want string
	}{
		{Celsius(74.95).String(), "75.0°C"},
		{RPM(8500).String(), "8500rpm"},
		{Watt(29.4).String(), "29.40W"},
		{Joule(12.34).String(), "12.3J"},
		{Utilization(0.7).String(), "70.0%"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("String() = %q, want %q", tt.got, tt.want)
		}
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(1.0, 1.0+1e-9, 1e-6) {
		t.Error("close values not approx equal")
	}
	if ApproxEqual(1.0, 1.1, 1e-6) {
		t.Error("distant values approx equal")
	}
}
