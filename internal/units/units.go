// Package units defines the physical quantity types shared by the thermal,
// power, sensing and control packages, together with small numeric helpers
// (clamping, linear interpolation) that keep unit handling explicit at
// package boundaries.
//
// All quantities are plain float64 named types: they exist for documentation
// and API clarity, not dimensional analysis. Conversions are explicit.
package units

import (
	"fmt"
	"math"
)

// Celsius is a temperature in degrees Celsius.
type Celsius float64

// Kelvin is an absolute temperature in kelvins.
type Kelvin float64

// RPM is a rotational fan speed in revolutions per minute.
type RPM float64

// Watt is a power in watts.
type Watt float64

// Joule is an energy in joules.
type Joule float64

// Seconds is a duration in seconds. The simulator uses raw seconds rather
// than time.Duration because all arithmetic is on the simulated clock.
type Seconds float64

// KPerW is a thermal resistance in kelvins per watt.
type KPerW float64

// JPerK is a thermal capacitance in joules per kelvin.
type JPerK float64

// Utilization is a CPU utilization fraction in [0, 1].
type Utilization float64

// CelsiusZeroInKelvin is the offset between the Celsius and Kelvin scales.
const CelsiusZeroInKelvin Kelvin = 273.15

// Kelvin converts a Celsius temperature to kelvins.
func (c Celsius) Kelvin() Kelvin { return Kelvin(c) + CelsiusZeroInKelvin }

// Celsius converts an absolute temperature to degrees Celsius.
func (k Kelvin) Celsius() Celsius { return Celsius(k - CelsiusZeroInKelvin) }

// String implements fmt.Stringer with one decimal place.
func (c Celsius) String() string { return fmt.Sprintf("%.1f°C", float64(c)) }

// String implements fmt.Stringer.
func (r RPM) String() string { return fmt.Sprintf("%.0frpm", float64(r)) }

// String implements fmt.Stringer with two decimal places.
func (w Watt) String() string { return fmt.Sprintf("%.2fW", float64(w)) }

// String implements fmt.Stringer with one decimal place.
func (j Joule) String() string { return fmt.Sprintf("%.1fJ", float64(j)) }

// String implements fmt.Stringer as a percentage.
func (u Utilization) String() string { return fmt.Sprintf("%.1f%%", float64(u)*100) }

// Clamp limits v to the closed interval [lo, hi]. It panics if lo > hi,
// because a reversed interval is always a programming error at the call
// site, never a data condition.
func Clamp(v, lo, hi float64) float64 {
	if lo > hi {
		panic(fmt.Sprintf("units.Clamp: reversed interval [%g, %g]", lo, hi))
	}
	switch {
	case v < lo:
		return lo
	case v > hi:
		return hi
	default:
		return v
	}
}

// ClampRPM limits a fan speed to [lo, hi].
func ClampRPM(v, lo, hi RPM) RPM {
	return RPM(Clamp(float64(v), float64(lo), float64(hi)))
}

// ClampUtil limits a utilization to [0, 1].
func ClampUtil(u Utilization) Utilization {
	return Utilization(Clamp(float64(u), 0, 1))
}

// Lerp linearly interpolates between a and b: Lerp(a, b, 0) == a,
// Lerp(a, b, 1) == b. t outside [0, 1] extrapolates.
func Lerp(a, b, t float64) float64 { return a + (b-a)*t }

// InvLerp returns the parameter t such that Lerp(a, b, t) == v.
// It panics if a == b, where the parameter is undefined.
func InvLerp(a, b, v float64) float64 {
	if a == b {
		panic("units.InvLerp: degenerate interval")
	}
	return (v - a) / (b - a)
}

// ApproxEqual reports whether a and b differ by at most tol.
func ApproxEqual(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// IsFinite reports whether v is neither NaN nor infinite. The simulator
// validates every externally supplied parameter with it.
func IsFinite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }
