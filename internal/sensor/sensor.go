// Package sensor models the non-ideal temperature measurement chain of
// Sec. I and III-A: the physical transducer value passes through additive
// noise, an 8-bit ADC quantizer, and an I2C transport that delays every
// sample by ~10 s before the DTM firmware sees it. The package also models
// bus bandwidth contention, reproducing the paper's observation that the
// lag worsens as server generations add sensors.
//
// Stages compose through the Stage interface; Pipeline chains them. All
// stages are driven on the simulator's clock (Sample(t, v)), never the wall
// clock.
package sensor

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/units"
)

// Stage transforms one sample of a measured signal at simulation time t.
type Stage interface {
	// Sample pushes the physical value v at time t through the stage and
	// returns the stage output as visible at time t.
	Sample(t units.Seconds, v float64) float64
	// Reset clears stage state.
	Reset()
}

// Quantizer is a mid-tread uniform ADC quantizer: an n-bit converter over
// [Min, Max] rounds to the nearest of 2^n levels. With the paper's 8-bit
// converter over 0..255 °C the step is exactly 1 °C.
type Quantizer struct {
	Min, Max float64
	step     float64
	levels   int
}

// NewQuantizer builds an n-bit quantizer over [min, max].
func NewQuantizer(bits int, min, max float64) (*Quantizer, error) {
	if bits < 1 || bits > 32 {
		return nil, fmt.Errorf("sensor: bits %d outside [1, 32]", bits)
	}
	if max <= min {
		return nil, fmt.Errorf("sensor: bad quantizer range [%v, %v]", min, max)
	}
	levels := 1 << uint(bits)
	return &Quantizer{
		Min:    min,
		Max:    max,
		step:   (max - min) / float64(levels-1),
		levels: levels,
	}, nil
}

// TableIQuantizer returns the paper's measurement quantizer: an 8-bit ADC
// spanning 0..255 °C, i.e. a 1 °C step.
func TableIQuantizer() *Quantizer {
	q, err := NewQuantizer(8, 0, 255)
	if err != nil {
		panic(err) // constants are valid by construction
	}
	return q
}

// Step returns the quantization step size |T_Q|.
func (q *Quantizer) Step() float64 { return q.step }

// Sample implements Stage: round to the nearest level, clamped to range.
func (q *Quantizer) Sample(_ units.Seconds, v float64) float64 {
	v = units.Clamp(v, q.Min, q.Max)
	k := math.Round((v - q.Min) / q.step)
	return q.Min + k*q.step
}

// Reset implements Stage (the quantizer is stateless).
func (q *Quantizer) Reset() {}

// DelayLine is a pure transport delay: the value visible at time t is the
// newest sample taken at or before t - Delay. It models the I2C/BMC
// telemetry path of Fig. 1. Before any sample is old enough, the output
// holds the configured initial value.
//
// Samples are kept in a ring buffer whose capacity stabilizes at about
// delay/tick entries, so steady-state sampling performs zero heap
// allocations — the engine calls Sample once per simulated tick.
type DelayLine struct {
	Delay   units.Seconds
	Initial float64
	ring    []timedSample
	head    int // index of the oldest queued sample
	count   int // queued samples
	cur     float64
	curSet  bool
}

type timedSample struct {
	t units.Seconds
	v float64
}

// NewDelayLine builds a delay line with the given dead time and the value
// reported before any delayed sample is available.
func NewDelayLine(delay units.Seconds, initial float64) (*DelayLine, error) {
	if delay < 0 {
		return nil, fmt.Errorf("sensor: negative delay %v", delay)
	}
	return &DelayLine{Delay: delay, Initial: initial}, nil
}

// push appends a sample to the ring, growing it only when full.
func (d *DelayLine) push(s timedSample) {
	if d.count == len(d.ring) {
		grown := make([]timedSample, 2*len(d.ring)+4)
		for i := 0; i < d.count; i++ {
			grown[i] = d.ring[(d.head+i)%len(d.ring)]
		}
		d.ring = grown
		d.head = 0
	}
	d.ring[(d.head+d.count)%len(d.ring)] = s
	d.count++
}

// Sample implements Stage.
func (d *DelayLine) Sample(t units.Seconds, v float64) float64 {
	d.push(timedSample{t: t, v: v})
	cutoff := t - d.Delay
	// Pop every queued sample already visible at t; the newest of them is
	// the current output and stays so until a younger one matures.
	for d.count > 0 && d.ring[d.head].t <= cutoff {
		d.cur = d.ring[d.head].v
		d.curSet = true
		d.head = (d.head + 1) % len(d.ring)
		d.count--
	}
	if !d.curSet {
		return d.Initial
	}
	return d.cur
}

// Reset implements Stage.
func (d *DelayLine) Reset() {
	d.head, d.count = 0, 0
	d.cur, d.curSet = 0, false
}

// GaussianNoise adds zero-mean Gaussian noise with the given standard
// deviation, from a deterministic source.
type GaussianNoise struct {
	Sigma float64
	rng   *stats.Rand
	seed  int64
}

// NewGaussianNoise builds a noise stage with deterministic seed.
func NewGaussianNoise(sigma float64, seed int64) (*GaussianNoise, error) {
	if sigma < 0 {
		return nil, fmt.Errorf("sensor: negative noise sigma %v", sigma)
	}
	return &GaussianNoise{Sigma: sigma, rng: stats.NewRand(seed), seed: seed}, nil
}

// Sample implements Stage.
func (g *GaussianNoise) Sample(_ units.Seconds, v float64) float64 {
	if g.Sigma == 0 {
		return v
	}
	return g.rng.Normal(v, g.Sigma)
}

// Reset implements Stage: the noise stream restarts from its seed.
func (g *GaussianNoise) Reset() { g.rng = stats.NewRand(g.seed) }

// SampleHold decimates the signal to one sample per Interval: the output
// changes only at multiples of the sampling interval (sensor polling
// period), holding in between.
type SampleHold struct {
	Interval units.Seconds
	lastT    units.Seconds
	value    float64
	primed   bool
}

// NewSampleHold builds a sample-and-hold stage with the given interval.
func NewSampleHold(interval units.Seconds) (*SampleHold, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("sensor: non-positive sample interval %v", interval)
	}
	return &SampleHold{Interval: interval}, nil
}

// Sample implements Stage.
func (s *SampleHold) Sample(t units.Seconds, v float64) float64 {
	if !s.primed || t-s.lastT >= s.Interval-1e-9 {
		s.value = v
		s.lastT = t
		s.primed = true
	}
	return s.value
}

// Reset implements Stage.
func (s *SampleHold) Reset() { s.primed = false; s.value = 0; s.lastT = 0 }

// Pipeline chains stages in order: physical value in, DTM-visible value
// out. The paper's chain is noise -> quantizer -> delay.
type Pipeline struct {
	stages []Stage
	// powered caches the stages (transitively, through nested pipelines)
	// that consume the instantaneous power feed, so a chain without any —
	// every ideal and transport-fault-only chain — skips the per-tick
	// forwarding entirely.
	powered []PowerAware
}

// NewPipeline builds a pipeline over the given stages. An empty pipeline
// is the identity (an ideal sensor).
func NewPipeline(stages ...Stage) *Pipeline {
	p := &Pipeline{stages: stages}
	for _, s := range stages {
		// A nested pipeline satisfies PowerAware unconditionally; collect
		// it only when it actually holds power-aware stages, so that
		// wrapping an ideal chain keeps NeedsPower false.
		switch inner := s.(type) {
		case *Pipeline:
			if inner.NeedsPower() {
				p.powered = append(p.powered, inner)
			}
		case *Redundant:
			// Same rule as nested pipelines: a redundant array forwards
			// power only when some replica chain actually consumes it.
			if inner.NeedsPower() {
				p.powered = append(p.powered, inner)
			}
		case PowerAware:
			p.powered = append(p.powered, inner)
		}
	}
	return p
}

// NeedsPower reports whether any stage consumes the instantaneous power
// feed; the platform checks it once per tick before forwarding.
func (p *Pipeline) NeedsPower() bool { return len(p.powered) > 0 }

// ObservePower implements PowerAware: the power feed fans out to every
// power-aware stage in chain order.
func (p *Pipeline) ObservePower(w float64) {
	for _, s := range p.powered {
		s.ObservePower(w)
	}
}

// Sample implements Stage.
func (p *Pipeline) Sample(t units.Seconds, v float64) float64 {
	for _, s := range p.stages {
		v = s.Sample(t, v)
	}
	return v
}

// Reset implements Stage.
func (p *Pipeline) Reset() {
	for _, s := range p.stages {
		s.Reset()
	}
}

// Config bundles the parameters of the paper's measurement system. It is
// hashed into scenario store keys through sim.Config, so every field
// carries an explicit json tag mirroring its name (enforced by repolint's
// hashedfield analyzer; the names pin the PR 4 canonical JSON).
type Config struct {
	LagSeconds   units.Seconds `json:"LagSeconds"`   // I2C transport delay (paper: 10 s)
	ADCBits      int           `json:"ADCBits"`      // converter resolution (paper: 8)
	RangeMin     float64       `json:"RangeMin"`     // ADC range lower bound in °C (paper: 0)
	RangeMax     float64       `json:"RangeMax"`     // ADC range upper bound in °C (paper: 255)
	NoiseSigma   float64       `json:"NoiseSigma"`   // transducer noise σ in °C (0 = clean)
	NoiseSeed    int64         `json:"NoiseSeed"`    // deterministic noise seed
	InitialValue float64       `json:"InitialValue"` // value reported before the first delayed sample
}

// TableIConfig returns the paper's measurement system: 10 s lag, 8-bit ADC
// over 0–255 °C (1 °C quantization), no transducer noise, reporting
// ambient-ish 25 °C until telemetry arrives.
func TableIConfig() Config {
	return Config{
		LagSeconds:   10,
		ADCBits:      8,
		RangeMin:     0,
		RangeMax:     255,
		InitialValue: 25,
	}
}

// New builds the standard measurement pipeline from c:
// noise -> ADC quantizer -> I2C delay.
func New(c Config) (*Pipeline, error) {
	if c.LagSeconds < 0 {
		return nil, fmt.Errorf("sensor: negative lag %v", c.LagSeconds)
	}
	if c.NoiseSigma < 0 {
		return nil, fmt.Errorf("sensor: negative noise sigma %v", c.NoiseSigma)
	}
	var stages []Stage
	if c.NoiseSigma > 0 {
		n, err := NewGaussianNoise(c.NoiseSigma, c.NoiseSeed)
		if err != nil {
			return nil, err
		}
		stages = append(stages, n)
	}
	if c.ADCBits > 0 {
		q, err := NewQuantizer(c.ADCBits, c.RangeMin, c.RangeMax)
		if err != nil {
			return nil, err
		}
		stages = append(stages, q)
	}
	if c.LagSeconds > 0 {
		d, err := NewDelayLine(c.LagSeconds, c.InitialValue)
		if err != nil {
			return nil, err
		}
		stages = append(stages, d)
	}
	return NewPipeline(stages...), nil
}
