package sensor

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/units"
)

func TestQuantizerTableI(t *testing.T) {
	q := TableIQuantizer()
	if q.Step() != 1 {
		t.Fatalf("Table I step = %v, want 1 C", q.Step())
	}
	tests := []struct{ in, want float64 }{
		{74.4, 74},
		{74.6, 75},
		{74.5, 75}, // round half away handled by math.Round
		{0, 0},
		{255, 255},
		{-10, 0},    // clamped
		{300, 255},  // clamped
		{80.49, 80}, // below half step
	}
	for _, tt := range tests {
		if got := q.Sample(0, tt.in); got != tt.want {
			t.Errorf("Sample(%v) = %v, want %v", tt.in, got, tt.want)
		}
	}
}

func TestQuantizerValidation(t *testing.T) {
	if _, err := NewQuantizer(0, 0, 255); err == nil {
		t.Error("0 bits accepted")
	}
	if _, err := NewQuantizer(33, 0, 255); err == nil {
		t.Error("33 bits accepted")
	}
	if _, err := NewQuantizer(8, 10, 10); err == nil {
		t.Error("empty range accepted")
	}
}

func TestQuantizerIdempotentProperty(t *testing.T) {
	q := TableIQuantizer()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := math.Mod(raw, 300)
		once := q.Sample(0, v)
		return q.Sample(0, once) == once
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizerMonotoneProperty(t *testing.T) {
	q := TableIQuantizer()
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		va, vb := math.Mod(a, 300), math.Mod(b, 300)
		if va > vb {
			va, vb = vb, va
		}
		return q.Sample(0, va) <= q.Sample(0, vb)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuantizerErrorBoundProperty(t *testing.T) {
	q := TableIQuantizer()
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		v := units.Clamp(math.Mod(raw, 300), 0, 255)
		got := q.Sample(0, v)
		return math.Abs(got-v) <= q.Step()/2+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDelayLineDeadTime(t *testing.T) {
	d, err := NewDelayLine(10, 25)
	if err != nil {
		t.Fatal(err)
	}
	// Feed a ramp sampled at 1 s; output must be the input 10 s ago.
	for i := 0; i <= 30; i++ {
		tm := units.Seconds(i)
		in := float64(100 + i)
		out := d.Sample(tm, in)
		switch {
		case i < 10:
			if out != 25 {
				t.Errorf("t=%d: out = %v, want initial 25", i, out)
			}
		default:
			want := float64(100 + i - 10)
			if out != want {
				t.Errorf("t=%d: out = %v, want %v", i, out, want)
			}
		}
	}
}

func TestDelayLineZeroDelayIsIdentity(t *testing.T) {
	d, _ := NewDelayLine(0, 0)
	for i := 0; i < 5; i++ {
		if got := d.Sample(units.Seconds(i), float64(i*7)); got != float64(i*7) {
			t.Errorf("zero delay out = %v, want %v", got, i*7)
		}
	}
}

func TestDelayLineValidationAndReset(t *testing.T) {
	if _, err := NewDelayLine(-1, 0); err == nil {
		t.Error("negative delay accepted")
	}
	d, _ := NewDelayLine(5, 1)
	d.Sample(0, 100)
	d.Sample(6, 200) // now outputs 100
	d.Reset()
	if got := d.Sample(7, 300); got != 1 {
		t.Errorf("after reset = %v, want initial 1", got)
	}
}

func TestDelayLineBufferTrimming(t *testing.T) {
	d, _ := NewDelayLine(2, 0)
	for i := 0; i < 10000; i++ {
		d.Sample(units.Seconds(i)*0.1, float64(i))
	}
	if n := len(d.ring); n > 64 {
		t.Errorf("ring grew to %d entries, trim failed", n)
	}
	if d.count > 50 {
		t.Errorf("ring retained %d queued entries, trim failed", d.count)
	}
}

func TestGaussianNoiseStats(t *testing.T) {
	g, err := NewGaussianNoise(0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	n := 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := g.Sample(0, 10)
		sum += v - 10
		sumSq += (v - 10) * (v - 10)
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumSq/float64(n) - mean*mean)
	if math.Abs(mean) > 0.02 {
		t.Errorf("noise mean = %v, want ~0", mean)
	}
	if math.Abs(std-0.5) > 0.02 {
		t.Errorf("noise std = %v, want ~0.5", std)
	}
}

func TestGaussianNoiseZeroSigmaIdentity(t *testing.T) {
	g, _ := NewGaussianNoise(0, 1)
	if got := g.Sample(0, 3.14); got != 3.14 {
		t.Errorf("zero sigma out = %v", got)
	}
}

func TestGaussianNoiseResetRestartsStream(t *testing.T) {
	g, _ := NewGaussianNoise(1, 7)
	a := g.Sample(0, 0)
	g.Reset()
	b := g.Sample(0, 0)
	if a != b {
		t.Error("reset did not restart the deterministic stream")
	}
}

func TestGaussianNoiseValidation(t *testing.T) {
	if _, err := NewGaussianNoise(-0.1, 0); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestSampleHold(t *testing.T) {
	s, err := NewSampleHold(1)
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Sample(0, 5); got != 5 {
		t.Errorf("first sample = %v", got)
	}
	if got := s.Sample(0.5, 99); got != 5 {
		t.Errorf("mid-interval sample = %v, want held 5", got)
	}
	if got := s.Sample(1.0, 42); got != 42 {
		t.Errorf("next interval = %v, want 42", got)
	}
	s.Reset()
	if got := s.Sample(1.2, 7); got != 7 {
		t.Errorf("after reset = %v", got)
	}
}

func TestSampleHoldValidation(t *testing.T) {
	if _, err := NewSampleHold(0); err == nil {
		t.Error("zero interval accepted")
	}
}

func TestPipelineComposition(t *testing.T) {
	q := TableIQuantizer()
	d, _ := NewDelayLine(2, 0)
	p := NewPipeline(q, d)
	// t=0: in 74.6 -> quantized 75 -> delayed (initial) 0
	if got := p.Sample(0, 74.6); got != 0 {
		t.Errorf("t=0 out = %v, want 0", got)
	}
	p.Sample(1, 74.6)
	// t=2: the t=0 sample becomes visible: 75.
	if got := p.Sample(2, 80.2); got != 75 {
		t.Errorf("t=2 out = %v, want 75", got)
	}
	p.Reset()
	if got := p.Sample(3, 74.6); got != 0 {
		t.Errorf("after reset out = %v, want 0 (initial)", got)
	}
}

func TestEmptyPipelineIsIdeal(t *testing.T) {
	p := NewPipeline()
	if got := p.Sample(0, 73.2); got != 73.2 {
		t.Errorf("ideal sensor out = %v", got)
	}
}

func TestConfigNew(t *testing.T) {
	p, err := New(TableIConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Feed constant 74.4 C; after the 10 s lag the output is quantized 74.
	var got float64
	for i := 0; i <= 20; i++ {
		got = p.Sample(units.Seconds(i), 74.4)
	}
	if got != 74 {
		t.Errorf("Table I chain out = %v, want 74", got)
	}
}

func TestConfigNewPropagatesErrors(t *testing.T) {
	bad := TableIConfig()
	bad.ADCBits = 99
	if _, err := New(bad); err == nil {
		t.Error("bad ADC bits accepted")
	}
	bad = TableIConfig()
	bad.LagSeconds = -1
	if _, err := New(bad); err == nil {
		t.Error("negative lag accepted")
	}
	bad = TableIConfig()
	bad.NoiseSigma = -1
	if _, err := New(bad); err == nil {
		t.Error("negative noise accepted")
	}
}

func TestConfigNoiseStage(t *testing.T) {
	c := TableIConfig()
	c.NoiseSigma = 2
	c.LagSeconds = 0
	p, err := New(c)
	if err != nil {
		t.Fatal(err)
	}
	diff := false
	for i := 0; i < 20 && !diff; i++ {
		if p.Sample(units.Seconds(i), 74) != 74 {
			diff = true
		}
	}
	if !diff {
		t.Error("noise stage had no effect")
	}
}
