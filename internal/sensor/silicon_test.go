package sensor

import (
	"math"
	"testing"

	"repro/internal/units"
)

func TestPlacementOffsetScalesWithPower(t *testing.T) {
	p, err := NewPlacementOffset(0.1)
	if err != nil {
		t.Fatal(err)
	}
	// No power observed yet: the stage is transparent.
	if got := p.Sample(0, 70); got != 70 {
		t.Fatalf("zero-power sample = %v, want 70", got)
	}
	p.ObservePower(100)
	if got := p.Sample(1, 70); got != 60 {
		t.Fatalf("100 W sample = %v, want 60 (10 degC low)", got)
	}
	p.ObservePower(50)
	if got := p.Sample(2, 70); got != 65 {
		t.Fatalf("50 W sample = %v, want 65", got)
	}
}

func TestPlacementOffsetResetRewindsPower(t *testing.T) {
	p, _ := NewPlacementOffset(0.2)
	p.ObservePower(80)
	p.Sample(0, 70)
	p.Reset()
	if got := p.Sample(0, 70); got != 70 {
		t.Fatalf("post-reset sample = %v, want transparent 70", got)
	}
}

func TestPlacementOffsetValidation(t *testing.T) {
	if _, err := NewPlacementOffset(-0.1); err == nil {
		t.Error("negative coefficient accepted")
	}
	if _, err := NewPlacementOffset(math.NaN()); err == nil {
		t.Error("NaN coefficient accepted")
	}
}

func TestCalibrationBiasDeterministicDraw(t *testing.T) {
	a, err := NewCalibrationBias(3, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := NewCalibrationBias(3, 42)
	if a.Offset != b.Offset {
		t.Fatalf("same (sigma, seed) drew %v and %v", a.Offset, b.Offset)
	}
	if a.Offset == 0 {
		t.Fatal("sigma 3 drew exactly 0 (suspicious)")
	}
	c, _ := NewCalibrationBias(3, 43)
	if a.Offset == c.Offset {
		t.Fatalf("adjacent seeds drew the same offset %v", a.Offset)
	}
	if got := a.Sample(0, 70); got != 70+a.Offset {
		t.Fatalf("sample = %v, want %v", got, 70+a.Offset)
	}
	// Reset must not redraw or clear the lifetime offset.
	a.Reset()
	if got := a.Sample(1, 70); got != 70+b.Offset {
		t.Fatalf("post-reset sample = %v, want unchanged bias", got)
	}
}

func TestCalibrationBiasSpread(t *testing.T) {
	// Across many seeds the draws should look like N(0, sigma^2): mean
	// near 0, a reasonable fraction beyond +-sigma.
	const sigma = 2.0
	n, sum, beyond := 2000, 0.0, 0
	for seed := int64(0); seed < int64(n); seed++ {
		c, _ := NewCalibrationBias(sigma, seed)
		sum += c.Offset
		if math.Abs(c.Offset) > sigma {
			beyond++
		}
	}
	if mean := sum / float64(n); math.Abs(mean) > 0.2 {
		t.Errorf("mean offset = %v, want ~0", mean)
	}
	frac := float64(beyond) / float64(n)
	if frac < 0.25 || frac > 0.40 {
		t.Errorf("fraction beyond +-sigma = %v, want ~0.32", frac)
	}
}

func TestCalibrationBiasValidation(t *testing.T) {
	if _, err := NewCalibrationBias(-1, 0); err == nil {
		t.Error("negative sigma accepted")
	}
	if _, err := NewCalibrationBias(math.Inf(1), 0); err == nil {
		t.Error("infinite sigma accepted")
	}
}

func TestSlewLimitTracksSlowPassesFast(t *testing.T) {
	s, err := NewSlewLimit(0.5)
	if err != nil {
		t.Fatal(err)
	}
	// First sample primes exactly.
	if got := s.Sample(0, 50); got != 50 {
		t.Fatalf("prime = %v", got)
	}
	// A 10-degree step is tracked at 0.5 degC/s.
	if got := s.Sample(1, 60); got != 50.5 {
		t.Fatalf("t=1: %v, want 50.5", got)
	}
	if got := s.Sample(2, 60); got != 51 {
		t.Fatalf("t=2: %v, want 51", got)
	}
	// Once within the per-step budget the output locks on.
	for i := 3; i < 30; i++ {
		s.Sample(units.Seconds(i), 60)
	}
	if got := s.Sample(30, 60); got != 60 {
		t.Fatalf("settled = %v, want 60", got)
	}
	// Downward transients are limited symmetrically.
	if got := s.Sample(31, 40); got != 59.5 {
		t.Fatalf("down-step = %v, want 59.5", got)
	}
	// Slow drifts inside the budget pass through exactly.
	if got := s.Sample(32, 59.4); got != 59.4 {
		t.Fatalf("in-budget sample = %v, want exact 59.4", got)
	}
}

func TestSlewLimitResetReplaysIdentically(t *testing.T) {
	s, _ := NewSlewLimit(0.25)
	in := []float64{50, 58, 61, 55, 70, 70, 70, 40}
	first := make([]float64, len(in))
	for i, v := range in {
		first[i] = s.Sample(units.Seconds(i), v)
	}
	s.Reset()
	for i, v := range in {
		if got := s.Sample(units.Seconds(i), v); got != first[i] {
			t.Fatalf("replay sample %d = %v, want %v", i, got, first[i])
		}
	}
}

func TestSlewLimitValidation(t *testing.T) {
	if _, err := NewSlewLimit(0); err == nil {
		t.Error("zero slew accepted")
	}
	if _, err := NewSlewLimit(-1); err == nil {
		t.Error("negative slew accepted")
	}
}

func TestPipelinePowerForwarding(t *testing.T) {
	po, _ := NewPlacementOffset(0.1)
	q := TableIQuantizer()
	p := NewPipeline(po, q)
	if !p.NeedsPower() {
		t.Fatal("pipeline with PlacementOffset reports NeedsPower false")
	}
	p.ObservePower(100)
	if got := p.Sample(0, 70); got != 60 {
		t.Fatalf("sample = %v, want 60 (10 degC under-read, quantized)", got)
	}

	// An ideal chain must not report a power need — and neither must a
	// pipeline that nests one (the serverFactory wraps the base chain in
	// an outer pipeline).
	ideal := NewPipeline(q)
	if ideal.NeedsPower() {
		t.Fatal("ideal pipeline reports NeedsPower true")
	}
	wrapped := NewPipeline(ideal)
	if wrapped.NeedsPower() {
		t.Fatal("pipeline nesting an ideal chain reports NeedsPower true")
	}

	// Nesting a power-aware chain forwards through the outer pipeline.
	outer := NewPipeline(p)
	if !outer.NeedsPower() {
		t.Fatal("pipeline nesting a power-aware chain reports NeedsPower false")
	}
	outer.ObservePower(50)
	if got := outer.Sample(1, 70); got != 65 {
		t.Fatalf("nested sample = %v, want 65", got)
	}
}
