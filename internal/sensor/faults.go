package sensor

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/units"
)

// StuckAt is a fault-injection stage: between FailAt and RecoverAt the
// stage reports the last value seen before the failure (a frozen I2C
// endpoint or a wedged management controller — the most common real
// telemetry failure mode, and a nastier one than absence because the
// reading still looks plausible).
type StuckAt struct {
	FailAt    units.Seconds
	RecoverAt units.Seconds // zero or below FailAt means never recovers
	last      float64
	primed    bool
}

// NewStuckAt builds the fault stage.
func NewStuckAt(failAt, recoverAt units.Seconds) (*StuckAt, error) {
	if failAt < 0 {
		return nil, fmt.Errorf("sensor: negative failure time %v", failAt)
	}
	return &StuckAt{FailAt: failAt, RecoverAt: recoverAt}, nil
}

// Sample implements Stage.
func (f *StuckAt) Sample(t units.Seconds, v float64) float64 {
	failed := t >= f.FailAt && (f.RecoverAt <= f.FailAt || t < f.RecoverAt)
	if !failed {
		f.last = v
		f.primed = true
		return v
	}
	if !f.primed {
		f.last = v
		f.primed = true
	}
	return f.last
}

// Reset implements Stage.
func (f *StuckAt) Reset() { f.last, f.primed = 0, false }

// Dropout is a fault-injection stage that replaces a deterministic
// pseudo-random fraction of samples with the previous delivered value —
// the bus-arbitration losses of a congested I2C segment.
type Dropout struct {
	Rate float64 // fraction of samples dropped, [0, 1)
	Seed int64
	k    int64
	last float64
	prim bool
}

// NewDropout builds the stage.
func NewDropout(rate float64, seed int64) (*Dropout, error) {
	if rate < 0 || rate >= 1 {
		return nil, fmt.Errorf("sensor: dropout rate %v outside [0, 1)", rate)
	}
	return &Dropout{Rate: rate, Seed: seed}, nil
}

// Sample implements Stage.
func (d *Dropout) Sample(_ units.Seconds, v float64) float64 {
	d.k++
	if d.prim && stats.HashUniform(d.Seed, d.k) < d.Rate {
		return d.last
	}
	d.last = v
	d.prim = true
	return v
}

// Reset implements Stage.
func (d *Dropout) Reset() { d.k, d.last, d.prim = 0, 0, false }
