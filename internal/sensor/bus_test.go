package sensor

import (
	"testing"

	"repro/internal/units"
)

func TestDefaultBusReproducesPaperLag(t *testing.T) {
	b := DefaultBus()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := b.Lag(); got != 10 {
		t.Errorf("default 16-sensor lag = %v, want 10 s (paper Fig. 1)", got)
	}
}

func TestBusLagGrowsWithSensorCount(t *testing.T) {
	// The paper's claim: more sensors per generation, worse contention lag.
	prev := units.Seconds(0)
	for _, n := range []int{4, 8, 16, 32, 64} {
		b := DefaultBus()
		b.NSensors = n
		lag := b.Lag()
		if lag <= prev {
			t.Errorf("lag(%d sensors) = %v, not above %v", n, lag, prev)
		}
		prev = lag
	}
	b := DefaultBus()
	b.NSensors = 32
	if got := b.Lag(); got != 18 {
		t.Errorf("32-sensor lag = %v, want 18 s", got)
	}
}

func TestBusValidation(t *testing.T) {
	cases := []Bus{
		{BaseLatency: -1, TransferTime: 0.5, NSensors: 16},
		{BaseLatency: 2, TransferTime: -0.5, NSensors: 16},
		{BaseLatency: 2, TransferTime: 0.5, NSensors: 0},
	}
	for i, b := range cases {
		if err := b.Validate(); err == nil {
			t.Errorf("case %d: invalid bus accepted", i)
		}
		if _, err := b.DelayLine(0); err == nil {
			t.Errorf("case %d: DelayLine accepted invalid bus", i)
		}
	}
}

func TestBusDelayLine(t *testing.T) {
	b := Bus{BaseLatency: 1, TransferTime: 0.5, NSensors: 2} // 2 s lag
	d, err := b.DelayLine(25)
	if err != nil {
		t.Fatal(err)
	}
	d.Sample(0, 100)
	d.Sample(1, 101)
	if got := d.Sample(2, 102); got != 100 {
		t.Errorf("bus delay out = %v, want 100", got)
	}
}
