package sensor

import (
	"fmt"

	"repro/internal/units"
)

// Health is the fused sensor's self-assessment, exported so the policy
// layer can escalate: OK while a quorum of plausible, mutually agreeing
// replicas exists; Hold while disagreement is fresh enough that the last
// good fused value is still trustworthy; FailSafe once disagreement has
// persisted past the hold budget and the reading must no longer be used
// for closed-loop control.
type Health int

const (
	HealthOK Health = iota
	HealthHold
	HealthFailSafe
)

func (h Health) String() string {
	switch h {
	case HealthOK:
		return "ok"
	case HealthHold:
		return "hold"
	case HealthFailSafe:
		return "failsafe"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// Defaults for the optional RedundantConfig knobs (zero selects them).
const (
	// DefaultOutlierC is the maximum distance (°C) from the replica
	// median before a reading is voted out as an outlier.
	DefaultOutlierC = 3.0
	// DefaultMaxSlewCPerS is the plausibility bound on per-replica
	// reading movement. Real silicon junctions move a few °C/s at most
	// (Table I thermal time constants); a reading jumping faster than
	// this is a transport glitch, not physics. Deliberately generous so
	// a frozen replica (slew 0) passes plausibility and is caught by
	// outlier rejection instead.
	DefaultMaxSlewCPerS = 20.0
	// DefaultHoldTicks is how many consecutive quorum failures are
	// bridged by hold-last-good before the voter latches FailSafe.
	DefaultHoldTicks = 30
)

// RedundantConfig parameterizes the fusion stage. Zero values select the
// documented defaults except the plausibility range, which callers take
// from the ADC configuration of the chains being fused.
type RedundantConfig struct {
	// RangeMin/RangeMax bound plausible readings (°C); anything outside
	// is rejected before voting. Both zero selects 0..255 (the Table I
	// 8-bit ADC span).
	RangeMin float64
	RangeMax float64
	// MaxSlewCPerS rejects a replica whose reading moved faster than
	// physically possible since its previous sample. Zero selects
	// DefaultMaxSlewCPerS.
	MaxSlewCPerS float64
	// OutlierC is the max distance from the replica median before a
	// plausible reading is voted out. Zero selects DefaultOutlierC.
	OutlierC float64
	// Quorum is the minimum number of surviving replicas for a fused
	// reading to count as good. Zero selects a strict majority (N/2+1).
	Quorum int
	// HoldTicks is the hold-last-good budget. Zero selects
	// DefaultHoldTicks.
	HoldTicks int
}

// Redundant fuses N independently built measurement chains observing the
// same true temperature into one trustworthy reading: per-sample
// plausibility checks (range + slew vs. physical limits), median voting
// with outlier rejection among the survivors, hold-last-good across
// transient disagreement, and a latched FailSafe health once disagreement
// outlives the hold budget. It implements Stage so it drops into a
// Pipeline wherever a single chain did, and PowerAware so power-density
// stages (PlacementOffset) inside the replica chains keep seeing CPU
// power.
//
// All voting scratch is preallocated: Sample is allocation-free in steady
// state, preserving the zero-alloc tick contract with redundancy armed.
type Redundant struct {
	chains  []Stage
	powered []PowerAware

	rangeMin  float64
	rangeMax  float64
	maxSlew   float64
	outlierC  float64
	quorum    int
	holdTicks int

	// scratch (capacity len(chains), reused every tick)
	readings  []float64
	plausible []float64
	survivors []float64
	fallback  []float64

	// per-replica slew-plausibility state
	prev   []float64
	primed []bool
	lastT  units.Seconds
	hasT   bool

	lastGood float64
	goodSet  bool
	disagree int
	health   Health

	ticks         int
	rejectedTicks int // replica-samples rejected (implausible or outlier)
	quorumFails   int // ticks where no quorum survived
	failSafeTicks int // ticks spent in FailSafe
}

// NewRedundant builds the fusion stage over the given replica chains
// (typically *Pipeline values over independently seeded fault chains).
// At least 3 chains are required — with fewer, median voting cannot
// outvote a single wedged replica.
func NewRedundant(cfg RedundantConfig, chains ...Stage) (*Redundant, error) {
	n := len(chains)
	if n < 3 {
		return nil, fmt.Errorf("sensor: redundant array needs >= 3 chains, got %d", n)
	}
	for i, c := range chains {
		if c == nil {
			return nil, fmt.Errorf("sensor: redundant chain %d is nil", i)
		}
	}
	min, max := cfg.RangeMin, cfg.RangeMax
	if min == 0 && max == 0 {
		min, max = 0, 255
	}
	if !(max > min) {
		return nil, fmt.Errorf("sensor: redundant plausibility range [%g, %g] is empty", min, max)
	}
	slew := cfg.MaxSlewCPerS
	if slew == 0 {
		slew = DefaultMaxSlewCPerS
	}
	if slew < 0 {
		return nil, fmt.Errorf("sensor: negative max slew %g", slew)
	}
	outlier := cfg.OutlierC
	if outlier == 0 {
		outlier = DefaultOutlierC
	}
	if outlier < 0 {
		return nil, fmt.Errorf("sensor: negative outlier bound %g", outlier)
	}
	quorum := cfg.Quorum
	if quorum == 0 {
		quorum = n/2 + 1
	}
	if quorum < 1 || quorum > n {
		return nil, fmt.Errorf("sensor: quorum %d outside [1, %d]", quorum, n)
	}
	hold := cfg.HoldTicks
	if hold == 0 {
		hold = DefaultHoldTicks
	}
	if hold < 0 {
		return nil, fmt.Errorf("sensor: negative hold budget %d", hold)
	}
	r := &Redundant{
		chains:    chains,
		rangeMin:  min,
		rangeMax:  max,
		maxSlew:   slew,
		outlierC:  outlier,
		quorum:    quorum,
		holdTicks: hold,
		readings:  make([]float64, n),
		plausible: make([]float64, 0, n),
		survivors: make([]float64, 0, n),
		fallback:  make([]float64, 0, n),
		prev:      make([]float64, n),
		primed:    make([]bool, n),
	}
	// Collect power-aware replicas once, mirroring NewPipeline: nested
	// pipelines are included only when they actually contain a
	// power-density stage, so ObservePower fan-out skips inert chains.
	for _, c := range chains {
		switch s := c.(type) {
		case *Pipeline:
			if s.NeedsPower() {
				r.powered = append(r.powered, s)
			}
		case *Redundant:
			if s.NeedsPower() {
				r.powered = append(r.powered, s)
			}
		case PowerAware:
			r.powered = append(r.powered, s)
		}
	}
	return r, nil
}

// Sample feeds the true value through every replica chain and fuses the
// readings. The fused value is the median of the plausible, non-outlier
// survivors when a quorum exists; otherwise the last good fused value
// (hold-last-good), falling back to the median of the raw readings if no
// good value was ever produced.
func (r *Redundant) Sample(t units.Seconds, v float64) float64 {
	dt := units.Seconds(0)
	if r.hasT && t > r.lastT {
		dt = t - r.lastT
	}
	r.lastT = t
	r.hasT = true
	r.ticks++

	for i, c := range r.chains {
		r.readings[i] = c.Sample(t, v)
	}

	// Plausibility: range, then per-replica slew against the previous
	// reading. prev is updated from the raw reading every tick even when
	// rejected, so a replica recovering from a wedged value pays one
	// implausible tick, not a permanently drifting reference.
	r.plausible = r.plausible[:0]
	for i, ri := range r.readings {
		ok := ri >= r.rangeMin && ri <= r.rangeMax
		if ok && r.primed[i] && dt > 0 {
			bound := r.maxSlew * float64(dt)
			if d := ri - r.prev[i]; d > bound || d < -bound {
				ok = false
			}
		}
		r.prev[i] = ri
		r.primed[i] = true
		if ok {
			r.plausible = append(r.plausible, ri)
		} else {
			r.rejectedTicks++
		}
	}

	if fused, ok := r.vote(); ok {
		r.disagree = 0
		r.health = HealthOK
		r.lastGood = fused
		r.goodSet = true
		return fused
	}

	r.quorumFails++
	r.disagree++
	if r.disagree > r.holdTicks {
		r.health = HealthFailSafe
		r.failSafeTicks++
	} else {
		r.health = HealthHold
	}
	if r.goodSet {
		return r.lastGood
	}
	// Never agreed since Reset: the raw median is the least-bad reading.
	r.fallback = append(r.fallback[:0], r.readings...)
	insertionSort(r.fallback)
	return medianSorted(r.fallback)
}

// vote runs median + outlier rejection over the plausible readings and
// reports whether a quorum survived.
func (r *Redundant) vote() (float64, bool) {
	if len(r.plausible) < r.quorum {
		return 0, false
	}
	insertionSort(r.plausible)
	med := medianSorted(r.plausible)
	r.survivors = r.survivors[:0]
	for _, x := range r.plausible {
		if d := x - med; d <= r.outlierC && d >= -r.outlierC {
			r.survivors = append(r.survivors, x)
		} else {
			r.rejectedTicks++
		}
	}
	if len(r.survivors) < r.quorum {
		return 0, false
	}
	// Filtering a sorted slice preserves order, so the median is direct.
	return medianSorted(r.survivors), true
}

// Reset restores construction state on the voter and every replica chain
// so a warm re-run replays the identical fused sequence.
func (r *Redundant) Reset() {
	for _, c := range r.chains {
		c.Reset()
	}
	for i := range r.prev {
		r.prev[i] = 0
		r.primed[i] = false
	}
	r.lastT, r.hasT = 0, false
	r.lastGood, r.goodSet = 0, false
	r.disagree = 0
	r.health = HealthOK
	r.ticks, r.rejectedTicks, r.quorumFails, r.failSafeTicks = 0, 0, 0, 0
}

// NeedsPower reports whether any replica chain contains a power-density
// stage.
func (r *Redundant) NeedsPower() bool { return len(r.powered) > 0 }

// ObservePower forwards the current CPU power draw to every power-aware
// replica chain.
func (r *Redundant) ObservePower(w float64) {
	for _, s := range r.powered {
		s.ObservePower(w)
	}
}

// Health returns the voter's current self-assessment.
func (r *Redundant) Health() Health { return r.health }

// Sensors returns the replica count.
func (r *Redundant) Sensors() int { return len(r.chains) }

// FailSafeFrac returns the fraction of samples spent in FailSafe.
func (r *Redundant) FailSafeFrac() float64 {
	if r.ticks == 0 {
		return 0
	}
	return float64(r.failSafeTicks) / float64(r.ticks)
}

// QuorumFailFrac returns the fraction of samples where no quorum of
// agreeing replicas survived.
func (r *Redundant) QuorumFailFrac() float64 {
	if r.ticks == 0 {
		return 0
	}
	return float64(r.quorumFails) / float64(r.ticks)
}

// Rejected returns the cumulative count of replica-samples voted out
// (implausible or outlier) since Reset.
func (r *Redundant) Rejected() int { return r.rejectedTicks }

// insertionSort sorts a short slice in place without allocating — replica
// counts are single digits, where insertion sort beats sort.Float64s and
// keeps the fused sample heap-free.
func insertionSort(a []float64) {
	for i := 1; i < len(a); i++ {
		x := a[i]
		j := i - 1
		for j >= 0 && a[j] > x {
			a[j+1] = a[j]
			j--
		}
		a[j+1] = x
	}
}

// medianSorted returns the median of an already-sorted, non-empty slice
// (mean of the two middles for even lengths).
func medianSorted(a []float64) float64 {
	n := len(a)
	if n%2 == 1 {
		return a[n/2]
	}
	return 0.5 * (a[n/2-1] + a[n/2])
}
