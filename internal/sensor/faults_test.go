package sensor

import (
	"testing"

	"repro/internal/units"
)

func TestStuckAtFreezesAndRecovers(t *testing.T) {
	f, err := NewStuckAt(10, 20)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if got := f.Sample(units.Seconds(i), float64(i)); got != float64(i) {
			t.Fatalf("pre-failure t=%d: %v", i, got)
		}
	}
	for i := 10; i < 20; i++ {
		if got := f.Sample(units.Seconds(i), float64(i)); got != 9 {
			t.Fatalf("failed t=%d: %v, want stuck at 9", i, got)
		}
	}
	if got := f.Sample(20, 42); got != 42 {
		t.Fatalf("post-recovery: %v", got)
	}
}

func TestStuckAtNeverRecovers(t *testing.T) {
	f, _ := NewStuckAt(5, 0)
	f.Sample(4, 7)
	for i := 5; i < 100; i++ {
		if got := f.Sample(units.Seconds(i), float64(i)); got != 7 {
			t.Fatalf("t=%d: %v, want 7 forever", i, got)
		}
	}
}

func TestStuckAtImmediateFailure(t *testing.T) {
	// Failing before any sample: the first observed value freezes.
	f, _ := NewStuckAt(0, 0)
	if got := f.Sample(0, 55); got != 55 {
		t.Fatalf("first = %v", got)
	}
	if got := f.Sample(1, 99); got != 55 {
		t.Fatalf("second = %v, want frozen 55", got)
	}
}

func TestStuckAtValidationAndReset(t *testing.T) {
	if _, err := NewStuckAt(-1, 0); err == nil {
		t.Error("negative fail time accepted")
	}
	f, _ := NewStuckAt(0, 0)
	f.Sample(0, 3)
	f.Reset()
	if got := f.Sample(5, 8); got != 8 {
		t.Errorf("after reset = %v", got)
	}
}

func TestDropoutRateAndDeterminism(t *testing.T) {
	d, err := NewDropout(0.3, 9)
	if err != nil {
		t.Fatal(err)
	}
	n := 20000
	dropped := 0
	for i := 0; i < n; i++ {
		if got := d.Sample(units.Seconds(i), float64(i)); got != float64(i) {
			dropped++
		}
	}
	rate := float64(dropped) / float64(n)
	if rate < 0.27 || rate > 0.33 {
		t.Errorf("dropout rate = %v, want ~0.3", rate)
	}
	// Determinism.
	d2, _ := NewDropout(0.3, 9)
	d.Reset()
	for i := 0; i < 100; i++ {
		if d.Sample(units.Seconds(i), float64(i)) != d2.Sample(units.Seconds(i), float64(i)) {
			t.Fatal("dropout streams diverged")
		}
	}
}

func TestDropoutValidation(t *testing.T) {
	if _, err := NewDropout(1.0, 0); err == nil {
		t.Error("rate 1.0 accepted")
	}
	if _, err := NewDropout(-0.1, 0); err == nil {
		t.Error("negative rate accepted")
	}
}

func TestDropoutFirstSampleAlwaysDelivered(t *testing.T) {
	d, _ := NewDropout(0.99, 1)
	if got := d.Sample(0, 3.14); got != 3.14 {
		t.Errorf("first sample = %v, want delivered (nothing to hold yet)", got)
	}
}
