package sensor

import (
	"fmt"

	"repro/internal/units"
)

// Bus models I2C bandwidth contention among temperature sensors sharing
// the management bus (Sec. I: the 10 s lag "is due to the limited bandwidth
// of [the] I2C bus", and "due to the increased number of temperature
// sensors in each new server platform, the time lag from bandwidth
// contention becomes even worse in newer generation servers").
//
// The model: the bus serves sensors round-robin; each full scan of all N
// sensors takes N * TransferTime, plus a fixed firmware base latency. A
// sample is visible only after its sensor's slot in the scan completes, so
// the effective per-sensor lag is
//
//	Lag(N) = BaseLatency + N * TransferTime.
//
// With the defaults below, a 16-sensor platform reproduces the paper's
// ~10 s end-to-end lag, and doubling the sensor count visibly worsens it.
type Bus struct {
	BaseLatency  units.Seconds // firmware + scheduling overhead
	TransferTime units.Seconds // per-sensor transaction time on the bus
	NSensors     int           // sensors sharing the bus
}

// DefaultBus returns contention parameters calibrated so that a 16-sensor
// platform (typical of the paper's server generation) sees a 10 s lag:
// 2 s base + 16 * 0.5 s = 10 s.
func DefaultBus() Bus {
	return Bus{BaseLatency: 2, TransferTime: 0.5, NSensors: 16}
}

// Validate reports the first invalid field, or nil.
func (b Bus) Validate() error {
	if b.BaseLatency < 0 {
		return fmt.Errorf("sensor: negative base latency %v", b.BaseLatency)
	}
	if b.TransferTime < 0 {
		return fmt.Errorf("sensor: negative transfer time %v", b.TransferTime)
	}
	if b.NSensors < 1 {
		return fmt.Errorf("sensor: %d sensors on bus", b.NSensors)
	}
	return nil
}

// Lag returns the effective telemetry dead time for one sensor.
func (b Bus) Lag() units.Seconds {
	return b.BaseLatency + units.Seconds(float64(b.NSensors))*b.TransferTime
}

// DelayLine builds the transport delay stage corresponding to this bus
// occupancy, reporting initial before the first scan completes.
func (b Bus) DelayLine(initial float64) (*DelayLine, error) {
	if err := b.Validate(); err != nil {
		return nil, err
	}
	return NewDelayLine(b.Lag(), initial)
}
