package sensor

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/units"
)

// This file models the silicon-side measurement error sources Rotem et al.
// characterized on real parts ("Temperature measurement in the Intel Core
// Duo Processor"): the thermal diode sits millimeters from the hotspot, so
// the reading lags the die both in space (an offset that grows with the
// instantaneous power density) and in time (slew-limited tracking of fast
// transients), on top of a fixed per-part calibration error. These stages
// sit on the transducer side of the chain — before the ADC and the I2C
// transport — whereas StuckAt/Dropout (faults.go) model the transport side.

// PowerAware is implemented by stages whose measurement error depends on
// the instantaneous dissipated power (the placement offset grows with the
// local power density). The platform feeds the current CPU power into the
// pipeline each tick before sampling; stages that do not implement the
// interface are unaffected, and a pipeline with no power-aware stages
// skips the forwarding entirely (NeedsPower), so ideal chains pay nothing.
type PowerAware interface {
	// ObservePower records the instantaneous per-socket CPU power (W)
	// dissipated during the tick about to be sampled.
	ObservePower(w float64)
}

// PlacementOffset models sensor-to-hotspot placement error: the diode sits
// off the hotspot, so it reads low by an amount proportional to the
// instantaneous power flowing through the die (the temperature gradient
// between hotspot and sensor site scales with the local power density; the
// die geometry is folded into Coeff). The dangerous direction: under load
// the DTM sees a cooler die than it has, and reacts late.
type PlacementOffset struct {
	// Coeff is the under-read per watt of instantaneous CPU power (°C/W).
	Coeff float64
	power float64
}

// NewPlacementOffset builds the stage. coeff must be non-negative.
func NewPlacementOffset(coeff float64) (*PlacementOffset, error) {
	if coeff < 0 || !units.IsFinite(coeff) {
		return nil, fmt.Errorf("sensor: bad placement coefficient %v", coeff)
	}
	return &PlacementOffset{Coeff: coeff}, nil
}

// ObservePower implements PowerAware.
func (p *PlacementOffset) ObservePower(w float64) { p.power = w }

// Sample implements Stage: read low by Coeff x instantaneous power.
func (p *PlacementOffset) Sample(_ units.Seconds, v float64) float64 {
	return v - p.Coeff*p.power
}

// Reset implements Stage: the observed power rewinds to the pre-run zero
// so warm lockstep re-steps replay the first tick identically.
func (p *PlacementOffset) Reset() { p.power = 0 }

// CalibrationBias is a fixed per-sensor offset: the part-to-part
// calibration error of the thermal diode, drawn once per sensor from a
// zero-mean Gaussian with the given sigma. The draw is a pure function of
// (sigma, seed) via the stats.SubSeed mixing hash, so sibling sensors
// seeded with consecutive streams land on decorrelated offsets, and the
// same spec always rebuilds the same bias.
type CalibrationBias struct {
	// Offset is the drawn calibration error (°C), fixed for the sensor's
	// lifetime.
	Offset float64
}

// calibrationStream decorrelates the calibration draw from the other
// consumers of a node's seed (workload noise, dropout pattern).
const calibrationStream = 0x5ca1ab1e

// NewCalibrationBias draws the per-sensor offset from N(0, sigma²) for the
// given seed. sigma must be non-negative.
func NewCalibrationBias(sigma float64, seed int64) (*CalibrationBias, error) {
	if sigma < 0 || !units.IsFinite(sigma) {
		return nil, fmt.Errorf("sensor: bad calibration sigma %v", sigma)
	}
	return &CalibrationBias{
		Offset: sigma * stats.HashNormal(stats.SubSeed(seed, calibrationStream), 0),
	}, nil
}

// Sample implements Stage.
func (c *CalibrationBias) Sample(_ units.Seconds, v float64) float64 {
	return v + c.Offset
}

// Reset implements Stage: the offset is a lifetime property of the part,
// so there is no state to rewind.
func (c *CalibrationBias) Reset() {}

// SlewLimit models the sensor's bounded tracking rate: the diode plus its
// sampling network follow the die with a maximum output slew, so fast
// power transients are under-reported until the reading catches up —
// exactly the window in which a reactive DTM is blind to an excursion.
type SlewLimit struct {
	// MaxPerSec is the maximum reported-temperature slew (°C/s).
	MaxPerSec float64
	lastT     units.Seconds
	out       float64
	primed    bool
}

// NewSlewLimit builds the stage. maxPerSec must be positive.
func NewSlewLimit(maxPerSec float64) (*SlewLimit, error) {
	if maxPerSec <= 0 || !units.IsFinite(maxPerSec) {
		return nil, fmt.Errorf("sensor: non-positive slew limit %v", maxPerSec)
	}
	return &SlewLimit{MaxPerSec: maxPerSec}, nil
}

// Sample implements Stage: the output moves toward v by at most
// MaxPerSec x elapsed time. The first sample primes the output exactly
// (the sensor has had all of history to settle before the run).
func (s *SlewLimit) Sample(t units.Seconds, v float64) float64 {
	if !s.primed {
		s.out = v
		s.lastT = t
		s.primed = true
		return v
	}
	dt := float64(t - s.lastT)
	if dt < 0 {
		dt = 0
	}
	s.lastT = t
	step := s.MaxPerSec * dt
	switch d := v - s.out; {
	case d > step:
		s.out += step
	case d < -step:
		s.out -= step
	default:
		s.out = v
	}
	return s.out
}

// Reset implements Stage.
func (s *SlewLimit) Reset() { s.lastT, s.out, s.primed = 0, 0, false }
