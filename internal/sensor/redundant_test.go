package sensor

import (
	"testing"

	"repro/internal/units"
)

// identity returns a fresh empty pipeline (an ideal replica chain).
func identity() Stage { return NewPipeline() }

func newTestRedundant(t *testing.T, cfg RedundantConfig, chains ...Stage) *Redundant {
	t.Helper()
	r, err := NewRedundant(cfg, chains...)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRedundantValidation(t *testing.T) {
	if _, err := NewRedundant(RedundantConfig{}, identity(), identity()); err == nil {
		t.Error("2-chain array accepted; voting needs >= 3")
	}
	if _, err := NewRedundant(RedundantConfig{}, identity(), nil, identity()); err == nil {
		t.Error("nil chain accepted")
	}
	bad := []RedundantConfig{
		{RangeMin: 10, RangeMax: 10},
		{RangeMin: 50, RangeMax: 0},
		{MaxSlewCPerS: -1},
		{OutlierC: -0.5},
		{Quorum: 4},
		{Quorum: -1},
		{HoldTicks: -2},
	}
	for i, cfg := range bad {
		if _, err := NewRedundant(cfg, identity(), identity(), identity()); err == nil {
			t.Errorf("case %d: invalid config %+v accepted", i, cfg)
		}
	}
}

// A clean array of identical replicas is transparent: fused == input,
// health OK throughout.
func TestRedundantCleanIsTransparent(t *testing.T) {
	r := newTestRedundant(t, RedundantConfig{}, identity(), identity(), identity())
	for i := 0; i < 100; i++ {
		tm := units.Seconds(i)
		v := 40 + 10*float64(i%7)/7
		if got := r.Sample(tm, v); got != v {
			t.Fatalf("t=%v: fused %v, want %v", tm, got, v)
		}
		if r.Health() != HealthOK {
			t.Fatalf("t=%v: health %v, want ok", tm, r.Health())
		}
	}
	if r.Rejected() != 0 || r.QuorumFailFrac() != 0 {
		t.Errorf("clean run rejected %d samples, quorum-fail frac %g", r.Rejected(), r.QuorumFailFrac())
	}
}

// A single replica wedged by StuckAt is outvoted as soon as its frozen
// value drifts past the outlier bound; the fused reading tracks the two
// healthy replicas and health stays OK.
func TestRedundantOutvotesStuckReplica(t *testing.T) {
	stuck, err := NewStuckAt(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	r := newTestRedundant(t, RedundantConfig{},
		NewPipeline(stuck), identity(), identity())
	for i := 0; i <= 60; i++ {
		tm := units.Seconds(i)
		v := 40 + 0.5*float64(i) // healthy replicas ramp, stuck holds 40
		got := r.Sample(tm, v)
		if got != v {
			t.Fatalf("t=%v: fused %v, want healthy value %v", tm, got, v)
		}
		if r.Health() != HealthOK {
			t.Fatalf("t=%v: health %v, want ok", tm, r.Health())
		}
	}
	if r.Rejected() == 0 {
		t.Error("stuck replica was never voted out")
	}
}

// Readings outside the ADC range are implausible and never reach the
// vote: a replica with a wild calibration offset does not move the fused
// value even though it is 1 of 3.
func TestRedundantRangePlausibility(t *testing.T) {
	r := newTestRedundant(t, RedundantConfig{RangeMin: 0, RangeMax: 100},
		NewPipeline(&CalibrationBias{Offset: 500}), identity(), identity())
	if got := r.Sample(0, 50); got != 50 {
		t.Fatalf("fused %v, want 50", got)
	}
	if r.Rejected() != 1 {
		t.Errorf("rejected %d, want 1 (the out-of-range replica)", r.Rejected())
	}
}

// A replica that jumps faster than the physical slew bound is rejected
// for that tick and recovers on the next (prev tracks the raw reading
// even through a rejection).
func TestRedundantSlewPlausibility(t *testing.T) {
	jumpy := &CalibrationBias{}
	r := newTestRedundant(t, RedundantConfig{MaxSlewCPerS: 5, Quorum: 3},
		NewPipeline(jumpy), identity(), identity())
	r.Sample(0, 40)
	r.Sample(1, 40)
	if r.Health() != HealthOK {
		t.Fatalf("health %v before the jump, want ok", r.Health())
	}
	jumpy.Offset = 50 // 50 °C in one 1 s tick >> 5 °C/s
	r.Sample(2, 40)
	if r.Health() == HealthOK {
		t.Error("50 °C/s jump kept quorum at Quorum=3; slew check missed it")
	}
	rej := r.Rejected()
	if rej == 0 {
		t.Error("jump was not rejected")
	}
	// Next tick the offset is steady: the replica's reading moves 0 °C/s
	// and is plausible again (outlier rejection is a separate concern,
	// disabled here by a huge bound via Quorum-friendly offset removal).
	jumpy.Offset = 0
	r.Sample(3, 40)
	r.Sample(4, 40)
	if r.Health() != HealthOK {
		t.Errorf("health %v two ticks after recovery, want ok", r.Health())
	}
}

// Three replicas that disagree beyond the outlier bound can't form a
// quorum: the voter holds the last good value for HoldTicks, then
// latches FailSafe.
func TestRedundantHoldThenFailSafe(t *testing.T) {
	lo := &CalibrationBias{}
	hi := &CalibrationBias{}
	r := newTestRedundant(t, RedundantConfig{OutlierC: 2, HoldTicks: 3},
		NewPipeline(lo), identity(), NewPipeline(hi))
	if got := r.Sample(0, 50); got != 50 {
		t.Fatalf("clean fused %v, want 50", got)
	}
	// Spread the replicas to 40/50/60: median 50, neighbors 10 °C out —
	// only 1 survivor < quorum 2.
	lo.Offset, hi.Offset = -10, 10
	for i := 1; i <= 3; i++ {
		got := r.Sample(units.Seconds(i), 50)
		if got != 50 {
			t.Fatalf("tick %d: hold value %v, want last good 50", i, got)
		}
		if r.Health() != HealthHold {
			t.Fatalf("tick %d: health %v, want hold", i, r.Health())
		}
	}
	r.Sample(4, 50)
	if r.Health() != HealthFailSafe {
		t.Fatalf("health %v after hold budget, want failsafe", r.Health())
	}
	if r.FailSafeFrac() == 0 {
		t.Error("FailSafeFrac 0 after latching")
	}
	// Agreement restored: the voter recovers to OK.
	lo.Offset, hi.Offset = 0, 0
	if got := r.Sample(5, 55); got != 55 || r.Health() != HealthOK {
		t.Errorf("after recovery: fused %v health %v, want 55 ok", got, r.Health())
	}
}

// With no good value ever produced, the fallback is the median of the
// raw readings.
func TestRedundantFallbackIsRawMedian(t *testing.T) {
	r := newTestRedundant(t, RedundantConfig{OutlierC: 1},
		NewPipeline(&CalibrationBias{Offset: -20}),
		identity(),
		NewPipeline(&CalibrationBias{Offset: 20}))
	if got := r.Sample(0, 50); got != 50 {
		t.Errorf("fallback fused %v, want raw median 50", got)
	}
	if r.Health() == HealthOK {
		t.Error("health ok with no quorum")
	}
}

// Even replica counts average the two middle survivors.
func TestRedundantEvenMedian(t *testing.T) {
	r := newTestRedundant(t, RedundantConfig{OutlierC: 10},
		identity(), identity(),
		NewPipeline(&CalibrationBias{Offset: 2}),
		NewPipeline(&CalibrationBias{Offset: 4}))
	if got := r.Sample(0, 50); got != 51 {
		t.Errorf("fused %v, want mean of middles 51", got)
	}
}

// Reset must replay the identical fused sequence — the warm-lockstep
// contract for every stage, including the voter's internal state and
// each replica's fault chain.
func TestRedundantResetReplaysBitIdentical(t *testing.T) {
	build := func() *Redundant {
		base1, err := New(TableIConfig())
		if err != nil {
			t.Fatal(err)
		}
		drop, err := NewDropout(0.4, 7)
		if err != nil {
			t.Fatal(err)
		}
		slew, err := NewSlewLimit(0.5)
		if err != nil {
			t.Fatal(err)
		}
		base2, err := New(TableIConfig())
		if err != nil {
			t.Fatal(err)
		}
		stuck, err := NewStuckAt(20, 35)
		if err != nil {
			t.Fatal(err)
		}
		base3, err := New(TableIConfig())
		if err != nil {
			t.Fatal(err)
		}
		return newTestRedundant(t, RedundantConfig{HoldTicks: 2},
			NewPipeline(drop, base1),
			NewPipeline(slew, base2),
			NewPipeline(base3, stuck))
	}
	input := func(i int) float64 { return 40 + 15*float64(i%13)/13 }
	r := build()
	first := make([]float64, 80)
	for i := range first {
		first[i] = r.Sample(units.Seconds(i), input(i))
	}
	r.Reset()
	if r.Health() != HealthOK || r.Rejected() != 0 || r.FailSafeFrac() != 0 {
		t.Fatal("Reset did not clear voter state")
	}
	for i := range first {
		if got := r.Sample(units.Seconds(i), input(i)); got != first[i] {
			t.Fatalf("tick %d: replay %v, want %v", i, got, first[i])
		}
	}
	// And a fresh instance matches too (Reset == construction state).
	fresh := build()
	for i := range first {
		if got := fresh.Sample(units.Seconds(i), input(i)); got != first[i] {
			t.Fatalf("tick %d: fresh instance %v, want %v", i, got, first[i])
		}
	}
}

// The power feed reaches placement stages inside replica chains, and an
// array of power-free chains reports NeedsPower false.
func TestRedundantPowerForwarding(t *testing.T) {
	place, err := NewPlacementOffset(0.1)
	if err != nil {
		t.Fatal(err)
	}
	r := newTestRedundant(t, RedundantConfig{},
		NewPipeline(place), identity(), identity())
	if !r.NeedsPower() {
		t.Fatal("NeedsPower false with a placement replica")
	}
	r.ObservePower(50) // placement reads 0.1*50 = 5 °C low
	r.Sample(0, 50)
	r.Sample(1, 50)
	// Replica 0 now reads 45, others 50: median 50, 45 within default
	// outlier? 5 > 3 -> rejected; fused 50.
	if got := r.Sample(2, 50); got != 50 {
		t.Errorf("fused %v, want 50 (placement replica outvoted)", got)
	}
	inert := newTestRedundant(t, RedundantConfig{}, identity(), identity(), identity())
	if inert.NeedsPower() {
		t.Error("NeedsPower true on an array of ideal chains")
	}
	outer := NewPipeline(inert)
	if outer.NeedsPower() {
		t.Error("pipeline wrapping an inert array reports NeedsPower")
	}
	outer2 := NewPipeline(r)
	if !outer2.NeedsPower() {
		t.Error("pipeline wrapping a powered array loses NeedsPower")
	}
}

// Sample must stay allocation-free in steady state (checked here in
// addition to the repo-level contract table so the sensor package is
// self-contained).
func TestRedundantSampleNoAllocSmoke(t *testing.T) {
	r := newTestRedundant(t, RedundantConfig{},
		identity(), identity(), NewPipeline(&CalibrationBias{Offset: 1}))
	for i := 0; i < 10; i++ {
		r.Sample(units.Seconds(i), 50)
	}
	i := 10
	if allocs := testing.AllocsPerRun(200, func() {
		r.Sample(units.Seconds(i), 50+float64(i%5))
		i++
	}); allocs != 0 {
		t.Errorf("Sample allocates %.2f objects/op, want 0", allocs)
	}
}
