package fleet

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/units"
)

// NodeResult is one server's outcome within the rack.
type NodeResult struct {
	Name  string
	Aisle Aisle
	Slot  int
	// Inlet is the node's resolved inlet (ambient) temperature: supply +
	// aisle offset + recirculated upstream exhaust.
	Inlet   units.Celsius
	Metrics sim.Metrics
	// Traces is the node's full recorded trace set; nil unless
	// Config.Record.
	Traces *trace.Set
}

// AisleMetrics aggregates the nodes of one aisle position.
type AisleMetrics struct {
	Nodes         int
	ViolationFrac float64 // tick-weighted across the aisle's nodes
	FanEnergy     units.Joule
	CPUEnergy     units.Joule
	MaxJunction   units.Celsius
	MeanInlet     units.Celsius
}

// Result is the rack-level outcome of a fleet run. All aggregates are
// computed in node order, so two runs of the same Config are bit-identical
// regardless of Workers.
type Result struct {
	Nodes  []NodeResult
	Aisles [NumAisles]AisleMetrics

	// Ticks is the per-node tick count (all nodes share tick and horizon).
	Ticks int
	// ViolationFrac is the rack's tick-weighted deadline-violation
	// fraction.
	ViolationFrac float64
	FanEnergy     units.Joule
	CPUEnergy     units.Joule
	TotalEnergy   units.Joule
	// FanEnergyShare is FanEnergy / TotalEnergy — the subsystem energy
	// proportionality number the fleet view exists to expose.
	FanEnergyShare float64
	MaxJunction    units.Celsius
	TimeAboveLimit units.Seconds // summed node-seconds above TLimit

	// PeakRackPower is the maximum over ticks of the rack's summed CPU+fan
	// power — the provisioning number a PDU sees, which node-level peaks
	// understate when they do not align in time.
	PeakRackPower units.Watt
	MeanRackPower units.Watt

	// Passes is how many whole-rack simulation passes resolved the
	// recirculation fixed point (1 when Recirc is 0).
	Passes int
}

// Inlets resolves the shared inlet-temperature field given each node's
// mean dissipated power from a previous pass (zeros for the first pass):
// supply + aisle offset + Recirc × (summed mean power of same-aisle nodes
// at strictly lower slots). The result is deterministic in node order.
func (c Config) Inlets(meanPower []units.Watt) []units.Celsius {
	inlets := make([]units.Celsius, len(c.Nodes))
	for i, n := range c.Nodes {
		inlet := c.Supply + c.AisleOffsets[n.Aisle]
		if c.Recirc > 0 && meanPower != nil {
			for j, m := range c.Nodes {
				if j != i && m.Aisle == n.Aisle && m.Slot < n.Slot {
					inlet += units.Celsius(float64(c.Recirc) * float64(meanPower[j]))
				}
			}
		}
		inlets[i] = inlet
	}
	return inlets
}

// buildJobs materializes the rack as one lockstep batch: per node, the
// spec's config with its ambient set to the resolved pass-0 inlet, a fresh
// workload generator, and a fresh policy (batch jobs must not share
// mutable state). Every pass records the power series the rack aggregation
// consumes — the lockstep engine's recording buffers are preallocated once
// and reset per pass, so this costs appends into warm storage and only the
// final pass's series survives into the result. Full trace capture (when
// Config.Record asks) is toggled per pass with Lockstep.SetRecord from Run.
func (c Config) buildJobs(inlets []units.Celsius) ([]sim.Job, error) {
	jobs := make([]sim.Job, len(c.Nodes))
	for i, n := range c.Nodes {
		cfg := n.Config
		cfg.Ambient = inlets[i]
		if err := cfg.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: node %q at inlet %v: %w", n.Name, inlets[i], err)
		}
		gen, err := n.Workload(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: node %q workload: %w", n.Name, err)
		}
		pol, err := n.Policy(cfg)
		if err != nil {
			return nil, fmt.Errorf("fleet: node %q policy: %w", n.Name, err)
		}
		server := sim.Factory(cfg)
		if n.Server != nil {
			hook, hookCfg := n.Server, cfg
			server = func() (*sim.PhysicalServer, error) { return hook(hookCfg) }
		}
		jobs[i] = sim.Job{
			Name:   n.Name,
			Server: server,
			Config: sim.RunConfig{
				Duration:    c.Duration,
				Workload:    gen,
				Policy:      pol,
				RecordPower: true,
				WarmStart:   n.WarmStart,
			},
		}
	}
	return jobs, nil
}

// rack is one warm rack instance: the lockstep batch plus the relaxation
// bookkeeping, reusable across whole relaxations. Run resolves a single
// fixed point on one; the coordinator (coordinator.go) re-enters relax
// once per coordination round, adjusting lane demand scales and wrapping
// node policies in between.
type rack struct {
	cfg Config
	ls  *sim.Lockstep
	// wrap optionally decorates each freshly built node policy (the
	// coordinator installs its per-node cap/fan limits here); nil is the
	// identity.
	wrap func(i int, p sim.Policy) sim.Policy
	// fresh marks an instance whose lanes still hold buildJobs' pristine
	// pass-0 policies and inlets: the first relax can skip its initial
	// rehome (rebuilding identical policies would only cost allocations).
	fresh bool

	meanPower []units.Watt
}

// newRack validates the config and builds the warm instance: servers
// constructed and workload schedules compiled exactly once.
func newRack(c Config) (*rack, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	jobs, err := c.buildJobs(c.Inlets(nil))
	if err != nil {
		return nil, err
	}
	ls, err := sim.NewLockstep(jobs, sim.BatchOptions{Workers: c.Workers})
	if err != nil {
		return nil, err
	}
	return &rack{cfg: c, ls: ls, fresh: true, meanPower: make([]units.Watt, len(c.Nodes))}, nil
}

// rehome prepares the warm rack instance for the next relaxation pass:
// every lane is re-homed at its new inlet and given a fresh policy built
// against that operating point (the DTM's release-speed model reads the
// ambient), decorated by the wrap hook when one is installed. Servers,
// schedules and recording buffers are reused.
func (r *rack) rehome(inlets []units.Celsius) error {
	for i, n := range r.cfg.Nodes {
		if err := r.ls.SetAmbient(i, inlets[i]); err != nil {
			return fmt.Errorf("fleet: node %q at inlet %v: %w", n.Name, inlets[i], err)
		}
		cfg := n.Config
		cfg.Ambient = inlets[i]
		pol, err := n.Policy(cfg)
		if err != nil {
			return fmt.Errorf("fleet: node %q policy: %w", n.Name, err)
		}
		if r.wrap != nil {
			pol = r.wrap(i, pol)
		}
		if err := r.ls.SetPolicy(i, pol); err != nil {
			return fmt.Errorf("fleet: node %q: %w", n.Name, err)
		}
	}
	return nil
}

// passBudget resolves the relaxation schedule: the maximum number of
// whole-rack passes and whether the loop runs to tolerance (true) or for a
// fixed pass count (false).
func (c Config) passBudget() (int, bool) {
	if c.Recirc > 0 && c.RecircTol > 0 {
		max := c.MaxRecircPasses
		if max == 0 {
			max = DefaultMaxRecircPasses
		}
		return max, true
	}
	passes := 1
	if c.Recirc > 0 {
		if c.RecircPasses > 0 {
			passes += c.RecircPasses
		} else {
			passes += DefaultRecircPasses
		}
	}
	return passes, false
}

// maxDelta returns the largest absolute inlet movement between two fields.
func maxDelta(a, b []units.Celsius) float64 {
	d := 0.0
	for i := range a {
		if m := float64(a[i] - b[i]); m > d {
			d = m
		} else if -m > d {
			d = -m
		}
	}
	return d
}

// Run simulates the rack. With Recirc > 0 it relaxes the recirculation
// fixed point: pass 1 runs every node at its position inlet, each further
// pass recomputes the inlet field from the previous pass's mean node
// powers and re-simulates. The whole relaxation executes on one warm
// lockstep instance — servers are built and workload schedules compiled
// once, and each pass re-steps the batch with updated inlets and fresh
// policies — so extra passes cost simulation time only, no construction.
// Results are bit-identical to rebuilding and re-running every pass from
// scratch, and for any Workers value.
//
// With RecircTol > 0 the loop instead runs until the inlet field moves
// less than the tolerance between passes, and errors if MaxRecircPasses
// (default DefaultMaxRecircPasses) whole-rack passes cannot reach it —
// a divergence guard for recirculation coefficients strong enough that
// the fixed point runs away instead of settling.
func Run(c Config) (*Result, error) {
	r, err := newRack(c)
	if err != nil {
		return nil, err
	}
	return r.relax(c.Record)
}

// relax resolves one whole recirculation fixed point on the warm rack
// instance, starting from the position-only (pass-0) inlet field: fresh
// policies are installed against it, every lane's demand scale and wrap
// hook is honored as currently set, and the relaxation loop of Run
// executes. record toggles full trace capture on the final pass. relax is
// re-entrant: the coordinator calls it once per round, and a repeat call
// with unchanged scales and wrap reproduces the previous result bit for
// bit.
func (r *rack) relax(record bool) (*Result, error) {
	c := r.cfg
	maxPasses, tolMode := c.passBudget()
	inlets := c.Inlets(nil)
	if r.fresh {
		r.fresh = false
	} else if err := r.rehome(inlets); err != nil {
		return nil, err
	}
	passes := 0
	var results []*sim.Result
	for {
		// Full trace capture costs seven extra series per node per
		// pass; in fixed-pass mode only the known-final pass needs it.
		// Under a convergence tolerance the final pass is only known
		// in hindsight, so every pass records (into reused buffers).
		final := tolMode || passes+1 == maxPasses
		for i := range c.Nodes {
			r.ls.SetRecord(i, record && final, true)
		}
		var err error
		results, err = r.ls.Run()
		if err != nil {
			return nil, err
		}
		passes++
		for i, res := range results {
			r.meanPower[i] = units.Watt(float64(res.Metrics.CPUEnergy+res.Metrics.FanEnergy) / float64(c.Duration))
		}
		next := c.Inlets(r.meanPower)
		if tolMode {
			if maxDelta(next, inlets) <= float64(c.RecircTol) {
				break
			}
			if passes >= maxPasses {
				return nil, fmt.Errorf("fleet: recirculation fixed point did not converge within %d passes (inlet field still moving %.3g degC > tol %v)",
					maxPasses, maxDelta(next, inlets), c.RecircTol)
			}
		} else if passes >= maxPasses {
			break
		}
		inlets = next
		if err := r.rehome(inlets); err != nil {
			return nil, err
		}
	}
	return c.aggregate(inlets, results, passes)
}

// aggregate folds the final pass's per-node results into the rack view.
func (c Config) aggregate(inlets []units.Celsius, results []*sim.Result, passes int) (*Result, error) {
	out := &Result{
		Nodes:  make([]NodeResult, len(results)),
		Passes: passes,
	}
	var rackPower []float64
	var totalTicks, totalViolations float64
	var aisleTicks, aisleViolations, aisleInlet [NumAisles]float64
	for i, r := range results {
		spec := c.Nodes[i]
		m := r.Metrics
		out.Nodes[i] = NodeResult{
			Name:    spec.Name,
			Aisle:   spec.Aisle,
			Slot:    spec.Slot,
			Inlet:   inlets[i],
			Metrics: m,
		}
		if c.Record {
			out.Nodes[i].Traces = r.Traces
		}

		power := r.Traces.Get("total_power")
		if power == nil {
			return nil, fmt.Errorf("fleet: node %q recorded no power series", spec.Name)
		}
		if rackPower == nil {
			rackPower = make([]float64, power.Len())
			out.Ticks = power.Len()
		}
		if power.Len() != len(rackPower) {
			return nil, fmt.Errorf("fleet: node %q power series length %d != %d", spec.Name, power.Len(), len(rackPower))
		}
		for k := 0; k < power.Len(); k++ {
			rackPower[k] += power.At(k).V
		}

		ticks := float64(m.Ticks)
		totalTicks += ticks
		totalViolations += m.ViolationFrac * ticks
		out.FanEnergy += m.FanEnergy
		out.CPUEnergy += m.CPUEnergy
		out.TimeAboveLimit += m.TimeAboveLimit
		if m.MaxJunction > out.MaxJunction {
			out.MaxJunction = m.MaxJunction
		}

		a := &out.Aisles[spec.Aisle]
		a.Nodes++
		a.FanEnergy += m.FanEnergy
		a.CPUEnergy += m.CPUEnergy
		if m.MaxJunction > a.MaxJunction {
			a.MaxJunction = m.MaxJunction
		}
		aisleTicks[spec.Aisle] += ticks
		aisleViolations[spec.Aisle] += m.ViolationFrac * ticks
		aisleInlet[spec.Aisle] += float64(inlets[i])
	}

	out.TotalEnergy = out.FanEnergy + out.CPUEnergy
	if out.TotalEnergy > 0 {
		out.FanEnergyShare = float64(out.FanEnergy) / float64(out.TotalEnergy)
	}
	if totalTicks > 0 {
		out.ViolationFrac = totalViolations / totalTicks
	}
	for a := range out.Aisles {
		if aisleTicks[a] > 0 {
			out.Aisles[a].ViolationFrac = aisleViolations[a] / aisleTicks[a]
		}
		if n := out.Aisles[a].Nodes; n > 0 {
			out.Aisles[a].MeanInlet = units.Celsius(aisleInlet[a] / float64(n))
		}
	}
	if len(rackPower) > 0 {
		_, peak, err := stats.MinMax(rackPower)
		if err != nil {
			return nil, err
		}
		out.PeakRackPower = units.Watt(peak)
		out.MeanRackPower = units.Watt(stats.Mean(rackPower))
	}
	return out, nil
}
