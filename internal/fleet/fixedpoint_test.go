package fleet

import (
	"strings"
	"testing"

	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/units"
)

// naiveRun reimplements the pre-lockstep relaxation loop — every pass
// rebuilds every node (server, workload generator, policy) and runs a
// fresh sim.RunBatch, recording only on the final pass — as the reference
// the warm-instance rewrite must match bit for bit.
func naiveRun(t *testing.T, c Config) *Result {
	t.Helper()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	passes := 1
	if c.Recirc > 0 {
		if c.RecircPasses > 0 {
			passes += c.RecircPasses
		} else {
			passes += DefaultRecircPasses
		}
	}
	meanPower := make([]units.Watt, len(c.Nodes))
	var results []*sim.Result
	var inlets []units.Celsius
	for p := 0; p < passes; p++ {
		inlets = c.Inlets(meanPower)
		final := p == passes-1
		jobs := make([]sim.Job, len(c.Nodes))
		for i, n := range c.Nodes {
			cfg := n.Config
			cfg.Ambient = inlets[i]
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			gen, err := n.Workload(cfg)
			if err != nil {
				t.Fatal(err)
			}
			pol, err := n.Policy(cfg)
			if err != nil {
				t.Fatal(err)
			}
			server := sim.Factory(cfg)
			if n.Server != nil {
				hook, hookCfg := n.Server, cfg
				server = func() (*sim.PhysicalServer, error) { return hook(hookCfg) }
			}
			jobs[i] = sim.Job{
				Name:   n.Name,
				Server: server,
				Config: sim.RunConfig{
					Duration:    c.Duration,
					Workload:    gen,
					Policy:      pol,
					Record:      final && c.Record,
					RecordPower: final,
					WarmStart:   n.WarmStart,
				},
			}
		}
		var err error
		results, err = sim.RunBatch(jobs, sim.BatchOptions{Workers: c.Workers})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			meanPower[i] = units.Watt(float64(r.Metrics.CPUEnergy+r.Metrics.FanEnergy) / float64(c.Duration))
		}
	}
	res, err := c.aggregate(inlets, results, passes)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFixedPointMatchesNaiveRebuild is the warm-instance acceptance bar:
// the relaxation's pass count, resolved inlet field, per-node metrics and
// rack aggregates must all be unchanged by holding one warm lockstep
// instance instead of rebuilding the rack every pass.
func TestFixedPointMatchesNaiveRebuild(t *testing.T) {
	for _, passes := range []int{0, 2} { // default depth and a deeper relaxation
		cfg := testRack(t, 5, 1)
		cfg.RecircPasses = passes
		want := naiveRun(t, cfg)
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got.Passes != want.Passes {
			t.Fatalf("RecircPasses=%d: warm rewrite ran %d passes, naive %d", passes, got.Passes, want.Passes)
		}
		for i := range want.Nodes {
			if got.Nodes[i].Inlet != want.Nodes[i].Inlet {
				t.Errorf("RecircPasses=%d node %q: inlet %v != naive %v",
					passes, want.Nodes[i].Name, got.Nodes[i].Inlet, want.Nodes[i].Inlet)
			}
			if got.Nodes[i].Metrics != want.Nodes[i].Metrics {
				t.Errorf("RecircPasses=%d node %q: metrics differ from naive rebuild",
					passes, want.Nodes[i].Name)
			}
		}
		if got.ViolationFrac != want.ViolationFrac ||
			got.FanEnergy != want.FanEnergy ||
			got.CPUEnergy != want.CPUEnergy ||
			got.PeakRackPower != want.PeakRackPower ||
			got.MeanRackPower != want.MeanRackPower ||
			got.MaxJunction != want.MaxJunction {
			t.Errorf("RecircPasses=%d: rack aggregates differ from naive rebuild", passes)
		}
	}
}

// TestFixedPointFaultedServerMatchesNaiveRebuild: a node whose sensor
// chain carries stateful non-ideal stages (power-tracking placement
// offset, slew limiter, dropout) must relax identically whether the rack
// holds one warm lockstep instance — stage state surviving only through
// Reset between passes — or rebuilds every node from scratch each pass.
// A stage whose Reset leaks state across passes diverges here. A second
// node fuses three replica chains through a sensor.Redundant voter, the
// deepest stateful stack the scenario layer builds (per-replica fault
// state plus the voter's hold/disagree counters), so the voter's Reset
// contract is exercised through the rack relaxation too.
func TestFixedPointFaultedServerMatchesNaiveRebuild(t *testing.T) {
	cfg := testRack(t, 4, 3)
	cfg.RecircPasses = 2
	cfg.Nodes[0].Server = func(c sim.Config) (*sim.PhysicalServer, error) {
		server, err := sim.NewPhysicalServer(c)
		if err != nil {
			return nil, err
		}
		base, err := sensor.New(c.Sensor)
		if err != nil {
			return nil, err
		}
		place, err := sensor.NewPlacementOffset(0.05)
		if err != nil {
			return nil, err
		}
		slew, err := sensor.NewSlewLimit(0.5)
		if err != nil {
			return nil, err
		}
		drop, err := sensor.NewDropout(0.3, 7)
		if err != nil {
			return nil, err
		}
		if err := server.ReplaceSensor(sensor.NewPipeline(place, slew, base, drop)); err != nil {
			return nil, err
		}
		return server, nil
	}
	cfg.Nodes[1].Server = func(c sim.Config) (*sim.PhysicalServer, error) {
		server, err := sim.NewPhysicalServer(c)
		if err != nil {
			return nil, err
		}
		chains := make([]sensor.Stage, 3)
		for j := range chains {
			scfg := c.Sensor
			base, err := sensor.New(scfg)
			if err != nil {
				return nil, err
			}
			drop, err := sensor.NewDropout(0.25, int64(100+j))
			if err != nil {
				return nil, err
			}
			if j == 0 {
				stuck, err := sensor.NewStuckAt(60, 200)
				if err != nil {
					return nil, err
				}
				chains[j] = sensor.NewPipeline(base, drop, stuck)
				continue
			}
			chains[j] = sensor.NewPipeline(base, drop)
		}
		red, err := sensor.NewRedundant(sensor.RedundantConfig{
			RangeMin: c.Sensor.RangeMin, RangeMax: c.Sensor.RangeMax,
		}, chains...)
		if err != nil {
			return nil, err
		}
		if err := server.ReplaceSensor(sensor.NewPipeline(red)); err != nil {
			return nil, err
		}
		return server, nil
	}
	want := naiveRun(t, cfg)
	got, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Passes != want.Passes {
		t.Fatalf("warm rewrite ran %d passes, naive %d", got.Passes, want.Passes)
	}
	for i := range want.Nodes {
		if got.Nodes[i].Inlet != want.Nodes[i].Inlet {
			t.Errorf("node %q: inlet %v != naive %v",
				want.Nodes[i].Name, got.Nodes[i].Inlet, want.Nodes[i].Inlet)
		}
		if got.Nodes[i].Metrics != want.Nodes[i].Metrics {
			t.Errorf("node %q: metrics differ from naive rebuild", want.Nodes[i].Name)
		}
	}
	if got.ViolationFrac != want.ViolationFrac || got.FanEnergy != want.FanEnergy {
		t.Errorf("rack aggregates differ from naive rebuild")
	}
}

// TestFixedPointConvergence: with a tolerance the relaxation runs until
// the inlet field settles, reports how many passes that took, and the
// resolved field is genuinely self-consistent (one more projection moves
// it less than the tolerance).
func TestFixedPointConvergence(t *testing.T) {
	cfg := testRack(t, 5, 1)
	cfg.RecircTol = 0.05
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes < 2 {
		t.Errorf("converged in %d passes; recirculation should need at least 2", res.Passes)
	}
	if res.Passes > DefaultMaxRecircPasses {
		t.Errorf("passes %d exceeds bound %d", res.Passes, DefaultMaxRecircPasses)
	}
	// Self-consistency: projecting the final mean powers through the inlet
	// model again must stay within the tolerance of the reported field.
	meanPower := make([]units.Watt, len(cfg.Nodes))
	inlets := make([]units.Celsius, len(cfg.Nodes))
	for i, n := range res.Nodes {
		meanPower[i] = units.Watt(float64(n.Metrics.CPUEnergy+n.Metrics.FanEnergy) / float64(cfg.Duration))
		inlets[i] = n.Inlet
	}
	next := cfg.Inlets(meanPower)
	if d := maxDelta(next, inlets); d > float64(cfg.RecircTol) {
		t.Errorf("reported inlet field moves %.4g degC under one more projection, tol %v", d, cfg.RecircTol)
	}
}

// TestFixedPointDivergenceGuard: when the pass budget cannot reach the
// tolerance the relaxation must error loudly instead of silently returning
// a non-converged field.
func TestFixedPointDivergenceGuard(t *testing.T) {
	cfg := testRack(t, 5, 1)
	// One pass can never satisfy the tolerance: the first projection adds
	// the (nonzero) recirculation contributions to the position-only field.
	cfg.RecircTol = 1e-12
	cfg.MaxRecircPasses = 1
	_, err := Run(cfg)
	if err == nil {
		t.Fatal("non-converged relaxation returned silently")
	}
	if !strings.Contains(err.Error(), "did not converge") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestFixedPointTolValidation: negative or non-finite tolerances and
// negative pass bounds are rejected.
func TestFixedPointTolValidation(t *testing.T) {
	cfg := testRack(t, 3, 1)
	cfg.RecircTol = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative tolerance accepted")
	}
	cfg = testRack(t, 3, 1)
	cfg.MaxRecircPasses = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative max passes accepted")
	}
}
