// Package fleet is the rack/datacenter topology layer on top of the sim
// batch engine: it simulates N heterogeneous servers — each with its own
// sim.Config, workload generator and DTM policy — as one parallel batch,
// couples them through a shared inlet-temperature field, and aggregates
// rack-level metrics (violations, fan and CPU energy, per-aisle
// breakdowns, peak rack power).
//
// The paper's controller is per-server, but enterprise servers never run
// alone: racks share the machine-room air. The inlet model captures the
// two first-order effects of that sharing. First, position: cold-aisle
// faces breathe CRAC supply air while mid- and hot-aisle positions sit in
// progressively warmer air (Config.Supply plus Config.AisleOffsets).
// Second, recirculation: a fraction of upstream exhaust re-enters
// downstream intakes along an aisle's airflow path, so a node's inlet
// rises with the mean power dissipated by the nodes at lower Slot indices
// in its aisle (Config.Recirc, resolved by fixed-point relaxation over
// whole-rack simulation passes — see Run).
//
// Every node of a fleet run is an independent lane of one warm
// sim.Lockstep batch: servers are constructed and workload schedules
// precompiled once per Run, and each relaxation pass re-steps the same
// instance with updated inlets and fresh policies. The rack inherits the
// batch engine's guarantees — results are order-stable, bit-identical
// between Workers = 1 and Workers = N (and to per-pass sim.RunBatch
// rebuilds), and -race clean.
package fleet

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/units"
	"repro/internal/workload"
)

// Aisle is a rack position class in the cold/hot-aisle containment layout.
type Aisle int

// Aisle positions, ordered by inlet temperature.
const (
	Cold Aisle = iota // faces the CRAC supply
	Mid               // row middle, partially mixed air
	Hot               // faces the exhaust side
	NumAisles
)

// String implements fmt.Stringer.
func (a Aisle) String() string {
	switch a {
	case Cold:
		return "cold"
	case Mid:
		return "mid"
	case Hot:
		return "hot"
	}
	return fmt.Sprintf("aisle(%d)", int(a))
}

// WorkloadFactory builds a node's workload generator from its resolved
// configuration (the Tick is needed by per-tick noise overlays). Factories
// may be shared across nodes: generators are read-only during a run. A
// factory is invoked once per Run — with the node's position inlet in
// cfg.Ambient — and its generator is precompiled into a demand schedule
// reused across every relaxation pass, so generators must not depend on
// the ambient temperature (demand is exogenous to the machine room).
type WorkloadFactory func(cfg sim.Config) (workload.Generator, error)

// PolicyFactory builds a node's private DTM policy from its resolved
// configuration. It is invoked once per node per pass, so every batch job
// owns its policy state (the batch engine rejects aliased policies).
type PolicyFactory func(cfg sim.Config) (sim.Policy, error)

// ServerFactory optionally overrides a node's platform construction —
// the hook the scenario layer uses to splice fault stages into a node's
// sensor chain. It receives the node's resolved configuration (position
// inlet applied) and is invoked once per Run: the warm lockstep keeps the
// instance across relaxation passes and coordinator rounds, Reset()ing it
// (server and sensor chain, fault stages included) between passes, so
// every pass replays the same non-ideal chain from its initial state.
type ServerFactory func(cfg sim.Config) (*sim.PhysicalServer, error)

// NodeSpec describes one server's place in the rack.
type NodeSpec struct {
	// Name labels the node in results; must be unique within the rack.
	Name string
	// Aisle is the node's position class; it selects the inlet offset.
	Aisle Aisle
	// Slot is the node's depth along its aisle's airflow path: recirculated
	// exhaust from nodes at strictly lower slots raises this node's inlet.
	Slot int
	// Config is the node's platform; its Ambient is overwritten by the
	// resolved inlet temperature.
	Config sim.Config
	// Workload builds the node's demand trace. Required.
	Workload WorkloadFactory
	// Policy builds the node's DTM. Required.
	Policy PolicyFactory
	// Server optionally overrides platform construction (fault-injected
	// sensor chains); nil builds the plain sim.NewPhysicalServer.
	Server ServerFactory
	// WarmStart optionally starts the node at a thermal operating point.
	WarmStart *sim.WarmPoint
}

// Config describes a whole-rack simulation.
type Config struct {
	// Nodes is the rack population. Required, non-empty.
	Nodes []NodeSpec
	// Supply is the CRAC supply (cold-aisle inlet) temperature.
	Supply units.Celsius
	// AisleOffsets is added to Supply per aisle position.
	AisleOffsets [NumAisles]units.Celsius
	// Recirc is the recirculation coefficient: the inlet temperature rise,
	// per watt of mean upstream power, seen by a downstream node in the
	// same aisle. Zero disables recirculation (single pass).
	Recirc units.KPerW
	// RecircPasses is the number of fixed-point relaxation passes resolving
	// the recirculation coupling (each pass re-simulates the rack with the
	// inlet field computed from the previous pass's mean node powers).
	// Zero means DefaultRecircPasses when Recirc > 0.
	RecircPasses int
	// RecircTol, when positive, switches the relaxation from a fixed pass
	// count to convergence: passes repeat until the inlet field moves
	// less than RecircTol between consecutive passes. Run errors if
	// MaxRecircPasses whole-rack passes cannot reach the tolerance — the
	// divergence guard for recirculation coefficients so strong the fixed
	// point runs away instead of settling. With Recirc == 0 there is no
	// coupling to relax: the position-only inlet field is exact after the
	// single pass, so any tolerance is trivially met (Passes reports 1).
	RecircTol units.Celsius
	// MaxRecircPasses bounds the RecircTol relaxation (default
	// DefaultMaxRecircPasses). Ignored in fixed-pass mode.
	MaxRecircPasses int
	// Duration is the simulated horizon per node.
	Duration units.Seconds
	// Workers caps batch concurrency; zero means GOMAXPROCS; results are
	// bit-identical at any value.
	Workers int
	// Record keeps every node's full trace set in the result (memory-heavy
	// for long runs; rack power metrics are computed either way).
	Record bool
}

// DefaultRecircPasses is the relaxation depth used when Recirc > 0 and
// RecircPasses is unset. One pass resolves the first-order coupling; the
// exhaust rise of a server changes little when its own inlet shifts by a
// few kelvin, so deeper fixed-point iterations move inlets by well under
// the sensor quantization step.
const DefaultRecircPasses = 1

// DefaultMaxRecircPasses bounds the RecircTol convergence loop when
// Config.MaxRecircPasses is unset. A physically sensible rack converges in
// a handful of passes; hitting this bound means the recirculation gain is
// strong enough that each pass amplifies the inlet field instead of
// settling it, and Run reports the divergence instead of looping silently.
const DefaultMaxRecircPasses = 25

// DefaultOffsets returns a typical containment gradient: cold-aisle faces
// at supply temperature, mid positions +4 °C, hot-aisle positions +8 °C.
func DefaultOffsets() [NumAisles]units.Celsius {
	return [NumAisles]units.Celsius{Cold: 0, Mid: 4, Hot: 8}
}

// Validate reports the first invalid parameter, or nil. It exists so that
// degenerate fleets (0-node racks, duplicate node names, negative
// recirculation, mixed tick rates) fail loudly at construction instead of
// surfacing as NaN temperatures mid-run.
func (c Config) Validate() error {
	if len(c.Nodes) == 0 {
		return fmt.Errorf("fleet: 0-node rack")
	}
	if c.Duration <= 0 || !units.IsFinite(float64(c.Duration)) {
		return fmt.Errorf("fleet: bad duration %v", c.Duration)
	}
	if !units.IsFinite(float64(c.Supply)) {
		return fmt.Errorf("fleet: non-finite supply temperature %v", c.Supply)
	}
	for a, off := range c.AisleOffsets {
		if !units.IsFinite(float64(off)) {
			return fmt.Errorf("fleet: non-finite %v-aisle offset %v", Aisle(a), off)
		}
	}
	if c.Recirc < 0 || !units.IsFinite(float64(c.Recirc)) {
		return fmt.Errorf("fleet: bad recirculation coefficient %v", c.Recirc)
	}
	if c.RecircPasses < 0 {
		return fmt.Errorf("fleet: negative recirculation passes %d", c.RecircPasses)
	}
	if c.RecircTol < 0 || !units.IsFinite(float64(c.RecircTol)) {
		return fmt.Errorf("fleet: bad recirculation tolerance %v", c.RecircTol)
	}
	if c.MaxRecircPasses < 0 {
		return fmt.Errorf("fleet: negative max recirculation passes %d", c.MaxRecircPasses)
	}
	names := make(map[string]int, len(c.Nodes))
	tick := c.Nodes[0].Config.Tick
	for i, n := range c.Nodes {
		if n.Name == "" {
			return fmt.Errorf("fleet: node %d has no name", i)
		}
		if prev, dup := names[n.Name]; dup {
			return fmt.Errorf("fleet: duplicate node name %q (nodes %d and %d)", n.Name, prev, i)
		}
		names[n.Name] = i
		if n.Aisle < 0 || n.Aisle >= NumAisles {
			return fmt.Errorf("fleet: node %q in unknown aisle %d", n.Name, int(n.Aisle))
		}
		if n.Slot < 0 {
			return fmt.Errorf("fleet: node %q at negative slot %d", n.Name, n.Slot)
		}
		if n.Workload == nil {
			return fmt.Errorf("fleet: node %q has no workload factory", n.Name)
		}
		if n.Policy == nil {
			return fmt.Errorf("fleet: node %q has no policy factory", n.Name)
		}
		if n.Config.Tick != tick {
			// Rack power aggregation sums per-tick series across nodes;
			// mixed tick rates cannot align.
			return fmt.Errorf("fleet: node %q tick %v differs from node %q tick %v",
				n.Name, n.Config.Tick, c.Nodes[0].Name, tick)
		}
		if err := n.Config.Validate(); err != nil {
			return fmt.Errorf("fleet: node %q: %w", n.Name, err)
		}
	}
	return nil
}

// NewRack builds a heterogeneous n-node rack: aisles assigned by cycling
// through layout (slots numbered per aisle in order), workloads cycling
// through four server archetypes (noisy web square wave, Markov-modulated
// burst, spiky batch, PRBS stress), every node under the paper's full DTM
// stack. Per-node randomness derives from seed through the stats.SubSeed
// mixing hash, so adjacent nodes run decorrelated streams. The returned
// config uses Table I platforms, the default aisle offsets, a one-hour
// horizon, and no recirculation; callers adjust fields before Run.
func NewRack(n int, layout []Aisle, seed int64) (Config, error) {
	if n < 1 {
		return Config{}, fmt.Errorf("fleet: rack size %d", n)
	}
	if len(layout) == 0 {
		layout = []Aisle{Cold, Mid, Hot}
	}
	for _, a := range layout {
		if a < 0 || a >= NumAisles {
			return Config{}, fmt.Errorf("fleet: unknown aisle %d in layout", int(a))
		}
	}
	nodes := make([]NodeSpec, n)
	slots := [NumAisles]int{}
	for i := 0; i < n; i++ {
		aisle := layout[i%len(layout)]
		slot := slots[aisle]
		slots[aisle]++
		nodes[i] = NodeSpec{
			Name:      fmt.Sprintf("%s-%02d", aisle, slot),
			Aisle:     aisle,
			Slot:      slot,
			Config:    sim.Default(),
			Workload:  archetype(i, stats.SubSeed(seed, int64(i))),
			Policy:    FullStack,
			WarmStart: &sim.WarmPoint{Util: 0.2, Fan: 1500},
		}
	}
	return Config{
		Nodes:        nodes,
		Supply:       24,
		AisleOffsets: DefaultOffsets(),
		Duration:     3600,
	}, nil
}

// FullStack is the PolicyFactory for the paper's complete proposal
// (R-coord + A-T_ref + SS_fan) — the default DTM for fleet nodes, shared
// by NewRack and the examples.
func FullStack(cfg sim.Config) (sim.Policy, error) {
	d, err := core.NewFullStack(cfg)
	if err != nil {
		return nil, err
	}
	return d, nil
}

// archetype returns the i-th node's workload factory: four server roles
// cycled across the rack, each seeded with its own decorrelated stream.
func archetype(i int, seed int64) WorkloadFactory {
	switch i % 4 {
	case 0: // web front: the paper's square wave plus demand noise
		return func(cfg sim.Config) (workload.Generator, error) {
			return workload.NewNoisy(workload.PaperSquare(400), 0.04, cfg.Tick, seed)
		}
	case 1: // bursty service: Markov-modulated busy/idle
		return func(cfg sim.Config) (workload.Generator, error) {
			return workload.Markov{
				IdleU: 0.15, BusyU: 0.85, Dwell: 45,
				PIdleToBusy: 0.25, PBusyToIdle: 0.2, Seed: seed,
			}, nil
		}
	case 2: // batch node: steady base with periodic full-load spikes
		return func(cfg sim.Config) (workload.Generator, error) {
			noisy, err := workload.NewNoisy(workload.Constant{U: 0.65}, 0.05, cfg.Tick, seed)
			if err != nil {
				return nil, err
			}
			return workload.NewSpiky(noisy, workload.PeriodicSpikes(200, 500, 30, 1.0, 6))
		}
	default: // stress/identification: pseudo-random binary excitation
		return func(cfg sim.Config) (workload.Generator, error) {
			return workload.PRBS{Low: 0.2, High: 0.8, Dwell: 90, Seed: seed}, nil
		}
	}
}
