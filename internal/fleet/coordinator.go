package fleet

import (
	"fmt"
	"math"
	"reflect"

	"repro/internal/coord"
	"repro/internal/sim"
	"repro/internal/units"
)

// This file is the rack-level global coordinator: where Run leaves every
// node's DTM to optimize its own server, RunCoordinated layers a
// rack-scope control loop over the warm-lockstep fixed point. Between
// whole relaxations it (a) arbitrates per-node cap/fan intents against a
// global rack power budget with the Table II-style multi-node selector
// (coord.ArbitrateRack — the same performance-biased matrix, extended
// across nodes instead of duplicated), and (b) performs thermal-aware
// load placement: divisible workload share migrates from nodes breathing
// hot air (downstream in the recirculation graph, high resolved inlet)
// toward cool nodes with headroom, in the spirit of Van Damme, De Persis
// & Tesi's thermal-aware job scheduling. Each round re-enters the warm
// instance — no servers are rebuilt, no schedules recompiled — and the
// final answer is the best round under a safety-first objective, so
// coordination can only beat or tie local control.

// CoordinatorConfig holds the rack coordinator's policy knobs. The zero
// value of every field selects the documented default.
type CoordinatorConfig struct {
	// PowerBudget is the global rack power budget (W) the cap arbitration
	// splits across nodes. Zero disables cap arbitration (placement
	// only). A budget below the sum of the node floors is clamped up to
	// it — local thermal/performance constraints outrank the budget — and
	// the resolved value is reported in CoordResult.Budget.
	PowerBudget units.Watt
	// MigrationGain is the fraction of a node's share the placement step
	// may move per round at the extreme of the inlet spread (0..1].
	// Default 0.5.
	MigrationGain float64
	// MaxShare / MinShare bound every node's demand share (1 = the
	// node's own workload, unmigrated). Defaults 1.25 / 0.5.
	MaxShare float64
	MinShare float64
	// PeakTarget bounds what a receiver may be scaled to at its demand
	// peak: node i's share never exceeds PeakTarget / peakDemand_i, so
	// migration cannot push a node's scaled spikes past the point where
	// any transient cap becomes a violation. Default 0.9.
	PeakTarget float64
	// Rounds is how many coordination rounds run after the local
	// baseline. Default 2. The loop stops early when a round's plan
	// stops moving.
	Rounds int
	// CapFloor is the utilization floor the arbitration guarantees every
	// node (the local DTM's own MinCap). Default 0.5.
	CapFloor units.Utilization
	// FanTrim, when positive, caps the fan command of nodes the selector
	// marks for fan-down savings at meanFan*(1+FanTrim). Default 0
	// (disabled): trimming trades thermal headroom for energy, and the
	// best-round objective already discards rounds that lose the trade.
	FanTrim float64
}

func (cc *CoordinatorConfig) setDefaults() {
	if cc.MigrationGain == 0 {
		cc.MigrationGain = 0.5
	}
	if cc.MaxShare == 0 {
		cc.MaxShare = 1.25
	}
	if cc.MinShare == 0 {
		cc.MinShare = 0.5
	}
	if cc.PeakTarget == 0 {
		cc.PeakTarget = 0.9
	}
	if cc.Rounds == 0 {
		cc.Rounds = 2
	}
	if cc.CapFloor == 0 {
		cc.CapFloor = 0.5
	}
}

// validate rejects degenerate coordinator knobs.
func (cc CoordinatorConfig) validate() error {
	if cc.PowerBudget < 0 || !units.IsFinite(float64(cc.PowerBudget)) {
		return fmt.Errorf("fleet: bad coordinator power budget %v", cc.PowerBudget)
	}
	if cc.MigrationGain < 0 || cc.MigrationGain > 1 || !units.IsFinite(cc.MigrationGain) {
		return fmt.Errorf("fleet: migration gain %v outside [0, 1]", cc.MigrationGain)
	}
	if cc.MinShare < 0 || cc.MinShare > 1 || !units.IsFinite(cc.MinShare) {
		return fmt.Errorf("fleet: min share %v outside [0, 1]", cc.MinShare)
	}
	if cc.MaxShare < 1 || !units.IsFinite(cc.MaxShare) {
		return fmt.Errorf("fleet: max share %v below 1", cc.MaxShare)
	}
	if cc.PeakTarget <= 0 || cc.PeakTarget > 1 || !units.IsFinite(cc.PeakTarget) {
		return fmt.Errorf("fleet: peak target %v outside (0, 1]", cc.PeakTarget)
	}
	if cc.Rounds < 0 {
		return fmt.Errorf("fleet: negative coordinator rounds %d", cc.Rounds)
	}
	if cc.CapFloor <= 0 || cc.CapFloor > 1 {
		return fmt.Errorf("fleet: cap floor %v outside (0, 1]", cc.CapFloor)
	}
	if cc.FanTrim < 0 || !units.IsFinite(cc.FanTrim) {
		return fmt.Errorf("fleet: negative fan trim %v", cc.FanTrim)
	}
	return nil
}

// CoordResult is the outcome of a coordinated rack run: the local
// (per-node control only) baseline, the coordinated result, and the plan
// that produced it.
type CoordResult struct {
	// Local is the round-0 baseline — exactly Run's result for the same
	// Config (trace capture aside; see RunCoordinated).
	Local *Result
	// Coordinated is the best round's result. When no round improved on
	// local control it is the local result itself (BestRound 0).
	Coordinated *Result
	// Rounds is how many coordination rounds actually executed.
	Rounds int
	// BestRound is the round the Coordinated result came from; 0 means
	// local control won.
	BestRound int
	// Budget is the resolved global power budget (0 when cap arbitration
	// is off): max(CoordinatorConfig.PowerBudget, sum of node floors).
	Budget units.Watt
	// Shares is the best round's per-node demand share (1 = unmigrated).
	Shares []float64
	// CapCeils is the best round's arbitrated per-node cap ceiling
	// (1 = unconstrained); nil when cap arbitration is off.
	CapCeils []units.Utilization
	// FanCeils is the best round's per-node fan command ceiling
	// (0 = unconstrained); nil when fan trimming is off.
	FanCeils []units.RPM
	// MigratedShare is the demand-weighted fraction of the rack's load
	// the best plan moved off its home nodes.
	MigratedShare float64
	// TotalPasses counts every whole-rack simulation pass executed
	// (baseline + all rounds + the recording re-run, if any).
	TotalPasses int
}

// limitedPolicy clamps a node DTM's commands to the coordinator's grants:
// the cap never rises above the arbitrated ceiling and the fan command
// never above the trim ceiling. Everything else — timing, set-points,
// boosts — stays the inner policy's business.
type limitedPolicy struct {
	inner   sim.Policy
	capCeil units.Utilization // <= 0 disables
	fanCeil units.RPM         // <= 0 disables
}

// Name implements sim.Policy.
func (p *limitedPolicy) Name() string { return p.inner.Name() + "+rack" }

// Step implements sim.Policy.
func (p *limitedPolicy) Step(obs sim.Observation) sim.Command {
	cmd := p.inner.Step(obs)
	if p.capCeil > 0 && cmd.Cap > p.capCeil {
		cmd.Cap = p.capCeil
	}
	if p.fanCeil > 0 && cmd.Fan > p.fanCeil {
		cmd.Fan = p.fanCeil
	}
	return cmd
}

// Reset implements sim.Policy.
func (p *limitedPolicy) Reset() { p.inner.Reset() }

// coordPlan is one round's actuation: per-node demand shares plus the
// arbitration's per-node ceilings.
type coordPlan struct {
	shares   []float64
	capCeils []units.Utilization // nil: no cap arbitration
	fanCeils []units.RPM         // nil: no fan trimming
}

// identityPlan is the do-nothing plan (round 0: pure local control).
func identityPlan(n int) coordPlan {
	shares := make([]float64, n)
	for i := range shares {
		shares[i] = 1
	}
	return coordPlan{shares: shares}
}

// apply installs the plan on the warm rack instance: lane demand scales
// plus the policy wrap carrying the ceilings.
func (r *rack) apply(p coordPlan) error {
	for i := range r.cfg.Nodes {
		if err := r.ls.SetDemandScale(i, p.shares[i]); err != nil {
			return err
		}
	}
	if p.capCeils == nil && p.fanCeils == nil {
		r.wrap = nil
		return nil
	}
	r.wrap = func(i int, pol sim.Policy) sim.Policy {
		var capCeil units.Utilization
		var fanCeil units.RPM
		if p.capCeils != nil {
			capCeil = p.capCeils[i]
			if capCeil >= 1 {
				capCeil = 0 // unconstrained
			}
		}
		if p.fanCeils != nil {
			fanCeil = p.fanCeils[i]
		}
		if capCeil <= 0 && fanCeil <= 0 {
			return pol
		}
		return &limitedPolicy{inner: pol, capCeil: capCeil, fanCeil: fanCeil}
	}
	return nil
}

// betterResult is the coordinator's objective: fewer deadline violations
// (the paper's headline performance metric), then less fan energy (its
// headline cost), then fewer node-seconds above the comfort limit — a
// band the per-node DTMs already regulate, and one every rack spends
// hundreds of node-seconds in under plain local control. Strict
// improvement is required — on a full tie the earlier round (ultimately
// local control) keeps the title.
func betterResult(a, b *Result) bool {
	if a.ViolationFrac != b.ViolationFrac {
		return a.ViolationFrac < b.ViolationFrac
	}
	if a.FanEnergy != b.FanEnergy {
		return a.FanEnergy < b.FanEnergy
	}
	return a.TimeAboveLimit < b.TimeAboveLimit
}

// migrate computes the next round's demand shares from the previous
// round's resolved inlet field: nodes hotter than the rack mean shed
// share in proportion to how far above it they sit, and the shed total is
// redistributed to cooler nodes in proportion to their remaining
// headroom. The rack's total mean demand is conserved exactly (donor
// share leaves in the same demand-weighted units receivers absorb), and
// node i's share stays inside [MinShare, maxShare[i]] — the per-node
// ceiling already folds the peak-demand headroom into MaxShare.
func migrate(cc CoordinatorConfig, inlets []units.Celsius, meanDemand, maxShare, shares []float64) []float64 {
	n := len(shares)
	next := make([]float64, n)
	copy(next, shares)
	if cc.MigrationGain <= 0 || n < 2 {
		return next
	}
	mean, lo, hi := 0.0, math.Inf(1), math.Inf(-1)
	for _, t := range inlets {
		v := float64(t)
		mean += v
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	mean /= float64(n)
	spread := hi - lo
	if spread <= 1e-9 {
		return next // a flat inlet field has nothing to exploit
	}

	// Donors: shed share proportional to inlet excess, floored at
	// MinShare. Shed is accounted in demand units (share × the node's
	// unscaled mean demand) so conservation is demand-weighted.
	shed := make([]float64, n)
	total := 0.0
	for i := range next {
		excess := float64(inlets[i]) - mean
		if excess <= 0 || meanDemand[i] <= 0 {
			continue
		}
		d := cc.MigrationGain * (excess / spread) * next[i]
		if d > next[i]-cc.MinShare {
			d = next[i] - cc.MinShare
		}
		if d <= 0 {
			continue
		}
		shed[i] = d * meanDemand[i]
		total += shed[i]
	}
	if total <= 0 {
		return next
	}

	// Receivers: capacity is the headroom to MaxShare, again in demand
	// units. If the rack cannot absorb the full shed, donors keep the
	// remainder (scaled back proportionally).
	capacity := make([]float64, n)
	capTotal := 0.0
	for i := range next {
		if float64(inlets[i]) >= mean || meanDemand[i] <= 0 {
			continue
		}
		capacity[i] = (maxShare[i] - next[i]) * meanDemand[i]
		if capacity[i] < 0 {
			capacity[i] = 0
		}
		capTotal += capacity[i]
	}
	if capTotal <= 0 {
		return next
	}
	moved := total
	if capTotal < moved {
		moved = capTotal
	}
	scaleBack := moved / total
	for i := range next {
		if shed[i] > 0 {
			next[i] -= shed[i] * scaleBack / meanDemand[i]
		}
		if capacity[i] > 0 {
			next[i] += capacity[i] * (moved / capTotal) / meanDemand[i]
		}
	}
	return next
}

// arbitrate turns the previous round's per-node outcomes into Table II
// proposals, runs the rack-level selector against the global budget, and
// maps the granted power allocations back to cap ceilings. Returns nil
// ceilings when the budget knob is off.
func arbitrate(c Config, cc CoordinatorConfig, res *Result) (ceils []units.Utilization, fans []units.RPM, budget units.Watt, err error) {
	if cc.PowerBudget <= 0 && cc.FanTrim <= 0 {
		return nil, nil, 0, nil
	}
	proposals := make([]coord.RackProposal, len(c.Nodes))
	sumFloor := 0.0
	for i, node := range c.Nodes {
		cpu, _, err := node.Config.Models()
		if err != nil {
			return nil, nil, 0, fmt.Errorf("fleet: node %q: %w", node.Name, err)
		}
		m := res.Nodes[i].Metrics
		capDir := coord.Hold
		switch {
		case m.ViolationFrac > 0:
			capDir = coord.Up
		case float64(m.MeanDelivered)+0.15 < 1:
			capDir = coord.Down
		}
		fanDir := coord.Hold
		switch {
		case m.TimeAboveLimit > 0 || m.MaxJunction > node.Config.TLimit-1:
			fanDir = coord.Up
		case m.ViolationFrac == 0 && m.MeanFanSpeed > node.Config.FanMinSpeed+500:
			fanDir = coord.Down
		}
		need := cpu.Power(1)
		if capDir != coord.Up {
			need = cpu.Power(units.ClampUtil(m.MeanDelivered + 0.1))
		}
		floor := cpu.Power(cc.CapFloor)
		sumFloor += float64(floor)
		proposals[i] = coord.RackProposal{
			CapDir:  capDir,
			FanDir:  fanDir,
			Floor:   float64(floor),
			Need:    float64(need),
			Urgency: m.ViolationFrac*1e6 + float64(res.Nodes[i].Inlet),
		}
	}
	var effBudget float64
	if cc.PowerBudget > 0 {
		budget = cc.PowerBudget
		if float64(budget) < sumFloor {
			budget = units.Watt(sumFloor) // floors outrank the budget
		}
		effBudget = float64(budget)
	} else {
		// Fan trimming without a budget: an unconstrained arbitration
		// (everyone granted their full ask) still selects the actions.
		for _, p := range proposals {
			effBudget += math.Max(p.Floor, p.Need)
		}
	}
	grants, err := coord.ArbitrateRack(effBudget, proposals)
	if err != nil {
		return nil, nil, 0, err
	}
	if cc.PowerBudget > 0 {
		ceils = make([]units.Utilization, len(c.Nodes))
		for i, node := range c.Nodes {
			cpu, _, _ := node.Config.Models()
			u := cpu.UtilizationFor(units.Watt(grants[i].Alloc))
			if u < cc.CapFloor {
				u = cc.CapFloor
			}
			ceils[i] = u
		}
	}
	if cc.FanTrim > 0 {
		fans = make([]units.RPM, len(c.Nodes))
		for i, node := range c.Nodes {
			m := res.Nodes[i].Metrics
			if grants[i].Action == coord.ApplyFan && proposals[i].FanDir == coord.Down {
				fans[i] = units.ClampRPM(
					units.RPM(float64(m.MeanFanSpeed)*(1+cc.FanTrim)),
					node.Config.FanMinSpeed, node.Config.FanMaxSpeed)
			}
		}
	}
	return ceils, fans, budget, nil
}

// RunCoordinated simulates the rack under the global coordinator. Round 0
// is plain local control (bit-identical to Run); each further round
// derives a placement + arbitration plan from the previous round's
// outcome, applies it to the warm rack instance, and re-resolves the
// recirculation fixed point. The best round under betterResult is the
// coordinated answer — so the coordinated result never does worse than
// local control on (time above limit, violations, fan energy), and the
// whole procedure is bit-identical at any Workers value.
//
// Trace capture (Config.Record) applies to the returned Coordinated
// result: the best plan is re-applied and re-simulated once with
// recording on (the Local baseline carries metrics only).
func RunCoordinated(c Config, cc CoordinatorConfig) (*CoordResult, error) {
	cc.setDefaults()
	if err := cc.validate(); err != nil {
		return nil, err
	}
	r, err := newRack(c)
	if err != nil {
		return nil, err
	}
	n := len(c.Nodes)

	meanDemand := make([]float64, n)
	maxShare := make([]float64, n)
	for i := 0; i < n; i++ {
		meanDemand[i] = r.ls.MeanDemand(i)
		maxShare[i] = cc.MaxShare
		if peak := r.ls.MaxDemand(i); peak > 0 && cc.PeakTarget/peak < maxShare[i] {
			maxShare[i] = cc.PeakTarget / peak
			if maxShare[i] < 1 {
				// A node whose own spikes already exceed the peak target
				// keeps its share; migration only stops adding to it.
				maxShare[i] = 1
			}
		}
	}

	local, err := r.relax(false)
	if err != nil {
		return nil, err
	}
	out := &CoordResult{
		Local:       local,
		Coordinated: local,
		TotalPasses: local.Passes,
	}
	plans := []coordPlan{identityPlan(n)}
	bestPlan := plans[0]
	cur := local

	for round := 1; round <= cc.Rounds; round++ {
		prev := plans[len(plans)-1]
		inlets := make([]units.Celsius, n)
		for i, node := range cur.Nodes {
			inlets[i] = node.Inlet
		}
		shares := migrate(cc, inlets, meanDemand, maxShare, prev.shares)
		capCeils, fanCeils, budget, err := arbitrate(c, cc, cur)
		if err != nil {
			return nil, err
		}
		out.Budget = budget
		plan := coordPlan{shares: shares, capCeils: capCeils, fanCeils: fanCeils}
		if reflect.DeepEqual(plan, prev) {
			break // the plan stopped moving: further rounds change nothing
		}
		if err := r.apply(plan); err != nil {
			return nil, err
		}
		res, err := r.relax(false)
		if err != nil {
			return nil, err
		}
		plans = append(plans, plan)
		out.Rounds++
		out.TotalPasses += res.Passes
		cur = res
		if betterResult(res, out.Coordinated) {
			out.Coordinated = res
			out.BestRound = round
			bestPlan = plan
		}
	}

	if c.Record {
		// Re-run the winning plan once with trace capture; metrics are
		// bit-identical to the round that won.
		if err := r.apply(bestPlan); err != nil {
			return nil, err
		}
		res, err := r.relax(true)
		if err != nil {
			return nil, err
		}
		out.TotalPasses += res.Passes
		out.Coordinated = res
	}

	out.Shares = bestPlan.shares
	out.CapCeils = bestPlan.capCeils
	out.FanCeils = bestPlan.fanCeils
	moved, totalDemand := 0.0, 0.0
	for i := 0; i < n; i++ {
		totalDemand += meanDemand[i]
		if bestPlan.shares[i] < 1 {
			moved += (1 - bestPlan.shares[i]) * meanDemand[i]
		}
	}
	if totalDemand > 0 {
		out.MigratedShare = moved / totalDemand
	}
	return out, nil
}
