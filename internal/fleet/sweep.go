package fleet

import (
	"fmt"

	"repro/internal/stats"
	"repro/internal/units"
)

// SweepConfig spans a grid of rack sizes × inlet spreads: the scenario
// axes that decide whether the per-server controller still holds up at
// fleet scale (more machines sharing the air, hotter hot aisles).
type SweepConfig struct {
	// RackSizes are the node counts to sweep. Required, non-empty.
	RackSizes []int
	// Spreads are the hot-aisle inlet offsets to sweep; the mid aisle sits
	// at half of each spread, the cold aisle at the supply temperature.
	Spreads []units.Celsius
	// Layout is the aisle assignment pattern cycled over nodes; empty
	// means cold, mid, hot.
	Layout []Aisle
	// Seed roots the per-node workload randomness. A given rack size
	// reuses the same node seeds at every spread, so the spread axis
	// isolates the thermal effect.
	Seed int64
	// Supply is the CRAC supply temperature (default 24 °C when zero).
	Supply units.Celsius
	// Recirc is the recirculation coefficient applied at every point.
	Recirc units.KPerW
	// Duration is the per-node horizon (default one hour when zero).
	Duration units.Seconds
	// Workers caps per-point batch concurrency.
	Workers int
	// Coordinator, when set, runs every grid point under the rack-level
	// global coordinator as well: SweepPoint.Result stays the per-node
	// control baseline (the coordinator's round 0 — no extra simulation)
	// and SweepPoint.Coord carries the coordinated-vs-local comparison.
	Coordinator *CoordinatorConfig
}

// SweepPoint is one grid point's outcome.
type SweepPoint struct {
	RackSize int
	Spread   units.Celsius
	Result   *Result
	// Coord is the coordinated run of the same rack; nil unless
	// SweepConfig.Coordinator was set.
	Coord *CoordResult
}

// Sweep runs the grid in row-major order (sizes outer, spreads inner) and
// returns one point per cell, order-stable against the grid axes. Each
// point's rack simulates as a parallel batch; point results are
// bit-identical for any Workers value.
func Sweep(sc SweepConfig) ([]SweepPoint, error) {
	if len(sc.RackSizes) == 0 {
		return nil, fmt.Errorf("fleet: sweep has no rack sizes")
	}
	if len(sc.Spreads) == 0 {
		return nil, fmt.Errorf("fleet: sweep has no spreads")
	}
	for _, s := range sc.Spreads {
		if s < 0 || !units.IsFinite(float64(s)) {
			return nil, fmt.Errorf("fleet: bad inlet spread %v", s)
		}
	}
	supply := sc.Supply
	if supply == 0 {
		supply = 24
	}
	points := make([]SweepPoint, 0, len(sc.RackSizes)*len(sc.Spreads))
	for _, size := range sc.RackSizes {
		for _, spread := range sc.Spreads {
			// The sub-seed is keyed on the rack size itself, not its list
			// position: the same size reruns the same workloads at every
			// spread (isolating the inlet-field effect) and across sweeps
			// with differently ordered size lists.
			cfg, err := NewRack(size, sc.Layout, stats.SubSeed(sc.Seed, int64(size)))
			if err != nil {
				return nil, err
			}
			cfg.Supply = supply
			cfg.AisleOffsets = [NumAisles]units.Celsius{Cold: 0, Mid: spread / 2, Hot: spread}
			cfg.Recirc = sc.Recirc
			cfg.Workers = sc.Workers
			if sc.Duration > 0 {
				cfg.Duration = sc.Duration
			}
			point := SweepPoint{RackSize: size, Spread: spread}
			if sc.Coordinator != nil {
				coord, err := RunCoordinated(cfg, *sc.Coordinator)
				if err != nil {
					return nil, fmt.Errorf("fleet: sweep point (size %d, spread %v): %w", size, spread, err)
				}
				point.Result, point.Coord = coord.Local, coord
			} else {
				res, err := Run(cfg)
				if err != nil {
					return nil, fmt.Errorf("fleet: sweep point (size %d, spread %v): %w", size, spread, err)
				}
				point.Result = res
			}
			points = append(points, point)
		}
	}
	return points, nil
}
