package fleet

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
)

// coordRack returns the coordinator test rack: recirculation strong
// enough that per-node control leaves rack-level slack on the table.
func coordRack(t testing.TB, n int, recirc float64, workers int) Config {
	t.Helper()
	cfg, err := NewRack(n, nil, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duration = 900
	cfg.Recirc = units.KPerW(recirc)
	cfg.Workers = workers
	return cfg
}

// TestCoordinatedDeterministicAcrossWorkers mirrors the fixed-point
// acceptance bar for the coordinator: the whole multi-round procedure —
// baseline, migration plans, arbitration, best-round selection — must be
// bit-identical at any Workers value.
func TestCoordinatedDeterministicAcrossWorkers(t *testing.T) {
	cc := CoordinatorConfig{PowerBudget: 700}
	want, err := RunCoordinated(coordRack(t, 6, 0.03, 1), cc)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := RunCoordinated(coordRack(t, 6, 0.03, workers), cc)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: coordinated result differs from serial run", workers)
		}
	}
}

// TestCoordinatedBeatsOrTiesLocal: the best-round fallback makes the
// coordinated result never worse than local control on the (violations,
// fan energy) objective, at any recirculation strength — and the Local
// baseline embedded in the result is exactly what Run produces.
func TestCoordinatedBeatsOrTiesLocal(t *testing.T) {
	for _, recirc := range []float64{0, 0.02, 0.05} {
		cfg := coordRack(t, 6, recirc, 0)
		res, err := RunCoordinated(cfg, CoordinatorConfig{})
		if err != nil {
			t.Fatalf("recirc=%v: %v", recirc, err)
		}
		local, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Local, local) {
			t.Errorf("recirc=%v: embedded Local baseline differs from Run", recirc)
		}
		if res.Coordinated.ViolationFrac > res.Local.ViolationFrac {
			t.Errorf("recirc=%v: coordinated violations %v above local %v",
				recirc, res.Coordinated.ViolationFrac, res.Local.ViolationFrac)
		}
		if res.Coordinated.ViolationFrac == res.Local.ViolationFrac &&
			res.Coordinated.FanEnergy > res.Local.FanEnergy {
			t.Errorf("recirc=%v: coordinated fan energy %v above local %v at equal violations",
				recirc, res.Coordinated.FanEnergy, res.Local.FanEnergy)
		}
	}
}

// TestCoordinatedImprovesRecircHeavyRack is the acceptance bar from the
// fleet-control ROADMAP item: on a recirculation-heavy rack the
// coordinator must strictly improve violations or fan energy over
// per-node control, not merely tie it.
func TestCoordinatedImprovesRecircHeavyRack(t *testing.T) {
	res, err := RunCoordinated(coordRack(t, 6, 0.03, 0), CoordinatorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestRound == 0 {
		t.Fatal("coordinator never beat local control on the recirculation-heavy rack")
	}
	if res.Coordinated.ViolationFrac >= res.Local.ViolationFrac &&
		res.Coordinated.FanEnergy >= res.Local.FanEnergy {
		t.Errorf("no strict improvement: violations %v -> %v, fan energy %v -> %v",
			res.Local.ViolationFrac, res.Coordinated.ViolationFrac,
			res.Local.FanEnergy, res.Coordinated.FanEnergy)
	}
	if res.MigratedShare <= 0 {
		t.Errorf("winning plan migrated no share")
	}
}

// TestMigratePreservesDemand: the placement step conserves the rack's
// demand-weighted share exactly and respects the [MinShare, MaxShare]
// bounds, whatever the inlet field looks like.
func TestMigratePreservesDemand(t *testing.T) {
	cc := CoordinatorConfig{}
	cc.setDefaults()
	inlets := []units.Celsius{24, 26, 31, 33, 29, 24.5}
	meanDemand := []float64{0.5, 0.65, 0.4, 0.7, 0.55, 0.6}
	maxShare := []float64{cc.MaxShare, cc.MaxShare, cc.MaxShare, cc.MaxShare, cc.MaxShare, cc.MaxShare}
	shares := []float64{1, 1, 1, 1, 1, 1}
	for round := 0; round < 4; round++ {
		next := migrate(cc, inlets, meanDemand, maxShare, shares)
		var before, after float64
		for i := range shares {
			before += shares[i] * meanDemand[i]
			after += next[i] * meanDemand[i]
			if next[i] < cc.MinShare-1e-12 || next[i] > cc.MaxShare+1e-12 {
				t.Fatalf("round %d node %d: share %v outside [%v, %v]",
					round, i, next[i], cc.MinShare, cc.MaxShare)
			}
		}
		if math.Abs(after-before) > 1e-9 {
			t.Fatalf("round %d: demand not conserved (%v -> %v)", round, before, after)
		}
		shares = next
	}
	// Hot nodes shed, cool nodes absorb.
	if shares[3] >= 1 {
		t.Errorf("hottest node kept share %v", shares[3])
	}
	if shares[0] <= 1 {
		t.Errorf("coolest node kept share %v", shares[0])
	}

	// A flat inlet field migrates nothing.
	flat := migrate(cc, []units.Celsius{25, 25, 25}, []float64{0.5, 0.5, 0.5},
		[]float64{cc.MaxShare, cc.MaxShare, cc.MaxShare}, []float64{1, 1, 1})
	for i, s := range flat {
		if s != 1 {
			t.Errorf("flat field moved node %d to %v", i, s)
		}
	}
}

// TestCoordinatorBudgetInvariants is the fleet-level half of the budget
// property test: across rack sizes and seeds, the arbitrated per-node cap
// ceilings never admit more total power than the resolved global budget
// and never dip below the local cap floor.
func TestCoordinatorBudgetInvariants(t *testing.T) {
	for _, n := range []int{1, 3, 5, 8} {
		for seed := int64(1); seed <= 3; seed++ {
			cfg, err := NewRack(n, nil, seed)
			if err != nil {
				t.Fatal(err)
			}
			cfg.Duration = 300
			cfg.Recirc = 0.02
			cfg.Workers = 1
			cpu, _, err := cfg.Nodes[0].Config.Models()
			if err != nil {
				t.Fatal(err)
			}
			// A budget at 80% of the full-load draw forces the
			// arbitration to actually ration.
			budget := units.Watt(0.8 * float64(n) * float64(cpu.Power(1)))
			cc := CoordinatorConfig{PowerBudget: budget}
			cc.setDefaults()
			local, err := Run(cfg)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			ceils, _, resolved, err := arbitrate(cfg, cc, local)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			if ceils == nil {
				t.Fatalf("n=%d seed=%d: budgeted arbitration granted no cap ceilings", n, seed)
			}
			if resolved < budget {
				t.Fatalf("n=%d seed=%d: resolved budget %v below configured %v", n, seed, resolved, budget)
			}
			total := 0.0
			for i, ceil := range ceils {
				if ceil < 0.5 {
					t.Fatalf("n=%d seed=%d node %d: cap ceiling %v below the local floor", n, seed, i, ceil)
				}
				if ceil > 1 {
					t.Fatalf("n=%d seed=%d node %d: cap ceiling %v above 1", n, seed, i, ceil)
				}
				nodeCPU, _, err := cfg.Nodes[i].Config.Models()
				if err != nil {
					t.Fatal(err)
				}
				total += float64(nodeCPU.Power(ceil))
			}
			if total > float64(resolved)+1e-6 {
				t.Fatalf("n=%d seed=%d: ceilings admit %v W against budget %v", n, seed, total, resolved)
			}

			// The same invariants hold for whatever plan RunCoordinated
			// ends up shipping (nil ceilings mean local control won).
			res, err := RunCoordinated(cfg, cc)
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
			shipped := 0.0
			for i, ceil := range res.CapCeils {
				if ceil < 0.5 || ceil > 1 {
					t.Fatalf("n=%d seed=%d node %d: shipped cap ceiling %v outside [0.5, 1]", n, seed, i, ceil)
				}
				nodeCPU, _, _ := cfg.Nodes[i].Config.Models()
				shipped += float64(nodeCPU.Power(ceil))
			}
			if res.CapCeils != nil && shipped > float64(res.Budget)+1e-6 {
				t.Fatalf("n=%d seed=%d: shipped ceilings admit %v W against budget %v", n, seed, shipped, res.Budget)
			}
		}
	}
}

// TestCoordinatedRecordTraces: Record captures the winning round's full
// trace set on the Coordinated result.
func TestCoordinatedRecordTraces(t *testing.T) {
	cfg := coordRack(t, 3, 0.03, 1)
	cfg.Duration = 300
	cfg.Record = true
	res, err := RunCoordinated(cfg, CoordinatorConfig{Rounds: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, node := range res.Coordinated.Nodes {
		if node.Traces == nil || node.Traces.Get("total_power") == nil {
			t.Fatalf("node %q missing recorded traces", node.Name)
		}
	}
}

// TestCoordinatorConfigValidation: degenerate knobs fail loudly.
func TestCoordinatorConfigValidation(t *testing.T) {
	cfg := coordRack(t, 2, 0.01, 1)
	cfg.Duration = 120
	bad := []CoordinatorConfig{
		{PowerBudget: -5},
		{MigrationGain: 1.5},
		{MigrationGain: -0.1},
		{MinShare: 1.2},
		{MaxShare: 0.8},
		{PeakTarget: 1.5},
		{Rounds: -1},
		{CapFloor: 1.5},
		{FanTrim: -0.2},
	}
	for i, cc := range bad {
		if _, err := RunCoordinated(cfg, cc); err == nil {
			t.Errorf("bad coordinator config %d accepted: %+v", i, cc)
		}
	}
}

// TestLimitedPolicyClamps: the wrapper applies the coordinator's ceilings
// and nothing else.
func TestLimitedPolicyClamps(t *testing.T) {
	inner := sim.HoldPolicy{Fan: 6000}
	p := &limitedPolicy{inner: inner, capCeil: 0.8, fanCeil: 5000}
	cmd := p.Step(sim.Observation{})
	if cmd.Fan != 5000 {
		t.Errorf("fan %v, want ceiling 5000", cmd.Fan)
	}
	if cmd.Cap != 0.8 {
		t.Errorf("cap %v, want ceiling 0.8", cmd.Cap)
	}
	loose := &limitedPolicy{inner: inner}
	cmd = loose.Step(sim.Observation{})
	if cmd.Fan != 6000 || cmd.Cap != 1 {
		t.Errorf("unlimited wrapper altered the command: %+v", cmd)
	}
	if p.Name() != "hold+rack" {
		t.Errorf("name %q", p.Name())
	}
}
