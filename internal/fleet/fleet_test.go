package fleet

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// testRack returns a small heterogeneous rack with recirculation on and a
// short horizon, cheap enough for repeated determinism runs.
func testRack(t testing.TB, n int, workers int) Config {
	t.Helper()
	cfg, err := NewRack(n, nil, 99)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Duration = 600
	cfg.Recirc = 0.01
	cfg.Workers = workers
	return cfg
}

func TestValidateRejectsDegenerateConfigs(t *testing.T) {
	base := testRack(t, 4, 1)
	cases := map[string]func(*Config){
		"empty rack":      func(c *Config) { c.Nodes = nil },
		"zero duration":   func(c *Config) { c.Duration = 0 },
		"nan supply":      func(c *Config) { c.Supply = units.Celsius(math.NaN()) },
		"nan offset":      func(c *Config) { c.AisleOffsets[Hot] = units.Celsius(math.Inf(1)) },
		"negative recirc": func(c *Config) { c.Recirc = -0.01 },
		"nan recirc":      func(c *Config) { c.Recirc = units.KPerW(math.NaN()) },
		"negative passes": func(c *Config) { c.RecircPasses = -1 },
		"unnamed node":    func(c *Config) { c.Nodes[1].Name = "" },
		"duplicate name":  func(c *Config) { c.Nodes[1].Name = c.Nodes[0].Name },
		"unknown aisle":   func(c *Config) { c.Nodes[2].Aisle = NumAisles },
		"negative slot":   func(c *Config) { c.Nodes[2].Slot = -1 },
		"nil workload":    func(c *Config) { c.Nodes[3].Workload = nil },
		"nil policy":      func(c *Config) { c.Nodes[3].Policy = nil },
		"mixed tick":      func(c *Config) { c.Nodes[1].Config.Tick = 2 },
		"bad node config": func(c *Config) { c.Nodes[0].Config.FanMaxSpeed = 0 },
	}
	for name, mutate := range cases {
		cfg := testRack(t, 4, 1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: accepted", name)
		}
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted", name)
		}
	}
	if err := base.Validate(); err != nil {
		t.Fatalf("valid rack rejected: %v", err)
	}
}

func TestNewRackShape(t *testing.T) {
	cfg, err := NewRack(7, []Aisle{Cold, Hot}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Nodes) != 7 {
		t.Fatalf("%d nodes", len(cfg.Nodes))
	}
	// Layout cycles cold/hot; slots count per aisle.
	wantAisle := []Aisle{Cold, Hot, Cold, Hot, Cold, Hot, Cold}
	wantSlot := []int{0, 0, 1, 1, 2, 2, 3}
	for i, n := range cfg.Nodes {
		if n.Aisle != wantAisle[i] || n.Slot != wantSlot[i] {
			t.Errorf("node %d: %v slot %d, want %v slot %d", i, n.Aisle, n.Slot, wantAisle[i], wantSlot[i])
		}
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRack(0, nil, 1); err == nil {
		t.Error("0-node rack accepted")
	}
	if _, err := NewRack(2, []Aisle{NumAisles}, 1); err == nil {
		t.Error("bad layout accepted")
	}
}

// TestInletField pins the shared-field model: aisle offsets order the
// inlets, recirculation raises only downstream same-aisle nodes, and a
// zero coefficient leaves the position-only field.
func TestInletField(t *testing.T) {
	cfg := testRack(t, 6, 1) // layout cold,mid,hot cycled twice
	cfg.Recirc = 0
	inlets := cfg.Inlets(nil)
	for i, n := range cfg.Nodes {
		want := cfg.Supply + cfg.AisleOffsets[n.Aisle]
		if inlets[i] != want {
			t.Errorf("node %q inlet %v, want %v", n.Name, inlets[i], want)
		}
	}

	cfg.Recirc = 0.02
	power := []units.Watt{100, 100, 100, 100, 100, 100}
	inlets = cfg.Inlets(power)
	// Nodes 0..2 are slot 0 of their aisles: no upstream, unchanged.
	for i := 0; i < 3; i++ {
		if inlets[i] != cfg.Supply+cfg.AisleOffsets[cfg.Nodes[i].Aisle] {
			t.Errorf("slot-0 node %d inlet shifted to %v", i, inlets[i])
		}
	}
	// Nodes 3..5 are slot 1: exactly one 100 W node upstream ⇒ +2 °C.
	for i := 3; i < 6; i++ {
		want := cfg.Supply + cfg.AisleOffsets[cfg.Nodes[i].Aisle] + 2
		if math.Abs(float64(inlets[i]-want)) > 1e-12 {
			t.Errorf("slot-1 node %d inlet %v, want %v", i, inlets[i], want)
		}
	}
}

// TestRunParallelMatchesSerial is the fleet acceptance bar: aggregate
// metrics bit-identical between Workers = 1 and Workers = N.
func TestRunParallelMatchesSerial(t *testing.T) {
	want, err := Run(testRack(t, 6, 1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := Run(testRack(t, 6, workers))
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: fleet result differs from serial run", workers)
		}
	}
}

// TestRunDeterministicAcrossRepeats: same seed ⇒ bit-identical results on
// every repetition (mirrors batch_test.go for the fleet layer).
func TestRunDeterministicAcrossRepeats(t *testing.T) {
	first, err := Run(testRack(t, 5, 0))
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 2; rep++ {
		again, err := Run(testRack(t, 5, 0))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(again, first) {
			t.Fatalf("repeat %d: fleet result drifted", rep)
		}
	}
}

// TestRunPhysics: hotter aisle positions must run hotter and spin fans
// harder under identical demand, and the rack aggregates must be
// consistent with their parts.
func TestRunPhysics(t *testing.T) {
	constant := func(cfg sim.Config) (workload.Generator, error) {
		return workload.Constant{U: 0.6}, nil
	}
	mkNode := func(name string, aisle Aisle, slot int) NodeSpec {
		return NodeSpec{
			Name: name, Aisle: aisle, Slot: slot,
			Config: sim.Default(), Workload: constant, Policy: FullStack,
			// Start at an operating point: from a cold chassis the DTM's
			// release transient dominates the 30-minute horizon.
			WarmStart: &sim.WarmPoint{Util: 0.2, Fan: 1500},
		}
	}
	cfg := Config{
		Nodes: []NodeSpec{
			mkNode("cold-00", Cold, 0),
			mkNode("hot-00", Hot, 0),
			mkNode("hot-01", Hot, 1),
		},
		Supply:       24,
		AisleOffsets: DefaultOffsets(),
		Recirc:       0.02,
		Duration:     1800,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Passes != 1+DefaultRecircPasses {
		t.Errorf("passes = %d", res.Passes)
	}
	cold, hot0, hot1 := res.Nodes[0], res.Nodes[1], res.Nodes[2]
	if hot0.Inlet <= cold.Inlet {
		t.Errorf("hot-aisle inlet %v not above cold-aisle %v", hot0.Inlet, cold.Inlet)
	}
	if hot1.Inlet <= hot0.Inlet {
		t.Errorf("downstream inlet %v not raised above upstream %v by recirculation", hot1.Inlet, hot0.Inlet)
	}
	// The adaptive-T_ref DTM regulates every junction to the same comfort
	// band, so the position penalty shows up as fan effort, not junction
	// temperature: hotter inlets must cost fan speed and energy.
	if hot0.Metrics.MeanFanSpeed <= cold.Metrics.MeanFanSpeed {
		t.Errorf("hot node mean fan %v not above cold node %v", hot0.Metrics.MeanFanSpeed, cold.Metrics.MeanFanSpeed)
	}
	if hot0.Metrics.FanEnergy <= cold.Metrics.FanEnergy {
		t.Errorf("hot node fan energy %v not above cold node %v", hot0.Metrics.FanEnergy, cold.Metrics.FanEnergy)
	}

	// Aggregates are consistent with per-node metrics.
	var fanE, cpuE units.Joule
	maxJ := units.Celsius(0)
	for _, n := range res.Nodes {
		fanE += n.Metrics.FanEnergy
		cpuE += n.Metrics.CPUEnergy
		if n.Metrics.MaxJunction > maxJ {
			maxJ = n.Metrics.MaxJunction
		}
	}
	if res.FanEnergy != fanE || res.CPUEnergy != cpuE || res.TotalEnergy != fanE+cpuE {
		t.Error("energy aggregates inconsistent with node metrics")
	}
	if res.MaxJunction != maxJ {
		t.Errorf("rack MaxJunction %v != max over nodes %v", res.MaxJunction, maxJ)
	}
	if res.Aisles[Hot].Nodes != 2 || res.Aisles[Cold].Nodes != 1 || res.Aisles[Mid].Nodes != 0 {
		t.Errorf("aisle populations = %+v", res.Aisles)
	}
	if res.Aisles[Hot].MeanInlet <= res.Aisles[Cold].MeanInlet {
		t.Error("hot aisle mean inlet not above cold aisle")
	}

	// Rack power: peak ≥ mean > 0, and the peak of the summed profile
	// cannot exceed the sum of per-node maxima.
	if res.MeanRackPower <= 0 || res.PeakRackPower < res.MeanRackPower {
		t.Errorf("rack power peak %v / mean %v malformed", res.PeakRackPower, res.MeanRackPower)
	}
	if res.Ticks != 1800 {
		t.Errorf("ticks = %d", res.Ticks)
	}
	if res.Nodes[0].Traces != nil {
		t.Error("traces retained without Record")
	}
}

func TestRunRecordKeepsTraces(t *testing.T) {
	cfg := testRack(t, 2, 1)
	cfg.Duration = 120
	cfg.Record = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range res.Nodes {
		if n.Traces == nil || n.Traces.Get("total_power") == nil {
			t.Fatalf("node %q missing recorded traces", n.Name)
		}
	}
}

func TestSweepGridOrderAndDeterminism(t *testing.T) {
	sc := SweepConfig{
		RackSizes: []int{2, 4},
		Spreads:   []units.Celsius{0, 8},
		Seed:      7,
		Duration:  300,
	}
	points, err := Sweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("%d points", len(points))
	}
	wantSize := []int{2, 2, 4, 4}
	wantSpread := []units.Celsius{0, 8, 0, 8}
	for i, p := range points {
		if p.RackSize != wantSize[i] || p.Spread != wantSpread[i] {
			t.Errorf("point %d = (size %d, spread %v), want (%d, %v)",
				i, p.RackSize, p.Spread, wantSize[i], wantSpread[i])
		}
		if len(p.Result.Nodes) != p.RackSize {
			t.Errorf("point %d has %d nodes", i, len(p.Result.Nodes))
		}
	}
	// Wider inlet spread at equal size and identical workloads (the size
	// sub-seed is reused across spreads) must cost fan energy.
	if points[1].Result.FanEnergy <= points[0].Result.FanEnergy {
		t.Errorf("spread 8 fan energy %v not above spread 0 %v",
			points[1].Result.FanEnergy, points[0].Result.FanEnergy)
	}

	// The whole grid repeats bit-identically, including under different
	// per-point parallelism.
	sc.Workers = 3
	again, err := Sweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if !reflect.DeepEqual(again[i].Result, points[i].Result) {
			t.Fatalf("sweep point %d drifted across workers", i)
		}
	}
	if _, err := Sweep(SweepConfig{Spreads: []units.Celsius{1}}); err == nil {
		t.Error("sweep without sizes accepted")
	}
	if _, err := Sweep(SweepConfig{RackSizes: []int{2}}); err == nil {
		t.Error("sweep without spreads accepted")
	}
	if _, err := Sweep(SweepConfig{RackSizes: []int{2}, Spreads: []units.Celsius{-1}}); err == nil {
		t.Error("negative spread accepted")
	}
}

// TestSweepCoordinatorColumn: with a Coordinator the sweep carries the
// coordinated-vs-local comparison per point — the baseline stays exactly
// the storeless local result, the coordinated side never does worse, and
// the whole grid stays bit-identical across Workers counts.
func TestSweepCoordinatorColumn(t *testing.T) {
	sc := SweepConfig{
		RackSizes:   []int{2, 4},
		Spreads:     []units.Celsius{0, 8},
		Seed:        7,
		Duration:    300,
		Recirc:      0.02,
		Coordinator: &CoordinatorConfig{},
	}
	points, err := Sweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	plain := sc
	plain.Coordinator = nil
	base, err := Sweep(plain)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range points {
		if p.Coord == nil {
			t.Fatalf("point %d missing coordinated column", i)
		}
		if !reflect.DeepEqual(p.Result, base[i].Result) {
			t.Errorf("point %d: coordinated sweep perturbed the local baseline", i)
		}
		if p.Coord.Coordinated.ViolationFrac > p.Result.ViolationFrac {
			t.Errorf("point %d: coordinated violations above local", i)
		}
	}

	sc.Workers = 3
	again, err := Sweep(sc)
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if !reflect.DeepEqual(again[i], points[i]) {
			t.Fatalf("coordinated sweep point %d drifted across workers", i)
		}
	}
}
