package experiments

import (
	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tuning"
	"repro/internal/units"
	"repro/internal/workload"
)

// Fig4Result reproduces Fig. 4: a deadzone fan controller under a fixed
// workload oscillates indefinitely because of the measurement lag and
// quantization.
type Fig4Result struct {
	Traces      *trace.Set
	Oscillation tuning.Oscillation // classification of the fan-speed trace
	// AmplitudeRPM and PeriodSeconds describe the limit cycle.
	AmplitudeRPM  float64
	PeriodSeconds float64
}

// Fig4Config parameterizes the deadzone-oscillation demonstration.
type Fig4Config struct {
	Util     units.Utilization // fixed workload (paper: "a stable workload")
	BandLow  units.Celsius
	BandHigh units.Celsius
	Step     units.RPM // deadzone speed increment
	Duration units.Seconds
}

// DefaultFig4 returns the calibrated scenario: u = 0.6 with a ±0.1 °C
// deadzone and 500 rpm steps. The band is deliberately narrower than the
// ADC's 1 °C quantization step — a sub-degree comfort band is a natural
// design choice, but the converter cannot resolve it, so every reading
// falls outside the band and the controller ratchets up and down forever:
// the paper's measured Fig. 4 limit cycle.
func DefaultFig4() Fig4Config {
	return Fig4Config{Util: 0.6, BandLow: 74.4, BandHigh: 74.6, Step: 500, Duration: 1800}
}

// Fig4 runs the deadzone-oscillation experiment.
func Fig4(fc Fig4Config) (*Fig4Result, error) {
	cfg := DefaultConfig()
	lim := control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed}
	dz, err := control.NewDeadzone(fc.BandLow, fc.BandHigh, fc.Step, lim)
	if err != nil {
		return nil, err
	}
	server, err := newServer(cfg)
	if err != nil {
		return nil, err
	}
	pol, err := core.NewFanOnlyPolicy("deadzone", dz, core.DefaultFanInterval, cfg)
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(server, sim.RunConfig{
		Duration:  fc.Duration,
		Workload:  workload.Constant{U: fc.Util},
		Policy:    pol,
		Record:    true,
		WarmStart: &sim.WarmPoint{Util: fc.Util, Fan: 2500},
	})
	if err != nil {
		return nil, err
	}

	fan := res.Traces.Get("fan_cmd")
	// Skip the first fan period of transient before classifying.
	vals := fan.Window(60, float64(fc.Duration)).Values()
	osc := tuning.Classify(vals, 250, 0.5)
	return &Fig4Result{
		Traces:        res.Traces,
		Oscillation:   osc,
		AmplitudeRPM:  osc.Amplitude,
		PeriodSeconds: osc.Period, // fan trace sampled at 1 s per tick
	}, nil
}
