package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/tuning"
	"repro/internal/units"
)

// Fig4Result reproduces Fig. 4: a deadzone fan controller under a fixed
// workload oscillates indefinitely because of the measurement lag and
// quantization.
type Fig4Result struct {
	Traces      *trace.Set
	Oscillation tuning.Oscillation // classification of the fan-speed trace
	// AmplitudeRPM and PeriodSeconds describe the limit cycle.
	AmplitudeRPM  float64
	PeriodSeconds float64
}

// Fig4Config parameterizes the deadzone-oscillation demonstration.
type Fig4Config struct {
	Util     units.Utilization // fixed workload (paper: "a stable workload")
	BandLow  units.Celsius
	BandHigh units.Celsius
	Step     units.RPM // deadzone speed increment
	Duration units.Seconds
}

// DefaultFig4 returns the calibrated scenario: u = 0.6 with a ±0.1 °C
// deadzone and 500 rpm steps. The band is deliberately narrower than the
// ADC's 1 °C quantization step — a sub-degree comfort band is a natural
// design choice, but the converter cannot resolve it, so every reading
// falls outside the band and the controller ratchets up and down forever:
// the paper's measured Fig. 4 limit cycle.
func DefaultFig4() Fig4Config {
	return Fig4Config{Util: 0.6, BandLow: 74.4, BandHigh: 74.6, Step: 500, Duration: 1800}
}

// Fig4Spec builds the declarative deadzone-oscillation scenario.
func Fig4Spec(fc Fig4Config) scenario.Spec {
	return scenario.Spec{
		Kind:     scenario.KindSingle,
		Name:     "fig4",
		Duration: fc.Duration,
		Jobs: []scenario.JobSpec{{
			Name:     "deadzone",
			Workload: scenario.FactoryRef{Name: "constant", Params: scenario.Params{"u": float64(fc.Util)}},
			Policy: scenario.FactoryRef{Name: "deadzone", Params: scenario.Params{
				"band_lo": float64(fc.BandLow),
				"band_hi": float64(fc.BandHigh),
				"step":    float64(fc.Step),
			}},
			WarmStart: &sim.WarmPoint{Util: fc.Util, Fan: 2500},
		}},
		Record: true,
	}
}

// Fig4 runs the deadzone-oscillation experiment through the scenario
// runner.
func Fig4(fc Fig4Config) (*Fig4Result, error) {
	out, err := scenario.Run(Fig4Spec(fc))
	if err != nil {
		return nil, err
	}
	return Fig4FromOutcome(fc, out)
}

// Fig4FromOutcome classifies the limit cycle from a (possibly cached)
// outcome.
func Fig4FromOutcome(fc Fig4Config, out *scenario.Outcome) (*Fig4Result, error) {
	if len(out.Units) != 1 {
		return nil, fmt.Errorf("experiments: fig4 outcome has %d units", len(out.Units))
	}
	ts, err := scenario.ToTraceSet(out.Units[0].Series)
	if err != nil {
		return nil, err
	}
	fan := ts.Get("fan_cmd")
	// Skip the first fan period of transient before classifying.
	vals := fan.Window(60, float64(fc.Duration)).Values()
	osc := tuning.Classify(vals, 250, 0.5)
	return &Fig4Result{
		Traces:        ts,
		Oscillation:   osc,
		AmplitudeRPM:  osc.Amplitude,
		PeriodSeconds: osc.Period, // fan trace sampled at 1 s per tick
	}, nil
}
