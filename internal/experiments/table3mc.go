package experiments

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/stats"
)

// Table3MC is the multi-seed Monte Carlo variant of Table III: the same
// five solutions evaluated across N independent workload-noise seeds, with
// every (seed, solution) pair fanned out through the parallel batch engine
// in a single RunBatch call. It reports each solution's mean ± population
// stddev across seeds, turning the paper's single-draw table into a
// sampling distribution — one number per cell stops being a coin flip.
//
// Usage:
//
//	res, err := experiments.Table3MC(experiments.DefaultTable3(), 8)
//	for _, row := range res.Rows {
//	    fmt.Printf("%s: %.2f ± %.2f %%\n",
//	        row.Name, row.ViolationPct.Mean, row.ViolationPct.Std)
//	}
//
// Seeds are tc.Seed, tc.Seed+1, ..., tc.Seed+nSeeds-1. Fan energy is
// normalized per seed against that seed's uncoordinated baseline before
// aggregating, matching how the single-seed table is read.

// MeanStd is a mean ± population standard deviation pair across seeds.
type MeanStd struct {
	Mean float64
	Std  float64
}

// Table3MCRow aggregates one solution across the Monte Carlo seeds.
type Table3MCRow struct {
	Name          string
	ViolationPct  MeanStd
	NormFanEnergy MeanStd
	HWThrottlePct MeanStd
	MaxJunction   MeanStd // °C
	MeanFanSpeed  MeanStd // rpm
}

// Table3MCResult is the aggregated comparison plus the per-seed tables.
type Table3MCResult struct {
	Seeds []int64
	Rows  []Table3MCRow
	// PerSeed holds the full single-seed tables in seed order, for
	// callers that want the raw draws.
	PerSeed []*Table3Result
}

// meanStd folds samples into a MeanStd (population stddev, like the rest
// of the repo's statistics).
func meanStd(xs []float64) MeanStd {
	return MeanStd{Mean: stats.Mean(xs), Std: stats.StdDev(xs)}
}

// Table3MC runs the Table III comparison across nSeeds independent noise
// seeds and aggregates mean ± stddev per solution. All seed × solution
// runs execute as one batch, so on an m-core machine the wall time
// approaches the single-seed cost times ceil(5·nSeeds/m)/5.
func Table3MC(tc Table3Config, nSeeds int) (*Table3MCResult, error) {
	if nSeeds < 1 {
		return nil, fmt.Errorf("experiments: %d Monte Carlo seeds, want >= 1", nSeeds)
	}
	if tc.Duration <= 0 {
		return nil, fmt.Errorf("experiments: non-positive duration %v", tc.Duration)
	}
	cfg := DefaultConfig()
	if tc.Ambient != 0 {
		cfg.Ambient = tc.Ambient
	}

	// Assemble the flat job list: seeds × solutions, seed-major so result
	// slot s*nSol+i is (seed s, solution i).
	var jobs []sim.Job
	var names []string
	seeds := make([]int64, nSeeds)
	nSol := 0
	for s := 0; s < nSeeds; s++ {
		seedCfg := tc
		seedCfg.Seed = tc.Seed + int64(s)
		seeds[s] = seedCfg.Seed
		gen, err := buildWorkload(seedCfg, cfg.Tick)
		if err != nil {
			return nil, err
		}
		seedJobs, seedNames, err := table3Jobs(cfg, gen, tc.Duration)
		if err != nil {
			return nil, err
		}
		if s == 0 {
			names = seedNames
			nSol = len(seedJobs)
		}
		for i := range seedJobs {
			seedJobs[i].Name = fmt.Sprintf("%s/seed=%d", seedJobs[i].Name, seedCfg.Seed)
		}
		jobs = append(jobs, seedJobs...)
	}

	// All seed × solution jobs share one clock, so they run through the
	// lockstep engine: each seed's workload trace is precompiled once and
	// shared by its five solutions instead of being re-evaluated per
	// solution per tick. Results are bit-identical to RunBatch.
	results, err := sim.RunLockstep(jobs, sim.BatchOptions{Workers: tc.Workers})
	if err != nil {
		return nil, err
	}

	out := &Table3MCResult{Seeds: seeds}
	perSol := make([][]Table3Row, nSol)
	for s := 0; s < nSeeds; s++ {
		rows := table3Rows(names, results[s*nSol:(s+1)*nSol])
		out.PerSeed = append(out.PerSeed, &Table3Result{Rows: rows})
		for i, r := range rows {
			perSol[i] = append(perSol[i], r)
		}
	}
	for i, rows := range perSol {
		pick := func(f func(Table3Row) float64) MeanStd {
			xs := make([]float64, len(rows))
			for k, r := range rows {
				xs[k] = f(r)
			}
			return meanStd(xs)
		}
		out.Rows = append(out.Rows, Table3MCRow{
			Name:          names[i],
			ViolationPct:  pick(func(r Table3Row) float64 { return r.ViolationPct }),
			NormFanEnergy: pick(func(r Table3Row) float64 { return r.NormFanEnergy }),
			HWThrottlePct: pick(func(r Table3Row) float64 { return r.HWThrottlePct }),
			MaxJunction:   pick(func(r Table3Row) float64 { return float64(r.MaxJunction) }),
			MeanFanSpeed:  pick(func(r Table3Row) float64 { return float64(r.MeanFanSpeed) }),
		})
	}
	return out, nil
}
