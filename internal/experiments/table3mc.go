package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Table3MC is the multi-seed Monte Carlo variant of Table III: the same
// five solutions evaluated across N independent workload-noise seeds, as
// one scenario whose (seed, solution) jobs all advance through a single
// warm lockstep cohort. It reports each solution's mean ± population
// stddev across seeds, turning the paper's single-draw table into a
// sampling distribution — one number per cell stops being a coin flip.
//
// Usage:
//
//	res, err := experiments.Table3MC(experiments.DefaultTable3(), 8)
//	for _, row := range res.Rows {
//	    fmt.Printf("%s: %.2f ± %.2f %%\n",
//	        row.Name, row.ViolationPct.Mean, row.ViolationPct.Std)
//	}
//
// Seeds are tc.Seed, tc.Seed+1, ..., tc.Seed+nSeeds-1. Fan energy is
// normalized per seed against that seed's uncoordinated baseline before
// aggregating, matching how the single-seed table is read.

// MeanStd is a mean ± population standard deviation pair across seeds.
type MeanStd struct {
	Mean float64
	Std  float64
}

// Table3MCRow aggregates one solution across the Monte Carlo seeds.
type Table3MCRow struct {
	Name          string
	ViolationPct  MeanStd
	NormFanEnergy MeanStd
	HWThrottlePct MeanStd
	MaxJunction   MeanStd // °C
	MeanFanSpeed  MeanStd // rpm
}

// Table3MCResult is the aggregated comparison plus the per-seed tables.
type Table3MCResult struct {
	Seeds []int64
	Rows  []Table3MCRow
	// PerSeed holds the full single-seed tables in seed order, for
	// callers that want the raw draws.
	PerSeed []*Table3Result
}

// meanStd folds samples into a MeanStd (population stddev, like the rest
// of the repo's statistics).
func meanStd(xs []float64) MeanStd {
	return MeanStd{Mean: stats.Mean(xs), Std: stats.StdDev(xs)}
}

// Table3MCSpec builds the flat seeds × solutions scenario, seed-major so
// unit slot s*nSol+i is (seed s, solution i). Jobs of one seed share a
// workload reference, so the runner compiles that seed's demand trace
// once for its five solutions.
func Table3MCSpec(tc Table3Config, nSeeds int) scenario.Spec {
	prefs := table3PolicyRefs()
	jobs := make([]scenario.JobSpec, 0, nSeeds*len(prefs))
	for s := 0; s < nSeeds; s++ {
		seedCfg := tc
		seedCfg.Seed = tc.Seed + int64(s)
		wref := table3WorkloadRef(seedCfg)
		for _, pref := range prefs {
			jobs = append(jobs, scenario.JobSpec{
				// Units must stay addressable per (solution, seed) in a
				// persisted outcome; the policy label still carries the
				// paper's row name.
				Name:      fmt.Sprintf("%s/seed=%d", pref.Name, seedCfg.Seed),
				Workload:  wref,
				Policy:    pref,
				WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1200},
			})
		}
	}
	base := table3Base(tc)
	return scenario.Spec{
		Kind:     scenario.KindLockstep,
		Name:     "table3mc",
		Base:     &base,
		Duration: tc.Duration,
		Jobs:     jobs,
		Workers:  tc.Workers,
	}
}

// Table3MC runs the Table III comparison across nSeeds independent noise
// seeds and aggregates mean ± stddev per solution. All seed × solution
// runs execute as one scenario, so on an m-core machine the wall time
// approaches the single-seed cost times ceil(5·nSeeds/m)/5.
func Table3MC(tc Table3Config, nSeeds int) (*Table3MCResult, error) {
	if nSeeds < 1 {
		return nil, fmt.Errorf("experiments: %d Monte Carlo seeds, want >= 1", nSeeds)
	}
	if tc.Duration <= 0 {
		return nil, fmt.Errorf("experiments: non-positive duration %v", tc.Duration)
	}
	out, err := scenario.Run(Table3MCSpec(tc, nSeeds))
	if err != nil {
		return nil, err
	}
	return Table3MCFromOutcome(tc, nSeeds, out)
}

// Table3MCFromOutcome aggregates a (possibly store-cached) outcome.
func Table3MCFromOutcome(tc Table3Config, nSeeds int, out *scenario.Outcome) (*Table3MCResult, error) {
	nSol := len(table3PolicyRefs())
	if len(out.Units) != nSeeds*nSol {
		return nil, fmt.Errorf("experiments: table3mc outcome has %d units, want %d", len(out.Units), nSeeds*nSol)
	}
	res := &Table3MCResult{Seeds: make([]int64, nSeeds)}
	for s := 0; s < nSeeds; s++ {
		res.Seeds[s] = tc.Seed + int64(s)
	}
	perSol := make([][]Table3Row, nSol)
	for s := 0; s < nSeeds; s++ {
		rows := table3RowsFromUnits(out.Units[s*nSol : (s+1)*nSol])
		res.PerSeed = append(res.PerSeed, &Table3Result{Rows: rows})
		for i, r := range rows {
			perSol[i] = append(perSol[i], r)
		}
	}
	for _, rows := range perSol {
		pick := func(f func(Table3Row) float64) MeanStd {
			xs := make([]float64, len(rows))
			for k, r := range rows {
				xs[k] = f(r)
			}
			return meanStd(xs)
		}
		res.Rows = append(res.Rows, Table3MCRow{
			Name:          rows[0].Name,
			ViolationPct:  pick(func(r Table3Row) float64 { return r.ViolationPct }),
			NormFanEnergy: pick(func(r Table3Row) float64 { return r.NormFanEnergy }),
			HWThrottlePct: pick(func(r Table3Row) float64 { return r.HWThrottlePct }),
			MaxJunction:   pick(func(r Table3Row) float64 { return float64(r.MaxJunction) }),
			MeanFanSpeed:  pick(func(r Table3Row) float64 { return float64(r.MeanFanSpeed) }),
		})
	}
	return res, nil
}
