package experiments

import (
	"math"
	"testing"

	"repro/internal/control"
	"repro/internal/core"
	"repro/internal/scenario"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// These tests pin the scenario refactor to the pre-refactor behavior:
// each legacy entry point is re-implemented here exactly as it invoked
// the engines before becoming a scenario adapter, and the adapter's
// output must match bit for bit. A drift in the registry factories, the
// spec construction, or the runner's engine selection fails loudly.

// legacyTable3 is the pre-refactor Table3: jobs built by hand from
// core.TableIIISolutions and run through sim.RunLockstep.
func legacyTable3(t *testing.T, tc Table3Config) []Table3Row {
	t.Helper()
	cfg := DefaultConfig()
	if tc.Ambient != 0 {
		cfg.Ambient = tc.Ambient
	}
	gen, err := buildWorkload(tc, cfg.Tick)
	if err != nil {
		t.Fatal(err)
	}
	policies, err := core.TableIIISolutions(cfg)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]sim.Job, len(policies))
	names := make([]string, len(policies))
	for i, pol := range policies {
		names[i] = pol.Name()
		jobs[i] = sim.Job{
			Name:   pol.Name(),
			Server: sim.Factory(cfg),
			Config: sim.RunConfig{
				Duration:  tc.Duration,
				Workload:  gen,
				Policy:    pol,
				WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1200},
			},
		}
	}
	results, err := sim.RunLockstep(jobs, sim.BatchOptions{Workers: tc.Workers})
	if err != nil {
		t.Fatal(err)
	}
	rows := make([]Table3Row, 0, len(results))
	var baseline units.Joule
	for i, res := range results {
		m := res.Metrics
		if i == 0 {
			baseline = m.FanEnergy
		}
		norm := 0.0
		if baseline > 0 {
			norm = float64(m.FanEnergy) / float64(baseline)
		}
		rows = append(rows, Table3Row{
			Name:          names[i],
			ViolationPct:  m.ViolationFrac * 100,
			NormFanEnergy: norm,
			FanEnergy:     m.FanEnergy,
			HWThrottlePct: m.HWThrottleFrac * 100,
			MaxJunction:   m.MaxJunction,
			MeanFanSpeed:  m.MeanFanSpeed,
		})
	}
	return rows
}

func TestTable3MatchesLegacy(t *testing.T) {
	tc := DefaultTable3()
	tc.Duration = 1200
	want := legacyTable3(t, tc)
	got, err := Table3(tc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(got.Rows), len(want))
	}
	for i := range want {
		if got.Rows[i] != want[i] {
			t.Errorf("row %d:\nscenario %+v\nlegacy   %+v", i, got.Rows[i], want[i])
		}
	}
}

// legacyFig3 is the pre-refactor Fig3 engine invocation: per-variant fan
// controllers built by hand and run through sim.RunBatch.
func legacyFig3(t *testing.T, fc Fig3Config) []*sim.Result {
	t.Helper()
	cfg := DefaultConfig()
	regions := core.DefaultRegions()
	lim := control.Limits{Min: cfg.FanMinSpeed, Max: cfg.FanMaxSpeed}

	build := func(region int, adaptive bool, name string) sim.Policy {
		var inner control.FanController
		if adaptive {
			a, err := control.NewAdaptivePID(regions, fc.RefTemp, lim)
			if err != nil {
				t.Fatal(err)
			}
			a.SetSlewFrac(0.6, 400)
			inner = a
		} else {
			p, err := control.NewPID(control.PIDConfig{
				Gains: regions[region].Gains, RefSpeed: regions[region].RefSpeed,
				RefTemp: fc.RefTemp, Limits: lim, SlewFrac: 0.6, SlewFloor: 400,
			})
			if err != nil {
				t.Fatal(err)
			}
			inner = p
		}
		fan, err := control.NewQuantGuard(inner, 1)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewFanOnlyPolicy(name, fan, core.DefaultFanInterval, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return pol
	}

	jobs := make([]sim.Job, 3)
	for i, spec := range []struct {
		region   int
		adaptive bool
		name     string
	}{{0, false, string(Fixed2000)}, {1, false, string(Fixed6000)}, {0, true, string(Adaptive)}} {
		jobs[i] = sim.Job{
			Name:   spec.name,
			Server: sim.Factory(cfg),
			Config: sim.RunConfig{
				Duration:  units.Seconds(float64(fc.Period) * float64(fc.Cycles)),
				Workload:  workload.PaperSquare(fc.Period),
				Policy:    build(spec.region, spec.adaptive, spec.name),
				Record:    true,
				WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1200},
			},
		}
	}
	results, err := sim.RunBatch(jobs, sim.BatchOptions{})
	if err != nil {
		t.Fatal(err)
	}
	return results
}

func TestFig3MatchesLegacyBatch(t *testing.T) {
	fc := DefaultFig3()
	fc.Cycles = 1
	fc.Period = 600
	want := legacyFig3(t, fc)
	got, err := scenario.Run(Fig3Spec(fc))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Units) != len(want) {
		t.Fatalf("units = %d, want %d", len(got.Units), len(want))
	}
	for i, res := range want {
		u := &got.Units[i]
		if m := scenario.SimMetrics(u); m != res.Metrics {
			t.Errorf("unit %d metrics:\nscenario %+v\nlegacy   %+v", i, m, res.Metrics)
		}
		for _, name := range res.Traces.Names() {
			legacySeries := res.Traces.Get(name)
			s := u.FindSeries(name)
			if s == nil {
				t.Fatalf("unit %d missing series %q", i, name)
			}
			if len(s.V) != legacySeries.Len() {
				t.Fatalf("unit %d series %q length %d != %d", i, name, len(s.V), legacySeries.Len())
			}
			for k := range s.V {
				if s.V[k] != legacySeries.At(k).V || s.T[k] != legacySeries.At(k).T {
					t.Fatalf("unit %d series %q sample %d differs", i, name, k)
				}
			}
		}
	}
}

// legacyFaults is the pre-refactor Faults: the fault pipeline assembled
// by hand inside the job's ServerFactory, run through sim.RunBatch.
func legacyFaults(t *testing.T, fc FaultConfig) *FaultResult {
	t.Helper()
	cfg := DefaultConfig()
	cfg.Ambient = 30

	factory := func(inject bool) sim.ServerFactory {
		return func() (*sim.PhysicalServer, error) {
			server, err := sim.NewPhysicalServer(cfg)
			if err != nil {
				return nil, err
			}
			if !inject {
				return server, nil
			}
			stuck, err := sensor.NewStuckAt(fc.StuckAt, fc.StuckAt+fc.StuckLen)
			if err != nil {
				return nil, err
			}
			drop, err := sensor.NewDropout(fc.DropoutRate, fc.Seed)
			if err != nil {
				return nil, err
			}
			base, err := sensor.New(cfg.Sensor)
			if err != nil {
				return nil, err
			}
			if err := server.ReplaceSensor(sensor.NewPipeline(base, drop, stuck)); err != nil {
				return nil, err
			}
			return server, nil
		}
	}

	noisy, err := workload.NewNoisy(workload.PaperSquare(600), 0.04, cfg.Tick, fc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	jobs := make([]sim.Job, 2)
	for i, inject := range []bool{false, true} {
		pol, err := core.NewFullStack(cfg)
		if err != nil {
			t.Fatal(err)
		}
		jobs[i] = sim.Job{
			Server: factory(inject),
			Config: sim.RunConfig{
				Duration:  fc.Duration,
				Workload:  noisy,
				Policy:    pol,
				WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1500},
			},
		}
	}
	results, err := sim.RunBatch(jobs, sim.BatchOptions{Workers: fc.Workers})
	if err != nil {
		t.Fatal(err)
	}
	return &FaultResult{Clean: results[0].Metrics, Faulted: results[1].Metrics}
}

func TestFaultsMatchesLegacy(t *testing.T) {
	fc := DefaultFaults()
	fc.Duration = 900
	fc.StuckAt = 400
	want := legacyFaults(t, fc)
	got, err := Faults(fc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Clean != want.Clean {
		t.Errorf("clean metrics:\nscenario %+v\nlegacy   %+v", got.Clean, want.Clean)
	}
	if got.Faulted != want.Faulted {
		t.Errorf("faulted metrics:\nscenario %+v\nlegacy   %+v", got.Faulted, want.Faulted)
	}
}

// TestFig5MatchesLegacy pins the single-run adapter to a direct sim.Run.
func TestFig5MatchesLegacy(t *testing.T) {
	fc := DefaultFig5()
	fc.Duration = 900
	cfg := DefaultConfig()
	noisy, err := workload.NewNoisy(workload.PaperSquare(fc.Period), fc.NoiseSigma, cfg.Tick, fc.Seed)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewRuleCoord(cfg, 75)
	if err != nil {
		t.Fatal(err)
	}
	server, err := sim.NewPhysicalServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(server, sim.RunConfig{
		Duration:  fc.Duration,
		Workload:  noisy,
		Policy:    pol,
		Record:    true,
		WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1200},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Fig5(fc)
	if err != nil {
		t.Fatal(err)
	}
	if got.Metrics != res.Metrics {
		t.Errorf("metrics:\nscenario %+v\nlegacy   %+v", got.Metrics, res.Metrics)
	}
	if math.IsNaN(got.Oscillation.Amplitude) {
		t.Error("NaN oscillation amplitude")
	}
}
