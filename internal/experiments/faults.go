package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/units"
)

// FaultResult reports the robustness experiment: the full DTM stack
// running through a telemetry fault (a stuck sensor for StuckLen seconds
// in the middle of the run, plus a sustained dropout rate) versus a clean
// run of the same scenario.
type FaultResult struct {
	Clean   sim.Metrics
	Faulted sim.Metrics
}

// FaultConfig parameterizes the fault-injection run.
type FaultConfig struct {
	Duration    units.Seconds
	StuckAt     units.Seconds
	StuckLen    units.Seconds
	DropoutRate float64
	Seed        int64
	// Workers caps the batch engine's concurrency for the clean/faulted
	// pair; zero means GOMAXPROCS. Results are bit-identical at any value.
	Workers int
}

// DefaultFaults returns the standard robustness scenario: a 2-minute
// stuck sensor at mid-run plus 10% sample dropout, over an hour.
func DefaultFaults() FaultConfig {
	return FaultConfig{Duration: 3600, StuckAt: 1800, StuckLen: 120, DropoutRate: 0.1, Seed: 5}
}

// FaultsSpec builds the declarative robustness scenario: the clean and
// fault-injected runs are independent jobs of one batch; the fault chain
// (clean physical path feeding a wedged/congested transport) is declared
// on the faulted job and assembled by the scenario runner.
func FaultsSpec(fc FaultConfig) scenario.Spec {
	base := DefaultConfig()
	base.Ambient = 30
	wref := scenario.FactoryRef{
		Name:   "noisy-square",
		Seed:   fc.Seed,
		Params: scenario.Params{"period": 600, "sigma": 0.04},
	}
	pref := scenario.FactoryRef{Name: "full"}
	warm := &sim.WarmPoint{Util: 0.1, Fan: 1500}
	return scenario.Spec{
		Kind:     scenario.KindBatch,
		Name:     "faults",
		Base:     &base,
		Duration: fc.Duration,
		Jobs: []scenario.JobSpec{
			{Name: "clean", Workload: wref, Policy: pref, WarmStart: warm},
			{Name: "faulted", Workload: wref, Policy: pref, WarmStart: warm,
				Faults: &scenario.FaultSpec{
					StuckAt:     fc.StuckAt,
					StuckLen:    fc.StuckLen,
					DropoutRate: fc.DropoutRate,
					DropoutSeed: fc.Seed,
				}},
		},
		Workers: fc.Workers,
	}
}

// Faults runs the robustness experiment through the scenario runner.
func Faults(fc FaultConfig) (*FaultResult, error) {
	if fc.Duration <= 0 {
		return nil, fmt.Errorf("experiments: non-positive duration %v", fc.Duration)
	}
	out, err := scenario.Run(FaultsSpec(fc))
	if err != nil {
		return nil, err
	}
	return FaultsFromOutcome(out)
}

// FaultsFromOutcome unpacks a (possibly store-cached) outcome.
func FaultsFromOutcome(out *scenario.Outcome) (*FaultResult, error) {
	clean, faulted := out.Unit("clean"), out.Unit("faulted")
	if clean == nil || faulted == nil {
		return nil, fmt.Errorf("experiments: faults outcome missing clean/faulted units")
	}
	return &FaultResult{
		Clean:   scenario.SimMetrics(clean),
		Faulted: scenario.SimMetrics(faulted),
	}, nil
}
