package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/sensor"
	"repro/internal/sim"
	"repro/internal/units"
	"repro/internal/workload"
)

// FaultResult reports the robustness experiment: the full DTM stack
// running through a telemetry fault (a stuck sensor for StuckLen seconds
// in the middle of the run, plus a sustained dropout rate) versus a clean
// run of the same scenario.
type FaultResult struct {
	Clean   sim.Metrics
	Faulted sim.Metrics
}

// FaultConfig parameterizes the fault-injection run.
type FaultConfig struct {
	Duration    units.Seconds
	StuckAt     units.Seconds
	StuckLen    units.Seconds
	DropoutRate float64
	Seed        int64
	// Workers caps the batch engine's concurrency for the clean/faulted
	// pair; zero means GOMAXPROCS. Results are bit-identical at any value.
	Workers int
}

// DefaultFaults returns the standard robustness scenario: a 2-minute
// stuck sensor at mid-run plus 10% sample dropout, over an hour.
func DefaultFaults() FaultConfig {
	return FaultConfig{Duration: 3600, StuckAt: 1800, StuckLen: 120, DropoutRate: 0.1, Seed: 5}
}

// Faults runs the robustness experiment: the clean and fault-injected
// scenarios are independent runs, executed as one parallel batch. The
// fault pipeline is assembled inside the job's ServerFactory so each run
// owns its sensor chain.
func Faults(fc FaultConfig) (*FaultResult, error) {
	if fc.Duration <= 0 {
		return nil, fmt.Errorf("experiments: non-positive duration %v", fc.Duration)
	}
	cfg := DefaultConfig()
	cfg.Ambient = 30

	factory := func(inject bool) sim.ServerFactory {
		return func() (*sim.PhysicalServer, error) {
			server, err := sim.NewPhysicalServer(cfg)
			if err != nil {
				return nil, err
			}
			if !inject {
				return server, nil
			}
			stuck, err := sensor.NewStuckAt(fc.StuckAt, fc.StuckAt+fc.StuckLen)
			if err != nil {
				return nil, err
			}
			drop, err := sensor.NewDropout(fc.DropoutRate, fc.Seed)
			if err != nil {
				return nil, err
			}
			base, err := sensor.New(cfg.Sensor)
			if err != nil {
				return nil, err
			}
			// Faults sit on the firmware side of the chain: the clean
			// physical chain feeds a wedged/congested transport.
			if err := server.ReplaceSensor(sensor.NewPipeline(base, drop, stuck)); err != nil {
				return nil, err
			}
			return server, nil
		}
	}

	noisy, err := workload.NewNoisy(workload.PaperSquare(600), 0.04, cfg.Tick, fc.Seed)
	if err != nil {
		return nil, err
	}
	jobs := make([]sim.Job, 2)
	for i, inject := range []bool{false, true} {
		pol, err := core.NewFullStack(cfg)
		if err != nil {
			return nil, err
		}
		name := "clean"
		if inject {
			name = "faulted"
		}
		jobs[i] = sim.Job{
			Name:   name,
			Server: factory(inject),
			Config: sim.RunConfig{
				Duration:  fc.Duration,
				Workload:  noisy,
				Policy:    pol,
				WarmStart: &sim.WarmPoint{Util: 0.1, Fan: 1500},
			},
		}
	}
	results, err := sim.RunBatch(jobs, sim.BatchOptions{Workers: fc.Workers})
	if err != nil {
		return nil, err
	}
	return &FaultResult{Clean: results[0].Metrics, Faulted: results[1].Metrics}, nil
}
